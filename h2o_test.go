package h2o_test

import (
	"strings"
	"testing"

	"h2o"
)

func newTestDB(t *testing.T) *h2o.DB {
	t.Helper()
	db := h2o.NewDB()
	db.CreateTableFrom(h2o.SyntheticSchema("events", 12), 5_000, 3)
	return db
}

func TestDBQueryEndToEnd(t *testing.T) {
	db := newTestDB(t)
	res, info, err := db.Query("select max(a1), min(a1), count(a1) from events")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 1 || res.Width() != 3 {
		t.Fatalf("result shape %dx%d", res.Rows, res.Width())
	}
	if res.At(0, 0) < res.At(0, 1) {
		t.Fatal("max < min")
	}
	if res.At(0, 2) != 5000 {
		t.Fatalf("count = %d", res.At(0, 2))
	}
	if info.Duration <= 0 {
		t.Fatal("no duration recorded")
	}
}

func TestDBFilteredProjection(t *testing.T) {
	db := newTestDB(t)
	res, _, err := db.Query("select a2, a3 from events where a0 < -999000000")
	if err != nil {
		t.Fatal(err)
	}
	// ~0.05% selectivity over 5000 rows: a handful of rows at most.
	if res.Rows > 100 {
		t.Fatalf("selective filter returned %d rows", res.Rows)
	}
	// Cross-check with a count on the same predicate.
	cnt, _, err := db.Query("select count(a0) from events where a0 < -999000000")
	if err != nil {
		t.Fatal(err)
	}
	if cnt.At(0, 0) != int64(res.Rows) {
		t.Fatalf("count %d != projected rows %d", cnt.At(0, 0), res.Rows)
	}
}

func TestDBErrors(t *testing.T) {
	db := newTestDB(t)
	if _, _, err := db.Query("select a1 from nope"); err == nil {
		t.Fatal("unknown table accepted")
	}
	if _, _, err := db.Query("select zz from events"); err == nil {
		t.Fatal("unknown column accepted")
	}
	if _, _, err := db.Query("not sql at all"); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := db.Engine("nope"); err == nil {
		t.Fatal("Engine(nope) should fail")
	}
	if _, err := db.LayoutSignature("nope"); err == nil {
		t.Fatal("LayoutSignature(nope) should fail")
	}
}

func TestDBCatalog(t *testing.T) {
	db := newTestDB(t)
	db.CreateTableFrom(h2o.SyntheticSchema("other", 4), 100, 1)
	tables := db.Tables()
	if len(tables) != 2 {
		t.Fatalf("tables = %v", tables)
	}
	q, err := db.Parse("select a0 from other")
	if err != nil || q.Table != "other" {
		t.Fatalf("Parse: %v %v", q, err)
	}
	res, _, err := db.Exec(q)
	if err != nil || res.Rows != 100 {
		t.Fatalf("Exec: rows=%v err=%v", res, err)
	}
}

func TestDBAdaptsUnderRepeatedPattern(t *testing.T) {
	db := h2o.NewDBWith(func() h2o.Options {
		o := h2o.DefaultOptions()
		o.Window.InitialSize = 8
		return o
	}())
	db.CreateTableFrom(h2o.SyntheticSchema("t", 30), 20_000, 5)
	src := "select sum(a2 + a5 + a9 + a14) from t where a2 > 0"
	for i := 0; i < 40; i++ {
		if _, _, err := db.Query(src); err != nil {
			t.Fatal(err)
		}
	}
	e, err := db.Engine("t")
	if err != nil {
		t.Fatal(err)
	}
	if e.Stats().GroupsCreated == 0 {
		t.Fatal("repeated pattern never produced a column group")
	}
	sig, err := db.LayoutSignature("t")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sig, "[2 5 9 14]") {
		t.Fatalf("layout %q missing expected group", sig)
	}
}

func TestDBLimitAndStar(t *testing.T) {
	db := newTestDB(t)
	res, _, err := db.Query("select * from events limit 3")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 3 || res.Width() != 12 {
		t.Fatalf("star+limit shape = %dx%d", res.Rows, res.Width())
	}
	// BETWEEN through the full stack.
	res, _, err = db.Query("select count(a0) from events where a0 between -100000000 and 100000000")
	if err != nil {
		t.Fatal(err)
	}
	// ~10% of the [-1e9,1e9) domain over 5000 rows.
	if res.At(0, 0) < 300 || res.At(0, 0) > 700 {
		t.Fatalf("between count = %d, expected ~500", res.At(0, 0))
	}
	// Limit larger than the result is a no-op.
	res, _, err = db.Query("select a0 from events where a0 < -999000000 limit 100000")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows > 100 {
		t.Fatalf("rows = %d", res.Rows)
	}
}

func TestDBSaveLoadRoundTrip(t *testing.T) {
	db := h2o.NewDB()
	db.CreateTableFrom(h2o.SyntheticSchema("t", 16), 8_000, 11)
	// Adapt the layout first, so the snapshot carries a non-trivial design.
	for i := 0; i < 30; i++ {
		if _, _, err := db.Query("select sum(a1 + a4 + a8) from t where a1 > 0"); err != nil {
			t.Fatal(err)
		}
	}
	want, _, err := db.Query("select max(a1), min(a8) from t")
	if err != nil {
		t.Fatal(err)
	}
	sigBefore, _ := db.LayoutSignature("t")

	path := t.TempDir() + "/t.h2o"
	if err := db.SaveTable("t", path); err != nil {
		t.Fatal(err)
	}

	db2 := h2o.NewDB()
	name, err := db2.LoadTable(path)
	if err != nil {
		t.Fatal(err)
	}
	if name != "t" {
		t.Fatalf("restored name %q", name)
	}
	sigAfter, _ := db2.LayoutSignature("t")
	if sigBefore != sigAfter {
		t.Fatalf("layout not preserved:\n before %s\n after  %s", sigBefore, sigAfter)
	}
	got, _, err := db2.Query("select max(a1), min(a8) from t")
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("restored table computes different answers")
	}
	if err := db.SaveTable("missing", path); err == nil {
		t.Fatal("saving unknown table accepted")
	}
}

func TestDBInsertAndCSV(t *testing.T) {
	db := h2o.NewDB()
	tb, err := db.ImportCSV(strings.NewReader("ts,val\n1,10\n2,20\n3,30\n"), "series")
	if err != nil {
		t.Fatal(err)
	}
	if tb.Rows != 3 {
		t.Fatalf("imported rows = %d", tb.Rows)
	}
	res, _, err := db.Query("select sum(val) from series")
	if err != nil || res.At(0, 0) != 60 {
		t.Fatalf("sum = %v err = %v", res, err)
	}
	// INSERT through SQL: new rows must be visible to every layout.
	ins, _, err := db.Query("insert into series values (4, 40), (5, 50)")
	if err != nil {
		t.Fatal(err)
	}
	if ins.At(0, 0) != 2 {
		t.Fatalf("inserted = %d", ins.At(0, 0))
	}
	res, _, err = db.Query("select sum(val), count(ts) from series")
	if err != nil || res.At(0, 0) != 150 || res.At(0, 1) != 5 {
		t.Fatalf("after insert: %v err = %v", res, err)
	}
	// Inserts into adapted layouts stay consistent.
	for i := 0; i < 30; i++ {
		if _, _, err := db.Query("select sum(ts + val) from series where ts > 0"); err != nil {
			t.Fatal(err)
		}
	}
	if _, _, err := db.Query("insert into series values (6, 60)"); err != nil {
		t.Fatal(err)
	}
	res, _, err = db.Query("select max(val) from series where ts = 6")
	if err != nil || res.At(0, 0) != 60 {
		t.Fatalf("adapted-layout insert invisible: %v err=%v", res, err)
	}
	// Errors.
	if _, _, err := db.Query("insert into nope values (1)"); err == nil {
		t.Fatal("insert into unknown table accepted")
	}
	if _, _, err := db.Query("insert into series values (1)"); err == nil {
		t.Fatal("wrong arity accepted")
	}
	if _, err := db.ImportCSV(strings.NewReader("a\nnope\n"), "bad"); err == nil {
		t.Fatal("bad CSV accepted")
	}
}

func TestSchemaValidation(t *testing.T) {
	if _, err := h2o.NewSchema("x", []string{"a", "a"}); err == nil {
		t.Fatal("duplicate attribute accepted")
	}
	s, err := h2o.NewSchema("x", []string{"a", "b"})
	if err != nil || s.NumAttrs() != 2 {
		t.Fatalf("NewSchema: %v %v", s, err)
	}
}
