// Package h2o is a from-scratch Go reproduction of "H2O: A Hands-free
// Adaptive Store" (Alagiannis, Idreos, Ailamaki — SIGMOD 2014): an
// in-memory analytical engine that makes no fixed storage-layout decision.
// It supports row-major, column-major and column-group layouts
// simultaneously, monitors the query stream through attribute affinity
// matrices over a dynamic window, proposes new vertical partitions with a
// cost model that prices the transformation, creates them lazily — fused
// into the first query that benefits — and generates specialized access
// operators per (layout, plan-shape) combination.
//
// This root package is the public facade: it wires together the internal
// packages (storage, exec, opgen, advisor, affinity, costmodel, core) into
// the small API a downstream user needs. See the examples/ directory for
// runnable walkthroughs and cmd/h2obench for the harness that regenerates
// every table and figure of the paper's evaluation.
//
// Basic usage:
//
//	schema := h2o.NewSchema("events", []string{"ts", "src", "dst", "bytes"})
//	db := h2o.NewDB()
//	db.CreateTableFrom(schema, rows, seed)      // synthetic data
//	res, info, err := db.Query("select max(bytes) from events where src < 100")
//
// For many simultaneous clients, route queries through the serving layer —
// a bounded worker pool with a versioned result cache (see internal/server):
//
//	res, info, err := db.QueryCtx(ctx, "select max(bytes) from events")
//	// or, with explicit sizing and lifecycle:
//	srv := db.Serve(h2o.ServerConfig{Workers: 8})
//	defer srv.Close()
package h2o

import (
	"context"
	"fmt"
	"io"
	"sync"
	"time"

	"h2o/internal/core"
	"h2o/internal/data"
	"h2o/internal/exec"
	"h2o/internal/persist"
	"h2o/internal/query"
	"h2o/internal/server"
	"h2o/internal/shard"
	"h2o/internal/sql"
	"h2o/internal/storage"
)

// Re-exported building blocks for programmatic (non-SQL) use.
type (
	// Schema describes a relation's attributes.
	Schema = data.Schema
	// Table is generated columnar source data.
	Table = data.Table
	// Result is a materialized query result.
	Result = exec.Result
	// ExecInfo reports how a query was executed (strategy, layout,
	// reorganization, timing).
	ExecInfo = core.ExecInfo
	// Engine is a single-relation H2O instance.
	Engine = core.Engine
	// Options configures an Engine.
	Options = core.Options
	// Stats are engine-lifetime counters.
	Stats = core.Stats
	// Query is the logical select-project-aggregate representation.
	Query = query.Query
	// Server is the concurrent serving layer: a bounded worker pool with a
	// versioned result cache in front of the engines.
	Server = server.Server
	// ServerConfig sizes a Server (workers, queue depth, cache shards and
	// capacity); the zero value selects defaults.
	ServerConfig = server.Config
	// ServerStats are serving-layer counters (cache hits, executions,
	// cancellations).
	ServerStats = server.Stats
	// TouchFingerprint identifies the segments a query may read (per
	// zone-map pruning) and their versions; the serving layer keys its
	// result cache on it, so mutations confined to segments a query never
	// reads leave its cached results live.
	TouchFingerprint = core.TouchFingerprint
	// DeltaScan is the product of one delta-repair scan: fresh partials
	// for the changed candidate segments, the indices whose cached
	// partials remain exact, and the fingerprint of the observed state.
	DeltaScan = core.DeltaScan
	// TierStats are tiered-storage counters for one table: resident,
	// encoded and spilled segments and bytes, page-ins (with the file
	// bytes they covered), demotions, evictions, spill writes and on-disk
	// spill-file bytes. All zero unless Options.MemoryBudgetBytes is set;
	// the encoded-rung fields additionally need Options.EncodedTier.
	TierStats = core.TierStats
)

// Execution modes for Options.Mode.
const (
	// ModeAdaptive is full H2O: monitoring, adaptation, lazy reorganization
	// and cost-based strategy choice.
	ModeAdaptive = core.ModeAdaptive
	// ModeStaticRow pins the row layout and strategy.
	ModeStaticRow = core.ModeStaticRow
	// ModeStaticColumn pins the column layout and strategy.
	ModeStaticColumn = core.ModeStaticColumn
	// ModeFrozen keeps the current layout but disables adaptation; strategy
	// choice stays cost-based.
	ModeFrozen = core.ModeFrozen
)

// NewSchema builds a schema; attribute names must be unique.
func NewSchema(name string, attrs []string) (*Schema, error) {
	return data.NewSchema(name, attrs)
}

// SyntheticSchema builds a schema with n attributes named a0..a{n-1}.
func SyntheticSchema(name string, n int) *Schema {
	return data.SyntheticSchema(name, n)
}

// Generate builds synthetic integer data for schema (uniform in [-1e9,1e9)),
// deterministically from seed.
func Generate(schema *Schema, rows int, seed int64) *Table {
	return data.Generate(schema, rows, seed)
}

// GenerateTimeSeries builds synthetic data whose attribute 0 is a
// monotonically increasing "timestamp" (value == row position) while the
// rest are uniform as in Generate. Append-ordered data like this is the
// regime where zone-map pruning — and therefore segment-precise result
// caching — pays off: range predicates on attribute 0 touch only a
// contiguous run of segments.
func GenerateTimeSeries(schema *Schema, rows int, seed int64) *Table {
	return data.GenerateTimeSeries(schema, rows, seed)
}

// DefaultOptions returns the paper's adaptive configuration.
func DefaultOptions() Options { return core.DefaultOptions() }

// table is what the catalog holds per registered name: a single engine, or
// — when Options.Shards > 1 — a scatter-gather router over per-shard
// engines (internal/shard). Both present the engine-shaped surface the
// facade routes through, so every DB method works unchanged over either.
type table interface {
	Execute(q *query.Query) (*exec.Result, core.ExecInfo, error)
	QueryFingerprint(q *query.Query) core.TouchFingerprint
	QueryDelta(q *query.Query, have map[int]uint64) (*core.DeltaScan, bool, error)
	Insert(tuples [][]data.Value) error
	Version() uint64
	SegmentVersions() []uint64
	TierStats() core.TierStats
	SetSegmentHeat(fn core.SegmentHeatFunc)
	Close()
}

var (
	_ table = (*core.Engine)(nil)
	_ table = (*shard.Router)(nil)
)

// DB is a catalog of H2O engines, one per table, with a SQL front end. All
// methods are safe for concurrent use: the catalog itself is guarded by a
// read-write mutex, and each engine serializes its own mutations while
// letting read-only queries run in parallel (see core.Engine). With
// Options.Shards > 1 every registered table is split across that many
// engines behind a scatter-gather router; the SQL and serving surfaces are
// unchanged.
type DB struct {
	mu      sync.RWMutex
	tables  map[string]table
	schemas sql.SchemaMap
	opts    Options

	// srvMu guards the lazily started default serving layer behind
	// QueryCtx: creation, Close and stats all synchronize on it, so a
	// Close racing the first QueryCtx can never miss a just-created
	// server.
	srvMu     sync.Mutex
	srv       *server.Server
	srvClosed bool

	// heatSrv is the serving layer whose cache-reference counts steer
	// tiered-storage eviction (cache-aware eviction): the most recently
	// built server over this catalog. Guarded by mu so AddTable can wire
	// engines it creates later against the same server.
	heatSrv *server.Server
}

// ErrClosed is returned by QueryCtx after Close has shut the database's
// default serving layer down.
var ErrClosed = server.ErrClosed

// NewDB creates an empty database with default adaptive options.
func NewDB() *DB { return NewDBWith(core.DefaultOptions()) }

// NewDBWith creates an empty database; every table created afterwards uses
// opts.
func NewDBWith(opts Options) *DB {
	return &DB{
		tables:  make(map[string]table),
		schemas: make(sql.SchemaMap),
		opts:    opts,
	}
}

// CreateTableFrom registers a table with synthetic data (rows tuples, seeded
// deterministically), stored column-major initially — the paper's preferred
// starting layout.
func (db *DB) CreateTableFrom(schema *Schema, rows int, seed int64) *Table {
	t := data.Generate(schema, rows, seed)
	db.AddTable(t)
	return t
}

// AddTable registers an existing generated table — behind one engine, or
// split across Options.Shards engines behind a scatter-gather router. A
// table replaced under the same name has its engine(s) closed (spill files
// released); the result cache needs no flushing because relation versions
// are process-unique. Callers still holding the replaced *Engine must not
// keep using it: on a budgeted table its spilled segments are gone, so
// stale-engine queries can fail — re-fetch through db.Engine
// (db.Query/QueryCtx always do).
func (db *DB) AddTable(t *Table) {
	var h table
	if db.opts.Shards > 1 {
		h = shard.New(t, db.opts)
	} else {
		h = core.New(storage.BuildColumnMajorSeg(t, db.opts.SegmentCapacity), db.opts)
	}
	db.register(t.Schema.Name, t.Schema, h)
}

// register installs a built table handle in the catalog, wires it to the
// current heat server, and closes any handle it replaces.
func (db *DB) register(name string, schema *Schema, h table) {
	db.mu.Lock()
	old := db.tables[name]
	db.tables[name] = h
	db.schemas[name] = schema
	heatSrv := db.heatSrv
	db.mu.Unlock()
	if heatSrv != nil {
		wireSegmentHeat(h, heatSrv, name)
	}
	if old != nil {
		old.Close()
	}
}

// handle returns the table handle behind a registered name.
func (db *DB) handle(table string) (table, error) {
	db.mu.RLock()
	h, ok := db.tables[table]
	db.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("h2o: unknown table %q", table)
	}
	return h, nil
}

// Engine returns the engine behind a table, for inspection. A sharded
// table (Options.Shards > 1) has no single engine and returns an error;
// use Router for per-shard access.
func (db *DB) Engine(table string) (*Engine, error) {
	h, err := db.handle(table)
	if err != nil {
		return nil, err
	}
	e, ok := h.(*core.Engine)
	if !ok {
		return nil, fmt.Errorf("h2o: table %q is sharded (Options.Shards > 1); it has no single engine", table)
	}
	return e, nil
}

// Router returns the scatter-gather router behind a sharded table, for
// inspection. Unsharded tables return an error; use Engine for those.
func (db *DB) Router(table string) (*shard.Router, error) {
	h, err := db.handle(table)
	if err != nil {
		return nil, err
	}
	r, ok := h.(*shard.Router)
	if !ok {
		return nil, fmt.Errorf("h2o: table %q is not sharded", table)
	}
	return r, nil
}

// Version returns a table's relation version: a counter that advances on
// every insert and layout reorganization in any segment. Coarse
// observability — the serving layer keys its result cache on the
// segment-precise Fingerprint instead.
func (db *DB) Version(table string) (uint64, error) {
	h, err := db.handle(table)
	if err != nil {
		return 0, err
	}
	return h.Version(), nil
}

// SegmentVersions returns a table's per-segment version vector: one entry
// per storage segment, each advancing only when *that* segment mutates
// (tail appends, segment-local reorganization). Residency changes (tiered
// storage spills and faults) never advance any of them.
func (db *DB) SegmentVersions(table string) ([]uint64, error) {
	h, err := db.handle(table)
	if err != nil {
		return nil, err
	}
	return h.SegmentVersions(), nil
}

// Fingerprint computes a query's candidate-touch fingerprint: the digest of
// the segments the query may read (per zone-map pruning, no data access)
// and their versions. The serving layer calls it at admission to address
// its result cache; together with Exec this makes DB a server.Backend.
func (db *DB) Fingerprint(q *Query) (TouchFingerprint, error) {
	if len(q.Joins) > 0 {
		return db.joinFingerprint(q)
	}
	h, err := db.handle(q.Table)
	if err != nil {
		return TouchFingerprint{}, err
	}
	return h.QueryFingerprint(q), nil
}

// joinFingerprint is the admission fingerprint of a join query: the
// order-sensitive combination of each input relation's candidate-touch
// fingerprint against its own side of the predicates (left first). Any
// mutation of a candidate segment on either side moves the combination, so
// cached join results invalidate segment-precisely on both inputs; the two
// sides are snapshotted under separate engine read locks, which can only
// cost a spurious miss (execution re-publishes under the fingerprint taken
// inside its own locked section).
func (db *DB) joinFingerprint(q *Query) (TouchFingerprint, error) {
	left, right, err := db.joinEngines(q)
	if err != nil {
		return TouchFingerprint{}, err
	}
	db.mu.RLock()
	ls := db.schemas[q.Table]
	db.mu.RUnlock()
	if ls == nil {
		return TouchFingerprint{}, fmt.Errorf("h2o: unknown table %q", q.Table)
	}
	lp, lsplit, rp, rsplit := exec.JoinSidePreds(q, ls.NumAttrs())
	return core.CombineFingerprints([]core.TouchFingerprint{
		left.SideFingerprint(lp, lsplit),
		right.SideFingerprint(rp, rsplit),
	}), nil
}

// joinEngines resolves the two engines behind a single-join query. Sharded
// tables have no single relation to build or probe, so they decline with a
// descriptive error (the scatter-gather seam for joins — shard the build
// side, broadcast the hash table, gather per-shard partials — is documented
// in internal/shard but not built yet).
func (db *DB) joinEngines(q *Query) (left, right *core.Engine, err error) {
	if len(q.Joins) != 1 {
		return nil, nil, fmt.Errorf("h2o: query joins %d tables; exactly one JOIN is supported", len(q.Tables()))
	}
	engines := make([]*core.Engine, 2)
	for i, name := range q.Tables() {
		h, err := db.handle(name)
		if err != nil {
			return nil, nil, err
		}
		e, ok := h.(*core.Engine)
		if !ok {
			return nil, nil, fmt.Errorf("h2o: join over table %q: sharded tables (Options.Shards > 1) do not support joins yet", name)
		}
		engines[i] = e
	}
	return engines[0], engines[1], nil
}

// execJoin executes a join query over two engines (or one, self-joined).
// Fingerprint and execution happen inside the same locked section, so the
// published fingerprint describes exactly the state the result was computed
// from. Two engines nest read locks in table-name order — the same order
// for every join execution, so concurrent joins over the same pair cannot
// deadlock; a self-join takes a single read lock (View is not reentrant).
func (db *DB) execJoin(q *Query) (*Result, ExecInfo, error) {
	left, right, err := db.joinEngines(q)
	if err != nil {
		return nil, ExecInfo{}, err
	}
	start := time.Now()
	var res *Result
	var st exec.StrategyStats
	var fp TouchFingerprint
	run := func(lrel, rrel *storage.Relation) error {
		lp, lsplit, rp, rsplit := exec.JoinSidePreds(q, lrel.Schema.NumAttrs())
		fp = core.CombineFingerprints([]core.TouchFingerprint{
			core.TouchFingerprintPreds(lrel, lp, lsplit),
			core.TouchFingerprintPreds(rrel, rp, rsplit),
		})
		var err error
		res, err = exec.ExecJoin(lrel, rrel, q, exec.ExecOpts{Workers: db.opts.Parallelism, Stats: &st})
		return err
	}
	if left == right {
		err = left.View(func(rel *storage.Relation) error { return run(rel, rel) })
	} else {
		first, second := left, right
		swapped := q.Joins[0].Table < q.Table
		if swapped {
			first, second = right, left
		}
		err = first.View(func(a *storage.Relation) error {
			return second.View(func(b *storage.Relation) error {
				if swapped {
					return run(b, a)
				}
				return run(a, b)
			})
		})
	}
	if err != nil {
		return nil, ExecInfo{}, err
	}
	// SegmentsTouched stays nil: the touch list is indexed per relation and
	// a join spans two, so join executions report counts only (the serving
	// layer's per-segment cache heat simply sees no join contributions).
	return res, ExecInfo{
		Strategy:        exec.StrategyJoin,
		SegmentsScanned: st.SegmentsScanned,
		SegmentsPruned:  st.SegmentsPruned,
		SegmentsFaulted: st.SegmentsFaulted,
		Fingerprint:     fp,
		Duration:        time.Since(start),
	}, nil
}

// ExecDelta answers a repairable aggregate query by rescanning only the
// candidate segments whose versions differ from have (nil rescans all of
// them), under the table engine's read lock. It implements the serving
// layer's server.DeltaBackend capability — the tier between an exact cache
// hit and a full execution: repeat aggregates over a tail-append workload
// are re-answered at O(changed segments) cost. ok=false means the engine
// chose the full Execute path (not repairable, or an adaptation phase is
// pending).
func (db *DB) ExecDelta(q *Query, have map[int]uint64) (*DeltaScan, bool, error) {
	h, err := db.handle(q.Table)
	if err != nil {
		return nil, false, err
	}
	return h.QueryDelta(q, have)
}

// Tables lists the registered table names.
func (db *DB) Tables() []string {
	db.mu.RLock()
	defer db.mu.RUnlock()
	out := make([]string, 0, len(db.tables))
	for name := range db.tables {
		out = append(out, name)
	}
	return out
}

// Parse parses a SQL statement against the catalog without executing it.
func (db *DB) Parse(src string) (*Query, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return sql.Parse(src, db.schemas)
}

// Query parses and executes one SQL statement: a select, or an insert
// ("insert into T values (...), (...)"), which returns an empty result with
// the inserted row count in ExecInfo-free form (Result.Rows).
func (db *DB) Query(src string) (*Result, ExecInfo, error) {
	if sql.IsInsert(src) {
		return db.execInsert(src)
	}
	q, err := db.Parse(src)
	if err != nil {
		return nil, ExecInfo{}, err
	}
	return db.Exec(q)
}

// QueryCtx is Query routed through the serving layer: selects go through the
// default server's worker pool and segment-precise result cache (started
// lazily on first use; size it explicitly with Serve for dedicated
// deployments), and honor ctx cancellation while queued. Inserts execute
// directly — they take the engine's exclusive lock and bump the tail
// segment's version, which strands cached results for queries that read
// the tail; queries pinned to other segments by their predicates keep
// hitting, and repeat aggregate queries are *delta-repaired* — only the
// changed segments are rescanned and re-combined with cached per-segment
// partials (ExecInfo.RepairedSegments reports how many). After Close,
// every QueryCtx call — inserts included — fails with ErrClosed.
//
// Results served from the cache are shared between clients: treat the
// returned Result as read-only.
func (db *DB) QueryCtx(ctx context.Context, src string) (*Result, ExecInfo, error) {
	if sql.IsInsert(src) {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, ExecInfo{}, err
			}
		}
		db.srvMu.Lock()
		closed := db.srvClosed
		db.srvMu.Unlock()
		if closed {
			return nil, ExecInfo{}, ErrClosed
		}
		return db.execInsert(src)
	}
	q, err := db.Parse(src)
	if err != nil {
		return nil, ExecInfo{}, err
	}
	srv := db.defaultServer()
	if srv == nil {
		return nil, ExecInfo{}, ErrClosed
	}
	return srv.Query(ctx, q)
}

// execInsert parses and applies one insert statement.
func (db *DB) execInsert(src string) (*Result, ExecInfo, error) {
	db.mu.RLock()
	stmt, err := sql.ParseInsert(src, db.schemas)
	db.mu.RUnlock()
	if err != nil {
		return nil, ExecInfo{}, err
	}
	h, err := db.handle(stmt.Table)
	if err != nil {
		return nil, ExecInfo{}, err
	}
	if err := h.Insert(stmt.Rows); err != nil {
		return nil, ExecInfo{}, err
	}
	return &Result{Cols: []string{"inserted"}, Rows: 1,
		Data: []int64{int64(len(stmt.Rows))}}, ExecInfo{}, nil
}

// Serve starts a new serving layer over this catalog with explicit sizing:
// a bounded worker pool, an admission queue with context cancellation, a
// sharded LRU result cache keyed by (table, normalized query, touch
// fingerprint), a byte-budgeted partial-aggregate cache behind delta
// repair, and an admission fingerprint memo. The caller owns the returned
// server's lifecycle (Close it). A zero cfg.PartialCacheBytes inherits
// Options.PartialCacheBytes from the catalog before the server default
// applies.
func (db *DB) Serve(cfg ServerConfig) *Server {
	if cfg.PartialCacheBytes == 0 {
		cfg.PartialCacheBytes = db.opts.PartialCacheBytes
	}
	srv := server.New(db, cfg)
	db.adoptHeatServer(srv)
	return srv
}

// adoptHeatServer makes srv the catalog's cache-aware eviction signal:
// every budgeted engine's tier manager starts preferring eviction victims
// that few of srv's cached results and partials reference. The most
// recently built server wins — its caches are the ones future queries will
// hit — and engines registered later (AddTable, LoadTable) are wired on
// creation.
func (db *DB) adoptHeatServer(srv *server.Server) {
	db.mu.Lock()
	db.heatSrv = srv
	handles := make(map[string]table, len(db.tables))
	for name, h := range db.tables {
		handles[name] = h
	}
	db.mu.Unlock()
	for name, h := range handles {
		wireSegmentHeat(h, srv, name)
	}
}

// wireSegmentHeat points one table's tier manager(s) at srv's per-segment
// cache-reference counts (a no-op on engines without a memory budget; a
// sharded router translates the global segment indices to shard-local
// ones). The closure holds the server, not the catalog, so a replaced
// table's old engine keeps a working — merely stale — heat source until it
// is closed.
func wireSegmentHeat(h table, srv *server.Server, name string) {
	h.SetSegmentHeat(func() map[int]int { return srv.SegmentHeat(name) })
}

// defaultServer lazily starts the server behind QueryCtx, or returns nil
// after Close — the default server is not resurrected once shut down.
func (db *DB) defaultServer() *Server {
	db.srvMu.Lock()
	defer db.srvMu.Unlock()
	if db.srvClosed {
		return nil
	}
	if db.srv == nil {
		db.srv = server.New(db, ServerConfig{PartialCacheBytes: db.opts.PartialCacheBytes})
		db.adoptHeatServer(db.srv)
	}
	return db.srv
}

// ServeStats snapshots the default serving layer's counters (zero if
// QueryCtx was never used). Servers created with Serve report their own
// stats.
func (db *DB) ServeStats() ServerStats {
	db.srvMu.Lock()
	srv := db.srv
	db.srvMu.Unlock()
	if srv == nil {
		return ServerStats{}
	}
	return srv.Stats()
}

// Close shuts down the default serving layer, if QueryCtx ever started it,
// fences further QueryCtx calls with ErrClosed, and closes every engine —
// releasing tiered-storage spill files and temp directories. In-memory
// engines hold no external resources and close for free. Servers created
// with Serve are closed by their owners.
func (db *DB) Close() {
	db.srvMu.Lock()
	srv := db.srv
	db.srv = nil
	db.srvClosed = true
	db.srvMu.Unlock()
	if srv != nil {
		srv.Close()
	}
	db.mu.Lock()
	handles := make([]table, 0, len(db.tables))
	for _, h := range db.tables {
		handles = append(handles, h)
	}
	db.mu.Unlock()
	for _, h := range handles {
		h.Close()
	}
}

// ImportCSV loads a table from a CSV stream (header = attribute names,
// integer cells) and registers it column-major.
func (db *DB) ImportCSV(r io.Reader, tableName string) (*Table, error) {
	t, err := data.ReadCSV(r, tableName)
	if err != nil {
		return nil, err
	}
	db.AddTable(t)
	return t, nil
}

// Exec executes a logical query. The catalog lock is released before
// execution: concurrent queries serialize only inside the engine, and only
// when they mutate.
func (db *DB) Exec(q *Query) (*Result, ExecInfo, error) {
	if len(q.Joins) > 0 {
		return db.execJoin(q)
	}
	h, err := db.handle(q.Table)
	if err != nil {
		return nil, ExecInfo{}, err
	}
	return h.Execute(q)
}

// TierStats reports a table's tiered-storage counters: how much of the
// relation is resident versus spilled to disk, and the lifetime fault /
// eviction counts. Zero-valued unless the database was built with
// Options.MemoryBudgetBytes set.
func (db *DB) TierStats(table string) (TierStats, error) {
	h, err := db.handle(table)
	if err != nil {
		return TierStats{}, err
	}
	return h.TierStats(), nil
}

// LayoutSignature describes a table's current physical layout. For a
// sharded table the per-shard signatures are joined in shard order —
// shards adapt independently, so they legitimately diverge.
func (db *DB) LayoutSignature(name string) (string, error) {
	h, err := db.handle(name)
	if err != nil {
		return "", err
	}
	if r, ok := h.(*shard.Router); ok {
		return r.LayoutSignature(), nil
	}
	e := h.(*core.Engine)
	var sig string
	err = e.View(func(rel *storage.Relation) error {
		sig = rel.LayoutSignature()
		return nil
	})
	return sig, err
}

// SaveTable snapshots a table — data plus its current adapted layout — to a
// binary file. The snapshot is taken under the engine's read lock, so it is
// consistent even with concurrent inserts. On a budgeted table the save
// pages spilled segments in (the snapshot needs every byte); the memory
// budget is re-enforced immediately afterwards rather than waiting for the
// next query. Sharded tables cannot be snapshot (the format holds one
// relation) and return the Engine error.
func (db *DB) SaveTable(table, path string) error {
	e, err := db.Engine(table)
	if err != nil {
		return err
	}
	err = e.View(func(rel *storage.Relation) error {
		return persist.SaveFile(path, rel)
	})
	e.EnforceBudget()
	return err
}

// LoadTable restores a snapshot and registers it under its stored table
// name. The engine resumes with the adapted layout instead of re-learning
// it — for that reason a loaded table always runs on a single engine, even
// when Options.Shards > 1 (re-dealing the rows would discard the adapted
// per-segment layouts the snapshot exists to preserve).
func (db *DB) LoadTable(path string) (string, error) {
	rel, err := persist.LoadFile(path)
	if err != nil {
		return "", err
	}
	name := rel.Schema.Name
	db.register(name, rel.Schema, core.New(rel, db.opts))
	return name, nil
}
