// Package h2o is a from-scratch Go reproduction of "H2O: A Hands-free
// Adaptive Store" (Alagiannis, Idreos, Ailamaki — SIGMOD 2014): an
// in-memory analytical engine that makes no fixed storage-layout decision.
// It supports row-major, column-major and column-group layouts
// simultaneously, monitors the query stream through attribute affinity
// matrices over a dynamic window, proposes new vertical partitions with a
// cost model that prices the transformation, creates them lazily — fused
// into the first query that benefits — and generates specialized access
// operators per (layout, plan-shape) combination.
//
// This root package is the public facade: it wires together the internal
// packages (storage, exec, opgen, advisor, affinity, costmodel, core) into
// the small API a downstream user needs. See the examples/ directory for
// runnable walkthroughs and cmd/h2obench for the harness that regenerates
// every table and figure of the paper's evaluation.
//
// Basic usage:
//
//	schema := h2o.NewSchema("events", []string{"ts", "src", "dst", "bytes"})
//	db := h2o.NewDB()
//	db.CreateTableFrom(schema, rows, seed)      // synthetic data
//	res, info, err := db.Query("select max(bytes) from events where src < 100")
package h2o

import (
	"fmt"
	"io"

	"h2o/internal/core"
	"h2o/internal/data"
	"h2o/internal/exec"
	"h2o/internal/persist"
	"h2o/internal/query"
	"h2o/internal/sql"
	"h2o/internal/storage"
)

// Re-exported building blocks for programmatic (non-SQL) use.
type (
	// Schema describes a relation's attributes.
	Schema = data.Schema
	// Table is generated columnar source data.
	Table = data.Table
	// Result is a materialized query result.
	Result = exec.Result
	// ExecInfo reports how a query was executed (strategy, layout,
	// reorganization, timing).
	ExecInfo = core.ExecInfo
	// Engine is a single-relation H2O instance.
	Engine = core.Engine
	// Options configures an Engine.
	Options = core.Options
	// Stats are engine-lifetime counters.
	Stats = core.Stats
	// Query is the logical select-project-aggregate representation.
	Query = query.Query
)

// NewSchema builds a schema; attribute names must be unique.
func NewSchema(name string, attrs []string) (*Schema, error) {
	return data.NewSchema(name, attrs)
}

// SyntheticSchema builds a schema with n attributes named a0..a{n-1}.
func SyntheticSchema(name string, n int) *Schema {
	return data.SyntheticSchema(name, n)
}

// Generate builds synthetic integer data for schema (uniform in [-1e9,1e9)),
// deterministically from seed.
func Generate(schema *Schema, rows int, seed int64) *Table {
	return data.Generate(schema, rows, seed)
}

// DefaultOptions returns the paper's adaptive configuration.
func DefaultOptions() Options { return core.DefaultOptions() }

// DB is a catalog of H2O engines, one per table, with a SQL front end.
type DB struct {
	engines map[string]*core.Engine
	schemas sql.SchemaMap
	opts    Options
}

// NewDB creates an empty database with default adaptive options.
func NewDB() *DB { return NewDBWith(core.DefaultOptions()) }

// NewDBWith creates an empty database; every table created afterwards uses
// opts.
func NewDBWith(opts Options) *DB {
	return &DB{
		engines: make(map[string]*core.Engine),
		schemas: make(sql.SchemaMap),
		opts:    opts,
	}
}

// CreateTableFrom registers a table with synthetic data (rows tuples, seeded
// deterministically), stored column-major initially — the paper's preferred
// starting layout.
func (db *DB) CreateTableFrom(schema *Schema, rows int, seed int64) *Table {
	t := data.Generate(schema, rows, seed)
	db.AddTable(t)
	return t
}

// AddTable registers an existing generated table.
func (db *DB) AddTable(t *Table) {
	db.engines[t.Schema.Name] = core.New(storage.BuildColumnMajor(t), db.opts)
	db.schemas[t.Schema.Name] = t.Schema
}

// Engine returns the engine behind a table, for inspection.
func (db *DB) Engine(table string) (*Engine, error) {
	e, ok := db.engines[table]
	if !ok {
		return nil, fmt.Errorf("h2o: unknown table %q", table)
	}
	return e, nil
}

// Tables lists the registered table names.
func (db *DB) Tables() []string {
	out := make([]string, 0, len(db.engines))
	for name := range db.engines {
		out = append(out, name)
	}
	return out
}

// Parse parses a SQL statement against the catalog without executing it.
func (db *DB) Parse(src string) (*Query, error) {
	return sql.Parse(src, db.schemas)
}

// Query parses and executes one SQL statement: a select, or an insert
// ("insert into T values (...), (...)"), which returns an empty result with
// the inserted row count in ExecInfo-free form (Result.Rows).
func (db *DB) Query(src string) (*Result, ExecInfo, error) {
	if sql.IsInsert(src) {
		stmt, err := sql.ParseInsert(src, db.schemas)
		if err != nil {
			return nil, ExecInfo{}, err
		}
		e, ok := db.engines[stmt.Table]
		if !ok {
			return nil, ExecInfo{}, fmt.Errorf("h2o: unknown table %q", stmt.Table)
		}
		if err := e.Insert(stmt.Rows); err != nil {
			return nil, ExecInfo{}, err
		}
		return &Result{Cols: []string{"inserted"}, Rows: 1,
			Data: []int64{int64(len(stmt.Rows))}}, ExecInfo{}, nil
	}
	q, err := sql.Parse(src, db.schemas)
	if err != nil {
		return nil, ExecInfo{}, err
	}
	return db.Exec(q)
}

// ImportCSV loads a table from a CSV stream (header = attribute names,
// integer cells) and registers it column-major.
func (db *DB) ImportCSV(r io.Reader, tableName string) (*Table, error) {
	t, err := data.ReadCSV(r, tableName)
	if err != nil {
		return nil, err
	}
	db.AddTable(t)
	return t, nil
}

// Exec executes a logical query.
func (db *DB) Exec(q *Query) (*Result, ExecInfo, error) {
	e, ok := db.engines[q.Table]
	if !ok {
		return nil, ExecInfo{}, fmt.Errorf("h2o: unknown table %q", q.Table)
	}
	return e.Execute(q)
}

// LayoutSignature describes a table's current physical layout.
func (db *DB) LayoutSignature(table string) (string, error) {
	e, err := db.Engine(table)
	if err != nil {
		return "", err
	}
	return e.Relation().LayoutSignature(), nil
}

// SaveTable snapshots a table — data plus its current adapted layout — to a
// binary file.
func (db *DB) SaveTable(table, path string) error {
	e, err := db.Engine(table)
	if err != nil {
		return err
	}
	return persist.SaveFile(path, e.Relation())
}

// LoadTable restores a snapshot and registers it under its stored table
// name. The engine resumes with the adapted layout instead of re-learning
// it.
func (db *DB) LoadTable(path string) (string, error) {
	rel, err := persist.LoadFile(path)
	if err != nil {
		return "", err
	}
	name := rel.Schema.Name
	db.engines[name] = core.New(rel, db.opts)
	db.schemas[name] = rel.Schema
	return name, nil
}
