// SkyServer scenario — the paper's Figure 8 in miniature: the simulated
// SDSS PhotoObjAll table (446 attributes) with a 250-query trace, comparing
// H2O's hands-free per-query adaptation against an AutoPart-style offline
// advisor that sees the whole trace up front.
//
//	go run ./examples/skyserver
package main

import (
	"fmt"
	"log"
	"time"

	"h2o/internal/advisor"
	"h2o/internal/core"
	"h2o/internal/costmodel"
	"h2o/internal/data"
	"h2o/internal/query"
	"h2o/internal/storage"
	"h2o/internal/workload"
)

func main() {
	const rows = 20_000
	schema := workload.SkyServerSchema()
	tb := data.Generate(schema, rows, 7)
	trace := workload.SkyServerTrace(rows, 7)
	fmt.Printf("PhotoObjAll: %d attributes, %d rows; trace: %d queries\n\n",
		schema.NumAttrs(), rows, len(trace))

	// ---- AutoPart: offline, whole-workload, static. ----
	infos := make([]query.Info, len(trace))
	for i, q := range trace {
		infos[i] = query.InfoOf(q)
	}
	start := time.Now()
	parts := advisor.AutoPart(schema.NumAttrs(), rows, infos, costmodel.New(costmodel.Default()))
	rel, err := storage.BuildPartitioned(tb, parts)
	if err != nil {
		log.Fatal(err)
	}
	apCreate := time.Since(start)

	apOpts := core.DefaultOptions()
	apOpts.Mode = core.ModeFrozen
	apEng := core.New(rel, apOpts)
	var apExec time.Duration
	for _, q := range trace {
		_, info, err := apEng.Execute(q)
		if err != nil {
			log.Fatal(err)
		}
		apExec += info.Duration
	}
	fmt.Printf("AutoPart: %d static partitions, layout creation %.0fms, execution %.0fms, total %.0fms\n",
		len(parts), msf(apCreate), msf(apExec), msf(apCreate+apExec))

	// ---- H2O: hands-free. ----
	h2oEng := core.NewH2O(tb, core.DefaultOptions())
	var h2oTotal time.Duration
	reorgs := 0
	for _, q := range trace {
		_, info, err := h2oEng.Execute(q)
		if err != nil {
			log.Fatal(err)
		}
		h2oTotal += info.Duration
		if info.Reorganized {
			reorgs++
		}
	}
	st := h2oEng.Stats()
	fmt.Printf("H2O:      no workload knowledge, %d online reorganizations, total %.0fms\n",
		reorgs, msf(h2oTotal))
	fmt.Printf("\nH2O vs AutoPart: %.2fx (paper Fig. 8: H2O wins, including its layout-creation overhead)\n",
		float64(apCreate+apExec)/float64(h2oTotal))
	fmt.Printf("H2O created %d groups across %d adaptation phases\n", st.GroupsCreated, st.Adaptations)
}

func msf(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
