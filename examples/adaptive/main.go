// Adaptive workload walkthrough — the paper's §4.1 experiment in miniature:
// a 60-query evolving sequence over a 150-attribute relation, run on a
// static row store, a static column store and H2O. H2O starts column-major,
// detects recurring attribute combinations, and morphs its layout online.
//
//	go run ./examples/adaptive
package main

import (
	"fmt"
	"log"
	"time"

	"h2o/internal/core"
	"h2o/internal/data"
	"h2o/internal/workload"
)

func main() {
	const (
		nAttrs = 150
		rows   = 100_000
		nQ     = 60
	)
	tb := data.Generate(data.SyntheticSchema("R", nAttrs), rows, 2014)
	qs := workload.AdaptiveSequence("R", nAttrs, rows, nQ, 10, 30, 2014)

	rowEng := core.NewRowStore(tb, false)
	colEng := core.NewColumnStore(tb)
	opts := core.DefaultOptions()
	opts.Window.InitialSize = 20
	h2oEng := core.NewH2O(tb, opts)

	var rowT, colT, h2oT time.Duration
	fmt.Println("query   row(ms)  column(ms)  h2o(ms)   h2o event")
	for i, q := range qs {
		_, ri, err := rowEng.Execute(q)
		if err != nil {
			log.Fatal(err)
		}
		_, ci, err := colEng.Execute(q)
		if err != nil {
			log.Fatal(err)
		}
		_, hi, err := h2oEng.Execute(q)
		if err != nil {
			log.Fatal(err)
		}
		rowT += ri.Duration
		colT += ci.Duration
		h2oT += hi.Duration
		event := ""
		if hi.Reorganized {
			event = fmt.Sprintf("reorganized -> group over %d attrs", len(hi.NewGroup))
		}
		fmt.Printf("%-6d  %-7.2f  %-10.2f  %-8.2f  %s\n",
			i+1, msf(ri.Duration), msf(ci.Duration), msf(hi.Duration), event)
	}

	st := h2oEng.Stats()
	fmt.Printf("\ncumulative: row=%.1fms column=%.1fms h2o=%.1fms\n", msf(rowT), msf(colT), msf(h2oT))
	fmt.Printf("h2o: %d adaptation phases, %d online reorganizations, %d groups created\n",
		st.Adaptations, st.Reorgs, st.GroupsCreated)
	fmt.Printf("h2o vs row: %.2fx, h2o vs column: %.2fx (paper Table 1: 2.6x and 1.39x)\n",
		float64(rowT)/float64(h2oT), float64(colT)/float64(h2oT))
}

func msf(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
