// Network-telemetry scenario — the intro's motivating business workload:
// a wide flow-record table (200 attributes: counters, latencies, flags per
// protocol) serving two very different query populations that alternate:
//
//   - dashboards: narrow, repetitive aggregates over a handful of hot
//     counters (columnar-friendly);
//   - incident investigations: wide scans touching dozens of attributes of
//     the affected subsystems (row/group-friendly).
//
// A fixed layout serves one population and punishes the other; H2O serves
// both by re-partitioning online as the mix shifts.
//
//	go run ./examples/telemetry
package main

import (
	"fmt"
	"log"
	"time"

	"h2o/internal/core"
	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
)

const (
	nAttrs = 200
	rows   = 100_000
)

func dashboards(n int) []*query.Query {
	// Hot counters: bytes/packets/errors for the front-end service.
	hot := []data.AttrID{4, 5, 6}
	out := make([]*query.Query, n)
	for i := range out {
		out[i] = query.Aggregation("flows", expr.AggSum, hot, query.PredGt(0, 0))
	}
	return out
}

func investigation(n int) []*query.Query {
	// The database tier's whole attribute block, scanned wide while
	// debugging an incident.
	block := make([]data.AttrID, 0, 30)
	for a := 120; a < 150; a++ {
		block = append(block, a)
	}
	out := make([]*query.Query, n)
	for i := range out {
		out[i] = query.AggExpression("flows", block, query.PredLt(block[0], 0))
	}
	return out
}

func main() {
	tb := data.Generate(data.SyntheticSchema("flows", nAttrs), rows, 99)

	opts := core.DefaultOptions()
	opts.Window.InitialSize = 10
	eng := core.NewH2O(tb, opts)
	colEng := core.NewColumnStore(tb)
	rowEng := core.NewRowStore(tb, false)

	phases := []struct {
		name string
		qs   []*query.Query
	}{
		{"morning dashboards", dashboards(25)},
		{"incident investigation", investigation(25)},
		{"back to dashboards", dashboards(15)},
		{"second incident", investigation(15)},
	}

	var h2oT, colT, rowT time.Duration
	for _, ph := range phases {
		var phH2O, phCol, phRow time.Duration
		events := 0
		for _, q := range ph.qs {
			_, hi, err := eng.Execute(q)
			if err != nil {
				log.Fatal(err)
			}
			_, ci, err := colEng.Execute(q)
			if err != nil {
				log.Fatal(err)
			}
			_, rI, err := rowEng.Execute(q)
			if err != nil {
				log.Fatal(err)
			}
			phH2O += hi.Duration
			phCol += ci.Duration
			phRow += rI.Duration
			if hi.Reorganized {
				events++
			}
		}
		h2oT += phH2O
		colT += phCol
		rowT += phRow
		fmt.Printf("%-24s h2o=%.1fms column=%.1fms row=%.1fms reorgs=%d\n",
			ph.name, msf(phH2O), msf(phCol), msf(phRow), events)
	}

	st := eng.Stats()
	fmt.Printf("\ntotals: h2o=%.1fms column=%.1fms row=%.1fms\n", msf(h2oT), msf(colT), msf(rowT))
	fmt.Printf("h2o adapted %d times, created %d groups; layout now: %s\n",
		st.Adaptations, st.GroupsCreated, eng.Relation().LayoutSignature())
}

func msf(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
