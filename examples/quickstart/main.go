// Quickstart: create a table, run SQL, and watch H2O pick layouts and
// execution strategies per query.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"h2o"
)

func main() {
	// A modest synthetic table: 40 integer attributes, 200k rows, stored
	// column-major to start (the layout H2O prefers as a morphing origin).
	db := h2o.NewDB()
	db.CreateTableFrom(h2o.SyntheticSchema("events", 40), 200_000, 1)

	queries := []string{
		// Columnar-friendly: two independent aggregates.
		"select max(a3), min(a3) from events",
		// Selective filter plus projection.
		"select a1, a2, a4 from events where a0 < -900000000",
		// An arithmetic expression over five attributes — the shape where
		// column groups shine (no intermediate results).
		"select sum(a10 + a11 + a12 + a13 + a14) from events where a9 > 0",
	}

	for _, src := range queries {
		res, info, err := db.Query(src)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s\n", src)
		fmt.Printf("  -> %d row(s) in %v  [strategy=%v, layout=%v]\n",
			res.Rows, info.Duration.Round(1000), info.Strategy, info.Layout)
		if res.Rows == 1 && res.Width() <= 4 {
			fmt.Printf("  -> %v = %v\n", res.Cols, res.Row(0))
		}
	}

	// Keep issuing the expression query: H2O's monitor spots the recurring
	// pattern, the advisor proposes a column group for it, and the first
	// query that benefits creates the group online.
	fmt.Println("\nrepeating the expression pattern 30x ...")
	for i := 0; i < 30; i++ {
		_, info, err := db.Query("select sum(a10 + a11 + a12 + a13 + a14) from events where a9 > 0")
		if err != nil {
			log.Fatal(err)
		}
		if info.Reorganized {
			fmt.Printf("  query %d triggered online reorganization: new group over %d attributes\n",
				i+1, len(info.NewGroup))
		}
	}

	e, _ := db.Engine("events")
	st := e.Stats()
	sig, _ := db.LayoutSignature("events")
	fmt.Printf("\nengine stats: %d queries, %d adaptations, %d reorganizations, %d groups created\n",
		st.Queries, st.Adaptations, st.Reorgs, st.GroupsCreated)
	fmt.Printf("final layout: %s\n", sig)
}
