package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchEntry is one benchmark's normalized result — the unit of the
// per-commit perf trajectory CI accumulates as bench.json artifacts.
type benchEntry struct {
	Name       string  `json:"name"`
	Package    string  `json:"package,omitempty"`
	Iterations int64   `json:"iterations"`
	NsPerOp    float64 `json:"ns_per_op"`
}

// benchReportDoc is the bench.json root object.
type benchReportDoc struct {
	Benchmarks []benchEntry `json:"benchmarks"`
}

// testEvent is the subset of `go test -json` events bench parsing needs.
type testEvent struct {
	Action  string `json:"Action"`
	Package string `json:"Package"`
	Output  string `json:"Output"`
}

// benchLine matches the standard benchmark result line, e.g.
// "BenchmarkScanSpilled-8     1    123456 ns/op". The -N CPU suffix is
// stripped so trajectories compare across runner shapes.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op`)

// emitBenchReport reads `go test -json` (or plain `go test -bench`) output
// from r and writes the normalized bench.json document to w. `go test
// -json` splits one benchmark result line across several output events, so
// fragments are reassembled per package before matching; lines that are
// neither JSON test events nor benchmark result lines are ignored, so the
// tool tolerates interleaved build output.
func emitBenchReport(r io.Reader, w io.Writer) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	var entries []benchEntry
	record := func(pkg, text string) {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(text))
		if m == nil {
			return
		}
		iters, err := strconv.ParseInt(m[2], 10, 64)
		if err != nil {
			return
		}
		ns, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			return
		}
		entries = append(entries, benchEntry{Name: m[1], Package: pkg, Iterations: iters, NsPerOp: ns})
	}
	partial := make(map[string]string) // package -> unterminated output fragment
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "{") {
			record("", line) // plain `go test -bench` output
			continue
		}
		var ev testEvent
		if err := json.Unmarshal([]byte(line), &ev); err != nil || ev.Action != "output" {
			continue
		}
		acc := partial[ev.Package] + ev.Output
		for {
			nl := strings.IndexByte(acc, '\n')
			if nl < 0 {
				break
			}
			record(ev.Package, acc[:nl])
			acc = acc[nl+1:]
		}
		partial[ev.Package] = acc
	}
	if err := sc.Err(); err != nil {
		return err
	}
	for pkg, rest := range partial {
		record(pkg, rest)
	}
	sort.Slice(entries, func(i, j int) bool {
		if entries[i].Package != entries[j].Package {
			return entries[i].Package < entries[j].Package
		}
		return entries[i].Name < entries[j].Name
	})
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(benchReportDoc{Benchmarks: entries}); err != nil {
		return err
	}
	if len(entries) == 0 {
		return fmt.Errorf("no benchmark results found in input")
	}
	return nil
}
