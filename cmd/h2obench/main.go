// Command h2obench regenerates the tables and figures of the paper's
// evaluation (§4). Each experiment id maps to one table or figure:
//
//	h2obench -exp fig7                # one experiment
//	h2obench -exp all                 # the full evaluation
//	h2obench -list                    # enumerate experiments
//	h2obench -exp fig1 -rows250 200000 -repeats 5
//	h2obench -exp table1 -csv         # machine-readable output
//
// Row counts are scaled down from the paper's 50-100M-row relations so a
// laptop run finishes in minutes; the shapes (who wins, crossovers, factors)
// are what the harness reproduces.
//
// Beyond the paper, -exp serve sweeps the concurrent serving layer: for
// each client count it measures queries-per-second on a cache-hit workload
// (every client replays one query) and a read-only cache-miss workload
// (clients rotate distinct queries, cache disabled), so the scaling of the
// shared-read lock and the sharded result cache is visible on multi-core
// hosts:
//
//	h2obench -exp serve -clients 1,2,4,8,16 -duration 2s
//
// -exp segments measures the segmented-storage contract: appends and
// hot-segment reorganizations stay O(segment size) as the relation grows,
// and selective scans over append-ordered data skip cold segments via
// per-segment zone maps.
//
// -exp spill measures the tiered-storage contract: as the memory budget
// shrinks below the relation size, selective scans stay flat (zone maps
// prune spilled cold segments with zero disk reads) while full scans pay
// one page-in per spilled segment they need:
//
//	h2obench -exp spill
//
// -exp repair measures partial-result reuse: a repeated full-relation
// aggregate under tail appends is delta-repaired (only the changed tail
// segment is rescanned, the rest comes from cached per-segment partials),
// so its cost stays flat as the relation doubles while full recomputation
// grows with the segment count:
//
//	h2obench -exp repair
//
// -exp groupby extends the repair sweep to GROUP BY: a repeated grouped
// aggregate under tail appends is repaired by merging the cached
// per-segment group maps with a rescan of only the appended tail, so its
// cost stays flat as the relation doubles while full re-aggregation
// rebuilds every segment's groups:
//
//	h2obench -exp groupby
//
// -exp shard sweeps sharded scatter-gather serving: the same relation is
// dealt round-robin across 1/2/4/8 in-process shards and the sweep
// reports scatter-gather latency (per-shard partials merged under the
// partials merge law) and serving-layer repair latency under tail
// appends — which stays at one rescanned segment per append at every
// shard count, because an append moves exactly one shard's fingerprint
// component:
//
//	h2obench -exp shard
//
// Finally, -bench-report turns `go test -bench . -benchtime=1x -json`
// output (read on stdin) into a normalized bench.json on stdout — the
// per-commit perf-trajectory artifact CI uploads:
//
//	go test -run '^$' -bench . -benchtime=1x -json ./... | h2obench -bench-report > bench.json
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"h2o"
	"h2o/internal/harness"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (fig1, fig2a-c, fig7, table1, fig8, fig9, fig10a-f, fig11, fig12, fig13, fig14, ablation-*, segments) or 'all'")
		list    = flag.Bool("list", false, "list available experiments and exit")
		rows150 = flag.Int("rows150", 0, "rows of the 150-attribute relation (default 100000)")
		rows250 = flag.Int("rows250", 0, "rows of the 250-attribute relation (default 50000)")
		rows100 = flag.Int("rows100", 0, "rows of the 100-attribute relation (default 100000)")
		rowsSky = flag.Int("rowssky", 0, "rows of the simulated PhotoObjAll table (default 20000)")
		repeats = flag.Int("repeats", 0, "timing repetitions for kernel experiments (default 3)")
		seed    = flag.Int64("seed", 0, "workload/data seed (default 2014)")
		quick   = flag.Bool("quick", false, "tiny scale for smoke runs")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")

		clients  = flag.String("clients", "1,2,4,8", "client counts for -exp serve")
		duration = flag.Duration("duration", time.Second, "per-point measurement time for -exp serve")
		rowsSrv  = flag.Int("rowsserve", 50_000, "rows of the serving-sweep table")

		benchReport = flag.Bool("bench-report", false, "read 'go test -bench -json' output on stdin, write normalized bench.json to stdout")
	)
	flag.Parse()

	if *benchReport {
		if err := emitBenchReport(os.Stdin, os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "h2obench: bench-report: %v\n", err)
			os.Exit(1)
		}
		return
	}
	if *list {
		for _, r := range harness.Experiments() {
			fmt.Printf("  %-18s %s\n", r.Name, r.Description)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "h2obench: -exp is required (try -list)")
		os.Exit(2)
	}
	if *exp == "serve" {
		if err := serveSweep(*clients, *duration, *rowsSrv, *csv); err != nil {
			fmt.Fprintf(os.Stderr, "h2obench: serve: %v\n", err)
			os.Exit(1)
		}
		return
	}

	cfg := harness.Config{
		Rows150: *rows150, Rows250: *rows250, Rows100: *rows100, RowsSky: *rowsSky,
		Repeats: *repeats, Seed: *seed, Quick: *quick,
	}

	run := func(name string, fn func(harness.Config) (*harness.Table, error)) {
		t, err := fn(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "h2obench: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *csv {
			t.CSV(os.Stdout)
		} else {
			t.Fprint(os.Stdout)
		}
		fmt.Println()
	}

	if *exp == "all" {
		for _, r := range harness.Experiments() {
			run(r.Name, r.Run)
		}
		return
	}
	run(*exp, func(c harness.Config) (*harness.Table, error) { return harness.Run(*exp, c) })
}

// serveSweep measures serving-layer throughput against client count: a
// cache-hit workload (all clients replay one query) and a read-only
// cache-miss workload (clients rotate distinct queries, cache disabled).
func serveSweep(clientsSpec string, dur time.Duration, rows int, csv bool) error {
	counts, err := parseCounts(clientsSpec)
	if err != nil {
		return err
	}

	db := h2o.NewDB()
	db.CreateTableFrom(h2o.SyntheticSchema("R", 16), rows, 2014)
	queries := make([]*h2o.Query, 16)
	for i := range queries {
		q, err := db.Parse(fmt.Sprintf("select max(a%d) from R where a%d < 0", i%16, (i+1)%16))
		if err != nil {
			return err
		}
		queries[i] = q
	}
	// Settle the adaptive machinery so measurements see the steady state.
	for _, q := range queries {
		if _, _, err := db.Exec(q); err != nil {
			return err
		}
	}

	if csv {
		fmt.Println("clients,cachehit_qps,readonly_qps")
	} else {
		fmt.Printf("serving-layer sweep: %d rows, %v per point\n", rows, dur)
		fmt.Printf("%8s %16s %16s\n", "clients", "cache-hit qps", "read-only qps")
	}
	for _, c := range counts {
		hitQPS, err := measure(db, h2o.ServerConfig{}, queries[:1], c, dur)
		if err != nil {
			return err
		}
		missQPS, err := measure(db, h2o.ServerConfig{CacheEntries: -1}, queries, c, dur)
		if err != nil {
			return err
		}
		if csv {
			fmt.Printf("%d,%.0f,%.0f\n", c, hitQPS, missQPS)
		} else {
			fmt.Printf("%8d %16.0f %16.0f\n", c, hitQPS, missQPS)
		}
	}
	return nil
}

// measure runs clients goroutines against a fresh server for dur and
// returns aggregate queries per second.
func measure(db *h2o.DB, cfg h2o.ServerConfig, queries []*h2o.Query, clients int, dur time.Duration) (float64, error) {
	srv := db.Serve(cfg)
	defer srv.Close()
	ctx := context.Background()
	// Warm: one pass so the cache-hit workload actually hits.
	for _, q := range queries {
		if _, _, err := srv.Query(ctx, q); err != nil {
			return 0, err
		}
	}

	var ops atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	stop := make(chan struct{})
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := c; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if _, _, err := srv.Query(ctx, queries[i%len(queries)]); err != nil {
					errMu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					errMu.Unlock()
					return
				}
				ops.Add(1)
			}
		}(c)
	}
	time.Sleep(dur)
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)
	errMu.Lock()
	err := firstErr
	errMu.Unlock()
	if err != nil {
		return 0, err
	}
	return float64(ops.Load()) / elapsed.Seconds(), nil
}

func parseCounts(spec string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(spec, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 1 {
			return nil, fmt.Errorf("bad client count %q", part)
		}
		out = append(out, n)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("no client counts in %q", spec)
	}
	return out, nil
}
