// Command h2obench regenerates the tables and figures of the paper's
// evaluation (§4). Each experiment id maps to one table or figure:
//
//	h2obench -exp fig7                # one experiment
//	h2obench -exp all                 # the full evaluation
//	h2obench -list                    # enumerate experiments
//	h2obench -exp fig1 -rows250 200000 -repeats 5
//	h2obench -exp table1 -csv         # machine-readable output
//
// Row counts are scaled down from the paper's 50-100M-row relations so a
// laptop run finishes in minutes; the shapes (who wins, crossovers, factors)
// are what the harness reproduces.
package main

import (
	"flag"
	"fmt"
	"os"

	"h2o/internal/harness"
)

func main() {
	var (
		exp     = flag.String("exp", "", "experiment id (fig1, fig2a-c, fig7, table1, fig8, fig9, fig10a-f, fig11, fig12, fig13, fig14, ablation-*) or 'all'")
		list    = flag.Bool("list", false, "list available experiments and exit")
		rows150 = flag.Int("rows150", 0, "rows of the 150-attribute relation (default 100000)")
		rows250 = flag.Int("rows250", 0, "rows of the 250-attribute relation (default 50000)")
		rows100 = flag.Int("rows100", 0, "rows of the 100-attribute relation (default 100000)")
		rowsSky = flag.Int("rowssky", 0, "rows of the simulated PhotoObjAll table (default 20000)")
		repeats = flag.Int("repeats", 0, "timing repetitions for kernel experiments (default 3)")
		seed    = flag.Int64("seed", 0, "workload/data seed (default 2014)")
		quick   = flag.Bool("quick", false, "tiny scale for smoke runs")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
	)
	flag.Parse()

	if *list {
		for _, r := range harness.Experiments() {
			fmt.Printf("  %-18s %s\n", r.Name, r.Description)
		}
		return
	}
	if *exp == "" {
		fmt.Fprintln(os.Stderr, "h2obench: -exp is required (try -list)")
		os.Exit(2)
	}

	cfg := harness.Config{
		Rows150: *rows150, Rows250: *rows250, Rows100: *rows100, RowsSky: *rowsSky,
		Repeats: *repeats, Seed: *seed, Quick: *quick,
	}

	run := func(name string, fn func(harness.Config) (*harness.Table, error)) {
		t, err := fn(cfg)
		if err != nil {
			fmt.Fprintf(os.Stderr, "h2obench: %s: %v\n", name, err)
			os.Exit(1)
		}
		if *csv {
			t.CSV(os.Stdout)
		} else {
			t.Fprint(os.Stdout)
		}
		fmt.Println()
	}

	if *exp == "all" {
		for _, r := range harness.Experiments() {
			run(r.Name, r.Run)
		}
		return
	}
	run(*exp, func(c harness.Config) (*harness.Table, error) { return harness.Run(*exp, c) })
}
