// Command h2oshell is an interactive SQL shell on top of the adaptive
// engine. It creates a synthetic wide table and lets you watch the layout
// and execution strategy evolve query by query:
//
//	h2oshell -attrs 50 -rows 100000
//	h2o> select max(a1), max(a5) from R where a0 < 0
//	h2o> select a3, sum(a1) from R group by a3 limit 10
//	h2o> \layout        # current column groups
//	h2o> \stats         # adaptations, reorganizations, operator cache
//	h2o> \cache         # serving layer: result cache hits, executions
//	h2o> \replay trace.sql
//	h2o> \quit
//
// Statements run through the serving layer (DB.QueryCtx): repeated selects
// hit the versioned result cache until an insert or reorganization bumps
// the relation version. -parallel partitions fused scans across goroutines.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"h2o"
)

func main() {
	var (
		attrs    = flag.Int("attrs", 50, "attributes of the synthetic table R")
		rows     = flag.Int("rows", 100_000, "rows of the synthetic table R")
		seed     = flag.Int64("seed", 2014, "data seed")
		maxRows  = flag.Int("display", 5, "result rows to display")
		parallel = flag.Int("parallel", 0, "goroutines per fused scan (0 = serial)")
	)
	flag.Parse()

	opts := h2o.DefaultOptions()
	opts.Parallelism = *parallel
	db := h2o.NewDBWith(opts)
	defer db.Close()
	db.CreateTableFrom(h2o.SyntheticSchema("R", *attrs), *rows, *seed)
	fmt.Printf("table R: %d attributes (a0..a%d), %d rows, column-major start\n", *attrs, *attrs-1, *rows)
	fmt.Println(`type SQL, or \layout, \stats, \cache, \explain <sql>, \replay <file>, \save <file>, \load <file>, \quit`)

	in := bufio.NewScanner(os.Stdin)
	in.Buffer(make([]byte, 1<<20), 1<<20)
	for {
		fmt.Print("h2o> ")
		if !in.Scan() {
			fmt.Println()
			return
		}
		line := strings.TrimSpace(in.Text())
		switch {
		case line == "":
		case line == `\quit` || line == `\q`:
			return
		case line == `\layout`:
			sig, err := db.LayoutSignature("R")
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Println(sig)
		case line == `\stats`:
			e, err := db.Engine("R")
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			st := e.Stats()
			fmt.Printf("queries=%d adaptations=%d reorgs=%d groups_created=%d groups_dropped=%d op_cache_hits=%d misses=%d window=%d version=%d\n",
				st.Queries, st.Adaptations, st.Reorgs, st.GroupsCreated, st.GroupsDropped,
				st.OpCacheHits, st.OpCacheMisses, e.WindowSize(), e.Version())
		case line == `\cache`:
			st := db.ServeStats()
			fmt.Printf("submitted=%d executed=%d cache_hits=%d cache_misses=%d canceled=%d uncacheable=%d republished=%d repaired=%d repaired_segments=%d memo_hits=%d\n",
				st.Submitted, st.Executed, st.CacheHits, st.CacheMisses, st.Canceled, st.Uncacheable, st.Republished,
				st.Repaired, st.RepairedSegments, st.MemoHits)
		case strings.HasPrefix(line, `\explain `):
			src := strings.TrimSpace(strings.TrimPrefix(line, `\explain `))
			q, err := db.Parse(src)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			e, err := db.Engine(q.Table)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			ex, err := e.Explain(q)
			if err != nil {
				fmt.Println("error:", err)
				continue
			}
			fmt.Printf("plan: %v (est %.3gs)\n", ex.Strategy, float64(ex.EstimatedCost))
			for _, alt := range ex.Alternatives {
				fmt.Printf("  %-14v est %.3gs\n", alt.Strategy, float64(alt.Cost))
			}
			fmt.Printf("groups touched: %s\n", strings.Join(ex.CoveringGroups, " "))
			if ex.PendingProposal != nil {
				fmt.Printf("pending layout proposal covers this query: %s\n", ex.PendingProposal)
			}
		case strings.HasPrefix(line, `\replay `):
			replay(db, strings.TrimSpace(strings.TrimPrefix(line, `\replay `)), *maxRows)
		case strings.HasPrefix(line, `\save `):
			path := strings.TrimSpace(strings.TrimPrefix(line, `\save `))
			if err := db.SaveTable("R", path); err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("saved R (data + adapted layout) to", path)
			}
		case strings.HasPrefix(line, `\load `):
			path := strings.TrimSpace(strings.TrimPrefix(line, `\load `))
			name, err := db.LoadTable(path)
			if err != nil {
				fmt.Println("error:", err)
			} else {
				fmt.Println("restored table", name, "with its adapted layout")
			}
		default:
			execute(db, line, *maxRows)
		}
	}
}

func execute(db *h2o.DB, src string, maxRows int) {
	res, info, err := db.QueryCtx(context.Background(), src)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	printResult(res, maxRows)
	event := ""
	if info.Reorganized {
		event = fmt.Sprintf("  [reorganized: new group over %d attributes]", len(info.NewGroup))
	}
	if info.CacheHit {
		event += "  [result cache hit]"
	}
	fmt.Printf("-- %d row(s), %v, strategy=%v layout=%v%s\n",
		res.Rows, info.Duration.Round(100), info.Strategy, info.Layout, event)
}

func replay(db *h2o.DB, path string, maxRows int) {
	f, err := os.Open(path)
	if err != nil {
		fmt.Println("error:", err)
		return
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	n := 0
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "--") {
			continue
		}
		n++
		res, info, err := db.QueryCtx(context.Background(), line)
		if err != nil {
			fmt.Printf("q%d error: %v\n", n, err)
			continue
		}
		event := ""
		if info.Reorganized {
			event = " REORG"
		}
		if info.CacheHit {
			event += " CACHED"
		}
		fmt.Printf("q%-4d %8v  %v  %d row(s)%s\n", n, info.Duration.Round(100), info.Strategy, res.Rows, event)
	}
	if err := sc.Err(); err != nil {
		fmt.Println("error:", err)
	}
	_ = maxRows
}

// printResult renders the result as an aligned table: header, rule, then up
// to maxRows rows. Column widths come from the displayed cells, so grouped
// output (one row per key, the key columns leading) lines up readably.
func printResult(res *h2o.Result, maxRows int) {
	n := res.Rows
	truncated := false
	if n > maxRows {
		n, truncated = maxRows, true
	}
	w := res.Width()
	widths := make([]int, w)
	rows := make([][]string, n)
	for j, c := range res.Cols {
		widths[j] = len(c)
	}
	for i := 0; i < n; i++ {
		rows[i] = make([]string, w)
		for j := 0; j < w; j++ {
			rows[i][j] = fmt.Sprint(res.At(i, j))
			if len(rows[i][j]) > widths[j] {
				widths[j] = len(rows[i][j])
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for j, c := range cells {
			parts[j] = fmt.Sprintf("%*s", widths[j], c)
		}
		fmt.Println(strings.Join(parts, " | "))
	}
	line(res.Cols)
	rule := make([]string, w)
	for j := range rule {
		rule[j] = strings.Repeat("-", widths[j])
	}
	fmt.Println(strings.Join(rule, "-+-"))
	for _, r := range rows {
		line(r)
	}
	if truncated {
		fmt.Printf("... (%d more)\n", res.Rows-maxRows)
	}
}
