// Command h2ogen generates SQL workload traces for h2oshell's \replay mode
// and for driving the engine from scripts. Traces correspond to the paper's
// workload classes:
//
//	h2ogen -workload adaptive -attrs 150 -n 100 > adaptive.sql
//	h2ogen -workload shift -attrs 150 -n 60 > shift.sql
//	h2ogen -workload skyserver -n 250 > sky.sql
//	h2ogen -workload oscillate -period 5 -n 80 > osc.sql
package main

import (
	"flag"
	"fmt"
	"os"

	"h2o/internal/query"
	"h2o/internal/workload"
)

func main() {
	var (
		kind   = flag.String("workload", "adaptive", "adaptive | shift | oscillate | skyserver")
		attrs  = flag.Int("attrs", 150, "table width (ignored for skyserver)")
		rows   = flag.Int("rows", 100_000, "table rows (used to scale selectivity dials)")
		n      = flag.Int("n", 100, "queries to generate")
		seed   = flag.Int64("seed", 2014, "workload seed")
		period = flag.Int("period", 5, "oscillation period (oscillate only)")
		table  = flag.String("table", "R", "table name (ignored for skyserver)")
	)
	flag.Parse()

	var qs []*query.Query
	switch *kind {
	case "adaptive":
		qs = workload.AdaptiveSequence(*table, *attrs, *rows, *n, 10, 30, *seed)
	case "shift":
		qs = workload.ShiftSequence(*table, *attrs, *n, *n/4, *seed)
	case "oscillate":
		qs = workload.OscillatingSequence(*table, *attrs, *n, *period, *seed)
	case "skyserver":
		qs = workload.SkyServerTrace(*rows, *seed)
		if *n < len(qs) {
			qs = qs[:*n]
		}
	default:
		fmt.Fprintf(os.Stderr, "h2ogen: unknown workload %q\n", *kind)
		os.Exit(2)
	}

	fmt.Printf("-- h2ogen: %s workload, %d queries, seed %d\n", *kind, len(qs), *seed)
	for _, q := range qs {
		fmt.Println(q)
	}
}
