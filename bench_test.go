// Benchmarks mapping one-to-one onto the paper's tables and figures: each
// BenchmarkFig*/BenchmarkTable* regenerates the corresponding experiment
// through the harness at smoke scale. Run the full-scale versions with
// cmd/h2obench (go run ./cmd/h2obench -exp all).
//
// The BenchmarkServe* benchmarks measure the concurrent serving layer
// instead: run them with increasing -cpu values (e.g. -cpu 1,2,4,8) to see
// queries-per-second scale with client count on cache-hit and read-only
// workloads. cmd/h2obench -exp serve prints the same sweep as a table.
package h2o_test

import (
	"context"
	"fmt"
	"testing"

	"h2o"
	"h2o/internal/harness"
)

// benchCfg is the smoke-scale configuration: the benchmark suite exercises
// every experiment's full code path; absolute numbers come from h2obench.
var benchCfg = harness.Config{Quick: true}

func benchExperiment(b *testing.B, name string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		t, err := harness.Run(name, benchCfg)
		if err != nil {
			b.Fatal(err)
		}
		if len(t.Rows) == 0 {
			b.Fatalf("experiment %s produced no rows", name)
		}
	}
}

// BenchmarkFig1RowVsColumn regenerates Figure 1 (the motivating crossover).
func BenchmarkFig1RowVsColumn(b *testing.B) { benchExperiment(b, "fig1") }

// BenchmarkFig2a regenerates Figure 2(a): projectivity sweep, no where clause.
func BenchmarkFig2a(b *testing.B) { benchExperiment(b, "fig2a") }

// BenchmarkFig2b regenerates Figure 2(b): projectivity sweep, selectivity 40%.
func BenchmarkFig2b(b *testing.B) { benchExperiment(b, "fig2b") }

// BenchmarkFig2c regenerates Figure 2(c): projectivity sweep, selectivity 1%.
func BenchmarkFig2c(b *testing.B) { benchExperiment(b, "fig2c") }

// BenchmarkFig7Adaptive regenerates Figure 7 (per-query adaptive sequence).
func BenchmarkFig7Adaptive(b *testing.B) { benchExperiment(b, "fig7") }

// BenchmarkTable1Cumulative regenerates Table 1 (cumulative times).
func BenchmarkTable1Cumulative(b *testing.B) { benchExperiment(b, "table1") }

// BenchmarkFig8SkyServer regenerates Figure 8 (H2O vs AutoPart).
func BenchmarkFig8SkyServer(b *testing.B) { benchExperiment(b, "fig8") }

// BenchmarkFig9Window regenerates Figure 9 (static vs dynamic window).
func BenchmarkFig9Window(b *testing.B) { benchExperiment(b, "fig9") }

// BenchmarkFig10a regenerates Figure 10(a): projections vs #attributes.
func BenchmarkFig10a(b *testing.B) { benchExperiment(b, "fig10a") }

// BenchmarkFig10b regenerates Figure 10(b): aggregations vs #attributes.
func BenchmarkFig10b(b *testing.B) { benchExperiment(b, "fig10b") }

// BenchmarkFig10c regenerates Figure 10(c): expressions vs #attributes.
func BenchmarkFig10c(b *testing.B) { benchExperiment(b, "fig10c") }

// BenchmarkFig10d regenerates Figure 10(d): projections vs selectivity.
func BenchmarkFig10d(b *testing.B) { benchExperiment(b, "fig10d") }

// BenchmarkFig10e regenerates Figure 10(e): aggregations vs selectivity.
func BenchmarkFig10e(b *testing.B) { benchExperiment(b, "fig10e") }

// BenchmarkFig10f regenerates Figure 10(f): expressions vs selectivity.
func BenchmarkFig10f(b *testing.B) { benchExperiment(b, "fig10f") }

// BenchmarkFig11Subset regenerates Figure 11 (subset-of-group penalty).
func BenchmarkFig11Subset(b *testing.B) { benchExperiment(b, "fig11") }

// BenchmarkFig12MultiGroup regenerates Figure 12 (multi-group access).
func BenchmarkFig12MultiGroup(b *testing.B) { benchExperiment(b, "fig12") }

// BenchmarkFig13OnlineReorg regenerates Figure 13 (online vs offline reorg).
func BenchmarkFig13OnlineReorg(b *testing.B) { benchExperiment(b, "fig13") }

// BenchmarkFig14Codegen regenerates Figure 14 (generic vs generated code).
func BenchmarkFig14Codegen(b *testing.B) { benchExperiment(b, "fig14") }

// BenchmarkAblationWindow sweeps the monitoring window size.
func BenchmarkAblationWindow(b *testing.B) { benchExperiment(b, "ablation-window") }

// BenchmarkAblationGroups sweeps the MaxGroups layout budget.
func BenchmarkAblationGroups(b *testing.B) { benchExperiment(b, "ablation-groups") }

// BenchmarkAblationOscillate measures reorganization damping under
// oscillating workloads.
func BenchmarkAblationOscillate(b *testing.B) { benchExperiment(b, "ablation-oscillate") }

// BenchmarkAblationVector sweeps the vectorized executor's chunk size.
func BenchmarkAblationVector(b *testing.B) { benchExperiment(b, "ablation-vector") }

// BenchmarkAblationBitmap compares selection vectors with bit-vectors.
func BenchmarkAblationBitmap(b *testing.B) { benchExperiment(b, "ablation-bitmap") }

// BenchmarkAblationZonemap measures zone-map scan skipping.
func BenchmarkAblationZonemap(b *testing.B) { benchExperiment(b, "ablation-zonemap") }

// serveDB builds the serving-benchmark fixture: one table behind a server.
func serveDB(b *testing.B, cacheEntries int) (*h2o.DB, *h2o.Server) {
	b.Helper()
	db := h2o.NewDB()
	db.CreateTableFrom(h2o.SyntheticSchema("events", 16), 50_000, 17)
	srv := db.Serve(h2o.ServerConfig{CacheEntries: cacheEntries})
	return db, srv
}

// BenchmarkServeCacheHit measures the hot path of the serving layer: every
// client replays the same query, so after the first execution everything is
// a sharded-LRU cache hit. Throughput should scale near-linearly with -cpu.
func BenchmarkServeCacheHit(b *testing.B) {
	db, srv := serveDB(b, 4096)
	defer srv.Close()
	q, err := db.Parse("select max(a1), min(a2) from events where a0 < 0")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, _, err := srv.Query(ctx, q); err != nil { // warm the cache
		b.Fatal(err)
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, err := srv.Query(ctx, q); err != nil {
				b.Error(err)
				return
			}
		}
	})
}

// BenchmarkServeDeltaRepair measures the repair tier of the serving layer:
// each iteration appends one row (stranding the cached full-relation
// aggregate) and re-runs the aggregate, which is answered by rescanning
// only the changed tail segment and re-combining with the cached
// per-segment partials. Compare with BenchmarkServeReadOnly at the same
// scale to see the O(changed segments) vs O(relation) gap; cmd/h2obench
// -exp repair prints the gap as a sweep over relation sizes.
func BenchmarkServeDeltaRepair(b *testing.B) {
	opts := h2o.DefaultOptions()
	opts.Mode = h2o.ModeFrozen // only the appends mutate
	opts.SegmentCapacity = 4096
	db := h2o.NewDBWith(opts)
	db.CreateTableFrom(h2o.SyntheticSchema("events", 8), 64*1024, 17) // 16 segments
	srv := db.Serve(h2o.ServerConfig{Workers: 2})
	defer srv.Close()
	q, err := db.Parse("select sum(a1), sum(a2) from events")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, _, err := srv.Query(ctx, q); err != nil { // seed the partials
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.Query("insert into events values (1, 2, 3, 4, 5, 6, 7, 8)"); err != nil {
			b.Fatal(err)
		}
		if _, info, err := srv.Query(ctx, q); err != nil {
			b.Fatal(err)
		} else if i > 0 && info.RepairedSegments == 0 {
			b.Fatal("repair tier not exercised")
		}
	}
}

// BenchmarkServeGroupedRepair measures the repair tier on a GROUP BY
// aggregate: each iteration appends one row and re-runs the grouped query,
// which is answered by merging the cached per-segment group maps with a
// rescan of only the changed tail segment. cmd/h2obench -exp groupby prints
// grouped repair vs full re-aggregation as a sweep over relation sizes.
func BenchmarkServeGroupedRepair(b *testing.B) {
	opts := h2o.DefaultOptions()
	opts.Mode = h2o.ModeFrozen // only the appends mutate
	opts.SegmentCapacity = 4096
	db := h2o.NewDBWith(opts)
	tb := h2o.GenerateTimeSeries(h2o.SyntheticSchema("events", 8), 64*1024, 17) // 16 segments
	for r := 0; r < tb.Rows; r++ {
		// Fold the key column to 64 distinct groups: the synthetic domain is
		// near-unique, which would benchmark giant-map merging instead of
		// repair.
		if tb.Cols[3][r] %= 64; tb.Cols[3][r] < 0 {
			tb.Cols[3][r] += 64
		}
	}
	db.AddTable(tb)
	srv := db.Serve(h2o.ServerConfig{Workers: 2})
	defer srv.Close()
	q, err := db.Parse("select a3, sum(a1), count(a2) from events group by a3")
	if err != nil {
		b.Fatal(err)
	}
	ctx := context.Background()
	if _, _, err := srv.Query(ctx, q); err != nil { // seed the grouped partials
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := db.Query(fmt.Sprintf("insert into events values (1, 2, 3, %d, 5, 6, 7, 8)", i%64)); err != nil {
			b.Fatal(err)
		}
		if _, info, err := srv.Query(ctx, q); err != nil {
			b.Fatal(err)
		} else if i > 0 && info.RepairedSegments == 0 {
			b.Fatal("grouped repair tier not exercised")
		}
	}
}

// BenchmarkServeReadOnly measures concurrent execution with the cache
// disabled: every query scans under the engine's shared read lock. Scaling
// with -cpu here demonstrates that read-only queries no longer serialize
// behind one mutex.
func BenchmarkServeReadOnly(b *testing.B) {
	db, srv := serveDB(b, -1)
	defer srv.Close()
	queries := make([]*h2o.Query, 16)
	for i := range queries {
		q, err := db.Parse(fmt.Sprintf("select max(a%d) from events where a%d < 0", i%16, (i+1)%16))
		if err != nil {
			b.Fatal(err)
		}
		queries[i] = q
	}
	ctx := context.Background()
	// Settle the adaptive machinery so the steady state is read-only.
	for _, q := range queries {
		if _, _, err := srv.Query(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			if _, _, err := srv.Query(ctx, queries[i%len(queries)]); err != nil {
				b.Error(err)
				return
			}
			i++
		}
	})
}
