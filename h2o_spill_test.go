package h2o_test

import (
	"context"
	"testing"

	"h2o"
)

// TestServeCacheSurvivesSpill drives the tiered-storage contract through
// the public serving path: with a memory budget forcing most segments to
// disk, queries stay correct, and — because residency changes are not
// version bumps — a result cached before an eviction/page-in cycle is
// still served as a cache hit afterwards.
func TestServeCacheSurvivesSpill(t *testing.T) {
	opts := h2o.DefaultOptions()
	opts.MemoryBudgetBytes = 1 // spill everything sealed
	opts.SpillDir = t.TempDir()
	db := h2o.NewDBWith(opts)
	defer db.Close()
	db.CreateTableFrom(h2o.SyntheticSchema("R", 8), 160_000, 2014)

	eng, err := db.Engine("R")
	if err != nil {
		t.Fatal(err)
	}
	eng.EnforceBudget()
	ts, err := db.TierStats("R")
	if err != nil {
		t.Fatal(err)
	}
	if ts.SpilledSegments == 0 {
		t.Fatalf("budget of 1 byte spilled nothing: %+v", ts)
	}

	const q = "select sum(a1), max(a2) from R where a0 < 100000"
	ctx := context.Background()

	// First execution faults segments in and caches the result.
	res1, info1, err := db.QueryCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if info1.CacheHit {
		t.Fatal("first execution cannot be a cache hit")
	}

	// Evict everything again: the cached entry must still be addressable,
	// because spilling bumped no version.
	eng.EnforceBudget()
	res2, info2, err := db.QueryCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if !info2.CacheHit {
		t.Fatal("result cached before a spill cycle was not served as a hit after it")
	}
	if !res1.Equal(res2) {
		t.Fatal("cached result diverged across a spill cycle")
	}

	// A real mutation still invalidates: insert, then expect a fresh
	// execution whose result reflects the new row.
	if _, _, err := db.QueryCtx(ctx, "insert into R values (1, 2, 3, 4, 5, 6, 7, 8)"); err != nil {
		t.Fatal(err)
	}
	_, info3, err := db.QueryCtx(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if info3.CacheHit {
		t.Fatal("insert must invalidate the cached result")
	}
}

// TestQueryCorrectUnderBudgetFacade sweeps a few public-API queries with a
// tight budget and compares against an unlimited-memory database.
func TestQueryCorrectUnderBudgetFacade(t *testing.T) {
	queries := []string{
		"select sum(a1) from R",
		"select max(a3) from R where a0 < 0",
		"select a0, a2 from R where a1 > 900000000",
		"select min(a1 + a2) from R where a4 < 500000",
	}

	full := h2o.NewDB()
	full.CreateTableFrom(h2o.SyntheticSchema("R", 8), 160_000, 7)

	opts := h2o.DefaultOptions()
	opts.MemoryBudgetBytes = 1
	opts.SpillDir = t.TempDir()
	tight := h2o.NewDBWith(opts)
	tight.CreateTableFrom(h2o.SyntheticSchema("R", 8), 160_000, 7)
	eng, err := tight.Engine("R")
	if err != nil {
		t.Fatal(err)
	}

	for round := 0; round < 2; round++ {
		eng.EnforceBudget()
		for _, q := range queries {
			want, _, err := full.Query(q)
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			got, _, err := tight.Query(q)
			if err != nil {
				t.Fatalf("%s: %v", q, err)
			}
			if !got.Equal(want) {
				t.Fatalf("%s: spilled result diverged", q)
			}
		}
	}
}
