module h2o

go 1.21
