// Package sql implements a small hand-written lexer and recursive-descent
// parser for H2O's query class: select-project-aggregate statements over one
// table or a two-table equi-join, with conjunctive/disjunctive comparison
// predicates, e.g.
//
//	select a + b + c from R where d < 10 and e > 20
//	select max(a), sum(b) from R where c >= 0
//	select sum(S.v) from R join S on R.k = S.k where R.t < 100 group by R.g
//
// The parser resolves column names against the relation schemas (qualified
// by table name or alias when joined) and produces the logical query.Query
// representation with all attributes in the combined namespace.
package sql

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokComma
	tokDot
	tokLParen
	tokRParen
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokLt
	tokLe
	tokGt
	tokGe
	tokEq
	tokNe
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

func (t token) String() string {
	if t.kind == tokEOF {
		return "end of input"
	}
	return fmt.Sprintf("%q", t.text)
}

type lexer struct {
	src    string
	pos    int
	tokens []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.emit(tokEOF, l.pos, l.pos)
			return l.tokens, nil
		}
		start := l.pos
		c := l.src[l.pos]
		switch {
		case isIdentStart(rune(c)):
			for l.pos < len(l.src) && isIdentPart(rune(l.src[l.pos])) {
				l.pos++
			}
			l.emit(tokIdent, start, l.pos)
		case c >= '0' && c <= '9':
			for l.pos < len(l.src) && l.src[l.pos] >= '0' && l.src[l.pos] <= '9' {
				l.pos++
			}
			l.emit(tokNumber, start, l.pos)
		default:
			l.pos++
			switch c {
			case ',':
				l.emit(tokComma, start, l.pos)
			case '.':
				l.emit(tokDot, start, l.pos)
			case '(':
				l.emit(tokLParen, start, l.pos)
			case ')':
				l.emit(tokRParen, start, l.pos)
			case '+':
				l.emit(tokPlus, start, l.pos)
			case '-':
				l.emit(tokMinus, start, l.pos)
			case '*':
				l.emit(tokStar, start, l.pos)
			case '/':
				l.emit(tokSlash, start, l.pos)
			case '=':
				l.emit(tokEq, start, l.pos)
			case '<':
				switch {
				case l.peekByte() == '=':
					l.pos++
					l.emit(tokLe, start, l.pos)
				case l.peekByte() == '>':
					l.pos++
					l.emit(tokNe, start, l.pos)
				default:
					l.emit(tokLt, start, l.pos)
				}
			case '>':
				if l.peekByte() == '=' {
					l.pos++
					l.emit(tokGe, start, l.pos)
				} else {
					l.emit(tokGt, start, l.pos)
				}
			case '!':
				if l.peekByte() == '=' {
					l.pos++
					l.emit(tokNe, start, l.pos)
				} else {
					return nil, fmt.Errorf("sql: unexpected character %q at position %d", c, start)
				}
			default:
				return nil, fmt.Errorf("sql: unexpected character %q at position %d", c, start)
			}
		}
	}
}

func (l *lexer) emit(k tokenKind, start, end int) {
	l.tokens = append(l.tokens, token{kind: k, text: l.src[start:end], pos: start})
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) && unicode.IsSpace(rune(l.src[l.pos])) {
		l.pos++
	}
}

func (l *lexer) peekByte() byte {
	if l.pos < len(l.src) {
		return l.src[l.pos]
	}
	return 0
}

func isIdentStart(r rune) bool {
	return r == '_' || unicode.IsLetter(r)
}

func isIdentPart(r rune) bool {
	return r == '_' || unicode.IsLetter(r) || unicode.IsDigit(r)
}

func isKeyword(t token, kw string) bool {
	return t.kind == tokIdent && strings.EqualFold(t.text, kw)
}
