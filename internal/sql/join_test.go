package sql

import (
	"strings"
	"testing"

	"h2o/internal/data"
	"h2o/internal/expr"
)

// joinResolver has two tables with different widths so combined-namespace
// offsets are exercised: R has 4 attributes (a0..a3), S has 3 (a0..a2).
// S's attributes occupy combined ids 4..6 when joined to the right of R.
func joinResolver() Resolver {
	return SchemaMap{
		"R": data.SyntheticSchema("R", 4),
		"S": data.SyntheticSchema("S", 3),
	}
}

func TestParseJoin(t *testing.T) {
	cases := []struct {
		name string
		src  string
		// wantLeft/wantRight are the combined attribute ids of the join keys.
		wantLeft, wantRight data.AttrID
		wantTable           string
		wantCanon           string // "" means String() of the parse result
	}{
		{
			name:      "qualified keys",
			src:       "select sum(a1) from R join S on R.a0 = S.a0",
			wantLeft:  0,
			wantRight: 4,
			wantTable: "S",
			wantCanon: "select sum(a1) from R join S on a0 = S.a0",
		},
		{
			name:      "unqualified left key resolves left-first",
			src:       "select sum(a1) from R join S on a0 = S.a2",
			wantLeft:  0,
			wantRight: 6,
			wantTable: "S",
		},
		{
			name:      "keys given right-first normalize to left = right",
			src:       "select sum(a1) from R join S on S.a0 = R.a3",
			wantLeft:  3,
			wantRight: 4,
			wantTable: "S",
			wantCanon: "select sum(a1) from R join S on a3 = S.a0",
		},
		{
			name:      "aliases resolve and canonicalize away",
			src:       "select sum(x.a1), max(y.a2) from R x join S y on x.a0 = y.a1",
			wantLeft:  0,
			wantRight: 5,
			wantTable: "S",
			wantCanon: "select sum(a1), max(S.a2) from R join S on a0 = S.a1",
		},
		{
			name:      "self-join: qualified name picks the joined copy",
			src:       "select count(a0) from R join R on a0 = R.a0",
			wantLeft:  0,
			wantRight: 4,
			wantTable: "R",
			wantCanon: "select count(a0) from R join R on a0 = R.a0",
		},
		{
			name:      "where and group by over both sides",
			src:       "select R.a2, sum(S.a1) from R join S on R.a0 = S.a0 where R.a1 < 10 and S.a2 > 3 group by R.a2",
			wantLeft:  0,
			wantRight: 4,
			wantTable: "S",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			q, err := Parse(tc.src, joinResolver())
			if err != nil {
				t.Fatal(err)
			}
			if len(q.Joins) != 1 {
				t.Fatalf("Joins = %v, want one", q.Joins)
			}
			j := q.Joins[0]
			if j.Table != tc.wantTable || j.LeftKey.ID != tc.wantLeft || j.RightKey.ID != tc.wantRight {
				t.Fatalf("join = %+v, want table %s keys %d=%d", j, tc.wantTable, tc.wantLeft, tc.wantRight)
			}
			// Canonical form must round-trip to itself (normalization fixpoint).
			canon := q.String()
			if tc.wantCanon != "" && canon != tc.wantCanon {
				t.Fatalf("String() = %q, want %q", canon, tc.wantCanon)
			}
			q2, err := Parse(canon, joinResolver())
			if err != nil {
				t.Fatalf("reparse %q: %v", canon, err)
			}
			if q2.String() != canon {
				t.Fatalf("round trip: %q -> %q", canon, q2.String())
			}
		})
	}
}

func TestParseJoinTables(t *testing.T) {
	q, err := Parse("select sum(a1) from R join S on a0 = S.a0", joinResolver())
	if err != nil {
		t.Fatal(err)
	}
	got := q.Tables()
	if len(got) != 2 || got[0] != "R" || got[1] != "S" {
		t.Fatalf("Tables() = %v", got)
	}
}

func TestParseJoinStarExpandsBothSides(t *testing.T) {
	q, err := Parse("select * from R join S on a0 = S.a0", joinResolver())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Items) != 7 {
		t.Fatalf("star over R(4) join S(3) expanded to %d items", len(q.Items))
	}
	// Right-side items must render qualified so the canonical form reparses.
	if c, ok := q.Items[4].Expr.(*expr.Col); !ok || c.ID != 4 || c.Name != "S.a0" {
		t.Fatalf("item 4 = %v, want S.a0 at combined id 4", q.Items[4])
	}
}

func TestParseJoinErrors(t *testing.T) {
	cases := []struct {
		src     string
		wantSub string // substring the error must contain
	}{
		{"select a0 from R join Nope on a0 = Nope.a0", "unknown table"},
		{"select a0 from R join S on a0 < S.a0", "equalities"},
		{"select a0 from R join S on a0 <= S.a0", "equalities"},
		{"select a0 from R join S on a0 != S.a0", "equalities"},
		{"select a0 from R join S on a0 + 1 = S.a0", "'='"},
		{"select a0 from R join S on a0 = 5", "column name"},
		{"select a0 from R join S on a0 = a1", "left-table column"}, // both resolve left
		{"select a0 from R join S on S.a0 = S.a1", "left-table column"},
		{"select a0 from R join S", "\"on\""},
		{"select a0 from R join S on", "column name"},
		{"select a0 from R join S on Z.a0 = S.a0", "unknown table or alias"},
		{"select a0 from R join S on a0 = S.a9", "no attribute"},
		{"select a0 from R join S on a0 = S.a0 join S on a1 = S.a1", "at most one"},
		{"select zz from R join S on a0 = S.a0", "no attribute"},
	}
	for _, tc := range cases {
		_, err := Parse(tc.src, joinResolver())
		if err == nil {
			t.Errorf("Parse(%q) should fail", tc.src)
			continue
		}
		if !strings.Contains(err.Error(), tc.wantSub) {
			t.Errorf("Parse(%q) error = %q, want substring %q", tc.src, err, tc.wantSub)
		}
	}
}
