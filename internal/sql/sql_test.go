package sql

import (
	"reflect"
	"strings"
	"testing"

	"h2o/internal/data"
	"h2o/internal/expr"
)

func resolver() Resolver {
	return SchemaMap{"R": data.SyntheticSchema("R", 10)}
}

func eval(t *testing.T, e expr.Expr, vals ...data.Value) data.Value {
	t.Helper()
	return e.Eval(func(a data.AttrID) data.Value { return vals[a] })
}

func TestParseProjection(t *testing.T) {
	q, err := Parse("select a1, a2, a3 from R", resolver())
	if err != nil {
		t.Fatal(err)
	}
	if q.Table != "R" || len(q.Items) != 3 || q.Where != nil {
		t.Fatalf("unexpected query: %v", q)
	}
	if !reflect.DeepEqual(q.SelectAttrs(), []data.AttrID{1, 2, 3}) {
		t.Fatalf("SelectAttrs = %v", q.SelectAttrs())
	}
}

func TestParseAggregates(t *testing.T) {
	q, err := Parse("SELECT max(a0), SUM(a1), min(a2), count(a3), avg(a4) FROM R", resolver())
	if err != nil {
		t.Fatal(err)
	}
	ops := []expr.AggOp{expr.AggMax, expr.AggSum, expr.AggMin, expr.AggCount, expr.AggAvg}
	for i, it := range q.Items {
		if it.Agg == nil || it.Agg.Op != ops[i] {
			t.Fatalf("item %d: want agg %v, got %v", i, ops[i], it)
		}
	}
}

func TestParseArithmetic(t *testing.T) {
	q, err := Parse("select a0 + a1 * a2 - 4 / 2 from R", resolver())
	if err != nil {
		t.Fatal(err)
	}
	// Precedence: a0 + (a1*a2) - (4/2)  with vals 1,2,3 → 1+6-2 = 5
	if got := eval(t, q.Items[0].Expr, 1, 2, 3); got != 5 {
		t.Fatalf("precedence eval = %d, want 5", got)
	}
}

func TestParseParensAndUnaryMinus(t *testing.T) {
	q, err := Parse("select (a0 + a1) * -2 from R", resolver())
	if err != nil {
		t.Fatal(err)
	}
	if got := eval(t, q.Items[0].Expr, 3, 4); got != -14 {
		t.Fatalf("eval = %d, want -14", got)
	}
	q, err = Parse("select -a0 from R", resolver())
	if err != nil {
		t.Fatal(err)
	}
	if got := eval(t, q.Items[0].Expr, 9); got != -9 {
		t.Fatalf("unary minus on column = %d, want -9", got)
	}
}

func TestParseWhereConjunction(t *testing.T) {
	q, err := Parse("select a0 from R where a3 < 10 and a4 > 20 and a5 = 7", resolver())
	if err != nil {
		t.Fatal(err)
	}
	and, ok := q.Where.(*expr.And)
	if !ok || len(and.Terms) != 3 {
		t.Fatalf("where should be 3-term conjunction, got %v", q.Where)
	}
	if !reflect.DeepEqual(q.WhereAttrs(), []data.AttrID{3, 4, 5}) {
		t.Fatalf("WhereAttrs = %v", q.WhereAttrs())
	}
}

func TestParseWhereOrAndParens(t *testing.T) {
	q, err := Parse("select a0 from R where (a1 < 5 or a2 > 9) and a3 <> 0", resolver())
	if err != nil {
		t.Fatal(err)
	}
	and, ok := q.Where.(*expr.And)
	if !ok || len(and.Terms) != 2 {
		t.Fatalf("top level should be 2-term And, got %v", q.Where)
	}
	if _, ok := and.Terms[0].(*expr.Or); !ok {
		t.Fatalf("first term should be Or, got %v", and.Terms[0])
	}
}

func TestParseComparisonOps(t *testing.T) {
	for src, op := range map[string]expr.CmpOp{
		"a0 < 1": expr.Lt, "a0 <= 1": expr.Le, "a0 > 1": expr.Gt,
		"a0 >= 1": expr.Ge, "a0 = 1": expr.Eq, "a0 <> 1": expr.Ne, "a0 != 1": expr.Ne,
	} {
		q, err := Parse("select a0 from R where "+src, resolver())
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		cmp, ok := q.Where.(*expr.Cmp)
		if !ok || cmp.Op != op {
			t.Fatalf("%s parsed as %v", src, q.Where)
		}
	}
}

func TestParseNegativeConstants(t *testing.T) {
	q, err := Parse("select a0 from R where a1 > -1000000000", resolver())
	if err != nil {
		t.Fatal(err)
	}
	cmp := q.Where.(*expr.Cmp)
	if k, ok := cmp.R.(*expr.Const); !ok || k.V != -1000000000 {
		t.Fatalf("constant = %v", cmp.R)
	}
}

func TestParseExpressionPredicate(t *testing.T) {
	// Predicates over expressions, e.g. (a+b) > X (paper §3.4).
	q, err := Parse("select a0 from R where a1 + a2 > 100", resolver())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(q.WhereAttrs(), []data.AttrID{1, 2}) {
		t.Fatalf("WhereAttrs = %v", q.WhereAttrs())
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"select from R",
		"select a0",           // missing FROM
		"select a0 from",      // missing table
		"select a0 from Nope", // unknown table
		"select zz from R",    // unknown column
		"select a0 from R where",
		"select a0 from R where a1",          // missing comparison
		"select a0 from R where a1 <",        // missing rhs
		"select a0 from R alias extra",       // trailing tokens after alias
		"select a0 a1 from R",                // missing comma
		"select (a0 from R",                  // unbalanced paren
		"select a0 from R where a1 ! a2",     // bad operator
		"select 99999999999999999999 from R", // overflow literal
		"select a0 @ a1 from R",              // bad character
	}
	for _, src := range bad {
		if _, err := Parse(src, resolver()); err == nil {
			t.Errorf("Parse(%q) should fail", src)
		}
	}
}

func TestParseCaseInsensitiveKeywords(t *testing.T) {
	q, err := Parse("SeLeCt a0 FrOm R wHeRe a1 < 3 AnD a2 > 4", resolver())
	if err != nil {
		t.Fatal(err)
	}
	if q.Where == nil {
		t.Fatal("where clause lost")
	}
}

func TestParseRoundTrip(t *testing.T) {
	// Parse → String → Parse must preserve the access pattern.
	srcs := []string{
		"select a0, a1 from R where a2 < 5",
		"select max(a0), max(a3) from R where a1 > 2 and a2 < 9",
		"select a0 + a1 + a2 from R",
	}
	for _, src := range srcs {
		q1, err := Parse(src, resolver())
		if err != nil {
			t.Fatalf("%s: %v", src, err)
		}
		q2, err := Parse(q1.String(), resolver())
		if err != nil {
			t.Fatalf("re-parse %q: %v", q1.String(), err)
		}
		if !reflect.DeepEqual(q1.SelectAttrs(), q2.SelectAttrs()) ||
			!reflect.DeepEqual(q1.WhereAttrs(), q2.WhereAttrs()) {
			t.Fatalf("round trip changed access pattern for %q", src)
		}
	}
}

func TestParseStar(t *testing.T) {
	q, err := Parse("select * from R", resolver())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Items) != 10 {
		t.Fatalf("star expanded to %d items, want 10", len(q.Items))
	}
	if !reflect.DeepEqual(q.SelectAttrs(), []data.AttrID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}) {
		t.Fatalf("SelectAttrs = %v", q.SelectAttrs())
	}
	// Star with a where clause.
	q, err = Parse("select * from R where a0 < 5", resolver())
	if err != nil || q.Where == nil {
		t.Fatalf("star+where: %v %v", q, err)
	}
	// Star must stand alone in this dialect.
	if _, err := Parse("select *, a1 from R", resolver()); err == nil {
		t.Fatal("star mixed with columns accepted")
	}
}

func TestParseBetween(t *testing.T) {
	q, err := Parse("select a0 from R where a1 between -5 and 10 and a2 > 3", resolver())
	if err != nil {
		t.Fatal(err)
	}
	and, ok := q.Where.(*expr.And)
	if !ok || len(and.Terms) != 3 {
		t.Fatalf("where = %v; BETWEEN must expand to two terms plus the extra conjunct", q.Where)
	}
	lo := and.Terms[0].(*expr.Cmp)
	hi := and.Terms[1].(*expr.Cmp)
	if lo.Op != expr.Ge || hi.Op != expr.Le {
		t.Fatalf("BETWEEN ops = %v, %v", lo.Op, hi.Op)
	}
	// Evaluate semantics: a1 in [-5, 10].
	holds := func(v data.Value) bool {
		return q.Where.EvalBool(func(a data.AttrID) data.Value {
			return map[data.AttrID]data.Value{1: v, 2: 4, 0: 0}[a]
		})
	}
	if !holds(-5) || !holds(10) || holds(-6) || holds(11) {
		t.Fatal("BETWEEN bounds must be inclusive")
	}
	if _, err := Parse("select a0 from R where a1 between 1", resolver()); err == nil {
		t.Fatal("incomplete BETWEEN accepted")
	}
}

func TestParseLimit(t *testing.T) {
	q, err := Parse("select a0 from R where a1 > 0 limit 7", resolver())
	if err != nil {
		t.Fatal(err)
	}
	if q.Limit != 7 {
		t.Fatalf("limit = %d", q.Limit)
	}
	// Limit round-trips through String.
	q2, err := Parse(q.String(), resolver())
	if err != nil || q2.Limit != 7 {
		t.Fatalf("limit round trip: %v %v", q2, err)
	}
	for _, bad := range []string{
		"select a0 from R limit",
		"select a0 from R limit x",
		"select a0 from R limit -1",
		"select a0 from R limit 1 2",
	} {
		if _, err := Parse(bad, resolver()); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseGroupBy(t *testing.T) {
	// Canonical form: keys selected, aggregates after.
	q, err := Parse("select a3, sum(a1), count(a2) from R where a0 > 5 group by a3", resolver())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.GroupBy) != 1 || q.GroupBy[0].ID != 3 {
		t.Fatalf("GroupBy = %v", q.GroupBy)
	}
	if len(q.Items) != 3 || q.Items[0].Agg != nil || q.Items[1].Agg == nil {
		t.Fatalf("Items = %v", q.Items)
	}

	// Unselected keys are prepended, so the result always carries its keys.
	q, err = Parse("select sum(a1) from R group by a3, a4", resolver())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Items) != 3 || q.Items[0].Agg != nil || q.Items[1].Agg != nil {
		t.Fatalf("keys not prepended: %v", q.Items)
	}
	if !reflect.DeepEqual(q.SelectAttrs(), []data.AttrID{1, 3, 4}) {
		t.Fatalf("SelectAttrs = %v", q.SelectAttrs())
	}

	// Duplicate keys collapse; the query keeps a single a2 key.
	q, err = Parse("select a2, count(a0) from R group by a2, a2", resolver())
	if err != nil {
		t.Fatal(err)
	}
	if len(q.GroupBy) != 1 {
		t.Fatalf("duplicate key kept: %v", q.GroupBy)
	}

	// Key-only grouping (DISTINCT-like) is legal.
	if _, err := Parse("select a1, a2 from R group by a1, a2", resolver()); err != nil {
		t.Fatal(err)
	}

	// String() renders the clause and re-parses to the same shape —
	// idempotent because prepended keys are found already selected.
	q, err = Parse("select sum(a1) from R where a0 < 9 group by a2 limit 4", resolver())
	if err != nil {
		t.Fatal(err)
	}
	s1 := q.String()
	q2, err := Parse(s1, resolver())
	if err != nil {
		t.Fatalf("re-parse %q: %v", s1, err)
	}
	if s2 := q2.String(); s1 != s2 || q2.Limit != 4 ||
		!reflect.DeepEqual(q.GroupIDs(), q2.GroupIDs()) ||
		!reflect.DeepEqual(q.SelectAttrs(), q2.SelectAttrs()) {
		t.Fatalf("round trip changed query: %q vs %q", s1, s2)
	}

	for _, bad := range []string{
		"select a1, sum(a2) from R group by a3",      // bare non-key column
		"select * from R group by a1",                // star selects non-keys
		"select sum(a1) from R group by sum(a2)",     // aggregate as key
		"select sum(a1) from R group by",             // missing key
		"select sum(a1) from R group a2",             // missing BY
		"select sum(a1) from R group by a2,",         // trailing comma
		"select sum(a1) from R group by zz",          // unknown key
		"select sum(a1) from R group by a2 where a0", // clause order
		"select a1 + a2 from R group by a1",          // expression item
	} {
		if _, err := Parse(bad, resolver()); err == nil {
			t.Errorf("Parse(%q) should fail", bad)
		}
	}
}

func TestParseInsert(t *testing.T) {
	r := SchemaMap{"R": data.SyntheticSchema("R", 3)}
	stmt, err := ParseInsert("insert into R values (1, -2, 3), (4, 5, 6)", r)
	if err != nil {
		t.Fatal(err)
	}
	if stmt.Table != "R" || len(stmt.Rows) != 2 {
		t.Fatalf("stmt = %+v", stmt)
	}
	if !reflect.DeepEqual(stmt.Rows[0], []data.Value{1, -2, 3}) {
		t.Fatalf("row 0 = %v", stmt.Rows[0])
	}
	for _, bad := range []string{
		"insert into R values (1, 2)",       // wrong arity
		"insert into R values (1, 2, 3",     // unbalanced
		"insert into Nope values (1, 2, 3)", // unknown table
		"insert R values (1, 2, 3)",         // missing INTO
		"insert into R values (1, 2, 3) x",  // trailing
		"insert into R values (a, 2, 3)",    // non-literal
		"insert into R values",              // missing rows
	} {
		if _, err := ParseInsert(bad, r); err == nil {
			t.Errorf("ParseInsert(%q) should fail", bad)
		}
	}
	if !IsInsert("  INSERT into R values (1,2,3)") {
		t.Fatal("IsInsert false negative")
	}
	if IsInsert("select a0 from R") || IsInsert("") {
		t.Fatal("IsInsert false positive")
	}
}

func TestLexerPositionsInErrors(t *testing.T) {
	_, err := Parse("select a0 from R where a1 < ?", resolver())
	if err == nil || !strings.Contains(err.Error(), "sql:") {
		t.Fatalf("expected sql error, got %v", err)
	}
}
