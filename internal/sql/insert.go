package sql

import (
	"fmt"
	"strconv"
	"strings"

	"h2o/internal/data"
)

// InsertStmt is a parsed "insert into T values (...), (...)" statement.
type InsertStmt struct {
	Table string
	Rows  [][]data.Value
}

// IsInsert reports whether src starts with the INSERT keyword; DB front
// ends use it to route between the select and insert parsers.
func IsInsert(src string) bool {
	fields := strings.Fields(src)
	return len(fields) > 0 && strings.EqualFold(fields[0], "insert")
}

// ParseInsert parses an insert statement and validates the tuple widths
// against the table's schema:
//
//	insert into R values (1, 2, 3)
//	insert into R values (1, 2, 3), (4, 5, 6)
func ParseInsert(src string, r Resolver) (*InsertStmt, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, resolver: r}
	if err := p.expectKeyword("insert"); err != nil {
		return nil, err
	}
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(tokIdent, "table name")
	if err != nil {
		return nil, err
	}
	schema, err := r.SchemaOf(tbl.text)
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("values"); err != nil {
		return nil, err
	}
	stmt := &InsertStmt{Table: tbl.text}
	for {
		row, err := p.parseValueRow(schema.NumAttrs())
		if err != nil {
			return nil, err
		}
		stmt.Rows = append(stmt.Rows, row)
		if p.cur().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected trailing input %s", p.cur())
	}
	return stmt, nil
}

// parseValueRow parses "(v, v, ...)" with exactly want integer literals.
func (p *parser) parseValueRow(want int) ([]data.Value, error) {
	if _, err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	var row []data.Value
	for {
		neg := false
		if p.cur().kind == tokMinus {
			neg = true
			p.next()
		}
		t, err := p.expect(tokNumber, "integer value")
		if err != nil {
			return nil, err
		}
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("invalid integer literal %s", t)
		}
		if neg {
			v = -v
		}
		row = append(row, v)
		if p.cur().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	if _, err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	if len(row) != want {
		return nil, fmt.Errorf("sql: insert row has %d values, table has %d attributes", len(row), want)
	}
	return row, nil
}
