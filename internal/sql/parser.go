package sql

import (
	"fmt"
	"strconv"
	"strings"

	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
)

// Resolver maps a table name to its schema. The engine's catalog implements
// this; tests can use a map.
type Resolver interface {
	SchemaOf(table string) (*data.Schema, error)
}

// SchemaMap is a Resolver backed by a map.
type SchemaMap map[string]*data.Schema

// SchemaOf implements Resolver.
func (m SchemaMap) SchemaOf(table string) (*data.Schema, error) {
	s, ok := m[table]
	if !ok {
		return nil, fmt.Errorf("sql: unknown table %q", table)
	}
	return s, nil
}

// Parse parses a select statement and resolves column references against the
// table's schema obtained from r.
func Parse(src string, r Resolver) (*query.Query, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks, resolver: r}
	q, err := p.parseSelect()
	if err != nil {
		return nil, err
	}
	if p.cur().kind != tokEOF {
		return nil, p.errf("unexpected trailing input %s", p.cur())
	}
	return q, nil
}

type parser struct {
	toks     []token
	idx      int
	resolver Resolver
	refs     []tableRef
}

// tableRef is one table occurrence in the FROM clause. base is the offset of
// its attributes in the query's combined attribute namespace: the left table
// occupies [0, nL), a joined table [nL, nL+nR).
type tableRef struct {
	name   string
	alias  string
	schema *data.Schema
	base   int
}

// canonName is the canonical rendering of an attribute of ref: bare for the
// left table, "table.attr" for a joined table. Aliases are canonicalized
// away so equivalent queries normalize to the same String().
func canonName(ref *tableRef, attr string) string {
	if ref.base == 0 {
		return attr
	}
	return ref.name + "." + attr
}

func (p *parser) cur() token  { return p.toks[p.idx] }
func (p *parser) next() token { t := p.toks[p.idx]; p.idx++; return t }

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("sql: %s (at position %d)", fmt.Sprintf(format, args...), p.cur().pos)
}

func (p *parser) expect(k tokenKind, what string) (token, error) {
	if p.cur().kind != k {
		return token{}, p.errf("expected %s, found %s", what, p.cur())
	}
	return p.next(), nil
}

func (p *parser) expectKeyword(kw string) error {
	if !isKeyword(p.cur(), kw) {
		return p.errf("expected %q, found %s", kw, p.cur())
	}
	p.next()
	return nil
}

// parseSelect parses:
//
//	SELECT items FROM table [alias] [JOIN table [alias] ON col = col]
//	  [WHERE pred] [GROUP BY col (, col)*] [LIMIT n]
//
// The grammar requires the table references before column resolution, so the
// parser first scans ahead for FROM, parses the FROM clause (resolving every
// table's schema into the combined attribute namespace), then rewinds and
// parses the item list. A simpler approach — parse items unresolved then
// bind — would need a second tree pass; scanning ahead keeps the tree
// immutable.
func (p *parser) parseSelect() (*query.Query, error) {
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	// Find FROM at paren depth 0 to locate the table references.
	depth := 0
	fromIdx := -1
	for i := p.idx; i < len(p.toks); i++ {
		switch p.toks[i].kind {
		case tokLParen:
			depth++
		case tokRParen:
			depth--
		case tokIdent:
			if depth == 0 && strings.EqualFold(p.toks[i].text, "from") {
				fromIdx = i
			}
		}
		if fromIdx >= 0 {
			break
		}
	}
	if fromIdx < 0 {
		return nil, fmt.Errorf("sql: missing FROM clause")
	}
	if fromIdx+1 >= len(p.toks) || p.toks[fromIdx+1].kind != tokIdent {
		return nil, fmt.Errorf("sql: missing table name after FROM")
	}
	// Parse the FROM clause first so items can resolve, then rewind.
	itemsIdx := p.idx
	p.idx = fromIdx + 1
	table, joins, err := p.parseTableRefs()
	if err != nil {
		return nil, err
	}
	fromEnd := p.idx
	p.idx = itemsIdx

	var items []query.SelectItem
	if p.cur().kind == tokStar {
		// select * : expand to every attribute of every table reference.
		p.next()
		for ri := range p.refs {
			ref := &p.refs[ri]
			for id, name := range ref.schema.Attrs {
				items = append(items, query.SelectItem{Expr: &expr.Col{ID: ref.base + id, Name: canonName(ref, name)}})
			}
		}
	} else {
		for {
			it, err := p.parseSelectItem()
			if err != nil {
				return nil, err
			}
			items = append(items, it)
			if p.cur().kind == tokComma {
				p.next()
				continue
			}
			break
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	p.idx = fromEnd

	q := &query.Query{Table: table, Joins: joins, Items: items}
	if isKeyword(p.cur(), "where") {
		p.next()
		pred, err := p.parseOr()
		if err != nil {
			return nil, err
		}
		q.Where = pred
	}
	if isKeyword(p.cur(), "group") {
		p.next()
		if err := p.expectKeyword("by"); err != nil {
			return nil, err
		}
		if err := p.parseGroupBy(q); err != nil {
			return nil, err
		}
	}
	if isKeyword(p.cur(), "limit") {
		p.next()
		t, err := p.expect(tokNumber, "limit count")
		if err != nil {
			return nil, err
		}
		n, err := strconv.ParseInt(t.text, 10, 32)
		if err != nil || n < 0 {
			return nil, fmt.Errorf("sql: invalid limit %q", t.text)
		}
		q.Limit = int(n)
	}
	return q, nil
}

// parseTableRefs parses `table [alias] (JOIN table [alias] ON col = col)*`
// starting at the token after FROM, filling p.refs, and returns the left
// table's name plus the parsed join clauses. The representation is
// N-table-ready but the execution layer serves exactly one join, so more
// than one JOIN is rejected here with a clear error.
func (p *parser) parseTableRefs() (string, []query.Join, error) {
	t, err := p.expect(tokIdent, "table name")
	if err != nil {
		return "", nil, err
	}
	sch, err := p.resolver.SchemaOf(t.text)
	if err != nil {
		return "", nil, err
	}
	p.refs = append(p.refs, tableRef{name: t.text, schema: sch})
	p.maybeAlias()
	var joins []query.Join
	for isKeyword(p.cur(), "join") {
		if len(p.refs) > 1 {
			return "", nil, p.errf("at most one JOIN per query is supported")
		}
		p.next()
		rt, err := p.expect(tokIdent, "joined table name")
		if err != nil {
			return "", nil, err
		}
		rsch, err := p.resolver.SchemaOf(rt.text)
		if err != nil {
			return "", nil, err
		}
		prev := &p.refs[len(p.refs)-1]
		p.refs = append(p.refs, tableRef{name: rt.text, schema: rsch, base: prev.base + prev.schema.NumAttrs()})
		p.maybeAlias()
		if err := p.expectKeyword("on"); err != nil {
			return "", nil, err
		}
		j, err := p.parseJoinCond(rt.text)
		if err != nil {
			return "", nil, err
		}
		joins = append(joins, j)
	}
	return t.text, joins, nil
}

// maybeAlias consumes an optional alias identifier after a table name. Any
// identifier that is not a clause keyword is taken as the alias for the most
// recently added table reference.
func (p *parser) maybeAlias() {
	t := p.cur()
	if t.kind != tokIdent {
		return
	}
	for _, kw := range [...]string{"join", "on", "where", "group", "limit"} {
		if isKeyword(t, kw) {
			return
		}
	}
	p.refs[len(p.refs)-1].alias = t.text
	p.next()
}

// parseJoinCond parses `col = col` after ON. Only equality between two plain
// columns on opposite sides of the join is accepted; anything else gets a
// descriptive error rather than a silent cross product.
func (p *parser) parseJoinCond(rightTable string) (query.Join, error) {
	a, err := p.resolveColumn()
	if err != nil {
		return query.Join{}, err
	}
	switch p.cur().kind {
	case tokEq:
		p.next()
	case tokLt, tokLe, tokGt, tokGe, tokNe:
		return query.Join{}, p.errf("join conditions must be equalities (a.x = b.y), found %s", p.cur())
	default:
		return query.Join{}, p.errf("expected '=' in join condition, found %s", p.cur())
	}
	b, err := p.resolveColumn()
	if err != nil {
		return query.Join{}, err
	}
	rightBase := p.refs[len(p.refs)-1].base
	var lk, rk expr.Col
	switch {
	case a.ID < rightBase && b.ID >= rightBase:
		lk, rk = *a, *b
	case b.ID < rightBase && a.ID >= rightBase:
		lk, rk = *b, *a
	default:
		return query.Join{}, p.errf("join condition must relate a left-table column to a %s column", rightTable)
	}
	return query.Join{Table: rightTable, LeftKey: lk, RightKey: rk}, nil
}

// resolveColumn parses `ident` or `qualifier . ident` and resolves it to a
// column in the combined attribute namespace. Unqualified names resolve
// left-first across the table references; qualified names match a reference
// by alias first, then table name, and when several references match (a
// self-join without aliases) the last occurrence wins, so `R.k` names the
// joined copy of R. Canonical names come from canonName, so String()
// round-trips regardless of the aliases the input used.
func (p *parser) resolveColumn() (*expr.Col, error) {
	t, err := p.expect(tokIdent, "column name")
	if err != nil {
		return nil, err
	}
	if p.cur().kind == tokDot {
		p.next()
		at, err := p.expect(tokIdent, "column name after '.'")
		if err != nil {
			return nil, err
		}
		var ref *tableRef
		for i := range p.refs {
			if p.refs[i].alias == t.text {
				ref = &p.refs[i]
			}
		}
		if ref == nil {
			for i := range p.refs {
				if p.refs[i].name == t.text {
					ref = &p.refs[i]
				}
			}
		}
		if ref == nil {
			return nil, p.errf("unknown table or alias %q", t.text)
		}
		id, err := ref.schema.AttrIndex(at.text)
		if err != nil {
			return nil, fmt.Errorf("sql: %w", err)
		}
		return &expr.Col{ID: ref.base + id, Name: canonName(ref, at.text)}, nil
	}
	var firstErr error
	for i := range p.refs {
		ref := &p.refs[i]
		if id, err := ref.schema.AttrIndex(t.text); err == nil {
			return &expr.Col{ID: ref.base + id, Name: canonName(ref, t.text)}, nil
		} else if firstErr == nil {
			firstErr = err
		}
	}
	return nil, fmt.Errorf("sql: %w", firstErr)
}

// parseGroupBy parses the key list after GROUP BY, deduplicates it, checks
// that every select item is either an aggregate or a bare group-key column,
// and prepends any group keys missing from the select list so grouped
// results are always keyed by their group columns. The prepend is idempotent:
// re-parsing the canonical String() finds the keys already selected.
func (p *parser) parseGroupBy(q *query.Query) error {
	var keys []expr.Col
	seen := map[data.AttrID]bool{}
	for {
		if op, ok := aggOf(p.cur()); ok && p.idx+1 < len(p.toks) && p.toks[p.idx+1].kind == tokLParen {
			return p.errf("cannot group by aggregate %s(...); group keys must be plain columns", op)
		}
		c, err := p.resolveColumn()
		if err != nil {
			return err
		}
		if !seen[c.ID] {
			seen[c.ID] = true
			keys = append(keys, *c)
		}
		if p.cur().kind == tokComma {
			p.next()
			continue
		}
		break
	}
	q.GroupBy = keys

	// Shape check: aggregates and bare group-key columns only.
	selected := map[data.AttrID]bool{}
	for _, it := range q.Items {
		if it.Agg != nil {
			continue
		}
		c, ok := it.Expr.(*expr.Col)
		if !ok || !seen[c.ID] {
			return fmt.Errorf("sql: select item %q must be an aggregate or a group-by column", it.String())
		}
		selected[c.ID] = true
	}
	var prepend []query.SelectItem
	for i := range keys {
		if !selected[keys[i].ID] {
			k := keys[i]
			prepend = append(prepend, query.SelectItem{Expr: &k})
		}
	}
	if len(prepend) > 0 {
		q.Items = append(prepend, q.Items...)
	}
	return nil
}

func (p *parser) parseSelectItem() (query.SelectItem, error) {
	if op, ok := aggOf(p.cur()); ok && p.idx+1 < len(p.toks) && p.toks[p.idx+1].kind == tokLParen {
		p.next() // aggregate name
		p.next() // '('
		arg, err := p.parseExpr()
		if err != nil {
			return query.SelectItem{}, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return query.SelectItem{}, err
		}
		return query.SelectItem{Agg: &expr.Agg{Op: op, Arg: arg}}, nil
	}
	e, err := p.parseExpr()
	if err != nil {
		return query.SelectItem{}, err
	}
	return query.SelectItem{Expr: e}, nil
}

func aggOf(t token) (expr.AggOp, bool) {
	if t.kind != tokIdent {
		return 0, false
	}
	switch strings.ToLower(t.text) {
	case "sum":
		return expr.AggSum, true
	case "max":
		return expr.AggMax, true
	case "min":
		return expr.AggMin, true
	case "count":
		return expr.AggCount, true
	case "avg":
		return expr.AggAvg, true
	default:
		return 0, false
	}
}

// parseOr: parseAnd (OR parseAnd)*
func (p *parser) parseOr() (expr.Pred, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for isKeyword(p.cur(), "or") {
		p.next()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &expr.Or{L: l, R: r}
	}
	return l, nil
}

// parseAnd: parsePredAtom (AND parsePredAtom)*; conjunctions flatten into a
// single n-ary And so kernels can evaluate all terms in one pass.
func (p *parser) parseAnd() (expr.Pred, error) {
	first, err := p.parsePredAtom()
	if err != nil {
		return nil, err
	}
	var terms []expr.Pred
	if inner, ok := first.(*expr.And); ok {
		terms = append(terms, inner.Terms...)
	} else {
		terms = append(terms, first)
	}
	for isKeyword(p.cur(), "and") {
		p.next()
		t, err := p.parsePredAtom()
		if err != nil {
			return nil, err
		}
		if inner, ok := t.(*expr.And); ok {
			terms = append(terms, inner.Terms...)
		} else {
			terms = append(terms, t)
		}
	}
	if len(terms) == 1 {
		return terms[0], nil
	}
	return &expr.And{Terms: terms}, nil
}

// parsePredAtom: '(' parseOr ')' | expr cmpop expr. A leading '(' is
// ambiguous (parenthesized predicate vs. parenthesized arithmetic); the
// parser tries the predicate reading first and backtracks.
func (p *parser) parsePredAtom() (expr.Pred, error) {
	if p.cur().kind == tokLParen {
		save := p.idx
		p.next()
		if pred, err := p.parseOr(); err == nil && p.cur().kind == tokRParen {
			p.next()
			return pred, nil
		}
		p.idx = save
	}
	l, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if isKeyword(p.cur(), "between") {
		// x BETWEEN lo AND hi ≡ x >= lo and x <= hi; BETWEEN's internal AND
		// binds tighter than the conjunction separator.
		p.next()
		lo, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKeyword("and"); err != nil {
			return nil, err
		}
		hi, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		return &expr.And{Terms: []expr.Pred{
			&expr.Cmp{Op: expr.Ge, L: l, R: lo},
			&expr.Cmp{Op: expr.Le, L: l, R: hi},
		}}, nil
	}
	var op expr.CmpOp
	switch p.cur().kind {
	case tokLt:
		op = expr.Lt
	case tokLe:
		op = expr.Le
	case tokGt:
		op = expr.Gt
	case tokGe:
		op = expr.Ge
	case tokEq:
		op = expr.Eq
	case tokNe:
		op = expr.Ne
	default:
		return nil, p.errf("expected comparison operator, found %s", p.cur())
	}
	p.next()
	r, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	return &expr.Cmp{Op: op, L: l, R: r}, nil
}

// parseExpr: term (('+'|'-') term)*
func (p *parser) parseExpr() (expr.Expr, error) {
	l, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().kind {
		case tokPlus:
			p.next()
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			l = &expr.Arith{Op: expr.Add, L: l, R: r}
		case tokMinus:
			p.next()
			r, err := p.parseTerm()
			if err != nil {
				return nil, err
			}
			l = &expr.Arith{Op: expr.Sub, L: l, R: r}
		default:
			return l, nil
		}
	}
}

// parseTerm: factor (('*'|'/') factor)*
func (p *parser) parseTerm() (expr.Expr, error) {
	l, err := p.parseFactor()
	if err != nil {
		return nil, err
	}
	for {
		switch p.cur().kind {
		case tokStar:
			p.next()
			r, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			l = &expr.Arith{Op: expr.Mul, L: l, R: r}
		case tokSlash:
			p.next()
			r, err := p.parseFactor()
			if err != nil {
				return nil, err
			}
			l = &expr.Arith{Op: expr.Div, L: l, R: r}
		default:
			return l, nil
		}
	}
}

// parseFactor: ident | number | '-' factor | '(' expr ')'
func (p *parser) parseFactor() (expr.Expr, error) {
	switch t := p.cur(); t.kind {
	case tokIdent:
		if isKeyword(t, "from") || isKeyword(t, "where") || isKeyword(t, "and") ||
			isKeyword(t, "or") || isKeyword(t, "between") || isKeyword(t, "limit") ||
			isKeyword(t, "group") || isKeyword(t, "by") ||
			isKeyword(t, "join") || isKeyword(t, "on") {
			return nil, p.errf("expected expression, found keyword %s", t)
		}
		return p.resolveColumn()
	case tokNumber:
		p.next()
		v, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf("invalid integer literal %s", t)
		}
		return &expr.Const{V: v}, nil
	case tokMinus:
		p.next()
		inner, err := p.parseFactor()
		if err != nil {
			return nil, err
		}
		if k, ok := inner.(*expr.Const); ok {
			return &expr.Const{V: -k.V}, nil
		}
		return &expr.Arith{Op: expr.Sub, L: &expr.Const{V: 0}, R: inner}, nil
	case tokLParen:
		p.next()
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return inner, nil
	default:
		return nil, p.errf("expected expression, found %s", t)
	}
}
