package affinity

import (
	"strings"
	"testing"
	"testing/quick"

	"h2o/internal/data"
	"h2o/internal/query"
)

func info(sel, where []data.AttrID) query.Info {
	return query.Info{Select: data.SortedUnique(sel), Where: data.SortedUnique(where)}
}

func TestMatrixAccumulation(t *testing.T) {
	m := NewMatrix(5)
	m.Add([]data.AttrID{0, 2, 3}, 1)
	m.Add([]data.AttrID{0, 2}, 1)
	if m.Usage(0) != 2 || m.Usage(2) != 2 || m.Usage(3) != 1 || m.Usage(4) != 0 {
		t.Fatalf("usage wrong: %s", m)
	}
	if m.At(0, 2) != 2 || m.At(2, 0) != 2 {
		t.Fatal("co-access must be symmetric")
	}
	if m.At(0, 3) != 1 || m.At(2, 3) != 1 {
		t.Fatal("pairwise counts wrong")
	}
	if m.At(1, 1) != 0 {
		t.Fatal("untouched attribute has non-zero usage")
	}
}

func TestMatrixSymmetryProperty(t *testing.T) {
	f := func(sets [][]uint8) bool {
		m := NewMatrix(16)
		for _, s := range sets {
			attrs := make([]data.AttrID, 0, len(s))
			for _, v := range s {
				attrs = append(attrs, data.AttrID(v%16))
			}
			m.Add(data.SortedUnique(attrs), 1)
		}
		for i := 0; i < 16; i++ {
			for j := 0; j < 16; j++ {
				if m.At(i, j) != m.At(j, i) {
					return false
				}
				// Co-access never exceeds either attribute's usage.
				if i != j && (m.At(i, j) > m.Usage(i) || m.At(i, j) > m.Usage(j)) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestHotOrdering(t *testing.T) {
	m := NewMatrix(6)
	m.Add([]data.AttrID{1}, 1)
	m.Add([]data.AttrID{1}, 1)
	m.Add([]data.AttrID{3}, 1)
	hot := m.Hot()
	if len(hot) != 2 || hot[0] != 1 || hot[1] != 3 {
		t.Fatalf("Hot = %v", hot)
	}
}

func TestWindowGrowsWhileStable(t *testing.T) {
	w := NewWindow(20, Config{InitialSize: 10, MinSize: 2, MaxSize: 30, NoveltyOverlap: 0.5, Dynamic: true})
	stable := info([]data.AttrID{1, 2, 3}, []data.AttrID{0})
	// Drive a full stable adaptation period: growth happens at the boundary
	// (MarkAdapted), so a stable stream adapts progressively less often.
	for i := 0; i < 10; i++ {
		obs := w.Observe(stable)
		if obs.Novel {
			t.Fatal("repeated pattern must not be novel")
		}
		if obs.Due {
			w.MarkAdapted()
		}
	}
	if w.Size() <= 10 {
		t.Fatalf("window should grow across a stable period, got %d", w.Size())
	}
}

func TestWindowShrinksOnShift(t *testing.T) {
	w := NewWindow(40, DefaultConfig())
	for i := 0; i < 10; i++ {
		w.Observe(info([]data.AttrID{1, 2, 3}, nil))
	}
	before := w.Size()
	obs := w.Observe(info([]data.AttrID{30, 31, 32}, nil)) // disjoint attributes
	if !obs.Novel {
		t.Fatal("disjoint access pattern must be novel")
	}
	if obs.WindowSize >= before {
		t.Fatalf("window should shrink on shift: %d -> %d", before, obs.WindowSize)
	}
}

func TestWindowRespectsBounds(t *testing.T) {
	cfg := Config{InitialSize: 8, MinSize: 4, MaxSize: 12, NoveltyOverlap: 0.9, Dynamic: true}
	w := NewWindow(100, cfg)
	// Hammer with novel patterns: size must floor at MinSize.
	for i := 0; i < 20; i++ {
		w.Observe(info([]data.AttrID{i * 4, i*4 + 1}, nil))
	}
	if w.Size() < cfg.MinSize {
		t.Fatalf("size %d below MinSize", w.Size())
	}
	// Stabilize through several adaptation periods: size must cap at
	// MaxSize.
	stable := info([]data.AttrID{1, 2}, nil)
	for i := 0; i < 80; i++ {
		if w.Observe(stable).Due {
			w.MarkAdapted()
		}
	}
	if w.Size() > cfg.MaxSize {
		t.Fatalf("size %d above MaxSize", w.Size())
	}
	if w.Size() != cfg.MaxSize {
		t.Fatalf("size %d should have reached MaxSize %d", w.Size(), cfg.MaxSize)
	}
}

func TestStaticWindowNeverResizes(t *testing.T) {
	w := NewWindow(50, Config{InitialSize: 30, MinSize: 2, MaxSize: 60, NoveltyOverlap: 0.5, Dynamic: false})
	for i := 0; i < 25; i++ {
		w.Observe(info([]data.AttrID{i, i + 1}, nil))
	}
	if w.Size() != 30 {
		t.Fatalf("static window resized to %d", w.Size())
	}
}

func TestFirstQueryIsNotNovel(t *testing.T) {
	w := NewWindow(10, DefaultConfig())
	if obs := w.Observe(info([]data.AttrID{0}, nil)); obs.Novel {
		t.Fatal("first query has no history to be novel against")
	}
}

func TestAdaptationDue(t *testing.T) {
	w := NewWindow(10, Config{InitialSize: 5, MinSize: 2, MaxSize: 10, NoveltyOverlap: 0.5, Dynamic: false})
	stable := info([]data.AttrID{0, 1}, nil)
	var due bool
	for i := 0; i < 5; i++ {
		due = w.Observe(stable).Due
	}
	if !due {
		t.Fatal("adaptation should be due after window-size queries")
	}
	w.MarkAdapted()
	if w.SinceAdaptation() != 0 {
		t.Fatal("MarkAdapted should reset the counter")
	}
	if w.Observe(stable).Due {
		t.Fatal("adaptation due immediately after reset")
	}
}

func TestRecentAndMatrices(t *testing.T) {
	w := NewWindow(10, Config{InitialSize: 3, MinSize: 2, MaxSize: 3, NoveltyOverlap: 0.5, Dynamic: false})
	w.Observe(info([]data.AttrID{0, 1}, []data.AttrID{5}))
	w.Observe(info([]data.AttrID{0, 1}, []data.AttrID{5}))
	w.Observe(info([]data.AttrID{2, 3}, nil))
	w.Observe(info([]data.AttrID{2, 3}, nil)) // evicts the first
	recent := w.Recent()
	if len(recent) != 3 {
		t.Fatalf("Recent len = %d, want 3", len(recent))
	}
	sel, where := w.Matrices()
	if sel.At(0, 1) != 1 {
		t.Fatalf("sel(0,1) = %g, want 1 (one query left in window)", sel.At(0, 1))
	}
	if sel.At(2, 3) != 2 {
		t.Fatalf("sel(2,3) = %g, want 2", sel.At(2, 3))
	}
	if where.Usage(5) != 1 {
		t.Fatalf("where usage(5) = %g, want 1", where.Usage(5))
	}
	// Select and where matrices must be kept apart.
	if sel.Usage(5) != 0 {
		t.Fatal("where-clause attribute leaked into select matrix")
	}
}

func TestPatternFrequency(t *testing.T) {
	w := NewWindow(10, DefaultConfig())
	a := info([]data.AttrID{0, 1}, nil)
	b := info([]data.AttrID{2}, nil)
	w.Observe(a)
	w.Observe(a)
	w.Observe(b)
	if got := w.PatternFrequency(a); got != 2 {
		t.Fatalf("freq(a) = %d", got)
	}
	if got := w.PatternFrequency(b); got != 1 {
		t.Fatalf("freq(b) = %d", got)
	}
}

func TestMatrixString(t *testing.T) {
	m := NewMatrix(3)
	m.Add([]data.AttrID{0, 2}, 1)
	s := m.String()
	if !strings.Contains(s, "(0,2)=1") || !strings.Contains(s, "(0,0)=1") {
		t.Fatalf("String = %q", s)
	}
	if m.N() != 3 {
		t.Fatalf("N = %d", m.N())
	}
}

func TestWindowConfigNormalization(t *testing.T) {
	// Zero/invalid config fields fall back to sane values.
	w := NewWindow(5, Config{})
	if w.Size() <= 0 {
		t.Fatal("zero config produced a non-positive window")
	}
	w2 := NewWindow(5, Config{InitialSize: 50, MaxSize: 10})
	if w2.Size() != 50 {
		t.Fatalf("initial size = %d", w2.Size())
	}
	// MaxSize must have been raised to at least InitialSize.
	for i := 0; i < 200; i++ {
		if w2.Observe(info([]data.AttrID{1}, nil)).Due {
			w2.MarkAdapted()
		}
	}
	if w2.Size() < 50 {
		t.Fatalf("size shrank below initial without novelty: %d", w2.Size())
	}
}

func TestJaccard(t *testing.T) {
	cases := []struct {
		a, b []data.AttrID
		want float64
	}{
		{nil, nil, 1},
		{[]data.AttrID{1}, nil, 0},
		{[]data.AttrID{1, 2}, []data.AttrID{1, 2}, 1},
		{[]data.AttrID{1, 2}, []data.AttrID{2, 3}, 1.0 / 3.0},
	}
	for _, c := range cases {
		if got := jaccard(c.a, c.b); got != c.want {
			t.Errorf("jaccard(%v,%v) = %g, want %g", c.a, c.b, got, c.want)
		}
	}
}
