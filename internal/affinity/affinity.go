// Package affinity implements H2O's workload monitoring (paper §3.2):
// attribute affinity matrices — one for the select clause and one for the
// where clause — built over a dynamic window of recent queries, plus the
// workload-shift detector that shrinks the window when new access patterns
// appear and grows it while the workload is stable.
package affinity

import (
	"fmt"
	"strings"

	"h2o/internal/data"
	"h2o/internal/query"
)

// Matrix is a dense attribute-affinity matrix. Off-diagonal entry (i, j)
// counts how often attributes i and j were accessed together in the same
// clause; diagonal entry (i, i) counts accesses of attribute i. This is the
// classic Navathe et al. affinity measure the paper adopts [38].
type Matrix struct {
	n int
	m []float64
}

// NewMatrix returns an n×n zero matrix.
func NewMatrix(n int) *Matrix { return &Matrix{n: n, m: make([]float64, n*n)} }

// N returns the matrix dimension.
func (mx *Matrix) N() int { return mx.n }

// At returns entry (i, j).
func (mx *Matrix) At(i, j int) float64 { return mx.m[i*mx.n+j] }

// Add records one co-access of every attribute pair in attrs with weight w.
// The diagonal accumulates single-attribute usage frequency.
func (mx *Matrix) Add(attrs []data.AttrID, w float64) {
	for _, a := range attrs {
		mx.m[a*mx.n+a] += w
		for _, b := range attrs {
			if a != b {
				mx.m[a*mx.n+b] += w
			}
		}
	}
}

// Usage returns the access frequency of attribute a (the diagonal entry).
func (mx *Matrix) Usage(a data.AttrID) float64 { return mx.m[a*mx.n+a] }

// Hot returns the attributes with non-zero usage, most frequent first
// (insertion-order stable for ties).
func (mx *Matrix) Hot() []data.AttrID {
	var out []data.AttrID
	for a := 0; a < mx.n; a++ {
		if mx.Usage(a) > 0 {
			out = append(out, a)
		}
	}
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && mx.Usage(out[j]) > mx.Usage(out[j-1]); j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// String renders the non-zero upper triangle, for debugging.
func (mx *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < mx.n; i++ {
		for j := i; j < mx.n; j++ {
			if v := mx.At(i, j); v != 0 {
				fmt.Fprintf(&b, "(%d,%d)=%g ", i, j, v)
			}
		}
	}
	return strings.TrimSpace(b.String())
}

// Config controls the dynamic monitoring window.
type Config struct {
	// InitialSize is the starting window size N (paper §4.1 uses 20; Fig. 9
	// uses 30).
	InitialSize int
	// MinSize and MaxSize bound the dynamic window.
	MinSize, MaxSize int
	// NoveltyOverlap is the Jaccard-similarity threshold below which a query
	// access pattern counts as "new": patterns whose attribute set overlaps
	// less than this with every recorded pattern signal a workload shift.
	NoveltyOverlap float64
	// Dynamic enables window resizing; when false the window behaves like
	// the paper's "static window" baseline (Fig. 9).
	Dynamic bool
}

// DefaultConfig mirrors the paper's settings.
func DefaultConfig() Config {
	return Config{
		InitialSize:    20,
		MinSize:        4,
		MaxSize:        100,
		NoveltyOverlap: 0.5,
		Dynamic:        true,
	}
}

// Window is the dynamic monitoring window: it retains the most recent
// queries' access patterns, maintains the two affinity matrices, counts
// pattern frequencies and detects workload shifts.
type Window struct {
	cfg    Config
	nAttrs int

	size    int // current dynamic window size N
	history []query.Info
	// sinceAdapt counts queries observed since the last adaptation phase.
	sinceAdapt int
	// novelSinceAdapt records whether a shift was detected in the current
	// adaptation period; it suppresses growth at the next boundary.
	novelSinceAdapt bool
}

// NewWindow creates a monitoring window over a schema with nAttrs attributes.
func NewWindow(nAttrs int, cfg Config) *Window {
	if cfg.InitialSize <= 0 {
		cfg.InitialSize = DefaultConfig().InitialSize
	}
	if cfg.MinSize <= 0 {
		cfg.MinSize = 2
	}
	if cfg.MaxSize < cfg.InitialSize {
		cfg.MaxSize = cfg.InitialSize
	}
	if cfg.NoveltyOverlap <= 0 {
		cfg.NoveltyOverlap = DefaultConfig().NoveltyOverlap
	}
	return &Window{cfg: cfg, nAttrs: nAttrs, size: cfg.InitialSize}
}

// Size returns the current (dynamic) window size.
func (w *Window) Size() int { return w.size }

// SinceAdaptation returns the number of queries observed since the last
// adaptation phase.
func (w *Window) SinceAdaptation() int { return w.sinceAdapt }

// Observation reports what the monitor concluded about one query.
type Observation struct {
	Novel      bool // access pattern not seen (or barely seen) in the window
	WindowSize int  // window size after the observation
	Due        bool // an adaptation phase is due
}

// Observe records one query and updates the dynamic window. Following §3.2:
// a new or low-frequency access pattern shrinks the window *immediately*
// ("the adaptation window decreases to progressively orchestrate a new
// adaptation phase"), making the next adaptation due sooner; growth for
// stable workloads happens at adaptation boundaries (see MarkAdapted), so a
// stable stream still adapts periodically, just less and less often.
func (w *Window) Observe(info query.Info) Observation {
	novel := w.isNovel(info)

	w.history = append(w.history, info)
	if over := len(w.history) - w.cfg.MaxSize; over > 0 {
		w.history = w.history[over:]
	}
	w.sinceAdapt++

	if w.cfg.Dynamic && novel {
		w.novelSinceAdapt = true
		w.size /= 2
		if w.size < w.cfg.MinSize {
			w.size = w.cfg.MinSize
		}
	}
	return Observation{Novel: novel, WindowSize: w.size, Due: w.sinceAdapt >= w.size}
}

// isNovel reports whether info's access pattern is new or rare relative to
// the retained history: no exact-pattern repetition and low attribute-set
// overlap with every retained query.
func (w *Window) isNovel(info query.Info) bool {
	if len(w.history) == 0 {
		return false // nothing to compare against yet
	}
	pat := info.Pattern()
	attrs := info.All()
	bestOverlap := 0.0
	for _, h := range w.history {
		if h.Pattern() == pat {
			return false
		}
		if o := jaccard(attrs, h.All()); o > bestOverlap {
			bestOverlap = o
		}
	}
	return bestOverlap < w.cfg.NoveltyOverlap
}

// jaccard computes |a∩b| / |a∪b| for sorted attribute sets.
func jaccard(a, b []data.AttrID) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 1
	}
	inter := len(data.Intersect(a, b))
	union := len(a) + len(b) - inter
	if union == 0 {
		return 1
	}
	return float64(inter) / float64(union)
}

// MarkAdapted resets the adaptation counter; the engine calls it after
// running an adaptation phase. If the period that just ended saw no workload
// shift, the window grows ("when the workload is stable, H2O increases the
// adaptation window"), making adaptation progressively less frequent.
func (w *Window) MarkAdapted() {
	w.sinceAdapt = 0
	if w.cfg.Dynamic && !w.novelSinceAdapt {
		w.size += w.size/2 + 1
		if w.size > w.cfg.MaxSize {
			w.size = w.cfg.MaxSize
		}
	}
	w.novelSinceAdapt = false
}

// Recent returns the queries inside the current window (at most Size(),
// newest last). The advisor evaluates candidate layouts against this slice.
func (w *Window) Recent() []query.Info {
	n := w.size
	if n > len(w.history) {
		n = len(w.history)
	}
	return w.history[len(w.history)-n:]
}

// Matrices builds the select- and where-clause affinity matrices from the
// queries currently in the window.
func (w *Window) Matrices() (sel, where *Matrix) {
	sel, where = NewMatrix(w.nAttrs), NewMatrix(w.nAttrs)
	for _, info := range w.Recent() {
		if len(info.Select) > 0 {
			sel.Add(info.Select, 1)
		}
		if len(info.Where) > 0 {
			where.Add(info.Where, 1)
		}
	}
	return sel, where
}

// PatternFrequency returns how many retained queries share info's exact
// access pattern.
func (w *Window) PatternFrequency(info query.Info) int {
	pat := info.Pattern()
	n := 0
	for _, h := range w.history {
		if h.Pattern() == pat {
			n++
		}
	}
	return n
}
