package costmodel

import (
	"testing"
	"testing/quick"
)

func model() *Model { return New(Default()) }

func TestNarrowAccessPrefersNarrowLayout(t *testing.T) {
	m := model()
	rows := 1_000_000
	// Read 5 attributes out of 150: a 5-wide group must beat a 150-wide row
	// layout and the row layout must cost ~30x more (bandwidth waste).
	narrow := m.QueryCost([]GroupAccess{{Stride: 5, Width: 5, Used: 5, Rows: rows, Selectivity: 1}})
	wide := m.QueryCost([]GroupAccess{{Stride: 150, Width: 150, Used: 5, Rows: rows, Selectivity: 1}})
	if narrow >= wide {
		t.Fatalf("narrow=%g wide=%g: narrow group should win", narrow, wide)
	}
	if ratio := float64(wide / narrow); ratio < 5 {
		t.Fatalf("wide/narrow = %.1f, expected a large bandwidth-waste gap", ratio)
	}
}

func TestFullWidthAccessRowBeatsColumns(t *testing.T) {
	m := model()
	rows := 1_000_000
	attrs := 50
	// Reading all attributes: one 50-wide group vs 50 separate columns, with
	// the columnar plan paying intermediate materialization (tuple
	// reconstruction), as in the paper's Figure 2 crossover.
	row := m.QueryCost([]GroupAccess{{Stride: attrs, Width: attrs, Used: attrs, Rows: rows, Selectivity: 1}})
	cols := make([]GroupAccess, attrs)
	for i := range cols {
		cols[i] = GroupAccess{Stride: 1, Width: 1, Used: 1, Rows: rows, Selectivity: 1, IntermediateWords: rows}
	}
	col := m.QueryCost(cols)
	if row >= col {
		t.Fatalf("row=%g col=%g: row layout should win at full width with materialization", row, col)
	}
}

func TestSelectivityReducesProbeCost(t *testing.T) {
	m := model()
	base := GroupAccess{Stride: 20, Width: 20, Used: 20, Rows: 1_000_000}
	sparse, dense := base, base
	sparse.Selectivity = 0.001
	dense.Selectivity = 1
	if m.QueryCost([]GroupAccess{sparse}) >= m.QueryCost([]GroupAccess{dense}) {
		t.Fatal("sparse probes should cost less than a full scan")
	}
}

func TestIntermediatesCost(t *testing.T) {
	m := model()
	with := GroupAccess{Stride: 1, Width: 1, Used: 1, Rows: 1_000_000, Selectivity: 1, IntermediateWords: 1_000_000}
	without := with
	without.IntermediateWords = 0
	if m.AccessCPU(with) <= m.AccessCPU(without) {
		t.Fatal("intermediate materialization must add CPU cost")
	}
	if m.AccessIO(with) <= m.AccessIO(without) {
		t.Fatal("intermediate materialization must add IO cost")
	}
}

func TestQueryCostIsMaxOfIOAndCPU(t *testing.T) {
	m := model()
	a := GroupAccess{Stride: 10, Width: 10, Used: 10, Rows: 100_000, Selectivity: 1}
	io, cpu := m.AccessIO(a), m.AccessCPU(a)
	want := io
	if cpu > want {
		want = cpu
	}
	if got := m.QueryCost([]GroupAccess{a}); got != want {
		t.Fatalf("QueryCost = %g, want max(io,cpu) = %g", got, want)
	}
}

func TestDiskVsMemoryBandwidth(t *testing.T) {
	p := Default()
	p.InMemory = false
	disk := New(p)
	mem := model()
	a := GroupAccess{Stride: 10, Width: 10, Used: 10, Rows: 1_000_000, Selectivity: 1}
	if disk.AccessIO(a) <= mem.AccessIO(a) {
		t.Fatal("disk IO must be slower than memory IO")
	}
}

func TestTransformCost(t *testing.T) {
	m := model()
	if m.TransformCost(0) != 0 || m.TransformCost(-5) != 0 {
		t.Fatal("non-positive volumes are free")
	}
	if m.TransformCost(1<<30) <= m.TransformCost(1<<20) {
		t.Fatal("transform cost must grow with volume")
	}
}

func TestSelectivityClamping(t *testing.T) {
	m := model()
	a := GroupAccess{Stride: 4, Width: 4, Used: 4, Rows: 1000, Selectivity: 7}
	b := a
	b.Selectivity = 1
	if m.QueryCost([]GroupAccess{a}) != m.QueryCost([]GroupAccess{b}) {
		t.Fatal("selectivity above 1 should clamp to 1")
	}
	a.Selectivity = -3
	if m.AccessCPU(a) < 0 || m.AccessIO(a) < 0 {
		t.Fatal("negative selectivity must not produce negative cost")
	}
}

// Properties: costs are non-negative and monotone in rows.
func TestCostProperties(t *testing.T) {
	m := model()
	f := func(strideRaw, usedRaw uint8, rowsRaw uint16, selRaw uint8) bool {
		stride := 1 + int(strideRaw)%64
		used := 1 + int(usedRaw)%stride
		rows := 1 + int(rowsRaw)
		sel := float64(selRaw) / 255
		a := GroupAccess{Stride: stride, Width: stride, Used: used, Rows: rows, Selectivity: sel}
		c1 := m.QueryCost([]GroupAccess{a})
		if c1 < 0 {
			return false
		}
		a2 := a
		a2.Rows = rows * 2
		return m.QueryCost([]GroupAccess{a2}) >= c1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCostAdditiveOverLayouts(t *testing.T) {
	m := model()
	a := GroupAccess{Stride: 3, Width: 3, Used: 3, Rows: 10_000, Selectivity: 1}
	b := GroupAccess{Stride: 7, Width: 7, Used: 2, Rows: 10_000, Selectivity: 1}
	sum := m.QueryCost([]GroupAccess{a}) + m.QueryCost([]GroupAccess{b})
	if got := m.QueryCost([]GroupAccess{a, b}); got != sum {
		t.Fatalf("Eq.2 must sum per-layout terms: %g vs %g", got, sum)
	}
}
