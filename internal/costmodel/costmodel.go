// Package costmodel implements H2O's query cost model (paper §3.5):
//
//	q(L) = Σ_i max(costIO_i, costCPU_i)                     (Eq. 2)
//
// For each data layout accessed by a query plan the model estimates an I/O
// cost (bytes moved over disk or memory bandwidth, assumed to overlap with
// computation) and a CPU cost derived from the number of data-cache misses
// the access pattern incurs, following the HYRISE-style model the paper
// cites: misses are a function of the layout width, the number of tuples and
// the number of data words accessed, plus the cost of materializing and
// re-reading intermediate results (selection vectors, intermediate columns).
// It also prices layout transformations (the T term of Eq. 1), charged as a
// bulk copy of the moved volume.
package costmodel

// Seconds is an estimated duration. The model only ranks alternatives, so
// the unit matters less than consistency.
type Seconds float64

// Params are the hardware constants of the cost model.
type Params struct {
	CacheLineBytes int // typically 64
	WordBytes      int // 8 for int64 attributes

	MissLatency   Seconds // stall per last-level data cache miss
	PerWordCPU    Seconds // pure compute per word processed (predicates, adds)
	MemBandwidth  float64 // bytes/second for sequential in-memory reads
	DiskBandwidth float64 // bytes/second for sequential disk reads
	CopyBandwidth float64 // bytes/second for layout transformation copies

	InMemory bool // when true, I/O cost uses memory bandwidth (hot runs)
}

// Default returns parameters resembling the paper's Sandy Bridge server
// (§4: 2.2 GHz cores, 20 MB L3, RAID of SATA disks). Absolute values are not
// calibrated — the model only has to rank layouts and strategies.
func Default() Params {
	return Params{
		CacheLineBytes: 64,
		WordBytes:      8,
		MissLatency:    60e-9,  // ~60 ns to memory
		PerWordCPU:     0.7e-9, // ~1.5 words/cycle at 2.2 GHz
		MemBandwidth:   8e9,    // single-stream sequential read
		DiskBandwidth:  500e6,  // RAID-0 of 7 SATA disks
		CopyBandwidth:  4e9,    // read+write streams share the bus
		InMemory:       true,
	}
}

// Model evaluates plan costs under a fixed set of parameters.
type Model struct {
	P Params
}

// New returns a model with the given parameters.
func New(p Params) *Model { return &Model{P: p} }

// GroupAccess describes how a plan touches one column group (one term of
// Eq. 2's sum).
type GroupAccess struct {
	Stride int // words per stored mini-tuple (incl. padding)
	Width  int // attributes stored in the group
	Used   int // attributes the plan actually reads
	Rows   int // tuples in the group

	// Selectivity is the fraction of tuples fetched from this group. 1 for a
	// full scan (e.g. predicate evaluation); <1 when the group is probed
	// through a selection vector produced elsewhere.
	Selectivity float64

	// IntermediateWords counts values the strategy materializes into
	// intermediate results while processing this group (selection vectors,
	// intermediate columns). Each is written once and read once.
	IntermediateWords int
}

// linesPerTuple estimates the distinct cache lines touched per tuple when
// reading used of width attributes from a group with the given stride.
func (m *Model) linesPerTuple(stride, used int, sequential bool) float64 {
	lineWords := float64(m.P.CacheLineBytes / m.P.WordBytes)
	tupleWords := float64(stride)
	if sequential {
		// A sequential scan streams whole tuples: consecutive tuples share
		// lines, so the amortized cost is tupleWords/lineWords lines per
		// tuple regardless of how many attributes are used — this is exactly
		// the bandwidth waste of wide layouts under narrow access.
		return tupleWords / lineWords
	}
	// A positional probe touches only the lines containing the used words.
	// Used words are adjacent within the mini-tuple, so they span
	// ceil(used/lineWords) lines, plus potential misalignment.
	lines := float64(used) / lineWords
	if lines < 1 {
		lines = 1
	}
	return lines
}

// AccessCPU estimates the CPU cost (cache-miss stalls plus per-word compute)
// of one group access.
func (m *Model) AccessCPU(a GroupAccess) Seconds {
	rows := float64(a.Rows)
	sel := a.Selectivity
	if sel <= 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}

	var misses float64
	if sel >= 0.05 {
		// High selectivity: the hardware prefetcher makes the probe pattern
		// effectively sequential — whole group streamed through the cache.
		misses = rows * m.linesPerTuple(a.Stride, a.Used, true)
	} else {
		// Sparse positional fetches: pay per qualifying tuple.
		misses = rows * sel * m.linesPerTuple(a.Stride, a.Used, false)
	}

	// Intermediates are written once and read back once; both passes are
	// sequential.
	interBytes := float64(a.IntermediateWords * m.P.WordBytes)
	misses += 2 * interBytes / float64(m.P.CacheLineBytes)

	wordsProcessed := rows*sel*float64(a.Used) + float64(a.IntermediateWords)
	if sel < 1 {
		// Predicate columns are still inspected for every tuple.
		wordsProcessed += rows
	}
	return Seconds(misses)*m.P.MissLatency + Seconds(wordsProcessed)*m.P.PerWordCPU
}

// AccessIO estimates the I/O cost of one group access: the bytes the scan
// moves, at disk or memory bandwidth.
func (m *Model) AccessIO(a GroupAccess) Seconds {
	sel := a.Selectivity
	if sel <= 0 {
		sel = 0
	}
	if sel > 1 {
		sel = 1
	}
	bytes := float64(a.Rows) * float64(a.Stride*m.P.WordBytes)
	if sel < 0.05 {
		// Sparse probes skip most of the group; random reads still pull whole
		// cache lines (or disk blocks) per qualifying tuple.
		lineBytes := float64(m.P.CacheLineBytes)
		need := float64(a.Used * m.P.WordBytes)
		if need < lineBytes {
			need = lineBytes
		}
		bytes = float64(a.Rows) * sel * need
	}
	bytes += float64(2 * a.IntermediateWords * m.P.WordBytes)
	bw := m.P.MemBandwidth
	if !m.P.InMemory {
		bw = m.P.DiskBandwidth
	}
	return Seconds(bytes / bw)
}

// QueryCost evaluates Eq. 2 for a plan that touches the given groups:
// Σ max(costIO, costCPU), assuming I/O and CPU overlap per layout.
func (m *Model) QueryCost(accesses []GroupAccess) Seconds {
	var total Seconds
	for _, a := range accesses {
		io, cpu := m.AccessIO(a), m.AccessCPU(a)
		if io > cpu {
			total += io
		} else {
			total += cpu
		}
	}
	return total
}

// TransformCost prices a layout transformation that moves the given volume
// (source bytes read plus destination bytes written) — the T(Ci-1, Ci) term
// of Eq. 1. Reorganization is segment-granular, so callers pass the bytes
// of exactly the segments they intend to move: pricing one hot segment
// costs O(segment), pricing the whole relation costs the sum.
func (m *Model) TransformCost(bytes int64) Seconds {
	if bytes <= 0 {
		return 0
	}
	return Seconds(float64(bytes) / m.P.CopyBandwidth)
}

// ReorgPays decides whether a reorganization that moves moveBytes is worth
// triggering: the per-query gain, collected over the amortization horizon,
// must exceed the transformation cost. The engine evaluates it per
// segment-subset — gain scaled to the hot segments' row share, moveBytes
// summed over hot segments only — so adapting three hot segments can pay
// even when reorganizing the whole relation would not.
func (m *Model) ReorgPays(gain Seconds, horizon int, moveBytes int64) bool {
	if gain <= 0 {
		return false
	}
	return float64(gain)*float64(horizon) >= float64(m.TransformCost(moveBytes))
}
