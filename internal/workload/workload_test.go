package workload

import (
	"testing"

	"h2o/internal/data"
	"h2o/internal/query"
)

func TestQueryClassBuilders(t *testing.T) {
	attrs := []data.AttrID{1, 2, 3}
	for _, c := range []QueryClass{ClassProjection, ClassAggregation, ClassExpression, ClassAggExpression} {
		q := c.Build("R", attrs, nil)
		if q == nil || len(q.SelectAttrs()) != 3 {
			t.Fatalf("class %v built %v", c, q)
		}
		if c.String() == "" {
			t.Fatal("empty class name")
		}
	}
}

func TestProjectivitySweepShape(t *testing.T) {
	points := ProjectivitySweep("R", 100, 10_000, []int{5, 20, 50}, ClassAggregation, 0.4, 1)
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	for i, want := range []int{5, 20, 50} {
		got := len(points[i].Query.SelectAttrs())
		if got != want {
			t.Fatalf("point %d accesses %d attrs, want %d", i, got, want)
		}
		if points[i].Query.Where == nil {
			t.Fatal("filtered sweep missing where clause")
		}
		// The dial attribute must be part of the accessed set.
		if points[i].Query.SelectAttrs()[0] != 0 {
			t.Fatal("dial attribute not included")
		}
	}
	// No-filter variant.
	points = ProjectivitySweep("R", 100, 10_000, []int{5}, ClassProjection, -1, 1)
	if points[0].Query.Where != nil {
		t.Fatal("sel<0 must disable the where clause")
	}
}

func TestSelectivitySweepFixesAttrs(t *testing.T) {
	points := SelectivitySweep("R", 100, 10_000, 20, ClassExpression, []float64{0.01, 0.5, 1}, 1)
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	first := points[0].Query.SelectAttrs()
	for _, p := range points[1:] {
		got := p.Query.SelectAttrs()
		if len(got) != len(first) {
			t.Fatal("attribute set must stay fixed across the selectivity sweep")
		}
		for i := range got {
			if got[i] != first[i] {
				t.Fatal("attribute set changed across sweep")
			}
		}
	}
}

func TestAdaptiveSequenceProperties(t *testing.T) {
	qs := AdaptiveSequence("R", 150, 10_000, 100, 10, 30, 7)
	if len(qs) != 100 {
		t.Fatalf("n = %d", len(qs))
	}
	patterns := map[string]int{}
	for _, q := range qs {
		z := len(q.SelectAttrs())
		if z < 10 || z > 30 {
			t.Fatalf("query accesses %d attrs, want [10,30]", z)
		}
		if q.Where == nil {
			t.Fatal("adaptive sequence queries must have predicates")
		}
		patterns[query.InfoOf(q).Pattern()]++
	}
	// Recurrence: some pattern must repeat several times (hot templates),
	// and there must be more than a couple of distinct patterns (drift).
	best := 0
	for _, n := range patterns {
		if n > best {
			best = n
		}
	}
	if best < 5 {
		t.Fatalf("hottest pattern recurs only %d times; workload lacks locality", best)
	}
	if len(patterns) < 5 {
		t.Fatalf("only %d distinct patterns; workload lacks evolution", len(patterns))
	}
	// Determinism.
	qs2 := AdaptiveSequence("R", 150, 10_000, 100, 10, 30, 7)
	for i := range qs {
		if qs[i].String() != qs2[i].String() {
			t.Fatal("sequence not deterministic")
		}
	}
}

func TestShiftSequencePhases(t *testing.T) {
	qs := ShiftSequence("R", 150, 60, 15, 3)
	union := func(lo, hi int) map[data.AttrID]bool {
		set := map[data.AttrID]bool{}
		for _, q := range qs[lo:hi] {
			for _, a := range q.AllAttrs() {
				set[a] = true
			}
		}
		return set
	}
	phase1, phase2 := union(0, 15), union(15, 60)
	for a := range phase1 {
		if phase2[a] {
			t.Fatalf("attribute %d appears in both phases; working sets must be disjoint", a)
		}
	}
	if len(phase1) == 0 || len(phase2) == 0 {
		t.Fatal("empty phase")
	}
	for _, q := range qs {
		z := len(q.SelectAttrs())
		if z < 5 || z > 20 {
			t.Fatalf("query accesses %d attrs, want [5,20]", z)
		}
	}
}

func TestOscillatingSequence(t *testing.T) {
	qs := OscillatingSequence("R", 100, 20, 5, 1)
	pat := func(i int) string { return query.InfoOf(qs[i]).Pattern() }
	if pat(0) != pat(4) {
		t.Fatal("first period not uniform")
	}
	if pat(0) == pat(5) {
		t.Fatal("period did not switch pattern")
	}
	if pat(0) != pat(10) {
		t.Fatal("pattern A must return in the third period")
	}
}

func TestSkyServerTrace(t *testing.T) {
	qs := SkyServerTrace(10_000, 9)
	if len(qs) != SkyServerQueries {
		t.Fatalf("trace length %d", len(qs))
	}
	sch := SkyServerSchema()
	if sch.NumAttrs() != PhotoObjAllAttrs {
		t.Fatalf("schema width %d", sch.NumAttrs())
	}
	patterns := map[string]int{}
	for _, q := range qs {
		if q.Table != "PhotoObjAll" {
			t.Fatal("wrong table name")
		}
		for _, a := range q.AllAttrs() {
			if a < 0 || a >= PhotoObjAllAttrs {
				t.Fatalf("attribute %d out of schema", a)
			}
		}
		if q.Where == nil {
			t.Fatal("SkyServer queries carry range predicates")
		}
		patterns[query.InfoOf(q).Pattern()]++
	}
	// Hot sets dominate: the most frequent pattern families must recur.
	distinct := len(patterns)
	if distinct < 20 || distinct >= SkyServerQueries {
		t.Fatalf("distinct patterns = %d; expected heavy but not total reuse", distinct)
	}
	// Determinism.
	qs2 := SkyServerTrace(10_000, 9)
	for i := range qs {
		if qs[i].String() != qs2[i].String() {
			t.Fatal("trace not deterministic")
		}
	}
}

func TestDialPredicate(t *testing.T) {
	tb := data.GenerateSelective(data.SyntheticSchema("R", 2), 1000, 1)
	p := DialPredicate(1000, 0.25)
	n := 0
	for r := 0; r < 1000; r++ {
		if p.EvalBool(func(a data.AttrID) data.Value { return tb.Cols[a][r] }) {
			n++
		}
	}
	if n != 250 {
		t.Fatalf("dial predicate selected %d rows, want 250", n)
	}
}
