// Package workload generates the query sequences and relations of every
// experiment in the paper's evaluation (§4): projectivity and selectivity
// sweeps for the motivation and sensitivity figures, the 100-query evolving
// workload of §4.1, the 60-query shifting workload of Figure 9, oscillating
// workloads, and a simulator for the SkyServer (SDSS) trace used in
// Figure 8.
//
// Generators are deterministic in their seed so every experiment — and
// every CI run — replays the identical query sequence.
package workload

import (
	"math/rand"

	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
)

// QueryClass selects one of the paper's §4.2.1 query templates.
type QueryClass int

const (
	// ClassProjection: select a, b, ... (template i).
	ClassProjection QueryClass = iota
	// ClassAggregation: select max(a), max(b), ... (template ii).
	ClassAggregation
	// ClassExpression: select a + b + ... (template iii).
	ClassExpression
	// ClassAggExpression: select sum(a + b + ...) — §4.1's
	// select-project-aggregate mix (one result row).
	ClassAggExpression
)

// String names the class.
func (c QueryClass) String() string {
	switch c {
	case ClassProjection:
		return "projection"
	case ClassAggregation:
		return "aggregation"
	case ClassExpression:
		return "expression"
	case ClassAggExpression:
		return "agg-expression"
	default:
		return "unknown"
	}
}

// Build constructs a query of the class over attrs with the given predicate.
func (c QueryClass) Build(table string, attrs []data.AttrID, where expr.Pred) *query.Query {
	switch c {
	case ClassProjection:
		return query.Projection(table, attrs, where)
	case ClassAggregation:
		return query.Aggregation(table, expr.AggMax, attrs, where)
	case ClassExpression:
		return query.ArithExpression(table, attrs, where)
	case ClassAggExpression:
		return query.AggExpression(table, attrs, where)
	default:
		panic("workload: unknown query class")
	}
}

// DialPredicate builds the fixed-selectivity predicate used by sweep
// workloads: a comparison on the selectivity-dial attribute of a
// data.GenerateSelective table that qualifies exactly fraction sel of rows.
func DialPredicate(rows int, sel float64) expr.Pred {
	return query.PredLt(0, data.SelectivityCut(rows, sel))
}

// SweepPoint is one x-axis position of a projectivity or selectivity sweep.
type SweepPoint struct {
	Label string
	Query *query.Query
}

// ProjectivitySweep builds the Figures 1/2 and 10(a-c) x-axis: queries of
// class c accessing k attributes for each k in counts, with an optional
// fixed-selectivity filter (sel < 0 disables the where clause). Attributes
// are drawn deterministically from seed; the dial attribute (0) is included
// when a filter is requested, mirroring the paper's "the attributes accessed
// in the where clause and in the select clause are the same".
func ProjectivitySweep(table string, nAttrs, rows int, counts []int, c QueryClass, sel float64, seed int64) []SweepPoint {
	rng := rand.New(rand.NewSource(seed))
	out := make([]SweepPoint, 0, len(counts))
	for _, k := range counts {
		var attrs []data.AttrID
		var where expr.Pred
		if sel >= 0 {
			where = DialPredicate(rows, sel)
			attrs = append([]data.AttrID{0}, query.RandomAttrs(nAttrs-1, max(k-1, 1), func(n int) int { return 1 + rng.Intn(n) })...)
		} else {
			attrs = query.RandomAttrs(nAttrs, k, rng.Intn)
		}
		attrs = data.SortedUnique(attrs)
		out = append(out, SweepPoint{
			Label: itoa(k),
			Query: c.Build(table, attrs, where),
		})
	}
	return out
}

// SelectivitySweep builds the Figures 2 and 10(d-f) x-axis: queries of class
// c over a fixed set of k attributes while the filter selectivity varies.
func SelectivitySweep(table string, nAttrs, rows, k int, c QueryClass, sels []float64, seed int64) []SweepPoint {
	rng := rand.New(rand.NewSource(seed))
	attrs := append([]data.AttrID{0}, query.RandomAttrs(nAttrs-1, k-1, func(n int) int { return 1 + rng.Intn(n) })...)
	attrs = data.SortedUnique(attrs)
	out := make([]SweepPoint, 0, len(sels))
	for _, s := range sels {
		out = append(out, SweepPoint{
			Label: percent(s),
			Query: c.Build(table, attrs, DialPredicate(rows, s)),
		})
	}
	return out
}

// AdaptiveSequence builds the §4.1 workload: n select-project-aggregation
// queries, each over z ∈ [zMin, zMax] attributes of a wide relation. The
// sequence has the structure the paper describes — recurring attribute
// combinations ("5 out of the 20 queries refer to attributes a1, a5, a8, a9,
// a10") drawn from a rotating pool of hot templates, plus occasional fresh
// ad-hoc patterns, with the hot pool drifting over time so the workload
// evolves.
func AdaptiveSequence(table string, nAttrs, rows, n, zMin, zMax int, seed int64) []*query.Query {
	rng := rand.New(rand.NewSource(seed))
	const poolSize = 5
	newTemplate := func() []data.AttrID {
		z := zMin + rng.Intn(zMax-zMin+1)
		return query.RandomAttrs(nAttrs, z, rng.Intn)
	}
	pool := make([][]data.AttrID, poolSize)
	for i := range pool {
		pool[i] = newTemplate()
	}
	out := make([]*query.Query, n)
	for i := 0; i < n; i++ {
		// Drift: periodically replace one hot template.
		if i > 0 && i%(n/4+1) == 0 {
			pool[rng.Intn(poolSize)] = newTemplate()
		}
		var attrs []data.AttrID
		if rng.Float64() < 0.8 {
			attrs = pool[rng.Intn(poolSize)] // hot, recurring combination
		} else {
			attrs = newTemplate() // ad-hoc exploration
		}
		where := query.PredLt(attrs[0], rng.Int63n(2*data.ValueHi)-data.ValueHi)
		out[i] = query.AggExpression(table, attrs, where)
	}
	return out
}

// ShiftSequence builds the Figure 9 workload: n queries over 5–20 attribute
// expressions; the first phase1 queries draw from one 20-attribute working
// set, the remainder from a different one.
func ShiftSequence(table string, nAttrs, n, phase1 int, seed int64) []*query.Query {
	rng := rand.New(rand.NewSource(seed))
	setA := query.RandomAttrs(nAttrs, 20, rng.Intn)
	var setB []data.AttrID
	for len(setB) < 20 {
		cand := query.RandomAttrs(nAttrs, 20, rng.Intn)
		if len(data.Intersect(setA, cand)) == 0 {
			setB = cand
		}
	}
	pick := func(set []data.AttrID) []data.AttrID {
		k := 5 + rng.Intn(16) // 5..20 attributes per query
		if k > len(set) {
			k = len(set)
		}
		idx := rng.Perm(len(set))[:k]
		attrs := make([]data.AttrID, k)
		for i, j := range idx {
			attrs[i] = set[j]
		}
		return data.SortedUnique(attrs)
	}
	out := make([]*query.Query, n)
	for i := 0; i < n; i++ {
		set := setA
		if i >= phase1 {
			set = setB
		}
		out[i] = query.AggExpression(table, pick(set), nil)
	}
	return out
}

// OscillatingSequence alternates between two access patterns every period
// queries — the workload class §3.2 warns adaptation must not overreact to.
func OscillatingSequence(table string, nAttrs, n, period int, seed int64) []*query.Query {
	rng := rand.New(rand.NewSource(seed))
	setA := query.RandomAttrs(nAttrs, 8, rng.Intn)
	setB := query.RandomAttrs(nAttrs, 8, rng.Intn)
	out := make([]*query.Query, n)
	for i := 0; i < n; i++ {
		set := setA
		if (i/period)%2 == 1 {
			set = setB
		}
		out[i] = query.AggExpression(table, set, nil)
	}
	return out
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	if neg {
		return "-" + string(b)
	}
	return string(b)
}

func percent(f float64) string {
	return itoa(int(f*100+0.5)) + "%"
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
