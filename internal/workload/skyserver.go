package workload

import (
	"math/rand"

	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
)

// SkyServer simulates the SDSS SkyServer workload of Figure 8: the
// "PhotoObjAll" table — the survey's widest and most heavily queried table,
// with 446 attributes — and a 250-query trace.
//
// The real trace is not redistributable, so the simulator reproduces its
// published structural characteristics instead: a small number of hot
// attribute sets (photometric magnitudes, positions, flags) that dominate
// the trace and recur heavily; Zipf-like attribute popularity; range
// predicates on a few filter attributes (ra/dec/mode-style); and occasional
// ad-hoc exploratory queries over cold attributes. These are the properties
// the Figure 8 comparison exercises: an offline advisor fits the dominant
// sets, per-query adaptation additionally exploits the phases and stragglers.
const (
	// PhotoObjAllAttrs is the width of the simulated PhotoObjAll table.
	PhotoObjAllAttrs = 446
	// SkyServerQueries is the length of the simulated trace.
	SkyServerQueries = 250
)

// SkyServerSchema returns the simulated PhotoObjAll schema.
func SkyServerSchema() *data.Schema {
	return data.SyntheticSchema("PhotoObjAll", PhotoObjAllAttrs)
}

// SkyServerTrace generates the simulated 250-query trace over a table with
// rows tuples.
func SkyServerTrace(rows int, seed int64) []*query.Query {
	rng := rand.New(rand.NewSource(seed))

	// Hot attribute sets modeled on PhotoObjAll usage: the five ugriz
	// magnitude families, the astrometry block and the flags block. Each is
	// a contiguous-ish cluster, as in the real schema.
	hotSets := [][]data.AttrID{
		rangeAttrs(10, 18),   // position/astrometry (ra, dec, ...)
		rangeAttrs(30, 45),   // psfMag_* and errors
		rangeAttrs(60, 75),   // modelMag_* and errors
		rangeAttrs(100, 110), // petroRad_*
		rangeAttrs(150, 158), // flags/type/status
	}
	// Zipf-ish popularity over the hot sets.
	weights := []float64{0.30, 0.25, 0.20, 0.15, 0.10}

	pickHot := func() []data.AttrID {
		r := rng.Float64()
		acc := 0.0
		for i, w := range weights {
			acc += w
			if r < acc {
				return hotSets[i]
			}
		}
		return hotSets[len(hotSets)-1]
	}

	out := make([]*query.Query, SkyServerQueries)
	for i := range out {
		var attrs []data.AttrID
		switch {
		case rng.Float64() < 0.75:
			// Hot template: a subset of one hot set, sometimes joined with
			// the astrometry block (position + magnitudes is the classic
			// SkyServer shape).
			attrs = subset(rng, pickHot(), 4, 12)
			if rng.Float64() < 0.4 {
				attrs = data.Union(attrs, subset(rng, hotSets[0], 2, 4))
			}
		case rng.Float64() < 0.5:
			// Trace phase: the second half of the trace drifts toward the
			// photometric blocks.
			attrs = subset(rng, hotSets[1+rng.Intn(2)], 6, 14)
		default:
			// Ad-hoc exploration over cold attributes.
			attrs = query.RandomAttrs(PhotoObjAllAttrs, 3+rng.Intn(8), rng.Intn)
		}
		attrs = data.SortedUnique(attrs)

		// Range predicate on the first attribute of the set (ra/dec style
		// cuts), with varying selectivity.
		where := query.PredLt(attrs[0], rng.Int63n(2*data.ValueHi)-data.ValueHi)

		// Mix of aggregation (counts/statistics) and expression queries,
		// as in the analytic portion of the SDSS trace.
		if rng.Float64() < 0.5 {
			out[i] = query.Aggregation("PhotoObjAll", expr.AggMax, attrs, where)
		} else {
			out[i] = query.AggExpression("PhotoObjAll", attrs, where)
		}
	}
	return out
}

func rangeAttrs(lo, hi int) []data.AttrID {
	out := make([]data.AttrID, 0, hi-lo)
	for a := lo; a < hi; a++ {
		out = append(out, a)
	}
	return out
}

func subset(rng *rand.Rand, set []data.AttrID, kMin, kMax int) []data.AttrID {
	k := kMin + rng.Intn(kMax-kMin+1)
	if k > len(set) {
		k = len(set)
	}
	idx := rng.Perm(len(set))[:k]
	out := make([]data.AttrID, k)
	for i, j := range idx {
		out[i] = set[j]
	}
	return data.SortedUnique(out)
}
