package shard

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"h2o/internal/core"
	"h2o/internal/data"
	"h2o/internal/exec"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/server"
	"h2o/internal/storage"
)

// Shard equivalence harness: every generated query on a 2/4/8-shard router
// must match the single-engine answer over the same rows — bit-identically
// for aggregates and GROUP BY (the merge law is exact, and both sides emit
// groups key-ordered), as multisets for row shapes (SQL promises no row
// order), and as a count plus sub-multiset for limited row shapes (which
// rows survive a LIMIT is legitimately choice). The harness then keeps the
// pair in lockstep through iterated append bursts, and separately re-feeds
// repair payloads round over round the way the serving layer does.

const (
	tWidth  = 6
	tSegCap = 128
)

func tOptions() core.Options {
	opts := core.DefaultOptions()
	opts.Mode = core.ModeFrozen
	opts.SegmentCapacity = tSegCap
	return opts
}

// tTable builds one randomized table. Two attributes are folded onto a
// small value domain so GROUP BY produces multi-row groups that actually
// merge across shards.
func tTable(rng *rand.Rand) *data.Table {
	schema := data.SyntheticSchema("R", tWidth)
	rowChoices := []int{0, 1, tSegCap, 3*tSegCap + 50, 8 * tSegCap, 11*tSegCap + 7}
	rows := rowChoices[rng.Intn(len(rowChoices))]
	var tb *data.Table
	if rng.Intn(2) == 0 {
		tb = data.GenerateTimeSeries(schema, rows, rng.Int63())
	} else {
		tb = data.Generate(schema, rows, rng.Int63())
	}
	domain := []data.Value{0, 1, 127, 128, 384, 589}
	for _, a := range []int{2, 4} {
		for r := 0; r < rows; r++ {
			v := tb.Cols[a][r]
			if v < 0 {
				v = -v
			}
			tb.Cols[a][r] = domain[int(v%data.Value(len(domain)))]
		}
	}
	return tb
}

func tPredConst(rng *rand.Rand, attr data.AttrID, rows int) data.Value {
	switch rng.Intn(5) {
	case 0:
		return data.ValueLo - 1
	case 1:
		return data.ValueHi + 1
	default:
		if attr == 0 && rng.Intn(2) == 0 {
			return data.Value(rng.Intn(rows + 1))
		}
		return data.ValueLo + data.Value(rng.Int63n(int64(data.ValueHi-data.ValueLo)))
	}
}

// tQuery generates one randomized query: flat aggregates, aggregated
// expressions, grouped aggregations (with occasional grouped limits),
// projections and arithmetic expressions, under every predicate shape
// (none, comparison, conjunction, disjunction).
func tQuery(rng *rand.Rand, rows int) *query.Query {
	attrs := query.RandomAttrs(tWidth, 1+rng.Intn(3), rng.Intn)
	cmp := func() expr.Pred {
		a := data.AttrID(rng.Intn(tWidth))
		ops := []expr.CmpOp{expr.Lt, expr.Le, expr.Gt, expr.Ge}
		return &expr.Cmp{Op: ops[rng.Intn(len(ops))], L: &expr.Col{ID: a},
			R: &expr.Const{V: tPredConst(rng, a, rows)}}
	}
	var where expr.Pred
	switch rng.Intn(4) {
	case 0: // no predicate
	case 1:
		where = cmp()
	case 2:
		where = &expr.And{Terms: []expr.Pred{cmp(), cmp()}}
	case 3:
		where = &expr.Or{L: cmp(), R: cmp()}
	}
	aggOps := []expr.AggOp{expr.AggSum, expr.AggMax, expr.AggMin, expr.AggCount, expr.AggAvg}
	var q *query.Query
	switch rng.Intn(5) {
	case 0:
		q = query.Aggregation("R", aggOps[rng.Intn(len(aggOps))], attrs, where)
		if rng.Intn(4) == 0 {
			q.Limit = 1 + rng.Intn(3)
		}
	case 1:
		q = query.AggExpression("R", attrs, where)
	case 2:
		keys := query.RandomAttrs(tWidth, 1+rng.Intn(2), rng.Intn)
		q = query.GroupedAggregation("R", aggOps[rng.Intn(len(aggOps))], attrs, keys, where)
		if rng.Intn(3) == 0 {
			q.Limit = 1 + rng.Intn(6)
		}
	case 3:
		q = query.Projection("R", attrs, where)
		if rng.Intn(3) == 0 {
			q.Limit = 1 + rng.Intn(2*tSegCap)
		}
	case 4:
		q = query.ArithExpression("R", attrs, where)
	}
	return q
}

// tTuples builds a burst of count tuples; attr 0 continues the append
// order from base so zone maps on it stay meaningful.
func tTuples(rng *rand.Rand, base, count int) [][]data.Value {
	out := make([][]data.Value, count)
	domain := []data.Value{0, 1, 127, 128, 384, 589}
	for i := range out {
		tup := make([]data.Value, tWidth)
		tup[0] = data.Value(base + i)
		for a := 1; a < tWidth; a++ {
			tup[a] = data.ValueLo + data.Value(rng.Int63n(int64(data.ValueHi-data.ValueLo)))
		}
		tup[2] = domain[rng.Intn(len(domain))]
		tup[4] = domain[rng.Intn(len(domain))]
		out[i] = tup
	}
	return out
}

// multisetEqual compares results as row multisets (same columns, same rows
// in any order).
func multisetEqual(a, b *exec.Result) bool {
	if a.Rows != b.Rows || len(a.Cols) != len(b.Cols) {
		return false
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			return false
		}
	}
	w := len(a.Cols)
	count := make(map[string]int, a.Rows)
	for i := 0; i < a.Rows; i++ {
		count[fmt.Sprint(a.Data[i*w:(i+1)*w])]++
	}
	for i := 0; i < b.Rows; i++ {
		count[fmt.Sprint(b.Data[i*w:(i+1)*w])]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

// subMultiset reports whether every row of sub occurs in super at least as
// often.
func subMultiset(sub, super *exec.Result) bool {
	if len(sub.Cols) != len(super.Cols) {
		return false
	}
	w := len(super.Cols)
	count := make(map[string]int, super.Rows)
	for i := 0; i < super.Rows; i++ {
		count[fmt.Sprint(super.Data[i*w:(i+1)*w])]++
	}
	for i := 0; i < sub.Rows; i++ {
		k := fmt.Sprint(sub.Data[i*w : (i+1)*w])
		count[k]--
		if count[k] < 0 {
			return false
		}
	}
	return true
}

// checkEquivalence runs q on both sides and compares under the shape's
// comparison law.
func checkEquivalence(t *testing.T, eng *core.Engine, r *Router, q *query.Query) {
	t.Helper()
	want, _, errW := eng.Execute(q)
	got, _, errG := r.Execute(q)
	if (errW != nil) != (errG != nil) {
		t.Fatalf("error divergence on %s: single=%v sharded=%v", q, errW, errG)
	}
	if errW != nil {
		return
	}
	if q.HasAggregates() || len(q.GroupBy) > 0 {
		if !got.Equal(want) {
			t.Fatalf("sharded result diverged on %s:\n got %d rows %v\nwant %d rows %v",
				q, got.Rows, got.Data, want.Rows, want.Data)
		}
		return
	}
	if q.Limit > 0 {
		// Which rows survive a LIMIT is a legitimate per-side choice; the
		// count must match and every emitted row must exist in the
		// unlimited reference.
		if got.Rows != want.Rows {
			t.Fatalf("limited row count diverged on %s: got %d, want %d", q, got.Rows, want.Rows)
		}
		qf := *q
		qf.Limit = 0
		full, _, err := eng.Execute(&qf)
		if err != nil {
			t.Fatal(err)
		}
		if !subMultiset(got, full) {
			t.Fatalf("limited rows on %s are not drawn from the reference multiset", q)
		}
		return
	}
	if !multisetEqual(got, want) {
		t.Fatalf("row multiset diverged on %s:\n got %d rows\nwant %d rows", q, got.Rows, want.Rows)
	}
}

// TestShardEquivalence: randomized queries over 2/4/8-shard routers match
// the single-engine reference, before and after iterated append bursts, in
// both frozen and fully adaptive modes (the latter exercises the router's
// decline-retry around per-shard adaptation).
func TestShardEquivalence(t *testing.T) {
	const tablesPerCase = 2
	const queriesPerTable = 10
	const burstRounds = 3
	for _, n := range []int{2, 4, 8} {
		for _, mode := range []struct {
			name string
			mode core.Mode
		}{{"frozen", core.ModeFrozen}, {"adaptive", core.ModeAdaptive}} {
			t.Run(fmt.Sprintf("shards=%d/%s", n, mode.name), func(t *testing.T) {
				rng := rand.New(rand.NewSource(int64(20140622 + n + len(mode.name))))
				for tc := 0; tc < tablesPerCase; tc++ {
					opts := tOptions()
					opts.Mode = mode.mode
					opts.Shards = n
					tb := tTable(rng)
					eng := core.New(storage.BuildColumnMajorSeg(tb, tSegCap), opts)
					r := New(tb, opts)
					rows := tb.Rows
					for i := 0; i < queriesPerTable; i++ {
						checkEquivalence(t, eng, r, tQuery(rng, rows))
					}
					for round := 0; round < burstRounds; round++ {
						burst := tTuples(rng, rows, 1+rng.Intn(2*tSegCap))
						if err := eng.Insert(burst); err != nil {
							t.Fatal(err)
						}
						if err := r.Insert(burst); err != nil {
							t.Fatal(err)
						}
						rows += len(burst)
						for i := 0; i < queriesPerTable/2; i++ {
							checkEquivalence(t, eng, r, tQuery(rng, rows))
						}
					}
					eng.Close()
					r.Close()
				}
			})
		}
	}
}

// TestShardPlacement pins the round-robin deal: global chunk k lands on
// shard k%N, locals concatenate in order, and SegmentVersions interleaves
// back into the global space.
func TestShardPlacement(t *testing.T) {
	const n = 4
	opts := tOptions()
	opts.Shards = n
	rows := 6*tSegCap + 17 // 7 chunks, last one partial
	tb := data.GenerateTimeSeries(data.SyntheticSchema("R", tWidth), rows, 11)
	r := New(tb, opts)
	defer r.Close()
	if r.Shards() != n {
		t.Fatalf("Shards() = %d, want %d", r.Shards(), n)
	}
	wantLocal := []int{2, 2, 2, 1} // chunks 0..6 deal as 0,1,2,3,0,1,2
	for s := 0; s < n; s++ {
		e := r.EngineAt(s)
		if e == nil {
			t.Fatalf("shard %d has no local engine", s)
		}
		if got := len(e.SegmentVersions()); got != wantLocal[s] {
			t.Fatalf("shard %d has %d segments, want %d", s, got, wantLocal[s])
		}
		// Chunk s (global rows [s*segCap, (s+1)*segCap)) is shard s's local
		// segment 0: attribute 0 is the global row index, so the shard's
		// min must be exactly s*segCap.
		res, _, err := e.Execute(query.Aggregation("R", expr.AggMin, []data.AttrID{0}, nil))
		if err != nil {
			t.Fatal(err)
		}
		if want := data.Value(s * tSegCap); res.Data[0] != want {
			t.Fatalf("shard %d min(a0) = %d, want %d", s, res.Data[0], want)
		}
	}
	// The interleaved global version vector covers all 7 chunks.
	if got := len(r.SegmentVersions()); got != 7 {
		t.Fatalf("global SegmentVersions has %d entries, want 7", got)
	}
}

// TestShardDeltaRepairEquivalence re-feeds repair payloads round over
// round, as the serving layer does: QueryDelta against the prior payload's
// version vector, merge with exec.Repaired, compare bit-identically to the
// single-engine answer, carry the merged payload into the next round.
func TestShardDeltaRepairEquivalence(t *testing.T) {
	const queries = 8
	const rounds = 4
	for _, n := range []int{2, 4} {
		t.Run(fmt.Sprintf("shards=%d", n), func(t *testing.T) {
			rng := rand.New(rand.NewSource(int64(777 + n)))
			opts := tOptions()
			opts.Shards = n
			tb := tTable(rng)
			eng := core.New(storage.BuildColumnMajorSeg(tb, tSegCap), opts)
			defer eng.Close()
			r := New(tb, opts)
			defer r.Close()
			rows := tb.Rows

			type seeded struct {
				q     *query.Query
				prior *exec.PartialResult
			}
			var qs []seeded
			for len(qs) < queries {
				q := tQuery(rng, rows)
				// The first slots insist on GROUP BY so grouped merge is
				// always exercised.
				if len(qs) < 3 && len(q.GroupBy) == 0 {
					continue
				}
				if !exec.Repairable(q) {
					continue
				}
				ds, ok, err := r.QueryDelta(q, nil)
				if err != nil {
					t.Fatalf("seed %s: %v", q, err)
				}
				if !ok {
					t.Fatalf("seed %s: frozen router declined", q)
				}
				qs = append(qs, seeded{q, ds.Fresh})
			}

			for round := 0; round < rounds; round++ {
				burst := tTuples(rng, rows, 1+rng.Intn(tSegCap))
				if err := eng.Insert(burst); err != nil {
					t.Fatal(err)
				}
				if err := r.Insert(burst); err != nil {
					t.Fatal(err)
				}
				rows += len(burst)
				for i := range qs {
					q, prior := qs[i].q, qs[i].prior
					have := prior.Versions()
					ds, ok, err := r.QueryDelta(q, have)
					if err != nil {
						t.Fatalf("round %d delta %s: %v", round, q, err)
					}
					if !ok {
						t.Fatalf("round %d delta %s: declined", round, q)
					}
					for _, gi := range ds.Reused {
						if _, inPrior := have[gi]; !inPrior {
							t.Fatalf("%s: reused global segment %d absent from payload", q, gi)
						}
					}
					merged := exec.Repaired(prior, ds.Fresh, ds.Reused)
					want, _, err := eng.Execute(q)
					if err != nil {
						t.Fatal(err)
					}
					if got := merged.Result(); !got.Equal(want) {
						t.Fatalf("repair diverged on %s (round %d):\n got %v\nwant %v",
							q, round, got.Data, want.Data)
					}
					qs[i].prior = merged
				}
			}
		})
	}
}

// TestShardTailAppendRepairsOneShard is the headline invalidation-
// granularity property end to end through the serving layer: on an N-shard
// router, a tail append moves exactly one shard's fingerprint component,
// so the repair admission rescans exactly one (new or tail) segment —
// ServerStats.RepairedSegments advances by 1 per append.
func TestShardTailAppendRepairsOneShard(t *testing.T) {
	const n = 4
	opts := tOptions()
	opts.Shards = n
	tb := data.GenerateTimeSeries(data.SyntheticSchema("R", tWidth), 8*tSegCap, 5)
	r := New(tb, opts)
	defer r.Close()
	srv := server.New(Backend{R: r}, server.Config{Workers: 2})
	defer srv.Close()
	ctx := context.Background()
	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 3}, nil)

	// Cold query seeds the partials payload (a full partial scan — counts
	// as neither hit nor repair).
	if _, _, err := srv.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	rows := tb.Rows
	const appends = 6
	for i := 0; i < appends; i++ {
		if err := r.Insert(tTuples(rand.New(rand.NewSource(int64(i))), rows, 1)); err != nil {
			t.Fatal(err)
		}
		rows++
		_, info, err := srv.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if info.CacheHit {
			t.Fatalf("append %d: stale cache hit after a tail append", i)
		}
		if info.RepairedSegments != 1 {
			t.Fatalf("append %d: RepairedSegments = %d, want 1 (exactly one shard rescans)",
				i, info.RepairedSegments)
		}
	}
	st := srv.Stats()
	if st.Repaired != appends {
		t.Fatalf("Repaired = %d, want %d", st.Repaired, appends)
	}
	if st.RepairedSegments != appends {
		t.Fatalf("RepairedSegments = %d, want %d (1 segment per tail append)", st.RepairedSegments, appends)
	}
}

// TestShardConcurrentStress races cross-shard queries, appends and cache
// evictions (tiny serving caches) under -race; at quiescence the serving
// stats invariant must hold and a final scatter-gather must equal a fresh
// reference scan.
func TestShardConcurrentStress(t *testing.T) {
	opts := tOptions()
	opts.Shards = 4
	tb := data.GenerateTimeSeries(data.SyntheticSchema("R", tWidth), 4*tSegCap, 3)
	r := New(tb, opts)
	defer r.Close()
	srv := server.New(Backend{R: r}, server.Config{
		Workers: 4, CacheShards: 1, CacheEntries: 4, PartialCacheBytes: 1 << 12, MemoEntries: 4,
	})
	defer srv.Close()
	ctx := context.Background()

	queries := []*query.Query{
		query.Aggregation("R", expr.AggSum, []data.AttrID{1}, nil),
		query.Aggregation("R", expr.AggMax, []data.AttrID{2}, query.PredGt(0, 100)),
		query.GroupedAggregation("R", expr.AggCount, []data.AttrID{3}, []data.AttrID{4}, nil),
		query.Projection("R", []data.AttrID{0, 5}, query.PredLt(0, 64)),
		query.AggExpression("R", []data.AttrID{1, 2}, nil),
	}
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < 150; i++ {
				if _, _, err := srv.Query(ctx, queries[rng.Intn(len(queries))]); err != nil {
					t.Errorf("query: %v", err)
					return
				}
			}
		}(int64(g))
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		rng := rand.New(rand.NewSource(99))
		base := tb.Rows
		for i := 0; i < 60; i++ {
			burst := tTuples(rng, base, 1+rng.Intn(8))
			if err := r.Insert(burst); err != nil {
				t.Errorf("insert: %v", err)
				return
			}
			base += len(burst)
		}
	}()
	wg.Wait()

	st := srv.Stats()
	if st.Submitted != st.CacheHits+st.CacheMisses+st.Canceled+st.Errors {
		t.Fatalf("stats invariant broken: %+v", st)
	}
	// Quiescent cross-check: the router's answer equals a direct merge-law
	// bypass — a fresh single engine over the same logical rows is not
	// reconstructible here, but re-running the same query twice must be
	// stable and the second must hit.
	res1, _, err := srv.Query(ctx, queries[0])
	if err != nil {
		t.Fatal(err)
	}
	res2, info2, err := srv.Query(ctx, queries[0])
	if err != nil {
		t.Fatal(err)
	}
	if !info2.CacheHit {
		t.Fatal("quiescent repeat did not hit")
	}
	if !res1.Equal(res2) {
		t.Fatal("quiescent repeat diverged")
	}
}

// BenchmarkShardScatterGather times one scatter-gather aggregate on a
// 4-shard router (merge-law path, all shards survive pruning). Rides the
// CI bench.json trajectory.
func BenchmarkShardScatterGather(b *testing.B) {
	opts := tOptions()
	opts.Shards = 4
	tb := data.GenerateTimeSeries(data.SyntheticSchema("R", tWidth), 32*tSegCap, 7)
	r := New(tb, opts)
	defer r.Close()
	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, nil)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := r.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkShardRepair times the serving layer's repair admission over a
// sharded backend: one tail append, one repaired query per iteration —
// the O(1 segment) path the fingerprint combination buys.
func BenchmarkShardRepair(b *testing.B) {
	opts := tOptions()
	opts.Shards = 4
	tb := data.GenerateTimeSeries(data.SyntheticSchema("R", tWidth), 32*tSegCap, 7)
	r := New(tb, opts)
	defer r.Close()
	srv := server.New(Backend{R: r}, server.Config{Workers: 2})
	defer srv.Close()
	ctx := context.Background()
	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, nil)
	if _, _, err := srv.Query(ctx, q); err != nil {
		b.Fatal(err)
	}
	rows := tb.Rows
	rng := rand.New(rand.NewSource(13))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := r.Insert(tTuples(rng, rows, 1)); err != nil {
			b.Fatal(err)
		}
		rows++
		if _, _, err := srv.Query(ctx, q); err != nil {
			b.Fatal(err)
		}
	}
}
