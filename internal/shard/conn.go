package shard

import (
	"h2o/internal/core"
	"h2o/internal/data"
	"h2o/internal/exec"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// Conn is the router's transport seam to one shard. The query-path methods
// — Exec, Fingerprint, ExecDelta, ScanPartials and Version — are the whole
// protocol the scatter-gather paths speak: they exchange logical queries,
// results, fingerprints and per-segment partials, never storage internals,
// so a future remote shard implements exactly this set over a wire. The
// remaining methods (Insert, SegmentVersions, TierStats, Stats,
// SetSegmentHeat, Close) are local-deployment extensions: placement,
// observability and lifecycle for shards this process owns.
type Conn interface {
	// Exec runs one query to completion on the shard (the shard's full
	// execution path: adaptation, reorganization and strategy choice all
	// happen here).
	Exec(q *query.Query) (*exec.Result, core.ExecInfo, error)
	// Fingerprint computes q's candidate-touch fingerprint against the
	// shard's current state — the shard's component of the router's
	// combined fingerprint. Cheap: zone maps and version counters only.
	Fingerprint(q *query.Query) (core.TouchFingerprint, error)
	// ExecDelta rescans only the shard's candidate segments whose versions
	// differ from have (shard-local indices). ok=false means the shard's
	// adaptive machinery wants the full Exec path this round.
	ExecDelta(q *query.Query, have map[int]uint64) (*core.DeltaScan, bool, error)
	// ScanPartials is the unconditional partial scan: every candidate
	// segment of the repairable query q, bypassing the adaptive gate that
	// can decline ExecDelta. The router's terminal fallback.
	ScanPartials(q *query.Query) (*core.DeltaScan, error)
	// Version returns the shard relation's mutation counter. Local conns
	// never fail; a remote conn may.
	Version() (uint64, error)

	// Local-deployment extensions, not part of the serving protocol.
	Insert(tuples [][]data.Value) error
	SegmentVersions() []uint64
	TierStats() core.TierStats
	Stats() core.Stats
	SetSegmentHeat(fn core.SegmentHeatFunc)
	Close()
}

// engineConn binds a Conn to an in-process core.Engine — the local
// transport. It adapts through the engine's public API only.
type engineConn struct {
	e *core.Engine
	// workers is the shard's intra-query fan-out for ScanPartials, split
	// from the router-wide Options.Parallelism.
	workers int
}

func (c *engineConn) Exec(q *query.Query) (*exec.Result, core.ExecInfo, error) {
	return c.e.Execute(q)
}

func (c *engineConn) Fingerprint(q *query.Query) (core.TouchFingerprint, error) {
	return c.e.QueryFingerprint(q), nil
}

func (c *engineConn) ExecDelta(q *query.Query, have map[int]uint64) (*core.DeltaScan, bool, error) {
	return c.e.QueryDelta(q, have)
}

// ScanPartials scans every candidate segment's partial under the engine's
// read lock, with the fingerprint computed under that same lock so the
// result is exactly consistent with it. Unlike QueryDelta it never defers
// to the adaptive machinery — the caller has already given the full path
// its chance.
func (c *engineConn) ScanPartials(q *query.Query) (*core.DeltaScan, error) {
	ds := &core.DeltaScan{}
	err := c.e.View(func(rel *storage.Relation) error {
		fresh, _, err := exec.ExecDelta(rel, q, nil, c.workers, &ds.Stats)
		if err != nil {
			return err
		}
		ds.Fresh = fresh
		ds.Fingerprint = core.TouchFingerprintOf(rel, q)
		ds.Layout = rel.Kind()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return ds, nil
}

func (c *engineConn) Version() (uint64, error) { return c.e.Version(), nil }

func (c *engineConn) Insert(tuples [][]data.Value) error { return c.e.Insert(tuples) }

func (c *engineConn) SegmentVersions() []uint64 { return c.e.SegmentVersions() }

func (c *engineConn) TierStats() core.TierStats { return c.e.TierStats() }

func (c *engineConn) Stats() core.Stats { return c.e.Stats() }

func (c *engineConn) SetSegmentHeat(fn core.SegmentHeatFunc) { c.e.SetSegmentHeat(fn) }

func (c *engineConn) Close() { c.e.Close() }
