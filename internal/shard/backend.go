package shard

import (
	"h2o/internal/core"
	"h2o/internal/exec"
	"h2o/internal/query"
	"h2o/internal/server"
)

// Backend adapts a Router to the serving layer's full capability set —
// server.Backend, server.DeltaBackend and server.VersionBackend — for
// deployments that put a Server directly over one sharded table. (The
// h2o.DB facade performs the same adaptation per table for a catalog.)
type Backend struct {
	R *Router
}

var (
	_ server.Backend        = Backend{}
	_ server.DeltaBackend   = Backend{}
	_ server.VersionBackend = Backend{}
)

func (b Backend) Exec(q *query.Query) (*exec.Result, core.ExecInfo, error) {
	return b.R.Execute(q)
}

func (b Backend) Fingerprint(q *query.Query) (core.TouchFingerprint, error) {
	return b.R.Fingerprint(q)
}

func (b Backend) ExecDelta(q *query.Query, have map[int]uint64) (*core.DeltaScan, bool, error) {
	return b.R.QueryDelta(q, have)
}

// Version ignores the table name — a Backend serves exactly one table.
func (b Backend) Version(string) (uint64, error) {
	return b.R.Version(), nil
}
