// Package shard serves one logical table from N in-process engines behind
// a scatter-gather router. Placement is round-robin at segment granularity:
// segment-sized chunks of the append stream deal onto shards in rotation,
// so global segment gi lives on shard gi % N at local index gi / N, and
// every shard-local segment boundary coincides with a global one — zone
// maps, pruning and per-segment partial aggregates are bit-identical to
// the single-engine layout of the same rows. Layout adaptation stays
// entirely per shard: each engine watches only the queries it executes and
// reorganizes its own segments.
//
// Aggregate and GROUP BY queries scatter to every shard whose zone maps
// survive pruning; each shard returns its per-segment partial aggregates
// (exec.SegPartial) and the router merges them under the partials merge
// law — the same combinators the serving layer's delta repair uses. The
// published fingerprint is the order-sensitive combination of the
// per-shard fingerprints (core.CombineFingerprints), so the serving
// layer's three-tier admission works unchanged on top: an exact hit needs
// every shard's component unmoved, and on repair admission only shards
// whose component moved rescan — a tail append repairs exactly one shard.
//
// The router reaches shards only through the Conn interface, which
// exchanges queries, results, fingerprints and partials — never storage
// internals — keeping the seam network-ready.
//
// Join queries are declined with exec.ErrUnsupported for now. The gather
// seam they will use is the same one aggregates use today: build the join's
// hash table once from the (greedily chosen, usually small) build side,
// broadcast it to every shard of the probe side, scatter the probe as a
// shard-local ExecJoin, and gather the per-shard partials under the
// existing merge law — probe segments are disjoint across shards, so the
// per-shard join partials merge exactly like single-relation ones. Only
// the broadcast is new; Conn would grow one call carrying the serialized
// build table.
package shard

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"

	"h2o/internal/core"
	"h2o/internal/data"
	"h2o/internal/exec"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// Router scatter-gathers one logical table over N shards. It presents the
// same surface as a core.Engine bound to the unsharded table (Execute,
// QueryFingerprint, QueryDelta, Insert, Version, ...), so the facade and
// the serving layer sit on either one interchangeably.
type Router struct {
	conns  []Conn
	segCap int
	width  int

	// mu guards the append cursor. Placement must be deterministic in
	// arrival order — chunk k of the logical append stream always lands on
	// shard k % N — so inserts serialize here (the per-shard engines
	// serialize appends anyway).
	mu sync.Mutex
	// cur is the shard owning the open (not yet segment-aligned) chunk;
	// fill is how many rows of that chunk have been appended.
	cur  int
	fill int
}

// New builds a router over opts.Shards in-process engines and deals t's
// rows onto them in segment-sized round-robin chunks. Each shard engine
// runs with opts, except Shards is reset to 1 and Parallelism (when set)
// divides across the shards. opts.Shards < 2 still builds a (one-shard)
// router so callers have a single code path; the facade keeps the plain
// engine for that case instead.
func New(t *data.Table, opts core.Options) *Router {
	n := opts.Shards
	if n < 1 {
		n = 1
	}
	segCap := opts.SegmentCapacity
	if segCap <= 0 {
		segCap = storage.DefaultSegmentCapacity
	}
	shardOpts := opts
	shardOpts.Shards = 1
	if opts.Parallelism > 1 {
		per := opts.Parallelism / n
		if per < 1 {
			per = 1
		}
		shardOpts.Parallelism = per
	}
	workers := shardOpts.Parallelism
	if workers < 1 {
		workers = 1
	}
	r := &Router{
		conns:  make([]Conn, n),
		segCap: segCap,
		width:  t.Schema.NumAttrs(),
	}
	for s, sub := range splitTable(t, n, segCap) {
		r.conns[s] = &engineConn{
			e:       core.New(storage.BuildColumnMajorSeg(sub, segCap), shardOpts),
			workers: workers,
		}
	}
	// Resume the append cursor at the chunk the initial deal left open:
	// chunk L = (Rows-1)/segCap went to shard L%n with Rows-L*segCap rows.
	if t.Rows > 0 {
		last := (t.Rows - 1) / segCap
		r.cur = last % n
		r.fill = t.Rows - last*segCap
	}
	return r
}

// splitTable deals t's rows into n sub-tables: chunk i (rows [i*segCap,
// (i+1)*segCap)) goes to shard i%n. Concatenated per shard, chunk
// boundaries become exactly the shard relation's segment boundaries.
func splitTable(t *data.Table, n, segCap int) []*data.Table {
	subs := make([]*data.Table, n)
	for s := range subs {
		cols := make([][]data.Value, len(t.Cols))
		for a := range cols {
			cols[a] = []data.Value{}
		}
		subs[s] = &data.Table{Schema: t.Schema, Cols: cols}
	}
	for lo := 0; lo < t.Rows; lo += segCap {
		hi := lo + segCap
		if hi > t.Rows {
			hi = t.Rows
		}
		sub := subs[(lo/segCap)%n]
		for a, col := range t.Cols {
			sub.Cols[a] = append(sub.Cols[a], col[lo:hi]...)
		}
		sub.Rows += hi - lo
	}
	return subs
}

// Shards returns the shard count.
func (r *Router) Shards() int { return len(r.conns) }

// EngineAt returns shard s's local engine, or nil when that shard is not
// served in-process. Tests and tools use it; the query path never does.
func (r *Router) EngineAt(s int) *core.Engine {
	if ec, ok := r.conns[s].(*engineConn); ok {
		return ec.e
	}
	return nil
}

// scatter runs fn once per shard concurrently and returns the first error
// in shard order.
func (r *Router) scatter(fn func(s int, c Conn) error) error {
	errs := make([]error, len(r.conns))
	var wg sync.WaitGroup
	for s, c := range r.conns {
		wg.Add(1)
		go func(s int, c Conn) {
			defer wg.Done()
			errs[s] = fn(s, c)
		}(s, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// Execute scatters q to every shard that survives pruning and gathers one
// result. Repairable shapes (aggregates, GROUP BY — with or without LIMIT)
// merge per-segment partial aggregates; everything else concatenates row
// results in shard order.
func (r *Router) Execute(q *query.Query) (*exec.Result, core.ExecInfo, error) {
	if len(q.Joins) > 0 {
		// Joins need a relation to build a hash table from and one to
		// probe; a sharded table has neither in one place. The gather seam
		// for joins is sketched in the package doc — until it exists,
		// decline cleanly so callers can route to unsharded engines.
		return nil, core.ExecInfo{}, fmt.Errorf("shard: join queries are not supported on sharded tables: %w", exec.ErrUnsupported)
	}
	start := time.Now()
	qx := q
	if q.Limit != 0 {
		// Partials carry complete per-segment state; the limit applies
		// only to the merged output, so strip it from the scattered query
		// (mirrors the serving layer's normalization).
		cp := *q
		cp.Limit = 0
		qx = &cp
	}
	var (
		res  *exec.Result
		info core.ExecInfo
		err  error
	)
	if exec.Repairable(qx) {
		res, info, err = r.execPartials(q, qx)
	} else {
		res, info, err = r.execRows(q)
	}
	if err != nil {
		return nil, core.ExecInfo{}, err
	}
	info.Duration = time.Since(start)
	return res, info, nil
}

// execPartials is the scatter-gather aggregate path: shard 0 always scans
// (it anchors the merged result's shape), other shards scan unless their
// zone maps rule every segment out, and the per-shard partials merge under
// the partials merge law.
func (r *Router) execPartials(q, qx *query.Query) (*exec.Result, core.ExecInfo, error) {
	scans := make([]*core.DeltaScan, len(r.conns))
	fps := make([]core.TouchFingerprint, len(r.conns))
	err := r.scatter(func(s int, c Conn) error {
		if s > 0 {
			fp, err := c.Fingerprint(qx)
			if err != nil {
				return err
			}
			if fp.Segments == 0 {
				// Pruned out entirely: skip the scan, but the shard's
				// fingerprint still mixes into the combined key — growth
				// into the candidate set must move the published
				// fingerprint.
				fps[s] = fp
				return nil
			}
		}
		ds, err := scanShardPartials(c, qx)
		if err != nil {
			return err
		}
		scans[s], fps[s] = ds, ds.Fingerprint
		return nil
	})
	if err != nil {
		return nil, core.ExecInfo{}, err
	}
	fresh, _, info := r.merge(scans, fps)
	res := fresh.Result()
	trimLimit(q, res)
	info.Strategy = exec.StrategyDelta
	return res, info, nil
}

// scanShardPartials obtains one shard's complete partial scan. The shard's
// adaptive machinery may decline the shared-lock delta path when an
// adaptation phase is due or a pending layout proposal covers the query;
// running the full Exec path once lets that adaptation (and any lazy
// reorganization) happen, then the partial scan is retried. The terminal
// fallback bypasses the adaptive gate — never the merge law.
func scanShardPartials(c Conn, q *query.Query) (*core.DeltaScan, error) {
	for attempt := 0; attempt < 2; attempt++ {
		ds, ok, err := c.ExecDelta(q, nil)
		if err != nil {
			return nil, err
		}
		if ok {
			return ds, nil
		}
		if _, _, err := c.Exec(q); err != nil {
			return nil, err
		}
	}
	return c.ScanPartials(q)
}

// execRows is the scatter-gather path for non-mergeable shapes
// (projections, expression outputs): each surviving shard executes the
// query in full and the row blocks concatenate in shard order. Shard 0
// always executes so shape errors surface deterministically and the
// output column labels have an anchor.
func (r *Router) execRows(q *query.Query) (*exec.Result, core.ExecInfo, error) {
	results := make([]*exec.Result, len(r.conns))
	infos := make([]core.ExecInfo, len(r.conns))
	fps := make([]core.TouchFingerprint, len(r.conns))
	err := r.scatter(func(s int, c Conn) error {
		if s > 0 {
			fp, err := c.Fingerprint(q)
			if err != nil {
				return err
			}
			if fp.Segments == 0 {
				fps[s] = fp
				return nil
			}
		}
		res, info, err := c.Exec(q)
		if err != nil {
			return err
		}
		results[s], infos[s], fps[s] = res, info, info.Fingerprint
		return nil
	})
	if err != nil {
		return nil, core.ExecInfo{}, err
	}
	n := len(r.conns)
	out := &exec.Result{Cols: results[0].Cols}
	info := core.ExecInfo{
		Strategy: infos[0].Strategy,
		Layout:   infos[0].Layout,
	}
	for s, res := range results {
		if res == nil {
			continue
		}
		out.Data = append(out.Data, res.Data[:res.Rows*len(res.Cols)]...)
		out.Rows += res.Rows
		addCounters(&info, infos[s].SegmentsScanned, infos[s].SegmentsPruned,
			infos[s].SegmentsFaulted, infos[s].DecodeSkips, infos[s].EncodedBytes)
		for _, li := range infos[s].SegmentsTouched {
			info.SegmentsTouched = append(info.SegmentsTouched, li*n+s)
		}
	}
	sort.Ints(info.SegmentsTouched)
	info.Fingerprint = core.CombineFingerprints(fps)
	trimLimit(q, out)
	return out, info, nil
}

// merge renumbers the per-shard scans into the global segment space
// (global = local*N + shard) and folds them into one fresh PartialResult,
// one reused list and one ExecInfo with the combined fingerprint. Shape
// metadata comes from the first scanned shard (always shard 0 on the
// paths that call this).
func (r *Router) merge(scans []*core.DeltaScan, fps []core.TouchFingerprint) (*exec.PartialResult, []int, core.ExecInfo) {
	n := len(r.conns)
	var (
		fresh  *exec.PartialResult
		reused []int
		info   core.ExecInfo
	)
	for s, ds := range scans {
		if ds == nil {
			continue
		}
		if fresh == nil {
			fresh = &exec.PartialResult{
				Labels:  ds.Fresh.Labels,
				Ops:     ds.Fresh.Ops,
				GroupBy: ds.Fresh.GroupBy,
				ItemKey: ds.Fresh.ItemKey,
				Segs:    make(map[int]*exec.SegPartial),
			}
			info.Layout = ds.Layout
		}
		for li, sp := range ds.Fresh.Segs {
			fresh.Segs[li*n+s] = sp
		}
		for _, li := range ds.Reused {
			reused = append(reused, li*n+s)
		}
		addCounters(&info, ds.Stats.SegmentsScanned, ds.Stats.SegmentsPruned,
			ds.Stats.SegmentsFaulted, ds.Stats.DecodeSkips, ds.Stats.EncodedBytes)
		for _, li := range ds.Stats.Touched {
			info.SegmentsTouched = append(info.SegmentsTouched, li*n+s)
		}
	}
	sort.Ints(info.SegmentsTouched)
	sort.Ints(reused)
	info.SegmentsScanned = len(info.SegmentsTouched)
	info.Fingerprint = core.CombineFingerprints(fps)
	return fresh, reused, info
}

func addCounters(info *core.ExecInfo, scanned, pruned, faulted, decodeSkips int, encodedBytes int64) {
	info.SegmentsScanned += scanned
	info.SegmentsPruned += pruned
	info.SegmentsFaulted += faulted
	info.DecodeSkips += decodeSkips
	info.EncodedBytes += encodedBytes
}

// trimLimit applies q's LIMIT to the gathered result (the scattered
// queries ran unlimited, or per-shard limited on the row path).
func trimLimit(q *query.Query, res *exec.Result) {
	if q.Limit <= 0 || res.Rows <= q.Limit {
		return
	}
	res.Rows = q.Limit
	res.Data = res.Data[:q.Limit*len(res.Cols)]
}

// QueryFingerprint returns the combination of the per-shard candidate-touch
// fingerprints, in shard order — the key the serving layer caches under.
func (r *Router) QueryFingerprint(q *query.Query) core.TouchFingerprint {
	fp, _ := r.Fingerprint(q)
	return fp
}

// Fingerprint is QueryFingerprint with the error a remote shard conn could
// produce (local conns never fail).
func (r *Router) Fingerprint(q *query.Query) (core.TouchFingerprint, error) {
	fps := make([]core.TouchFingerprint, len(r.conns))
	for s, c := range r.conns {
		fp, err := c.Fingerprint(q)
		if err != nil {
			return core.TouchFingerprint{}, err
		}
		fps[s] = fp
	}
	return core.CombineFingerprints(fps), nil
}

// QueryDelta is the router's repair tier: have is keyed by global segment
// index; each shard rescans only its candidates whose versions moved. A
// shard whose zone maps rule the query out entirely is skipped — its
// payload entries drop, exactly as a single engine drops pruned segments.
// Any shard declining (its adaptive machinery wants the full path)
// declines the whole repair; the serving layer then falls back to full
// execution, which runs that shard's adaptation.
func (r *Router) QueryDelta(q *query.Query, have map[int]uint64) (*core.DeltaScan, bool, error) {
	if !exec.Repairable(q) {
		// Join queries always land here (never repairable) and decline to
		// the full path, where Execute rejects them with ErrUnsupported.
		return nil, false, nil
	}
	n := len(r.conns)
	haveS := make([]map[int]uint64, n)
	for gi, v := range have {
		s := gi % n
		if haveS[s] == nil {
			haveS[s] = make(map[int]uint64, len(have)/n+1)
		}
		haveS[s][gi/n] = v
	}
	scans := make([]*core.DeltaScan, n)
	fps := make([]core.TouchFingerprint, n)
	declined := make([]bool, n)
	err := r.scatter(func(s int, c Conn) error {
		if s > 0 {
			fp, err := c.Fingerprint(q)
			if err != nil {
				return err
			}
			if fp.Segments == 0 {
				fps[s] = fp
				return nil
			}
		}
		ds, ok, err := c.ExecDelta(q, haveS[s])
		if err != nil {
			return err
		}
		if !ok {
			declined[s] = true
			return nil
		}
		scans[s], fps[s] = ds, ds.Fingerprint
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	for _, d := range declined {
		if d {
			return nil, false, nil
		}
	}
	fresh, reused, info := r.merge(scans, fps)
	ds := &core.DeltaScan{
		Fresh:       fresh,
		Reused:      reused,
		Fingerprint: info.Fingerprint,
		Layout:      info.Layout,
	}
	ds.Stats.SegmentsScanned = info.SegmentsScanned
	ds.Stats.SegmentsPruned = info.SegmentsPruned
	ds.Stats.SegmentsFaulted = info.SegmentsFaulted
	ds.Stats.DecodeSkips = info.DecodeSkips
	ds.Stats.EncodedBytes = info.EncodedBytes
	ds.Stats.Touched = info.SegmentsTouched
	return ds, true, nil
}

// Insert appends tuples in arrival order, slicing the batch at chunk
// boundaries so placement stays round-robin: the open chunk fills to
// segment capacity on the current shard, then the cursor rotates. A tail
// append that stays within one chunk therefore bumps exactly one shard's
// fingerprint component.
func (r *Router) Insert(tuples [][]data.Value) error {
	for i, tup := range tuples {
		if len(tup) != r.width {
			return fmt.Errorf("shard: insert tuple %d has %d values, schema has %d attributes", i, len(tup), r.width)
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	for len(tuples) > 0 {
		room := r.segCap - r.fill
		if room <= 0 {
			r.cur = (r.cur + 1) % len(r.conns)
			r.fill = 0
			room = r.segCap
		}
		nrows := len(tuples)
		if nrows > room {
			nrows = room
		}
		if err := r.conns[r.cur].Insert(tuples[:nrows]); err != nil {
			return err
		}
		r.fill += nrows
		tuples = tuples[nrows:]
	}
	return nil
}

// Version returns the highest shard version. The version clock is
// process-global and monotone, so any mutation on any shard mints a value
// greater than everything issued before — the maximum is itself monotone
// over the sharded table. A shard whose conn fails contributes nothing
// (local conns never fail).
func (r *Router) Version() uint64 {
	var out uint64
	for _, c := range r.conns {
		v, err := c.Version()
		if err == nil && v > out {
			out = v
		}
	}
	return out
}

// SegmentVersions interleaves the shards' version vectors back into the
// global segment space: out[li*N+s] = shard s's local segment li. Slots
// past a shard's tail (the deal is ragged by up to one chunk) read 0.
func (r *Router) SegmentVersions() []uint64 {
	n := len(r.conns)
	per := make([][]uint64, n)
	length := 0
	for s, c := range r.conns {
		per[s] = c.SegmentVersions()
		if len(per[s]) > 0 {
			if l := (len(per[s])-1)*n + s + 1; l > length {
				length = l
			}
		}
	}
	out := make([]uint64, length)
	for s, vs := range per {
		for li, v := range vs {
			out[li*n+s] = v
		}
	}
	return out
}

// TierStats sums the per-shard storage-tier counters.
func (r *Router) TierStats() core.TierStats {
	var out core.TierStats
	for _, c := range r.conns {
		ts := c.TierStats()
		out.ResidentSegments += ts.ResidentSegments
		out.EncodedSegments += ts.EncodedSegments
		out.SpilledSegments += ts.SpilledSegments
		out.ResidentBytes += ts.ResidentBytes
		out.SpilledBytes += ts.SpilledBytes
		out.EncodedBytes += ts.EncodedBytes
		out.SpillFileBytes += ts.SpillFileBytes
		out.Faults += ts.Faults
		out.FaultedBytes += ts.FaultedBytes
		out.Evictions += ts.Evictions
		out.Demotions += ts.Demotions
		out.SpillWrites += ts.SpillWrites
		out.SpillErrors += ts.SpillErrors
	}
	return out
}

// Stats sums the per-shard engine-lifetime counters. Queries counts
// per-shard executions, so one scattered query counts once per shard it
// reached.
func (r *Router) Stats() core.Stats {
	var out core.Stats
	for _, c := range r.conns {
		st := c.Stats()
		out.Queries += st.Queries
		out.Adaptations += st.Adaptations
		out.Reorgs += st.Reorgs
		out.GroupsCreated += st.GroupsCreated
		out.GroupsDropped += st.GroupsDropped
		out.OpCacheHits += st.OpCacheHits
		out.OpCacheMisses += st.OpCacheMisses
		out.GenericFallback += st.GenericFallback
	}
	return out
}

// SetSegmentHeat distributes a global-segment-indexed heat feed to the
// shards: shard s sees {li: heat[li*N+s]}.
func (r *Router) SetSegmentHeat(fn core.SegmentHeatFunc) {
	n := len(r.conns)
	for s, c := range r.conns {
		var local core.SegmentHeatFunc
		if fn != nil {
			s := s
			local = func() map[int]int {
				global := fn()
				m := make(map[int]int, len(global)/n+1)
				for gi, heat := range global {
					if gi%n == s {
						m[gi/n] = heat
					}
				}
				return m
			}
		}
		c.SetSegmentHeat(local)
	}
}

// LayoutSignature joins the shards' layout signatures, "s<i>:"-prefixed
// and " | "-separated in shard order. Shards adapt independently, so the
// signatures legitimately diverge. Shards not served in-process report "?".
func (r *Router) LayoutSignature() string {
	var b strings.Builder
	for s := range r.conns {
		if s > 0 {
			b.WriteString(" | ")
		}
		fmt.Fprintf(&b, "s%d:", s)
		e := r.EngineAt(s)
		if e == nil {
			b.WriteString("?")
			continue
		}
		_ = e.View(func(rel *storage.Relation) error {
			b.WriteString(rel.LayoutSignature())
			return nil
		})
	}
	return b.String()
}

// Close closes every shard.
func (r *Router) Close() {
	for _, c := range r.conns {
		c.Close()
	}
}
