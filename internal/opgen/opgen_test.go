package opgen

import (
	"testing"
	"time"

	"h2o/internal/data"
	"h2o/internal/exec"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

func fixture(t *testing.T) (*data.Table, *storage.Relation) {
	t.Helper()
	tb := data.Generate(data.SyntheticSchema("R", 8), 1000, 99)
	return tb, storage.BuildColumnMajor(tb)
}

func TestOperatorCacheHitsOnSameShape(t *testing.T) {
	_, rel := fixture(t)
	g := New(DefaultConfig())
	q1 := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, query.PredLt(0, 100))
	q2 := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, query.PredLt(0, -999)) // different constant

	op1, cached1, err := g.Operator(exec.StrategyColumn, rel, q1)
	if err != nil || cached1 {
		t.Fatalf("first request: cached=%v err=%v", cached1, err)
	}
	op2, cached2, err := g.Operator(exec.StrategyColumn, rel, q2)
	if err != nil || !cached2 {
		t.Fatalf("same shape, different constant must hit the cache (cached=%v err=%v)", cached2, err)
	}
	if op1 != op2 {
		t.Fatal("cache returned a different operator")
	}
	hits, misses := g.Stats()
	if hits != 1 || misses != 1 {
		t.Fatalf("stats = %d hits, %d misses", hits, misses)
	}
	if g.CacheSize() != 1 {
		t.Fatalf("cache size = %d", g.CacheSize())
	}
}

func TestOperatorCacheMissesOnDifferentShape(t *testing.T) {
	_, rel := fixture(t)
	g := New(DefaultConfig())
	q1 := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, query.PredLt(0, 100))
	q2 := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 3}, query.PredLt(0, 100)) // different attrs
	q3 := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, query.PredGt(0, 100)) // different operator

	if _, cached, _ := g.Operator(exec.StrategyColumn, rel, q1); cached {
		t.Fatal("first request cached")
	}
	if _, cached, _ := g.Operator(exec.StrategyColumn, rel, q2); cached {
		t.Fatal("different attribute set must not hit")
	}
	if _, cached, _ := g.Operator(exec.StrategyColumn, rel, q3); cached {
		t.Fatal("different predicate operator must not hit")
	}
	if _, cached, _ := g.Operator(exec.StrategyHybrid, rel, q1); cached {
		t.Fatal("different strategy must not hit")
	}
}

func TestOperatorsExecuteCorrectly(t *testing.T) {
	tb, rel := fixture(t)
	row := storage.BuildRowMajor(tb, false)
	g := New(DefaultConfig())
	q := query.Aggregation("R", expr.AggMax, []data.AttrID{2, 5}, query.PredGt(1, 0))

	var results []*exec.Result
	for _, s := range []exec.Strategy{exec.StrategyColumn, exec.StrategyHybrid, exec.StrategyGeneric} {
		op, _, err := g.Operator(s, rel, q)
		if err != nil {
			t.Fatal(err)
		}
		res, _, err := op.Run(rel, q)
		if err != nil {
			t.Fatal(err)
		}
		results = append(results, res)
	}
	op, _, err := g.Operator(exec.StrategyRow, row, q)
	if err != nil {
		t.Fatal(err)
	}
	res, _, err := op.Run(row, q)
	if err != nil {
		t.Fatal(err)
	}
	results = append(results, res)
	for i := 1; i < len(results); i++ {
		if !results[0].Equal(results[i]) {
			t.Fatalf("operator %d disagrees", i)
		}
	}
}

func TestRowOperatorNeedsCoveringGroup(t *testing.T) {
	_, rel := fixture(t) // column-major: no covering group
	g := New(DefaultConfig())
	q := query.Projection("R", []data.AttrID{0, 1}, nil)
	op, _, err := g.Operator(exec.StrategyRow, rel, q)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := op.Run(rel, q); err == nil {
		t.Fatal("row operator must fail without a covering group")
	}
}

func TestCompileLatencySimulation(t *testing.T) {
	_, rel := fixture(t)
	cfg := DefaultConfig()
	cfg.SimulateCompileLatency = true
	g := New(cfg)

	small := query.Aggregation("R", expr.AggSum, []data.AttrID{0}, nil)
	big := query.Aggregation("R", expr.AggSum, []data.AttrID{0, 1, 2, 3, 4, 5, 6, 7}, nil)
	opSmall, _, _ := g.Operator(exec.StrategyColumn, rel, small)
	opBig, _, _ := g.Operator(exec.StrategyColumn, rel, big)
	if opSmall.CompileTime < 10*time.Millisecond || opSmall.CompileTime > 150*time.Millisecond {
		t.Fatalf("compile time %v outside the paper's 10-150ms band", opSmall.CompileTime)
	}
	if opBig.CompileTime <= opSmall.CompileTime {
		t.Fatal("compile time must grow with query complexity")
	}
	// The generic operator is never compiled.
	opGen, _, _ := g.Operator(exec.StrategyGeneric, rel, small)
	if opGen.CompileTime != 0 {
		t.Fatal("generic operator must have zero compile time")
	}
	// Disabled simulation reports zero.
	g2 := New(DefaultConfig())
	op2, _, _ := g2.Operator(exec.StrategyColumn, rel, big)
	if op2.CompileTime != 0 {
		t.Fatal("disabled simulation must report zero compile time")
	}
}

func TestSignatureLayoutSensitivity(t *testing.T) {
	tb, col := fixture(t)
	grp, err := storage.BuildPartitioned(tb, [][]data.AttrID{{0, 1, 2, 3}, {4, 5, 6, 7}})
	if err != nil {
		t.Fatal(err)
	}
	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, nil)
	s1, err := Signature(exec.StrategyHybrid, col, q)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := Signature(exec.StrategyHybrid, grp, q)
	if err != nil {
		t.Fatal(err)
	}
	if s1 == s2 {
		t.Fatal("operators are layout-specific: different layouts must produce different signatures")
	}
}

func TestGenericPredicateSignature(t *testing.T) {
	_, rel := fixture(t)
	or := &expr.Or{L: query.PredLt(0, 1).(*expr.Cmp), R: query.PredGt(1, 2).(*expr.Cmp)}
	q := query.Aggregation("R", expr.AggCount, []data.AttrID{2}, or)
	sig, err := Signature(exec.StrategyGeneric, rel, q)
	if err != nil {
		t.Fatal(err)
	}
	if sig == "" {
		t.Fatal("empty signature")
	}
}

func TestUnknownStrategyRejected(t *testing.T) {
	_, rel := fixture(t)
	g := New(DefaultConfig())
	q := query.Projection("R", []data.AttrID{0}, nil)
	if _, _, err := g.Operator(exec.StrategyReorg, rel, q); err == nil {
		t.Fatal("reorg operators are built by the engine, not the cache")
	}
}
