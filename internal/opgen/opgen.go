// Package opgen implements H2O's Operator Generator (paper §3.4): given a
// query and the data layouts chosen for it, it produces a specialized access
// operator for the (layout, plan-shape) combination and caches it for reuse
// by later queries with the same shape.
//
// The paper's prototype emits C++ source from macro templates, compiles it
// with an external compiler (10–150 ms) and dlopens the library. In Go,
// runtime machine-code generation is not available, so this package performs
// the closest equivalent — kernel specialization: the "templates" are
// hand-specialized monomorphic scan kernels in internal/exec (the compiled
// equivalents of the paper's Figures 5 and 6), and "generating an operator"
// selects and composes them into a fused closure for the plan. The external
// compiler's latency is modeled by a deterministic synthetic compile cost,
// scaled by query complexity like the paper's measurements, which the engine
// accounts on the first (cache-miss) use of each operator. The baseline the
// paper compares against — a generic operator that interprets expression
// trees tuple-at-a-time — is exec.StrategyGeneric's pipeline.
//
// A Generator is safe for concurrent use: the operator cache is guarded
// internally, and generated operators are stateless closures that rebind
// the relation on every call, so one operator may serve many goroutines.
package opgen

import (
	"fmt"
	"sync"
	"time"

	"h2o/internal/exec"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// Operator is a generated access operator: a closure specialized for one
// execution strategy and one query shape.
type Operator struct {
	// Key identifies the (strategy, plan shape, layout) combination.
	Key string
	// Strategy is the execution strategy the operator implements.
	Strategy exec.Strategy
	// CompileTime is the simulated cost of generating and compiling the
	// operator's source. It is paid once, on the cache miss that created the
	// operator.
	CompileTime time.Duration
	// Run executes the operator. The relation is rebound on every call so a
	// cached operator keeps working as the layout evolves underneath it.
	Run func(rel *storage.Relation, q *query.Query) (*exec.Result, *exec.StrategyStats, error)
}

// Config controls operator generation.
type Config struct {
	// SimulateCompileLatency enables the synthetic compile-cost model. When
	// false, CompileTime is reported as zero (kernels are pre-compiled Go).
	SimulateCompileLatency bool
	// CompileBase and CompilePerAttr parameterize the synthetic compile
	// cost: base + perAttr × (attributes accessed). The defaults land in the
	// paper's measured 10–150 ms band.
	CompileBase    time.Duration
	CompilePerAttr time.Duration
}

// DefaultConfig returns the paper-calibrated compile-latency parameters,
// with simulation disabled (enable it for the Fig. 14 experiment).
func DefaultConfig() Config {
	return Config{
		SimulateCompileLatency: false,
		CompileBase:            10 * time.Millisecond,
		CompilePerAttr:         time.Millisecond,
	}
}

// Generator creates and caches operators.
type Generator struct {
	cfg Config

	mu     sync.Mutex
	cache  map[string]*Operator
	hits   int
	misses int
}

// New returns an empty operator cache.
func New(cfg Config) *Generator {
	return &Generator{cfg: cfg, cache: make(map[string]*Operator)}
}

// Stats reports cache behavior.
func (g *Generator) Stats() (hits, misses int) {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.hits, g.misses
}

// CacheSize returns the number of cached operators.
func (g *Generator) CacheSize() int {
	g.mu.Lock()
	defer g.mu.Unlock()
	return len(g.cache)
}

// Operator returns the access operator for executing q on rel with the given
// strategy, reusing a cached operator when one exists for the same plan
// signature. cached reports whether the operator came from the cache; when
// false the caller should account op.CompileTime to the current query, as
// the paper does ("in all experiments, the compilation overhead is included
// in the query execution time").
func (g *Generator) Operator(s exec.Strategy, rel *storage.Relation, q *query.Query) (op *Operator, cached bool, err error) {
	key, err := Signature(s, rel, q)
	if err != nil {
		return nil, false, err
	}
	g.mu.Lock()
	if op, ok := g.cache[key]; ok {
		g.hits++
		g.mu.Unlock()
		return op, true, nil
	}
	g.misses++
	g.mu.Unlock()

	op, err = g.generate(key, s, q)
	if err != nil {
		return nil, false, err
	}
	g.mu.Lock()
	g.cache[key] = op
	g.mu.Unlock()
	return op, false, nil
}

// generate builds the operator closure for the strategy — the code-emission
// step of the paper's generator, here a composition of specialized kernels.
func (g *Generator) generate(key string, s exec.Strategy, q *query.Query) (*Operator, error) {
	op := &Operator{Key: key, Strategy: s, CompileTime: g.compileTime(q)}
	// Every pipeline-backed strategy composes the same way: bind the
	// strategy into an exec.Exec call. The registry decides which
	// strategies have templates, so the generator and the execution layer
	// agree on the strategy set by construction.
	if !exec.Plannable(s) {
		return nil, fmt.Errorf("opgen: no template for strategy %v", s)
	}
	switch s {
	case exec.StrategyRow:
		op.Run = func(rel *storage.Relation, q *query.Query) (*exec.Result, *exec.StrategyStats, error) {
			if !exec.RowCovered(rel, q) {
				return nil, nil, fmt.Errorf("opgen: no single group covers %v in every segment", q.AllAttrs())
			}
			var st exec.StrategyStats
			res, err := exec.Exec(rel, q, exec.ExecOpts{Strategy: s, Stats: &st})
			return res, &st, err
		}
	case exec.StrategyGeneric:
		// The generic operator is the *absence* of generation: it always
		// exists and compiles to nothing.
		op.CompileTime = 0
		fallthrough
	default:
		op.Run = func(rel *storage.Relation, q *query.Query) (*exec.Result, *exec.StrategyStats, error) {
			var st exec.StrategyStats
			res, err := exec.Exec(rel, q, exec.ExecOpts{Strategy: s, Stats: &st})
			return res, &st, err
		}
	}
	return op, nil
}

// compileTime models the external compiler: 10–150 ms depending on query
// complexity (paper §4, "the compilation overhead in our experiments varies
// from 10 to 150 ms and depends on the query complexity").
func (g *Generator) compileTime(q *query.Query) time.Duration {
	if !g.cfg.SimulateCompileLatency {
		return 0
	}
	n := len(q.AllAttrs())
	d := g.cfg.CompileBase + time.Duration(n)*g.cfg.CompilePerAttr
	if max := 150 * time.Millisecond; d > max {
		d = max
	}
	return d
}

// Signature computes the operator-cache key: the strategy, the query's
// access-pattern shape and the relation's layout signature (segment-aware:
// a partially reorganized relation keys differently from a uniform one, so
// compile-cost accounting follows real layout changes). Two queries
// differing only in predicate constants share an operator, exactly as the
// paper's generated code does (constants are runtime parameters of the
// generated function, see Fig. 5's val1/val2).
func Signature(s exec.Strategy, rel *storage.Relation, q *query.Query) (string, error) {
	out := exec.Classify(q)
	if _, _, err := rel.CoveringGroups(q.AllAttrs()); err != nil {
		return "", err
	}
	sig := fmt.Sprintf("%v|%v|%s|%s", s, out.Kind, query.InfoOf(q).Pattern(), rel.LayoutSignature())
	// Group keys distinguish grouped shapes that share an access pattern
	// (which attributes are keys vs. aggregate arguments changes the kernel).
	for _, a := range out.GroupBy {
		sig += fmt.Sprintf("|g%d", a)
	}
	// The predicate *shape* (operators, arity) is part of the signature;
	// constants are not.
	if preds, ok := exec.SplitConjunction(q.Where); ok {
		for _, p := range preds {
			sig += fmt.Sprintf("|p%d%v", p.Attr, p.Op)
		}
	} else if q.Where != nil {
		sig += "|pred-generic"
	}
	return sig, nil
}
