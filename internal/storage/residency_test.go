package storage

import (
	"errors"
	"testing"

	"h2o/internal/data"
)

// buildSegRel builds a column-major relation over synthetic data with the
// given segment capacity.
func buildSegRel(t *testing.T, rows, segCap int) (*Relation, *data.Table) {
	t.Helper()
	tb := data.Generate(data.SyntheticSchema("R", 4), rows, 7)
	return BuildColumnMajorSeg(tb, segCap), tb
}

// snapshotData deep-copies every group's data so a test can restore it from
// a fake loader.
func snapshotData(rel *Relation) map[*ColumnGroup][]data.Value {
	snap := make(map[*ColumnGroup][]data.Value)
	for _, seg := range rel.Segments {
		for _, g := range seg.Groups {
			cp := make([]data.Value, len(g.Data))
			copy(cp, g.Data)
			snap[g] = cp
		}
	}
	return snap
}

func TestUnloadAndFaultRoundTrip(t *testing.T) {
	rel, _ := buildSegRel(t, 1000, 100)
	snap := snapshotData(rel)
	loads := 0
	rel.SetLoader(func(s *Segment) error {
		loads++
		for _, g := range s.Groups {
			g.Data = append([]data.Value(nil), snap[g]...)
		}
		return nil
	})

	seg := rel.Segments[0]
	sum := func() data.Value {
		var v data.Value
		for r := 0; r < seg.Rows; r++ {
			v += seg.Groups[0].Data[r]
		}
		return v
	}
	want := sum()
	verBefore := seg.Version()
	relVerBefore := rel.Version()

	if !seg.Unload() {
		t.Fatal("Unload of a sealed resident segment failed")
	}
	if seg.Resident() {
		t.Fatal("segment still resident after Unload")
	}
	if seg.ResidentBytes() != 0 {
		t.Fatalf("spilled segment reports %d resident bytes", seg.ResidentBytes())
	}
	if seg.Bytes() == 0 {
		t.Fatal("logical Bytes must be residency-independent")
	}
	// Residency is not a mutation: versions must not move.
	if seg.Version() != verBefore || rel.Version() != relVerBefore {
		t.Fatal("Unload bumped a version")
	}
	// Zone maps stay resident: pruning works without data.
	if seg.Groups[0].Zones() == nil {
		t.Fatal("zone map dropped on Unload")
	}

	if faulted, err := seg.Acquire(); err != nil || !faulted {
		t.Fatalf("Acquire: faulted=%v err=%v", faulted, err)
	}
	if got := sum(); got != want {
		t.Fatalf("data changed across spill/fault: %d != %d", got, want)
	}
	if seg.Version() != verBefore || rel.Version() != relVerBefore {
		t.Fatal("Acquire bumped a version")
	}
	if seg.Faults() != 1 || loads != 1 {
		t.Fatalf("faults=%d loads=%d, want 1/1", seg.Faults(), loads)
	}
	// Second Acquire: already resident, no fault.
	if faulted, err := seg.Acquire(); err != nil || faulted {
		t.Fatalf("re-Acquire: faulted=%v err=%v", faulted, err)
	}
	seg.Release()
	seg.Release()
}

func TestUnloadRefusals(t *testing.T) {
	rel, _ := buildSegRel(t, 1000, 100)
	if rel.Tail().Unload() {
		t.Fatal("the mutable tail must never unload")
	}
	seg := rel.Segments[0]
	if _, err := seg.Acquire(); err != nil {
		t.Fatal(err)
	}
	if seg.Unload() {
		t.Fatal("a pinned segment must not unload")
	}
	seg.Release()
	if !seg.Unload() {
		t.Fatal("unpinned sealed segment should unload")
	}
	if seg.Unload() {
		t.Fatal("an already-spilled segment must not unload again")
	}
}

func TestAcquireWithoutLoaderFails(t *testing.T) {
	rel, _ := buildSegRel(t, 1000, 100)
	rel.SetLoader(func(s *Segment) error { return nil })
	seg := rel.Segments[0]
	if !seg.Unload() {
		t.Fatal("unload failed")
	}
	rel.SetLoader(nil)
	if _, err := seg.Acquire(); err == nil {
		t.Fatal("Acquire of a spilled segment without a loader must fail")
	}
}

func TestAcquireLoaderErrorLeavesSegmentSpilled(t *testing.T) {
	rel, _ := buildSegRel(t, 1000, 100)
	boom := errors.New("disk gone")
	rel.SetLoader(func(s *Segment) error { return boom })
	seg := rel.Segments[0]
	if !seg.Unload() {
		t.Fatal("unload failed")
	}
	if _, err := seg.Acquire(); !errors.Is(err, boom) {
		t.Fatalf("want loader error, got %v", err)
	}
	if seg.Resident() {
		t.Fatal("failed fault must leave the segment spilled")
	}
}

func TestCompactGivesSegmentsOwnBuffers(t *testing.T) {
	rel, tb := buildSegRel(t, 1000, 100)
	_ = tb
	before := make(map[*ColumnGroup]*data.Value)
	for _, seg := range rel.Segments {
		for _, g := range seg.Groups {
			before[g] = &g.Data[0]
		}
	}
	sum, err := Checksum(rel, []data.AttrID{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	rel.Compact()
	for _, seg := range rel.Segments {
		for _, g := range seg.Groups {
			if &g.Data[0] == before[g] {
				t.Fatal("Compact left a group on its (possibly shared) original backing array")
			}
			if len(g.Data) != g.Rows*g.Stride {
				t.Fatalf("compacted group has %d values, want %d", len(g.Data), g.Rows*g.Stride)
			}
		}
	}
	after, err := Checksum(rel, []data.AttrID{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if sum != after {
		t.Fatal("Compact changed the data")
	}
}

func TestResidentBytesAccounting(t *testing.T) {
	rel, _ := buildSegRel(t, 1000, 100)
	total := rel.ResidentBytes()
	if total != rel.Bytes() {
		t.Fatalf("fully resident: ResidentBytes %d != Bytes %d", total, rel.Bytes())
	}
	seg := rel.Segments[0]
	segBytes := seg.Bytes()
	if !seg.Unload() {
		t.Fatal("unload failed")
	}
	if got := rel.ResidentBytes(); got != total-segBytes {
		t.Fatalf("after spilling one segment: %d, want %d", got, total-segBytes)
	}
}
