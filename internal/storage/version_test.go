package storage

import (
	"testing"

	"h2o/internal/data"
)

// TestVersionAdvancesOnMutation checks that every mutation class — append,
// batch append, group creation, group drop — bumps the relation version, and
// that read-only operations leave it alone. Result caches key on this
// counter, so a missed bump would serve stale results.
func TestVersionAdvancesOnMutation(t *testing.T) {
	tb := data.Generate(data.SyntheticSchema("R", 4), 100, 1)
	rel := BuildColumnMajor(tb)
	v0 := rel.Version()

	if err := rel.Append([]data.Value{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if rel.Version() <= v0 {
		t.Fatalf("Append did not bump version: %d -> %d", v0, rel.Version())
	}
	v1 := rel.Version()

	if err := rel.AppendBatch([][]data.Value{{5, 6, 7, 8}, {9, 10, 11, 12}}); err != nil {
		t.Fatal(err)
	}
	if rel.Version() <= v1 {
		t.Fatalf("AppendBatch did not bump version: %d -> %d", v1, rel.Version())
	}
	v2 := rel.Version()

	// An empty batch is a no-op and must not invalidate caches.
	if err := rel.AppendBatch(nil); err != nil {
		t.Fatal(err)
	}
	if rel.Version() != v2 {
		t.Fatalf("empty AppendBatch bumped version: %d -> %d", v2, rel.Version())
	}

	g, err := Stitch(rel, []data.AttrID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.AddGroup(g); err != nil {
		t.Fatal(err)
	}
	if rel.Version() <= v2 {
		t.Fatalf("AddGroup did not bump version: %d -> %d", v2, rel.Version())
	}
	v3 := rel.Version()

	if !rel.DropGroup(g) {
		t.Fatal("DropGroup refused a droppable group")
	}
	if rel.Version() <= v3 {
		t.Fatalf("DropGroup did not bump version: %d -> %d", v3, rel.Version())
	}
	v4 := rel.Version()

	// Read-only operations do not advance the version.
	if _, err := rel.GroupFor(0); err != nil {
		t.Fatal(err)
	}
	if _, _, err := rel.CoveringGroups([]data.AttrID{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	_ = rel.Kind()
	_ = rel.LayoutSignature()
	if rel.Version() != v4 {
		t.Fatalf("read-only access bumped version: %d -> %d", v4, rel.Version())
	}
}

// TestVersionFailedMutationsDoNotBump checks that rejected mutations leave
// the version untouched.
func TestVersionFailedMutationsDoNotBump(t *testing.T) {
	tb := data.Generate(data.SyntheticSchema("R", 3), 10, 1)
	rel := BuildColumnMajor(tb)
	v0 := rel.Version()

	if err := rel.Append([]data.Value{1}); err == nil {
		t.Fatal("short tuple accepted")
	}
	if err := rel.AppendBatch([][]data.Value{{1, 2, 3}, {4}}); err == nil {
		t.Fatal("bad batch accepted")
	}
	// Dropping the sole cover of an attribute must be refused.
	g, err := rel.GroupFor(0)
	if err != nil {
		t.Fatal(err)
	}
	if rel.DropGroup(g) {
		t.Fatal("dropped the only cover of attribute 0")
	}
	if rel.Version() != v0 {
		t.Fatalf("failed mutations bumped version: %d -> %d", v0, rel.Version())
	}
}
