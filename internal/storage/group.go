// Package storage implements H2O's physical data layouts (paper §3.1):
// row-major (NSM), column-major (DSM) and groups of columns, all represented
// uniformly as vertical partitions ("column groups") over flat []int64
// buffers with explicit strides. A pure column is a group of width 1; a pure
// row layout is a single group covering every attribute. The package also
// provides the offline reorganization primitives (stitch / project) that the
// execution layer fuses into query processing for online adaptation.
//
// # Segments
//
// A Relation is horizontally partitioned into an ordered list of
// fixed-capacity Segments (SegCap rows, DefaultSegmentCapacity unless
// overridden). Invariants:
//
//   - Every segment carries its own column-group set covering the schema,
//     its own narrowest-group index, per-group zone maps and a version.
//     Layouts are segment-local: hot segments may be reorganized while
//     cold ones keep their layout, so a relation can legitimately hold
//     mixed layouts across segments.
//   - Only the last segment (the tail) is mutable. Appends grow the tail's
//     groups and extend their zone maps incrementally; at SegCap rows the
//     tail seals and a fresh tail opens with the same layout. Sealed
//     segments are never copied or rescanned by appends.
//   - Interior segments always hold exactly SegCap rows; only the tail may
//     be partial (or empty, right after a rollover of an exactly-full
//     batch).
//   - Reorganization (StitchSeg + Segment.AddGroup) reads and writes one
//     segment: O(segment), never O(relation). Relation-level AddGroup
//     slices a full-length group across segments without copying.
//   - Any mutation bumps both the mutated segment's version and the
//     relation version; result caches key on the latter.
package storage

import (
	"fmt"
	"sync/atomic"

	"h2o/internal/data"
)

// LayoutKind classifies a set of column groups for reporting purposes.
type LayoutKind int

const (
	// KindColumn is a pure column-major (DSM) layout: every group has width 1.
	KindColumn LayoutKind = iota
	// KindRow is a pure row-major (NSM) layout: one group covers all attributes.
	KindRow
	// KindGroup is any hybrid vertical partitioning in between.
	KindGroup
)

// String returns the conventional name of the layout kind.
func (k LayoutKind) String() string {
	switch k {
	case KindColumn:
		return "column-major"
	case KindRow:
		return "row-major"
	case KindGroup:
		return "column-group"
	default:
		return fmt.Sprintf("LayoutKind(%d)", int(k))
	}
}

// ColumnGroup is a vertical partition of a relation: a contiguous, row-major
// block holding a subset of the attributes for every tuple (paper Figure 4c).
// Width-1 groups are plain columns; a group covering the whole schema is a
// row-major relation.
//
// Data is laid out as Rows consecutive mini-tuples of Stride words each; the
// first Width words of a mini-tuple are the attribute values in Attrs order,
// the remaining Stride-Width words are padding (used to model the slotted
// page / header overhead of a traditional NSM row store, which the paper
// measures at 13%).
type ColumnGroup struct {
	Attrs  []data.AttrID // sorted base-schema attribute ids
	Width  int           // number of attributes = len(Attrs)
	Stride int           // words per tuple in Data; Stride >= Width
	Rows   int
	Data   []data.Value // len = Rows*Stride

	pos map[data.AttrID]int // attr id -> offset within a mini-tuple

	// zm summarizes the group for block- and segment-level predicate
	// skipping. It is built when the group is materialized into a segment
	// and extended incrementally on tail-segment appends; nil means "no
	// summary" (standalone kernel-benchmark groups), which scans treat as
	// "may match".
	zm *ZoneMap

	// enc caches the group's encoded form (see encode.go). Atomic because
	// spill writes (under the engine's shared lock) and encoded scans
	// build it lazily while racing with each other; any mutation drops it
	// before touching Data.
	enc atomic.Pointer[GroupEncoding]
}

// NewGroup allocates an empty (zeroed) column group for the given attributes
// and row count with no padding. Attrs is normalized (sorted, deduplicated).
func NewGroup(attrs []data.AttrID, rows int) *ColumnGroup {
	return NewGroupPadded(attrs, rows, 0)
}

// NewGroupPadded allocates a zeroed column group with padWords extra words of
// per-tuple padding, modeling NSM page overhead.
func NewGroupPadded(attrs []data.AttrID, rows int, padWords int) *ColumnGroup {
	if padWords < 0 {
		padWords = 0
	}
	norm := data.SortedUnique(attrs)
	if len(norm) == 0 {
		panic("storage: column group must contain at least one attribute")
	}
	g := &ColumnGroup{
		Attrs:  norm,
		Width:  len(norm),
		Stride: len(norm) + padWords,
		Rows:   rows,
		pos:    make(map[data.AttrID]int, len(norm)),
	}
	g.Data = make([]data.Value, rows*g.Stride)
	for i, a := range norm {
		g.pos[a] = i
	}
	return g
}

// BuildGroup materializes a column group for attrs from the generator table.
func BuildGroup(t *data.Table, attrs []data.AttrID) *ColumnGroup {
	return BuildGroupPadded(t, attrs, 0)
}

// BuildGroupPadded materializes a column group with per-tuple padding.
func BuildGroupPadded(t *data.Table, attrs []data.AttrID, padWords int) *ColumnGroup {
	g := NewGroupPadded(attrs, t.Rows, padWords)
	for i, a := range g.Attrs {
		col := t.Cols[a]
		for r := 0; r < g.Rows; r++ {
			g.Data[r*g.Stride+i] = col[r]
		}
	}
	return g
}

// Zones returns the group's zone map, or nil when none has been built.
func (g *ColumnGroup) Zones() *ZoneMap { return g.zm }

// BuildZones (re)builds the group's zone map in one pass. block <= 0
// selects DefaultZoneBlock.
func (g *ColumnGroup) BuildZones(block int) { g.zm = BuildZoneMap(g, block) }

// slice returns a view of rows [lo, hi) sharing the group's backing array
// and attribute index. The view's capacity is pinned at hi, so appending to
// a tail-segment view never scribbles over the next segment's rows. When
// the span covers the whole group the group itself is returned, preserving
// pointer identity for single-segment relations.
func (g *ColumnGroup) slice(lo, hi int) *ColumnGroup {
	if lo == 0 && hi == g.Rows {
		return g
	}
	return &ColumnGroup{
		Attrs:  g.Attrs,
		Width:  g.Width,
		Stride: g.Stride,
		Rows:   hi - lo,
		Data:   g.Data[lo*g.Stride : hi*g.Stride : hi*g.Stride],
		pos:    g.pos,
	}
}

// Offset returns the position of attribute a within a mini-tuple and whether
// the group stores that attribute.
func (g *ColumnGroup) Offset(a data.AttrID) (int, bool) {
	off, ok := g.pos[a]
	return off, ok
}

// Has reports whether the group stores attribute a.
func (g *ColumnGroup) Has(a data.AttrID) bool {
	_, ok := g.pos[a]
	return ok
}

// HasAll reports whether the group stores every attribute in attrs.
func (g *ColumnGroup) HasAll(attrs []data.AttrID) bool {
	for _, a := range attrs {
		if !g.Has(a) {
			return false
		}
	}
	return true
}

// Value returns the value of base attribute a in row r. It is a convenience
// accessor for tests and the generic operator; scan kernels index Data
// directly with the stride.
func (g *ColumnGroup) Value(r int, a data.AttrID) data.Value {
	off, ok := g.pos[a]
	if !ok {
		panic(fmt.Sprintf("storage: group %v does not store attribute %d", g.Attrs, a))
	}
	return g.Data[r*g.Stride+off]
}

// Set writes the value of base attribute a in row r.
func (g *ColumnGroup) Set(r int, a data.AttrID, v data.Value) {
	off, ok := g.pos[a]
	if !ok {
		panic(fmt.Sprintf("storage: group %v does not store attribute %d", g.Attrs, a))
	}
	g.enc.Store(nil) // any cached encoding is stale the moment data changes
	g.Data[r*g.Stride+off] = v
}

// Column returns the values of attribute a as a fresh slice. Width-1 groups
// return a direct view of Data (no copy) when unpadded.
func (g *ColumnGroup) Column(a data.AttrID) []data.Value {
	off, ok := g.pos[a]
	if !ok {
		panic(fmt.Sprintf("storage: group %v does not store attribute %d", g.Attrs, a))
	}
	if g.Stride == 1 {
		return g.Data
	}
	out := make([]data.Value, g.Rows)
	for r := 0; r < g.Rows; r++ {
		out[r] = g.Data[r*g.Stride+off]
	}
	return out
}

// Bytes returns the logical footprint of the group in bytes — the size its
// data occupies when resident. A spilled group (Data dropped by segment
// eviction) reports the same value, so cost pricing and transform-volume
// estimates are residency-independent.
func (g *ColumnGroup) Bytes() int64 {
	return int64(g.Rows) * int64(g.Stride) * 8
}

// Clone returns a deep copy of the group.
func (g *ColumnGroup) Clone() *ColumnGroup {
	c := NewGroupPadded(g.Attrs, g.Rows, g.Stride-g.Width)
	copy(c.Data, g.Data)
	return c
}

// String describes the group for logs and the shell.
func (g *ColumnGroup) String() string {
	return fmt.Sprintf("group%v rows=%d stride=%d", g.Attrs, g.Rows, g.Stride)
}

// RowOverheadWords returns the per-tuple padding used to emulate the slotted
// page and tuple header overhead of a traditional row store; the paper
// reports a 13% larger memory footprint for DBMS-R on the 250-attribute
// relation.
func RowOverheadWords(width int) int {
	pad := (width*13 + 99) / 100 // ceil(0.13 * width)
	if pad < 1 {
		pad = 1
	}
	return pad
}
