package storage

import (
	"fmt"

	"h2o/internal/data"
)

// Stitch materializes a new column group for attrs by reading the needed
// values from the source groups ("blocks from R1 and R2 are read and
// stitched together", paper §3.2). This is the *offline* reorganization path;
// the execution layer fuses the same copy loop with predicate evaluation for
// the online path (Fig. 13).
//
// sources must collectively cover attrs; the narrowest available source is
// used for each attribute.
func Stitch(rel *Relation, attrs []data.AttrID) (*ColumnGroup, error) {
	norm := data.SortedUnique(attrs)
	_, assign, err := rel.CoveringGroups(norm)
	if err != nil {
		return nil, err
	}
	dst := NewGroup(norm, rel.Rows)
	// Copy column-runs one source attribute at a time: each inner loop is a
	// strided copy, the memory access pattern the paper's stitch operator has.
	for di, a := range dst.Attrs {
		src := assign[a]
		so, _ := src.Offset(a)
		sStride, dStride := src.Stride, dst.Stride
		sData, dData := src.Data, dst.Data
		for r := 0; r < rel.Rows; r++ {
			dData[r*dStride+di] = sData[r*sStride+so]
		}
	}
	return dst, nil
}

// Project materializes a narrower group containing only attrs from a single
// source group that stores all of them ("the same strategy is also applied
// when the new data layout is a subset of a group of columns", §3.2).
func Project(src *ColumnGroup, attrs []data.AttrID) (*ColumnGroup, error) {
	norm := data.SortedUnique(attrs)
	if !src.HasAll(norm) {
		return nil, fmt.Errorf("storage: source group %v does not cover %v", src.Attrs, norm)
	}
	dst := NewGroup(norm, src.Rows)
	offs := make([]int, len(dst.Attrs))
	for i, a := range dst.Attrs {
		offs[i], _ = src.Offset(a)
	}
	for r := 0; r < src.Rows; r++ {
		sBase, dBase := r*src.Stride, r*dst.Stride
		for i, so := range offs {
			dst.Data[dBase+i] = src.Data[sBase+so]
		}
	}
	return dst, nil
}

// TransformBytes returns the number of bytes a reorganization into a group
// over attrs would move: bytes read from the covering source groups plus
// bytes written to the destination. The cost model charges this volume at
// copy bandwidth (Eq. 1's T term).
func TransformBytes(rel *Relation, attrs []data.AttrID) (int64, error) {
	norm := data.SortedUnique(attrs)
	srcs, _, err := rel.CoveringGroups(norm)
	if err != nil {
		return 0, err
	}
	var read int64
	for _, g := range srcs {
		// A strided read of k of the group's attributes still pulls whole
		// cache lines; charge the full group scan, as the paper's stitch does.
		read += g.Bytes()
	}
	written := int64(len(norm)) * int64(rel.Rows) * 8
	return read + written, nil
}

// Checksum returns an order-independent digest of the logical content of the
// relation restricted to attrs: tests use it to verify that reorganization
// never changes the data.
func Checksum(rel *Relation, attrs []data.AttrID) (uint64, error) {
	norm := data.SortedUnique(attrs)
	_, assign, err := rel.CoveringGroups(norm)
	if err != nil {
		return 0, err
	}
	var sum uint64
	for _, a := range norm {
		g := assign[a]
		off, _ := g.Offset(a)
		for r := 0; r < rel.Rows; r++ {
			v := uint64(g.Data[r*g.Stride+off])
			// Mix row, attribute and value so permutations are detected.
			h := v ^ (uint64(r) * 0x9e3779b97f4a7c15) ^ (uint64(a) * 0xc2b2ae3d27d4eb4f)
			h ^= h >> 33
			h *= 0xff51afd7ed558ccd
			sum += h
		}
	}
	return sum, nil
}

// GroupChecksum digests a single group's logical content.
func GroupChecksum(g *ColumnGroup) uint64 {
	var sum uint64
	for _, a := range g.Attrs {
		off, _ := g.Offset(a)
		for r := 0; r < g.Rows; r++ {
			v := uint64(g.Data[r*g.Stride+off])
			h := v ^ (uint64(r) * 0x9e3779b97f4a7c15) ^ (uint64(a) * 0xc2b2ae3d27d4eb4f)
			h ^= h >> 33
			h *= 0xff51afd7ed558ccd
			sum += h
		}
	}
	return sum
}
