package storage

import (
	"fmt"

	"h2o/internal/data"
)

// StitchSeg materializes a new column group for attrs within one segment by
// reading the needed values from the segment's own groups ("blocks from R1
// and R2 are read and stitched together", paper §3.2). This is the
// *offline* reorganization primitive at segment granularity — the unit the
// engine's incremental adaptation moves; the execution layer fuses the same
// copy loop with predicate evaluation for the online path (Fig. 13).
//
// The segment's groups must collectively cover attrs; the narrowest
// available source is used for each attribute.
func StitchSeg(seg *Segment, attrs []data.AttrID) (*ColumnGroup, error) {
	norm := data.SortedUnique(attrs)
	_, assign, err := seg.CoveringGroups(norm)
	if err != nil {
		return nil, err
	}
	if _, err := seg.Acquire(); err != nil {
		return nil, err
	}
	defer seg.Release()
	dst := NewGroup(norm, seg.Rows)
	// Copy column-runs one source attribute at a time: each inner loop is a
	// strided copy, the memory access pattern the paper's stitch operator has.
	for di, a := range dst.Attrs {
		src := assign[a]
		so, _ := src.Offset(a)
		sStride, dStride := src.Stride, dst.Stride
		sData, dData := src.Data, dst.Data
		for r := 0; r < seg.Rows; r++ {
			dData[r*dStride+di] = sData[r*sStride+so]
		}
	}
	dst.BuildZones(0)
	return dst, nil
}

// Stitch materializes a full-relation-length group for attrs, stitching
// segment by segment. Offline tools and tests use it to build a group that
// Relation.AddGroup then slices back across the segments; the engine's
// online path reorganizes segment-locally instead.
func Stitch(rel *Relation, attrs []data.AttrID) (*ColumnGroup, error) {
	norm := data.SortedUnique(attrs)
	dst := NewGroup(norm, rel.Rows)
	base := 0
	for _, seg := range rel.Segments {
		_, assign, err := seg.CoveringGroups(norm)
		if err != nil {
			return nil, err
		}
		if _, err := seg.Acquire(); err != nil {
			return nil, err
		}
		for di, a := range dst.Attrs {
			src := assign[a]
			so, _ := src.Offset(a)
			sStride, dStride := src.Stride, dst.Stride
			sData, dData := src.Data, dst.Data
			for r := 0; r < seg.Rows; r++ {
				dData[(base+r)*dStride+di] = sData[r*sStride+so]
			}
		}
		seg.Release()
		base += seg.Rows
	}
	dst.BuildZones(0)
	return dst, nil
}

// Project materializes a narrower group containing only attrs from a single
// source group that stores all of them ("the same strategy is also applied
// when the new data layout is a subset of a group of columns", §3.2).
func Project(src *ColumnGroup, attrs []data.AttrID) (*ColumnGroup, error) {
	norm := data.SortedUnique(attrs)
	if !src.HasAll(norm) {
		return nil, fmt.Errorf("storage: source group %v does not cover %v", src.Attrs, norm)
	}
	dst := NewGroup(norm, src.Rows)
	offs := make([]int, len(dst.Attrs))
	for i, a := range dst.Attrs {
		offs[i], _ = src.Offset(a)
	}
	for r := 0; r < src.Rows; r++ {
		sBase, dBase := r*src.Stride, r*dst.Stride
		for i, so := range offs {
			dst.Data[dBase+i] = src.Data[sBase+so]
		}
	}
	dst.BuildZones(0)
	return dst, nil
}

// SegTransformBytes returns the number of bytes a reorganization of one
// segment into a group over attrs would move: bytes read from the
// segment's covering source groups plus bytes written to the destination.
// The cost model charges this volume at copy bandwidth (Eq. 1's T term) —
// per segment, so the engine can decide "adapt the 3 hot segments now,
// leave the other 97".
func SegTransformBytes(seg *Segment, attrs []data.AttrID) (int64, error) {
	norm := data.SortedUnique(attrs)
	srcs, _, err := seg.CoveringGroups(norm)
	if err != nil {
		return 0, err
	}
	var read int64
	for _, g := range srcs {
		// A strided read of k of the group's attributes still pulls whole
		// cache lines; charge the full group scan, as the paper's stitch does.
		read += g.Bytes()
	}
	written := int64(len(norm)) * int64(seg.Rows) * 8
	return read + written, nil
}

// TransformBytes sums SegTransformBytes over every segment that does not
// already carry an exact group over attrs — the whole-relation upper bound
// the advisor prices proposals with.
func TransformBytes(rel *Relation, attrs []data.AttrID) (int64, error) {
	norm := data.SortedUnique(attrs)
	var total int64
	for _, seg := range rel.Segments {
		if _, ok := seg.ExactGroup(norm); ok {
			continue
		}
		n, err := SegTransformBytes(seg, norm)
		if err != nil {
			return 0, err
		}
		total += n
	}
	return total, nil
}

// Checksum returns an order-independent digest of the logical content of the
// relation restricted to attrs: tests use it to verify that reorganization
// never changes the data. Rows are indexed globally, so the digest is
// independent of segmentation.
func Checksum(rel *Relation, attrs []data.AttrID) (uint64, error) {
	norm := data.SortedUnique(attrs)
	var sum uint64
	base := 0
	for _, seg := range rel.Segments {
		_, assign, err := seg.CoveringGroups(norm)
		if err != nil {
			return 0, err
		}
		if _, err := seg.Acquire(); err != nil {
			return 0, err
		}
		for _, a := range norm {
			g := assign[a]
			off, _ := g.Offset(a)
			for r := 0; r < seg.Rows; r++ {
				v := uint64(g.Data[r*g.Stride+off])
				// Mix row, attribute and value so permutations are detected.
				h := v ^ (uint64(base+r) * 0x9e3779b97f4a7c15) ^ (uint64(a) * 0xc2b2ae3d27d4eb4f)
				h ^= h >> 33
				h *= 0xff51afd7ed558ccd
				sum += h
			}
		}
		seg.Release()
		base += seg.Rows
	}
	return sum, nil
}

// GroupChecksum digests a single group's logical content.
func GroupChecksum(g *ColumnGroup) uint64 {
	var sum uint64
	for _, a := range g.Attrs {
		off, _ := g.Offset(a)
		for r := 0; r < g.Rows; r++ {
			v := uint64(g.Data[r*g.Stride+off])
			h := v ^ (uint64(r) * 0x9e3779b97f4a7c15) ^ (uint64(a) * 0xc2b2ae3d27d4eb4f)
			h ^= h >> 33
			h *= 0xff51afd7ed558ccd
			sum += h
		}
	}
	return sum
}
