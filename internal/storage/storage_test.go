package storage

import (
	"reflect"
	"testing"
	"testing/quick"

	"h2o/internal/data"
)

func genTable(t *testing.T, attrs, rows int) *data.Table {
	t.Helper()
	return data.Generate(data.SyntheticSchema("R", attrs), rows, 4242)
}

func TestBuildGroupRoundTrip(t *testing.T) {
	tb := genTable(t, 6, 500)
	g := BuildGroup(tb, []data.AttrID{1, 4, 2})
	if !reflect.DeepEqual(g.Attrs, []data.AttrID{1, 2, 4}) {
		t.Fatalf("attrs not normalized: %v", g.Attrs)
	}
	for r := 0; r < tb.Rows; r++ {
		for _, a := range g.Attrs {
			if g.Value(r, a) != tb.Value(r, a) {
				t.Fatalf("mismatch at row %d attr %d", r, a)
			}
		}
	}
}

func TestGroupPadding(t *testing.T) {
	tb := genTable(t, 4, 100)
	g := BuildGroupPadded(tb, []data.AttrID{0, 1, 2, 3}, 2)
	if g.Stride != 6 {
		t.Fatalf("stride = %d, want 6", g.Stride)
	}
	if g.Bytes() != int64(100*6*8) {
		t.Fatalf("bytes = %d", g.Bytes())
	}
	for r := 0; r < 100; r++ {
		for a := 0; a < 4; a++ {
			if g.Value(r, a) != tb.Value(r, a) {
				t.Fatalf("padded group corrupted data at (%d,%d)", r, a)
			}
		}
	}
}

func TestGroupAccessors(t *testing.T) {
	tb := genTable(t, 5, 50)
	g := BuildGroup(tb, []data.AttrID{1, 3})
	if off, ok := g.Offset(3); !ok || off != 1 {
		t.Fatalf("Offset(3) = %d,%v", off, ok)
	}
	if _, ok := g.Offset(0); ok {
		t.Fatal("Offset reported attribute the group does not store")
	}
	if !g.Has(1) || g.Has(2) {
		t.Fatal("Has wrong")
	}
	if !g.HasAll([]data.AttrID{1, 3}) || g.HasAll([]data.AttrID{1, 2}) {
		t.Fatal("HasAll wrong")
	}
	col := g.Column(3)
	if !reflect.DeepEqual(col, tb.Cols[3][:50]) {
		t.Fatal("Column contents wrong")
	}
}

func TestColumnViewForWidthOne(t *testing.T) {
	tb := genTable(t, 3, 20)
	g := BuildGroup(tb, []data.AttrID{2})
	col := g.Column(2)
	// Width-1 unpadded groups return a direct view.
	col[0] = 12345
	if g.Value(0, 2) != 12345 {
		t.Fatal("width-1 Column should alias Data")
	}
}

func TestGroupSetAndPanics(t *testing.T) {
	g := NewGroup([]data.AttrID{0, 1}, 10)
	g.Set(3, 1, 77)
	if g.Value(3, 1) != 77 {
		t.Fatal("Set/Value round trip failed")
	}
	mustPanic(t, func() { g.Value(0, 9) })
	mustPanic(t, func() { g.Set(0, 9, 1) })
	mustPanic(t, func() { NewGroup(nil, 5) })
}

func TestCloneIsDeep(t *testing.T) {
	tb := genTable(t, 3, 30)
	g := BuildGroup(tb, []data.AttrID{0, 2})
	c := g.Clone()
	c.Set(0, 0, 999)
	if g.Value(0, 0) == 999 {
		t.Fatal("Clone shares data with original")
	}
	if GroupChecksum(g) == GroupChecksum(c) {
		t.Fatal("checksum failed to detect mutation")
	}
}

func TestRowOverheadWords(t *testing.T) {
	if RowOverheadWords(1) < 1 {
		t.Fatal("overhead must be at least one word")
	}
	// ~13% of 250 attributes is 33 words.
	if got := RowOverheadWords(250); got != 33 {
		t.Fatalf("RowOverheadWords(250) = %d, want 33", got)
	}
}

func TestLayoutKinds(t *testing.T) {
	tb := genTable(t, 4, 10)
	col := BuildColumnMajor(tb)
	if col.Kind() != KindColumn {
		t.Fatalf("kind = %v", col.Kind())
	}
	row := BuildRowMajor(tb, false)
	if row.Kind() != KindRow {
		t.Fatalf("kind = %v", row.Kind())
	}
	part, err := BuildPartitioned(tb, [][]data.AttrID{{0, 1}, {2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	if part.Kind() != KindGroup {
		t.Fatalf("kind = %v", part.Kind())
	}
	for _, k := range []LayoutKind{KindColumn, KindRow, KindGroup, LayoutKind(9)} {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
}

func TestNewRelationValidation(t *testing.T) {
	tb := genTable(t, 3, 10)
	g01 := BuildGroup(tb, []data.AttrID{0, 1})
	if _, err := NewRelation(tb.Schema, 10, []*ColumnGroup{g01}); err == nil {
		t.Fatal("expected coverage error")
	}
	short := NewGroup([]data.AttrID{2}, 5)
	if _, err := NewRelation(tb.Schema, 10, []*ColumnGroup{g01, short}); err == nil {
		t.Fatal("expected row-count error")
	}
	bad := NewGroup([]data.AttrID{7}, 10)
	if _, err := NewRelation(tb.Schema, 10, []*ColumnGroup{g01, bad}); err == nil {
		t.Fatal("expected out-of-schema error")
	}
}

func TestGroupForPrefersNarrowest(t *testing.T) {
	tb := genTable(t, 4, 10)
	wide := BuildGroup(tb, []data.AttrID{0, 1, 2, 3})
	narrow := BuildGroup(tb, []data.AttrID{1})
	rel, err := NewRelation(tb.Schema, 10, []*ColumnGroup{wide, narrow})
	if err != nil {
		t.Fatal(err)
	}
	g, err := rel.GroupFor(1)
	if err != nil || g != narrow {
		t.Fatal("GroupFor should prefer the narrowest group")
	}
	g, err = rel.GroupFor(0)
	if err != nil || g != wide {
		t.Fatal("GroupFor(0) should return the wide group")
	}
}

func TestExactGroup(t *testing.T) {
	tb := genTable(t, 4, 10)
	rel, err := BuildPartitioned(tb, [][]data.AttrID{{0, 1}, {2}, {3}})
	if err != nil {
		t.Fatal(err)
	}
	if g, ok := rel.ExactGroup([]data.AttrID{1, 0}); !ok || g.Width != 2 {
		t.Fatal("ExactGroup should normalize and find {0,1}")
	}
	if _, ok := rel.ExactGroup([]data.AttrID{0}); ok {
		t.Fatal("ExactGroup false positive")
	}
}

func TestCoveringGroups(t *testing.T) {
	tb := genTable(t, 6, 10)
	rel, err := BuildPartitioned(tb, [][]data.AttrID{{0, 1, 2}, {3, 4}, {5}})
	if err != nil {
		t.Fatal(err)
	}
	groups, assign, err := rel.CoveringGroups([]data.AttrID{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(groups) != 3 {
		t.Fatalf("expected 3 covering groups, got %d", len(groups))
	}
	for _, a := range []data.AttrID{1, 3, 5} {
		if g := assign[a]; g == nil || !g.Has(a) {
			t.Fatalf("attribute %d not assigned a covering group", a)
		}
	}
	// Greedy should prefer a group covering more missing attributes.
	groups, _, err = rel.CoveringGroups([]data.AttrID{0, 1, 2})
	if err != nil || len(groups) != 1 {
		t.Fatalf("expected single covering group, got %d (%v)", len(groups), err)
	}
}

func TestAddAndDropGroup(t *testing.T) {
	tb := genTable(t, 3, 10)
	rel := BuildColumnMajor(tb)
	extra := BuildGroup(tb, []data.AttrID{0, 1})
	if err := rel.AddGroup(extra); err != nil {
		t.Fatal(err)
	}
	if len(rel.Segments[0].Groups) != 4 {
		t.Fatal("AddGroup did not register the group")
	}
	if !rel.DropGroup(extra) {
		t.Fatal("DropGroup should remove a redundant group")
	}
	// Dropping a sole covering group must be refused.
	only, _ := rel.GroupFor(2)
	if rel.DropGroup(only) {
		t.Fatal("DropGroup removed the only group covering attribute 2")
	}
	if rel.DropGroup(extra) {
		t.Fatal("DropGroup of unregistered group should report false")
	}
	if err := rel.AddGroup(NewGroup([]data.AttrID{0}, 99)); err == nil {
		t.Fatal("AddGroup accepted mismatched row count")
	}
}

func TestStitchMatchesSource(t *testing.T) {
	tb := genTable(t, 8, 300)
	rel, err := BuildPartitioned(tb, [][]data.AttrID{{0, 1, 2}, {3, 4}, {5, 6, 7}})
	if err != nil {
		t.Fatal(err)
	}
	attrs := []data.AttrID{1, 4, 6}
	g, err := Stitch(rel, attrs)
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < tb.Rows; r++ {
		for _, a := range attrs {
			if g.Value(r, a) != tb.Value(r, a) {
				t.Fatalf("stitched value mismatch at (%d,%d)", r, a)
			}
		}
	}
}

func TestStitchErrorsOnMissingAttr(t *testing.T) {
	tb := genTable(t, 4, 10)
	rel, _ := BuildPartitioned(tb, [][]data.AttrID{{0, 1}, {2, 3}})
	seg := rel.Segments[0]
	seg.Groups = seg.Groups[:1] // break coverage deliberately
	if _, err := Stitch(rel, []data.AttrID{3}); err == nil {
		t.Fatal("expected error for uncovered attribute")
	}
}

func TestProject(t *testing.T) {
	tb := genTable(t, 6, 200)
	src := BuildGroup(tb, []data.AttrID{0, 1, 2, 3, 4, 5})
	sub, err := Project(src, []data.AttrID{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 200; r++ {
		if sub.Value(r, 1) != tb.Value(r, 1) || sub.Value(r, 3) != tb.Value(r, 3) {
			t.Fatalf("projection mismatch at row %d", r)
		}
	}
	if _, err := Project(sub, []data.AttrID{0}); err == nil {
		t.Fatal("expected error projecting attribute not in source")
	}
}

// TestReorganizationPreservesData is the key storage invariant: any sequence
// of stitch/project reorganizations leaves the logical relation unchanged.
func TestReorganizationPreservesData(t *testing.T) {
	tb := genTable(t, 10, 400)
	rel := BuildColumnMajor(tb)
	before, err := Checksum(rel, allAttrs(10))
	if err != nil {
		t.Fatal(err)
	}
	// Stitch a few overlapping groups and register them.
	for _, attrs := range [][]data.AttrID{{0, 1, 2}, {2, 3, 4, 5}, {7, 9}} {
		g, err := Stitch(rel, attrs)
		if err != nil {
			t.Fatal(err)
		}
		if err := rel.AddGroup(g); err != nil {
			t.Fatal(err)
		}
	}
	after, err := Checksum(rel, allAttrs(10))
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatal("reorganization changed the logical relation contents")
	}
}

// Property: stitching any random attribute subset from a randomly
// partitioned relation reproduces the generator table exactly.
func TestStitchProperty(t *testing.T) {
	tb := genTable(t, 12, 64)
	f := func(seed uint8, pick []bool) bool {
		// Partition attributes round-robin into 1 + seed%4 groups.
		k := 1 + int(seed)%4
		parts := make([][]data.AttrID, k)
		for a := 0; a < 12; a++ {
			parts[a%k] = append(parts[a%k], a)
		}
		rel, err := BuildPartitioned(tb, parts)
		if err != nil {
			return false
		}
		var attrs []data.AttrID
		for a := 0; a < 12 && a < len(pick); a++ {
			if pick[a] {
				attrs = append(attrs, a)
			}
		}
		if len(attrs) == 0 {
			attrs = []data.AttrID{0}
		}
		g, err := Stitch(rel, attrs)
		if err != nil {
			return false
		}
		for r := 0; r < tb.Rows; r++ {
			for _, a := range g.Attrs {
				if g.Value(r, a) != tb.Value(r, a) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestTransformBytes(t *testing.T) {
	tb := genTable(t, 4, 100)
	rel := BuildColumnMajor(tb)
	n, err := TransformBytes(rel, []data.AttrID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	// Read two 100-row columns (2*800 bytes) + write one 2-wide group (1600).
	if n != 3200 {
		t.Fatalf("TransformBytes = %d, want 3200", n)
	}
}

func TestLayoutSignatureStable(t *testing.T) {
	tb := genTable(t, 4, 10)
	r1, _ := BuildPartitioned(tb, [][]data.AttrID{{0, 1}, {2, 3}})
	r2, _ := BuildPartitioned(tb, [][]data.AttrID{{2, 3}, {0, 1}})
	if r1.LayoutSignature() != r2.LayoutSignature() {
		t.Fatal("signature should not depend on group registration order")
	}
}

func TestAppend(t *testing.T) {
	tb := genTable(t, 5, 100)
	rel, err := BuildPartitioned(tb, [][]data.AttrID{{0, 1}, {2, 3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	// Add an overlapping group so appends must keep three layouts in sync.
	extra, err := Stitch(rel, []data.AttrID{1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.AddGroup(extra); err != nil {
		t.Fatal(err)
	}

	tuple := []data.Value{10, 20, 30, 40, 50}
	if err := rel.Append(tuple); err != nil {
		t.Fatal(err)
	}
	if rel.Rows != 101 {
		t.Fatalf("rows = %d", rel.Rows)
	}
	for _, g := range rel.Tail().Groups {
		if g.Rows != 101 || len(g.Data) != 101*g.Stride {
			t.Fatalf("group %v out of sync: rows=%d len=%d", g.Attrs, g.Rows, len(g.Data))
		}
		for _, a := range g.Attrs {
			if g.Value(100, a) != tuple[a] {
				t.Fatalf("group %v attr %d = %d, want %d", g.Attrs, a, g.Value(100, a), tuple[a])
			}
		}
	}
	if err := rel.Append([]data.Value{1, 2}); err == nil {
		t.Fatal("short tuple accepted")
	}
}

func TestAppendBatch(t *testing.T) {
	tb := genTable(t, 3, 50)
	rel := BuildColumnMajor(tb)
	batch := [][]data.Value{{1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	if err := rel.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if rel.Rows != 53 {
		t.Fatalf("rows = %d", rel.Rows)
	}
	for i, tup := range batch {
		for a := 0; a < 3; a++ {
			g, _ := rel.GroupFor(a)
			if g.Value(50+i, a) != tup[a] {
				t.Fatalf("batch row %d attr %d wrong", i, a)
			}
		}
	}
	// A bad batch must leave the relation untouched.
	bad := [][]data.Value{{1, 2, 3}, {4, 5}}
	if err := rel.AppendBatch(bad); err == nil {
		t.Fatal("ragged batch accepted")
	}
	if rel.Rows != 53 {
		t.Fatal("failed batch mutated the relation")
	}
}

func allAttrs(n int) []data.AttrID {
	out := make([]data.AttrID, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
