package storage

import (
	"fmt"

	"h2o/internal/data"
)

// Append adds one tuple (a full-width value slice in schema attribute
// order) to the relation: every column group grows by one mini-tuple, so
// all layouts stay consistent views of the same logical relation.
//
// H2O is a read-optimized analytical store — the paper evaluates scans, not
// updates — so appends are the only write: densely packed, no free space,
// no in-place updates (§3.1: "attributes are densely-packed and no
// additional space is left for updates").
func (r *Relation) Append(tuple []data.Value) error {
	if len(tuple) != r.Schema.NumAttrs() {
		return fmt.Errorf("storage: tuple has %d values, schema %q has %d attributes",
			len(tuple), r.Schema.Name, r.Schema.NumAttrs())
	}
	for _, g := range r.Groups {
		base := len(g.Data)
		g.Data = append(g.Data, make([]data.Value, g.Stride)...)
		for i, a := range g.Attrs {
			g.Data[base+i] = tuple[a]
		}
		g.Rows++
	}
	r.Rows++
	r.bumpVersion()
	return nil
}

// AppendBatch adds many tuples; it validates all widths before mutating
// anything, so a bad batch leaves the relation untouched.
func (r *Relation) AppendBatch(tuples [][]data.Value) error {
	if len(tuples) == 0 {
		return nil // no mutation: keep the version (and caches keyed on it) intact
	}
	for i, tup := range tuples {
		if len(tup) != r.Schema.NumAttrs() {
			return fmt.Errorf("storage: tuple %d has %d values, schema %q has %d attributes",
				i, len(tup), r.Schema.Name, r.Schema.NumAttrs())
		}
	}
	for _, g := range r.Groups {
		need := len(g.Data) + len(tuples)*g.Stride
		if cap(g.Data) < need {
			grown := make([]data.Value, len(g.Data), need)
			copy(grown, g.Data)
			g.Data = grown
		}
		for _, tup := range tuples {
			base := len(g.Data)
			g.Data = g.Data[:base+g.Stride]
			for i, a := range g.Attrs {
				g.Data[base+i] = tup[a]
			}
		}
		g.Rows += len(tuples)
	}
	r.Rows += len(tuples)
	r.bumpVersion()
	return nil
}
