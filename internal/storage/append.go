package storage

import (
	"fmt"

	"h2o/internal/data"
)

// Append adds one tuple (a full-width value slice in schema attribute
// order) to the relation. Only the mutable tail segment is touched: its
// column groups each grow by one mini-tuple and their zone maps extend
// incrementally. When the tail reaches SegCap rows it seals and a fresh
// tail opens with the same layout — sealed segments are never copied or
// rescanned, so append cost is O(tail segment), not O(relation).
//
// H2O is a read-optimized analytical store — the paper evaluates scans, not
// updates — so appends are the only write: densely packed, no free space,
// no in-place updates (§3.1: "attributes are densely-packed and no
// additional space is left for updates").
func (r *Relation) Append(tuple []data.Value) error {
	if len(tuple) != r.Schema.NumAttrs() {
		return fmt.Errorf("storage: tuple has %d values, schema %q has %d attributes",
			len(tuple), r.Schema.Name, r.Schema.NumAttrs())
	}
	scratch := make([]data.Value, r.Schema.NumAttrs())
	tail := r.tailWithRoom()
	tail.appendTuple(tuple, scratch)
	tail.bumpVersion()
	r.Rows++
	r.bumpVersion()
	return nil
}

// AppendBatch adds many tuples; it validates all widths before mutating
// anything, so a bad batch leaves the relation untouched. Batches may roll
// over any number of segment boundaries.
func (r *Relation) AppendBatch(tuples [][]data.Value) error {
	if len(tuples) == 0 {
		return nil // no mutation: keep the version (and caches keyed on it) intact
	}
	for i, tup := range tuples {
		if len(tup) != r.Schema.NumAttrs() {
			return fmt.Errorf("storage: tuple %d has %d values, schema %q has %d attributes",
				i, len(tup), r.Schema.Name, r.Schema.NumAttrs())
		}
	}
	scratch := make([]data.Value, r.Schema.NumAttrs())
	for len(tuples) > 0 {
		tail := r.tailWithRoom()
		room := r.SegCap - tail.Rows
		n := len(tuples)
		if n > room {
			n = room
		}
		tail.growFor(n)
		for _, tup := range tuples[:n] {
			tail.appendTuple(tup, scratch)
		}
		tail.bumpVersion()
		r.Rows += n
		tuples = tuples[n:]
	}
	r.bumpVersion()
	return nil
}

// tailWithRoom returns the tail segment, sealing it and opening a fresh
// one (same layout, empty groups) when it is full.
func (r *Relation) tailWithRoom() *Segment {
	tail := r.Tail()
	if tail.Rows < r.SegCap {
		return tail
	}
	if r.EncodeOnSeal {
		// The tail is sealing: build its encoded form now, while the data
		// is cache-hot, so later demotion and spill writes are free.
		for _, g := range tail.Groups {
			g.Encoding()
		}
	}
	fresh := make([]*ColumnGroup, len(tail.Groups))
	for i, g := range tail.Groups {
		ng := NewGroupPadded(g.Attrs, 0, g.Stride-g.Width)
		ng.zm = NewZoneMap(ng.Width, 0)
		fresh[i] = ng
	}
	next := newSegment(r, 0, fresh)
	r.Segments = append(r.Segments, next)
	return next
}

// growFor pre-grows each group's backing array for n more tuples so a
// batch append within one segment reallocates at most once per group.
func (s *Segment) growFor(n int) {
	for _, g := range s.Groups {
		need := len(g.Data) + n*g.Stride
		if cap(g.Data) < need {
			grown := make([]data.Value, len(g.Data), need)
			copy(grown, g.Data)
			g.Data = grown
		}
	}
}
