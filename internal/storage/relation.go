package storage

import (
	"fmt"
	"sort"
	"sync/atomic"

	"h2o/internal/data"
)

// Relation is a stored relation: a schema, a row count and a set of column
// groups that together cover every attribute at least once. Groups may
// overlap — the paper allows "the same piece of data [to] be stored in more
// than one format" — so lookups prefer the narrowest covering group.
//
// A Relation carries a monotonically increasing version that advances on
// every mutation — appends as well as layout reorganizations (AddGroup /
// DropGroup). Result caches key entries by this version, so a bump
// implicitly invalidates everything cached against the previous state
// without any explicit eviction pass. The Relation itself performs no
// locking: callers (the engine) serialize mutations against reads; only the
// version counter is atomic so serving layers can read it without holding
// the engine's lock.
type Relation struct {
	Schema *data.Schema
	Rows   int
	Groups []*ColumnGroup

	// narrowest caches, per attribute, the narrowest group storing it; it is
	// rebuilt whenever the group set changes. Wide schemas make the
	// linear GroupFor scan O(attrs x groups) per query without it.
	narrowest []*ColumnGroup

	// version is this relation's slice of the process-wide version clock.
	// Read with Version; advanced with bumpVersion under the caller's
	// write lock.
	version atomic.Uint64
}

// versionClock is the process-wide source of relation versions. Drawing
// every relation's versions — including the initial one — from a single
// monotone counter means a version value is never reused across relations:
// replacing a table (reload, re-registration) can never resurrect a cache
// entry keyed under the old relation's versions.
var versionClock atomic.Uint64

// Version returns the relation's current version. It is safe to call
// without external locking.
func (r *Relation) Version() uint64 { return r.version.Load() }

// bumpVersion advances the relation to a fresh process-unique version.
// Callers hold the exclusive lock that serializes the mutation itself.
func (r *Relation) bumpVersion() { r.version.Store(versionClock.Add(1)) }

// NewRelation creates a relation from a set of groups. It validates that the
// groups cover the schema and share the relation's row count.
func NewRelation(schema *data.Schema, rows int, groups []*ColumnGroup) (*Relation, error) {
	rel := &Relation{Schema: schema, Rows: rows, Groups: groups}
	covered := make([]bool, schema.NumAttrs())
	for _, g := range groups {
		if g.Rows != rows {
			return nil, fmt.Errorf("storage: group %v has %d rows, relation %q has %d", g.Attrs, g.Rows, schema.Name, rows)
		}
		if !schema.ValidAttrs(g.Attrs) {
			return nil, fmt.Errorf("storage: group %v references attributes outside schema %q", g.Attrs, schema.Name)
		}
		for _, a := range g.Attrs {
			covered[a] = true
		}
	}
	for a, ok := range covered {
		if !ok {
			return nil, fmt.Errorf("storage: attribute %s of %q not covered by any group", schema.AttrName(a), schema.Name)
		}
	}
	// Build the lookup index eagerly: GroupFor must be read-only once the
	// relation is shared between concurrent readers.
	rel.rebuildIndex()
	// Start at a fresh process-unique version so this relation's cache keys
	// can never collide with those of a relation it replaces.
	rel.bumpVersion()
	return rel, nil
}

// BuildColumnMajor materializes t as a pure column-major relation
// (one width-1 group per attribute).
func BuildColumnMajor(t *data.Table) *Relation {
	groups := make([]*ColumnGroup, t.Schema.NumAttrs())
	for a := range groups {
		groups[a] = BuildGroup(t, []data.AttrID{a})
	}
	rel, err := NewRelation(t.Schema, t.Rows, groups)
	if err != nil {
		panic(err) // unreachable: construction covers the schema by design
	}
	return rel
}

// BuildRowMajor materializes t as a single row-major group. If padded is
// true the group carries the NSM page/slot overhead the paper measures for
// the commercial row store.
func BuildRowMajor(t *data.Table, padded bool) *Relation {
	all := make([]data.AttrID, t.Schema.NumAttrs())
	for a := range all {
		all[a] = a
	}
	pad := 0
	if padded {
		pad = RowOverheadWords(len(all))
	}
	rel, err := NewRelation(t.Schema, t.Rows, []*ColumnGroup{BuildGroupPadded(t, all, pad)})
	if err != nil {
		panic(err)
	}
	return rel
}

// BuildPartitioned materializes t according to an explicit vertical
// partitioning: one group per attribute set in parts. Parts must cover the
// schema (they may overlap).
func BuildPartitioned(t *data.Table, parts [][]data.AttrID) (*Relation, error) {
	groups := make([]*ColumnGroup, len(parts))
	for i, p := range parts {
		groups[i] = BuildGroup(t, p)
	}
	return NewRelation(t.Schema, t.Rows, groups)
}

// Kind classifies the relation's current layout.
func (r *Relation) Kind() LayoutKind {
	if len(r.Groups) == 1 && r.Groups[0].Width == r.Schema.NumAttrs() {
		return KindRow
	}
	for _, g := range r.Groups {
		if g.Width != 1 {
			return KindGroup
		}
	}
	return KindColumn
}

// Bytes returns the total in-memory footprint of all groups.
func (r *Relation) Bytes() int64 {
	var n int64
	for _, g := range r.Groups {
		n += g.Bytes()
	}
	return n
}

// GroupFor returns the narrowest group storing attribute a. For relations
// built through NewRelation the index always exists and the lookup is
// read-only; the lazy rebuild below only serves hand-assembled Relation
// literals (tests, micro-harnesses), which are single-threaded.
func (r *Relation) GroupFor(a data.AttrID) (*ColumnGroup, error) {
	if r.narrowest == nil {
		r.rebuildIndex()
	}
	if a >= 0 && a < len(r.narrowest) {
		if g := r.narrowest[a]; g != nil {
			return g, nil
		}
	}
	return nil, fmt.Errorf("storage: no group stores attribute %s", r.Schema.AttrName(a))
}

// rebuildIndex recomputes the narrowest-group-per-attribute cache.
func (r *Relation) rebuildIndex() {
	r.narrowest = make([]*ColumnGroup, r.Schema.NumAttrs())
	for _, g := range r.Groups {
		for _, a := range g.Attrs {
			if best := r.narrowest[a]; best == nil || g.Width < best.Width {
				r.narrowest[a] = g
			}
		}
	}
}

// ExactGroup returns the group whose attribute set is exactly attrs, if any.
func (r *Relation) ExactGroup(attrs []data.AttrID) (*ColumnGroup, bool) {
	want := data.SortedUnique(attrs)
	for _, g := range r.Groups {
		if len(g.Attrs) != len(want) {
			continue
		}
		same := true
		for i := range want {
			if g.Attrs[i] != want[i] {
				same = false
				break
			}
		}
		if same {
			return g, true
		}
	}
	return nil, false
}

// CoveringGroups returns a small set of groups that together store every
// attribute in attrs, using a greedy set cover that prefers groups covering
// the most still-missing attributes and, on ties, the narrowest group (least
// wasted bandwidth). The returned assignment maps each requested attribute to
// the group chosen for it.
func (r *Relation) CoveringGroups(attrs []data.AttrID) ([]*ColumnGroup, map[data.AttrID]*ColumnGroup, error) {
	need := make(map[data.AttrID]bool, len(attrs))
	for _, a := range attrs {
		need[a] = true
	}
	var chosen []*ColumnGroup
	assign := make(map[data.AttrID]*ColumnGroup, len(attrs))
	for len(need) > 0 {
		var best *ColumnGroup
		bestCover := 0
		for _, g := range r.Groups {
			cover := 0
			for _, a := range g.Attrs {
				if need[a] {
					cover++
				}
			}
			if cover == 0 {
				continue
			}
			if best == nil || cover > bestCover || (cover == bestCover && g.Width < best.Width) {
				best, bestCover = g, cover
			}
		}
		if best == nil {
			missing := make([]data.AttrID, 0, len(need))
			for a := range need {
				missing = append(missing, a)
			}
			sort.Ints(missing)
			return nil, nil, fmt.Errorf("storage: attributes %v not covered by any group of %q", missing, r.Schema.Name)
		}
		chosen = append(chosen, best)
		for _, a := range best.Attrs {
			if need[a] {
				assign[a] = best
				delete(need, a)
			}
		}
	}
	return chosen, assign, nil
}

// AddGroup registers a new group with the relation. The group must match the
// relation's row count.
func (r *Relation) AddGroup(g *ColumnGroup) error {
	if g.Rows != r.Rows {
		return fmt.Errorf("storage: group %v has %d rows, relation has %d", g.Attrs, g.Rows, r.Rows)
	}
	r.Groups = append(r.Groups, g)
	r.rebuildIndex()
	r.bumpVersion()
	return nil
}

// DropGroup removes a group from the relation if removing it keeps the
// schema covered; it reports whether the group was removed.
func (r *Relation) DropGroup(g *ColumnGroup) bool {
	idx := -1
	for i, have := range r.Groups {
		if have == g {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	covered := make([]bool, r.Schema.NumAttrs())
	for i, have := range r.Groups {
		if i == idx {
			continue
		}
		for _, a := range have.Attrs {
			covered[a] = true
		}
	}
	for _, ok := range covered {
		if !ok {
			return false
		}
	}
	r.Groups = append(r.Groups[:idx], r.Groups[idx+1:]...)
	r.rebuildIndex()
	r.bumpVersion()
	return true
}

// LayoutSignature returns a stable human-readable description of the current
// partitioning, used by the shell, logs and tests.
func (r *Relation) LayoutSignature() string {
	parts := make([]string, len(r.Groups))
	for i, g := range r.Groups {
		parts[i] = fmt.Sprint(g.Attrs)
	}
	sort.Strings(parts)
	s := ""
	for i, p := range parts {
		if i > 0 {
			s += " | "
		}
		s += p
	}
	return s
}
