package storage

import (
	"fmt"
	"strings"
	"sync/atomic"

	"h2o/internal/data"
)

// Relation is a stored relation: a schema, a total row count and an ordered
// list of fixed-capacity Segments, each carrying its own column-group set,
// zone maps and version. Layout decisions are segment-local — the paper's
// hybrid design taken one step further: not only may "the same piece of
// data be stored in more than one format", different *slices* of the
// relation may be stored in different formats, because adaptation touches
// only the segments the workload makes hot.
//
// The last segment is the mutable tail: appends grow it until SegCap rows,
// then it seals and a fresh tail opens with the same layout. Sealed
// segments are never copied or rescanned by appends, so insert cost is
// O(segment), not O(relation).
//
// A Relation carries a monotonically increasing version that advances on
// every mutation — appends as well as layout reorganizations in any
// segment. Result caches key entries by this version, so a bump implicitly
// invalidates everything cached against the previous state without any
// explicit eviction pass. The Relation itself performs no locking: callers
// (the engine) serialize mutations against reads; only the version counter
// is atomic so serving layers can read it without holding the engine's
// lock.
type Relation struct {
	Schema *data.Schema
	Rows   int // total rows across all segments
	SegCap int // rows per segment before the tail seals

	Segments []*Segment

	// version is this relation's slice of the process-wide version clock.
	// Read with Version; advanced with bumpVersion under the caller's
	// write lock.
	version atomic.Uint64

	// id is the relation's immutable process-unique identity, drawn from
	// the version clock at construction. Cache fingerprints mix it in so
	// that two relations whose candidate segment sets are both empty (every
	// segment pruned, or no rows yet) still key apart — replacing a table
	// can never make an old empty-set entry addressable again.
	id uint64

	// loader faults spilled segments back in (tiered storage, see
	// residency.go). Installed once with SetLoader before the relation
	// serves readers; nil means every segment is permanently resident.
	loader Loader

	// EncodeOnSeal makes the append path build each segment's encoded form
	// (encode.go) the moment the tail seals, while its data is still hot in
	// cache. Enabled by engines running an encoded tier; costs one stats +
	// pack pass per sealed segment.
	EncodeOnSeal bool
}

// versionClock is the process-wide source of relation and segment versions.
// Drawing every version — including the initial one — from a single
// monotone counter means a version value is never reused across relations:
// replacing a table (reload, re-registration) can never resurrect a cache
// entry keyed under the old relation's versions.
var versionClock atomic.Uint64

// Version returns the relation's current version. It is safe to call
// without external locking.
func (r *Relation) Version() uint64 { return r.version.Load() }

// ID returns the relation's immutable process-unique identity. Unlike
// Version it never changes after construction; serving layers mix it into
// segment-set fingerprints (see the field comment). Safe without locks.
func (r *Relation) ID() uint64 { return r.id }

// SegmentVersions snapshots every segment's current version in segment
// order — the relation-wide version vector behind segment-precise result
// caching. The per-segment loads are atomic, but the segment *list* grows
// under appends, so callers must hold the engine lock (shared is enough)
// for a consistent snapshot.
func (r *Relation) SegmentVersions() []uint64 {
	out := make([]uint64, len(r.Segments))
	for i, s := range r.Segments {
		out[i] = s.Version()
	}
	return out
}

// bumpVersion advances the relation to a fresh process-unique version.
// Callers hold the exclusive lock that serializes the mutation itself.
func (r *Relation) bumpVersion() { r.version.Store(versionClock.Add(1)) }

// Tail returns the relation's mutable tail segment.
func (r *Relation) Tail() *Segment { return r.Segments[len(r.Segments)-1] }

// NewRelation creates a relation from a set of full-length groups, slicing
// them into segments of DefaultSegmentCapacity rows. It validates that the
// groups cover the schema and share the relation's row count. Slicing
// shares the groups' backing arrays — construction is O(zone-map build),
// not O(copy).
func NewRelation(schema *data.Schema, rows int, groups []*ColumnGroup) (*Relation, error) {
	return NewRelationSeg(schema, rows, groups, DefaultSegmentCapacity)
}

// NewRelationSeg is NewRelation with an explicit segment capacity, used by
// tests and benchmarks that need many segments at small scale.
func NewRelationSeg(schema *data.Schema, rows int, groups []*ColumnGroup, segCap int) (*Relation, error) {
	covered := make([]bool, schema.NumAttrs())
	for _, g := range groups {
		if g.Rows != rows {
			return nil, fmt.Errorf("storage: group %v has %d rows, relation %q has %d", g.Attrs, g.Rows, schema.Name, rows)
		}
		if !schema.ValidAttrs(g.Attrs) {
			return nil, fmt.Errorf("storage: group %v references attributes outside schema %q", g.Attrs, schema.Name)
		}
		for _, a := range g.Attrs {
			covered[a] = true
		}
	}
	for a, ok := range covered {
		if !ok {
			return nil, fmt.Errorf("storage: attribute %s of %q not covered by any group", schema.AttrName(a), schema.Name)
		}
	}
	return wrapSegments(schema, rows, groups, segCap), nil
}

// WrapGroups builds a segmented relation without the schema-coverage check:
// kernel harnesses use it to wrap a single group as a relation restricted
// to that group. Row counts must still match.
func WrapGroups(schema *data.Schema, rows int, groups []*ColumnGroup) *Relation {
	return wrapSegments(schema, rows, groups, DefaultSegmentCapacity)
}

// wrapSegments slices full-length groups into segments of segCap rows.
func wrapSegments(schema *data.Schema, rows int, groups []*ColumnGroup, segCap int) *Relation {
	if segCap <= 0 {
		segCap = DefaultSegmentCapacity
	}
	r := &Relation{Schema: schema, Rows: rows, SegCap: segCap}
	nSegs := (rows + segCap - 1) / segCap
	if nSegs == 0 {
		nSegs = 1
	}
	r.Segments = make([]*Segment, nSegs)
	for si := 0; si < nSegs; si++ {
		lo := si * segCap
		hi := lo + segCap
		if hi > rows {
			hi = rows
		}
		segGroups := make([]*ColumnGroup, len(groups))
		for gi, g := range groups {
			segGroups[gi] = g.slice(lo, hi)
		}
		r.Segments[si] = newSegment(r, hi-lo, segGroups)
	}
	// Start at a fresh process-unique version so this relation's cache keys
	// can never collide with those of a relation it replaces.
	r.bumpVersion()
	r.id = versionClock.Add(1)
	return r
}

// AssembleRelation builds a relation from explicit per-segment group sets
// (persist restores snapshots through it). Every segment's groups must
// cover the schema and share that segment's row count; only the last
// segment may hold fewer than segCap rows.
func AssembleRelation(schema *data.Schema, segCap int, segGroups [][]*ColumnGroup) (*Relation, error) {
	if segCap <= 0 {
		segCap = DefaultSegmentCapacity
	}
	if len(segGroups) == 0 {
		return nil, fmt.Errorf("storage: relation needs at least one segment")
	}
	r := &Relation{Schema: schema, SegCap: segCap}
	for si, groups := range segGroups {
		if len(groups) == 0 {
			return nil, fmt.Errorf("storage: segment %d has no groups", si)
		}
		rows := groups[0].Rows
		if rows > segCap {
			return nil, fmt.Errorf("storage: segment %d has %d rows, capacity is %d", si, rows, segCap)
		}
		if rows < segCap && si < len(segGroups)-1 {
			return nil, fmt.Errorf("storage: interior segment %d holds %d rows, want %d (only the tail may be partial)", si, rows, segCap)
		}
		covered := make([]bool, schema.NumAttrs())
		for _, g := range groups {
			if g.Rows != rows {
				return nil, fmt.Errorf("storage: segment %d group %v has %d rows, segment has %d", si, g.Attrs, g.Rows, rows)
			}
			if !schema.ValidAttrs(g.Attrs) {
				return nil, fmt.Errorf("storage: segment %d group %v references attributes outside schema %q", si, g.Attrs, schema.Name)
			}
			for _, a := range g.Attrs {
				covered[a] = true
			}
		}
		for a, ok := range covered {
			if !ok {
				return nil, fmt.Errorf("storage: segment %d: attribute %s not covered", si, schema.AttrName(a))
			}
		}
		r.Segments = append(r.Segments, newSegment(r, rows, groups))
		r.Rows += rows
	}
	r.bumpVersion()
	r.id = versionClock.Add(1)
	return r, nil
}

// BuildColumnMajor materializes t as a pure column-major relation
// (one width-1 group per attribute).
func BuildColumnMajor(t *data.Table) *Relation {
	return BuildColumnMajorSeg(t, DefaultSegmentCapacity)
}

// BuildColumnMajorSeg is BuildColumnMajor with an explicit segment capacity.
func BuildColumnMajorSeg(t *data.Table, segCap int) *Relation {
	groups := make([]*ColumnGroup, t.Schema.NumAttrs())
	for a := range groups {
		groups[a] = BuildGroup(t, []data.AttrID{a})
	}
	rel, err := NewRelationSeg(t.Schema, t.Rows, groups, segCap)
	if err != nil {
		panic(err) // unreachable: construction covers the schema by design
	}
	return rel
}

// BuildRowMajor materializes t as a single row-major group. If padded is
// true the group carries the NSM page/slot overhead the paper measures for
// the commercial row store.
func BuildRowMajor(t *data.Table, padded bool) *Relation {
	return BuildRowMajorSeg(t, padded, DefaultSegmentCapacity)
}

// BuildRowMajorSeg is BuildRowMajor with an explicit segment capacity.
func BuildRowMajorSeg(t *data.Table, padded bool, segCap int) *Relation {
	all := make([]data.AttrID, t.Schema.NumAttrs())
	for a := range all {
		all[a] = a
	}
	pad := 0
	if padded {
		pad = RowOverheadWords(len(all))
	}
	rel, err := NewRelationSeg(t.Schema, t.Rows, []*ColumnGroup{BuildGroupPadded(t, all, pad)}, segCap)
	if err != nil {
		panic(err)
	}
	return rel
}

// BuildPartitioned materializes t according to an explicit vertical
// partitioning: one group per attribute set in parts. Parts must cover the
// schema (they may overlap).
func BuildPartitioned(t *data.Table, parts [][]data.AttrID) (*Relation, error) {
	groups := make([]*ColumnGroup, len(parts))
	for i, p := range parts {
		groups[i] = BuildGroup(t, p)
	}
	return NewRelation(t.Schema, t.Rows, groups)
}

// Kind classifies the relation's layout: the shared kind when every segment
// agrees, KindGroup when segments have diverged (mixed layouts are hybrid
// by definition).
func (r *Relation) Kind() LayoutKind {
	k := r.Segments[0].Kind()
	for _, s := range r.Segments[1:] {
		if s.Kind() != k {
			return KindGroup
		}
	}
	return k
}

// Bytes returns the total in-memory footprint of all segments.
func (r *Relation) Bytes() int64 {
	var n int64
	for _, s := range r.Segments {
		n += s.Bytes()
	}
	return n
}

// Uniform reports whether every segment currently shares the same layout.
func (r *Relation) Uniform() bool {
	sig := r.Segments[0].LayoutSignature()
	for _, s := range r.Segments[1:] {
		if s.LayoutSignature() != sig {
			return false
		}
	}
	return true
}

// GroupFor returns the first segment's narrowest group storing attribute a
// — a *representative* for layout introspection and planning. Kernels that
// read data resolve groups per segment; on a single-segment relation the
// representative is the real thing.
func (r *Relation) GroupFor(a data.AttrID) (*ColumnGroup, error) {
	return r.Segments[0].GroupFor(a)
}

// CoveringGroups returns the first segment's covering set for attrs — a
// representative for planning and layout introspection (see GroupFor).
func (r *Relation) CoveringGroups(attrs []data.AttrID) ([]*ColumnGroup, map[data.AttrID]*ColumnGroup, error) {
	return r.Segments[0].CoveringGroups(attrs)
}

// ExactGroup reports whether *every* segment carries a group over exactly
// attrs, returning the first segment's instance. A partially reorganized
// relation (hot segments adapted, cold ones not) reports false, which is
// what keeps the proposal alive for the remaining segments.
func (r *Relation) ExactGroup(attrs []data.AttrID) (*ColumnGroup, bool) {
	first, ok := r.Segments[0].ExactGroup(attrs)
	if !ok {
		return nil, false
	}
	for _, s := range r.Segments[1:] {
		if _, ok := s.ExactGroup(attrs); !ok {
			return nil, false
		}
	}
	return first, true
}

// CommonLayout returns the attribute sets present in every segment — the
// layout the advisor treats as "existing" when generating proposals, so
// groups that cover only hot segments can still be proposed for segments
// that lack them.
func (r *Relation) CommonLayout() [][]data.AttrID {
	var out [][]data.AttrID
	for _, g := range r.Segments[0].Groups {
		inAll := true
		for _, s := range r.Segments[1:] {
			if _, ok := s.ExactGroup(g.Attrs); !ok {
				inAll = false
				break
			}
		}
		if inAll {
			out = append(out, g.Attrs)
		}
	}
	return out
}

// AddGroup registers a full-relation-length group with every segment by
// slicing it (sharing its backing array). The group must match the
// relation's row count. Offline tools and tests use it; the engine's
// online path adds segment-local groups directly.
func (r *Relation) AddGroup(g *ColumnGroup) error {
	if g.Rows != r.Rows {
		return fmt.Errorf("storage: group %v has %d rows, relation has %d", g.Attrs, g.Rows, r.Rows)
	}
	base := 0
	for _, s := range r.Segments {
		if err := s.AddGroup(g.slice(base, base+s.Rows)); err != nil {
			return err
		}
		base += s.Rows
	}
	return nil
}

// DropGroup removes the group with g's exact attribute set from every
// segment, provided the drop keeps each segment's schema coverage intact.
// All-or-nothing: if any segment would lose coverage or lacks the group,
// nothing is dropped. Reports whether the drop happened.
func (r *Relation) DropGroup(g *ColumnGroup) bool {
	targets := make([]*ColumnGroup, len(r.Segments))
	for si, s := range r.Segments {
		t, ok := s.ExactGroup(g.Attrs)
		if !ok {
			return false
		}
		idx := -1
		for i, have := range s.Groups {
			if have == t {
				idx = i
				break
			}
		}
		if idx < 0 || !s.coveredWithout(idx) {
			return false
		}
		targets[si] = t
	}
	for si, s := range r.Segments {
		if !s.DropGroup(targets[si]) {
			// Unreachable: checked above under the same exclusive lock.
			panic("storage: DropGroup lost a group between check and drop")
		}
	}
	return true
}

// MaterializeGroup stitches a group over attrs into every segment that does
// not already have one — the segment-local offline reorganization. Each
// segment's stitch reads and writes only that segment: O(segment) pieces,
// never one O(relation) copy.
func (r *Relation) MaterializeGroup(attrs []data.AttrID) error {
	for _, s := range r.Segments {
		if _, ok := s.ExactGroup(attrs); ok {
			continue
		}
		g, err := StitchSeg(s, attrs)
		if err != nil {
			return err
		}
		if err := s.AddGroup(g); err != nil {
			return err
		}
	}
	return nil
}

// LayoutSignature returns a stable human-readable description of the
// current partitioning. A uniform relation reports its shared per-segment
// signature; a mixed one enumerates each run of segments sharing a layout.
func (r *Relation) LayoutSignature() string {
	if r.Uniform() {
		return r.Segments[0].LayoutSignature()
	}
	var b strings.Builder
	runStart := 0
	sig := r.Segments[0].LayoutSignature()
	flush := func(end int) {
		if b.Len() > 0 {
			b.WriteString(" ;; ")
		}
		fmt.Fprintf(&b, "seg[%d:%d] %s", runStart, end, sig)
	}
	for si := 1; si < len(r.Segments); si++ {
		if s := r.Segments[si].LayoutSignature(); s != sig {
			flush(si)
			runStart, sig = si, s
		}
	}
	flush(len(r.Segments))
	return b.String()
}
