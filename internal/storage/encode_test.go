package storage

import (
	"math"
	"math/rand"
	"testing"

	"h2o/internal/data"
	"h2o/internal/expr"
)

// encDecodeColumn decodes an EncColumn back into a flat value slice.
func encDecodeColumn(c *EncColumn) []data.Value {
	out := make([]data.Value, 0, c.Rows)
	scratch := make([]data.Value, EncBlockRows)
	for bi := range c.Blocks {
		out = append(out, c.Blocks[bi].Decode(scratch)...)
	}
	return out
}

func encodeValues(vals []data.Value) *EncColumn {
	g := &ColumnGroup{Attrs: []data.AttrID{0}, Width: 1, Stride: 1, Rows: len(vals), Data: vals}
	return encodeColumn(g, 0)
}

func TestEncodeRoundTripShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	shapes := map[string][]data.Value{
		"empty-block-boundary": make([]data.Value, EncBlockRows),
		"constant":             {5, 5, 5, 5, 5, 5, 5, 5},
		"monotonic":            nil,
		"random-small":         nil,
		"random-full":          nil,
		"extremes": {math.MaxInt64, math.MinInt64, 0, -1, 1,
			math.MaxInt64, math.MinInt64, math.MinInt64},
		"runs":       {1, 1, 1, 2, 2, 9, 9, 9, 9, 9, 3},
		"single":     {42},
		"alternate":  {math.MinInt64, math.MaxInt64, math.MinInt64, math.MaxInt64},
		"off-by-one": make([]data.Value, EncBlockRows+1),
	}
	mono := make([]data.Value, 3*EncBlockRows+17)
	for i := range mono {
		mono[i] = data.Value(1_700_000_000 + i)
	}
	shapes["monotonic"] = mono
	small := make([]data.Value, EncBlockRows+100)
	for i := range small {
		small[i] = data.Value(rng.Intn(16))
	}
	shapes["random-small"] = small
	full := make([]data.Value, EncBlockRows/2)
	for i := range full {
		full[i] = data.Value(rng.Uint64())
	}
	shapes["random-full"] = full
	for i := range shapes["off-by-one"] {
		shapes["off-by-one"][i] = data.Value(i % 3)
	}

	for name, vals := range shapes {
		c := encodeValues(vals)
		got := encDecodeColumn(c)
		if len(got) != len(vals) {
			t.Fatalf("%s: decoded %d rows, want %d", name, len(got), len(vals))
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("%s: row %d decoded %d, want %d (codec %v)",
					name, i, got[i], vals[i], c.Blocks[i/EncBlockRows].Kind)
			}
		}
	}
}

func TestEncodeBlockStats(t *testing.T) {
	vals := []data.Value{3, -7, 12, 12, 0, math.MaxInt64, 5}
	c := encodeValues(vals)
	b := &c.Blocks[0]
	var sum data.Value
	mn, mx := vals[0], vals[0]
	for _, v := range vals {
		sum += v
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if b.Min != mn || b.Max != mx || b.Sum != sum || b.Rows != len(vals) {
		t.Fatalf("stats min=%d max=%d sum=%d rows=%d; want %d %d %d %d",
			b.Min, b.Max, b.Sum, b.Rows, mn, mx, sum, len(vals))
	}
}

func TestEncodeCodecSelection(t *testing.T) {
	mono := make([]data.Value, EncBlockRows)
	for i := range mono {
		mono[i] = data.Value(i)
	}
	if k := encodeValues(mono).Blocks[0].Kind; k != EncDelta {
		t.Fatalf("monotonic column picked %v, want delta", k)
	}
	cst := make([]data.Value, EncBlockRows)
	if b := encodeValues(cst).Blocks[0]; len(b.Words) != 0 {
		t.Fatalf("constant column used %d payload words (%v), want 0", len(b.Words), b.Kind)
	}
	wild := make([]data.Value, EncBlockRows)
	rng := rand.New(rand.NewSource(3))
	for i := range wild {
		wild[i] = data.Value(rng.Uint64())
	}
	b := encodeValues(wild).Blocks[0]
	if got, raw := len(b.Words), EncBlockRows; got > raw {
		t.Fatalf("incompressible column encoded to %d words, raw is %d", got, raw)
	}
}

func TestEncodedMatchAgainstFlatScan(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	vals := make([]data.Value, 2*EncBlockRows+333)
	for i := range vals {
		switch rng.Intn(3) {
		case 0:
			vals[i] = data.Value(rng.Intn(50))
		case 1:
			vals[i] = data.Value(1000 + i)
		default:
			vals[i] = data.Value(rng.Uint64())
		}
	}
	c := encodeValues(vals)
	ops := []expr.CmpOp{expr.Lt, expr.Le, expr.Gt, expr.Ge, expr.Eq, expr.Ne}
	cuts := []data.Value{0, 25, 1000 + EncBlockRows, math.MinInt64, math.MaxInt64, vals[17]}
	for _, op := range ops {
		for _, cut := range cuts {
			var got []int
			sel := make([]int32, 0, EncBlockRows)
			for bi := range c.Blocks {
				b := &c.Blocks[bi]
				base := c.BlockStart(bi)
				switch b.Match(op, cut) {
				case MatchNone:
					for r := 0; r < b.Rows; r++ {
						if cmpVal(vals[base+r], op, cut) {
							t.Fatalf("block %d claimed MatchNone for op=%v cut=%d but row %d matches", bi, op, cut, base+r)
						}
					}
				case MatchAll:
					for r := 0; r < b.Rows; r++ {
						if !cmpVal(vals[base+r], op, cut) {
							t.Fatalf("block %d claimed MatchAll for op=%v cut=%d but row %d fails", bi, op, cut, base+r)
						}
						got = append(got, base+r)
					}
				case MatchSome:
					for _, r := range b.AppendMatches(op, cut, sel[:0]) {
						got = append(got, base+int(r))
					}
				}
			}
			var want []int
			for i, v := range vals {
				if cmpVal(v, op, cut) {
					want = append(want, i)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("op=%v cut=%d: encoded scan found %d rows, flat %d", op, cut, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("op=%v cut=%d: row %d: encoded %d vs flat %d", op, cut, i, got[i], want[i])
				}
			}
		}
	}
}

func TestGroupEncodingRoundTripPadded(t *testing.T) {
	tb := data.GenerateTimeSeries(data.SyntheticSchema("R", 4), 1000, 5)
	g := BuildGroupPadded(tb, []data.AttrID{0, 1, 2, 3}, RowOverheadWords(4))
	e := EncodeGroup(g)
	clone := &ColumnGroup{Attrs: g.Attrs, Width: g.Width, Stride: g.Stride, Rows: g.Rows, pos: g.pos}
	e.DecodeInto(clone)
	if len(clone.Data) != len(g.Data) {
		t.Fatalf("decoded %d words, want %d", len(clone.Data), len(g.Data))
	}
	for i := range g.Data {
		if clone.Data[i] != g.Data[i] {
			t.Fatalf("word %d: decoded %d, want %d", i, clone.Data[i], g.Data[i])
		}
	}
}

func TestResidencyLadder(t *testing.T) {
	tb := data.GenerateTimeSeries(data.SyntheticSchema("R", 3), 1024, 9)
	rel := BuildColumnMajorSeg(tb, 256)
	rel.Compact()
	seg := rel.Segments[0]
	flat := make([]data.Value, len(seg.Groups[0].Data))
	copy(flat, seg.Groups[0].Data)

	if !seg.DemoteToEncoded() {
		t.Fatal("demote refused on a sealed resident segment")
	}
	if seg.State() != SegEncoded {
		t.Fatalf("state %v after demote, want SegEncoded", seg.State())
	}
	if seg.Groups[0].Data != nil {
		t.Fatal("flat data survived demotion")
	}
	if rb, eb := seg.ResidentBytes(), seg.EncodedBytes(); rb != eb || eb == 0 {
		t.Fatalf("encoded segment ResidentBytes=%d EncodedBytes=%d; want equal and nonzero", rb, eb)
	}
	if seg.DemoteToEncoded() {
		t.Fatal("demote succeeded twice")
	}

	// AcquireEncoded must not decode.
	if _, err := seg.AcquireEncoded(); err != nil {
		t.Fatal(err)
	}
	if seg.Groups[0].Data != nil {
		t.Fatal("AcquireEncoded materialized flat data")
	}
	if seg.Unload() {
		t.Fatal("unload succeeded while pinned")
	}
	seg.Release()

	// Acquire decodes back to the exact original bytes without a loader.
	faulted, err := seg.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if faulted {
		t.Fatal("decode from encoded counted as a disk fault")
	}
	if seg.State() != SegResident {
		t.Fatalf("state %v after Acquire, want SegResident", seg.State())
	}
	for i, v := range seg.Groups[0].Data {
		if v != flat[i] {
			t.Fatalf("word %d: %d after decode, want %d", i, v, flat[i])
		}
	}
	seg.Release()

	// The tail refuses demotion.
	if rel.Tail().DemoteToEncoded() {
		t.Fatal("tail demoted")
	}
}

// FuzzSegmentEncoding feeds arbitrary bytes as int64 columns through the
// full encode → decode cycle and through the encoded predicate scan,
// demanding bit-exact agreement with the flat representation.
func FuzzSegmentEncoding(f *testing.F) {
	f.Add([]byte{}, int64(0), uint8(0))
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8, 9}, int64(3), uint8(2))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x7f,
		0, 0, 0, 0, 0, 0, 0, 0x80}, int64(-1), uint8(4))
	seed := make([]byte, 8*300)
	for i := range seed {
		seed[i] = byte(i % 7)
	}
	f.Add(seed, int64(1000), uint8(1))
	f.Fuzz(func(t *testing.T, raw []byte, cut int64, opByte uint8) {
		vals := make([]data.Value, 0, len(raw)/8+1)
		for i := 0; i+8 <= len(raw); i += 8 {
			var u uint64
			for j := 0; j < 8; j++ {
				u |= uint64(raw[i+j]) << (8 * j)
			}
			vals = append(vals, data.Value(u))
		}
		if len(vals) == 0 {
			return
		}
		c := encodeValues(vals)
		got := encDecodeColumn(c)
		for i := range vals {
			if got[i] != vals[i] {
				t.Fatalf("row %d: decoded %d, want %d", i, got[i], vals[i])
			}
		}
		op := []expr.CmpOp{expr.Lt, expr.Le, expr.Gt, expr.Ge, expr.Eq, expr.Ne}[opByte%6]
		var enc []int
		for bi := range c.Blocks {
			b := &c.Blocks[bi]
			base := c.BlockStart(bi)
			switch b.Match(op, data.Value(cut)) {
			case MatchAll:
				for r := 0; r < b.Rows; r++ {
					enc = append(enc, base+r)
				}
			case MatchSome:
				for _, r := range b.AppendMatches(op, data.Value(cut), nil) {
					enc = append(enc, base+int(r))
				}
			}
		}
		var flat []int
		for i, v := range vals {
			if cmpVal(v, op, data.Value(cut)) {
				flat = append(flat, i)
			}
		}
		if len(enc) != len(flat) {
			t.Fatalf("op=%v cut=%d: encoded scan %d rows, flat %d", op, cut, len(enc), len(flat))
		}
		for i := range flat {
			if enc[i] != flat[i] {
				t.Fatalf("op=%v cut=%d: position %d: %d vs %d", op, cut, i, enc[i], flat[i])
			}
		}
	})
}
