package storage

import (
	"fmt"

	"h2o/internal/data"
	"h2o/internal/expr"
)

// Lightweight per-column encodings for sealed segments. All values are
// int64 with heavy positional locality (append-ordered time series), so
// three classic codecs cover the interesting cases:
//
//   - EncFOR: frame-of-reference — store v - min bit-packed at the width
//     of the block's value range.
//   - EncDelta: delta + FOR — store successive differences (minus the
//     minimum difference) bit-packed; near-free for monotonic columns.
//   - EncRLE: run-length — (value, runLength) word pairs; wins on
//     low-cardinality or constant stretches.
//   - EncRaw: the identity fallback when nothing saves space.
//
// A cheap one-pass stats scan per 4096-row block picks whichever codec
// yields the fewest payload words. Every block also carries exact
// min/max/sum/rows, so scans can answer many predicates and aggregate
// folds directly from the header without touching the payload — the
// block-level analogue of zone maps, but exact and always present.
//
// All arithmetic is wrapping (two's complement via uint64), so encode →
// decode is the identity on arbitrary int64 inputs, including ranges
// that overflow signed subtraction. FuzzSegmentEncoding leans on this.

// EncKind identifies a block codec.
type EncKind uint8

const (
	// EncRaw stores each value as one word.
	EncRaw EncKind = iota
	// EncFOR stores bit-packed offsets from the block minimum.
	EncFOR
	// EncDelta stores the first value plus bit-packed deltas.
	EncDelta
	// EncRLE stores (value, runLength) pairs.
	EncRLE
)

// String names the codec for stats and debugging.
func (k EncKind) String() string {
	switch k {
	case EncRaw:
		return "raw"
	case EncFOR:
		return "for"
	case EncDelta:
		return "delta"
	case EncRLE:
		return "rle"
	default:
		return fmt.Sprintf("EncKind(%d)", int(k))
	}
}

// EncBlockRows is the fixed number of rows per encoded block; only a
// column's last block may be shorter. The value divides the segment
// capacity (64K) and is a multiple of the zone-map block, so encoded
// block boundaries align with zone boundaries.
const EncBlockRows = 4096

// EncBlock is one encoded run of up to EncBlockRows values of a single
// column, with exact summary statistics for block skipping and
// decode-free aggregate folds.
type EncBlock struct {
	Kind EncKind
	Rows int
	Bits uint8 // packed bits per value (EncFOR / EncDelta)
	Runs int   // number of runs (EncRLE)

	Min data.Value
	Max data.Value
	Sum data.Value // wrapping sum of the block's values

	Base  data.Value // EncFOR: block min; EncDelta: first value
	DBase data.Value // EncDelta: minimum delta

	Words []uint64 // codec payload
}

// EncColumn is one column of a group encoded as fixed-size blocks.
type EncColumn struct {
	Rows   int
	Blocks []EncBlock
}

// BlockStart returns the row index where block bi begins. Blocks are
// fixed-size, so this is a multiplication, not a prefix sum.
func (c *EncColumn) BlockStart(bi int) int { return bi * EncBlockRows }

// GroupEncoding is the encoded form of a ColumnGroup: one EncColumn per
// attribute, in g.Attrs order. Padding words are not stored; decoding
// reconstructs them as zero, matching NewGroupPadded's invariant.
type GroupEncoding struct {
	Cols []*EncColumn
	// Mapped marks payload words that alias an mmap'd spill file. Mapped
	// encodings are backed by the page cache, not the Go heap, so the
	// tier budget counts them as (approximately) free.
	Mapped bool
}

// Bytes returns the payload footprint of the encoding in bytes.
func (e *GroupEncoding) Bytes() int64 {
	var n int64
	for _, c := range e.Cols {
		for i := range c.Blocks {
			n += int64(len(c.Blocks[i].Words)) * 8
		}
	}
	return n
}

// HeapBytes returns the bytes the encoding pins on the Go heap: zero for
// mmap-backed encodings, Bytes() otherwise.
func (e *GroupEncoding) HeapBytes() int64 {
	if e.Mapped {
		return 0
	}
	return e.Bytes()
}

// bitsFor returns the number of bits needed to represent r.
func bitsFor(r uint64) uint8 {
	b := uint8(0)
	for r != 0 {
		b++
		r >>= 1
	}
	return b
}

// packWords returns the number of 64-bit words holding n values of b bits.
func packWords(n int, b uint8) int {
	return (n*int(b) + 63) / 64
}

// packBits writes v (masked to bits) at value index idx in dst, LSB-first
// across word boundaries. dst must be zeroed.
func packBits(dst []uint64, idx int, bits uint8, v uint64) {
	pos := idx * int(bits)
	w, off := pos>>6, uint(pos&63)
	dst[w] |= v << off
	if off+uint(bits) > 64 {
		dst[w+1] |= v >> (64 - off)
	}
}

// unpackBits reads the value at index idx packed by packBits.
func unpackBits(src []uint64, idx int, bits uint8, mask uint64) uint64 {
	pos := idx * int(bits)
	w, off := pos>>6, uint(pos&63)
	v := src[w] >> off
	if off+uint(bits) > 64 {
		v |= src[w+1] << (64 - off)
	}
	return v & mask
}

func maskFor(bits uint8) uint64 {
	if bits >= 64 {
		return ^uint64(0)
	}
	return (uint64(1) << bits) - 1
}

// encodeBlock encodes vals (len <= EncBlockRows, > 0) read at the given
// stride, choosing the cheapest codec from a single stats pass.
func encodeBlock(vals []data.Value, stride int, rows int) EncBlock {
	first := vals[0]
	mn, mx, sum := first, first, data.Value(0)
	runs := 1
	var dmin, dmax int64
	prev := first
	for r := 0; r < rows; r++ {
		v := vals[r*stride]
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
		sum += v
		if r > 0 {
			if v != prev {
				runs++
			}
			d := int64(uint64(v) - uint64(prev))
			if r == 1 || d < dmin {
				dmin = d
			}
			if r == 1 || d > dmax {
				dmax = d
			}
			prev = v
		}
	}
	b := EncBlock{Rows: rows, Min: mn, Max: mx, Sum: sum}

	forBits := bitsFor(uint64(mx) - uint64(mn))
	deltaBits := uint8(0)
	if rows > 1 {
		deltaBits = bitsFor(uint64(dmax) - uint64(dmin))
	}
	rawCost := rows
	forCost := packWords(rows, forBits)
	deltaCost := packWords(rows-1, deltaBits)
	rleCost := 2 * runs

	best, cost := EncRaw, rawCost
	if forCost < cost {
		best, cost = EncFOR, forCost
	}
	if deltaCost < cost {
		best, cost = EncDelta, deltaCost
	}
	if rleCost < cost {
		best, cost = EncRLE, rleCost
	}

	switch best {
	case EncRaw:
		b.Kind = EncRaw
		b.Words = make([]uint64, rows)
		for r := 0; r < rows; r++ {
			b.Words[r] = uint64(vals[r*stride])
		}
	case EncFOR:
		b.Kind, b.Bits, b.Base = EncFOR, forBits, mn
		b.Words = make([]uint64, forCost)
		for r := 0; forBits > 0 && r < rows; r++ {
			packBits(b.Words, r, forBits, uint64(vals[r*stride])-uint64(mn))
		}
	case EncDelta:
		b.Kind, b.Bits, b.Base, b.DBase = EncDelta, deltaBits, first, data.Value(dmin)
		b.Words = make([]uint64, deltaCost)
		prev = first
		for r := 1; deltaBits > 0 && r < rows; r++ {
			v := vals[r*stride]
			d := uint64(v) - uint64(prev)
			packBits(b.Words, r-1, deltaBits, d-uint64(dmin))
			prev = v
		}
	case EncRLE:
		b.Kind, b.Runs = EncRLE, runs
		b.Words = make([]uint64, 0, rleCost)
		runVal, runLen := first, uint64(1)
		for r := 1; r < rows; r++ {
			v := vals[r*stride]
			if v == runVal {
				runLen++
				continue
			}
			b.Words = append(b.Words, uint64(runVal), runLen)
			runVal, runLen = v, 1
		}
		b.Words = append(b.Words, uint64(runVal), runLen)
	}
	return b
}

// Decode materializes the block's values into dst, which must have room
// for b.Rows values; it returns dst[:b.Rows].
func (b *EncBlock) Decode(dst []data.Value) []data.Value {
	dst = dst[:b.Rows]
	switch b.Kind {
	case EncRaw:
		for r := range dst {
			dst[r] = data.Value(b.Words[r])
		}
	case EncFOR:
		base, bits, mask := uint64(b.Base), b.Bits, maskFor(b.Bits)
		if bits == 0 {
			for r := range dst {
				dst[r] = b.Base
			}
			break
		}
		for r := range dst {
			dst[r] = data.Value(base + unpackBits(b.Words, r, bits, mask))
		}
	case EncDelta:
		bits, mask, dbase := b.Bits, maskFor(b.Bits), uint64(b.DBase)
		v := uint64(b.Base)
		dst[0] = b.Base
		if bits == 0 {
			for r := 1; r < b.Rows; r++ {
				v += dbase
				dst[r] = data.Value(v)
			}
			break
		}
		for r := 1; r < b.Rows; r++ {
			v += dbase + unpackBits(b.Words, r-1, bits, mask)
			dst[r] = data.Value(v)
		}
	case EncRLE:
		r := 0
		for i := 0; i < len(b.Words); i += 2 {
			v, n := data.Value(b.Words[i]), int(b.Words[i+1])
			for j := 0; j < n; j++ {
				dst[r] = v
				r++
			}
		}
	default:
		panic(fmt.Sprintf("storage: decode of unknown codec %d", b.Kind))
	}
	return dst
}

// MatchKind classifies a block against a predicate using only its exact
// min/max header: the whole block fails, the whole block matches, or the
// payload must be consulted.
type MatchKind uint8

const (
	// MatchNone means no row of the block can satisfy the predicate.
	MatchNone MatchKind = iota
	// MatchSome means the payload must be evaluated row-wise.
	MatchSome
	// MatchAll means every row of the block satisfies the predicate.
	MatchAll
)

// Match classifies the block against "value op v".
func (b *EncBlock) Match(op expr.CmpOp, v data.Value) MatchKind {
	mn, mx := b.Min, b.Max
	all, none := false, false
	switch op {
	case expr.Lt:
		all, none = mx < v, mn >= v
	case expr.Le:
		all, none = mx <= v, mn > v
	case expr.Gt:
		all, none = mn > v, mx <= v
	case expr.Ge:
		all, none = mn >= v, mx < v
	case expr.Eq:
		all, none = mn == v && mx == v, v < mn || v > mx
	case expr.Ne:
		all, none = v < mn || v > mx, mn == v && mx == v
	default:
		return MatchSome
	}
	switch {
	case none:
		return MatchNone
	case all:
		return MatchAll
	default:
		return MatchSome
	}
}

func cmpVal(v data.Value, op expr.CmpOp, c data.Value) bool {
	switch op {
	case expr.Lt:
		return v < c
	case expr.Le:
		return v <= c
	case expr.Gt:
		return v > c
	case expr.Ge:
		return v >= c
	case expr.Eq:
		return v == c
	case expr.Ne:
		return v != c
	default:
		return false
	}
}

// AppendMatches appends the block-relative indices of rows satisfying
// "value op v" to sel, evaluating the predicate over the encoded form:
// RLE compares once per run, FOR/Delta compare unpacked words without
// materializing a value slice.
func (b *EncBlock) AppendMatches(op expr.CmpOp, v data.Value, sel []int32) []int32 {
	switch b.Kind {
	case EncRaw:
		for r := 0; r < b.Rows; r++ {
			if cmpVal(data.Value(b.Words[r]), op, v) {
				sel = append(sel, int32(r))
			}
		}
	case EncFOR:
		base, bits, mask := uint64(b.Base), b.Bits, maskFor(b.Bits)
		if bits == 0 {
			if cmpVal(b.Base, op, v) {
				for r := 0; r < b.Rows; r++ {
					sel = append(sel, int32(r))
				}
			}
			break
		}
		for r := 0; r < b.Rows; r++ {
			if cmpVal(data.Value(base+unpackBits(b.Words, r, bits, mask)), op, v) {
				sel = append(sel, int32(r))
			}
		}
	case EncDelta:
		bits, mask, dbase := b.Bits, maskFor(b.Bits), uint64(b.DBase)
		cur := uint64(b.Base)
		if cmpVal(b.Base, op, v) {
			sel = append(sel, 0)
		}
		for r := 1; r < b.Rows; r++ {
			if bits == 0 {
				cur += dbase
			} else {
				cur += dbase + unpackBits(b.Words, r-1, bits, mask)
			}
			if cmpVal(data.Value(cur), op, v) {
				sel = append(sel, int32(r))
			}
		}
	case EncRLE:
		r := int32(0)
		for i := 0; i < len(b.Words); i += 2 {
			val, n := data.Value(b.Words[i]), int32(b.Words[i+1])
			if cmpVal(val, op, v) {
				for j := int32(0); j < n; j++ {
					sel = append(sel, r+j)
				}
			}
			r += n
		}
	}
	return sel
}

// encodeColumn encodes one attribute (at word offset off) of a group.
func encodeColumn(g *ColumnGroup, off int) *EncColumn {
	c := &EncColumn{Rows: g.Rows}
	for lo := 0; lo < g.Rows; lo += EncBlockRows {
		hi := lo + EncBlockRows
		if hi > g.Rows {
			hi = g.Rows
		}
		c.Blocks = append(c.Blocks, encodeBlock(g.Data[lo*g.Stride+off:], g.Stride, hi-lo))
	}
	return c
}

// EncodeGroup builds the encoded form of a resident group. It panics when
// the group's data has been dropped.
func EncodeGroup(g *ColumnGroup) *GroupEncoding {
	if g.Rows > 0 && g.Data == nil {
		panic("storage: EncodeGroup on a group with no resident data")
	}
	e := &GroupEncoding{Cols: make([]*EncColumn, g.Width)}
	for i := range g.Attrs {
		e.Cols[i] = encodeColumn(g, i)
	}
	return e
}

// DecodeInto materializes the encoding into g.Data (allocating it),
// reconstructing padding words as zero. The group's metadata (Rows,
// Stride, Attrs) must describe the encoded data.
func (e *GroupEncoding) DecodeInto(g *ColumnGroup) {
	buf := make([]data.Value, g.Rows*g.Stride)
	scratch := make([]data.Value, EncBlockRows)
	for i, c := range e.Cols {
		if g.Stride == 1 {
			// Pure column: decode straight into the backing array.
			for bi := range c.Blocks {
				c.Blocks[bi].Decode(buf[c.BlockStart(bi) : c.BlockStart(bi)+c.Blocks[bi].Rows])
			}
			continue
		}
		for bi := range c.Blocks {
			vals := c.Blocks[bi].Decode(scratch)
			base := c.BlockStart(bi)
			for r, v := range vals {
				buf[(base+r)*g.Stride+i] = v
			}
		}
	}
	g.Data = buf
}

// Encoding returns the group's cached encoded form, building and caching
// it from resident data on first use. It returns nil when the group has
// neither a cached encoding nor resident data. The cache is lazily
// shared: spill writes and concurrent encoded scans may race to build
// it, in which case one winner is kept (building is idempotent — sealed
// data never changes under a build).
func (g *ColumnGroup) Encoding() *GroupEncoding {
	if e := g.enc.Load(); e != nil {
		return e
	}
	if g.Data == nil {
		return nil
	}
	e := EncodeGroup(g)
	if !g.enc.CompareAndSwap(nil, e) {
		return g.enc.Load()
	}
	return e
}

// CachedEncoding returns the cached encoding without building one.
func (g *ColumnGroup) CachedEncoding() *GroupEncoding { return g.enc.Load() }

// SetEncoding installs an externally built encoding (e.g. one aliasing an
// mmap'd spill file).
func (g *ColumnGroup) SetEncoding(e *GroupEncoding) { g.enc.Store(e) }

// DropEncoding discards any cached encoding. Mutating paths call it so a
// stale encoding can never outlive a data change.
func (g *ColumnGroup) DropEncoding() { g.enc.Store(nil) }
