package storage

import (
	"fmt"
	"testing"

	"h2o/internal/data"
)

// These benchmarks demonstrate the segmented storage contract: appending to
// the tail and reorganizing one hot segment cost O(segment size) and stay
// flat as the relation grows, while a full-relation reorganization grows
// linearly. Run with:
//
//	go test -run '^$' -bench 'Segment|AppendTail' ./internal/storage/
//
// and compare ns/op across the /rows= variants.

const benchSegCap = 64 * 1024

func benchRelation(b *testing.B, rows int) (*data.Table, *Relation) {
	b.Helper()
	tb := data.Generate(data.SyntheticSchema("R", 4), rows, 7)
	return tb, BuildColumnMajorSeg(tb, benchSegCap)
}

// BenchmarkAppendTail appends single tuples. ns/op must be flat across
// relation sizes: only the tail segment is touched, never the sealed ones.
func BenchmarkAppendTail(b *testing.B) {
	for _, rows := range []int{benchSegCap, 4 * benchSegCap, 16 * benchSegCap} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			_, rel := benchRelation(b, rows)
			tuple := []data.Value{1, 2, 3, 4}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rel.Append(tuple); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReorgHotSegment stitches a group into ONE segment. ns/op must be
// flat across relation sizes: the stitch reads and writes one segment.
func BenchmarkReorgHotSegment(b *testing.B) {
	attrs := []data.AttrID{0, 1}
	for _, rows := range []int{benchSegCap, 4 * benchSegCap, 16 * benchSegCap} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			_, rel := benchRelation(b, rows)
			hot := rel.Segments[len(rel.Segments)-1]
			b.SetBytes(int64(hot.Rows) * int64(len(attrs)) * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := StitchSeg(hot, attrs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkReorgFullRelation is the contrast case: stitching a full-length
// group scales linearly with relation size. The gap between this series and
// BenchmarkReorgHotSegment is exactly what incremental adaptation saves.
func BenchmarkReorgFullRelation(b *testing.B) {
	attrs := []data.AttrID{0, 1}
	for _, rows := range []int{benchSegCap, 4 * benchSegCap, 16 * benchSegCap} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			_, rel := benchRelation(b, rows)
			b.SetBytes(int64(rows) * int64(len(attrs)) * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Stitch(rel, attrs); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAppendBatchTail appends 1000-tuple batches; like single appends,
// throughput must not depend on how many sealed segments sit below the tail.
func BenchmarkAppendBatchTail(b *testing.B) {
	batch := make([][]data.Value, 1000)
	for i := range batch {
		batch[i] = []data.Value{data.Value(i), 2, 3, 4}
	}
	for _, rows := range []int{benchSegCap, 16 * benchSegCap} {
		b.Run(fmt.Sprintf("rows=%d", rows), func(b *testing.B) {
			_, rel := benchRelation(b, rows)
			b.SetBytes(int64(len(batch)) * 4 * 8)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := rel.AppendBatch(batch); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
