package storage

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"h2o/internal/data"
	"h2o/internal/expr"
)

// DefaultSegmentCapacity is the number of rows a segment holds before the
// tail seals and a fresh one opens. 64K rows keeps a segment's working set
// cache-friendly while making segment-granular reorganization and
// parallelism meaningful on multi-million-row relations.
const DefaultSegmentCapacity = 64 * 1024

// Segment is one fixed-capacity horizontal slice of a relation, carrying
// its own column-group set, per-group zone maps, a layout index and a
// version. Segments are the unit of adaptation (hot segments are
// reorganized, cold ones keep their layout — a relation legitimately holds
// mixed layouts across segments), the unit of scan parallelism, and the
// unit of zone-map pruning. Only the relation's last segment (the tail)
// is mutable: appends grow it until capacity, then it seals.
//
// A Segment performs no locking; the engine serializes mutations against
// reads exactly as it does for the relation. The version and read counters
// are atomic so serving and monitoring layers can sample them lock-free.
type Segment struct {
	Groups []*ColumnGroup
	Rows   int

	rel *Relation // parent, for schema access and version propagation

	// narrowest caches, per attribute, the narrowest group storing it.
	narrowest []*ColumnGroup
	// sig is the cached layout signature, recomputed on every group-set
	// change (always under the engine's exclusive lock, so readers under
	// the shared lock never observe a torn value).
	sig string

	// version is this segment's slice of the process-wide version clock,
	// advanced on any mutation of the segment (appends, group add/drop).
	version atomic.Uint64
	// reads counts scans that actually touched this segment (pruned scans
	// do not count) since the engine last reset it — the access-frequency
	// signal behind hot/cold reorganization and eviction decisions.
	reads atomic.Uint64

	// Residency (tiered storage, see residency.go): resMu serializes
	// state transitions and pin accounting; while SegSpilled, every
	// group's Data is nil and only metadata stays in memory. faults
	// counts page-ins served.
	resMu  sync.Mutex
	pins   int
	state  SegState
	faults uint64
	// mapRel releases the mmap backing the segment's installed encodings,
	// if any; set by the loader under resMu, run and cleared by Unload.
	mapRel func()
}

// newSegment assembles a segment from groups that all share the same row
// count. Callers validated coverage; this wires the index and zone maps.
func newSegment(rel *Relation, rows int, groups []*ColumnGroup) *Segment {
	s := &Segment{Groups: groups, Rows: rows, rel: rel}
	for _, g := range groups {
		if g.zm == nil {
			g.BuildZones(0)
		}
	}
	s.rebuildIndex()
	s.bumpVersion()
	return s
}

// Version returns the segment's current version. Safe without locks.
func (s *Segment) Version() uint64 { return s.version.Load() }

func (s *Segment) bumpVersion() { s.version.Store(versionClock.Add(1)) }

// Touch records one scan of the segment. Execution kernels call it when a
// segment is actually read (not pruned); safe under the shared read lock.
func (s *Segment) Touch() { s.reads.Add(1) }

// Reads returns the scans since the last ResetReads.
func (s *Segment) Reads() uint64 { return s.reads.Load() }

// ResetReads zeroes the access counter; the engine calls it at each
// adaptation phase so hotness reflects the current window.
func (s *Segment) ResetReads() { s.reads.Store(0) }

// schema returns the parent relation's schema.
func (s *Segment) schema() *data.Schema { return s.rel.Schema }

// Kind classifies the segment's current layout.
func (s *Segment) Kind() LayoutKind {
	if len(s.Groups) == 1 && s.Groups[0].Width == s.schema().NumAttrs() {
		return KindRow
	}
	for _, g := range s.Groups {
		if g.Width != 1 {
			return KindGroup
		}
	}
	return KindColumn
}

// Bytes returns the logical footprint of the segment's groups — the bytes
// the data occupies when resident, regardless of the current residency
// state (use ResidentBytes for the in-memory portion).
func (s *Segment) Bytes() int64 {
	var n int64
	for _, g := range s.Groups {
		n += g.Bytes()
	}
	return n
}

// GroupFor returns the narrowest group storing attribute a.
func (s *Segment) GroupFor(a data.AttrID) (*ColumnGroup, error) {
	if s.narrowest == nil {
		s.rebuildIndex()
	}
	if a >= 0 && a < len(s.narrowest) {
		if g := s.narrowest[a]; g != nil {
			return g, nil
		}
	}
	return nil, fmt.Errorf("storage: no group stores attribute %s", s.schema().AttrName(a))
}

// rebuildIndex recomputes the narrowest-group cache and the cached layout
// signature. Called on every group-set change, under the caller's
// exclusive lock.
func (s *Segment) rebuildIndex() {
	s.narrowest = make([]*ColumnGroup, s.schema().NumAttrs())
	for _, g := range s.Groups {
		for _, a := range g.Attrs {
			if best := s.narrowest[a]; best == nil || g.Width < best.Width {
				s.narrowest[a] = g
			}
		}
	}
	parts := make([]string, len(s.Groups))
	for i, g := range s.Groups {
		parts[i] = fmt.Sprint(g.Attrs)
	}
	sort.Strings(parts)
	sig := ""
	for i, p := range parts {
		if i > 0 {
			sig += " | "
		}
		sig += p
	}
	s.sig = sig
}

// LayoutSignature returns a stable human-readable description of the
// segment's partitioning.
func (s *Segment) LayoutSignature() string {
	if s.sig == "" && len(s.Groups) > 0 {
		s.rebuildIndex()
	}
	return s.sig
}

// ExactGroup returns the group whose attribute set is exactly attrs, if any.
func (s *Segment) ExactGroup(attrs []data.AttrID) (*ColumnGroup, bool) {
	want := data.SortedUnique(attrs)
	for _, g := range s.Groups {
		if sameAttrs(g.Attrs, want) {
			return g, true
		}
	}
	return nil, false
}

// CoveringGroups returns a small set of the segment's groups that together
// store every attribute in attrs, using a greedy set cover that prefers
// groups covering the most still-missing attributes and, on ties, the
// narrowest group (least wasted bandwidth). The returned assignment maps
// each requested attribute to the group chosen for it.
func (s *Segment) CoveringGroups(attrs []data.AttrID) ([]*ColumnGroup, map[data.AttrID]*ColumnGroup, error) {
	need := make(map[data.AttrID]bool, len(attrs))
	for _, a := range attrs {
		need[a] = true
	}
	var chosen []*ColumnGroup
	assign := make(map[data.AttrID]*ColumnGroup, len(attrs))
	for len(need) > 0 {
		var best *ColumnGroup
		bestCover := 0
		for _, g := range s.Groups {
			cover := 0
			for _, a := range g.Attrs {
				if need[a] {
					cover++
				}
			}
			if cover == 0 {
				continue
			}
			if best == nil || cover > bestCover || (cover == bestCover && g.Width < best.Width) {
				best, bestCover = g, cover
			}
		}
		if best == nil {
			missing := make([]data.AttrID, 0, len(need))
			for a := range need {
				missing = append(missing, a)
			}
			sort.Ints(missing)
			return nil, nil, fmt.Errorf("storage: attributes %v not covered by any group of %q", missing, s.schema().Name)
		}
		chosen = append(chosen, best)
		for _, a := range best.Attrs {
			if need[a] {
				assign[a] = best
				delete(need, a)
			}
		}
	}
	return chosen, assign, nil
}

// AddGroup registers a new group with the segment. The group must match the
// segment's row count. Both the segment and the relation version advance.
func (s *Segment) AddGroup(g *ColumnGroup) error {
	if g.Rows != s.Rows {
		return fmt.Errorf("storage: group %v has %d rows, segment has %d", g.Attrs, g.Rows, s.Rows)
	}
	if g.zm == nil {
		g.BuildZones(0)
	}
	s.Groups = append(s.Groups, g)
	s.rebuildIndex()
	s.bumpVersion()
	s.rel.bumpVersion()
	return nil
}

// DropGroup removes a group from the segment if removing it keeps the
// schema covered; it reports whether the group was removed.
func (s *Segment) DropGroup(g *ColumnGroup) bool {
	idx := -1
	for i, have := range s.Groups {
		if have == g {
			idx = i
			break
		}
	}
	if idx < 0 {
		return false
	}
	if !s.coveredWithout(idx) {
		return false
	}
	s.Groups = append(s.Groups[:idx], s.Groups[idx+1:]...)
	s.rebuildIndex()
	s.bumpVersion()
	s.rel.bumpVersion()
	return true
}

// coveredWithout reports whether dropping the idx-th group keeps every
// schema attribute stored by some remaining group.
func (s *Segment) coveredWithout(idx int) bool {
	covered := make([]bool, s.schema().NumAttrs())
	for i, have := range s.Groups {
		if i == idx {
			continue
		}
		for _, a := range have.Attrs {
			covered[a] = true
		}
	}
	for _, ok := range covered {
		if !ok {
			return false
		}
	}
	return true
}

// MayMatch reports whether any row of the segment can satisfy
// "attr op v", consulting the zone map of the narrowest group storing the
// attribute. Unknown (no group, no zone map) conservatively reports true;
// an empty segment reports false. A false answer lets scans skip the whole
// segment without touching a single row.
func (s *Segment) MayMatch(a data.AttrID, op expr.CmpOp, v data.Value) bool {
	if s.Rows == 0 {
		return false
	}
	if s.narrowest == nil || a < 0 || a >= len(s.narrowest) {
		return true
	}
	g := s.narrowest[a]
	if g == nil || g.zm == nil {
		return true
	}
	off, ok := g.Offset(a)
	if !ok {
		return true
	}
	return g.zm.MayMatchAny(off, op, v)
}

// appendTuple grows every group of the segment by one mini-tuple and
// extends their zone maps. The caller (Relation.Append*) validated the
// tuple width and checked capacity.
func (s *Segment) appendTuple(tuple []data.Value, scratch []data.Value) {
	for _, g := range s.Groups {
		g.enc.Store(nil) // tails are never encoded; drop any stale cache
		base := len(g.Data)
		g.Data = append(g.Data, make([]data.Value, g.Stride)...)
		vals := scratch[:g.Width]
		for i, a := range g.Attrs {
			v := tuple[a]
			g.Data[base+i] = v
			vals[i] = v
		}
		g.Rows++
		if g.zm == nil {
			g.zm = NewZoneMap(g.Width, 0)
		}
		g.zm.ExtendRow(vals)
	}
	s.Rows++
}

// sameAttrs reports whether two sorted attribute sets are identical.
func sameAttrs(a, b []data.AttrID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
