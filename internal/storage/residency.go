package storage

import (
	"fmt"

	"h2o/internal/data"
)

// Tiered storage: sealed segments are immutable, so their group data can be
// spilled to disk and paged back on demand while every piece of metadata —
// attribute sets, strides, zone maps, the narrowest-group index, versions
// and read counters — stays resident. Planning, layout introspection and
// zone-map pruning therefore never touch disk; only a scan that actually
// needs a spilled segment's rows pays a fault.
//
// The residency state machine per segment is a three-rung ladder:
//
//	SegResident --DemoteToEncoded()--> SegEncoded --Unload()--> SegSpilled
//	SegSpilled --AcquireEncoded()/loader--> SegEncoded or SegResident
//	SegEncoded  --Acquire()/decode--> SegResident
//
// SegEncoded is the middle rung: flat group data has been dropped but the
// compact encoded form (encode.go) stays in memory, so encoded-aware scans
// run with zero I/O and a flat fault is a decode, not a disk read. The
// eviction manager demotes before it spills, because a demotion frees most
// of a segment's bytes for free.
//
// Scans synchronize with eviction through pins: every reader of group Data
// brackets the access with Acquire/Release (encoded readers use
// AcquireEncoded), and Unload/DemoteToEncoded refuse pinned segments.
// Residency transitions are NOT mutations — they never bump the segment or
// relation version, so result-cache entries stay valid across a
// spill/fault cycle. Mutations (appends, group add/drop) are only legal on
// resident segments: the engine pages a segment in before reorganizing it,
// the tail is never evictable, and offline tools operate on fully resident
// relations.

// SegState is a segment's residency state.
type SegState int32

const (
	// SegResident means the segment's flat group data is in memory.
	SegResident SegState = iota
	// SegSpilled means the group data lives only in the segment's spill
	// file; every group's Data is nil until a loader faults it back in.
	SegSpilled
	// SegEncoded means flat data has been dropped but every group holds
	// its encoded form in memory (heap or mmap-backed).
	SegEncoded
)

// Loader faults one spilled segment's group data back into memory. It is
// called with the segment's residency lock held, so at most one fault per
// segment is in flight. Implementations must either fill every group's
// Data or install an encoding on every group (SetEncoding — the mmap path
// does this), and nothing else, or return an error leaving the segment
// untouched.
type Loader func(*Segment) error

// SetLoader installs the fault-in callback for spilled segments. It must be
// called before the relation serves concurrent readers (the field is read
// without synchronization on the scan path); nil means every segment is
// permanently resident and Unload must not be used.
func (r *Relation) SetLoader(fn Loader) { r.loader = fn }

// Acquire pins the segment's data in memory for the duration of a scan,
// faulting it in through the relation's loader when spilled. It reports
// whether a fault (disk read) occurred. Pins nest; every Acquire must be
// paired with Release. Metadata-only readers (zone maps, covering-group
// planning) need no pin.
func (s *Segment) Acquire() (faulted bool, err error) {
	s.resMu.Lock()
	defer s.resMu.Unlock()
	if s.state == SegSpilled {
		load := s.rel.loader
		if load == nil {
			return false, fmt.Errorf("storage: segment of %q is spilled and relation has no loader", s.rel.Schema.Name)
		}
		if err := load(s); err != nil {
			return false, fmt.Errorf("storage: faulting segment of %q in: %w", s.rel.Schema.Name, err)
		}
		s.faults++
		faulted = true
	}
	// The loader may have installed encodings instead of flat data (the
	// mmap path), or the segment may sit on the encoded rung: materialize
	// any group that has no flat data. A decode is not a disk fault.
	for _, g := range s.Groups {
		if g.Data == nil && g.Rows > 0 {
			e := g.enc.Load()
			if e == nil {
				return faulted, fmt.Errorf("storage: segment of %q has neither data nor encoding after load", s.rel.Schema.Name)
			}
			e.DecodeInto(g)
		}
	}
	s.state = SegResident
	s.pins++
	return faulted, nil
}

// AcquireEncoded pins the segment at encoded-or-better residency: after it
// returns, every group either has flat Data or an installed encoding, and
// the segment will not be demoted or unloaded until Release. Encoded-aware
// scans use it to read spilled segments without paying a full decode.
func (s *Segment) AcquireEncoded() (faulted bool, err error) {
	s.resMu.Lock()
	defer s.resMu.Unlock()
	if s.state == SegSpilled {
		load := s.rel.loader
		if load == nil {
			return false, fmt.Errorf("storage: segment of %q is spilled and relation has no loader", s.rel.Schema.Name)
		}
		if err := load(s); err != nil {
			return false, fmt.Errorf("storage: faulting segment of %q in: %w", s.rel.Schema.Name, err)
		}
		s.faults++
		faulted = true
		flat := true
		for _, g := range s.Groups {
			if g.Data == nil && g.Rows > 0 {
				flat = false
				break
			}
		}
		if flat {
			s.state = SegResident
		} else {
			s.state = SegEncoded
		}
	}
	s.pins++
	return faulted, nil
}

// DemoteToEncoded drops the segment's flat data, keeping only the encoded
// form in memory — the cheap first rung of eviction (no I/O; a later
// flat access pays a decode, not a disk read). It refuses — returning
// false — when the segment is pinned, not flat-resident, empty, or the
// mutable tail.
func (s *Segment) DemoteToEncoded() bool {
	s.resMu.Lock()
	defer s.resMu.Unlock()
	if s.pins > 0 || s.state != SegResident || s.Rows == 0 || s == s.rel.Tail() {
		return false
	}
	for _, g := range s.Groups {
		if g.Encoding() == nil {
			return false // no data to encode from; should not happen while resident
		}
	}
	for _, g := range s.Groups {
		g.Data = nil
	}
	s.state = SegEncoded
	return true
}

// Release drops one pin taken by Acquire.
func (s *Segment) Release() {
	s.resMu.Lock()
	defer s.resMu.Unlock()
	if s.pins <= 0 {
		panic("storage: Segment.Release without matching Acquire")
	}
	s.pins--
}

// Unload spills the segment: every group's Data and cached encoding are
// dropped and the state moves to SegSpilled. It refuses — returning false —
// when the segment is pinned by a scan, already spilled, empty, or the
// relation's mutable tail. The caller (the eviction manager) must have
// written a current spill file before unloading; Unload itself performs no
// I/O beyond releasing an mmap installed by a previous fault. Zone maps
// and all other metadata stay resident, and no version advances: residency
// is not a mutation.
func (s *Segment) Unload() bool {
	s.resMu.Lock()
	defer s.resMu.Unlock()
	if s.pins > 0 || s.state == SegSpilled || s.Rows == 0 || s == s.rel.Tail() {
		return false
	}
	for _, g := range s.Groups {
		g.Data = nil
		g.enc.Store(nil)
	}
	if s.mapRel != nil {
		s.mapRel()
		s.mapRel = nil
	}
	s.state = SegSpilled
	return true
}

// Resident reports whether the segment's flat data is currently in memory.
func (s *Segment) Resident() bool {
	s.resMu.Lock()
	defer s.resMu.Unlock()
	return s.state == SegResident
}

// State returns the segment's residency state.
func (s *Segment) State() SegState {
	s.resMu.Lock()
	defer s.resMu.Unlock()
	return s.state
}

// SetMapRelease installs a callback that releases the memory mapping
// backing the segment's current encodings. Loaders that install
// mmap-aliased encodings call it (the residency lock is already held
// there); Unload invokes and clears it.
func (s *Segment) SetMapRelease(fn func()) { s.mapRel = fn }

// ReleaseMapping force-drops any mmap-backed encodings and runs the
// release callback, used by the tier manager when it shuts down so spill
// mappings do not outlive their files. It refuses (returning false) while
// the segment is pinned. If the drop leaves an encoded-resident segment
// with nothing in memory its state falls back to SegSpilled.
func (s *Segment) ReleaseMapping() bool {
	s.resMu.Lock()
	defer s.resMu.Unlock()
	if s.mapRel == nil {
		return true
	}
	if s.pins > 0 {
		return false
	}
	for _, g := range s.Groups {
		if e := g.enc.Load(); e != nil && e.Mapped {
			g.enc.Store(nil)
		}
	}
	if s.state == SegEncoded {
		for _, g := range s.Groups {
			if g.Data == nil && g.enc.Load() == nil && g.Rows > 0 {
				s.state = SegSpilled
				break
			}
		}
	}
	s.mapRel()
	s.mapRel = nil
	return true
}

// Faults returns the number of page-ins this segment has served.
func (s *Segment) Faults() uint64 {
	s.resMu.Lock()
	defer s.resMu.Unlock()
	return s.faults
}

// ResidentBytes returns the bytes of group data currently held in memory —
// zero for a spilled segment, Bytes() for a flat-resident one, and the
// (much smaller) heap footprint of the encodings for an encoded-resident
// one. mmap-backed encodings count as zero: their pages live in the OS
// page cache and are reclaimable. A flat-resident group's cached encoding
// is not counted — like zone maps, it is a small acceleration structure
// that rides along. It takes the residency lock: group Data slices are
// rewritten by concurrent faults.
func (s *Segment) ResidentBytes() int64 {
	s.resMu.Lock()
	defer s.resMu.Unlock()
	var n int64
	for _, g := range s.Groups {
		if g.Data != nil {
			n += int64(len(g.Data)) * 8
		} else if e := g.enc.Load(); e != nil {
			n += e.HeapBytes()
		}
	}
	return n
}

// EncodedBytes returns the total payload bytes of the segment's cached or
// installed encodings (mmap-backed included), zero when none are present.
func (s *Segment) EncodedBytes() int64 {
	s.resMu.Lock()
	defer s.resMu.Unlock()
	var n int64
	for _, g := range s.Groups {
		if e := g.enc.Load(); e != nil {
			n += e.Bytes()
		}
	}
	return n
}

// ResidentBytes sums the in-memory group data across all segments — the
// quantity an eviction manager holds under its byte budget.
func (r *Relation) ResidentBytes() int64 {
	var n int64
	for _, s := range r.Segments {
		n += s.ResidentBytes()
	}
	return n
}

// Compact gives every group of every segment its own exactly-sized
// backing array. Relations built by slicing full-length groups
// (NewRelation / wrapSegments) share one backing array across all
// segments — fine for a purely in-memory store, but fatal for eviction:
// unloading one segment would drop only its view while the sibling views
// (the unevictable tail, at minimum) kept the whole shared array
// reachable, so no memory would actually be freed. The eviction manager
// compacts once at setup, making Unload release real bytes. Caller holds
// the engine's exclusive access (construction time); O(relation copy).
func (r *Relation) Compact() {
	for _, s := range r.Segments {
		for _, g := range s.Groups {
			buf := make([]data.Value, len(g.Data))
			copy(buf, g.Data)
			g.Data = buf
		}
	}
}
