package storage

import (
	"fmt"

	"h2o/internal/data"
)

// Tiered storage: sealed segments are immutable, so their group data can be
// spilled to disk and paged back on demand while every piece of metadata —
// attribute sets, strides, zone maps, the narrowest-group index, versions
// and read counters — stays resident. Planning, layout introspection and
// zone-map pruning therefore never touch disk; only a scan that actually
// needs a spilled segment's rows pays a fault.
//
// The residency state machine per segment:
//
//	SegResident --Unload()--> SegSpilled --Acquire()/loader--> SegResident
//
// Scans synchronize with eviction through pins: every reader of group Data
// brackets the access with Acquire/Release, and Unload refuses pinned
// segments. Residency transitions are NOT mutations — they never bump the
// segment or relation version, so result-cache entries stay valid across a
// spill/fault cycle. Mutations (appends, group add/drop) are only legal on
// resident segments: the engine pages a segment in before reorganizing it,
// the tail is never evictable, and offline tools operate on fully resident
// relations.

// SegState is a segment's residency state.
type SegState int32

const (
	// SegResident means the segment's group data is in memory.
	SegResident SegState = iota
	// SegSpilled means the group data lives only in the segment's spill
	// file; every group's Data is nil until a loader faults it back in.
	SegSpilled
)

// Loader faults one spilled segment's group data back into memory. It is
// called with the segment's residency lock held, so at most one fault per
// segment is in flight; implementations must fill every group's Data (and
// nothing else) or return an error leaving the segment untouched.
type Loader func(*Segment) error

// SetLoader installs the fault-in callback for spilled segments. It must be
// called before the relation serves concurrent readers (the field is read
// without synchronization on the scan path); nil means every segment is
// permanently resident and Unload must not be used.
func (r *Relation) SetLoader(fn Loader) { r.loader = fn }

// Acquire pins the segment's data in memory for the duration of a scan,
// faulting it in through the relation's loader when spilled. It reports
// whether a fault (disk read) occurred. Pins nest; every Acquire must be
// paired with Release. Metadata-only readers (zone maps, covering-group
// planning) need no pin.
func (s *Segment) Acquire() (faulted bool, err error) {
	s.resMu.Lock()
	defer s.resMu.Unlock()
	if s.state == SegSpilled {
		load := s.rel.loader
		if load == nil {
			return false, fmt.Errorf("storage: segment of %q is spilled and relation has no loader", s.rel.Schema.Name)
		}
		if err := load(s); err != nil {
			return false, fmt.Errorf("storage: faulting segment of %q in: %w", s.rel.Schema.Name, err)
		}
		s.state = SegResident
		s.faults++
		faulted = true
	}
	s.pins++
	return faulted, nil
}

// Release drops one pin taken by Acquire.
func (s *Segment) Release() {
	s.resMu.Lock()
	defer s.resMu.Unlock()
	if s.pins <= 0 {
		panic("storage: Segment.Release without matching Acquire")
	}
	s.pins--
}

// Unload spills the segment: every group's Data is dropped and the state
// moves to SegSpilled. It refuses — returning false — when the segment is
// pinned by a scan, already spilled, empty, or the relation's mutable tail.
// The caller (the eviction manager) must have written a current spill file
// before unloading; Unload itself performs no I/O. Zone maps and all other
// metadata stay resident, and no version advances: residency is not a
// mutation.
func (s *Segment) Unload() bool {
	s.resMu.Lock()
	defer s.resMu.Unlock()
	if s.pins > 0 || s.state == SegSpilled || s.Rows == 0 || s == s.rel.Tail() {
		return false
	}
	for _, g := range s.Groups {
		g.Data = nil
	}
	s.state = SegSpilled
	return true
}

// Resident reports whether the segment's data is currently in memory.
func (s *Segment) Resident() bool {
	s.resMu.Lock()
	defer s.resMu.Unlock()
	return s.state == SegResident
}

// Faults returns the number of page-ins this segment has served.
func (s *Segment) Faults() uint64 {
	s.resMu.Lock()
	defer s.resMu.Unlock()
	return s.faults
}

// ResidentBytes returns the bytes of group data currently held in memory —
// zero for a spilled segment, Bytes() for a resident one. It takes the
// residency lock: group Data slices are rewritten by concurrent faults.
func (s *Segment) ResidentBytes() int64 {
	s.resMu.Lock()
	defer s.resMu.Unlock()
	var n int64
	for _, g := range s.Groups {
		n += int64(len(g.Data)) * 8
	}
	return n
}

// ResidentBytes sums the in-memory group data across all segments — the
// quantity an eviction manager holds under its byte budget.
func (r *Relation) ResidentBytes() int64 {
	var n int64
	for _, s := range r.Segments {
		n += s.ResidentBytes()
	}
	return n
}

// Compact gives every group of every segment its own exactly-sized
// backing array. Relations built by slicing full-length groups
// (NewRelation / wrapSegments) share one backing array across all
// segments — fine for a purely in-memory store, but fatal for eviction:
// unloading one segment would drop only its view while the sibling views
// (the unevictable tail, at minimum) kept the whole shared array
// reachable, so no memory would actually be freed. The eviction manager
// compacts once at setup, making Unload release real bytes. Caller holds
// the engine's exclusive access (construction time); O(relation copy).
func (r *Relation) Compact() {
	for _, s := range r.Segments {
		for _, g := range s.Groups {
			buf := make([]data.Value, len(g.Data))
			copy(buf, g.Data)
			g.Data = buf
		}
	}
}
