package storage

import (
	"h2o/internal/data"
	"h2o/internal/expr"
)

// ZoneMap summarizes a column group with per-block min/max values per
// attribute, enabling scans to skip blocks that cannot satisfy a predicate.
// This is the lightweight end of the "adaptive indexing together with
// adaptive data layouts" direction the paper's conclusions propose: zone
// maps are built in one pass whenever a group is created or reorganized, so
// they ride along with layout adaptation for free.
//
// Skipping only pays off when values cluster by position (e.g. append-
// ordered timestamps); on uniformly shuffled data every block spans the
// whole domain and nothing is skipped — the ablation-zonemap experiment
// shows both regimes.
type ZoneMap struct {
	Block int // rows per zone
	zones int
	width int
	mins  []data.Value // zone*width + attrPos
	maxs  []data.Value
}

// DefaultZoneBlock is the default rows-per-zone granularity.
const DefaultZoneBlock = 1024

// BuildZoneMap scans g once and summarizes every block. block <= 0 selects
// DefaultZoneBlock.
func BuildZoneMap(g *ColumnGroup, block int) *ZoneMap {
	if block <= 0 {
		block = DefaultZoneBlock
	}
	zones := (g.Rows + block - 1) / block
	z := &ZoneMap{
		Block: block,
		zones: zones,
		width: g.Width,
		mins:  make([]data.Value, zones*g.Width),
		maxs:  make([]data.Value, zones*g.Width),
	}
	d, stride := g.Data, g.Stride
	for zi := 0; zi < zones; zi++ {
		lo := zi * block
		hi := lo + block
		if hi > g.Rows {
			hi = g.Rows
		}
		for off := 0; off < g.Width; off++ {
			mn := d[lo*stride+off]
			mx := mn
			for r := lo + 1; r < hi; r++ {
				v := d[r*stride+off]
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			z.mins[zi*g.Width+off] = mn
			z.maxs[zi*g.Width+off] = mx
		}
	}
	return z
}

// Zones returns the number of blocks.
func (z *ZoneMap) Zones() int { return z.zones }

// ZoneRange returns the row span of zone zi, clamped to rows.
func (z *ZoneMap) ZoneRange(zi, rows int) (lo, hi int) {
	lo = zi * z.Block
	hi = lo + z.Block
	if hi > rows {
		hi = rows
	}
	return lo, hi
}

// MayMatch reports whether any value of the attribute at word offset off in
// zone zi can satisfy "value op v". False means the whole block is safely
// skippable.
func (z *ZoneMap) MayMatch(zi, off int, op expr.CmpOp, v data.Value) bool {
	mn := z.mins[zi*z.width+off]
	mx := z.maxs[zi*z.width+off]
	switch op {
	case expr.Lt:
		return mn < v
	case expr.Le:
		return mn <= v
	case expr.Gt:
		return mx > v
	case expr.Ge:
		return mx >= v
	case expr.Eq:
		return mn <= v && v <= mx
	case expr.Ne:
		return mn != v || mx != v
	default:
		return true
	}
}
