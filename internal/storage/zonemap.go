package storage

import (
	"h2o/internal/data"
	"h2o/internal/expr"
)

// ZoneMap summarizes a column group with per-block min/max values per
// attribute, enabling scans to skip blocks — and, through the whole-group
// bounds it also maintains, entire segments — that cannot satisfy a
// predicate. This is the lightweight end of the "adaptive indexing together
// with adaptive data layouts" direction the paper's conclusions propose:
// zone maps are built in one pass whenever a group is created or
// reorganized, and extended incrementally as tuples are appended to the
// tail segment, so they ride along with layout adaptation for free.
//
// Skipping only pays off when values cluster by position (e.g. append-
// ordered timestamps); on uniformly shuffled data every block spans the
// whole domain and nothing is skipped — the ablation-zonemap experiment
// shows both regimes.
type ZoneMap struct {
	Block int // rows per zone
	zones int
	width int
	rows  int          // rows summarized so far
	mins  []data.Value // zone*width + attrPos
	maxs  []data.Value
	// allMin/allMax are whole-group bounds per attribute offset, kept in
	// sync by Build/Extend. Segment pruning consults them in O(1) instead
	// of walking every zone.
	allMin []data.Value
	allMax []data.Value
}

// DefaultZoneBlock is the default rows-per-zone granularity.
const DefaultZoneBlock = 1024

// NewZoneMap returns an empty zone map for a group of the given width,
// ready to be extended row by row as the tail segment absorbs appends.
// block <= 0 selects DefaultZoneBlock.
func NewZoneMap(width, block int) *ZoneMap {
	if block <= 0 {
		block = DefaultZoneBlock
	}
	return &ZoneMap{
		Block:  block,
		width:  width,
		allMin: make([]data.Value, width),
		allMax: make([]data.Value, width),
	}
}

// BuildZoneMap scans g once and summarizes every block. block <= 0 selects
// DefaultZoneBlock.
func BuildZoneMap(g *ColumnGroup, block int) *ZoneMap {
	z := NewZoneMap(g.Width, block)
	block = z.Block
	zones := (g.Rows + block - 1) / block
	z.zones = zones
	z.rows = g.Rows
	z.mins = make([]data.Value, zones*g.Width)
	z.maxs = make([]data.Value, zones*g.Width)
	d, stride := g.Data, g.Stride
	for zi := 0; zi < zones; zi++ {
		lo := zi * block
		hi := lo + block
		if hi > g.Rows {
			hi = g.Rows
		}
		for off := 0; off < g.Width; off++ {
			mn := d[lo*stride+off]
			mx := mn
			for r := lo + 1; r < hi; r++ {
				v := d[r*stride+off]
				if v < mn {
					mn = v
				}
				if v > mx {
					mx = v
				}
			}
			z.mins[zi*g.Width+off] = mn
			z.maxs[zi*g.Width+off] = mx
			if zi == 0 || mn < z.allMin[off] {
				z.allMin[off] = mn
			}
			if zi == 0 || mx > z.allMax[off] {
				z.allMax[off] = mx
			}
		}
	}
	return z
}

// ExtendRow folds one appended mini-tuple (values in the group's attribute
// offset order, padding excluded) into the map: the last zone's min/max are
// widened, or a fresh zone is opened at the block boundary. This keeps zone
// maps exact under tail-segment appends without any rebuild.
func (z *ZoneMap) ExtendRow(vals []data.Value) {
	zi := z.rows / z.Block
	if zi == z.zones {
		// Crossing a block boundary: open a new zone seeded with this row.
		z.zones++
		z.mins = append(z.mins, vals[:z.width]...)
		z.maxs = append(z.maxs, vals[:z.width]...)
	} else {
		base := zi * z.width
		for off := 0; off < z.width; off++ {
			v := vals[off]
			if v < z.mins[base+off] {
				z.mins[base+off] = v
			}
			if v > z.maxs[base+off] {
				z.maxs[base+off] = v
			}
		}
	}
	for off := 0; off < z.width; off++ {
		v := vals[off]
		if z.rows == 0 || v < z.allMin[off] {
			z.allMin[off] = v
		}
		if z.rows == 0 || v > z.allMax[off] {
			z.allMax[off] = v
		}
	}
	z.rows++
}

// Zones returns the number of blocks.
func (z *ZoneMap) Zones() int { return z.zones }

// Rows returns the number of rows the map summarizes.
func (z *ZoneMap) Rows() int { return z.rows }

// ZoneRange returns the row span of zone zi, clamped to rows.
func (z *ZoneMap) ZoneRange(zi, rows int) (lo, hi int) {
	lo = zi * z.Block
	hi = lo + z.Block
	if hi > rows {
		hi = rows
	}
	return lo, hi
}

// MayMatch reports whether any value of the attribute at word offset off in
// zone zi can satisfy "value op v". False means the whole block is safely
// skippable.
func (z *ZoneMap) MayMatch(zi, off int, op expr.CmpOp, v data.Value) bool {
	return boundsMayMatch(z.mins[zi*z.width+off], z.maxs[zi*z.width+off], op, v)
}

// MayMatchAny reports whether any row of the whole group can satisfy
// "value op v", using the group-level bounds. False on an empty map: a
// segment with no rows trivially has no matches.
func (z *ZoneMap) MayMatchAny(off int, op expr.CmpOp, v data.Value) bool {
	if z.rows == 0 {
		return false
	}
	return boundsMayMatch(z.allMin[off], z.allMax[off], op, v)
}

func boundsMayMatch(mn, mx data.Value, op expr.CmpOp, v data.Value) bool {
	switch op {
	case expr.Lt:
		return mn < v
	case expr.Le:
		return mn <= v
	case expr.Gt:
		return mx > v
	case expr.Ge:
		return mx >= v
	case expr.Eq:
		return mn <= v && v <= mx
	case expr.Ne:
		return mn != v || mx != v
	default:
		return true
	}
}
