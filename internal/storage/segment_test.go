package storage

import (
	"testing"

	"h2o/internal/data"
	"h2o/internal/expr"
)

// segTable builds a time-ordered table (attr 0 equals the row index) so
// segment boundaries land on known values.
func segTable(t *testing.T, attrs, rows int) *data.Table {
	t.Helper()
	return data.GenerateTimeSeries(data.SyntheticSchema("R", attrs), rows, 99)
}

func TestRelationSplitsIntoSegments(t *testing.T) {
	tb := segTable(t, 4, 1000)
	rel := BuildColumnMajorSeg(tb, 256)
	if len(rel.Segments) != 4 { // 256+256+256+232
		t.Fatalf("segments = %d, want 4", len(rel.Segments))
	}
	for si, seg := range rel.Segments[:3] {
		if seg.Rows != 256 {
			t.Fatalf("interior segment %d has %d rows", si, seg.Rows)
		}
	}
	if rel.Tail().Rows != 232 {
		t.Fatalf("tail rows = %d", rel.Tail().Rows)
	}
	// Data is intact across boundaries: segment-local row s maps to global
	// row base+s.
	base := 0
	for _, seg := range rel.Segments {
		for a := 0; a < 4; a++ {
			g, err := seg.GroupFor(data.AttrID(a))
			if err != nil {
				t.Fatal(err)
			}
			for r := 0; r < seg.Rows; r += 37 {
				if g.Value(r, a) != tb.Value(base+r, a) {
					t.Fatalf("segment value mismatch at global row %d attr %d", base+r, a)
				}
			}
		}
		base += seg.Rows
	}
}

// TestAppendRollsOverIntoFreshTail is the core tail invariant: appends fill
// the tail to capacity, seal it, and continue in a fresh tail carrying the
// same layout, leaving sealed segments untouched.
func TestAppendRollsOverIntoFreshTail(t *testing.T) {
	tb := segTable(t, 3, 10)
	rel, err := NewRelationSeg(tb.Schema, tb.Rows,
		[]*ColumnGroup{BuildGroup(tb, []data.AttrID{0, 1}), BuildGroup(tb, []data.AttrID{2})}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Segments) != 1 {
		t.Fatalf("segments = %d", len(rel.Segments))
	}
	sealed := rel.Segments[0]
	sealedVersionBefore := sealed.Version()

	// 6 appends fill the tail to 16; the 7th must open a fresh one.
	for i := 0; i < 7; i++ {
		v := data.Value(1000 + i)
		if err := rel.Append([]data.Value{v, v + 1, v + 2}); err != nil {
			t.Fatal(err)
		}
	}
	if len(rel.Segments) != 2 {
		t.Fatalf("segments after rollover = %d, want 2", len(rel.Segments))
	}
	if sealed.Rows != 16 || rel.Tail().Rows != 1 || rel.Rows != 17 {
		t.Fatalf("rows: sealed=%d tail=%d total=%d", sealed.Rows, rel.Tail().Rows, rel.Rows)
	}
	// The fresh tail clones the layout.
	if rel.Tail().LayoutSignature() != sealed.LayoutSignature() {
		t.Fatalf("tail layout %q differs from sealed %q", rel.Tail().LayoutSignature(), sealed.LayoutSignature())
	}
	// The sealed segment's version advanced while it absorbed appends, and
	// the rolled-over value landed in the tail.
	if sealed.Version() <= sealedVersionBefore {
		t.Fatal("sealed segment version did not advance during its tail phase")
	}
	g, _ := rel.Tail().GroupFor(0)
	if g.Value(0, 0) != 1006 {
		t.Fatalf("tail row 0 attr 0 = %d, want 1006", g.Value(0, 0))
	}
	// Zone maps extended incrementally: the tail knows its exact bounds.
	if rel.Tail().MayMatch(0, expr.Gt, 1006) {
		t.Fatal("tail zone map should rule out values above its max")
	}
	if !rel.Tail().MayMatch(0, expr.Eq, 1006) {
		t.Fatal("tail zone map lost its own max")
	}
}

func TestAppendBatchCrossesMultipleBoundaries(t *testing.T) {
	tb := segTable(t, 2, 4)
	rel := BuildColumnMajorSeg(tb, 8)
	var batch [][]data.Value
	for i := 0; i < 30; i++ {
		batch = append(batch, []data.Value{data.Value(100 + i), data.Value(i)})
	}
	if err := rel.AppendBatch(batch); err != nil {
		t.Fatal(err)
	}
	if rel.Rows != 34 {
		t.Fatalf("rows = %d", rel.Rows)
	}
	if len(rel.Segments) != 5 { // ceil(34/8) = 5: 8,8,8,8,2
		t.Fatalf("segments = %d, want 5", len(rel.Segments))
	}
	for si, seg := range rel.Segments[:4] {
		if seg.Rows != 8 {
			t.Fatalf("segment %d rows = %d", si, seg.Rows)
		}
	}
	// Checksum across the whole relation matches a straight rebuild.
	want := data.SyntheticSchema("R", 2)
	_ = want
	g, _ := rel.Segments[2].GroupFor(0)
	// Global row 16+3 = batch index 15 -> value 115.
	if g.Value(3, 0) != 115 {
		t.Fatalf("mid-batch value wrong: %d", g.Value(3, 0))
	}
	// A ragged batch leaves everything untouched.
	before := rel.Version()
	if err := rel.AppendBatch([][]data.Value{{1, 2}, {3}}); err == nil {
		t.Fatal("ragged batch accepted")
	}
	if rel.Version() != before || rel.Rows != 34 {
		t.Fatal("failed batch mutated the relation")
	}
}

// TestStitchSegMidRelation reorganizes a single interior segment: the new
// group holds exactly that segment's rows and registers without touching
// any other segment.
func TestStitchSegMidRelation(t *testing.T) {
	tb := segTable(t, 6, 1024)
	rel := BuildColumnMajorSeg(tb, 256)
	mid := rel.Segments[2] // global rows [512, 768)
	otherVersions := []uint64{rel.Segments[0].Version(), rel.Segments[1].Version(), rel.Segments[3].Version()}

	g, err := StitchSeg(mid, []data.AttrID{1, 3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if g.Rows != 256 {
		t.Fatalf("stitched rows = %d", g.Rows)
	}
	for r := 0; r < 256; r++ {
		for _, a := range []data.AttrID{1, 3, 5} {
			if g.Value(r, a) != tb.Value(512+r, a) {
				t.Fatalf("stitched value mismatch at seg row %d attr %d", r, a)
			}
		}
	}
	if err := mid.AddGroup(g); err != nil {
		t.Fatal(err)
	}
	if _, ok := mid.ExactGroup([]data.AttrID{1, 3, 5}); !ok {
		t.Fatal("mid segment lost its new group")
	}
	// Mixed layout: the relation-level ExactGroup must report false, and the
	// other segments must be untouched.
	if _, ok := rel.ExactGroup([]data.AttrID{1, 3, 5}); ok {
		t.Fatal("relation-level ExactGroup must require the group everywhere")
	}
	for i, si := range []int{0, 1, 3} {
		if rel.Segments[si].Version() != otherVersions[i] {
			t.Fatalf("segment %d version changed by a foreign reorg", si)
		}
		if _, ok := rel.Segments[si].ExactGroup([]data.AttrID{1, 3, 5}); ok {
			t.Fatalf("segment %d gained a group it never stitched", si)
		}
	}
	if rel.Uniform() {
		t.Fatal("relation should report a mixed layout")
	}
	// Project from the segment-local group works too.
	sub, err := Project(g, []data.AttrID{3})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Rows != 256 || sub.Value(10, 3) != tb.Value(522, 3) {
		t.Fatal("projection from a mid-relation segment group wrong")
	}
}

// TestZoneMapPruningAtSegmentEdges checks the exact-boundary semantics of
// segment pruning on append-ordered data: attribute 0 equals the global row
// index, so segment si spans values [si*cap, (si+1)*cap).
func TestZoneMapPruningAtSegmentEdges(t *testing.T) {
	tb := segTable(t, 2, 1024)
	rel := BuildColumnMajorSeg(tb, 256)
	seg1 := rel.Segments[1] // values [256, 512)

	cases := []struct {
		op   expr.CmpOp
		v    data.Value
		want bool
	}{
		{expr.Lt, 256, false}, // strictly below the segment's min
		{expr.Le, 256, true},  // touches exactly the first row
		{expr.Lt, 257, true},
		{expr.Gt, 511, false}, // strictly above the segment's max
		{expr.Ge, 511, true},  // touches exactly the last row
		{expr.Eq, 256, true},
		{expr.Eq, 511, true},
		{expr.Eq, 512, false}, // first value of the *next* segment
		{expr.Eq, 255, false}, // last value of the *previous* segment
	}
	for _, c := range cases {
		if got := seg1.MayMatch(0, c.op, c.v); got != c.want {
			t.Errorf("seg[256,512) MayMatch(a0 %v %d) = %v, want %v", c.op, c.v, got, c.want)
		}
	}
	// The uniform attribute never prunes.
	if !seg1.MayMatch(1, expr.Lt, data.ValueHi) {
		t.Error("uniform attribute should not prune a full-range predicate")
	}
	// An attribute with no zone-mapped group is conservatively scannable,
	// and an empty segment is always prunable.
	empty := &Segment{rel: rel}
	if empty.MayMatch(0, expr.Eq, 1) {
		t.Error("empty segment cannot match anything")
	}
}

func TestRelationAddDropGroupSpansSegments(t *testing.T) {
	tb := segTable(t, 4, 600)
	rel := BuildColumnMajorSeg(tb, 256)
	full, err := Stitch(rel, []data.AttrID{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.AddGroup(full); err != nil {
		t.Fatal(err)
	}
	for si, seg := range rel.Segments {
		g, ok := seg.ExactGroup([]data.AttrID{1, 2})
		if !ok {
			t.Fatalf("segment %d missing the sliced group", si)
		}
		if g.Rows != seg.Rows {
			t.Fatalf("segment %d slice rows = %d, want %d", si, g.Rows, seg.Rows)
		}
	}
	if !rel.Uniform() {
		t.Fatal("relation should stay uniform after a relation-level AddGroup")
	}
	if !rel.DropGroup(full) {
		t.Fatal("DropGroup refused the redundant group")
	}
	for si, seg := range rel.Segments {
		if _, ok := seg.ExactGroup([]data.AttrID{1, 2}); ok {
			t.Fatalf("segment %d kept the dropped group", si)
		}
	}
	// Dropping a sole cover is refused atomically.
	g0, _ := rel.GroupFor(0)
	if rel.DropGroup(g0) {
		t.Fatal("dropped the only cover of attribute 0")
	}
}

func TestMaterializeGroupIsSegmentLocal(t *testing.T) {
	tb := segTable(t, 4, 512)
	rel := BuildColumnMajorSeg(tb, 256)
	// Pre-adapt segment 1 by hand; MaterializeGroup must skip it.
	g1, err := StitchSeg(rel.Segments[1], []data.AttrID{0, 3})
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.Segments[1].AddGroup(g1); err != nil {
		t.Fatal(err)
	}
	if err := rel.MaterializeGroup([]data.AttrID{0, 3}); err != nil {
		t.Fatal(err)
	}
	got, ok := rel.Segments[1].ExactGroup([]data.AttrID{0, 3})
	if !ok || got != g1 {
		t.Fatal("MaterializeGroup re-stitched an already-adapted segment")
	}
	if _, ok := rel.ExactGroup([]data.AttrID{0, 3}); !ok {
		t.Fatal("MaterializeGroup did not cover the remaining segments")
	}
	// The logical content is unchanged.
	before, err := Checksum(BuildColumnMajorSeg(tb, 256), []data.AttrID{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	after, err := Checksum(rel, []data.AttrID{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if before != after {
		t.Fatal("segment-local reorganization changed the logical relation")
	}
}

func TestZoneMapExtendRowMatchesRebuild(t *testing.T) {
	tb := segTable(t, 3, 0)
	rel, err := NewRelationSeg(tb.Schema, 0, []*ColumnGroup{
		NewGroup([]data.AttrID{0, 1}, 0), NewGroup([]data.AttrID{2}, 0),
	}, 64)
	if err != nil {
		t.Fatal(err)
	}
	vals := []data.Value{7, -3, 12, 0, 900, -900, 55, 55, 1}
	for i := 0; i < 200; i++ {
		v := vals[i%len(vals)] + data.Value(i/3)
		if err := rel.Append([]data.Value{v, -v, v * 2}); err != nil {
			t.Fatal(err)
		}
	}
	// Every group's incrementally-extended zone map must equal a rebuild.
	for si, seg := range rel.Segments {
		for _, g := range seg.Groups {
			inc := g.Zones()
			fresh := BuildZoneMap(g, inc.Block)
			if inc.Zones() != fresh.Zones() || inc.Rows() != fresh.Rows() {
				t.Fatalf("segment %d group %v: zones=%d/%d rows=%d/%d", si, g.Attrs,
					inc.Zones(), fresh.Zones(), inc.Rows(), fresh.Rows())
			}
			for zi := 0; zi < inc.Zones(); zi++ {
				for off := 0; off < g.Width; off++ {
					for _, op := range []expr.CmpOp{expr.Lt, expr.Gt, expr.Eq} {
						for _, probe := range []data.Value{-1000, -1, 0, 1, 56, 967} {
							if inc.MayMatch(zi, off, op, probe) != fresh.MayMatch(zi, off, op, probe) {
								t.Fatalf("zone %d off %d op %v probe %d: incremental and rebuilt maps disagree", zi, off, op, probe)
							}
						}
					}
				}
			}
		}
	}
}
