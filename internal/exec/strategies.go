package exec

import (
	"errors"
	"fmt"

	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// ErrUnsupported is returned by a specialized strategy that cannot execute
// the query's shape (e.g. disjunctive predicates); the engine falls back to
// the generic interpreted operator, exactly as a real system falls back from
// generated code to its interpreter.
var ErrUnsupported = errors.New("exec: query shape not supported by this strategy")

// StrategyStats accumulates observability counters for one execution.
type StrategyStats struct {
	IntermediateWords int // values materialized into intermediates
	SegmentsScanned   int // segments the strategy actually read
	SegmentsPruned    int // segments skipped entirely via their zone maps
	SegmentsFaulted   int // spilled segments paged in from disk for this scan
	// DecodeSkips counts encoded blocks whose payload was never decoded:
	// either skipped outright because the block's exact min/max header
	// ruled the predicates out, or folded into aggregates from the
	// header's min/max/sum/rows statistics alone.
	DecodeSkips int
	// EncodedBytes counts the encoded payload bytes actually consumed —
	// predicate-scanned in encoded form or decoded for a fold. Comparing
	// it to the flat byte volume shows what the encoded kernels saved.
	EncodedBytes int64
	// Touched lists the indices of the segments the strategy actually read
	// (pruned and empty segments excluded), in ascending segment order —
	// the touch set behind segment-precise result caching and invalidation
	// tests. len(Touched) == SegmentsScanned.
	Touched []int
}

// touch records one actually-scanned segment.
func (st *StrategyStats) touch(si int) {
	if st == nil {
		return
	}
	st.SegmentsScanned++
	st.Touched = append(st.Touched, si)
}

// segPruned reports whether the conjunction of preds cannot match any row
// of seg, per the segment's zone maps: the whole segment is skippable when
// some term is unsatisfiable over the segment's value bounds.
func segPruned(seg *storage.Segment, preds []ColPred) bool {
	for i := range preds {
		p := &preds[i]
		if !seg.MayMatch(p.Attr, p.Op, p.Val) {
			return true
		}
	}
	return false
}

// QueryTouchesSegment reports whether executing q would read seg: false
// only when the query's conjunctive predicates are ruled out by the
// segment's zone maps. Non-splittable predicate shapes conservatively
// report true. The engine uses it to treat the triggering query's segments
// as hot during incremental reorganization. Callers checking many segments
// should split the predicate once and use SegmentTouched instead.
func QueryTouchesSegment(seg *storage.Segment, q *query.Query) bool {
	preds, splittable := SplitConjunction(q.Where)
	return SegmentTouched(seg, preds, splittable)
}

// SegmentTouched is QueryTouchesSegment with the conjunction pre-split:
// preds and splittable come from one SplitConjunction(q.Where) call hoisted
// out of the caller's per-segment loop (fingerprinting runs this check once
// per segment on every cache admission).
func SegmentTouched(seg *storage.Segment, preds []ColPred, splittable bool) bool {
	if seg.Rows == 0 {
		return false
	}
	if !splittable || len(preds) == 0 {
		return true
	}
	return !segPruned(seg, preds)
}

// limitFor returns the early-exit row target: q.Limit for shapes that
// materialize one output row per qualifying tuple, 0 (no early exit) for
// aggregates, which must consume every segment.
func limitFor(out Outputs, q *query.Query) int {
	if out.Kind == OutProjection || out.Kind == OutExpression {
		return q.Limit
	}
	return 0
}

// ExecRow executes q with the volcano-style row strategy over a single group
// g that must store every attribute the query touches: one fused
// tuple-at-a-time loop with predicate push-down (paper Figure 5). It is the
// per-group kernel; the row pipeline (Exec with StrategyRow) drives it
// across a relation's segments.
func ExecRow(g *storage.ColumnGroup, q *query.Query) (*Result, error) {
	if !g.HasAll(q.AllAttrs()) {
		return nil, fmt.Errorf("exec: group %v does not cover query attributes %v", g.Attrs, q.AllAttrs())
	}
	out := Classify(q)
	if out.Kind == OutOther {
		return nil, ErrUnsupported
	}
	preds, splittable := SplitConjunction(q.Where)
	if !splittable {
		return nil, ErrUnsupported
	}
	bound, ok := BindPreds(g, preds)
	if !ok {
		return nil, fmt.Errorf("exec: predicate attributes missing from group %v", g.Attrs)
	}
	p := scanRange(g, out, bound, nil, 0, g.Rows)
	return mergePartials(out, []*partial{p}), nil
}

// mergePartials combines per-segment partials in segment order: aggregate
// states merge associatively, materialized rows concatenate.
func mergePartials(out Outputs, partials []*partial) *Result {
	switch out.Kind {
	case OutAggregates, OutAggExpression:
		states := newStates(out)
		for _, p := range partials {
			for i, st := range p.states {
				states[i].Merge(st)
			}
		}
		return aggResult(out.Labels, states)
	case OutGrouped:
		ga := newGroupedAcc(out)
		for _, p := range partials {
			if p.groups != nil {
				ga.mergeMap(p.groups.m)
			}
		}
		return groupedResult(out, ga)
	default:
		res := &Result{Cols: out.Labels}
		total := 0
		for _, p := range partials {
			total += len(p.data)
		}
		res.Data = make([]data.Value, 0, total)
		for _, p := range partials {
			res.Data = append(res.Data, p.data...)
			res.Rows += p.rows
		}
		return res
	}
}

// columnSegPartial is the column pipeline's per-segment operator: the
// late-materialization stages over one pinned segment, emitted as that
// segment's partial.
func columnSegPartial(seg *storage.Segment, out Outputs, preds []ColPred, stats *StrategyStats) (*partial, error) {
	states := newStates(out)
	var ga *groupedAcc
	if out.Kind == OutGrouped {
		ga = newGroupedAcc(out)
	}
	res := &Result{}
	if err := columnScanSegment(seg, out, preds, states, res, ga, stats); err != nil {
		return nil, err
	}
	return &partial{states: states, data: res.Data, rows: res.Rows, groups: ga}, nil
}

// columnScanSegment runs the late-materialization pipeline over one segment,
// appending materialized rows to res and folding aggregates into states (or
// into the grouped accumulator ga for OutGrouped).
func columnScanSegment(seg *storage.Segment, out Outputs, preds []ColPred, states []*expr.AggState, res *Result, ga *groupedAcc, stats *StrategyStats) error {
	// Phase 1: predicate evaluation, one column at a time.
	var sel []int32
	haveSel := false
	for i, p := range preds {
		g, err := seg.GroupFor(p.Attr)
		if err != nil {
			return err
		}
		off, _ := g.Offset(p.Attr)
		gp := []GroupPred{{Off: off, Op: p.Op, Val: p.Val}}
		if !haveSel {
			sel = FilterGroup(g, gp, 0, seg.Rows, make([]int32, 0, seg.Rows/4+16))
			haveSel = true
			continue
		}
		// Materialize the qualifying values of the next predicate column
		// into an intermediate column, then evaluate the predicate over it —
		// the late-materialization pipeline of §2.1.
		inter := make([]data.Value, len(sel))
		GatherColumn(g, off, sel, inter)
		if stats != nil {
			stats.IntermediateWords += len(inter)
		}
		w := 0
		for j, v := range inter {
			if expr.Compare(p.Op, v, p.Val) {
				sel[w] = sel[j]
				w++
			}
		}
		sel = sel[:w]
		_ = i
	}

	// Phase 2: compute outputs.
	switch out.Kind {
	case OutAggregates:
		for i, a := range out.AggAttrs {
			g, err := seg.GroupFor(a)
			if err != nil {
				return err
			}
			off, _ := g.Offset(a)
			if haveSel {
				foldSel(states[i], g, off, sel)
			} else {
				foldRange(states[i], g, off, 0, seg.Rows)
			}
		}
		return nil

	case OutGrouped:
		return foldGroupedSel(seg, out, ga, sel, haveSel)

	case OutProjection:
		cols, n, err := gatherOutputColumns(seg, out.ProjAttrs, sel, haveSel, stats)
		if err != nil {
			return err
		}
		// Tuple reconstruction: stitch the intermediate columns row-major.
		w := len(cols)
		base := len(res.Data)
		res.Data = append(res.Data, make([]data.Value, n*w)...)
		for j, col := range cols {
			for i, v := range col {
				res.Data[base+i*w+j] = v
			}
		}
		res.Rows += n
		return nil

	case OutExpression, OutAggExpression:
		cols, n, err := gatherOutputColumns(seg, out.ExprAttrs, sel, haveSel, stats)
		if err != nil {
			return err
		}
		// Pairwise materialization (§3.3): a+b+c produces an intermediate
		// column per addition. A single arena backs all intermediates — the
		// strategy's cost is the materialization *traffic*, not allocator
		// churn.
		var final []data.Value
		if len(cols) == 1 {
			final = make([]data.Value, n)
			copy(final, cols[0])
		} else {
			arena := make([]data.Value, (len(cols)-1)*n)
			acc := cols[0]
			for step, next := range cols[1:] {
				inter := arena[step*n : (step+1)*n]
				for i := range inter {
					inter[i] = acc[i] + next[i]
				}
				acc = inter
			}
			final = acc
			if stats != nil {
				stats.IntermediateWords += (len(cols) - 1) * n
			}
		}
		if out.Kind == OutExpression {
			res.Data = append(res.Data, final...)
			res.Rows += n
			return nil
		}
		for _, v := range final {
			states[0].Add(v)
		}
		return nil
	}
	return ErrUnsupported
}

// gatherOutputColumns materializes one intermediate column per needed
// attribute of one segment, filtered through sel when haveSel is true. All
// columns share a single arena allocation.
func gatherOutputColumns(seg *storage.Segment, attrs []data.AttrID, sel []int32, haveSel bool, stats *StrategyStats) ([][]data.Value, int, error) {
	n := seg.Rows
	if haveSel {
		n = len(sel)
	}
	arena := make([]data.Value, len(attrs)*n)
	cols := make([][]data.Value, len(attrs))
	for i, a := range attrs {
		g, err := seg.GroupFor(a)
		if err != nil {
			return nil, 0, err
		}
		off, _ := g.Offset(a)
		col := arena[i*n : (i+1)*n]
		if haveSel {
			GatherColumn(g, off, sel, col)
		} else {
			d, stride := g.Data, g.Stride
			idx := off
			for r := 0; r < n; r++ {
				col[r] = d[idx]
				idx += stride
			}
		}
		if stats != nil {
			stats.IntermediateWords += n
		}
		cols[i] = col
	}
	return cols, n, nil
}

// hybridSegPartial is the hybrid pipeline's per-segment operator: the
// multi-group selection-vector stages over one pinned segment, emitted as
// that segment's partial. The reorg pipeline reuses it for cold segments
// (with nil stats — intermediate accounting belongs to the cost-compared
// strategies).
func hybridSegPartial(seg *storage.Segment, q *query.Query, out Outputs, preds []ColPred, stats *StrategyStats) (*partial, error) {
	states := newStates(out)
	var ga *groupedAcc
	if out.Kind == OutGrouped {
		ga = newGroupedAcc(out)
	}
	res := &Result{}
	if err := hybridScanSegment(seg, q, out, preds, states, res, ga, stats); err != nil {
		return nil, err
	}
	return &partial{states: states, data: res.Data, rows: res.Rows, groups: ga}, nil
}

// hybridScanSegment runs the multi-group selection-vector strategy over one
// segment, resolving groups against that segment's own layout.
func hybridScanSegment(seg *storage.Segment, q *query.Query, out Outputs, preds []ColPred, states []*expr.AggState, res *Result, ga *groupedAcc, stats *StrategyStats) error {
	_, assign, err := seg.CoveringGroups(q.AllAttrs())
	if err != nil {
		return err
	}

	// Group predicates by the group that will evaluate them, preserving
	// first-seen group order so the most selective-first heuristics of the
	// caller are honored.
	type predGroup struct {
		g     *storage.ColumnGroup
		preds []GroupPred
	}
	var pgs []predGroup
	byGroup := map[*storage.ColumnGroup]int{}
	for _, p := range preds {
		g := assign[p.Attr]
		off, _ := g.Offset(p.Attr)
		i, seen := byGroup[g]
		if !seen {
			i = len(pgs)
			byGroup[g] = i
			pgs = append(pgs, predGroup{g: g})
		}
		pgs[i].preds = append(pgs[i].preds, GroupPred{Off: off, Op: p.Op, Val: p.Val})
	}

	var sel []int32
	haveSel := len(pgs) > 0
	for i, pg := range pgs {
		if i == 0 {
			sel = FilterGroup(pg.g, pg.preds, 0, seg.Rows, make([]int32, 0, seg.Rows/4+16))
			if stats != nil {
				stats.IntermediateWords += len(sel) / 2 // int32 ids, in words
			}
			continue
		}
		sel = RefineSel(pg.g, pg.preds, sel)
	}

	switch out.Kind {
	case OutAggregates:
		for i, a := range out.AggAttrs {
			g := assign[a]
			off, _ := g.Offset(a)
			if haveSel {
				foldSel(states[i], g, off, sel)
			} else {
				foldRange(states[i], g, off, 0, seg.Rows)
			}
		}
		return nil

	case OutGrouped:
		return foldGroupedSel(seg, out, ga, sel, haveSel)

	case OutProjection:
		n := seg.Rows
		if haveSel {
			n = len(sel)
		}
		w := len(out.ProjAttrs)
		base := len(res.Data)
		res.Data = append(res.Data, make([]data.Value, n*w)...)
		for j, a := range out.ProjAttrs {
			g := assign[a]
			off, _ := g.Offset(a)
			d, stride := g.Data, g.Stride
			if haveSel {
				for i, r := range sel {
					res.Data[base+i*w+j] = d[int(r)*stride+off]
				}
			} else {
				for r := 0; r < n; r++ {
					res.Data[base+r*w+j] = d[r*stride+off]
				}
			}
		}
		res.Rows += n
		return nil

	case OutExpression, OutAggExpression:
		n := seg.Rows
		if haveSel {
			n = len(sel)
		}
		acc := make([]data.Value, n)
		// Partial sums per group: each group contributes its share of the
		// expression in one fused pass — no per-pair intermediates.
		perGroup := map[*storage.ColumnGroup][]int{}
		var order []*storage.ColumnGroup
		for _, a := range out.ExprAttrs {
			g := assign[a]
			off, _ := g.Offset(a)
			if _, seen := perGroup[g]; !seen {
				order = append(order, g)
			}
			perGroup[g] = append(perGroup[g], off)
		}
		tmp := make([]data.Value, n)
		for _, g := range order {
			offs := perGroup[g]
			if haveSel {
				SumOffsetsSel(g, offs, sel, tmp)
			} else {
				SumOffsetsAll(g, offs, tmp)
			}
			for i := range acc {
				acc[i] += tmp[i]
			}
		}
		if out.Kind == OutExpression {
			res.Data = append(res.Data, acc...)
			res.Rows += n
			return nil
		}
		for _, v := range acc {
			states[0].Add(v)
		}
		return nil
	}
	return ErrUnsupported
}

// genericSegmentScan is the per-segment body of the generic interpreter: a
// tuple-at-a-time loop over one pinned segment, evaluating the predicate
// tree and select expressions through per-attribute accessor indirection.
// Aggregate items fold into states (one per select item, in item order);
// non-aggregate outputs append to res. The partial-result layer reuses it
// with fresh per-segment states to compute SegPartials on layouts or query
// shapes the fused kernels cannot serve.
func genericSegmentScan(seg *storage.Segment, q *query.Query, hasAgg bool, states []*expr.AggState, res *Result) error {
	_, assign, err := seg.CoveringGroups(q.AllAttrs())
	if err != nil {
		return err
	}
	type binding struct {
		d      []data.Value
		stride int
		off    int
	}
	binds := map[data.AttrID]binding{}
	for a, g := range assign {
		off, _ := g.Offset(a)
		binds[a] = binding{d: g.Data, stride: g.Stride, off: off}
	}
	row := 0
	get := func(a data.AttrID) data.Value {
		b := binds[a]
		return b.d[row*b.stride+b.off]
	}
	for row = 0; row < seg.Rows; row++ {
		if q.Where != nil && !q.Where.EvalBool(get) {
			continue
		}
		if hasAgg {
			for i, it := range q.Items {
				if it.Agg != nil {
					states[i].Add(it.Agg.Arg.Eval(get))
				}
			}
		} else {
			for _, it := range q.Items {
				res.Data = append(res.Data, it.Expr.Eval(get))
			}
			res.Rows++
		}
	}
	return nil
}

func aggResult(labels []string, states []*expr.AggState) *Result {
	res := &Result{Cols: labels, Rows: 1, Data: make([]data.Value, len(states))}
	for i, s := range states {
		res.Data[i] = s.Result()
	}
	return res
}

func mustOffsets(g *storage.ColumnGroup, attrs []data.AttrID) []int {
	offs := make([]int, len(attrs))
	for i, a := range attrs {
		off, ok := g.Offset(a)
		if !ok {
			panic(fmt.Sprintf("exec: attribute %d not in group %v", a, g.Attrs))
		}
		offs[i] = off
	}
	return offs
}
