package exec

import (
	"errors"
	"fmt"

	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// ErrUnsupported is returned by a specialized strategy that cannot execute
// the query's shape (e.g. disjunctive predicates); the engine falls back to
// the generic interpreted operator, exactly as a real system falls back from
// generated code to its interpreter.
var ErrUnsupported = errors.New("exec: query shape not supported by this strategy")

// ExecRow executes q with the volcano-style row strategy over a single group
// g that must store every attribute the query touches: one fused
// tuple-at-a-time loop with predicate push-down (paper Figure 5).
func ExecRow(g *storage.ColumnGroup, q *query.Query) (*Result, error) {
	if !g.HasAll(q.AllAttrs()) {
		return nil, fmt.Errorf("exec: group %v does not cover query attributes %v", g.Attrs, q.AllAttrs())
	}
	out := Classify(q)
	if out.Kind == OutOther {
		return nil, ErrUnsupported
	}
	preds, splittable := SplitConjunction(q.Where)
	if !splittable {
		return nil, ErrUnsupported
	}
	bound, ok := BindPreds(g, preds)
	if !ok {
		return nil, fmt.Errorf("exec: predicate attributes missing from group %v", g.Attrs)
	}

	d, stride, rows := g.Data, g.Stride, g.Rows
	switch out.Kind {
	case OutProjection:
		offs := mustOffsets(g, out.ProjAttrs)
		w := len(offs)
		res := &Result{Cols: out.Labels}
		base := 0
		for r := 0; r < rows; r++ {
			if passes(d, base, bound) {
				for _, o := range offs {
					res.Data = append(res.Data, d[base+o])
				}
				res.Rows++
			}
			base += stride
		}
		_ = w
		return res, nil

	case OutAggregates:
		offs := mustOffsets(g, out.AggAttrs)
		states := make([]*expr.AggState, len(offs))
		for i, op := range out.AggOps {
			states[i] = expr.NewAggState(op)
		}
		base := 0
		for r := 0; r < rows; r++ {
			if passes(d, base, bound) {
				for i, o := range offs {
					states[i].Add(d[base+o])
				}
			}
			base += stride
		}
		return aggResult(out.Labels, states), nil

	case OutExpression:
		offs := mustOffsets(g, out.ExprAttrs)
		res := &Result{Cols: out.Labels}
		base := 0
		for r := 0; r < rows; r++ {
			if passes(d, base, bound) {
				var acc data.Value
				for _, o := range offs {
					acc += d[base+o]
				}
				res.Data = append(res.Data, acc)
				res.Rows++
			}
			base += stride
		}
		return res, nil

	case OutAggExpression:
		offs := mustOffsets(g, out.ExprAttrs)
		state := expr.NewAggState(out.ExprAgg)
		base := 0
		for r := 0; r < rows; r++ {
			if passes(d, base, bound) {
				var acc data.Value
				for _, o := range offs {
					acc += d[base+o]
				}
				state.Add(acc)
			}
			base += stride
		}
		return aggResult(out.Labels, []*expr.AggState{state}), nil
	}
	return nil, ErrUnsupported
}

// ExecColumn executes q with the column-at-a-time, late-materialization
// strategy (paper §2.1): predicates produce selection vectors one column at
// a time, qualifying values are materialized into intermediate columns, and
// multi-column outputs pay tuple reconstruction.
//
// Stats, when non-nil, receives the volume of intermediate results the
// strategy materialized.
func ExecColumn(rel *storage.Relation, q *query.Query, stats *StrategyStats) (*Result, error) {
	out := Classify(q)
	if out.Kind == OutOther {
		return nil, ErrUnsupported
	}
	preds, splittable := SplitConjunction(q.Where)
	if !splittable {
		return nil, ErrUnsupported
	}

	// Phase 1: predicate evaluation, one column at a time.
	var sel []int32
	haveSel := false
	for i, p := range preds {
		g, err := rel.GroupFor(p.Attr)
		if err != nil {
			return nil, err
		}
		off, _ := g.Offset(p.Attr)
		gp := []GroupPred{{Off: off, Op: p.Op, Val: p.Val}}
		if !haveSel {
			sel = FilterGroup(g, gp, 0, g.Rows, make([]int32, 0, g.Rows/4+16))
			haveSel = true
			continue
		}
		// Materialize the qualifying values of the next predicate column
		// into an intermediate column, then evaluate the predicate over it —
		// the late-materialization pipeline of §2.1.
		inter := make([]data.Value, len(sel))
		GatherColumn(g, off, sel, inter)
		if stats != nil {
			stats.IntermediateWords += len(inter)
		}
		w := 0
		for j, v := range inter {
			if expr.Compare(p.Op, v, p.Val) {
				sel[w] = sel[j]
				w++
			}
		}
		sel = sel[:w]
		_ = i
	}

	// Phase 2: compute outputs.
	switch out.Kind {
	case OutAggregates:
		vals := make([]data.Value, len(out.AggAttrs))
		for i, a := range out.AggAttrs {
			g, err := rel.GroupFor(a)
			if err != nil {
				return nil, err
			}
			off, _ := g.Offset(a)
			if haveSel {
				vals[i] = AggColumnSel(g, off, out.AggOps[i], sel)
			} else {
				vals[i] = AggColumnAll(g, off, out.AggOps[i])
			}
		}
		return &Result{Cols: out.Labels, Rows: 1, Data: vals}, nil

	case OutProjection:
		cols, n, err := gatherOutputColumns(rel, out.ProjAttrs, sel, haveSel, stats)
		if err != nil {
			return nil, err
		}
		// Tuple reconstruction: stitch the intermediate columns row-major.
		res := &Result{Cols: out.Labels, Rows: n, Data: make([]data.Value, n*len(cols))}
		w := len(cols)
		for j, col := range cols {
			for i, v := range col {
				res.Data[i*w+j] = v
			}
		}
		return res, nil

	case OutExpression, OutAggExpression:
		cols, n, err := gatherOutputColumns(rel, out.ExprAttrs, sel, haveSel, stats)
		if err != nil {
			return nil, err
		}
		// Pairwise materialization (§3.3): a+b+c produces an intermediate
		// column per addition. A single arena backs all intermediates — the
		// strategy's cost is the materialization *traffic*, not allocator
		// churn.
		var final []data.Value
		if len(cols) == 1 {
			final = make([]data.Value, n)
			copy(final, cols[0])
		} else {
			arena := make([]data.Value, (len(cols)-1)*n)
			acc := cols[0]
			for step, next := range cols[1:] {
				inter := arena[step*n : (step+1)*n]
				for i := range inter {
					inter[i] = acc[i] + next[i]
				}
				acc = inter
			}
			final = acc
			if stats != nil {
				stats.IntermediateWords += (len(cols) - 1) * n
			}
		}
		if out.Kind == OutExpression {
			return &Result{Cols: out.Labels, Rows: n, Data: final}, nil
		}
		return &Result{Cols: out.Labels, Rows: 1, Data: []data.Value{AggVector(final, out.ExprAgg)}}, nil
	}
	return nil, ErrUnsupported
}

// gatherOutputColumns materializes one intermediate column per needed
// attribute, filtered through sel when haveSel is true. All columns share a
// single arena allocation.
func gatherOutputColumns(rel *storage.Relation, attrs []data.AttrID, sel []int32, haveSel bool, stats *StrategyStats) ([][]data.Value, int, error) {
	n := rel.Rows
	if haveSel {
		n = len(sel)
	}
	arena := make([]data.Value, len(attrs)*n)
	cols := make([][]data.Value, len(attrs))
	for i, a := range attrs {
		g, err := rel.GroupFor(a)
		if err != nil {
			return nil, 0, err
		}
		off, _ := g.Offset(a)
		col := arena[i*n : (i+1)*n]
		if haveSel {
			GatherColumn(g, off, sel, col)
		} else {
			d, stride := g.Data, g.Stride
			idx := off
			for r := 0; r < n; r++ {
				col[r] = d[idx]
				idx += stride
			}
		}
		if stats != nil {
			stats.IntermediateWords += n
		}
		cols[i] = col
	}
	return cols, n, nil
}

// ExecHybrid executes q over whatever column groups currently cover its
// attributes: predicates are evaluated fused within each group (Figure 6's
// q1_sel_vector generalized), producing one selection vector shared across
// groups, and outputs are written straight into the row-major result with no
// intermediate columns.
func ExecHybrid(rel *storage.Relation, q *query.Query, stats *StrategyStats) (*Result, error) {
	out := Classify(q)
	if out.Kind == OutOther {
		return nil, ErrUnsupported
	}
	preds, splittable := SplitConjunction(q.Where)
	if !splittable {
		return nil, ErrUnsupported
	}
	_, assign, err := rel.CoveringGroups(q.AllAttrs())
	if err != nil {
		return nil, err
	}

	// Group predicates by the group that will evaluate them, preserving
	// first-seen group order so the most selective-first heuristics of the
	// caller are honored.
	type predGroup struct {
		g     *storage.ColumnGroup
		preds []GroupPred
	}
	var pgs []predGroup
	byGroup := map[*storage.ColumnGroup]int{}
	for _, p := range preds {
		g := assign[p.Attr]
		off, _ := g.Offset(p.Attr)
		i, seen := byGroup[g]
		if !seen {
			i = len(pgs)
			byGroup[g] = i
			pgs = append(pgs, predGroup{g: g})
		}
		pgs[i].preds = append(pgs[i].preds, GroupPred{Off: off, Op: p.Op, Val: p.Val})
	}

	var sel []int32
	haveSel := len(pgs) > 0
	for i, pg := range pgs {
		if i == 0 {
			sel = FilterGroup(pg.g, pg.preds, 0, pg.g.Rows, make([]int32, 0, pg.g.Rows/4+16))
			if stats != nil {
				stats.IntermediateWords += len(sel) / 2 // int32 ids, in words
			}
			continue
		}
		sel = RefineSel(pg.g, pg.preds, sel)
	}

	switch out.Kind {
	case OutAggregates:
		vals := make([]data.Value, len(out.AggAttrs))
		for i, a := range out.AggAttrs {
			g := assign[a]
			off, _ := g.Offset(a)
			if haveSel {
				vals[i] = AggColumnSel(g, off, out.AggOps[i], sel)
			} else {
				vals[i] = AggColumnAll(g, off, out.AggOps[i])
			}
		}
		return &Result{Cols: out.Labels, Rows: 1, Data: vals}, nil

	case OutProjection:
		n := rel.Rows
		if haveSel {
			n = len(sel)
		}
		w := len(out.ProjAttrs)
		res := &Result{Cols: out.Labels, Rows: n, Data: make([]data.Value, n*w)}
		for j, a := range out.ProjAttrs {
			g := assign[a]
			off, _ := g.Offset(a)
			d, stride := g.Data, g.Stride
			if haveSel {
				for i, r := range sel {
					res.Data[i*w+j] = d[int(r)*stride+off]
				}
			} else {
				for r := 0; r < n; r++ {
					res.Data[r*w+j] = d[r*stride+off]
				}
			}
		}
		return res, nil

	case OutExpression, OutAggExpression:
		n := rel.Rows
		if haveSel {
			n = len(sel)
		}
		acc := make([]data.Value, n)
		// Partial sums per group: each group contributes its share of the
		// expression in one fused pass — no per-pair intermediates.
		perGroup := map[*storage.ColumnGroup][]int{}
		var order []*storage.ColumnGroup
		for _, a := range out.ExprAttrs {
			g := assign[a]
			off, _ := g.Offset(a)
			if _, seen := perGroup[g]; !seen {
				order = append(order, g)
			}
			perGroup[g] = append(perGroup[g], off)
		}
		tmp := make([]data.Value, n)
		for _, g := range order {
			offs := perGroup[g]
			if haveSel {
				SumOffsetsSel(g, offs, sel, tmp)
			} else {
				SumOffsetsAll(g, offs, tmp)
			}
			for i := range acc {
				acc[i] += tmp[i]
			}
		}
		if out.Kind == OutExpression {
			return &Result{Cols: out.Labels, Rows: n, Data: acc}, nil
		}
		return &Result{Cols: out.Labels, Rows: 1, Data: []data.Value{AggVector(acc, out.ExprAgg)}}, nil
	}
	return nil, ErrUnsupported
}

// ExecGeneric is the generic interpreted operator (paper §3.4): a
// tuple-at-a-time loop that evaluates the predicate tree and the select
// expressions through per-attribute accessor indirection. It handles every
// query shape, at the interpretation overhead Figure 14 quantifies.
func ExecGeneric(rel *storage.Relation, q *query.Query) (*Result, error) {
	_, assign, err := rel.CoveringGroups(q.AllAttrs())
	if err != nil {
		return nil, err
	}
	type binding struct {
		d      []data.Value
		stride int
		off    int
	}
	binds := map[data.AttrID]binding{}
	for a, g := range assign {
		off, _ := g.Offset(a)
		binds[a] = binding{d: g.Data, stride: g.Stride, off: off}
	}
	row := 0
	get := func(a data.AttrID) data.Value {
		b := binds[a]
		return b.d[row*b.stride+b.off]
	}

	hasAgg := q.HasAggregates()
	labels := make([]string, len(q.Items))
	states := make([]*expr.AggState, len(q.Items))
	for i, it := range q.Items {
		labels[i] = it.String()
		if it.Agg != nil {
			states[i] = expr.NewAggState(it.Agg.Op)
		}
	}
	res := &Result{Cols: labels}
	for row = 0; row < rel.Rows; row++ {
		if q.Where != nil && !q.Where.EvalBool(get) {
			continue
		}
		if hasAgg {
			for i, it := range q.Items {
				if it.Agg != nil {
					states[i].Add(it.Agg.Arg.Eval(get))
				}
			}
		} else {
			for _, it := range q.Items {
				res.Data = append(res.Data, it.Expr.Eval(get))
			}
			res.Rows++
		}
	}
	if hasAgg {
		// Mixed agg/non-agg selects collapse to one row using the first
		// qualifying tuple for scalar items — the engine only plans pure
		// shapes, this is a safety net.
		vals := make([]data.Value, len(q.Items))
		for i := range q.Items {
			if states[i] != nil {
				vals[i] = states[i].Result()
			}
		}
		return &Result{Cols: labels, Rows: 1, Data: vals}, nil
	}
	return res, nil
}

// StrategyStats accumulates observability counters for one execution.
type StrategyStats struct {
	IntermediateWords int // values materialized into intermediates
}

func aggResult(labels []string, states []*expr.AggState) *Result {
	res := &Result{Cols: labels, Rows: 1, Data: make([]data.Value, len(states))}
	for i, s := range states {
		res.Data[i] = s.Result()
	}
	return res
}

func mustOffsets(g *storage.ColumnGroup, attrs []data.AttrID) []int {
	offs := make([]int, len(attrs))
	for i, a := range attrs {
		off, ok := g.Offset(a)
		if !ok {
			panic(fmt.Sprintf("exec: attribute %d not in group %v", a, g.Attrs))
		}
		offs[i] = off
	}
	return offs
}
