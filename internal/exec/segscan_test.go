package exec

import (
	"testing"

	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// segFixture builds an append-ordered relation (attr 0 = row index) split
// into 50 segments of 200 rows.
func segFixture(t *testing.T, build func(*data.Table, int) *storage.Relation) (*data.Table, *storage.Relation) {
	t.Helper()
	tb := data.GenerateTimeSeries(data.SyntheticSchema("R", 6), 10_000, 5)
	return tb, build(tb, 200)
}

func colBuild(tb *data.Table, segCap int) *storage.Relation {
	return storage.BuildColumnMajorSeg(tb, segCap)
}

func rowBuild(tb *data.Table, segCap int) *storage.Relation {
	return storage.BuildRowMajorSeg(tb, false, segCap)
}

// TestSelectiveScanSkipsColdSegments is the acceptance check for
// segment-level zone-map pruning: a selective range predicate over
// append-ordered data must skip at least 90% of the segments on every
// strategy, while still returning exactly the right answer.
func TestSelectiveScanSkipsColdSegments(t *testing.T) {
	tbCol, col := segFixture(t, colBuild)
	_, row := segFixture(t, rowBuild)
	// Rows [9000, 10000): the last 5 of 50 segments.
	pred := query.PredGt(0, 8999)
	q := query.Aggregation("R", expr.AggSum, []data.AttrID{2, 4}, pred)
	want := referenceExecute(tbCol, q)

	type strat struct {
		name string
		run  func(rel *storage.Relation, st *StrategyStats) (*Result, error)
	}
	strategies := []strat{
		{"row-fused", func(rel *storage.Relation, st *StrategyStats) (*Result, error) {
			return Exec(rel, q, ExecOpts{Strategy: StrategyRow, Stats: st})
		}},
		{"row-parallel", func(rel *storage.Relation, st *StrategyStats) (*Result, error) {
			return Exec(rel, q, ExecOpts{Strategy: StrategyRow, Workers: 4, Stats: st})
		}},
		{"column-late", func(rel *storage.Relation, st *StrategyStats) (*Result, error) {
			return Exec(rel, q, ExecOpts{Strategy: StrategyColumn, Stats: st})
		}},
		{"hybrid", func(rel *storage.Relation, st *StrategyStats) (*Result, error) {
			return Exec(rel, q, ExecOpts{Strategy: StrategyHybrid, Stats: st})
		}},
		{"vectorized", func(rel *storage.Relation, st *StrategyStats) (*Result, error) {
			return Exec(rel, q, ExecOpts{Strategy: StrategyVectorized, Stats: st})
		}},
		{"bitmap", func(rel *storage.Relation, st *StrategyStats) (*Result, error) {
			return Exec(rel, q, ExecOpts{Strategy: StrategyBitmap, Stats: st})
		}},
	}
	for _, s := range strategies {
		for _, rel := range []*storage.Relation{col, row} {
			if s.name == "row-fused" || s.name == "row-parallel" {
				if rel == col {
					continue // no covering group on the column layout
				}
			}
			var st StrategyStats
			res, err := s.run(rel, &st)
			if err != nil {
				t.Fatalf("%s: %v", s.name, err)
			}
			if !res.Equal(want) {
				t.Fatalf("%s: wrong result under segment pruning", s.name)
			}
			total := st.SegmentsScanned + st.SegmentsPruned
			if total != len(rel.Segments) {
				t.Fatalf("%s: scanned+pruned = %d, want %d", s.name, total, len(rel.Segments))
			}
			if ratio := float64(st.SegmentsPruned) / float64(total); ratio < 0.9 {
				t.Fatalf("%s: pruned only %.0f%% of segments (%d/%d), want >= 90%%",
					s.name, 100*ratio, st.SegmentsPruned, total)
			}
		}
	}
}

// TestLimitStopsConsumingSegments: a limited projection must stop after the
// first segment(s) that satisfy it instead of materializing the whole scan.
func TestLimitStopsConsumingSegments(t *testing.T) {
	tb, col := segFixture(t, colBuild)
	_, row := segFixture(t, rowBuild)
	q := query.Projection("R", []data.AttrID{0, 3}, nil)
	q.Limit = 150 // one full segment (200 rows) satisfies it

	check := func(name string, res *Result, st *StrategyStats, err error) {
		t.Helper()
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if res.Rows < q.Limit {
			t.Fatalf("%s: produced %d rows, want >= %d", name, res.Rows, q.Limit)
		}
		if st.SegmentsScanned > 2 {
			t.Fatalf("%s: scanned %d segments for a 150-row limit", name, st.SegmentsScanned)
		}
		// The produced prefix is the true scan-order prefix.
		for r := 0; r < q.Limit; r++ {
			if res.At(r, 0) != tb.Value(r, 0) || res.At(r, 1) != tb.Value(r, 3) {
				t.Fatalf("%s: limited prefix diverges at row %d", name, r)
			}
		}
	}

	var st StrategyStats
	res, err := Exec(col, q, ExecOpts{Strategy: StrategyHybrid, Stats: &st})
	check("hybrid", res, &st, err)
	st = StrategyStats{}
	res, err = Exec(col, q, ExecOpts{Strategy: StrategyColumn, Stats: &st})
	check("column", res, &st, err)
	st = StrategyStats{}
	res, err = Exec(col, q, ExecOpts{Strategy: StrategyVectorized, Stats: &st})
	check("vectorized", res, &st, err)
	st = StrategyStats{}
	res, err = Exec(row, q, ExecOpts{Strategy: StrategyRow, Stats: &st})
	check("row-fused", res, &st, err)

	// The generic interpreted operator exits early too: segments beyond the
	// needed prefix must never be touched (their read counters stay zero).
	_, gen := segFixture(t, colBuild)
	res, err = Exec(gen, q, ExecOpts{Strategy: StrategyGeneric})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows < q.Limit {
		t.Fatalf("generic produced %d rows", res.Rows)
	}
	touched := 0
	for _, seg := range gen.Segments {
		if seg.Reads() > 0 {
			touched++
		}
	}
	if touched > 2 {
		t.Fatalf("generic touched %d segments for a 150-row limit", touched)
	}

	// Aggregates must NOT early-exit: the limit applies to result rows, and
	// an aggregate has one.
	agg := query.Aggregation("R", expr.AggSum, []data.AttrID{1}, nil)
	agg.Limit = 1
	st = StrategyStats{}
	aggRes, err := Exec(col, agg, ExecOpts{Strategy: StrategyHybrid, Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	if st.SegmentsScanned != len(col.Segments) {
		t.Fatalf("aggregate scanned %d/%d segments: limits must not truncate aggregation input",
			st.SegmentsScanned, len(col.Segments))
	}
	if !aggRes.Equal(referenceExecute(tb, agg)) {
		t.Fatal("aggregate over limited query wrong")
	}
}

// TestMixedLayoutSegmentsAgree: after reorganizing only SOME segments (the
// incremental adaptation case), every strategy must still compute exact
// results by resolving groups per segment.
func TestMixedLayoutSegmentsAgree(t *testing.T) {
	tb, rel := segFixture(t, colBuild)
	// Hand-adapt segments 1 and 3: they get a fused group over the query's
	// attributes; all other segments stay column-major.
	attrs := []data.AttrID{0, 2, 4}
	for _, si := range []int{1, 3} {
		g, err := storage.StitchSeg(rel.Segments[si], attrs)
		if err != nil {
			t.Fatal(err)
		}
		if err := rel.Segments[si].AddGroup(g); err != nil {
			t.Fatal(err)
		}
	}
	if rel.Uniform() {
		t.Fatal("fixture should be mixed-layout")
	}
	for qi, q := range []*query.Query{
		query.Aggregation("R", expr.AggSum, []data.AttrID{2, 4}, query.PredLt(0, 777)),
		query.Projection("R", []data.AttrID{0, 2, 4}, query.PredGt(0, 9_500)),
		query.AggExpression("R", []data.AttrID{2, 4}, nil),
	} {
		want := referenceExecute(tb, q)
		if res, err := Exec(rel, q, ExecOpts{Strategy: StrategyHybrid}); err != nil || !res.Equal(want) {
			t.Fatalf("query %d hybrid on mixed layout: err=%v", qi, err)
		}
		if res, err := Exec(rel, q, ExecOpts{Strategy: StrategyColumn}); err != nil || !res.Equal(want) {
			t.Fatalf("query %d column on mixed layout: err=%v", qi, err)
		}
		if res, err := Exec(rel, q, ExecOpts{Strategy: StrategyGeneric}); err != nil || !res.Equal(want) {
			t.Fatalf("query %d generic on mixed layout: err=%v", qi, err)
		}
		if res, err := Exec(rel, q, ExecOpts{Strategy: StrategyVectorized}); err != nil || !res.Equal(want) {
			t.Fatalf("query %d vectorized on mixed layout: err=%v", qi, err)
		}
	}
}

// TestReorgHotSubset: the online reorganizer stitches only the hot mask and
// answers cold segments from their existing layout.
func TestReorgHotSubset(t *testing.T) {
	tb, rel := segFixture(t, colBuild)
	q := query.Aggregation("R", expr.AggMax, []data.AttrID{1, 2}, nil)
	attrs := q.AllAttrs()
	hot := make([]bool, len(rel.Segments))
	hot[0], hot[7], hot[49] = true, true, true

	var groups []*storage.ColumnGroup
	res, err := Exec(rel, q, ExecOpts{Strategy: StrategyReorg, ReorgAttrs: attrs, HotMask: hot, NewGroups: &groups})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(referenceExecute(tb, q)) {
		t.Fatal("hot-subset reorg answered the query wrong")
	}
	built := 0
	for si, g := range groups {
		if g != nil {
			built++
			if !hot[si] {
				t.Fatalf("segment %d reorganized but was not hot", si)
			}
			if g.Rows != rel.Segments[si].Rows {
				t.Fatalf("segment %d new group rows = %d", si, g.Rows)
			}
		}
	}
	if built != 3 {
		t.Fatalf("built %d groups, want 3", built)
	}
}
