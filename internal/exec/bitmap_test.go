package exec

import (
	"testing"
	"testing/quick"

	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

func TestBitmapBasics(t *testing.T) {
	bm := NewBitmap(130)
	if bm.Len() != 130 || bm.Count() != 0 {
		t.Fatal("fresh bitmap not empty")
	}
	for _, i := range []int{0, 63, 64, 129} {
		bm.Set(i)
	}
	if bm.Count() != 4 {
		t.Fatalf("count = %d", bm.Count())
	}
	if !bm.Get(64) || bm.Get(65) {
		t.Fatal("Get wrong")
	}
	sel := bm.ToSel(nil)
	want := []int32{0, 63, 64, 129}
	if len(sel) != len(want) {
		t.Fatalf("ToSel = %v", sel)
	}
	for i := range want {
		if sel[i] != want[i] {
			t.Fatalf("ToSel = %v", sel)
		}
	}
	other := NewBitmap(130)
	other.Set(63)
	other.Set(129)
	bm.And(other)
	if bm.Count() != 2 || !bm.Get(63) || !bm.Get(129) {
		t.Fatal("And wrong")
	}
	bm.Reset()
	if bm.Count() != 0 {
		t.Fatal("Reset wrong")
	}
}

// TestBitmapFilterMatchesSelVector: the two selection representations must
// qualify exactly the same rows.
func TestBitmapFilterMatchesSelVector(t *testing.T) {
	tb := data.Generate(data.SyntheticSchema("R", 3), 5000, 17)
	g := storage.BuildGroup(tb, []data.AttrID{0, 1, 2})
	preds := []GroupPred{
		{Off: 0, Op: expr.Lt, Val: 300_000_000},
		{Off: 1, Op: expr.Gt, Val: -300_000_000},
	}
	sel := FilterGroup(g, preds, 0, g.Rows, nil)
	bm := NewBitmap(g.Rows)
	FilterGroupBitmap(g, preds, bm)
	if bm.Count() != len(sel) {
		t.Fatalf("bitmap %d vs sel %d", bm.Count(), len(sel))
	}
	fromBm := bm.ToSel(nil)
	for i := range sel {
		if sel[i] != fromBm[i] {
			t.Fatalf("row id mismatch at %d: %d vs %d", i, sel[i], fromBm[i])
		}
	}
}

func TestRefineBitmapMatchesRefineSel(t *testing.T) {
	tb := data.Generate(data.SyntheticSchema("R", 2), 4000, 23)
	g0 := storage.BuildGroup(tb, []data.AttrID{0})
	g1 := storage.BuildGroup(tb, []data.AttrID{1})
	p0 := []GroupPred{{Off: 0, Op: expr.Lt, Val: 0}}
	p1 := []GroupPred{{Off: 0, Op: expr.Gt, Val: -500_000_000}}

	sel := FilterGroup(g0, p0, 0, g0.Rows, nil)
	sel = RefineSel(g1, p1, sel)

	bm := NewBitmap(g0.Rows)
	FilterGroupBitmap(g0, p0, bm)
	RefineBitmap(g1, p1, bm)

	if bm.Count() != len(sel) {
		t.Fatalf("bitmap %d vs sel %d", bm.Count(), len(sel))
	}
}

func TestBitmapStrategyAgrees(t *testing.T) {
	tb, col, row, grp := fixture(t)
	_ = tb
	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 5, 9},
		query.ConjLtGt(0, 400_000_000, 7, -400_000_000))
	want, err := Exec(col, q, ExecOpts{Strategy: StrategyHybrid})
	if err != nil {
		t.Fatal(err)
	}
	for _, rel := range []*storage.Relation{col, row, grp} {
		got, err := Exec(rel, q, ExecOpts{Strategy: StrategyBitmap})
		if err != nil {
			t.Fatal(err)
		}
		if !got.Equal(want) {
			t.Fatalf("bitmap strategy disagrees on %v", rel.Kind())
		}
	}
	// No-predicate aggregation path.
	q2 := query.Aggregation("R", expr.AggMin, []data.AttrID{2}, nil)
	want2, _ := Exec(col, q2, ExecOpts{Strategy: StrategyHybrid})
	got2, err := Exec(col, q2, ExecOpts{Strategy: StrategyBitmap})
	if err != nil || !got2.Equal(want2) {
		t.Fatalf("no-predicate bitmap path wrong: %v", err)
	}
	// Non-aggregate shapes are unsupported.
	q3 := query.Projection("R", []data.AttrID{1}, nil)
	if _, err := Exec(col, q3, ExecOpts{Strategy: StrategyBitmap}); err != ErrUnsupported {
		t.Fatalf("err = %v", err)
	}
}

// Property: for random bit patterns, ToSel/Count/Get agree.
func TestBitmapProperty(t *testing.T) {
	f := func(rowsRaw uint8, picks []uint16) bool {
		n := 1 + int(rowsRaw)
		bm := NewBitmap(n)
		set := map[int]bool{}
		for _, p := range picks {
			i := int(p) % n
			bm.Set(i)
			set[i] = true
		}
		if bm.Count() != len(set) {
			return false
		}
		for _, id := range bm.ToSel(nil) {
			if !set[int(id)] {
				return false
			}
		}
		for i := 0; i < n; i++ {
			if bm.Get(i) != set[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkFilterBitmap(b *testing.B) {
	tb := data.Generate(data.SyntheticSchema("R", 1), benchRows, 42)
	g := storage.BuildGroup(tb, []data.AttrID{0})
	preds := []GroupPred{{Off: 0, Op: expr.Lt, Val: 0}}
	bm := NewBitmap(g.Rows)
	b.SetBytes(benchRows * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bm.Reset()
		FilterGroupBitmap(g, preds, bm)
	}
}
