package exec

import (
	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// vectorSegPartial is the vectorized pipeline's per-segment operator: the
// chunked stages over one pinned segment, emitted as that segment's
// partial. The L1-resident scratch vectors are allocated here — shared by
// the segment's chunks, private to the task, so segment fan-out is
// race-free.
func vectorSegPartial(seg *storage.Segment, q *query.Query, out Outputs, preds []ColPred, vectorSize int, stats *StrategyStats) (*partial, error) {
	sel := make([]int32, 0, vectorSize)
	acc := make([]data.Value, vectorSize)
	tmp := make([]data.Value, vectorSize)
	states := newStates(out)
	var ga *groupedAcc
	if out.Kind == OutGrouped {
		ga = newGroupedAcc(out)
	}
	res := &Result{}
	if err := vectorScanSegment(seg, q, out, preds, vectorSize, sel, acc, tmp, states, res, ga, stats); err != nil {
		return nil, err
	}
	return &partial{states: states, data: res.Data, rows: res.Rows, groups: ga}, nil
}

// vectorScanSegment runs the chunked pipeline over one segment, binding
// predicates and outputs to that segment's own groups.
func vectorScanSegment(seg *storage.Segment, q *query.Query, out Outputs, preds []ColPred, vectorSize int, sel []int32, acc, tmp []data.Value, aggStates []*expr.AggState, res *Result, ga *groupedAcc, stats *StrategyStats) error {
	_, assign, err := seg.CoveringGroups(q.AllAttrs())
	if err != nil {
		return err
	}
	var folder *segGroupedFolder
	if out.Kind == OutGrouped {
		folder, err = newSegGroupedFolder(seg, groupedScanAttrs(out), out)
		if err != nil {
			return err
		}
	}

	// Bind predicates per group, preserving group order of first use.
	type predGroup struct {
		g     *storage.ColumnGroup
		preds []GroupPred
	}
	var pgs []predGroup
	byGroup := map[*storage.ColumnGroup]int{}
	for _, p := range preds {
		g := assign[p.Attr]
		off, _ := g.Offset(p.Attr)
		i, seen := byGroup[g]
		if !seen {
			i = len(pgs)
			byGroup[g] = i
			pgs = append(pgs, predGroup{g: g})
		}
		pgs[i].preds = append(pgs[i].preds, GroupPred{Off: off, Op: p.Op, Val: p.Val})
	}
	haveSel := len(pgs) > 0

	// Output plan.
	type colRef struct {
		g   *storage.ColumnGroup
		off int
	}
	var projRefs []colRef
	var aggRefs []colRef
	var exprGroups []*storage.ColumnGroup
	exprOffs := map[*storage.ColumnGroup][]int{}
	switch out.Kind {
	case OutProjection:
		for _, a := range out.ProjAttrs {
			g := assign[a]
			off, _ := g.Offset(a)
			projRefs = append(projRefs, colRef{g, off})
		}
	case OutAggregates:
		for _, a := range out.AggAttrs {
			g := assign[a]
			off, _ := g.Offset(a)
			aggRefs = append(aggRefs, colRef{g, off})
		}
	case OutExpression, OutAggExpression:
		for _, a := range out.ExprAttrs {
			g := assign[a]
			off, _ := g.Offset(a)
			if _, seen := exprOffs[g]; !seen {
				exprGroups = append(exprGroups, g)
			}
			exprOffs[g] = append(exprOffs[g], off)
		}
	}

	for start := 0; start < seg.Rows; start += vectorSize {
		n := vectorSize
		if start+n > seg.Rows {
			n = seg.Rows - start
		}
		// Predicate phase for this chunk.
		sel = sel[:0]
		if haveSel {
			for i, pg := range pgs {
				if i == 0 {
					sel = FilterGroup(pg.g, pg.preds, start, n, sel)
				} else {
					sel = RefineSel(pg.g, pg.preds, sel)
				}
			}
			if stats != nil {
				stats.IntermediateWords += len(sel) / 2
			}
			if len(sel) == 0 {
				continue
			}
		}

		switch out.Kind {
		case OutAggregates:
			for i, ref := range aggRefs {
				if haveSel {
					foldSel(aggStates[i], ref.g, ref.off, sel)
				} else {
					foldRange(aggStates[i], ref.g, ref.off, start, n)
				}
			}
		case OutGrouped:
			if haveSel {
				for _, r := range sel {
					folder.fold(ga, int(r))
				}
			} else {
				for r := start; r < start+n; r++ {
					folder.fold(ga, r)
				}
			}
		case OutProjection:
			if haveSel {
				for _, r := range sel {
					for _, ref := range projRefs {
						res.Data = append(res.Data, ref.g.Data[int(r)*ref.g.Stride+ref.off])
					}
				}
				res.Rows += len(sel)
			} else {
				for r := start; r < start+n; r++ {
					for _, ref := range projRefs {
						res.Data = append(res.Data, ref.g.Data[r*ref.g.Stride+ref.off])
					}
				}
				res.Rows += n
			}
		case OutExpression, OutAggExpression:
			cnt := n
			if haveSel {
				cnt = len(sel)
			}
			av := acc[:cnt]
			for i := range av {
				av[i] = 0
			}
			for _, g := range exprGroups {
				offs := exprOffs[g]
				tv := tmp[:cnt]
				if haveSel {
					SumOffsetsSel(g, offs, sel, tv)
				} else {
					sumOffsetsRange(g, offs, start, n, tv)
				}
				for i := range av {
					av[i] += tv[i]
				}
			}
			if out.Kind == OutExpression {
				res.Data = append(res.Data, av...)
				res.Rows += cnt
			} else {
				for _, v := range av {
					aggStates[0].Add(v)
				}
			}
		}
	}
	return nil
}

// foldRange folds rows [start, start+n) of the attribute at off into st.
func foldRange(st *expr.AggState, g *storage.ColumnGroup, off, start, n int) {
	d, stride := g.Data, g.Stride
	idx := start*stride + off
	for i := 0; i < n; i++ {
		st.Add(d[idx])
		idx += stride
	}
}

// foldSel folds the selected rows of the attribute at off into st.
func foldSel(st *expr.AggState, g *storage.ColumnGroup, off int, sel []int32) {
	d, stride := g.Data, g.Stride
	for _, r := range sel {
		st.Add(d[int(r)*stride+off])
	}
}

// sumOffsetsRange computes the offset-sum expression for rows
// [start, start+n) into out.
func sumOffsetsRange(g *storage.ColumnGroup, offs []int, start, n int, out []data.Value) {
	d, stride := g.Data, g.Stride
	base := start * stride
	for i := 0; i < n; i++ {
		var acc data.Value
		for _, o := range offs {
			acc += d[base+o]
		}
		out[i] = acc
		base += stride
	}
}
