package exec

import (
	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/storage"
)

// GroupPred is a single-column comparison compiled against a specific column
// group: the attribute has been resolved to a word offset within the group's
// mini-tuple. Kernels evaluate GroupPreds in tight monomorphic loops — the
// compiled equivalents of the paper's Figures 5 and 6.
type GroupPred struct {
	Off int
	Op  expr.CmpOp
	Val data.Value
}

// ColPred is a single-column comparison against a base-schema attribute,
// before it is bound to a group.
type ColPred struct {
	Attr data.AttrID
	Op   expr.CmpOp
	Val  data.Value
}

// SplitConjunction decomposes a predicate into a list of single-column
// comparisons with constant right-hand sides. It reports ok=false when the
// predicate has any other shape (disjunctions, expression comparisons), in
// which case callers fall back to the interpreted path.
func SplitConjunction(p expr.Pred) ([]ColPred, bool) {
	if p == nil {
		return nil, true
	}
	switch t := p.(type) {
	case *expr.Cmp:
		col, okL := t.L.(*expr.Col)
		k, okR := t.R.(*expr.Const)
		if okL && okR {
			return []ColPred{{Attr: col.ID, Op: t.Op, Val: k.V}}, true
		}
		// Mirror form: const op col.
		k2, okL2 := t.L.(*expr.Const)
		col2, okR2 := t.R.(*expr.Col)
		if okL2 && okR2 {
			return []ColPred{{Attr: col2.ID, Op: mirror(t.Op), Val: k2.V}}, true
		}
		return nil, false
	case *expr.And:
		var out []ColPred
		for _, term := range t.Terms {
			sub, ok := SplitConjunction(term)
			if !ok {
				return nil, false
			}
			out = append(out, sub...)
		}
		return out, true
	default:
		return nil, false
	}
}

// mirror flips a comparison for swapped operands: (k < col) ≡ (col > k).
func mirror(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.Lt:
		return expr.Gt
	case expr.Le:
		return expr.Ge
	case expr.Gt:
		return expr.Lt
	case expr.Ge:
		return expr.Le
	default:
		return op // Eq, Ne are symmetric
	}
}

// BindPreds resolves column predicates to word offsets within g. All
// predicate attributes must be stored in g.
func BindPreds(g *storage.ColumnGroup, preds []ColPred) ([]GroupPred, bool) {
	out := make([]GroupPred, len(preds))
	for i, p := range preds {
		off, ok := g.Offset(p.Attr)
		if !ok {
			return nil, false
		}
		out[i] = GroupPred{Off: off, Op: p.Op, Val: p.Val}
	}
	return out, true
}

// passes evaluates all predicates against the mini-tuple starting at base.
// It is inlined into kernels that cannot specialize further (3+ predicates).
func passes(d []data.Value, base int, preds []GroupPred) bool {
	for i := range preds {
		p := &preds[i]
		if !expr.Compare(p.Op, d[base+p.Off], p.Val) {
			return false
		}
	}
	return true
}

// FilterGroup scans rows [start, start+n) of g, evaluating the conjunction
// of preds in one pass, and appends qualifying row ids to sel (the paper's
// selection vector, Fig. 6 q1_sel_vector). It returns the extended vector.
//
// The hot shapes — one and two predicates with fixed operators — dispatch to
// monomorphic loops selected *outside* the loop, which is what the paper's
// generated code achieves by compiling the operator per query. Qualifying
// ids are written branchlessly (store, then conditionally advance), the
// standard selection-vector primitive: mid-range selectivities would
// otherwise stall on branch mispredictions.
func FilterGroup(g *storage.ColumnGroup, preds []GroupPred, start, n int, sel []int32) []int32 {
	d, stride := g.Data, g.Stride
	// Ensure room for the worst case so the hot loops never reallocate.
	have := len(sel)
	if cap(sel)-have < n {
		grown := make([]int32, have, have+n)
		copy(grown, sel)
		sel = grown
	}
	buf := sel[have : have+n]
	j := 0
	switch len(preds) {
	case 0:
		for r := start; r < start+n; r++ {
			buf[j] = int32(r)
			j++
		}
	case 1:
		j = filterOne(d, stride, preds[0], start, n, buf)
	case 2:
		p0, p1 := preds[0], preds[1]
		base := start * stride
		for r := start; r < start+n; r++ {
			buf[j] = int32(r)
			if expr.Compare(p0.Op, d[base+p0.Off], p0.Val) && expr.Compare(p1.Op, d[base+p1.Off], p1.Val) {
				j++
			}
			base += stride
		}
	default:
		base := start * stride
		for r := start; r < start+n; r++ {
			buf[j] = int32(r)
			if passes(d, base, preds) {
				j++
			}
			base += stride
		}
	}
	// Keep the full capacity: zone-at-a-time callers reuse the vector across
	// many consecutive FilterGroup calls.
	return sel[:have+j]
}

// filterOne is the single-predicate kernel with the comparison operator
// hoisted out of the loop: six monomorphic branchless loops instead of one
// loop with a per-tuple switch. buf must have room for n ids; it returns the
// number of qualifying rows written.
func filterOne(d []data.Value, stride int, p GroupPred, start, n int, buf []int32) int {
	idx := start*stride + p.Off
	v := p.Val
	j := 0
	switch p.Op {
	case expr.Lt:
		for r := start; r < start+n; r++ {
			buf[j] = int32(r)
			if d[idx] < v {
				j++
			}
			idx += stride
		}
	case expr.Le:
		for r := start; r < start+n; r++ {
			buf[j] = int32(r)
			if d[idx] <= v {
				j++
			}
			idx += stride
		}
	case expr.Gt:
		for r := start; r < start+n; r++ {
			buf[j] = int32(r)
			if d[idx] > v {
				j++
			}
			idx += stride
		}
	case expr.Ge:
		for r := start; r < start+n; r++ {
			buf[j] = int32(r)
			if d[idx] >= v {
				j++
			}
			idx += stride
		}
	case expr.Eq:
		for r := start; r < start+n; r++ {
			buf[j] = int32(r)
			if d[idx] == v {
				j++
			}
			idx += stride
		}
	case expr.Ne:
		for r := start; r < start+n; r++ {
			buf[j] = int32(r)
			if d[idx] != v {
				j++
			}
			idx += stride
		}
	}
	return j
}

// RefineSel re-evaluates the conjunction of preds over g for the candidate
// row ids in sel, compacting survivors in place and returning the shortened
// vector. Used when predicates span multiple column groups (Fig. 6's
// strategy generalized to more groups).
func RefineSel(g *storage.ColumnGroup, preds []GroupPred, sel []int32) []int32 {
	d, stride := g.Data, g.Stride
	w := 0
	if len(preds) == 1 {
		p := preds[0]
		off, op, v := p.Off, p.Op, p.Val
		for _, r := range sel {
			sel[w] = r
			if expr.Compare(op, d[int(r)*stride+off], v) {
				w++
			}
		}
		return sel[:w]
	}
	for _, r := range sel {
		sel[w] = r
		if passes(d, int(r)*stride, preds) {
			w++
		}
	}
	return sel[:w]
}

// GatherColumn copies the values of the attribute at offset off for the rows
// in sel into out (positional fetch through a selection vector). Plain
// columns (stride 1) take a specialized loop without the stride multiply.
func GatherColumn(g *storage.ColumnGroup, off int, sel []int32, out []data.Value) {
	d, stride := g.Data, g.Stride
	if stride == 1 {
		for i, r := range sel {
			out[i] = d[r]
		}
		return
	}
	for i, r := range sel {
		out[i] = d[int(r)*stride+off]
	}
}

// AggColumnAll folds an aggregate over every row of the attribute at offset
// off.
func AggColumnAll(g *storage.ColumnGroup, off int, op expr.AggOp) data.Value {
	d, stride, rows := g.Data, g.Stride, g.Rows
	if rows == 0 {
		return 0
	}
	idx := off
	switch op {
	case expr.AggSum:
		var acc data.Value
		for r := 0; r < rows; r++ {
			acc += d[idx]
			idx += stride
		}
		return acc
	case expr.AggMax:
		acc := d[idx]
		idx += stride
		for r := 1; r < rows; r++ {
			if v := d[idx]; v > acc {
				acc = v
			}
			idx += stride
		}
		return acc
	case expr.AggMin:
		acc := d[idx]
		idx += stride
		for r := 1; r < rows; r++ {
			if v := d[idx]; v < acc {
				acc = v
			}
			idx += stride
		}
		return acc
	case expr.AggCount:
		return data.Value(rows)
	case expr.AggAvg:
		var acc data.Value
		for r := 0; r < rows; r++ {
			acc += d[idx]
			idx += stride
		}
		return acc / data.Value(rows)
	default:
		panic("exec: unknown aggregate")
	}
}

// AggColumnSel folds an aggregate over the rows in sel of the attribute at
// offset off.
func AggColumnSel(g *storage.ColumnGroup, off int, op expr.AggOp, sel []int32) data.Value {
	if len(sel) == 0 {
		return 0
	}
	d, stride := g.Data, g.Stride
	switch op {
	case expr.AggSum:
		var acc data.Value
		for _, r := range sel {
			acc += d[int(r)*stride+off]
		}
		return acc
	case expr.AggMax:
		acc := d[int(sel[0])*stride+off]
		for _, r := range sel[1:] {
			if v := d[int(r)*stride+off]; v > acc {
				acc = v
			}
		}
		return acc
	case expr.AggMin:
		acc := d[int(sel[0])*stride+off]
		for _, r := range sel[1:] {
			if v := d[int(r)*stride+off]; v < acc {
				acc = v
			}
		}
		return acc
	case expr.AggCount:
		return data.Value(len(sel))
	case expr.AggAvg:
		var acc data.Value
		for _, r := range sel {
			acc += d[int(r)*stride+off]
		}
		return acc / data.Value(len(sel))
	default:
		panic("exec: unknown aggregate")
	}
}

// AggVector folds an aggregate over a materialized vector of values.
func AggVector(vals []data.Value, op expr.AggOp) data.Value {
	if len(vals) == 0 {
		return 0
	}
	switch op {
	case expr.AggSum:
		var acc data.Value
		for _, v := range vals {
			acc += v
		}
		return acc
	case expr.AggMax:
		acc := vals[0]
		for _, v := range vals[1:] {
			if v > acc {
				acc = v
			}
		}
		return acc
	case expr.AggMin:
		acc := vals[0]
		for _, v := range vals[1:] {
			if v < acc {
				acc = v
			}
		}
		return acc
	case expr.AggCount:
		return data.Value(len(vals))
	case expr.AggAvg:
		var acc data.Value
		for _, v := range vals {
			acc += v
		}
		return acc / data.Value(len(vals))
	default:
		panic("exec: unknown aggregate")
	}
}

// SumOffsetsAll computes, for every row of g, the sum of the attribute
// values at the given offsets, writing one value per row into out. This is
// the fused expression kernel of Fig. 5 (res[j] = ptr[0]+ptr[1]+ptr[2])
// generalized to any offset set, with no intermediate results.
func SumOffsetsAll(g *storage.ColumnGroup, offs []int, out []data.Value) {
	d, stride, rows := g.Data, g.Stride, g.Rows
	switch len(offs) {
	case 1:
		o0 := offs[0]
		base := 0
		for r := 0; r < rows; r++ {
			out[r] = d[base+o0]
			base += stride
		}
	case 2:
		o0, o1 := offs[0], offs[1]
		base := 0
		for r := 0; r < rows; r++ {
			out[r] = d[base+o0] + d[base+o1]
			base += stride
		}
	case 3:
		o0, o1, o2 := offs[0], offs[1], offs[2]
		base := 0
		for r := 0; r < rows; r++ {
			out[r] = d[base+o0] + d[base+o1] + d[base+o2]
			base += stride
		}
	default:
		base := 0
		for r := 0; r < rows; r++ {
			var acc data.Value
			for _, o := range offs {
				acc += d[base+o]
			}
			out[r] = acc
			base += stride
		}
	}
}

// SumOffsetsSel computes the offset-sum expression only for the rows in sel
// (Fig. 6 q1_compute_expression with a selection vector).
func SumOffsetsSel(g *storage.ColumnGroup, offs []int, sel []int32, out []data.Value) {
	d, stride := g.Data, g.Stride
	switch len(offs) {
	case 3:
		o0, o1, o2 := offs[0], offs[1], offs[2]
		for i, r := range sel {
			base := int(r) * stride
			out[i] = d[base+o0] + d[base+o1] + d[base+o2]
		}
	default:
		for i, r := range sel {
			base := int(r) * stride
			var acc data.Value
			for _, o := range offs {
				acc += d[base+o]
			}
			out[i] = acc
		}
	}
}

// AddVectorsMaterialized sums k full-length column vectors the way the
// paper's column-major strategy does (§3.3): pairwise, materializing every
// intermediate result as a fresh column ("computing a+b+c results into the
// materialization of two intermediate columns"). The extra memory traffic is
// the effect Figures 10c and 10f measure.
func AddVectorsMaterialized(cols [][]data.Value) []data.Value {
	if len(cols) == 0 {
		return nil
	}
	acc := cols[0]
	for _, next := range cols[1:] {
		inter := make([]data.Value, len(acc))
		for i := range inter {
			inter[i] = acc[i] + next[i]
		}
		acc = inter
	}
	if len(cols) == 1 {
		out := make([]data.Value, len(acc))
		copy(out, acc)
		return out
	}
	return acc
}
