package exec

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

const (
	testAttrs = 12
	testRows  = 2000
)

func fixture(t *testing.T) (*data.Table, *storage.Relation, *storage.Relation, *storage.Relation) {
	t.Helper()
	tb := data.Generate(data.SyntheticSchema("R", testAttrs), testRows, 77)
	col := storage.BuildColumnMajor(tb)
	row := storage.BuildRowMajor(tb, false)
	grp, err := storage.BuildPartitioned(tb, [][]data.AttrID{{0, 1, 2, 3}, {4, 5, 6}, {7, 8, 9, 10, 11}})
	if err != nil {
		t.Fatal(err)
	}
	return tb, col, row, grp
}

// queriesUnderTest returns a representative set of query shapes covering all
// four specialized templates, with and without predicates.
func queriesUnderTest() []*query.Query {
	someAttrs := []data.AttrID{1, 4, 8}
	wide := []data.AttrID{0, 2, 3, 5, 7, 9, 11}
	pred2 := query.ConjLtGt(6, 500_000_000, 10, -500_000_000)
	pred1 := query.PredLt(0, 0)
	pred3 := &expr.And{Terms: []expr.Pred{
		query.PredLt(0, 600_000_000).(*expr.Cmp),
		query.PredGt(1, -600_000_000).(*expr.Cmp),
		query.PredLt(2, 400_000_000).(*expr.Cmp),
	}}
	return []*query.Query{
		query.Projection("R", someAttrs, nil),
		query.Projection("R", someAttrs, pred1),
		query.Projection("R", wide, pred2),
		query.Aggregation("R", expr.AggMax, someAttrs, nil),
		query.Aggregation("R", expr.AggSum, wide, pred2),
		query.Aggregation("R", expr.AggMin, someAttrs, pred3),
		query.Aggregation("R", expr.AggCount, []data.AttrID{3}, pred1),
		query.Aggregation("R", expr.AggAvg, someAttrs, pred2),
		query.ArithExpression("R", someAttrs, nil),
		query.ArithExpression("R", wide, pred2),
		query.AggExpression("R", someAttrs, pred1),
		query.AggExpression("R", wide, nil),
		// avg over an expression: catches double-division bugs in strategies
		// that fold kernel results into aggregate states.
		{Table: "R", Items: []query.SelectItem{
			{Agg: &expr.Agg{Op: expr.AggAvg, Arg: expr.SumCols(someAttrs)}},
		}, Where: pred2},
		{Table: "R", Items: []query.SelectItem{
			{Agg: &expr.Agg{Op: expr.AggMax, Arg: expr.SumCols(someAttrs)}},
		}, Where: nil},
	}
}

// referenceExecute computes the expected result straight from the generator
// table with naive Go loops — an oracle independent of all kernels.
func referenceExecute(tb *data.Table, q *query.Query) *Result {
	get := func(r int) expr.Accessor {
		return func(a data.AttrID) data.Value { return tb.Cols[a][r] }
	}
	labels := make([]string, len(q.Items))
	states := make([]*expr.AggState, len(q.Items))
	hasAgg := q.HasAggregates()
	for i, it := range q.Items {
		labels[i] = it.String()
		if it.Agg != nil {
			states[i] = expr.NewAggState(it.Agg.Op)
		}
	}
	res := &Result{Cols: labels}
	for r := 0; r < tb.Rows; r++ {
		acc := get(r)
		if q.Where != nil && !q.Where.EvalBool(acc) {
			continue
		}
		if hasAgg {
			for i, it := range q.Items {
				states[i].Add(it.Agg.Arg.Eval(acc))
			}
		} else {
			for _, it := range q.Items {
				res.Data = append(res.Data, it.Expr.Eval(acc))
			}
			res.Rows++
		}
	}
	if hasAgg {
		res.Rows = 1
		res.Data = make([]data.Value, len(states))
		for i, s := range states {
			res.Data[i] = s.Result()
		}
	}
	return res
}

// TestAllStrategiesAgree is the core engine invariant: every execution
// strategy over every layout returns exactly the oracle's answer.
func TestAllStrategiesAgree(t *testing.T) {
	tb, col, row, grp := fixture(t)
	for qi, q := range queriesUnderTest() {
		want := referenceExecute(tb, q)

		type run struct {
			name string
			res  *Result
			err  error
		}
		rowRes, rowErr := Exec(row, q, ExecOpts{Strategy: StrategyRow})
		var runs []run
		runs = append(runs, run{"row-fused", rowRes, rowErr})
		for _, rel := range []*storage.Relation{col, row, grp} {
			r1, e1 := Exec(rel, q, ExecOpts{Strategy: StrategyColumn})
			runs = append(runs, run{"column-late/" + rel.Kind().String(), r1, e1})
			r2, e2 := Exec(rel, q, ExecOpts{Strategy: StrategyHybrid})
			runs = append(runs, run{"hybrid/" + rel.Kind().String(), r2, e2})
			r3, e3 := Exec(rel, q, ExecOpts{Strategy: StrategyGeneric})
			runs = append(runs, run{"generic/" + rel.Kind().String(), r3, e3})
		}
		for _, r := range runs {
			if r.err != nil {
				t.Fatalf("query %d (%s) strategy %s: %v", qi, q, r.name, r.err)
			}
			if !r.res.Equal(want) {
				t.Fatalf("query %d (%s) strategy %s: result mismatch (got %v rows, want %v rows)",
					qi, q, r.name, r.res.Rows, want.Rows)
			}
		}
	}
}

func TestExecRowRequiresCoveringGroup(t *testing.T) {
	_, col, _, _ := fixture(t)
	q := query.Projection("R", []data.AttrID{0, 1}, nil)
	if _, err := ExecRow(col.Segments[0].Groups[0], q); err == nil {
		t.Fatal("ExecRow must reject a non-covering group")
	}
	if _, err := Exec(col, q, ExecOpts{Strategy: StrategyRow}); err == nil {
		t.Fatal("the row pipeline must reject a relation without a covering group per segment")
	}
}

func TestUnsupportedShapesFallThrough(t *testing.T) {
	_, col, row, _ := fixture(t)
	// Disjunctive predicate: specialized strategies must refuse; generic must
	// answer.
	or := &expr.Or{L: query.PredLt(0, 0).(*expr.Cmp), R: query.PredGt(1, 0).(*expr.Cmp)}
	q := query.Aggregation("R", expr.AggSum, []data.AttrID{2}, or)
	if _, err := ExecRow(row.Segments[0].Groups[0], q); err != ErrUnsupported {
		t.Fatalf("ExecRow err = %v, want ErrUnsupported", err)
	}
	if _, err := Exec(col, q, ExecOpts{Strategy: StrategyColumn}); err != ErrUnsupported {
		t.Fatalf("column err = %v, want ErrUnsupported", err)
	}
	if _, err := Exec(col, q, ExecOpts{Strategy: StrategyHybrid}); err != ErrUnsupported {
		t.Fatalf("hybrid err = %v, want ErrUnsupported", err)
	}
	res, err := Exec(col, q, ExecOpts{Strategy: StrategyGeneric})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 1 {
		t.Fatalf("generic result rows = %d", res.Rows)
	}
}

func TestExpressionPredicateViaGeneric(t *testing.T) {
	tb, col, _, _ := fixture(t)
	// (a1 + a2) > 0 — an expression predicate (paper §3.4 mentions this
	// class explicitly).
	p := &expr.Cmp{Op: expr.Gt, L: expr.SumCols([]data.AttrID{1, 2}), R: &expr.Const{V: 0}}
	q := query.Aggregation("R", expr.AggCount, []data.AttrID{0}, p)
	res, err := Exec(col, q, ExecOpts{Strategy: StrategyGeneric})
	if err != nil {
		t.Fatal(err)
	}
	want := 0
	for r := 0; r < tb.Rows; r++ {
		if tb.Cols[1][r]+tb.Cols[2][r] > 0 {
			want++
		}
	}
	if res.Data[0] != data.Value(want) {
		t.Fatalf("count = %d, want %d", res.Data[0], want)
	}
}

func TestSplitConjunction(t *testing.T) {
	p := query.ConjLtGt(3, 10, 4, 20)
	preds, ok := SplitConjunction(p)
	if !ok || len(preds) != 2 {
		t.Fatalf("SplitConjunction = %v, %v", preds, ok)
	}
	if preds[0] != (ColPred{Attr: 3, Op: expr.Lt, Val: 10}) {
		t.Fatalf("pred[0] = %+v", preds[0])
	}
	// Mirrored constant-first comparison.
	m := &expr.Cmp{Op: expr.Lt, L: &expr.Const{V: 5}, R: &expr.Col{ID: 2}} // 5 < a2 ≡ a2 > 5
	preds, ok = SplitConjunction(m)
	if !ok || preds[0].Op != expr.Gt || preds[0].Val != 5 {
		t.Fatalf("mirrored pred = %+v, %v", preds, ok)
	}
	// Nil predicate splits to empty.
	preds, ok = SplitConjunction(nil)
	if !ok || len(preds) != 0 {
		t.Fatal("nil predicate should split trivially")
	}
	// Non-splittable shapes.
	if _, ok := SplitConjunction(&expr.Or{L: m, R: m}); ok {
		t.Fatal("Or must not split")
	}
	exprCmp := &expr.Cmp{Op: expr.Gt, L: expr.SumCols([]data.AttrID{0, 1}), R: &expr.Const{V: 0}}
	if _, ok := SplitConjunction(exprCmp); ok {
		t.Fatal("expression comparison must not split")
	}
	if _, ok := SplitConjunction(&expr.And{Terms: []expr.Pred{exprCmp}}); ok {
		t.Fatal("And containing non-splittable term must not split")
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		q    *query.Query
		kind OutKind
	}{
		{query.Projection("R", []data.AttrID{1, 2}, nil), OutProjection},
		{query.Aggregation("R", expr.AggMax, []data.AttrID{1}, nil), OutAggregates},
		{query.ArithExpression("R", []data.AttrID{1, 2}, nil), OutExpression},
		{query.AggExpression("R", []data.AttrID{1, 2}, nil), OutAggExpression},
		{&query.Query{Table: "R"}, OutOther},
		{&query.Query{Table: "R", Items: []query.SelectItem{
			{Expr: &expr.Arith{Op: expr.Mul, L: &expr.Col{ID: 0}, R: &expr.Col{ID: 1}}},
		}}, OutOther}, // products are not the sum template
		{&query.Query{Table: "R", Items: []query.SelectItem{
			{Expr: &expr.Col{ID: 0}},
			{Agg: &expr.Agg{Op: expr.AggSum, Arg: &expr.Col{ID: 1}}},
		}}, OutOther}, // mixed select
	}
	for i, c := range cases {
		if got := Classify(c.q); got.Kind != c.kind {
			t.Errorf("case %d: kind = %v, want %v", i, got.Kind, c.kind)
		}
	}
	// A single column is a projection, not an expression.
	if got := Classify(query.Projection("R", []data.AttrID{5}, nil)); got.Kind != OutProjection {
		t.Errorf("single column = %v", got.Kind)
	}
	for _, k := range []OutKind{OutProjection, OutAggregates, OutExpression, OutAggExpression, OutOther} {
		if k.String() == "" {
			t.Fatal("empty kind name")
		}
	}
}

func TestSumLeaves(t *testing.T) {
	attrs, ok := SumLeaves(expr.SumCols([]data.AttrID{3, 1, 3}))
	if !ok || !reflect.DeepEqual(attrs, []data.AttrID{3, 1, 3}) {
		t.Fatalf("SumLeaves = %v, %v (duplicates must survive)", attrs, ok)
	}
	if _, ok := SumLeaves(&expr.Const{V: 1}); ok {
		t.Fatal("constants are not sum leaves")
	}
	if _, ok := SumLeaves(&expr.Arith{Op: expr.Sub, L: &expr.Col{ID: 0}, R: &expr.Col{ID: 1}}); ok {
		t.Fatal("subtraction is not the sum template")
	}
}

func TestFilterKernelsAllOps(t *testing.T) {
	tb := data.Generate(data.SyntheticSchema("R", 2), 500, 3)
	g := storage.BuildGroup(tb, []data.AttrID{0, 1})
	for _, op := range []expr.CmpOp{expr.Lt, expr.Le, expr.Gt, expr.Ge, expr.Eq, expr.Ne} {
		val := tb.Cols[0][123] // guarantees at least one Eq match
		sel := FilterGroup(g, []GroupPred{{Off: 0, Op: op, Val: val}}, 0, g.Rows, nil)
		want := 0
		for r := 0; r < g.Rows; r++ {
			if expr.Compare(op, tb.Cols[0][r], val) {
				want++
			}
		}
		if len(sel) != want {
			t.Fatalf("op %v: |sel| = %d, want %d", op, len(sel), want)
		}
		for _, r := range sel {
			if !expr.Compare(op, tb.Cols[0][r], val) {
				t.Fatalf("op %v: row %d should not qualify", op, r)
			}
		}
	}
}

func TestFilterGroupRange(t *testing.T) {
	tb := data.Generate(data.SyntheticSchema("R", 1), 100, 5)
	g := storage.BuildGroup(tb, []data.AttrID{0})
	// No predicates: the range itself is the selection.
	sel := FilterGroup(g, nil, 10, 20, nil)
	if len(sel) != 20 || sel[0] != 10 || sel[19] != 29 {
		t.Fatalf("range selection wrong: %v", sel)
	}
}

func TestRefineSel(t *testing.T) {
	tb := data.Generate(data.SyntheticSchema("R", 2), 1000, 9)
	g := storage.BuildGroup(tb, []data.AttrID{0, 1})
	all := FilterGroup(g, nil, 0, g.Rows, nil)
	refined := RefineSel(g, []GroupPred{{Off: 1, Op: expr.Gt, Val: 0}}, all)
	want := 0
	for r := 0; r < g.Rows; r++ {
		if tb.Cols[1][r] > 0 {
			want++
		}
	}
	if len(refined) != want {
		t.Fatalf("|refined| = %d, want %d", len(refined), want)
	}
}

func TestAggKernelsMatchStates(t *testing.T) {
	tb := data.Generate(data.SyntheticSchema("R", 1), 777, 11)
	g := storage.BuildGroup(tb, []data.AttrID{0})
	sel := []int32{0, 5, 100, 700}
	for _, op := range []expr.AggOp{expr.AggSum, expr.AggMax, expr.AggMin, expr.AggCount, expr.AggAvg} {
		s := expr.NewAggState(op)
		for r := 0; r < g.Rows; r++ {
			s.Add(tb.Cols[0][r])
		}
		if got := AggColumnAll(g, 0, op); got != s.Result() {
			t.Fatalf("AggColumnAll(%v) = %d, want %d", op, got, s.Result())
		}
		s2 := expr.NewAggState(op)
		for _, r := range sel {
			s2.Add(tb.Cols[0][r])
		}
		if got := AggColumnSel(g, 0, op, sel); got != s2.Result() {
			t.Fatalf("AggColumnSel(%v) = %d, want %d", op, got, s2.Result())
		}
		vals := []data.Value{3, -1, 7, 7}
		s3 := expr.NewAggState(op)
		for _, v := range vals {
			s3.Add(v)
		}
		if got := AggVector(vals, op); got != s3.Result() {
			t.Fatalf("AggVector(%v) = %d, want %d", op, got, s3.Result())
		}
	}
	if AggColumnSel(g, 0, expr.AggSum, nil) != 0 {
		t.Fatal("empty selection should aggregate to 0")
	}
	if AggVector(nil, expr.AggMax) != 0 {
		t.Fatal("empty vector should aggregate to 0")
	}
}

func TestSumOffsetsKernels(t *testing.T) {
	tb := data.Generate(data.SyntheticSchema("R", 6), 300, 13)
	g := storage.BuildGroup(tb, []data.AttrID{0, 1, 2, 3, 4, 5})
	for _, k := range []int{1, 2, 3, 5} {
		offs := make([]int, k)
		for i := range offs {
			offs[i] = i
		}
		out := make([]data.Value, g.Rows)
		SumOffsetsAll(g, offs, out)
		for r := 0; r < g.Rows; r++ {
			var want data.Value
			for a := 0; a < k; a++ {
				want += tb.Cols[a][r]
			}
			if out[r] != want {
				t.Fatalf("k=%d SumOffsetsAll row %d: %d != %d", k, r, out[r], want)
			}
		}
		sel := []int32{3, 50, 299}
		outSel := make([]data.Value, len(sel))
		SumOffsetsSel(g, offs, sel, outSel)
		for i, r := range sel {
			var want data.Value
			for a := 0; a < k; a++ {
				want += tb.Cols[a][int(r)]
			}
			if outSel[i] != want {
				t.Fatalf("k=%d SumOffsetsSel idx %d wrong", k, i)
			}
		}
	}
}

func TestAddVectorsMaterialized(t *testing.T) {
	a := []data.Value{1, 2, 3}
	b := []data.Value{10, 20, 30}
	c := []data.Value{100, 200, 300}
	got := AddVectorsMaterialized([][]data.Value{a, b, c})
	if !reflect.DeepEqual(got, []data.Value{111, 222, 333}) {
		t.Fatalf("sum = %v", got)
	}
	// Single input must copy, not alias.
	single := AddVectorsMaterialized([][]data.Value{a})
	single[0] = 99
	if a[0] == 99 {
		t.Fatal("single-column result aliases input")
	}
	if AddVectorsMaterialized(nil) != nil {
		t.Fatal("empty input should be nil")
	}
}

func TestReorgAnswersAndBuilds(t *testing.T) {
	tb, col, row, grp := fixture(t)
	q := query.AggExpression("R", []data.AttrID{2, 5, 9}, query.ConjLtGt(1, 400_000_000, 7, -400_000_000))
	want := referenceExecute(tb, q)
	for _, rel := range []*storage.Relation{col, row, grp} {
		attrs := q.AllAttrs()
		var groups []*storage.ColumnGroup
		res, err := Exec(rel, q, ExecOpts{Strategy: StrategyReorg, ReorgAttrs: attrs, NewGroups: &groups})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equal(want) {
			t.Fatalf("reorg result mismatch on %v", rel.Kind())
		}
		if len(groups) != len(rel.Segments) || groups[0] == nil {
			t.Fatalf("expected one new group per segment, got %v", groups)
		}
		g := groups[0]
		if !reflect.DeepEqual(g.Attrs, attrs) {
			t.Fatalf("new group attrs = %v, want %v", g.Attrs, attrs)
		}
		// The new group must hold exactly the source data.
		for r := 0; r < 50; r++ {
			for _, a := range attrs {
				if g.Value(r, a) != tb.Value(r, a) {
					t.Fatalf("reorg corrupted data at (%d,%d)", r, a)
				}
			}
		}
	}
}

func TestReorgWiderThanQuery(t *testing.T) {
	tb, col, _, _ := fixture(t)
	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, nil)
	attrs := []data.AttrID{1, 2, 3, 4} // build a wider group than the query needs
	var groups []*storage.ColumnGroup
	res, err := Exec(col, q, ExecOpts{Strategy: StrategyReorg, ReorgAttrs: attrs, NewGroups: &groups})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(referenceExecute(tb, q)) {
		t.Fatal("result wrong when group is wider than query")
	}
	if groups[0].Width != 4 {
		t.Fatalf("group width = %d", groups[0].Width)
	}
}

func TestReorgGenericFallback(t *testing.T) {
	tb, col, _, _ := fixture(t)
	or := &expr.Or{L: query.PredLt(0, 0).(*expr.Cmp), R: query.PredGt(1, 0).(*expr.Cmp)}
	q := query.Aggregation("R", expr.AggCount, []data.AttrID{2}, or)
	var groups []*storage.ColumnGroup
	res, err := Exec(col, q, ExecOpts{Strategy: StrategyReorg, ReorgAttrs: q.AllAttrs(), NewGroups: &groups})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(referenceExecute(tb, q)) {
		t.Fatal("fallback reorg result wrong")
	}
	if len(groups) == 0 || groups[0] == nil || !groups[0].HasAll(q.AllAttrs()) {
		t.Fatal("fallback must still build the group")
	}
}

func TestAccessPlans(t *testing.T) {
	_, col, row, grp := fixture(t)
	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 5, 9}, query.PredLt(0, 0))
	// Row plan requires a covering group.
	if AccessPlan(StrategyRow, col, q, 0.5) != nil {
		t.Fatal("row plan should be unavailable on a column layout")
	}
	if plan := AccessPlan(StrategyRow, row, q, 0.5); len(plan) != 1 || plan[0].Stride != testAttrs {
		t.Fatalf("row plan wrong: %+v", plan)
	}
	// Column plan touches one access per attribute (pred + selects).
	if plan := AccessPlan(StrategyColumn, col, q, 0.5); len(plan) != 4 {
		t.Fatalf("column plan has %d accesses, want 4", len(plan))
	}
	// Hybrid plan on the 3-group layout touches the covering groups.
	plan := AccessPlan(StrategyHybrid, grp, q, 0.5)
	if len(plan) == 0 || len(plan) > 3 {
		t.Fatalf("hybrid plan has %d accesses", len(plan))
	}
	// Generic must be costed above hybrid (interpretation overhead).
	if len(AccessPlan(StrategyGeneric, grp, q, 0.5)) == 0 {
		t.Fatal("generic plan missing")
	}
	for _, s := range []Strategy{StrategyRow, StrategyColumn, StrategyHybrid, StrategyGeneric, StrategyReorg, Strategy(99)} {
		if s.String() == "" {
			t.Fatal("empty strategy name")
		}
	}
}

// Property: for random single-predicate aggregation queries, row, column,
// hybrid and generic strategies agree with each other.
func TestStrategiesAgreeProperty(t *testing.T) {
	tb := data.Generate(data.SyntheticSchema("R", 8), 512, 21)
	col := storage.BuildColumnMajor(tb)
	row := storage.BuildRowMajor(tb, false)
	rng := rand.New(rand.NewSource(5))
	f := func(predAttrRaw, k uint8, cut int64, gtFlag bool) bool {
		predAttr := int(predAttrRaw) % 8
		attrs := query.RandomAttrs(8, 1+int(k)%4, rng.Intn)
		var p expr.Pred
		if gtFlag {
			p = query.PredGt(predAttr, cut%data.ValueHi)
		} else {
			p = query.PredLt(predAttr, cut%data.ValueHi)
		}
		q := query.Aggregation("R", expr.AggSum, attrs, p)
		a, err1 := Exec(row, q, ExecOpts{Strategy: StrategyRow})
		b, err2 := Exec(col, q, ExecOpts{Strategy: StrategyColumn})
		c, err3 := Exec(col, q, ExecOpts{Strategy: StrategyHybrid})
		d, err4 := Exec(row, q, ExecOpts{Strategy: StrategyGeneric})
		if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
			return false
		}
		return a.Equal(b) && b.Equal(c) && c.Equal(d)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestResultAccessors(t *testing.T) {
	r := &Result{Cols: []string{"x", "y"}, Rows: 2, Data: []data.Value{1, 2, 3, 4}}
	if r.Width() != 2 || r.At(1, 0) != 3 {
		t.Fatal("accessors wrong")
	}
	if !reflect.DeepEqual(r.Row(1), []data.Value{3, 4}) {
		t.Fatal("Row wrong")
	}
	if r.String() == "" {
		t.Fatal("empty String")
	}
	o := &Result{Cols: []string{"x", "y"}, Rows: 2, Data: []data.Value{1, 2, 3, 5}}
	if r.Equal(o) {
		t.Fatal("Equal missed a differing value")
	}
	if r.Equal(&Result{Cols: []string{"x"}, Rows: 2, Data: []data.Value{1, 2}}) {
		t.Fatal("Equal missed shape difference")
	}
}
