package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// Cross-strategy equivalence harness: a generator-driven property test that
// runs randomized queries through every execution strategy on randomized
// segmented relations — mixed per-segment layouts, partial/exact-boundary
// tails, empty relations, 0–100% residency — and demands results identical
// to the generic interpreter. It is the safety net the segment-precise
// cache keying (and every future exec change) runs against: any strategy
// that diverges on some (layout, query, residency) combination fails here
// before it can poison a cached result.

const (
	eqSchemaWidth = 6
	eqSegCap      = 128
)

// eqRelation builds one randomized relation: random size (including zero
// rows and exact segment-boundary sizes), random base layout, random
// per-segment group additions so segments legitimately disagree on layout.
func eqRelation(t testing.TB, rng *rand.Rand) *storage.Relation {
	t.Helper()
	schema := data.SyntheticSchema("R", eqSchemaWidth)
	rowChoices := []int{0, 1, eqSegCap - 1, eqSegCap, 3 * eqSegCap, 4*eqSegCap + 77}
	rows := rowChoices[rng.Intn(len(rowChoices))]

	var tb *data.Table
	if rng.Intn(2) == 0 {
		tb = data.GenerateTimeSeries(schema, rows, rng.Int63()) // zone-map-prunable
	} else {
		tb = data.Generate(schema, rows, rng.Int63())
	}

	var rel *storage.Relation
	if rng.Intn(2) == 0 {
		rel = storage.BuildColumnMajorSeg(tb, eqSegCap)
	} else {
		rel = storage.BuildRowMajorSeg(tb, false, eqSegCap)
	}

	// Mixed layouts: stitch extra groups into a random subset of segments,
	// so covering-group resolution runs per segment, not per relation.
	all := make([]data.AttrID, eqSchemaWidth)
	for a := range all {
		all[a] = a
	}
	for _, seg := range rel.Segments {
		if seg.Rows == 0 {
			continue
		}
		switch rng.Intn(3) {
		case 0: // keep the base layout
		case 1: // add a full-width row group
			if _, ok := seg.ExactGroup(all); ok {
				continue
			}
			g, err := storage.StitchSeg(seg, all)
			if err != nil {
				t.Fatal(err)
			}
			if err := seg.AddGroup(g); err != nil {
				t.Fatal(err)
			}
		case 2: // add a random narrow group (2–3 attrs)
			attrs := query.RandomAttrs(eqSchemaWidth, 2+rng.Intn(2), rng.Intn)
			if _, ok := seg.ExactGroup(attrs); ok {
				continue
			}
			g, err := storage.StitchSeg(seg, attrs)
			if err != nil {
				t.Fatal(err)
			}
			if err := seg.AddGroup(g); err != nil {
				t.Fatal(err)
			}
		}
	}
	return rel
}

// eqPredConst picks a predicate constant: for the (possibly) position-valued
// attribute 0 a value in and around [0, rows); otherwise a draw from the
// full synthetic domain, occasionally extreme so match-nothing and
// match-everything predicates both occur.
func eqPredConst(rng *rand.Rand, attr data.AttrID, rows int) data.Value {
	switch rng.Intn(5) {
	case 0:
		return data.ValueLo - 1 // matches nothing for <, everything for >
	case 1:
		return data.ValueHi + 1
	default:
		if attr == 0 && rng.Intn(2) == 0 {
			return data.Value(rng.Intn(rows + 1))
		}
		return data.ValueLo + data.Value(rng.Int63n(int64(data.ValueHi-data.ValueLo)))
	}
}

// eqQuery generates one randomized query: projection / per-column
// aggregates / arithmetic expression / aggregated expression / grouped
// aggregation (mixed per-item ops, occasionally expression arguments or
// unselected keys) / key-only grouping over random attributes, with a random
// predicate shape (none, single comparison, conjunction, disjunction) and a
// random limit.
func eqQuery(rng *rand.Rand, rows int) *query.Query {
	attrs := query.RandomAttrs(eqSchemaWidth, 1+rng.Intn(3), rng.Intn)

	var where expr.Pred
	cmp := func() expr.Pred {
		a := data.AttrID(rng.Intn(eqSchemaWidth))
		ops := []expr.CmpOp{expr.Lt, expr.Le, expr.Gt, expr.Ge}
		return &expr.Cmp{Op: ops[rng.Intn(len(ops))], L: &expr.Col{ID: a},
			R: &expr.Const{V: eqPredConst(rng, a, rows)}}
	}
	switch rng.Intn(4) {
	case 0: // no predicate
	case 1:
		where = cmp()
	case 2:
		where = &expr.And{Terms: []expr.Pred{cmp(), cmp()}}
	case 3:
		// Disjunction: non-splittable — only the generic interpreter and
		// the parallel scan's interpreted filter support it; the rest must
		// cleanly report ErrUnsupported, never a wrong answer.
		where = &expr.Or{L: cmp(), R: cmp()}
	}

	var q *query.Query
	switch rng.Intn(6) {
	case 0:
		q = query.Projection("R", attrs, where)
	case 1:
		ops := []expr.AggOp{expr.AggSum, expr.AggMax, expr.AggMin, expr.AggCount, expr.AggAvg}
		q = query.Aggregation("R", ops[rng.Intn(len(ops))], attrs, where)
	case 2:
		q = query.ArithExpression("R", attrs, where)
	case 3:
		q = query.AggExpression("R", attrs, where)
	case 4:
		// Grouped aggregation: random keys, a mixed aggregate op per item,
		// occasionally an expression argument, occasionally a key left out of
		// the select list (legal: grouping still runs over the full key
		// vector, the output just omits that column).
		keys := query.RandomAttrs(eqSchemaWidth, 1+rng.Intn(2), rng.Intn)
		gb := make([]expr.Col, len(keys))
		items := make([]query.SelectItem, 0, len(keys)+len(attrs))
		for i, k := range keys {
			gb[i] = expr.Col{ID: k}
			if len(keys) == 1 || rng.Intn(4) != 0 {
				items = append(items, query.SelectItem{Expr: &expr.Col{ID: k}})
			}
		}
		ops := []expr.AggOp{expr.AggSum, expr.AggMax, expr.AggMin, expr.AggCount, expr.AggAvg}
		for _, a := range attrs {
			var arg expr.Expr = &expr.Col{ID: a}
			if rng.Intn(4) == 0 {
				arg = expr.SumCols(query.RandomAttrs(eqSchemaWidth, 2, rng.Intn))
			}
			items = append(items, query.SelectItem{Agg: &expr.Agg{Op: ops[rng.Intn(len(ops))], Arg: arg}})
		}
		q = &query.Query{Table: "R", Items: items, Where: where, GroupBy: gb}
	case 5:
		// Key-only grouping (DISTINCT-like): groups with no aggregates.
		keys := query.RandomAttrs(eqSchemaWidth, 1+rng.Intn(2), rng.Intn)
		gb := make([]expr.Col, len(keys))
		items := make([]query.SelectItem, len(keys))
		for i, k := range keys {
			gb[i] = expr.Col{ID: k}
			items[i] = query.SelectItem{Expr: &expr.Col{ID: k}}
		}
		q = &query.Query{Table: "R", Items: items, Where: where, GroupBy: gb}
	}
	if !q.HasAggregates() && len(q.GroupBy) == 0 && rng.Intn(3) == 0 {
		q.Limit = 1 + rng.Intn(2*eqSegCap)
	}
	// Grouped output is a key-ordered prefix under LIMIT, so limits compose
	// with every strategy; small ones exercise the trim.
	if len(q.GroupBy) > 0 && rng.Intn(4) == 0 {
		q.Limit = 1 + rng.Intn(6)
	}
	return q
}

// trimLimit truncates a materialized result to q.Limit rows, mirroring the
// engine's applyLimit: strategies stop consuming *segments* at the limit
// but may overshoot within the last one, and the overshoot may legitimately
// differ between strategies.
func trimLimit(q *query.Query, r *Result) *Result {
	if q.Limit <= 0 || r.Rows <= q.Limit {
		return r
	}
	return &Result{Cols: r.Cols, Rows: q.Limit, Data: r.Data[:q.Limit*len(r.Cols)]}
}

// groupedRowsEqual compares two grouped results order-insensitively: equal
// column sets and equal row multisets, regardless of emission order. The
// strategies additionally promise key-ordered emission (which exact Equal
// checks); this weaker comparison isolates "wrong groups" failures from
// "right groups, wrong order" failures.
func groupedRowsEqual(a, b *Result) bool {
	if a.Rows != b.Rows || len(a.Cols) != len(b.Cols) {
		return false
	}
	for i := range a.Cols {
		if a.Cols[i] != b.Cols[i] {
			return false
		}
	}
	w := len(a.Cols)
	count := make(map[string]int, a.Rows)
	for i := 0; i < a.Rows; i++ {
		count[fmt.Sprint(a.Data[i*w:(i+1)*w])]++
	}
	for i := 0; i < b.Rows; i++ {
		count[fmt.Sprint(b.Data[i*w:(i+1)*w])]--
	}
	for _, c := range count {
		if c != 0 {
			return false
		}
	}
	return true
}

// unloadFraction spills the given fraction of sealed, resident segments
// (rounded up), coldest-index-first for determinism.
func unloadFraction(rel *storage.Relation, frac float64) {
	if frac <= 0 {
		return
	}
	sealed := make([]*storage.Segment, 0, len(rel.Segments))
	for _, seg := range rel.Segments[:len(rel.Segments)-1] {
		if seg.Rows > 0 {
			sealed = append(sealed, seg)
		}
	}
	n := int(frac*float64(len(sealed)) + 0.999999)
	for i := 0; i < n && i < len(sealed); i++ {
		sealed[i].Unload()
	}
}

// demoteFraction drops the flat data of the given fraction of sealed,
// flat-resident segments (rounded up) to the encoded rung, lowest index
// first for determinism. Unlike unloadFraction it is always safe after
// mutations: the encoding is built from the segment's current data.
func demoteFraction(rel *storage.Relation, frac float64) {
	if frac <= 0 || len(rel.Segments) == 0 {
		return
	}
	var sealed []*storage.Segment
	for _, seg := range rel.Segments[:len(rel.Segments)-1] {
		if seg.Rows > 0 && seg.State() == storage.SegResident {
			sealed = append(sealed, seg)
		}
	}
	n := int(frac*float64(len(sealed)) + 0.999999)
	for i := 0; i < n && i < len(sealed); i++ {
		sealed[i].DemoteToEncoded()
	}
}

// eqStrategy is one strategy under test.
type eqStrategy struct {
	name string
	// rowShape marks strategies that need a single covering group per
	// segment; they are skipped (not failed) when the layout lacks one.
	rowShape bool
	run      func(rel *storage.Relation, q *query.Query) (*Result, error)
}

func eqStrategies(rng *rand.Rand) []eqStrategy {
	return []eqStrategy{
		{"row", true, func(rel *storage.Relation, q *query.Query) (*Result, error) {
			return Exec(rel, q, ExecOpts{Strategy: StrategyRow})
		}},
		{"row-parallel", true, func(rel *storage.Relation, q *query.Query) (*Result, error) {
			return Exec(rel, q, ExecOpts{Strategy: StrategyRow, Workers: 1 + rng.Intn(7)})
		}},
		{"column", false, func(rel *storage.Relation, q *query.Query) (*Result, error) {
			return Exec(rel, q, ExecOpts{Strategy: StrategyColumn})
		}},
		{"hybrid", false, func(rel *storage.Relation, q *query.Query) (*Result, error) {
			return Exec(rel, q, ExecOpts{Strategy: StrategyHybrid})
		}},
		{"generic", false, func(rel *storage.Relation, q *query.Query) (*Result, error) {
			return Exec(rel, q, ExecOpts{Strategy: StrategyGeneric})
		}},
		{"vectorized", false, func(rel *storage.Relation, q *query.Query) (*Result, error) {
			sizes := []int{0, 7, 64, 1024}
			return Exec(rel, q, ExecOpts{Strategy: StrategyVectorized, VectorSize: sizes[rng.Intn(len(sizes))]})
		}},
		{"bitmap", false, func(rel *storage.Relation, q *query.Query) (*Result, error) {
			return Exec(rel, q, ExecOpts{Strategy: StrategyBitmap})
		}},
		{"encoded", false, func(rel *storage.Relation, q *query.Query) (*Result, error) {
			return Exec(rel, q, ExecOpts{Strategy: StrategyEncoded})
		}},
		{"reorg", false, func(rel *storage.Relation, q *query.Query) (*Result, error) {
			// Random hot mask: the reorganizing executor must answer
			// identically whichever segments it stitches, and it must not
			// register the groups it builds (the engine does that).
			hot := make([]bool, len(rel.Segments))
			for i := range hot {
				hot[i] = rng.Intn(2) == 0
			}
			return Exec(rel, q, ExecOpts{Strategy: StrategyReorg, ReorgAttrs: q.AllAttrs(), HotMask: hot})
		}},
	}
}

// checkEquivalence runs every strategy against the generic reference on one
// (relation, query, residency) combination.
func checkEquivalence(t *testing.T, rng *rand.Rand, rel *storage.Relation, q *query.Query, residentFrac float64) {
	t.Helper()
	want, err := Exec(rel, q, ExecOpts{Strategy: StrategyGeneric})
	if err != nil {
		t.Fatalf("reference execution failed for %s: %v", q, err)
	}
	want = trimLimit(q, want)

	for _, s := range eqStrategies(rng) {
		// Re-establish the residency mix before each strategy: the previous
		// one faulted whatever it scanned back in. Half of the segments left
		// flat-resident are then demoted to the encoded rung, so every
		// strategy sees flat, encoded and spilled segments side by side.
		unloadFraction(rel, 1-residentFrac)
		demoteFraction(rel, 0.5)
		if s.rowShape && !RowCovered(rel, q) {
			continue
		}
		got, err := s.run(rel, q)
		if err == ErrUnsupported {
			continue // shape outside the strategy's template library
		}
		if err != nil {
			t.Fatalf("strategy %s failed on %s (resident %.0f%%): %v", s.name, q, residentFrac*100, err)
		}
		got = trimLimit(q, got)
		if len(q.GroupBy) > 0 && !groupedRowsEqual(got, want) {
			t.Fatalf("strategy %s produced wrong groups on %s (resident %.0f%%):\n got %d rows %v\nwant %d rows %v",
				s.name, q, residentFrac*100, got.Rows, got.Data, want.Rows, want.Data)
		}
		if !got.Equal(want) {
			t.Fatalf("strategy %s diverged on %s (resident %.0f%%):\n got %d rows %v\nwant %d rows %v",
				s.name, q, residentFrac*100, got.Rows, got.Data, want.Rows, want.Data)
		}
	}
}

// TestCrossStrategyEquivalence is the harness entry point: for each
// residency level, a fresh set of randomized relations each runs a batch of
// randomized queries through every strategy.
func TestCrossStrategyEquivalence(t *testing.T) {
	const (
		relationsPerLevel = 5
		queriesPerRel     = 14
	)
	for _, residentFrac := range []float64{0, 0.5, 1} {
		residentFrac := residentFrac
		t.Run(fmt.Sprintf("resident=%.0f%%", residentFrac*100), func(t *testing.T) {
			rng := rand.New(rand.NewSource(20140622 + int64(residentFrac*100)))
			for r := 0; r < relationsPerLevel; r++ {
				rel := eqRelation(t, rng)
				installSnapshotLoader(rel)
				for i := 0; i < queriesPerRel; i++ {
					q := eqQuery(rng, rel.Rows)
					checkEquivalence(t, rng, rel, q, residentFrac)
				}
			}
		})
	}
}

// eqMutate applies a batch of randomized mutations to rel: tail appends
// (possibly rolling the tail over into a fresh segment) and segment-local
// reorganizations (a stitched group added to a random non-empty segment,
// bumping its version exactly as incremental adaptation does).
func eqMutate(t testing.TB, rng *rand.Rand, rel *storage.Relation) {
	t.Helper()
	for n := 1 + rng.Intn(3); n > 0; n-- {
		switch rng.Intn(3) {
		case 0, 1: // appends, occasionally a burst that seals the tail
			count := 1 + rng.Intn(2*eqSegCap/3)
			for i := 0; i < count; i++ {
				tuple := make([]data.Value, eqSchemaWidth)
				tuple[0] = data.Value(rel.Rows) // keep attr 0 append-ordered
				for a := 1; a < eqSchemaWidth; a++ {
					tuple[a] = data.ValueLo + data.Value(rng.Int63n(int64(data.ValueHi-data.ValueLo)))
				}
				if err := rel.Append(tuple); err != nil {
					t.Fatal(err)
				}
			}
		case 2: // segment-local reorg
			var nonEmpty []*storage.Segment
			for _, seg := range rel.Segments {
				if seg.Rows > 0 {
					nonEmpty = append(nonEmpty, seg)
				}
			}
			if len(nonEmpty) == 0 {
				continue
			}
			seg := nonEmpty[rng.Intn(len(nonEmpty))]
			attrs := query.RandomAttrs(eqSchemaWidth, 2+rng.Intn(2), rng.Intn)
			if _, ok := seg.ExactGroup(attrs); ok {
				continue
			}
			g, err := storage.StitchSeg(seg, attrs)
			if err != nil {
				t.Fatal(err)
			}
			if err := seg.AddGroup(g); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// TestDeltaRepairEquivalence extends the harness to the partial-result
// layer: every randomized query that classifies as repairable has its
// partials cached, the relation is mutated by random appends and
// segment-local reorgs, and the query is then answered via cached partials
// plus a delta rescan of only the changed candidates — the repaired result
// must equal a fresh full scan of the mutated state, and the rescan set
// must be disjoint from the version-matched reuse set.
func TestDeltaRepairEquivalence(t *testing.T) {
	const (
		relations       = 8
		queriesPerRel   = 10
		mutationsPerRel = 4
	)
	rng := rand.New(rand.NewSource(20260730))
	for r := 0; r < relations; r++ {
		rel := eqRelation(t, rng)
		installSnapshotLoader(rel)

		// Collect repairable randomized queries (aggregate and grouped
		// shapes without limits) and seed their partials. The first few
		// slots insist on GROUP BY so grouped delta repair is exercised in
		// every relation's batch regardless of the draw.
		type seeded struct {
			q     *query.Query
			prior *PartialResult
		}
		var qs []seeded
		for len(qs) < queriesPerRel {
			q := eqQuery(rng, rel.Rows)
			if len(qs) < 3 && len(q.GroupBy) == 0 {
				continue
			}
			if !Repairable(q) {
				continue
			}
			prior, err := ExecPartials(rel, q, nil)
			if err != nil {
				t.Fatalf("seed %s: %v", q, err)
			}
			qs = append(qs, seeded{q, prior})
		}

		for m := 0; m < mutationsPerRel; m++ {
			eqMutate(t, rng, rel)
			// Demote a slice of the sealed segments so delta repair reads a
			// mix of flat and encoded-resident candidates every round.
			demoteFraction(rel, 0.5)
			for i := range qs {
				q, prior := qs[i].q, qs[i].prior
				have := prior.Versions()
				// Random worker counts: serial and fanned-out rescans must
				// produce identical partials.
				fresh, reused, err := ExecDelta(rel, q, have, 1+rng.Intn(4), nil)
				if err != nil {
					t.Fatalf("delta %s: %v", q, err)
				}
				for _, si := range reused {
					if v := rel.Segments[si].Version(); v != have[si] {
						t.Fatalf("%s: reused segment %d at version %d, cached %d", q, si, v, have[si])
					}
				}
				for si := range fresh.Segs {
					if hv, ok := have[si]; ok && hv == rel.Segments[si].Version() {
						t.Fatalf("%s: rescanned segment %d whose version never moved", q, si)
					}
				}
				repaired := Repaired(prior, fresh, reused)
				want, err := Exec(rel, q, ExecOpts{Strategy: StrategyGeneric})
				if err != nil {
					t.Fatal(err)
				}
				if got := repaired.Result(); !got.Equal(want) {
					t.Fatalf("repair diverged on %s after mutation %d:\n got %v\nwant %v",
						q, m, got.Data, want.Data)
				}
				// The repaired payload becomes the next round's cache, just
				// as the serving layer republishes it.
				qs[i].prior = repaired
			}
		}
	}
}

// BenchmarkEquivalenceHarness times one fixed-seed harness pass (one
// relation, a query batch, every strategy, 50% residency). It rides in the
// CI bench.json artifact so the perf trajectory catches a harness blowup —
// the harness guards every exec PR, so its own cost must stay visible.
func BenchmarkEquivalenceHarness(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	rel := eqRelation(b, rng)
	installSnapshotLoader(rel)
	queries := make([]*query.Query, 12)
	for i := range queries {
		queries[i] = eqQuery(rng, rel.Rows)
	}
	strategies := eqStrategies(rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range queries {
			for _, s := range strategies {
				unloadFraction(rel, 0.5)
				if s.rowShape && !RowCovered(rel, q) {
					continue
				}
				if _, err := s.run(rel, q); err != nil && err != ErrUnsupported {
					b.Fatal(err)
				}
			}
		}
	}
}
