package exec

import (
	"sort"

	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// This file holds the grouped-aggregation machinery shared by every
// strategy: a per-scan group accumulator (group key → AggState vector), an
// order-preserving key codec so sorting encoded keys sorts key vectors, a
// fused kernel binding for single-covering-group scans (the row strategies)
// and an accessor-based folder for multi-group layouts (column, hybrid,
// vectorized, bitmap, generic). All strategies emit groups ordered ascending
// by key vector, so grouped results are bit-identical across strategies and
// the delta-repair path, and LIMIT on a grouped query is a deterministic
// prefix of groups.

// encodeGroupKey appends the order-preserving fixed-width encoding of key to
// dst: each value is sign-flipped and written big-endian, so lexicographic
// order of encoded keys equals ascending numeric order of key vectors.
func encodeGroupKey(dst []byte, key []data.Value) []byte {
	for _, v := range key {
		u := uint64(v) ^ (1 << 63)
		dst = append(dst, byte(u>>56), byte(u>>48), byte(u>>40), byte(u>>32),
			byte(u>>24), byte(u>>16), byte(u>>8), byte(u))
	}
	return dst
}

// decodeGroupKey appends the key vector encoded in k to dst.
func decodeGroupKey(k string, dst []data.Value) []data.Value {
	for i := 0; i+8 <= len(k); i += 8 {
		var u uint64
		for j := 0; j < 8; j++ {
			u = u<<8 | uint64(k[i+j])
		}
		dst = append(dst, data.Value(u^(1<<63)))
	}
	return dst
}

// groupedAcc accumulates one scan's groups: encoded key → one AggState per
// aggregate select item, in item order.
type groupedAcc struct {
	ops  []expr.AggOp
	m    map[string][]*expr.AggState
	kbuf []byte
}

func newGroupedAcc(out Outputs) *groupedAcc {
	return &groupedAcc{ops: out.GroupOps, m: make(map[string][]*expr.AggState)}
}

func (ga *groupedAcc) fresh() []*expr.AggState {
	sts := make([]*expr.AggState, len(ga.ops))
	for i, op := range ga.ops {
		sts[i] = expr.NewAggState(op)
	}
	return sts
}

// statesFor returns the aggregate vector for the key, creating fresh states
// on first sight. The returned slice may be empty for key-only (DISTINCT-
// like) grouped queries; the group's existence is still recorded.
func (ga *groupedAcc) statesFor(key []data.Value) []*expr.AggState {
	ga.kbuf = encodeGroupKey(ga.kbuf[:0], key)
	sts, ok := ga.m[string(ga.kbuf)]
	if !ok {
		sts = ga.fresh()
		ga.m[string(ga.kbuf)] = sts
	}
	return sts
}

// mergeMap folds a group map into ga key-wise, always into fresh or
// ga-owned states — the source map's states are never mutated, which is
// what lets cached SegPartial group maps be shared across repairs.
func (ga *groupedAcc) mergeMap(m map[string][]*expr.AggState) {
	for k, src := range m {
		sts, ok := ga.m[k]
		if !ok {
			sts = ga.fresh()
			ga.m[k] = sts
		}
		for i := range sts {
			sts[i].Merge(src[i])
		}
	}
}

// groupedResult materializes the accumulated groups as a Result with one row
// per group, ordered ascending by key vector. Key items read from the
// decoded key; aggregate items finalize their states.
func groupedResult(out Outputs, ga *groupedAcc) *Result {
	keys := make([]string, 0, len(ga.m))
	for k := range ga.m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	aggIdx := make([]int, len(out.ItemKey))
	n := 0
	for i, ki := range out.ItemKey {
		if ki < 0 {
			aggIdx[i] = n
			n++
		}
	}
	res := &Result{
		Cols: out.Labels,
		Rows: len(keys),
		Data: make([]data.Value, 0, len(keys)*len(out.Labels)),
	}
	kv := make([]data.Value, 0, len(out.GroupBy))
	for _, k := range keys {
		kv = decodeGroupKey(k, kv[:0])
		sts := ga.m[k]
		for i, ki := range out.ItemKey {
			if ki >= 0 {
				res.Data = append(res.Data, kv[ki])
			} else {
				res.Data = append(res.Data, sts[aggIdx[i]].Result())
			}
		}
	}
	return res
}

// groupedScanAttrs returns the attributes a grouped fold must read: the
// group keys plus every aggregate-argument attribute. Predicate columns are
// excluded — the caller's selection machinery has already applied them.
func groupedScanAttrs(out Outputs) []data.AttrID {
	attrs := append([]data.AttrID(nil), out.GroupBy...)
	for _, e := range out.GroupArgs {
		attrs = e.Attrs(attrs)
	}
	return data.SortedUnique(attrs)
}

// groupedScanner is the fused grouped kernel over one covering group: key
// columns read by word offset, aggregate arguments read by offset sums when
// they are pure column sums, otherwise evaluated through a once-per-segment
// accessor closure (mirroring rangeFilter's generic path).
type groupedScanner struct {
	keyOffs []int
	keyBuf  []data.Value
	args    []groupedArg
	d       []data.Value
	base    int
	offs    []int // attribute id -> word offset, fallback args only
	get     expr.Accessor
}

type groupedArg struct {
	sumOffs []int     // non-nil: the argument is a sum of these offsets
	e       expr.Expr // otherwise: evaluate through the accessor
}

func newGroupedScanner(g *storage.ColumnGroup, out Outputs) *groupedScanner {
	s := &groupedScanner{
		keyOffs: mustOffsets(g, out.GroupBy),
		keyBuf:  make([]data.Value, len(out.GroupBy)),
		args:    make([]groupedArg, len(out.GroupArgs)),
		d:       g.Data,
	}
	var fallback []data.AttrID
	for i, e := range out.GroupArgs {
		if attrs, ok := SumLeaves(e); ok {
			s.args[i].sumOffs = mustOffsets(g, attrs)
			continue
		}
		s.args[i].e = e
		fallback = e.Attrs(fallback)
	}
	if len(fallback) > 0 {
		maxAttr := data.AttrID(0)
		for _, a := range fallback {
			if a > maxAttr {
				maxAttr = a
			}
		}
		s.offs = make([]int, maxAttr+1)
		for _, a := range fallback {
			if off, ok := g.Offset(a); ok {
				s.offs[a] = off
			}
		}
		s.get = func(a data.AttrID) data.Value { return s.d[s.base+s.offs[a]] }
	}
	return s
}

// fold accumulates the mini-tuple starting at word offset base into ga.
func (s *groupedScanner) fold(ga *groupedAcc, base int) {
	for i, o := range s.keyOffs {
		s.keyBuf[i] = s.d[base+o]
	}
	sts := ga.statesFor(s.keyBuf)
	for i := range s.args {
		a := &s.args[i]
		if a.sumOffs != nil {
			var acc data.Value
			for _, o := range a.sumOffs {
				acc += s.d[base+o]
			}
			sts[i].Add(acc)
		} else {
			s.base = base
			sts[i].Add(a.e.Eval(s.get))
		}
	}
}

// segGroupedFolder folds individual rows of one segment into a groupedAcc
// through per-attribute bindings resolved against the segment's own layout —
// the grouped analog of genericSegmentScan's accessor indirection, shared by
// the column, hybrid, vectorized, bitmap and generic strategies.
type segGroupedFolder struct {
	keys   []data.AttrID
	args   []expr.Expr
	keyBuf []data.Value
	binds  map[data.AttrID]groupedBinding
	row    int
	get    expr.Accessor
}

type groupedBinding struct {
	d      []data.Value
	stride int
	off    int
}

// newSegGroupedFolder binds attrs against seg's covering groups. attrs must
// include the group keys and aggregate-argument attributes (and the where
// attributes when the caller evaluates the predicate through f.get).
func newSegGroupedFolder(seg *storage.Segment, attrs []data.AttrID, out Outputs) (*segGroupedFolder, error) {
	_, assign, err := seg.CoveringGroups(attrs)
	if err != nil {
		return nil, err
	}
	f := &segGroupedFolder{
		keys:   out.GroupBy,
		args:   out.GroupArgs,
		keyBuf: make([]data.Value, len(out.GroupBy)),
		binds:  make(map[data.AttrID]groupedBinding, len(assign)),
	}
	for a, g := range assign {
		off, _ := g.Offset(a)
		f.binds[a] = groupedBinding{d: g.Data, stride: g.Stride, off: off}
	}
	f.get = func(a data.AttrID) data.Value {
		b := f.binds[a]
		return b.d[f.row*b.stride+b.off]
	}
	return f, nil
}

// fold accumulates segment row r into ga.
func (f *segGroupedFolder) fold(ga *groupedAcc, r int) {
	f.row = r
	for i, a := range f.keys {
		f.keyBuf[i] = f.get(a)
	}
	sts := ga.statesFor(f.keyBuf)
	for i, e := range f.args {
		sts[i].Add(e.Eval(f.get))
	}
}

// foldGroupedSel folds one segment's qualifying rows into ga: the absolute
// in-segment row ids listed in sel when haveSel, every row otherwise. It is
// the grouped phase-2 shared by the selection-vector strategies (column,
// hybrid, vectorized).
func foldGroupedSel(seg *storage.Segment, out Outputs, ga *groupedAcc, sel []int32, haveSel bool) error {
	f, err := newSegGroupedFolder(seg, groupedScanAttrs(out), out)
	if err != nil {
		return err
	}
	if haveSel {
		for _, r := range sel {
			f.fold(ga, int(r))
		}
		return nil
	}
	for r := 0; r < seg.Rows; r++ {
		f.fold(ga, r)
	}
	return nil
}

// genericGroupedSegmentScan is the grouped per-segment body of the generic
// interpreter: a tuple-at-a-time loop evaluating the predicate tree and the
// grouped fold through accessor indirection. The partial-result layer reuses
// it with a fresh accumulator to compute grouped SegPartials on layouts the
// fused row kernel cannot serve.
func genericGroupedSegmentScan(seg *storage.Segment, q *query.Query, out Outputs, ga *groupedAcc) error {
	f, err := newSegGroupedFolder(seg, q.AllAttrs(), out)
	if err != nil {
		return err
	}
	for r := 0; r < seg.Rows; r++ {
		f.row = r
		if q.Where != nil && !q.Where.EvalBool(f.get) {
			continue
		}
		f.fold(ga, r)
	}
	return nil
}
