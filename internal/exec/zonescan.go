package exec

import "h2o/internal/storage"

// ZoneScanStats reports how much of the scan a zone map eliminated.
type ZoneScanStats struct {
	Zones   int // total blocks
	Skipped int // blocks eliminated by the zone map
}

// FilterGroupWithZones evaluates the conjunction of preds over g, consulting
// the group's zone map to skip blocks no predicate term can match. The
// result is identical to FilterGroup; on position-clustered data whole
// blocks are eliminated without touching their cache lines.
func FilterGroupWithZones(g *storage.ColumnGroup, zm *storage.ZoneMap, preds []GroupPred, sel []int32, stats *ZoneScanStats) []int32 {
	if zm == nil || len(preds) == 0 {
		return FilterGroup(g, preds, 0, g.Rows, sel)
	}
	zones := zm.Zones()
	if stats != nil {
		stats.Zones = zones
	}
zone:
	for zi := 0; zi < zones; zi++ {
		for _, p := range preds {
			if !zm.MayMatch(zi, p.Off, p.Op, p.Val) {
				if stats != nil {
					stats.Skipped++
				}
				continue zone
			}
		}
		lo, hi := zm.ZoneRange(zi, g.Rows)
		sel = FilterGroup(g, preds, lo, hi-lo, sel)
	}
	return sel
}
