package exec

import (
	"testing"

	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

func TestRepairableClassifier(t *testing.T) {
	agg := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, query.PredLt(0, 10))
	mixedOps := &query.Query{Table: "R", Items: []query.SelectItem{
		{Agg: &expr.Agg{Op: expr.AggMax, Arg: &expr.Col{ID: 0}}},
		{Agg: &expr.Agg{Op: expr.AggSum, Arg: expr.SumCols([]data.AttrID{1, 2})}},
	}}
	limited := query.Aggregation("R", expr.AggCount, []data.AttrID{0}, nil)
	limited.Limit = 5
	cases := []struct {
		name string
		q    *query.Query
		want bool
	}{
		{"aggregation", agg, true},
		{"agg-expression", query.AggExpression("R", []data.AttrID{0, 1}, nil), true},
		{"mixed aggregate shapes (generic path)", mixedOps, true},
		{"projection", query.Projection("R", []data.AttrID{0}, nil), false},
		{"expression", query.ArithExpression("R", []data.AttrID{0, 1}, nil), false},
		{"aggregate with limit", limited, false},
		{"empty select", &query.Query{Table: "R"}, false},
		{"nil", nil, false},
	}
	for _, c := range cases {
		if got := Repairable(c.q); got != c.want {
			t.Errorf("%s: Repairable = %v, want %v", c.name, got, c.want)
		}
	}
}

// partialRelation builds a small append-ordered relation whose attribute 0
// is the row position, so range predicates on it prune segments exactly.
func partialRelation(t *testing.T, rows, segCap int) *storage.Relation {
	t.Helper()
	tb := data.GenerateTimeSeries(data.SyntheticSchema("R", 4), rows, 7)
	return storage.BuildColumnMajorSeg(tb, segCap)
}

// TestPartialsMatchFullScan: for every aggregate operator (and the mixed
// generic shape), the combined partials equal the generic reference.
func TestPartialsMatchFullScan(t *testing.T) {
	rel := partialRelation(t, 1000, 128)
	queries := []*query.Query{
		query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, query.PredLt(0, 700)),
		query.Aggregation("R", expr.AggMax, []data.AttrID{3}, nil),
		query.Aggregation("R", expr.AggMin, []data.AttrID{1}, query.PredGt(2, 0)),
		query.Aggregation("R", expr.AggCount, []data.AttrID{0}, nil),
		query.Aggregation("R", expr.AggAvg, []data.AttrID{2}, query.PredLt(0, 999)),
		query.AggExpression("R", []data.AttrID{1, 2, 3}, query.PredGt(0, 100)),
		{Table: "R", Items: []query.SelectItem{ // mixed shapes: generic per-segment path
			{Agg: &expr.Agg{Op: expr.AggMax, Arg: &expr.Col{ID: 1}}},
			{Agg: &expr.Agg{Op: expr.AggSum, Arg: expr.SumCols([]data.AttrID{2, 3})}},
		}},
	}
	for _, q := range queries {
		var st StrategyStats
		p, err := ExecPartials(rel, q, &st)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		want, err := Exec(rel, q, ExecOpts{Strategy: StrategyGeneric})
		if err != nil {
			t.Fatal(err)
		}
		if got := p.Result(); !got.Equal(want) {
			t.Fatalf("%s: partials %v, full scan %v", q, got.Data, want.Data)
		}
		// Result() must not consume the partials: combining twice is legal
		// (the cache shares payloads between repairs).
		if got := p.Result(); !got.Equal(want) {
			t.Fatalf("%s: second Result() diverged — partials were mutated", q)
		}
		if p.Bytes() <= 0 {
			t.Fatalf("%s: Bytes() = %d", q, p.Bytes())
		}
	}
}

// TestExecDeltaTailAppend: after tail appends, a delta scan rescans only
// the mutated tail and the combined result matches a cold full scan.
func TestExecDeltaTailAppend(t *testing.T) {
	const segCap = 128
	rel := partialRelation(t, 4*segCap, segCap) // 4 sealed-capacity segments
	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, nil)

	prior, err := ExecPartials(rel, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior.Segs) != 4 {
		t.Fatalf("seed partials cover %d segments, want 4", len(prior.Segs))
	}

	for i := 0; i < 3; i++ {
		if err := rel.Append([]data.Value{data.Value(1_000_000 + i), 5, 6, 7}); err != nil {
			t.Fatal(err)
		}
	}

	var st StrategyStats
	fresh, reused, err := ExecDelta(rel, q, prior.Versions(), 4, &st)
	if err != nil {
		t.Fatal(err)
	}
	// The appends opened segment 4; segments 0-3 are untouched.
	if len(reused) != 4 {
		t.Fatalf("reused %v, want the 4 sealed segments", reused)
	}
	if len(fresh.Segs) != 1 {
		t.Fatalf("rescanned %d segments, want 1 (the new tail)", len(fresh.Segs))
	}
	if _, ok := fresh.Segs[4]; !ok {
		t.Fatalf("rescanned segments %v, want the appended tail (index 4)", fresh.Segs)
	}
	if st.SegmentsScanned != 1 {
		t.Fatalf("SegmentsScanned = %d, want 1", st.SegmentsScanned)
	}

	want, err := Exec(rel, q, ExecOpts{Strategy: StrategyGeneric})
	if err != nil {
		t.Fatal(err)
	}
	if got := Repaired(prior, fresh, reused).Result(); !got.Equal(want) {
		t.Fatalf("repaired result %v, cold full scan %v", got.Data, want.Data)
	}
}

// TestExecDeltaPrunedTail: when the appended rows fall outside the query's
// predicate range, the tail never becomes a candidate — the delta scan
// reuses everything and rescans nothing.
func TestExecDeltaPrunedTail(t *testing.T) {
	const segCap = 128
	rel := partialRelation(t, 4*segCap, segCap)
	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1}, query.PredLt(0, data.Value(segCap)))

	prior, err := ExecPartials(rel, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(prior.Segs) != 1 {
		t.Fatalf("selective seed covers %d segments, want 1", len(prior.Segs))
	}
	if err := rel.Append([]data.Value{9_000_000, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}

	var st StrategyStats
	fresh, reused, err := ExecDelta(rel, q, prior.Versions(), 1, &st)
	if err != nil {
		t.Fatal(err)
	}
	if len(fresh.Segs) != 0 || len(reused) != 1 {
		t.Fatalf("fresh=%d reused=%v, want 0 rescans and segment 0 reused", len(fresh.Segs), reused)
	}
	want, err := Exec(rel, q, ExecOpts{Strategy: StrategyGeneric})
	if err != nil {
		t.Fatal(err)
	}
	if got := Repaired(prior, fresh, reused).Result(); !got.Equal(want) {
		t.Fatalf("repaired result %v, cold full scan %v", got.Data, want.Data)
	}
}

// TestExecDeltaUnsupported: non-repairable shapes must refuse cleanly.
func TestExecDeltaUnsupported(t *testing.T) {
	rel := partialRelation(t, 100, 64)
	if _, _, err := ExecDelta(rel, query.Projection("R", []data.AttrID{0}, nil), nil, 1, nil); err != ErrUnsupported {
		t.Fatalf("projection: err = %v, want ErrUnsupported", err)
	}
	limited := query.Aggregation("R", expr.AggCount, []data.AttrID{0}, nil)
	limited.Limit = 1
	if _, _, err := ExecDelta(rel, limited, nil, 1, nil); err != ErrUnsupported {
		t.Fatalf("limited aggregate: err = %v, want ErrUnsupported", err)
	}
}
