package exec

import (
	"fmt"
	"math"

	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// This file is the streaming hash-join operator: the first multi-relation
// code path in the engine, attached at the pipeline seam exec.go documents
// ("a join is another partial-producing operator").
//
// ExecJoin serves SELECT ... FROM L JOIN R ON L.x = R.y with the query's
// attributes in the combined namespace (left [0, nL), right [nL, nL+nR)).
// The WHERE conjunction splits by side: left-only terms filter (and
// zone-map prune) the left relation, right-only terms the right, and mixed
// terms become a residual predicate evaluated per joined row. One side —
// the build side — is scanned segment-at-a-time into a hash table keyed by
// its join key; the other — the probe side — streams through the standard
// per-segment pipeline (pruning, pinning, fan-out, limit early-exit), and
// each match folds straight into the query's projection/aggregate/group
// outputs, so joined aggregates never materialize the full join.
//
// The build side is chosen greedily from the zone maps: each side's
// candidate row count is the sum of its segments' rows after
// predicate-clipped pruning, and the smaller side builds. Aggregate merges
// are commutative and associative, so for aggregate and grouped shapes
// either side may build; projection and expression shapes must emit rows
// in left-major order (probe = left), so they always build the right side.
// When pruning empties the build side — or the build filter leaves an
// empty hash table — the probe side is never scanned at all.

// joinSplit is the per-side decomposition of a join query's WHERE clause.
// Right-side zone-map predicates are rebased to the right relation's local
// attribute ids; the predicate trees keep combined ids and are evaluated
// through rebasing accessors.
type joinSplit struct {
	leftPred  expr.Pred // conjunction terms over left attributes only
	rightPred expr.Pred // terms over right attributes only (combined ids)
	residual  expr.Pred // mixed terms, evaluated per joined row

	leftCols   []ColPred // prunable left terms (left-local ids)
	leftSplit  bool
	rightCols  []ColPred // prunable right terms (right-local ids)
	rightSplit bool
}

// conj rebuilds a conjunction from its terms: nil for none, the term
// itself for one, an n-ary And otherwise.
func conj(terms []expr.Pred) expr.Pred {
	switch len(terms) {
	case 0:
		return nil
	case 1:
		return terms[0]
	}
	return &expr.And{Terms: terms}
}

// splitJoinWhere splits where into per-side and residual conjuncts. A
// term referencing no attributes at all (a constant comparison) lands on
// the left side; a non-conjunctive top level (a single Or, say) is one
// term and splits by whichever side its attributes touch.
func splitJoinWhere(where expr.Pred, nL int) joinSplit {
	var js joinSplit
	if where == nil {
		js.leftSplit, js.rightSplit = true, true
		return js
	}
	terms := []expr.Pred{where}
	if and, ok := where.(*expr.And); ok {
		terms = and.Terms
	}
	var lTerms, rTerms, xTerms []expr.Pred
	for _, t := range terms {
		attrs := t.Attrs(nil)
		allL, allR := true, true
		for _, a := range attrs {
			if a < nL {
				allR = false
			} else {
				allL = false
			}
		}
		switch {
		case allL:
			lTerms = append(lTerms, t)
		case allR:
			rTerms = append(rTerms, t)
		default:
			xTerms = append(xTerms, t)
		}
	}
	js.leftPred = conj(lTerms)
	js.rightPred = conj(rTerms)
	js.residual = conj(xTerms)
	js.leftCols, js.leftSplit = splitSide(js.leftPred, 0)
	js.rightCols, js.rightSplit = splitSide(js.rightPred, nL)
	return js
}

// splitSide splits one side's conjunction into zone-map predicates rebased
// by -base to that relation's local attribute ids.
func splitSide(p expr.Pred, base int) ([]ColPred, bool) {
	cols, ok := SplitConjunction(p)
	if !ok {
		return nil, false
	}
	for i := range cols {
		cols[i].Attr -= base
	}
	return cols, true
}

// JoinSidePreds exposes the per-side zone-map predicates of a join query
// for fingerprinting: the serving layer computes one touch fingerprint per
// input relation (left first), each from its own side's predicate-clipped
// candidate segment set, and combines them order-sensitively. nL is the
// left relation's schema width. splittable=false means that side's
// candidate set must conservatively include every non-empty segment.
func JoinSidePreds(q *query.Query, nL int) (left []ColPred, leftSplit bool, right []ColPred, rightSplit bool) {
	js := splitJoinWhere(q.Where, nL)
	return js.leftCols, js.leftSplit, js.rightCols, js.rightSplit
}

// segBinding is one attribute's resolved location inside a pinned segment.
type segBinding struct {
	d      []data.Value
	stride int
	off    int
}

// segBindings resolves attrs (local ids) to per-attribute accessor
// bindings over the segment's covering groups.
func segBindings(seg *storage.Segment, attrs []data.AttrID) (map[data.AttrID]segBinding, error) {
	_, assign, err := seg.CoveringGroups(attrs)
	if err != nil {
		return nil, err
	}
	binds := make(map[data.AttrID]segBinding, len(assign))
	for a, g := range assign {
		off, _ := g.Offset(a)
		binds[a] = segBinding{d: g.Data, stride: g.Stride, off: off}
	}
	return binds, nil
}

// joinHashTable is the build side materialized for probing: tuples passing
// the build-side filter, flattened into an arena holding only the
// attributes the query reads after the join, indexed by join key in
// insertion (segment, row) order — which keeps projection output in
// canonical nested-loop order when the right side builds.
type joinHashTable struct {
	attrs  []data.AttrID       // stored attributes (combined ids), slot order
	slot   map[data.AttrID]int // combined id -> arena slot
	width  int
	arena  []data.Value
	m      map[data.Value][]int32
	tuples int
}

// buildJoinHashTable scans rel's segments in order (skipping empty and
// zone-map-pruned ones) and folds rows passing sidePred into the table.
// base rebases combined attribute ids to rel's local ids; keyLocal is the
// join key's local id. Build-side segments count into stats' scan/prune/
// fault counters but not its Touched list — the touch set is per-relation
// and a join spans two (see ExecJoin).
func buildJoinHashTable(rel *storage.Relation, base int, keyLocal data.AttrID, sidePred expr.Pred, prune []ColPred, prunable bool, need []data.AttrID, stats *StrategyStats) (*joinHashTable, error) {
	ht := &joinHashTable{
		attrs: need,
		slot:  make(map[data.AttrID]int, len(need)),
		width: len(need),
		m:     make(map[data.Value][]int32),
	}
	for i, a := range need {
		ht.slot[a] = i
	}
	scanAttrs := []data.AttrID{keyLocal}
	for _, a := range need {
		scanAttrs = append(scanAttrs, a-base)
	}
	if sidePred != nil {
		for _, a := range sidePred.Attrs(nil) {
			scanAttrs = append(scanAttrs, a-base)
		}
	}
	scanAttrs = data.SortedUnique(scanAttrs)

	for _, seg := range rel.Segments {
		if seg.Rows == 0 {
			continue
		}
		if prunable && len(prune) > 0 && segPruned(seg, prune) {
			if stats != nil {
				stats.SegmentsPruned++
			}
			continue
		}
		faulted, err := seg.Acquire()
		if err != nil {
			return nil, err
		}
		if stats != nil {
			if faulted {
				stats.SegmentsFaulted++
			}
			stats.SegmentsScanned++
		}
		seg.Touch()
		err = func() error {
			defer seg.Release()
			binds, err := segBindings(seg, scanAttrs)
			if err != nil {
				return err
			}
			row := 0
			localGet := func(a data.AttrID) data.Value {
				b := binds[a]
				return b.d[row*b.stride+b.off]
			}
			combGet := func(a data.AttrID) data.Value { return localGet(a - base) }
			for row = 0; row < seg.Rows; row++ {
				if sidePred != nil && !sidePred.EvalBool(combGet) {
					continue
				}
				if ht.tuples == math.MaxInt32 {
					return fmt.Errorf("exec: join build side exceeds %d rows", math.MaxInt32)
				}
				k := localGet(keyLocal)
				ht.m[k] = append(ht.m[k], int32(ht.tuples))
				for _, a := range ht.attrs {
					ht.arena = append(ht.arena, localGet(a-base))
				}
				ht.tuples++
			}
			return nil
		}()
		if err != nil {
			return nil, err
		}
	}
	return ht, nil
}

// candidateJoinRows is the greedy ordering signal: the side's row count
// after zone-map pruning with its predicate-clipped bounds, plus the count
// of non-empty segments the pruning excluded.
func candidateJoinRows(rel *storage.Relation, prune []ColPred, prunable bool) (rows, pruned int) {
	for _, seg := range rel.Segments {
		if seg.Rows == 0 {
			continue
		}
		if prunable && len(prune) > 0 && segPruned(seg, prune) {
			pruned++
			continue
		}
		rows += seg.Rows
	}
	return rows, pruned
}

// sideAttrs filters combined attribute ids to one side's range and rebases
// them by -base to that relation's local ids.
func sideAttrs(attrs []data.AttrID, lo, hi, base int) []data.AttrID {
	var out []data.AttrID
	for _, a := range attrs {
		if a >= lo && a < hi {
			out = append(out, a-base)
		}
	}
	return data.SortedUnique(out)
}

// joinedNeed is the set of combined attributes read after the join: select
// outputs, group keys, and residual predicate inputs. Per-side filter and
// key attributes are excluded — they are consumed during build/probe.
func joinedNeed(q *query.Query, out Outputs, residual expr.Pred) []data.AttrID {
	need := q.SelectAttrs()
	if len(out.GroupBy) > 0 {
		need = data.Union(need, data.SortedUnique(append([]data.AttrID(nil), out.GroupBy...)))
	}
	if residual != nil {
		need = data.Union(need, data.SortedUnique(residual.Attrs(nil)))
	}
	return need
}

// ExecJoin executes a single equi-join query over the left and right
// relations. The query's attributes live in the combined namespace; the
// output shape is whatever Classify reports for the combined query, merged
// with the same machinery as single-relation pipelines. LIMIT is applied
// here (the single-relation engines apply it post-Exec; join results don't
// pass through them).
func ExecJoin(left, right *storage.Relation, q *query.Query, opts ExecOpts) (*Result, error) {
	if len(q.Joins) != 1 {
		return nil, fmt.Errorf("exec: ExecJoin serves exactly one join clause, query has %d", len(q.Joins))
	}
	nL := left.Schema.NumAttrs()
	nR := right.Schema.NumAttrs()
	j := q.Joins[0]
	if j.LeftKey.ID < 0 || j.LeftKey.ID >= nL || j.RightKey.ID < nL || j.RightKey.ID >= nL+nR {
		return nil, fmt.Errorf("exec: join keys %d = %d outside combined namespace [0,%d) = [%d,%d)",
			j.LeftKey.ID, j.RightKey.ID, nL, nL, nL+nR)
	}
	out := Classify(q)
	if out.Kind == OutOther {
		return nil, ErrUnsupported
	}
	js := splitJoinWhere(q.Where, nL)

	// Greedy build-side choice. Projection shapes must stream the left
	// side through the probe pipeline so output stays in left-major
	// (nested-loop) order; aggregate and grouped merges are commutative,
	// so the genuinely smaller side builds.
	orderSensitive := out.Kind == OutProjection || out.Kind == OutExpression
	leftRows, leftPruned := candidateJoinRows(left, js.leftCols, js.leftSplit)
	rightRows, rightPruned := candidateJoinRows(right, js.rightCols, js.rightSplit)
	buildRight := orderSensitive || rightRows <= leftRows

	var buildRel, probeRel *storage.Relation
	var buildBase, probeBase int
	var buildKey, probeKey data.AttrID // local ids
	var buildPred, probePred expr.Pred // combined ids
	var buildPrune, probePrune []ColPred
	var buildSplit, probeSplit bool
	var buildCand, buildPruned int
	if buildRight {
		buildRel, probeRel = right, left
		buildBase, probeBase = nL, 0
		buildKey, probeKey = j.RightKey.ID-nL, j.LeftKey.ID
		buildPred, probePred = js.rightPred, js.leftPred
		buildPrune, buildSplit = js.rightCols, js.rightSplit
		probePrune, probeSplit = js.leftCols, js.leftSplit
		buildCand, buildPruned = rightRows, rightPruned
	} else {
		buildRel, probeRel = left, right
		buildBase, probeBase = 0, nL
		buildKey, probeKey = j.LeftKey.ID, j.RightKey.ID-nL
		buildPred, probePred = js.leftPred, js.rightPred
		buildPrune, buildSplit = js.leftCols, js.leftSplit
		probePrune, probeSplit = js.rightCols, js.rightSplit
		buildCand, buildPruned = leftRows, leftPruned
	}

	stats := &StrategyStats{}
	defer func() {
		if opts.Stats != nil {
			s := opts.Stats
			s.SegmentsScanned += stats.SegmentsScanned
			s.SegmentsPruned += stats.SegmentsPruned
			s.SegmentsFaulted += stats.SegmentsFaulted
			s.IntermediateWords += stats.IntermediateWords
			s.DecodeSkips += stats.DecodeSkips
			s.EncodedBytes += stats.EncodedBytes
			// Touched stays empty: the list is indexed per relation and a
			// join spans two, so join executions report counts only.
		}
	}()

	// Early termination: zone maps emptied the build side, so no row can
	// join — the probe side is never touched (its cold segments stay cold).
	// The build side's pruned segments are recorded here; when the build
	// actually runs, buildJoinHashTable counts them itself.
	if buildCand == 0 {
		stats.SegmentsPruned += buildPruned
		return trimJoinLimit(mergePartials(out, nil), q), nil
	}

	need := joinedNeed(q, out, js.residual)
	lo, hi := buildBase, buildBase+buildRel.Schema.NumAttrs()
	buildNeed := make([]data.AttrID, 0, len(need))
	for _, a := range need {
		if a >= lo && a < hi {
			buildNeed = append(buildNeed, a)
		}
	}
	ht, err := buildJoinHashTable(buildRel, buildBase, buildKey, buildPred, buildPrune, buildSplit, buildNeed, stats)
	if err != nil {
		return nil, err
	}
	stats.IntermediateWords += len(ht.arena)
	if ht.tuples == 0 {
		return trimJoinLimit(mergePartials(out, nil), q), nil
	}

	// Probe-side attributes the per-segment scan resolves: everything the
	// combined query reads from the probe relation, plus its join key and
	// filter inputs, in local ids.
	probeAttrs := sideAttrs(q.AllAttrs(), probeBase, probeBase+probeRel.Schema.NumAttrs(), probeBase)

	limit := limitFor(out, q)
	p := &pipeline{
		out:   out,
		limit: limit,
		scan: func(c *segCtx) (*partial, error) {
			return probeJoinSegment(c, q, out, js.residual, ht, probeAttrs, probeBase, probeKey, probePred, limit)
		},
	}
	if probeSplit {
		p.preds = probePrune
	}
	popts := opts
	popts.Stats = stats
	res, err := p.run(probeRel, popts)
	if err != nil {
		return nil, err
	}
	return trimJoinLimit(res, q), nil
}

// probeJoinSegment is the probe side's per-segment operator: filter the
// probe rows, look each key up in the hash table, evaluate the residual
// predicate over the joined accessor, and fold every surviving match into
// the segment's partial. Matches emit in (probe row, build insertion)
// order, so merged partials reproduce the canonical nested-loop order.
func probeJoinSegment(c *segCtx, q *query.Query, out Outputs, residual expr.Pred, ht *joinHashTable, probeAttrs []data.AttrID, probeBase int, probeKey data.AttrID, probePred expr.Pred, limit int) (*partial, error) {
	binds, err := segBindings(c.seg, probeAttrs)
	if err != nil {
		return nil, err
	}
	row := 0
	localGet := func(a data.AttrID) data.Value {
		b := binds[a]
		return b.d[row*b.stride+b.off]
	}
	probeGet := func(a data.AttrID) data.Value { return localGet(a - probeBase) }
	tupBase := 0
	get := func(a data.AttrID) data.Value {
		if slot, ok := ht.slot[a]; ok {
			return ht.arena[tupBase+slot]
		}
		return localGet(a - probeBase)
	}

	p := &partial{states: newStates(out)}
	if out.Kind == OutGrouped {
		p.groups = newGroupedAcc(out)
	}
	kvals := make([]data.Value, len(out.GroupBy))
	for row = c.lo; row < c.hi; row++ {
		if probePred != nil && !probePred.EvalBool(probeGet) {
			continue
		}
		matches := ht.m[localGet(probeKey)]
		for _, ti := range matches {
			tupBase = int(ti) * ht.width
			if residual != nil && !residual.EvalBool(get) {
				continue
			}
			foldJoined(out, p, get, kvals)
		}
		if limit > 0 && p.rows >= limit {
			break
		}
	}
	return p, nil
}

// foldJoined folds one joined row into the partial, by output shape —
// the same shapes mergePartials combines.
func foldJoined(out Outputs, p *partial, get expr.Accessor, kvals []data.Value) {
	switch out.Kind {
	case OutProjection:
		for _, a := range out.ProjAttrs {
			p.data = append(p.data, get(a))
		}
		p.rows++
	case OutExpression:
		var acc data.Value
		for _, a := range out.ExprAttrs {
			acc += get(a)
		}
		p.data = append(p.data, acc)
		p.rows++
	case OutAggregates:
		for i, a := range out.AggAttrs {
			p.states[i].Add(get(a))
		}
	case OutAggExpression:
		var acc data.Value
		for _, a := range out.ExprAttrs {
			acc += get(a)
		}
		p.states[0].Add(acc)
	case OutGrouped:
		for i, a := range out.GroupBy {
			kvals[i] = get(a)
		}
		sts := p.groups.statesFor(kvals)
		for i, arg := range out.GroupArgs {
			sts[i].Add(arg.Eval(get))
		}
	}
}

// trimJoinLimit applies q.Limit to a merged join result. Single-relation
// paths trim in the engine after Exec; join results are returned straight
// from here, so the trim happens here instead.
func trimJoinLimit(res *Result, q *query.Query) *Result {
	if q.Limit <= 0 || res == nil || res.Rows <= q.Limit {
		return res
	}
	res.Rows = q.Limit
	res.Data = res.Data[:q.Limit*len(res.Cols)]
	return res
}
