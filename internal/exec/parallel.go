package exec

import (
	"runtime"
	"sync"
	"sync/atomic"

	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// ExecRowParallel runs the fused row strategy over rel with one task per
// *segment* — the parallelism granularity matches the storage partitioning,
// so a worker's unit of work is normally one segment's contiguous rows (the
// intra-query parallelism the paper's engines use, "tuned to use all the
// available CPUs"). When the relation has fewer (unpruned) segments than
// workers, segments are sub-split into contiguous row ranges so small
// relations still use every core. Segments whose zone maps rule the predicates out are
// skipped before any worker touches them. Partial aggregates merge
// associatively; projection and expression partials concatenate in segment
// order, so the result is bit-identical to the serial scan. Materializing
// queries stop claiming new segments once q.Limit rows have been produced
// by a contiguous prefix of segments.
//
// Every scanned segment must have a single group covering the query's
// attributes (segments may differ in which group that is); otherwise the
// serial path's coverage error surfaces. workers <= 0 selects
// runtime.NumCPU().
func ExecRowParallel(rel *storage.Relation, q *query.Query, workers int, stats *StrategyStats) (*Result, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	out := Classify(q)
	if out.Kind == OutOther {
		return nil, ErrUnsupported
	}
	// Conjunctions of single-column comparisons compile to offset-bound
	// predicates evaluated in the tight kernels. Any other predicate shape
	// (disjunctions, expression comparisons) still fans out across
	// goroutines: each worker evaluates the interpreted predicate against
	// its segment through a group-bound accessor, so disjunctive filters
	// get intra-query parallelism instead of falling back to the serial
	// generic operator.
	preds, splittable := SplitConjunction(q.Where)
	var generic expr.Pred
	if !splittable {
		generic = q.Where
	}

	// Plan per segment: covering group, bound predicates, prunability.
	tasks := make([]segTask, 0, len(rel.Segments))
	for si, seg := range rel.Segments {
		if seg.Rows == 0 {
			continue
		}
		g := bestCoveringGroupSeg(seg, q)
		if g == nil {
			return ExecRowRel(rel, q, stats) // surfaces the coverage error
		}
		if splittable {
			if len(preds) > 0 && segPruned(seg, preds) {
				if stats != nil {
					stats.SegmentsPruned++
				}
				continue
			}
			bound, ok := BindPreds(g, preds)
			if !ok {
				return ExecRowRel(rel, q, stats) // surfaces the binding error
			}
			tasks = append(tasks, segTask{si: si, seg: seg, g: g, bound: bound})
		} else {
			covered := true
			for _, a := range q.WhereAttrs() {
				if _, ok := g.Offset(a); !ok {
					covered = false
					break
				}
			}
			if !covered {
				return ExecRowRel(rel, q, stats) // surfaces the binding error
			}
			tasks = append(tasks, segTask{si: si, seg: seg, g: g})
		}
	}
	for i := range tasks {
		tasks[i].hi = tasks[i].seg.Rows
	}
	// Fewer segments than workers (small relations, heavy pruning): sub-split
	// each segment into contiguous row ranges so Parallelism still buys
	// intra-segment parallelism. Ranges stay in (segment, row) order, which
	// keeps the merged result and the limit's prefix property intact.
	if n := len(tasks); n > 0 && n < workers {
		chunks := (workers + n - 1) / n
		split := make([]segTask, 0, n*chunks)
		for _, t := range tasks {
			per := (t.hi + chunks - 1) / chunks
			if per < 1 {
				per = 1
			}
			for lo := 0; lo < t.hi; lo += per {
				hi := lo + per
				if hi > t.hi {
					hi = t.hi
				}
				split = append(split, segTask{si: t.si, seg: t.seg, g: t.g, bound: t.bound, lo: lo, hi: hi})
			}
		}
		tasks = split
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		return execRowTasksSerial(out, q, tasks, stats)
	}

	limit := int64(limitFor(out, q))
	partials := make([]*partial, len(tasks))
	faulted := make([]bool, len(tasks))
	var next atomic.Int64
	var produced atomic.Int64
	var failed atomic.Bool
	var errOnce sync.Once
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				// Stop claiming segments once the contiguous prefix already
				// dispatched can satisfy the limit: every segment below the
				// claim counter is (being) scanned, so the first q.Limit
				// rows of the ordered concatenation are final. A failed
				// sibling also stops the claim loop — the query is lost, so
				// faulting more spilled segments in would be wasted I/O.
				if failed.Load() || (limit > 0 && produced.Load() >= limit) {
					return
				}
				ti := int(next.Add(1)) - 1
				if ti >= len(tasks) {
					return
				}
				t := tasks[ti]
				// Pin the segment resident for the duration of the scan,
				// faulting it in when spilled: concurrent tasks on the same
				// segment serialize on the residency lock, so at most one
				// fault per segment happens no matter how it was sub-split.
				f, err := t.seg.Acquire()
				if err != nil {
					errOnce.Do(func() { firstErr = err })
					failed.Store(true)
					return
				}
				faulted[ti] = f
				if t.lo == 0 {
					t.seg.Touch() // once per segment, not per sub-range
				}
				p := scanRange(t.g, out, t.bound, generic, t.lo, t.hi)
				t.seg.Release()
				partials[ti] = p
				if limit > 0 && p.rows > 0 {
					produced.Add(int64(p.rows))
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	compact := make([]*partial, 0, len(partials))
	for ti, p := range partials {
		if faulted[ti] && stats != nil {
			stats.SegmentsFaulted++
		}
		if p != nil {
			if tasks[ti].lo == 0 {
				stats.touch(tasks[ti].si)
			}
			compact = append(compact, p)
		}
	}
	return mergePartials(out, compact), nil
}

// segTask is one planned unit of segment-parallel work: the segment (and
// its index in the relation, for the touch set), its covering group, the
// predicates bound to that group's offsets and the row range [lo, hi) to
// scan — the whole segment normally, a sub-range when segments are scarcer
// than workers.
type segTask struct {
	si     int
	seg    *storage.Segment
	g      *storage.ColumnGroup
	bound  []GroupPred
	lo, hi int
}

// execRowTasksSerial scans planned segment tasks serially, preserving the
// early-exit semantics of the parallel path.
func execRowTasksSerial(out Outputs, q *query.Query, tasks []segTask, stats *StrategyStats) (*Result, error) {
	var generic expr.Pred
	if _, splittable := SplitConjunction(q.Where); !splittable {
		generic = q.Where
	}
	limit := limitFor(out, q)
	partials := make([]*partial, 0, len(tasks))
	rows := 0
	for _, t := range tasks {
		faulted, err := t.seg.Acquire()
		if err != nil {
			return nil, err
		}
		if t.lo == 0 {
			t.seg.Touch()
			stats.touch(t.si)
		}
		if faulted && stats != nil {
			stats.SegmentsFaulted++
		}
		p := scanRange(t.g, out, t.bound, generic, t.lo, t.hi)
		t.seg.Release()
		partials = append(partials, p)
		rows += p.rows
		if limit > 0 && rows >= limit {
			break
		}
	}
	return mergePartials(out, partials), nil
}

// partial is one segment's contribution.
type partial struct {
	states []*expr.AggState
	data   []data.Value
	rows   int
	groups *groupedAcc // OutGrouped: this range's group map
}

// rangeFilter evaluates one segment's filter. The compiled path (bound
// offset predicates) is the common case and stays branch-free per row; the
// generic path re-binds the interpreted predicate to the group once per
// segment — one accessor closure per segment, not per row — so
// disjunctions and other non-splittable shapes still scan in parallel.
type rangeFilter struct {
	bound   []GroupPred
	generic expr.Pred
	get     expr.Accessor
	d       []data.Value
	base    int
	offs    []int // attribute id -> word offset within the group
}

func newRangeFilter(g *storage.ColumnGroup, bound []GroupPred, generic expr.Pred) *rangeFilter {
	f := &rangeFilter{bound: bound, generic: generic, d: g.Data}
	if generic != nil {
		maxAttr := data.AttrID(0)
		attrs := generic.Attrs(nil)
		for _, a := range attrs {
			if a > maxAttr {
				maxAttr = a
			}
		}
		f.offs = make([]int, maxAttr+1)
		for _, a := range attrs {
			if off, ok := g.Offset(a); ok {
				f.offs[a] = off
			}
		}
		f.get = func(a data.AttrID) data.Value { return f.d[f.base+f.offs[a]] }
	}
	return f
}

// passes evaluates the filter against the mini-tuple starting at base.
func (f *rangeFilter) passes(base int) bool {
	if f.generic != nil {
		f.base = base
		return f.generic.EvalBool(f.get)
	}
	return passes(f.d, base, f.bound)
}

// scanRange is the fused row scan over rows [lo, hi) of one group: the
// per-segment body of ExecRowRel and ExecRowParallel, sharing the kernels
// and shapes of the paper's Figure 5 operator.
func scanRange(g *storage.ColumnGroup, out Outputs, bound []GroupPred, generic expr.Pred, lo, hi int) *partial {
	d, stride := g.Data, g.Stride
	flt := newRangeFilter(g, bound, generic)
	p := &partial{}
	switch out.Kind {
	case OutProjection:
		offs := mustOffsets(g, out.ProjAttrs)
		base := lo * stride
		for r := lo; r < hi; r++ {
			if flt.passes(base) {
				for _, o := range offs {
					p.data = append(p.data, d[base+o])
				}
				p.rows++
			}
			base += stride
		}
	case OutAggregates:
		offs := mustOffsets(g, out.AggAttrs)
		p.states = make([]*expr.AggState, len(offs))
		for i, op := range out.AggOps {
			p.states[i] = expr.NewAggState(op)
		}
		base := lo * stride
		for r := lo; r < hi; r++ {
			if flt.passes(base) {
				for i, o := range offs {
					p.states[i].Add(d[base+o])
				}
			}
			base += stride
		}
	case OutExpression:
		offs := mustOffsets(g, out.ExprAttrs)
		base := lo * stride
		for r := lo; r < hi; r++ {
			if flt.passes(base) {
				var acc data.Value
				for _, o := range offs {
					acc += d[base+o]
				}
				p.data = append(p.data, acc)
				p.rows++
			}
			base += stride
		}
	case OutAggExpression:
		offs := mustOffsets(g, out.ExprAttrs)
		st := expr.NewAggState(out.ExprAgg)
		base := lo * stride
		for r := lo; r < hi; r++ {
			if flt.passes(base) {
				var acc data.Value
				for _, o := range offs {
					acc += d[base+o]
				}
				st.Add(acc)
			}
			base += stride
		}
		p.states = []*expr.AggState{st}
	case OutGrouped:
		s := newGroupedScanner(g, out)
		ga := newGroupedAcc(out)
		base := lo * stride
		for r := lo; r < hi; r++ {
			if flt.passes(base) {
				s.fold(ga, base)
			}
			base += stride
		}
		p.groups = ga
	}
	return p
}
