package exec

import (
	"runtime"
	"sync"

	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// ExecRowParallel runs the fused row strategy over g with the scan
// partitioned into contiguous row ranges, one goroutine per partition — the
// intra-query parallelism the paper's engines use ("tuned to use all the
// available CPUs"). Partial aggregates merge associatively; projection and
// expression partials concatenate in partition order, so the result is
// bit-identical to the serial scan.
//
// workers <= 0 selects runtime.NumCPU().
func ExecRowParallel(g *storage.ColumnGroup, q *query.Query, workers int) (*Result, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > g.Rows {
		workers = g.Rows
	}
	if workers <= 1 {
		return ExecRow(g, q)
	}
	if !g.HasAll(q.AllAttrs()) {
		return ExecRow(g, q) // surfaces the coverage error
	}
	out := Classify(q)
	preds, splittable := SplitConjunction(q.Where)
	if out.Kind == OutOther || !splittable {
		return nil, ErrUnsupported
	}
	bound, ok := BindPreds(g, preds)
	if !ok {
		return ExecRow(g, q) // surfaces the binding error
	}

	partials := make([]*partial, workers)
	var wg sync.WaitGroup
	per := (g.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > g.Rows {
			hi = g.Rows
		}
		if lo >= hi {
			partials[w] = &partial{}
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			partials[w] = scanRange(g, out, bound, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()

	// Merge in partition order.
	res := &Result{Cols: out.Labels}
	switch out.Kind {
	case OutAggregates, OutAggExpression:
		states := newStates(out)
		for _, p := range partials {
			for i, st := range p.states {
				states[i].Merge(st)
			}
		}
		return aggResult(out.Labels, states), nil
	default:
		total := 0
		for _, p := range partials {
			total += len(p.data)
		}
		res.Data = make([]data.Value, 0, total)
		for _, p := range partials {
			res.Data = append(res.Data, p.data...)
			res.Rows += p.rows
		}
		return res, nil
	}
}

// partial is one partition's contribution.
type partial struct {
	states []*expr.AggState
	data   []data.Value
	rows   int
}

// scanRange is the fused row scan over rows [lo, hi): the per-partition body
// of ExecRowParallel, sharing the kernels and shapes of ExecRow.
func scanRange(g *storage.ColumnGroup, out Outputs, bound []GroupPred, lo, hi int) *partial {
	d, stride := g.Data, g.Stride
	p := &partial{}
	switch out.Kind {
	case OutProjection:
		offs := mustOffsets(g, out.ProjAttrs)
		base := lo * stride
		for r := lo; r < hi; r++ {
			if passes(d, base, bound) {
				for _, o := range offs {
					p.data = append(p.data, d[base+o])
				}
				p.rows++
			}
			base += stride
		}
	case OutAggregates:
		offs := mustOffsets(g, out.AggAttrs)
		p.states = make([]*expr.AggState, len(offs))
		for i, op := range out.AggOps {
			p.states[i] = expr.NewAggState(op)
		}
		base := lo * stride
		for r := lo; r < hi; r++ {
			if passes(d, base, bound) {
				for i, o := range offs {
					p.states[i].Add(d[base+o])
				}
			}
			base += stride
		}
	case OutExpression:
		offs := mustOffsets(g, out.ExprAttrs)
		base := lo * stride
		for r := lo; r < hi; r++ {
			if passes(d, base, bound) {
				var acc data.Value
				for _, o := range offs {
					acc += d[base+o]
				}
				p.data = append(p.data, acc)
				p.rows++
			}
			base += stride
		}
	case OutAggExpression:
		offs := mustOffsets(g, out.ExprAttrs)
		st := expr.NewAggState(out.ExprAgg)
		base := lo * stride
		for r := lo; r < hi; r++ {
			if passes(d, base, bound) {
				var acc data.Value
				for _, o := range offs {
					acc += d[base+o]
				}
				st.Add(acc)
			}
			base += stride
		}
		p.states = []*expr.AggState{st}
	}
	return p
}
