package exec

import (
	"runtime"
	"sync"

	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// ExecRowParallel runs the fused row strategy over g with the scan
// partitioned into contiguous row ranges, one goroutine per partition — the
// intra-query parallelism the paper's engines use ("tuned to use all the
// available CPUs"). Partial aggregates merge associatively; projection and
// expression partials concatenate in partition order, so the result is
// bit-identical to the serial scan.
//
// workers <= 0 selects runtime.NumCPU().
func ExecRowParallel(g *storage.ColumnGroup, q *query.Query, workers int) (*Result, error) {
	if workers <= 0 {
		workers = runtime.NumCPU()
	}
	if workers > g.Rows {
		workers = g.Rows
	}
	if workers <= 1 {
		return ExecRow(g, q)
	}
	if !g.HasAll(q.AllAttrs()) {
		return ExecRow(g, q) // surfaces the coverage error
	}
	out := Classify(q)
	if out.Kind == OutOther {
		return nil, ErrUnsupported
	}
	// Conjunctions of single-column comparisons compile to offset-bound
	// predicates evaluated in the tight kernels. Any other predicate shape
	// (disjunctions, expression comparisons) still partitions across
	// goroutines: each worker evaluates the interpreted predicate against
	// its row range through a group-bound accessor, so disjunctive filters
	// get intra-query parallelism instead of falling back to the serial
	// generic operator.
	preds, splittable := SplitConjunction(q.Where)
	var bound []GroupPred
	var generic expr.Pred
	if splittable {
		b, ok := BindPreds(g, preds)
		if !ok {
			return ExecRow(g, q) // surfaces the binding error
		}
		bound = b
	} else {
		generic = q.Where
		for _, a := range q.WhereAttrs() {
			if _, ok := g.Offset(a); !ok {
				return ExecRow(g, q) // surfaces the binding error
			}
		}
	}

	partials := make([]*partial, workers)
	var wg sync.WaitGroup
	per := (g.Rows + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * per
		hi := lo + per
		if hi > g.Rows {
			hi = g.Rows
		}
		if lo >= hi {
			partials[w] = &partial{}
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			partials[w] = scanRange(g, out, bound, generic, lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()

	// Merge in partition order.
	res := &Result{Cols: out.Labels}
	switch out.Kind {
	case OutAggregates, OutAggExpression:
		states := newStates(out)
		for _, p := range partials {
			for i, st := range p.states {
				states[i].Merge(st)
			}
		}
		return aggResult(out.Labels, states), nil
	default:
		total := 0
		for _, p := range partials {
			total += len(p.data)
		}
		res.Data = make([]data.Value, 0, total)
		for _, p := range partials {
			res.Data = append(res.Data, p.data...)
			res.Rows += p.rows
		}
		return res, nil
	}
}

// partial is one partition's contribution.
type partial struct {
	states []*expr.AggState
	data   []data.Value
	rows   int
}

// rangeFilter evaluates one partition's filter. The compiled path (bound
// offset predicates) is the common case and stays branch-free per row; the
// generic path re-binds the interpreted predicate to the group once per
// partition — one accessor closure per partition, not per row — so
// disjunctions and other non-splittable shapes still scan in parallel.
type rangeFilter struct {
	bound   []GroupPred
	generic expr.Pred
	get     expr.Accessor
	d       []data.Value
	base    int
	offs    []int // attribute id -> word offset within the group
}

func newRangeFilter(g *storage.ColumnGroup, bound []GroupPred, generic expr.Pred) *rangeFilter {
	f := &rangeFilter{bound: bound, generic: generic, d: g.Data}
	if generic != nil {
		maxAttr := data.AttrID(0)
		attrs := generic.Attrs(nil)
		for _, a := range attrs {
			if a > maxAttr {
				maxAttr = a
			}
		}
		f.offs = make([]int, maxAttr+1)
		for _, a := range attrs {
			if off, ok := g.Offset(a); ok {
				f.offs[a] = off
			}
		}
		f.get = func(a data.AttrID) data.Value { return f.d[f.base+f.offs[a]] }
	}
	return f
}

// passes evaluates the filter against the mini-tuple starting at base.
func (f *rangeFilter) passes(base int) bool {
	if f.generic != nil {
		f.base = base
		return f.generic.EvalBool(f.get)
	}
	return passes(f.d, base, f.bound)
}

// scanRange is the fused row scan over rows [lo, hi): the per-partition body
// of ExecRowParallel, sharing the kernels and shapes of ExecRow.
func scanRange(g *storage.ColumnGroup, out Outputs, bound []GroupPred, generic expr.Pred, lo, hi int) *partial {
	d, stride := g.Data, g.Stride
	flt := newRangeFilter(g, bound, generic)
	p := &partial{}
	switch out.Kind {
	case OutProjection:
		offs := mustOffsets(g, out.ProjAttrs)
		base := lo * stride
		for r := lo; r < hi; r++ {
			if flt.passes(base) {
				for _, o := range offs {
					p.data = append(p.data, d[base+o])
				}
				p.rows++
			}
			base += stride
		}
	case OutAggregates:
		offs := mustOffsets(g, out.AggAttrs)
		p.states = make([]*expr.AggState, len(offs))
		for i, op := range out.AggOps {
			p.states[i] = expr.NewAggState(op)
		}
		base := lo * stride
		for r := lo; r < hi; r++ {
			if flt.passes(base) {
				for i, o := range offs {
					p.states[i].Add(d[base+o])
				}
			}
			base += stride
		}
	case OutExpression:
		offs := mustOffsets(g, out.ExprAttrs)
		base := lo * stride
		for r := lo; r < hi; r++ {
			if flt.passes(base) {
				var acc data.Value
				for _, o := range offs {
					acc += d[base+o]
				}
				p.data = append(p.data, acc)
				p.rows++
			}
			base += stride
		}
	case OutAggExpression:
		offs := mustOffsets(g, out.ExprAttrs)
		st := expr.NewAggState(out.ExprAgg)
		base := lo * stride
		for r := lo; r < hi; r++ {
			if flt.passes(base) {
				var acc data.Value
				for _, o := range offs {
					acc += d[base+o]
				}
				st.Add(acc)
			}
			base += stride
		}
		p.states = []*expr.AggState{st}
	}
	return p
}
