package exec

import (
	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/storage"
)

// segTask is one planned unit of segment-parallel work: the segment (and
// its index in the relation, for the touch set), the row pipeline's
// covering group and group-bound predicates, and the row range [lo, hi)
// to scan — the whole segment normally, a sub-range when segments are
// scarcer than workers.
type segTask struct {
	si     int
	seg    *storage.Segment
	g      *storage.ColumnGroup
	bound  []GroupPred
	lo, hi int
}

// partial is one segment's contribution.
type partial struct {
	states []*expr.AggState
	data   []data.Value
	rows   int
	groups *groupedAcc // OutGrouped: this range's group map
}

// rangeFilter evaluates one segment's filter. The compiled path (bound
// offset predicates) is the common case and stays branch-free per row; the
// generic path re-binds the interpreted predicate to the group once per
// segment — one accessor closure per segment, not per row — so
// disjunctions and other non-splittable shapes still scan in parallel.
type rangeFilter struct {
	bound   []GroupPred
	generic expr.Pred
	get     expr.Accessor
	d       []data.Value
	base    int
	offs    []int // attribute id -> word offset within the group
}

func newRangeFilter(g *storage.ColumnGroup, bound []GroupPred, generic expr.Pred) *rangeFilter {
	f := &rangeFilter{bound: bound, generic: generic, d: g.Data}
	if generic != nil {
		maxAttr := data.AttrID(0)
		attrs := generic.Attrs(nil)
		for _, a := range attrs {
			if a > maxAttr {
				maxAttr = a
			}
		}
		f.offs = make([]int, maxAttr+1)
		for _, a := range attrs {
			if off, ok := g.Offset(a); ok {
				f.offs[a] = off
			}
		}
		f.get = func(a data.AttrID) data.Value { return f.d[f.base+f.offs[a]] }
	}
	return f
}

// passes evaluates the filter against the mini-tuple starting at base.
func (f *rangeFilter) passes(base int) bool {
	if f.generic != nil {
		f.base = base
		return f.generic.EvalBool(f.get)
	}
	return passes(f.d, base, f.bound)
}

// scanRange is the fused row scan over rows [lo, hi) of one group: the
// row pipeline's per-segment operator, sharing the kernels and shapes of
// the paper's Figure 5 operator.
func scanRange(g *storage.ColumnGroup, out Outputs, bound []GroupPred, generic expr.Pred, lo, hi int) *partial {
	d, stride := g.Data, g.Stride
	flt := newRangeFilter(g, bound, generic)
	p := &partial{}
	switch out.Kind {
	case OutProjection:
		offs := mustOffsets(g, out.ProjAttrs)
		base := lo * stride
		for r := lo; r < hi; r++ {
			if flt.passes(base) {
				for _, o := range offs {
					p.data = append(p.data, d[base+o])
				}
				p.rows++
			}
			base += stride
		}
	case OutAggregates:
		offs := mustOffsets(g, out.AggAttrs)
		p.states = make([]*expr.AggState, len(offs))
		for i, op := range out.AggOps {
			p.states[i] = expr.NewAggState(op)
		}
		base := lo * stride
		for r := lo; r < hi; r++ {
			if flt.passes(base) {
				for i, o := range offs {
					p.states[i].Add(d[base+o])
				}
			}
			base += stride
		}
	case OutExpression:
		offs := mustOffsets(g, out.ExprAttrs)
		base := lo * stride
		for r := lo; r < hi; r++ {
			if flt.passes(base) {
				var acc data.Value
				for _, o := range offs {
					acc += d[base+o]
				}
				p.data = append(p.data, acc)
				p.rows++
			}
			base += stride
		}
	case OutAggExpression:
		offs := mustOffsets(g, out.ExprAttrs)
		st := expr.NewAggState(out.ExprAgg)
		base := lo * stride
		for r := lo; r < hi; r++ {
			if flt.passes(base) {
				var acc data.Value
				for _, o := range offs {
					acc += d[base+o]
				}
				st.Add(acc)
			}
			base += stride
		}
		p.states = []*expr.AggState{st}
	case OutGrouped:
		s := newGroupedScanner(g, out)
		ga := newGroupedAcc(out)
		base := lo * stride
		for r := lo; r < hi; r++ {
			if flt.passes(base) {
				s.fold(ga, base)
			}
			base += stride
		}
		p.groups = ga
	}
	return p
}
