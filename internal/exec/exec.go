package exec

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// This file is the single entry point of the execution layer: every
// strategy runs as a per-segment streaming pipeline behind Exec. A
// pipeline is SegSource → per-segment operator → merge:
//
//	SegSource: skip empty → resolve covering group → prune (zone maps)
//	           → pin/fault resident → touch/count
//	operator:  Filter → Project / Aggregate / Group over one segment,
//	           emitting a *partial
//	merge:     partials combine in segment order (aggregates merge
//	           associatively, rows concatenate, group maps merge key-wise)
//
// Because every operator is a pure segment → partial function, the same
// driver runs them serially or fanned out across a worker pool with a
// claim loop — segment-level parallelism is a property of the driver, not
// of any one strategy — and LIMIT is a uniform driver property (stop
// claiming segments once the dispatched prefix can satisfy it) instead of
// per-driver early-exit code. Joins and shard-local execution attach at
// the same seam: a join is another partial-producing operator, a shard is
// a remote SegSource.

// ExecOpts selects and parameterizes the pipeline Exec builds.
type ExecOpts struct {
	// Strategy picks the per-segment operator set.
	Strategy Strategy
	// Workers is the fan-out width: one goroutine task per segment when
	// > 1, serial execution when <= 1. The reorg pipeline is always
	// serial (it mutates per-segment layout state).
	Workers int
	// VectorSize is the chunk size of StrategyVectorized; <= 0 selects
	// the L1-sized default (VectorSize).
	VectorSize int
	// HotMask restricts StrategyReorg's stitching to the marked segments
	// (nil stitches every segment).
	HotMask []bool
	// ReorgAttrs is the attribute set StrategyReorg materializes per
	// segment. Required for StrategyReorg, ignored otherwise.
	ReorgAttrs []data.AttrID
	// NewGroups, when non-nil, receives StrategyReorg's freshly stitched
	// groups: one entry per segment, nil for segments left untouched.
	NewGroups *[]*storage.ColumnGroup
	// Stats, when non-nil, receives the scan counters and touch set.
	Stats *StrategyStats
}

// PipelineBuilder constructs the per-segment pipeline for one strategy.
// Builders validate the query shape (returning ErrUnsupported for shapes
// the strategy has no operators for) and close the returned pipeline's
// operators over the classified outputs and split predicates.
type PipelineBuilder func(rel *storage.Relation, q *query.Query, opts ExecOpts) (*pipeline, error)

// strategyEntry is one registry row: how to build the strategy's pipeline,
// where it appears in cost-based choice and Explain, whether the operator
// generator may emit it, and how to cost one segment's access under it.
// The registry is the single source of truth for the strategy set —
// cost.go, core.Engine and opgen all consult it, so they agree by
// construction.
type strategyEntry struct {
	build       PipelineBuilder
	costRank    int // position among the cost-compared strategies; -1 = never cost-chosen
	explainRank int // position in Explain's candidate list; -1 = not explained
	plannable   bool
	segPlan     segPlanFunc
}

// strategies is the registry. StrategyDelta has no pipeline builder: its
// result shape is a PartialResult, served by ExecDelta (which shares this
// file's claim loop for its fan-out).
var strategies = map[Strategy]strategyEntry{
	StrategyRow:        {build: buildRow, costRank: 0, explainRank: 0, plannable: true, segPlan: rowSegPlan},
	StrategyHybrid:     {build: buildHybrid, costRank: 1, explainRank: 1, plannable: true, segPlan: hybridSegPlan},
	StrategyColumn:     {build: buildColumn, costRank: 2, explainRank: 2, plannable: true, segPlan: columnSegPlan},
	StrategyGeneric:    {build: buildGeneric, costRank: -1, explainRank: 3, plannable: true, segPlan: genericSegPlan},
	StrategyVectorized: {build: buildVectorized, costRank: -1, explainRank: -1, plannable: true},
	StrategyBitmap:     {build: buildBitmap, costRank: -1, explainRank: -1, plannable: true},
	StrategyEncoded:    {build: buildEncoded, costRank: -1, explainRank: -1},
	StrategyReorg:      {build: buildReorg, costRank: -1, explainRank: -1},
	StrategyDelta:      {costRank: -1, explainRank: -1},
}

// rankedStrategies returns the registry entries with rank(entry) >= 0 in
// rank order.
func rankedStrategies(rank func(strategyEntry) int) []Strategy {
	type rs struct {
		s Strategy
		r int
	}
	var out []rs
	for s, e := range strategies {
		if r := rank(e); r >= 0 {
			out = append(out, rs{s, r})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].r < out[j].r })
	ss := make([]Strategy, len(out))
	for i, e := range out {
		ss[i] = e.s
	}
	return ss
}

// CostedStrategies returns, in comparison order, the strategies the
// cost-based chooser prices against each other. The order is the
// tie-break order: earlier strategies win cost ties.
func CostedStrategies() []Strategy {
	return rankedStrategies(func(e strategyEntry) int { return e.costRank })
}

// ExplainStrategies returns the candidate strategies Explain enumerates,
// in presentation order.
func ExplainStrategies() []Strategy {
	return rankedStrategies(func(e strategyEntry) int { return e.explainRank })
}

// Plannable reports whether the operator generator may emit an operator
// for s. Strategies needing extra inputs (StrategyReorg's target attrs)
// or a different result shape (StrategyDelta) are not plannable.
func Plannable(s Strategy) bool {
	return strategies[s].plannable
}

// Exec executes q on rel with the selected strategy's per-segment
// pipeline. It is the one entry point behind every strategy: the
// engine's dispatch, the operator generator and the harness all route
// through it.
func Exec(rel *storage.Relation, q *query.Query, opts ExecOpts) (*Result, error) {
	e, ok := strategies[opts.Strategy]
	if !ok || e.build == nil {
		return nil, fmt.Errorf("exec: strategy %v has no pipeline builder", opts.Strategy)
	}
	p, err := e.build(rel, q, opts)
	if err != nil {
		return nil, err
	}
	return p.run(rel, opts)
}

// segCtx is the per-task context the driver hands a pipeline's scan
// operator: the pinned segment, the row pipeline's resolved group and
// bound predicates, the row range (sub-segment ranges only when the row
// pipeline sub-splits), and a private stats sink — per-task so parallel
// scans stay race-free; the driver folds the counters after the join.
type segCtx struct {
	si     int
	seg    *storage.Segment
	g      *storage.ColumnGroup
	bound  []GroupPred
	lo, hi int
	stats  *StrategyStats
}

// pipeline is one strategy's composed execution plan: the SegSource
// policy knobs (prune predicates, pin tier, per-segment resolution, the
// force hook that bypasses pruning) plus the per-segment scan operator
// and the merge stage.
type pipeline struct {
	out   Outputs
	preds []ColPred // zone-map prune predicates; nil = never prune
	limit int       // materialized-row early-exit target; 0 = consume all
	// encodedPin pins segments at encoded-or-better residency instead of
	// flat (the encoded-direct pipeline).
	encodedPin bool
	// serialOnly refuses fan-out (the reorg pipeline mutates per-segment
	// layout state in segment order).
	serialOnly bool
	// subsplit allows sub-segment row ranges when segments are scarcer
	// than workers (row pipeline only: scanRange takes [lo, hi)).
	subsplit bool
	// resolve, when non-nil, runs per non-empty segment before pruning
	// (the row pipeline's covering-group check, which must error even for
	// prunable segments).
	resolve func(seg *storage.Segment) (*storage.ColumnGroup, error)
	// bind, when non-nil, binds the prune predicates to the resolved
	// group after pruning (row pipeline).
	bind func(g *storage.ColumnGroup) ([]GroupPred, error)
	// force, when non-nil, marks segments that must be scanned even when
	// their zone maps would prune them (reorg's hot segments, which are
	// stitched regardless).
	force func(si int, seg *storage.Segment) bool
	// scan is the per-segment operator: Filter → Project/Agg/Group over
	// the pinned segment, emitting that segment's partial.
	scan func(c *segCtx) (*partial, error)
	// merge, when non-nil, replaces the default mergePartials(out, ...)
	// (the generic pipeline's mixed-shape merge).
	merge func(partials []*partial) (*Result, error)
}

// run drives the pipeline: plan the segment tasks (SegSource policy),
// then scan them serially or fanned out, then merge.
func (p *pipeline) run(rel *storage.Relation, opts ExecOpts) (*Result, error) {
	stats := opts.Stats
	workers := opts.Workers
	if workers <= 1 || p.serialOnly {
		workers = 1
	}

	// SegSource plan phase: skip empty segments, resolve per-segment
	// bindings, prune via zone maps (counted, and skipped entirely —
	// pruning precedes the residency check, so spilled cold segments cost
	// zero I/O).
	tasks := make([]segTask, 0, len(rel.Segments))
	for si, seg := range rel.Segments {
		if seg.Rows == 0 {
			continue
		}
		var g *storage.ColumnGroup
		if p.resolve != nil {
			var err error
			if g, err = p.resolve(seg); err != nil {
				return nil, err
			}
		}
		if len(p.preds) > 0 && (p.force == nil || !p.force(si, seg)) && segPruned(seg, p.preds) {
			if stats != nil {
				stats.SegmentsPruned++
			}
			continue
		}
		t := segTask{si: si, seg: seg, g: g, hi: seg.Rows}
		if p.bind != nil {
			bound, err := p.bind(g)
			if err != nil {
				return nil, err
			}
			t.bound = bound
		}
		tasks = append(tasks, t)
	}

	// Fewer segments than workers (small relations, heavy pruning):
	// sub-split each segment into contiguous row ranges so fan-out still
	// uses every core. Ranges stay in (segment, row) order, which keeps
	// the merged result and the limit's prefix property intact.
	if n := len(tasks); p.subsplit && n > 0 && n < workers {
		chunks := (workers + n - 1) / n
		split := make([]segTask, 0, n*chunks)
		for _, t := range tasks {
			per := (t.hi + chunks - 1) / chunks
			if per < 1 {
				per = 1
			}
			for lo := 0; lo < t.hi; lo += per {
				hi := lo + per
				if hi > t.hi {
					hi = t.hi
				}
				split = append(split, segTask{si: t.si, seg: t.seg, g: t.g, bound: t.bound, lo: lo, hi: hi})
			}
		}
		tasks = split
	}
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		return p.runSerial(tasks, stats)
	}
	return p.runParallel(tasks, workers, stats)
}

// runSerial scans the planned tasks in order, stopping once the limit's
// row target is met by the consumed prefix.
func (p *pipeline) runSerial(tasks []segTask, stats *StrategyStats) (*Result, error) {
	partials := make([]*partial, 0, len(tasks))
	rows := 0
	for i := range tasks {
		t := &tasks[i]
		faulted, err := p.pin(t.seg)
		if err != nil {
			return nil, err
		}
		if t.lo == 0 {
			t.seg.Touch()
			stats.touch(t.si)
		}
		if stats != nil && faulted {
			stats.SegmentsFaulted++
		}
		var ts StrategyStats
		part, err := p.scan(&segCtx{si: t.si, seg: t.seg, g: t.g, bound: t.bound, lo: t.lo, hi: t.hi, stats: &ts})
		t.seg.Release()
		if err != nil {
			return nil, err
		}
		foldCounters(stats, &ts)
		partials = append(partials, part)
		rows += part.rows
		if p.limit > 0 && rows >= p.limit {
			break
		}
	}
	return p.finish(partials)
}

// runParallel fans the planned tasks out across a claim loop: workers
// claim tasks in order, stop claiming once the dispatched prefix can
// satisfy the limit (every task below the claim counter is being
// scanned, so the first limit rows of the ordered concatenation are
// final), and partials merge in task order after the join — bit-identical
// to the serial scan.
func (p *pipeline) runParallel(tasks []segTask, workers int, stats *StrategyStats) (*Result, error) {
	limit := int64(p.limit)
	partials := make([]*partial, len(tasks))
	faulted := make([]bool, len(tasks))
	taskStats := make([]StrategyStats, len(tasks))
	var produced atomic.Int64
	var stop func() bool
	if limit > 0 {
		stop = func() bool { return produced.Load() >= limit }
	}
	err := claimLoop(len(tasks), workers, stop, func(ti int) error {
		t := &tasks[ti]
		// Pin the segment resident for the duration of the scan, faulting
		// it in when spilled: concurrent tasks on the same segment
		// serialize on the residency lock, so at most one fault per
		// segment happens no matter how it was sub-split.
		f, err := p.pin(t.seg)
		if err != nil {
			return err
		}
		faulted[ti] = f
		if t.lo == 0 {
			t.seg.Touch() // once per segment, not per sub-range
		}
		part, err := p.scan(&segCtx{si: t.si, seg: t.seg, g: t.g, bound: t.bound, lo: t.lo, hi: t.hi, stats: &taskStats[ti]})
		t.seg.Release()
		if err != nil {
			return err
		}
		partials[ti] = part
		if limit > 0 && part.rows > 0 {
			produced.Add(int64(part.rows))
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	compact := make([]*partial, 0, len(partials))
	for ti, part := range partials {
		if faulted[ti] && stats != nil {
			stats.SegmentsFaulted++
		}
		if part != nil {
			if tasks[ti].lo == 0 {
				stats.touch(tasks[ti].si)
			}
			foldCounters(stats, &taskStats[ti])
			compact = append(compact, part)
		}
	}
	return p.finish(compact)
}

// pin makes the segment's data readable at the pipeline's residency tier.
func (p *pipeline) pin(seg *storage.Segment) (bool, error) {
	if p.encodedPin {
		return seg.AcquireEncoded()
	}
	return seg.Acquire()
}

// finish merges the per-segment partials into the final result.
func (p *pipeline) finish(partials []*partial) (*Result, error) {
	if p.merge != nil {
		return p.merge(partials)
	}
	return mergePartials(p.out, partials), nil
}

// foldCounters folds one task's private scan counters into the caller's
// stats. The touch/prune/fault counters are the driver's; only the
// scan-internal counters live here.
func foldCounters(dst, src *StrategyStats) {
	if dst == nil {
		return
	}
	dst.IntermediateWords += src.IntermediateWords
	dst.DecodeSkips += src.DecodeSkips
	dst.EncodedBytes += src.EncodedBytes
}

// claimLoop runs fn(ti) for ti in [0, n) from workers goroutines claiming
// indices off a shared counter. A failed sibling stops the claim loop —
// the result is lost, so faulting more spilled segments in would be
// wasted I/O — as does stop() returning true (the limit's prefix test).
// The first error wins. Shared by every pipeline's fan-out and by
// ExecDelta's partial rescans.
func claimLoop(n, workers int, stop func() bool, fn func(ti int) error) error {
	var next atomic.Int64
	var failed atomic.Bool
	var errOnce sync.Once
	var firstErr error
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if failed.Load() || (stop != nil && stop()) {
					return
				}
				ti := int(next.Add(1)) - 1
				if ti >= n {
					return
				}
				if err := fn(ti); err != nil {
					errOnce.Do(func() { firstErr = err })
					failed.Store(true)
					return
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// buildRow is the fused row pipeline (paper Fig. 5): each segment's
// single covering group is scanned tuple-at-a-time with predicate
// push-down. Conjunctions of single-column comparisons compile to
// offset-bound predicates; any other predicate shape is evaluated through
// a once-per-segment interpreted accessor, so disjunctive filters still
// stream (and fan out) segment-at-a-time.
func buildRow(rel *storage.Relation, q *query.Query, opts ExecOpts) (*pipeline, error) {
	out := Classify(q)
	if out.Kind == OutOther {
		return nil, ErrUnsupported
	}
	preds, splittable := SplitConjunction(q.Where)
	var generic expr.Pred
	var prunePreds []ColPred
	if splittable {
		prunePreds = preds
	} else {
		generic = q.Where
	}
	all := q.AllAttrs()
	return &pipeline{
		out:      out,
		preds:    prunePreds,
		limit:    limitFor(out, q),
		subsplit: true,
		resolve: func(seg *storage.Segment) (*storage.ColumnGroup, error) {
			g := bestCoveringGroupSeg(seg, q)
			if g == nil {
				return nil, fmt.Errorf("exec: no single group of a segment covers query attributes %v", all)
			}
			return g, nil
		},
		bind: func(g *storage.ColumnGroup) ([]GroupPred, error) {
			if !splittable {
				return nil, nil
			}
			bound, ok := BindPreds(g, preds)
			if !ok {
				return nil, fmt.Errorf("exec: predicate attributes missing from group %v", g.Attrs)
			}
			return bound, nil
		},
		scan: func(c *segCtx) (*partial, error) {
			return scanRange(c.g, out, c.bound, generic, c.lo, c.hi), nil
		},
	}, nil
}

// buildColumn is the column-at-a-time late-materialization pipeline
// (paper §2.1).
func buildColumn(rel *storage.Relation, q *query.Query, opts ExecOpts) (*pipeline, error) {
	out, preds, err := splittableShape(q)
	if err != nil {
		return nil, err
	}
	return &pipeline{
		out:   out,
		preds: preds,
		limit: limitFor(out, q),
		scan: func(c *segCtx) (*partial, error) {
			return columnSegPartial(c.seg, out, preds, c.stats)
		},
	}, nil
}

// buildHybrid is the multi-group selection-vector pipeline (Fig. 6's
// q1_sel_vector generalized to whatever groups cover each segment).
func buildHybrid(rel *storage.Relation, q *query.Query, opts ExecOpts) (*pipeline, error) {
	out, preds, err := splittableShape(q)
	if err != nil {
		return nil, err
	}
	return &pipeline{
		out:   out,
		preds: preds,
		limit: limitFor(out, q),
		scan: func(c *segCtx) (*partial, error) {
			return hybridSegPartial(c.seg, q, out, preds, c.stats)
		},
	}, nil
}

// buildVectorized is the chunked pipeline (§3.3): hybrid's operators over
// vectorSize-row chunks whose intermediates stay L1-resident. The scratch
// vectors are allocated per segment scan, so chunks share them but
// concurrent segment tasks never do.
func buildVectorized(rel *storage.Relation, q *query.Query, opts ExecOpts) (*pipeline, error) {
	out, preds, err := splittableShape(q)
	if err != nil {
		return nil, err
	}
	vs := opts.VectorSize
	if vs <= 0 {
		vs = VectorSize
	}
	return &pipeline{
		out:   out,
		preds: preds,
		limit: limitFor(out, q),
		scan: func(c *segCtx) (*partial, error) {
			return vectorSegPartial(c.seg, q, out, preds, vs, c.stats)
		},
	}, nil
}

// buildBitmap is hybrid's aggregate path with bit-vectors instead of
// selection vectors; it serves the plain and grouped aggregation
// templates only.
func buildBitmap(rel *storage.Relation, q *query.Query, opts ExecOpts) (*pipeline, error) {
	out := Classify(q)
	if out.Kind != OutAggregates && out.Kind != OutGrouped {
		return nil, ErrUnsupported
	}
	preds, splittable := SplitConjunction(q.Where)
	if !splittable {
		return nil, ErrUnsupported
	}
	return &pipeline{
		out:   out,
		preds: preds,
		scan: func(c *segCtx) (*partial, error) {
			return bitmapSegPartial(c.seg, q, out, preds, c.stats)
		},
	}, nil
}

// buildEncoded is the encoded-direct pipeline: aggregate-shaped queries
// fold straight over the per-column encoded blocks of sealed segments.
// Routing is per segment — segments whose needed groups hold encodings
// take the block-header fold operator, flat segments (the mutable tail,
// never-sealed residents) take the flat filter operator — so a query over
// a mixed relation is served segment by segment instead of declining
// whole-query when pruning leaves only flat segments.
func buildEncoded(rel *storage.Relation, q *query.Query, opts ExecOpts) (*pipeline, error) {
	out := Classify(q)
	if out.Kind != OutAggregates && out.Kind != OutAggExpression && out.Kind != OutGrouped {
		return nil, ErrUnsupported
	}
	preds, splittable := SplitConjunction(q.Where)
	if !splittable {
		return nil, ErrUnsupported
	}
	return &pipeline{
		out:        out,
		preds:      preds,
		encodedPin: true,
		scan: func(c *segCtx) (*partial, error) {
			return encodedSegPartial(c.seg, q, out, preds, c.stats)
		},
	}, nil
}

// buildGeneric is the interpreted pipeline (paper §3.4): a
// tuple-at-a-time operator reading through per-attribute accessor
// indirection. It serves every query shape — including the mixed shapes
// the template pipelines refuse — so it needs its own merge stage.
func buildGeneric(rel *storage.Relation, q *query.Query, opts ExecOpts) (*pipeline, error) {
	prunePreds, splittable := SplitConjunction(q.Where)
	if !splittable {
		prunePreds = nil
	}
	if len(q.GroupBy) > 0 {
		out := Classify(q)
		if out.Kind != OutGrouped {
			// Unlike the specialized pipelines, which report ErrUnsupported
			// and fall back here, an invalid grouped select shape has no
			// executor at all, so it gets a definitive error.
			return nil, fmt.Errorf("exec: grouped query %q: every select item must be an aggregate or a group-by column", q.String())
		}
		return &pipeline{
			out:   out,
			preds: prunePreds,
			scan: func(c *segCtx) (*partial, error) {
				ga := newGroupedAcc(out)
				if err := genericGroupedSegmentScan(c.seg, q, out, ga); err != nil {
					return nil, err
				}
				return &partial{groups: ga}, nil
			},
		}, nil
	}
	hasAgg := q.HasAggregates()
	labels := make([]string, len(q.Items))
	for i, it := range q.Items {
		labels[i] = it.String()
	}
	itemStates := func() []*expr.AggState {
		states := make([]*expr.AggState, len(q.Items))
		for i, it := range q.Items {
			if it.Agg != nil {
				states[i] = expr.NewAggState(it.Agg.Op)
			}
		}
		return states
	}
	limit := 0
	if !hasAgg {
		limit = q.Limit
	}
	return &pipeline{
		preds: prunePreds,
		limit: limit,
		scan: func(c *segCtx) (*partial, error) {
			states := itemStates()
			res := &Result{}
			if err := genericSegmentScan(c.seg, q, hasAgg, states, res); err != nil {
				return nil, err
			}
			return &partial{states: states, data: res.Data, rows: res.Rows}, nil
		},
		merge: func(partials []*partial) (*Result, error) {
			if hasAgg {
				// Mixed agg/non-agg selects collapse to one row with zero
				// values for scalar items — the engine only plans pure
				// shapes, this is a safety net.
				states := itemStates()
				for _, p := range partials {
					for i, st := range p.states {
						if st != nil {
							states[i].Merge(st)
						}
					}
				}
				vals := make([]data.Value, len(q.Items))
				for i := range q.Items {
					if states[i] != nil {
						vals[i] = states[i].Result()
					}
				}
				return &Result{Cols: labels, Rows: 1, Data: vals}, nil
			}
			res := &Result{Cols: labels}
			total := 0
			for _, p := range partials {
				total += len(p.data)
			}
			res.Data = make([]data.Value, 0, total)
			for _, p := range partials {
				res.Data = append(res.Data, p.data...)
				res.Rows += p.rows
			}
			return res, nil
		},
	}, nil
}

// buildReorg fuses layout creation with query answering (paper §3.2,
// Fig. 13). Hot segments (HotMask, minus already-adapted ones) bypass
// pruning — they must be stitched regardless — and run the fused
// stitch-and-evaluate operator, recording the new group; cold segments
// run the hybrid operator over their existing layout, pruned as usual.
// Shapes outside the reorganizing template stitch the new groups up
// front and answer through the generic pipeline (two passes over the hot
// segments). Always serial: stitching mutates per-segment layout state.
func buildReorg(rel *storage.Relation, q *query.Query, opts ExecOpts) (*pipeline, error) {
	if len(opts.ReorgAttrs) == 0 {
		return nil, fmt.Errorf("exec: StrategyReorg needs ExecOpts.ReorgAttrs")
	}
	norm := data.SortedUnique(opts.ReorgAttrs)
	hot := opts.HotMask
	newGroups := make([]*storage.ColumnGroup, len(rel.Segments))
	if opts.NewGroups != nil {
		*opts.NewGroups = newGroups
	}
	out := Classify(q)
	preds, splittable := SplitConjunction(q.Where)
	if out.Kind == OutOther || !splittable || !data.ContainsAll(norm, q.AllAttrs()) {
		// Shape outside the reorganizing template: build the layouts with
		// the plain per-segment stitch and answer via the generic pipeline.
		for si, seg := range rel.Segments {
			if hot != nil && !hot[si] {
				continue
			}
			if _, exists := seg.ExactGroup(norm); exists {
				continue
			}
			g, err := storage.StitchSeg(seg, norm)
			if err != nil {
				return nil, err
			}
			newGroups[si] = g
		}
		return buildGeneric(rel, q, opts)
	}
	isHot := func(si int, seg *storage.Segment) bool {
		if hot != nil && !hot[si] {
			return false
		}
		if _, exists := seg.ExactGroup(norm); exists {
			return false // already adapted: nothing to stitch
		}
		return true
	}
	return &pipeline{
		out:        out,
		preds:      preds,
		serialOnly: true,
		force:      isHot,
		scan: func(c *segCtx) (*partial, error) {
			if isHot(c.si, c.seg) {
				states := newStates(out)
				var ga *groupedAcc
				if out.Kind == OutGrouped {
					ga = newGroupedAcc(out)
				}
				res := &Result{}
				g, err := reorgScanSegment(c.seg, out, preds, norm, states, res, ga)
				if err != nil {
					return nil, err
				}
				newGroups[c.si] = g
				return &partial{states: states, data: res.Data, rows: res.Rows, groups: ga}, nil
			}
			// Cold segment: answer from the existing layout. Stats stay nil
			// — intermediate accounting belongs to the cost-compared
			// strategies, not the reorganizing operator's cold remainder.
			return hybridSegPartial(c.seg, q, out, preds, nil)
		},
	}, nil
}

// splittableShape is the shared shape gate of the selection-vector
// pipelines: a classifiable output and a splittable conjunction.
func splittableShape(q *query.Query) (Outputs, []ColPred, error) {
	out := Classify(q)
	if out.Kind == OutOther {
		return out, nil, ErrUnsupported
	}
	preds, splittable := SplitConjunction(q.Where)
	if !splittable {
		return out, nil, ErrUnsupported
	}
	return out, preds, nil
}
