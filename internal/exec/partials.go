package exec

import (
	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// This file is the partial-result layer behind the serving layer's delta
// repair: queries whose outputs are decomposable aggregates can be answered
// from per-segment partial aggregate states, and — because segments are
// disjoint, immutable-once-sealed partitions — maintained incrementally by
// rescanning only the segments that changed since the partials were
// computed and re-combining with the retained cold-segment partials.
//
// The partials contract:
//
//   - A query is *repairable* (see Repairable) when every select item is an
//     aggregate and it carries no LIMIT. All five aggregate operators
//     decompose over disjoint partitions: count and sum combine by
//     addition, min and max by comparison, and avg by carrying (sum, count)
//     pairs — exactly what expr.AggState.Merge implements. The same merge
//     law covers grouped aggregates: a GROUP BY query whose select items are
//     aggregates and group-key columns (OutGrouped) keeps a per-segment map
//     of encoded group key → AggState vector, and partials combine by
//     merging those maps key-wise — a key absent from a segment simply
//     contributes nothing. Group keys never cross segment boundaries'
//     disjointness, so the grouped merge is as exact as the flat one.
//   - LIMIT disqualifies repair even though it is a no-op on one-row
//     aggregate results: for every other output shape the limit makes the
//     result a prefix artifact of scan order rather than a pure function of
//     per-partition contributions, so the classifier excludes it uniformly
//     instead of special-casing the vacuous aggregate case.
//   - Projections and bare expressions are never repairable: their results
//     concatenate rows in segment order, so a changed segment shifts every
//     later row — there is nothing to retain.
//
// A SegPartial is valid exactly as long as its segment's version is
// unchanged: segment versions come from a process-wide monotone clock and
// bump on every mutation of that segment (tail appends, segment-local
// reorganization), while residency changes (tiered-storage spill/fault)
// never bump them — cached partials survive a spill cycle just as cached
// results do. A segment whose version matches can also never have changed
// its *candidacy*: zone maps only move under version-bumping mutations, so
// an unchanged segment is a candidate for a query now iff it was when the
// partial was computed.

// SegPartial is one segment's contribution to a repairable query: the
// per-item aggregate states folded over the segment's qualifying rows, and
// the segment version they were computed at. Treat published SegPartials as
// immutable — they are shared between the partials cache and every repair
// that retains them; combining always merges into fresh states.
type SegPartial struct {
	// Version is the segment's version at scan time; the partial is
	// reusable exactly while the live segment still reports it.
	Version uint64
	// States holds one accumulator per select item, in item order. Nil for
	// grouped queries, which use Groups instead.
	States []*expr.AggState
	// Groups holds the grouped decomposition: encoded group key (see
	// encodeGroupKey) → one accumulator per aggregate select item, in item
	// order. Nil for ungrouped queries.
	Groups map[string][]*expr.AggState
}

// PartialResult is the per-segment decomposition of a repairable query's
// result: one SegPartial per candidate segment, keyed by segment index.
// Segment indices are stable identities here — segments are only ever
// appended, never merged or removed — so a version-vector diff by index is
// sound.
type PartialResult struct {
	// Labels are the output column labels, in select-item order.
	Labels []string
	// Ops are the aggregate operators; Result uses them to build the fresh
	// accumulators the per-segment states merge into. For ungrouped queries
	// there is one per select item; for grouped queries one per *aggregate*
	// item, in item order (key items carry no state).
	Ops []expr.AggOp
	// GroupBy and ItemKey carry the grouped output shape (see
	// Outputs.GroupBy/ItemKey); both are nil for ungrouped queries.
	GroupBy []data.AttrID
	ItemKey []int
	// Segs maps segment index to that segment's partial.
	Segs map[int]*SegPartial
}

// Repairable reports whether q's result can be maintained by delta repair:
// every select item must be an aggregate (count/sum/min/max/avg over any
// argument expression — all decomposable over disjoint segments) and the
// query must carry no LIMIT. Grouped queries are repairable when their
// select shape classifies as OutGrouped — aggregates plus bare group-key
// columns — since per-segment group maps merge key-wise under the same
// decomposition law. Join queries are not repairable: a join result does
// not decompose into per-segment partials of one relation (a changed
// segment on either side perturbs matches across every segment of the
// other), so joins are cached whole and invalidated by their fingerprint
// pair instead. See the partials contract at the top of this file.
func Repairable(q *query.Query) bool {
	if q == nil || q.Limit != 0 || len(q.Items) == 0 || len(q.Joins) > 0 {
		return false
	}
	if len(q.GroupBy) > 0 {
		return Classify(q).Kind == OutGrouped
	}
	for _, it := range q.Items {
		if it.Agg == nil {
			return false
		}
	}
	return true
}

// newPartialResult builds the empty partials container for q. Callers have
// already checked Repairable(q), so every item has an aggregate (or, for
// grouped queries, the shape classifies as OutGrouped).
func newPartialResult(q *query.Query) *PartialResult {
	p := &PartialResult{
		Labels: make([]string, len(q.Items)),
		Segs:   make(map[int]*SegPartial),
	}
	for i, it := range q.Items {
		p.Labels[i] = it.String()
	}
	if len(q.GroupBy) > 0 {
		out := Classify(q)
		p.Ops = out.GroupOps
		p.GroupBy = out.GroupBy
		p.ItemKey = out.ItemKey
		return p
	}
	p.Ops = make([]expr.AggOp, len(q.Items))
	for i, it := range q.Items {
		p.Ops[i] = it.Agg.Op
	}
	return p
}

// Merge overlays o's segment partials into p (o wins on a shared segment
// index). Repairs use it to fold freshly rescanned segments over retained
// ones; it never mutates the SegPartials themselves.
func (p *PartialResult) Merge(o *PartialResult) {
	if o == nil {
		return
	}
	for si, sp := range o.Segs {
		p.Segs[si] = sp
	}
}

// Result combines every segment partial into the final result: one row for
// ungrouped aggregates, one row per group (ordered ascending by key vector)
// for grouped ones. Aggregate merging is commutative and associative, so map
// iteration order does not matter. The inputs are not mutated: merging
// always happens into fresh accumulators.
func (p *PartialResult) Result() *Result {
	if len(p.ItemKey) > 0 {
		out := Outputs{
			Kind:     OutGrouped,
			Labels:   p.Labels,
			GroupBy:  p.GroupBy,
			ItemKey:  p.ItemKey,
			GroupOps: p.Ops,
		}
		ga := newGroupedAcc(out)
		for _, sp := range p.Segs {
			ga.mergeMap(sp.Groups)
		}
		return groupedResult(out, ga)
	}
	states := make([]*expr.AggState, len(p.Ops))
	for i, op := range p.Ops {
		states[i] = expr.NewAggState(op)
	}
	for _, sp := range p.Segs {
		for i, st := range sp.States {
			states[i].Merge(st)
		}
	}
	return aggResult(p.Labels, states)
}

// Versions snapshots the segment-version vector the partials were computed
// at, keyed by segment index — the `have` argument of a later ExecDelta.
func (p *PartialResult) Versions() map[int]uint64 {
	out := make(map[int]uint64, len(p.Segs))
	for si, sp := range p.Segs {
		out[si] = sp.Version
	}
	return out
}

// Bytes estimates the payload's memory footprint for cache budgeting: map
// bookkeeping plus one accumulator per (segment, item) — or, for grouped
// payloads, per (segment, group, aggregate item) plus the encoded keys, so
// a high-cardinality grouped payload is charged for every group it retains.
// It is a sizing estimate, not an exact heap measurement.
func (p *PartialResult) Bytes() int64 {
	if p == nil {
		return 0
	}
	const (
		segOverhead   = 64 // map slot + SegPartial header + states slice header
		stateOverhead = 48 // AggState struct + pointer
		groupOverhead = 56 // group-map slot + key string header + states slice header
	)
	if len(p.ItemKey) > 0 {
		total := int64(len(p.Segs)) * segOverhead
		keyBytes := int64(len(p.GroupBy)) * 8
		perGroup := groupOverhead + keyBytes + stateOverhead*int64(len(p.Ops))
		for _, sp := range p.Segs {
			total += int64(len(sp.Groups)) * perGroup
		}
		return total
	}
	return int64(len(p.Segs)) * (segOverhead + stateOverhead*int64(len(p.Ops)))
}

// Repaired assembles the post-repair partials payload: the retained
// segments' partials from prior plus every freshly rescanned partial. prior
// may be nil (a cold seed has nothing to retain). The result shares
// SegPartials with its inputs; none of them are mutated.
func Repaired(prior, fresh *PartialResult, reused []int) *PartialResult {
	out := &PartialResult{
		Labels:  fresh.Labels,
		Ops:     fresh.Ops,
		GroupBy: fresh.GroupBy,
		ItemKey: fresh.ItemKey,
		Segs:    make(map[int]*SegPartial, len(reused)+len(fresh.Segs)),
	}
	if prior != nil {
		for _, si := range reused {
			if sp, ok := prior.Segs[si]; ok {
				out.Segs[si] = sp
			}
		}
	}
	for si, sp := range fresh.Segs {
		out.Segs[si] = sp
	}
	return out
}

// ExecPartials scans every candidate segment of rel for the repairable
// query q and returns the per-segment partials. It is ExecDelta with
// nothing to reuse; the merged Result() equals what any full strategy
// computes.
func ExecPartials(rel *storage.Relation, q *query.Query, stats *StrategyStats) (*PartialResult, error) {
	fresh, _, err := ExecDelta(rel, q, nil, 1, stats)
	return fresh, err
}

// deltaTask is one segment ExecDelta must rescan.
type deltaTask struct {
	si  int
	seg *storage.Segment
	v   uint64
}

// ExecDelta is the delta-repair scan: it walks rel's segments exactly like
// the fingerprint computation does — empty segments skipped, segments whose
// zone maps rule the conjunction out pruned — and, for each surviving
// candidate, either *reuses* the caller's prior partial (the segment's
// version matches have[si], so neither its rows nor its candidacy can have
// changed) or *rescans* it into a fresh SegPartial. It returns the fresh
// partials and the indices of the reused candidates; combining
// Repaired(prior, fresh, reused).Result() equals a cold full scan of the
// current state.
//
// have is the version vector of the caller's cached partials (nil reuses
// nothing — a full partial scan). workers > 1 fans the rescans out one
// goroutine task per segment, exactly as the row pipeline's fan-out does —
// partials are per-segment and order-independent, so the usual case of one changed
// tail stays serial while a cold seed of a large relation uses every core.
// The caller must hold the relation stable (the engine's read lock
// suffices). Non-repairable queries return ErrUnsupported. Stats, when
// non-nil, receives the scan counters: only rescanned segments count as
// scanned/touched.
func ExecDelta(rel *storage.Relation, q *query.Query, have map[int]uint64, workers int, stats *StrategyStats) (fresh *PartialResult, reused []int, err error) {
	if !Repairable(q) {
		return nil, nil, ErrUnsupported
	}
	out := Classify(q)
	preds, splittable := SplitConjunction(q.Where)
	if !splittable {
		preds = nil
	}

	// Phase 1: classify segments — prune, reuse, or plan a rescan. Under
	// the caller's read lock no version can move between this read and the
	// scan below (mutations hold the exclusive lock).
	var tasks []deltaTask
	for si, seg := range rel.Segments {
		if seg.Rows == 0 {
			continue
		}
		if len(preds) > 0 && segPruned(seg, preds) {
			if stats != nil {
				stats.SegmentsPruned++
			}
			continue
		}
		v := seg.Version()
		if have != nil {
			if hv, ok := have[si]; ok && hv == v {
				reused = append(reused, si)
				continue
			}
		}
		tasks = append(tasks, deltaTask{si: si, seg: seg, v: v})
	}

	// Phase 2: rescan the planned segments, serially or fanned out.
	fresh = newPartialResult(q)
	if workers > len(tasks) {
		workers = len(tasks)
	}
	if workers <= 1 {
		for _, t := range tasks {
			sp, faulted, err := scanDeltaTask(t, q, out, preds, splittable, stats)
			if err != nil {
				return nil, nil, err
			}
			stats.touch(t.si)
			if stats != nil && faulted {
				stats.SegmentsFaulted++
			}
			fresh.Segs[t.si] = sp
		}
		return fresh, reused, nil
	}

	partials := make([]*SegPartial, len(tasks))
	faulted := make([]bool, len(tasks))
	// Per-task stats keep the workers race-free; the encoded-kernel
	// counters fold into the caller's stats after the join.
	taskStats := make([]StrategyStats, len(tasks))
	err = claimLoop(len(tasks), workers, nil, func(ti int) error {
		sp, f, err := scanDeltaTask(tasks[ti], q, out, preds, splittable, &taskStats[ti])
		if err != nil {
			return err
		}
		partials[ti], faulted[ti] = sp, f
		return nil
	})
	if err != nil {
		return nil, nil, err
	}
	for ti, sp := range partials {
		stats.touch(tasks[ti].si)
		if stats != nil {
			if faulted[ti] {
				stats.SegmentsFaulted++
			}
			stats.DecodeSkips += taskStats[ti].DecodeSkips
			stats.EncodedBytes += taskStats[ti].EncodedBytes
		}
		fresh.Segs[tasks[ti].si] = sp
	}
	return fresh, reused, nil
}

// encodedEligible reports whether the encoded block kernel can serve the
// classified shape: aggregate outputs with a splittable conjunction.
// Everything else reads rows through accessor indirection and needs flat
// data.
func encodedEligible(out Outputs, splittable bool) bool {
	if !splittable {
		return false
	}
	return out.Kind == OutAggregates || out.Kind == OutAggExpression || out.Kind == OutGrouped
}

// scanDeltaTask pins one planned segment, scans its partial and stamps the
// version read during classification. Shapes the encoded kernel can serve
// pin at encoded-or-better residency, so spilled segments of an encoded
// tier repair their partials without materializing flat mini-tuples.
func scanDeltaTask(t deltaTask, q *query.Query, out Outputs, preds []ColPred, splittable bool, stats *StrategyStats) (*SegPartial, bool, error) {
	var faulted bool
	var err error
	if encodedEligible(out, splittable) {
		faulted, err = t.seg.AcquireEncoded()
	} else {
		faulted, err = t.seg.Acquire()
	}
	if err != nil {
		return nil, false, err
	}
	t.seg.Touch()
	sp, err := scanSegmentPartial(t.seg, q, out, preds, splittable, stats)
	t.seg.Release()
	if err != nil {
		return nil, false, err
	}
	sp.Version = t.v
	return sp, faulted, nil
}

// scanSegmentPartial computes one pinned segment's aggregate states. The
// fused row kernel serves segments with a single covering group (the common
// case, including non-splittable predicates via the interpreted filter);
// everything else — multi-group layouts, mixed aggregate shapes outside the
// template library — falls back to the per-segment generic interpreter with
// fresh states, so every repairable query has a partial path on every
// layout.
func scanSegmentPartial(seg *storage.Segment, q *query.Query, out Outputs, preds []ColPred, splittable bool, stats *StrategyStats) (*SegPartial, error) {
	// Encoded-first: when the segment's needed groups hold encodings (an
	// encoded-resident rung, an mmap-backed fault, or a sealed-with-
	// encoding flat segment), the block kernel computes the partial
	// without materializing flat data.
	if encodedEligible(out, splittable) {
		if out.Kind == OutGrouped {
			ga := newGroupedAcc(out)
			ok, err := encodedSegmentScan(seg, out, preds, nil, ga, stats)
			if err != nil {
				return nil, err
			}
			if ok {
				return &SegPartial{Groups: ga.m}, nil
			}
		} else {
			states := newStates(out)
			ok, err := encodedSegmentScan(seg, out, preds, states, nil, stats)
			if err != nil {
				return nil, err
			}
			if ok {
				return &SegPartial{States: states}, nil
			}
		}
	}
	if out.Kind == OutGrouped {
		// Fused grouped kernel on a single covering group; otherwise the
		// grouped generic interpreter — every layout has a grouped path.
		if g := bestCoveringGroupSeg(seg, q); g != nil {
			if splittable {
				if bound, ok := BindPreds(g, preds); ok {
					p := scanRange(g, out, bound, nil, 0, seg.Rows)
					return &SegPartial{Groups: p.groups.m}, nil
				}
			} else {
				p := scanRange(g, out, nil, q.Where, 0, seg.Rows)
				return &SegPartial{Groups: p.groups.m}, nil
			}
		}
		ga := newGroupedAcc(out)
		if err := genericGroupedSegmentScan(seg, q, out, ga); err != nil {
			return nil, err
		}
		return &SegPartial{Groups: ga.m}, nil
	}
	if out.Kind == OutAggregates || out.Kind == OutAggExpression {
		if g := bestCoveringGroupSeg(seg, q); g != nil {
			if splittable {
				if bound, ok := BindPreds(g, preds); ok {
					p := scanRange(g, out, bound, nil, 0, seg.Rows)
					return &SegPartial{States: p.states}, nil
				}
			} else {
				p := scanRange(g, out, nil, q.Where, 0, seg.Rows)
				return &SegPartial{States: p.states}, nil
			}
		}
	}
	states := make([]*expr.AggState, len(q.Items))
	for i, it := range q.Items {
		states[i] = expr.NewAggState(it.Agg.Op)
	}
	if err := genericSegmentScan(seg, q, true, states, nil); err != nil {
		return nil, err
	}
	return &SegPartial{States: states}, nil
}
