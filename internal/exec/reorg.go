package exec

import (
	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// ExecReorg answers q while materializing a new column group over attrs in
// the same pass — the paper's online data reorganization (§3.2): "blocks
// from R1 and R2 are read and stitched together ... then, for each new
// tuple, the predicates in the where clause are evaluated and if the tuple
// qualifies the arithmetic expression in the select is computed. The early
// materialization strategy allows H2O to generate the data layout and
// compute the query result without scanning the relation twice."
//
// attrs must cover every attribute the query touches. The new group is
// returned alongside the result; the caller (the Data Layout Manager)
// registers it.
func ExecReorg(rel *storage.Relation, q *query.Query, attrs []data.AttrID) (*storage.ColumnGroup, *Result, error) {
	norm := data.SortedUnique(attrs)
	_, assign, err := rel.CoveringGroups(norm)
	if err != nil {
		return nil, nil, err
	}
	out := Classify(q)
	preds, splittable := SplitConjunction(q.Where)
	if out.Kind == OutOther || !splittable || !data.ContainsAll(norm, q.AllAttrs()) {
		// Shape outside the reorganizing template: build the layout with the
		// plain stitch and answer via the generic operator (two passes).
		g, err := storage.Stitch(rel, norm)
		if err != nil {
			return nil, nil, err
		}
		res, err := ExecGeneric(rel, q)
		if err != nil {
			return nil, nil, err
		}
		return g, res, nil
	}

	dst := storage.NewGroup(norm, rel.Rows)

	// Source copy plan: for each destination offset, the source buffer,
	// stride and offset to read from.
	type srcRef struct {
		d      []data.Value
		stride int
		off    int
	}
	srcs := make([]srcRef, dst.Width)
	for i, a := range dst.Attrs {
		g := assign[a]
		off, _ := g.Offset(a)
		srcs[i] = srcRef{d: g.Data, stride: g.Stride, off: off}
	}

	bound, _ := BindPreds(dst, preds)

	// Output plan against the destination group.
	var projOffs, exprOffs, aggOffs []int
	switch out.Kind {
	case OutProjection:
		projOffs = mustOffsets(dst, out.ProjAttrs)
	case OutAggregates:
		aggOffs = mustOffsets(dst, out.AggAttrs)
	case OutExpression, OutAggExpression:
		exprOffs = mustOffsets(dst, out.ExprAttrs)
	}
	states := newStates(out)

	res := &Result{Cols: out.Labels}
	dd, dStride := dst.Data, dst.Stride
	base := 0
	for r := 0; r < rel.Rows; r++ {
		// Stitch: materialize the new mini-tuple.
		for i := range srcs {
			s := &srcs[i]
			dd[base+i] = s.d[r*s.stride+s.off]
		}
		// Answer: evaluate the query against the freshly built tuple.
		if passes(dd, base, bound) {
			switch out.Kind {
			case OutProjection:
				for _, o := range projOffs {
					res.Data = append(res.Data, dd[base+o])
				}
				res.Rows++
			case OutAggregates:
				for i, o := range aggOffs {
					states[i].Add(dd[base+o])
				}
			case OutExpression:
				var acc data.Value
				for _, o := range exprOffs {
					acc += dd[base+o]
				}
				res.Data = append(res.Data, acc)
				res.Rows++
			case OutAggExpression:
				var acc data.Value
				for _, o := range exprOffs {
					acc += dd[base+o]
				}
				states[0].Add(acc)
			}
		}
		base += dStride
	}
	if out.Kind == OutAggregates || out.Kind == OutAggExpression {
		return dst, aggResult(out.Labels, states), nil
	}
	return dst, res, nil
}

func newStates(out Outputs) []*expr.AggState {
	switch out.Kind {
	case OutAggregates:
		states := make([]*expr.AggState, len(out.AggOps))
		for i, op := range out.AggOps {
			states[i] = expr.NewAggState(op)
		}
		return states
	case OutAggExpression:
		return []*expr.AggState{expr.NewAggState(out.ExprAgg)}
	default:
		return nil
	}
}
