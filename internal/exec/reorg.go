package exec

import (
	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/storage"
)

// Online reorganization (Exec with StrategyReorg) answers q while
// materializing new segment-local column groups over ExecOpts.ReorgAttrs
// in the same pass — the paper's online data reorganization (§3.2):
// "blocks from R1 and R2 are read and stitched together ... then, for
// each new tuple, the predicates in the where clause are evaluated and if
// the tuple qualifies the arithmetic expression in the select is
// computed. The early materialization strategy allows H2O to generate the
// data layout and compute the query result without scanning the relation
// twice."
//
// Reorganization is *incremental*: only segments for which HotMask[si] is
// true (nil mask means every segment) are stitched; the remaining
// segments answer the query from their existing layout — pruned entirely
// when their zone maps rule the predicates out — and keep that layout, so
// a single call costs O(hot segments), not O(relation). ExecOpts.NewGroups
// receives one new group per segment (nil entries for segments left
// untouched); the caller (the Data Layout Manager) registers them with
// the matching segments. ReorgAttrs must cover every attribute the query
// touches.

// reorgScanSegment stitches one segment's new group while answering the
// query over the freshly built mini-tuples — the fused copy-and-evaluate
// loop of Fig. 13, at segment granularity. Aggregates fold into the shared
// states; materialized rows append to res in segment order.
func reorgScanSegment(seg *storage.Segment, out Outputs, preds []ColPred, norm []data.AttrID, states []*expr.AggState, res *Result, ga *groupedAcc) (*storage.ColumnGroup, error) {
	_, assign, err := seg.CoveringGroups(norm)
	if err != nil {
		return nil, err
	}
	dst := storage.NewGroup(norm, seg.Rows)

	// Source copy plan: for each destination offset, the source buffer,
	// stride and offset to read from.
	type srcRef struct {
		d      []data.Value
		stride int
		off    int
	}
	srcs := make([]srcRef, dst.Width)
	for i, a := range dst.Attrs {
		g := assign[a]
		off, _ := g.Offset(a)
		srcs[i] = srcRef{d: g.Data, stride: g.Stride, off: off}
	}

	bound, _ := BindPreds(dst, preds)

	// Output plan against the destination group.
	var projOffs, exprOffs, aggOffs []int
	var gsc *groupedScanner
	switch out.Kind {
	case OutProjection:
		projOffs = mustOffsets(dst, out.ProjAttrs)
	case OutAggregates:
		aggOffs = mustOffsets(dst, out.AggAttrs)
	case OutExpression, OutAggExpression:
		exprOffs = mustOffsets(dst, out.ExprAttrs)
	case OutGrouped:
		gsc = newGroupedScanner(dst, out)
	}

	dd, dStride := dst.Data, dst.Stride
	base := 0
	for r := 0; r < seg.Rows; r++ {
		// Stitch: materialize the new mini-tuple.
		for i := range srcs {
			s := &srcs[i]
			dd[base+i] = s.d[r*s.stride+s.off]
		}
		// Answer: evaluate the query against the freshly built tuple.
		if passes(dd, base, bound) {
			switch out.Kind {
			case OutProjection:
				for _, o := range projOffs {
					res.Data = append(res.Data, dd[base+o])
				}
				res.Rows++
			case OutAggregates:
				for i, o := range aggOffs {
					states[i].Add(dd[base+o])
				}
			case OutExpression:
				var acc data.Value
				for _, o := range exprOffs {
					acc += dd[base+o]
				}
				res.Data = append(res.Data, acc)
				res.Rows++
			case OutAggExpression:
				var acc data.Value
				for _, o := range exprOffs {
					acc += dd[base+o]
				}
				states[0].Add(acc)
			case OutGrouped:
				gsc.fold(ga, base)
			}
		}
		base += dStride
	}
	dst.BuildZones(0)
	return dst, nil
}

func newStates(out Outputs) []*expr.AggState {
	switch out.Kind {
	case OutAggregates:
		states := make([]*expr.AggState, len(out.AggOps))
		for i, op := range out.AggOps {
			states[i] = expr.NewAggState(op)
		}
		return states
	case OutAggExpression:
		return []*expr.AggState{expr.NewAggState(out.ExprAgg)}
	default:
		return nil
	}
}
