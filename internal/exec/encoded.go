package exec

import (
	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// This file holds the encoded-direct strategy: aggregate-shaped queries
// (OutAggregates, OutAggExpression, OutGrouped) with splittable conjunctive
// predicates are answered straight from the per-column encoded blocks of
// sealed segments (storage/encode.go), without materializing flat data.
// Per 4096-row block the kernel classifies each predicate against the
// block's exact min/max header: blocks no row of which can match are
// skipped without touching their payload, fully-matching blocks fold
// their exact min/max/sum/rows statistics into the aggregate states
// without decoding, and only genuinely partial blocks pay a decode —
// and then only for the columns the query actually reads. On mmap-backed
// spill files a skipped block's payload pages are never faulted in at all.

// encCol binds one attribute to its encoded column with a one-block
// decode cache: within a block, predicates and folds that touch the same
// attribute decode it once. When the owning group is flat-resident
// (pinned, so the data cannot be demoted underneath us), flat/off/stride
// alias its Data and block reads are served from there — the headers
// still skip and fold blocks, but indeterminate blocks refine at flat
// speed instead of paying a payload decode.
type encCol struct {
	col         *storage.EncColumn
	flat        []data.Value // group Data when flat-resident, else nil
	off, stride int
	scratch     []data.Value
	vals        []data.Value // decoded values of block bi, nil before first use
	bi          int
}

// encReader resolves attributes to encoded columns of one segment and
// serves per-block decodes through the per-attribute cache.
type encReader struct {
	cols map[data.AttrID]*encCol
}

// newEncReader binds attrs against the cached encodings of seg's
// narrowest covering groups. ok is false — with no error — when some
// needed group holds no encoding, in which case the caller must use a
// flat path.
func newEncReader(seg *storage.Segment, attrs []data.AttrID) (er *encReader, ok bool, err error) {
	er = &encReader{cols: make(map[data.AttrID]*encCol, len(attrs))}
	for _, a := range attrs {
		if _, dup := er.cols[a]; dup {
			continue
		}
		g, err := seg.GroupFor(a)
		if err != nil {
			return nil, false, err
		}
		e := g.CachedEncoding()
		if e == nil {
			return nil, false, nil
		}
		off, _ := g.Offset(a)
		c := &encCol{col: e.Cols[off], bi: -1}
		if g.Data != nil {
			c.flat, c.off, c.stride = g.Data, off, g.Stride
		}
		er.cols[a] = c
	}
	return er, true, nil
}

// blockOf returns the encoded block bi of attribute a without decoding.
func (er *encReader) blockOf(a data.AttrID, bi int) *storage.EncBlock {
	return &er.cols[a].col.Blocks[bi]
}

// appendMatchesVals appends the indices of vals satisfying (op, v) to sel.
// The operator switch is hoisted out of the row loop and indices are
// written unconditionally with a conditionally advanced cursor — the
// branchless selection-vector idiom — so throughput does not collapse at
// mid selectivities where a branchy append mispredicts every other row.
func appendMatchesVals(op expr.CmpOp, vals []data.Value, v data.Value, sel []int32) []int32 {
	base := len(sel)
	if cap(sel) < base+len(vals) {
		grown := make([]int32, base+len(vals))
		copy(grown, sel)
		sel = grown
	} else {
		sel = sel[:base+len(vals)]
	}
	out := sel[base:]
	n := 0
	switch op {
	case expr.Lt:
		for r, x := range vals {
			out[n] = int32(r)
			if x < v {
				n++
			}
		}
	case expr.Le:
		for r, x := range vals {
			out[n] = int32(r)
			if x <= v {
				n++
			}
		}
	case expr.Gt:
		for r, x := range vals {
			out[n] = int32(r)
			if x > v {
				n++
			}
		}
	case expr.Ge:
		for r, x := range vals {
			out[n] = int32(r)
			if x >= v {
				n++
			}
		}
	case expr.Eq:
		for r, x := range vals {
			out[n] = int32(r)
			if x == v {
				n++
			}
		}
	case expr.Ne:
		for r, x := range vals {
			out[n] = int32(r)
			if x != v {
				n++
			}
		}
	default:
		for r, x := range vals {
			out[n] = int32(r)
			if expr.Compare(op, x, v) {
				n++
			}
		}
	}
	return sel[:base+n]
}

// block returns the values of block bi of attribute a, serving repeats
// from the cache. Flat-resident columns are read from their group data
// (a direct view for stride-1 groups); everything else decodes the
// encoded payload.
func (er *encReader) block(a data.AttrID, bi int, stats *StrategyStats) []data.Value {
	c := er.cols[a]
	if c.vals != nil && c.bi == bi {
		return c.vals
	}
	b := &c.col.Blocks[bi]
	if c.flat != nil {
		base := bi * storage.EncBlockRows
		if c.stride == 1 {
			c.vals = c.flat[base : base+b.Rows]
		} else {
			if c.scratch == nil {
				c.scratch = make([]data.Value, storage.EncBlockRows)
			}
			for r := 0; r < b.Rows; r++ {
				c.scratch[r] = c.flat[(base+r)*c.stride+c.off]
			}
			c.vals = c.scratch[:b.Rows]
		}
		c.bi = bi
		return c.vals
	}
	if c.scratch == nil {
		c.scratch = make([]data.Value, storage.EncBlockRows)
	}
	c.vals = b.Decode(c.scratch)
	c.bi = bi
	if stats != nil {
		stats.EncodedBytes += int64(len(b.Words)) * 8
	}
	return c.vals
}

// foldSelected folds vals at the selected block-relative rows into st,
// accumulating a block-local run and committing it through AddSummary:
// one tight gather loop per aggregate instead of a per-row Add with its
// per-call operator dispatch.
func foldSelected(st *expr.AggState, vals []data.Value, sel []int32) {
	if len(sel) == 0 {
		return
	}
	switch st.Op {
	case expr.AggSum, expr.AggAvg, expr.AggCount:
		var sum data.Value
		for _, r := range sel {
			sum += vals[r]
		}
		st.AddSummary(0, 0, sum, int64(len(sel)))
	default: // AggMin, AggMax
		mn, mx := vals[sel[0]], vals[sel[0]]
		for _, r := range sel[1:] {
			if x := vals[r]; x < mn {
				mn = x
			} else if x > mx {
				mx = x
			}
		}
		st.AddSummary(mn, mx, 0, int64(len(sel)))
	}
}

// encodedSegmentScan folds one pinned segment into the caller's
// accumulators (states for flat aggregates, ga for grouped ones) using
// the encoded block kernel. ok is false — and nothing has been folded —
// when the segment's needed groups hold no encodings or the output shape
// has no encoded path; the caller then falls back to a flat scan. preds
// must come from a successful SplitConjunction.
func encodedSegmentScan(seg *storage.Segment, out Outputs, preds []ColPred, states []*expr.AggState, ga *groupedAcc, stats *StrategyStats) (ok bool, err error) {
	var foldAttrs []data.AttrID
	switch out.Kind {
	case OutAggregates:
		foldAttrs = out.AggAttrs
	case OutAggExpression:
		foldAttrs = out.ExprAttrs
	case OutGrouped:
		foldAttrs = groupedScanAttrs(out)
	default:
		return false, nil
	}
	needed := make([]data.AttrID, 0, len(foldAttrs)+len(preds))
	needed = append(needed, foldAttrs...)
	for i := range preds {
		needed = append(needed, preds[i].Attr)
	}
	er, ok, err := newEncReader(seg, needed)
	if err != nil || !ok {
		return false, err
	}

	// sum(a+b+...), avg and count decompose over blocks, so a fully
	// matching block folds from per-column sums alone; min/max over an
	// expression must see row values.
	summable := out.ExprAgg == expr.AggSum || out.ExprAgg == expr.AggAvg || out.ExprAgg == expr.AggCount

	// Grouped folds evaluate keys and aggregate arguments through an
	// accessor over the current block's decoded columns.
	var curBi, curRow int
	var get expr.Accessor
	var keyBuf []data.Value
	if out.Kind == OutGrouped {
		keyBuf = make([]data.Value, len(out.GroupBy))
		get = func(a data.AttrID) data.Value { return er.block(a, curBi, stats)[curRow] }
	}

	nBlocks := (seg.Rows + storage.EncBlockRows - 1) / storage.EncBlockRows
	selBuf := make([]int32, 0, storage.EncBlockRows)
	someIdx := make([]int, 0, len(preds))
	var exprCols [][]data.Value
	if out.Kind == OutAggExpression {
		exprCols = make([][]data.Value, len(out.ExprAttrs))
	}
	for bi := 0; bi < nBlocks; bi++ {
		n := storage.EncBlockRows
		if r := seg.Rows - bi*storage.EncBlockRows; r < n {
			n = r
		}

		// Classify the block against each predicate from its exact
		// min/max header: zone-map-style skipping inside the segment.
		skip := false
		someIdx = someIdx[:0]
		for pi := range preds {
			switch er.blockOf(preds[pi].Attr, bi).Match(preds[pi].Op, preds[pi].Val) {
			case storage.MatchNone:
				skip = true
			case storage.MatchSome:
				someIdx = append(someIdx, pi)
			}
			if skip {
				break
			}
		}
		if skip {
			if stats != nil {
				stats.DecodeSkips++
			}
			continue
		}

		// Partially matching predicates build a block-relative selection
		// vector: the first one scans the encoded payload directly
		// (run-wise over RLE, unpack-compare over FOR/delta) — or the
		// flat column when the group is resident — later ones refine it
		// against block values.
		haveSel := false
		sel := selBuf[:0]
		if len(someIdx) > 0 {
			p := &preds[someIdx[0]]
			if er.cols[p.Attr].flat != nil {
				sel = appendMatchesVals(p.Op, er.block(p.Attr, bi, stats), p.Val, sel)
			} else {
				b := er.blockOf(p.Attr, bi)
				sel = b.AppendMatches(p.Op, p.Val, sel)
				if stats != nil {
					stats.EncodedBytes += int64(len(b.Words)) * 8
				}
			}
			haveSel = true
			for _, pi := range someIdx[1:] {
				p := &preds[pi]
				vals := er.block(p.Attr, bi, stats)
				w := 0
				for _, r := range sel {
					if expr.Compare(p.Op, vals[r], p.Val) {
						sel[w] = r
						w++
					}
				}
				sel = sel[:w]
			}
			if len(sel) == 0 {
				continue
			}
		}

		switch out.Kind {
		case OutAggregates:
			if !haveSel {
				// Every row matches: fold the exact block statistics,
				// payloads untouched.
				for i, a := range out.AggAttrs {
					b := er.blockOf(a, bi)
					states[i].AddSummary(b.Min, b.Max, b.Sum, int64(b.Rows))
				}
				if stats != nil {
					stats.DecodeSkips++
				}
				continue
			}
			for i, a := range out.AggAttrs {
				vals := er.block(a, bi, stats)
				foldSelected(states[i], vals, sel)
			}

		case OutAggExpression:
			if !haveSel && summable {
				var total data.Value
				for _, a := range out.ExprAttrs {
					total += er.blockOf(a, bi).Sum
				}
				states[0].AddSummary(0, 0, total, int64(n))
				if stats != nil {
					stats.DecodeSkips++
				}
				continue
			}
			for i, a := range out.ExprAttrs {
				exprCols[i] = er.block(a, bi, stats)
			}
			st := states[0]
			if haveSel {
				for _, r := range sel {
					var v data.Value
					for _, col := range exprCols {
						v += col[r]
					}
					st.Add(v)
				}
			} else {
				for r := 0; r < n; r++ {
					var v data.Value
					for _, col := range exprCols {
						v += col[r]
					}
					st.Add(v)
				}
			}

		case OutGrouped:
			curBi = bi
			if haveSel {
				for _, r := range sel {
					curRow = int(r)
					for i, a := range out.GroupBy {
						keyBuf[i] = get(a)
					}
					sts := ga.statesFor(keyBuf)
					for i, e := range out.GroupArgs {
						sts[i].Add(e.Eval(get))
					}
				}
			} else {
				for curRow = 0; curRow < n; curRow++ {
					for i, a := range out.GroupBy {
						keyBuf[i] = get(a)
					}
					sts := ga.statesFor(keyBuf)
					for i, e := range out.GroupArgs {
						sts[i].Add(e.Eval(get))
					}
				}
			}
		}
	}
	return true, nil
}

// ServesEncoded reports whether the encoded-direct pipeline would win on
// q: some segment the zone maps cannot prune serves from an encoded form
// — non-resident (faults back encoded) or resident with cached encodings.
// When every survivor is flat — e.g. only the mutable tail is left after
// pruning — the flat strategies' fused operators beat the encoded
// pipeline's flat fallback, and there is nothing encoded to win on. The
// serving layer consults this before dispatching StrategyEncoded.
func ServesEncoded(rel *storage.Relation, q *query.Query) bool {
	preds, splittable := SplitConjunction(q.Where)
	if !splittable {
		return false
	}
	for _, seg := range rel.Segments {
		if seg.Rows == 0 {
			continue
		}
		if len(preds) > 0 && segPruned(seg, preds) {
			continue
		}
		if seg.State() != storage.SegResident || seg.EncodedBytes() > 0 {
			return true
		}
	}
	return false
}

// encodedSegPartial is the encoded pipeline's per-segment operator: the
// block-header fold kernel when the segment's needed groups hold
// encodings, the flat filter path otherwise — routed per segment, so one
// query over a mixed relation serves each segment from its best form.
func encodedSegPartial(seg *storage.Segment, q *query.Query, out Outputs, preds []ColPred, stats *StrategyStats) (*partial, error) {
	states := newStates(out)
	var ga *groupedAcc
	if out.Kind == OutGrouped {
		ga = newGroupedAcc(out)
	}
	if err := encodedOrFlatSegment(seg, q, out, preds, states, ga, stats); err != nil {
		return nil, err
	}
	return &partial{states: states, groups: ga}, nil
}

// encodedOrFlatSegment scans one pinned segment into the global
// accumulators: the encoded block kernel when the needed groups hold
// encodings, otherwise the flat per-segment partial path with fresh
// per-segment states merged in.
func encodedOrFlatSegment(seg *storage.Segment, q *query.Query, out Outputs, preds []ColPred, states []*expr.AggState, ga *groupedAcc, stats *StrategyStats) error {
	ok, err := encodedSegmentScan(seg, out, preds, states, ga, stats)
	if err != nil || ok {
		return err
	}
	sp, err := scanSegmentPartial(seg, q, out, preds, true, stats)
	if err != nil {
		return err
	}
	if out.Kind == OutGrouped {
		ga.mergeMap(sp.Groups)
		return nil
	}
	for i, st := range sp.States {
		states[i].Merge(st)
	}
	return nil
}
