package exec

import (
	"testing"

	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// installSnapshotLoader deep-copies every group's data and installs a
// loader that restores it, so tests can unload segments at will.
func installSnapshotLoader(rel *storage.Relation) {
	snap := make(map[*storage.ColumnGroup][]data.Value)
	for _, seg := range rel.Segments {
		for _, g := range seg.Groups {
			cp := make([]data.Value, len(g.Data))
			copy(cp, g.Data)
			snap[g] = cp
		}
	}
	rel.SetLoader(func(s *storage.Segment) error {
		for _, g := range s.Groups {
			g.Data = append([]data.Value(nil), snap[g]...)
		}
		return nil
	})
}

// unloadSealed spills every sealed segment, returning how many unloaded.
func unloadSealed(rel *storage.Relation) int {
	n := 0
	for _, seg := range rel.Segments {
		if seg.Unload() {
			n++
		}
	}
	return n
}

// TestAllStrategiesFaultSpilledSegments runs every execution strategy over
// a relation whose sealed segments are spilled, re-spilling between
// strategies, and demands bit-identical results to the fully resident run.
// This is the exec half of the tiered-storage acceptance gate: the loader
// callback is the only way back to the data, so any strategy that bypassed
// Acquire would crash or diverge here.
func TestAllStrategiesFaultSpilledSegments(t *testing.T) {
	const rows, segCap = 4_000, 500 // 8 segments
	tb := data.GenerateTimeSeries(data.SyntheticSchema("R", 6), rows, 41)
	rel := storage.BuildColumnMajorSeg(tb, segCap)
	// Give segments a mixed layout so hybrid/row paths exercise coverage.
	if err := rel.MaterializeGroup([]data.AttrID{0, 1, 2, 3, 4, 5}); err != nil {
		t.Fatal(err)
	}
	installSnapshotLoader(rel)

	queries := []*query.Query{
		query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, query.PredLt(0, 1_200)),
		query.Aggregation("R", expr.AggMax, []data.AttrID{3}, nil),
		query.Projection("R", []data.AttrID{0, 4}, query.PredGt(0, 3_500)),
	}
	type strat struct {
		name string
		run  func(*query.Query) (*Result, error)
	}
	strategies := []strat{
		{"row", func(q *query.Query) (*Result, error) {
			return Exec(rel, q, ExecOpts{Strategy: StrategyRow})
		}},
		{"row-parallel", func(q *query.Query) (*Result, error) {
			return Exec(rel, q, ExecOpts{Strategy: StrategyRow, Workers: 4})
		}},
		{"column", func(q *query.Query) (*Result, error) {
			return Exec(rel, q, ExecOpts{Strategy: StrategyColumn})
		}},
		{"hybrid", func(q *query.Query) (*Result, error) {
			return Exec(rel, q, ExecOpts{Strategy: StrategyHybrid})
		}},
		{"generic", func(q *query.Query) (*Result, error) {
			return Exec(rel, q, ExecOpts{Strategy: StrategyGeneric})
		}},
		{"vectorized", func(q *query.Query) (*Result, error) {
			return Exec(rel, q, ExecOpts{Strategy: StrategyVectorized})
		}},
	}

	for _, q := range queries {
		// Reference: fully resident run via the generic interpreter.
		want, err := Exec(rel, q, ExecOpts{Strategy: StrategyGeneric})
		if err != nil {
			t.Fatalf("%s: reference: %v", q, err)
		}
		for _, s := range strategies {
			unloadSealed(rel)
			for si, seg := range rel.Segments[:len(rel.Segments)-1] {
				if seg.Resident() {
					t.Fatalf("sealed segment %d still resident; test is not exercising spill", si)
				}
			}
			got, err := s.run(q)
			if err != nil {
				t.Fatalf("%s on spilled relation, query %s: %v", s.name, q, err)
			}
			if !got.Equal(want) {
				t.Fatalf("%s diverged on spilled relation for %s", s.name, q)
			}
		}
	}

	// The bitmap ablation path supports aggregations only.
	aggQ := queries[0]
	want, err := Exec(rel, aggQ, ExecOpts{Strategy: StrategyGeneric})
	if err != nil {
		t.Fatal(err)
	}
	unloadSealed(rel)
	got, err := Exec(rel, aggQ, ExecOpts{Strategy: StrategyBitmap})
	if err != nil {
		t.Fatalf("bitmap on spilled relation: %v", err)
	}
	if !got.Equal(want) {
		t.Fatal("bitmap strategy diverged on spilled relation")
	}
}

// TestReorgPagesInBeforeStitching spills everything, then runs the online
// reorganizing executor over a hot mask: hot segments must fault in,
// stitch correctly, and cold pruned segments must stay on disk.
func TestReorgPagesInBeforeStitching(t *testing.T) {
	const rows, segCap = 4_000, 500
	tb := data.GenerateTimeSeries(data.SyntheticSchema("R", 6), rows, 43)
	rel := storage.BuildColumnMajorSeg(tb, segCap)
	installSnapshotLoader(rel)

	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, query.PredGt(0, 3_499))
	want, err := Exec(rel, q, ExecOpts{Strategy: StrategyGeneric})
	if err != nil {
		t.Fatal(err)
	}
	if unloadSealed(rel) == 0 {
		t.Fatal("nothing unloaded")
	}

	// Hot = the last two segments (the predicate's range); cold = rest.
	hot := make([]bool, len(rel.Segments))
	hot[len(hot)-1], hot[len(hot)-2] = true, true
	var newGroups []*storage.ColumnGroup
	res, err := Exec(rel, q, ExecOpts{Strategy: StrategyReorg, ReorgAttrs: []data.AttrID{0, 1, 2}, HotMask: hot, NewGroups: &newGroups})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Equal(want) {
		t.Fatal("reorganizing execution diverged on spilled relation")
	}
	for si, g := range newGroups {
		if hot[si] && g == nil {
			t.Fatalf("hot segment %d produced no group", si)
		}
		if !hot[si] && g != nil {
			t.Fatalf("cold segment %d was stitched", si)
		}
	}
	// Cold segments pruned by the predicate must still be spilled: the
	// reorg never paged them in.
	for si, seg := range rel.Segments {
		if !hot[si] && si < len(rel.Segments)-3 && seg.Resident() {
			t.Fatalf("cold pruned segment %d was paged in during reorg", si)
		}
	}
}
