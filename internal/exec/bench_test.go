package exec

import (
	"fmt"
	"runtime"
	"testing"

	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

const benchRows = 100_000

func benchFixture(b *testing.B, attrs int) (*data.Table, *storage.Relation, *storage.Relation) {
	b.Helper()
	tb := data.Generate(data.SyntheticSchema("R", attrs), benchRows, 42)
	return tb, storage.BuildColumnMajor(tb), storage.BuildRowMajor(tb, false)
}

func BenchmarkFilterGroupOnePred(b *testing.B) {
	tb, col, _ := benchFixture(b, 2)
	g, _ := col.GroupFor(0)
	preds := []GroupPred{{Off: 0, Op: expr.Lt, Val: 0}}
	sel := make([]int32, 0, benchRows)
	_ = tb
	b.SetBytes(benchRows * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel = FilterGroup(g, preds, 0, g.Rows, sel[:0])
	}
	_ = sel
}

func BenchmarkFilterGroupTwoPredsFused(b *testing.B) {
	tb, _, _ := benchFixture(b, 2)
	g := storage.BuildGroup(tb, []data.AttrID{0, 1})
	preds := []GroupPred{
		{Off: 0, Op: expr.Lt, Val: 0},
		{Off: 1, Op: expr.Gt, Val: 0},
	}
	sel := make([]int32, 0, benchRows)
	b.SetBytes(benchRows * 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel = FilterGroup(g, preds, 0, g.Rows, sel[:0])
	}
	_ = sel
}

func BenchmarkRefineSel(b *testing.B) {
	tb, col, _ := benchFixture(b, 2)
	g, _ := col.GroupFor(1)
	all := FilterGroup(g, nil, 0, g.Rows, nil)
	preds := []GroupPred{{Off: 0, Op: expr.Gt, Val: 0}}
	scratch := make([]int32, len(all))
	_ = tb
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		copy(scratch, all)
		RefineSel(g, preds, scratch)
	}
}

func BenchmarkGatherColumn(b *testing.B) {
	tb, col, _ := benchFixture(b, 2)
	g, _ := col.GroupFor(1)
	gp, _ := col.GroupFor(0)
	sel := FilterGroup(gp, []GroupPred{{Off: 0, Op: expr.Lt, Val: 0}}, 0, gp.Rows, nil)
	out := make([]data.Value, len(sel))
	_ = tb
	b.SetBytes(int64(len(sel)) * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		GatherColumn(g, 0, sel, out)
	}
}

func BenchmarkAggColumnAllSum(b *testing.B) {
	_, col, _ := benchFixture(b, 1)
	g, _ := col.GroupFor(0)
	b.SetBytes(benchRows * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = AggColumnAll(g, 0, expr.AggSum)
	}
}

func BenchmarkSumOffsetsAll(b *testing.B) {
	tb, _, _ := benchFixture(b, 5)
	g := storage.BuildGroup(tb, []data.AttrID{0, 1, 2, 3, 4})
	out := make([]data.Value, g.Rows)
	b.SetBytes(benchRows * 5 * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		SumOffsetsAll(g, []int{0, 1, 2, 3, 4}, out)
	}
}

// BenchmarkStrategy* time the four execution strategies on the same query —
// an aggregation over 10 of 50 attributes with a 50% filter — exposing the
// per-strategy overheads the engine's cost model has to rank.

func strategyQuery() *query.Query {
	attrs := []data.AttrID{3, 7, 12, 18, 22, 28, 33, 39, 44, 48}
	return query.Aggregation("R", expr.AggMax, attrs, query.PredLt(0, 0))
}

func BenchmarkStrategyRow(b *testing.B) {
	_, _, row := benchFixture(b, 50)
	q := strategyQuery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exec(row, q, ExecOpts{Strategy: StrategyRow}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStrategyColumn(b *testing.B) {
	_, col, _ := benchFixture(b, 50)
	q := strategyQuery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exec(col, q, ExecOpts{Strategy: StrategyColumn}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStrategyHybrid(b *testing.B) {
	tb, _, _ := benchFixture(b, 50)
	rel, err := storage.BuildPartitioned(tb, [][]data.AttrID{
		{0, 3, 7, 12, 18}, {22, 28, 33, 39, 44, 48},
		allExcept(50, []data.AttrID{0, 3, 7, 12, 18, 22, 28, 33, 39, 44, 48}),
	})
	if err != nil {
		b.Fatal(err)
	}
	q := strategyQuery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exec(rel, q, ExecOpts{Strategy: StrategyHybrid}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStrategyGeneric(b *testing.B) {
	_, _, row := benchFixture(b, 50)
	q := strategyQuery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exec(row, q, ExecOpts{Strategy: StrategyGeneric}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPipeline* time the streaming pipeline's segment-level fan-out:
// the same strategy on the same multi-segment relation, serial vs one worker
// per core. The parallel sub-runs should scale with segment count — they are
// the CI-visible proof that column, hybrid and vectorized execution fan out
// per segment instead of serializing phases.

func benchPipeline(b *testing.B, rel *storage.Relation, s Strategy) {
	b.Helper()
	q := strategyQuery()
	fanOut := runtime.NumCPU()
	if fanOut < 4 {
		fanOut = 4 // keep the fan-out visible on small CI machines
	}
	for _, workers := range []int{1, fanOut} {
		name := "serial"
		if workers > 1 {
			name = fmt.Sprintf("workers=%d", workers)
		}
		b.Run(name, func(b *testing.B) {
			b.SetBytes(benchRows * 11 * 8)
			for i := 0; i < b.N; i++ {
				if _, err := Exec(rel, q, ExecOpts{Strategy: s, Workers: workers}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func BenchmarkPipelineColumn(b *testing.B) {
	tb := data.Generate(data.SyntheticSchema("R", 50), benchRows, 42)
	benchPipeline(b, storage.BuildColumnMajorSeg(tb, benchRows/16), StrategyColumn)
}

func BenchmarkPipelineHybrid(b *testing.B) {
	tb := data.Generate(data.SyntheticSchema("R", 50), benchRows, 42)
	benchPipeline(b, storage.BuildRowMajorSeg(tb, false, benchRows/16), StrategyHybrid)
}

func BenchmarkPipelineVectorized(b *testing.B) {
	tb := data.Generate(data.SyntheticSchema("R", 50), benchRows, 42)
	benchPipeline(b, storage.BuildColumnMajorSeg(tb, benchRows/16), StrategyVectorized)
}

func BenchmarkReorgOnline(b *testing.B) {
	_, col, _ := benchFixture(b, 50)
	attrs := []data.AttrID{0, 3, 7, 12, 18, 22, 28, 33, 39, 44}
	q := query.Aggregation("R", expr.AggMax, attrs, nil)
	b.SetBytes(int64(len(attrs)) * benchRows * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exec(col, q, ExecOpts{Strategy: StrategyReorg, ReorgAttrs: attrs}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkStitchOffline(b *testing.B) {
	_, col, _ := benchFixture(b, 50)
	attrs := []data.AttrID{0, 3, 7, 12, 18, 22, 28, 33, 39, 44}
	b.SetBytes(int64(len(attrs)) * benchRows * 8)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := storage.Stitch(col, attrs); err != nil {
			b.Fatal(err)
		}
	}
}

func allExcept(n int, excl []data.AttrID) []data.AttrID {
	skip := map[data.AttrID]bool{}
	for _, a := range excl {
		skip[a] = true
	}
	var out []data.AttrID
	for a := 0; a < n; a++ {
		if !skip[a] {
			out = append(out, a)
		}
	}
	return out
}
