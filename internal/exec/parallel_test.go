package exec

import (
	"runtime"
	"testing"

	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// parallelFixture builds a row-major relation split into many small
// segments, so segment-parallel scans actually fan out at test scale.
func parallelFixture(t *testing.T) (*data.Table, *storage.Relation) {
	t.Helper()
	tb := data.Generate(data.SyntheticSchema("R", testAttrs), testRows, 77)
	return tb, storage.BuildRowMajorSeg(tb, false, 256) // 8 segments
}

// TestParallelMatchesSerial: the segment-parallel scan must be bit-identical
// to the serial one for every template, predicate shape and worker count,
// including worker counts that exceed the segment count.
func TestParallelMatchesSerial(t *testing.T) {
	_, row := parallelFixture(t)
	for qi, q := range queriesUnderTest() {
		want, err := Exec(row, q, ExecOpts{Strategy: StrategyRow})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{1, 2, 3, 7, 16, testRows + 5} {
			got, err := Exec(row, q, ExecOpts{Strategy: StrategyRow, Workers: workers})
			if err != nil {
				t.Fatalf("query %d workers=%d: %v", qi, workers, err)
			}
			if !got.Equal(want) {
				t.Fatalf("query %d (%s) workers=%d: parallel result differs", qi, q, workers)
			}
		}
	}
}

func TestParallelFullFanOut(t *testing.T) {
	_, row := parallelFixture(t)
	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, nil)
	got, err := Exec(row, q, ExecOpts{Strategy: StrategyRow, Workers: runtime.NumCPU()})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := Exec(row, q, ExecOpts{Strategy: StrategyRow})
	if !got.Equal(want) {
		t.Fatal("workers=NumCPU result differs from serial")
	}
}

// TestParallelDisjunction: non-splittable predicates (disjunctions) no
// longer fall back to the serial generic operator — each segment's worker
// evaluates the interpreted predicate over its rows. The result must match
// the generic operator's bit for bit, for several worker counts.
func TestParallelDisjunction(t *testing.T) {
	_, row := parallelFixture(t)
	or := &expr.Or{L: query.PredLt(0, 0).(*expr.Cmp), R: query.PredGt(1, 0).(*expr.Cmp)}
	for qi, q := range []*query.Query{
		query.Aggregation("R", expr.AggSum, []data.AttrID{2}, or),
		query.Projection("R", []data.AttrID{0, 3}, or),
		query.AggExpression("R", []data.AttrID{1, 2}, or),
	} {
		want, err := Exec(row, q, ExecOpts{Strategy: StrategyGeneric})
		if err != nil {
			t.Fatal(err)
		}
		for _, workers := range []int{2, 3, 7, 16} {
			got, err := Exec(row, q, ExecOpts{Strategy: StrategyRow, Workers: workers})
			if err != nil {
				t.Fatalf("query %d workers=%d: %v", qi, workers, err)
			}
			if !got.Equal(want) {
				t.Fatalf("query %d (%s) workers=%d: parallel disjunction differs from generic", qi, q, workers)
			}
		}
	}
}

func TestParallelUnsupportedShape(t *testing.T) {
	_, row := parallelFixture(t)
	// A select clause mixing an aggregate with a plain column is outside
	// every template (OutOther): only the generic operator covers it.
	q := &query.Query{Table: "R", Items: []query.SelectItem{
		{Agg: &expr.Agg{Op: expr.AggMax, Arg: &expr.Col{ID: 0}}},
		{Expr: &expr.Col{ID: 1}},
	}}
	if _, err := Exec(row, q, ExecOpts{Strategy: StrategyRow, Workers: 4}); err != ErrUnsupported {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}

func TestParallelCoverageError(t *testing.T) {
	_, col, _, _ := fixture(t)
	q := query.Projection("R", []data.AttrID{0, 1}, nil)
	if _, err := Exec(col, q, ExecOpts{Strategy: StrategyRow, Workers: 4}); err == nil {
		t.Fatal("relation without a covering group per segment accepted")
	}
}

// TestParallelLimitEarlyExit: with a limit, the parallel scan must still
// produce the first N rows of the segment-ordered scan, and it must not
// claim segments far beyond the ones needed.
func TestParallelLimitEarlyExit(t *testing.T) {
	tb, row := parallelFixture(t)
	q := query.Projection("R", []data.AttrID{0, 1}, nil)
	q.Limit = 100
	got, err := Exec(row, q, ExecOpts{Strategy: StrategyRow, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows < 100 {
		t.Fatalf("parallel limit produced %d rows, want >= 100", got.Rows)
	}
	// Engine-side truncation semantics: first 100 rows match the table.
	for r := 0; r < 100; r++ {
		if got.At(r, 0) != tb.Value(r, 0) || got.At(r, 1) != tb.Value(r, 1) {
			t.Fatalf("row %d differs from scan order", r)
		}
	}
}

func TestAggStateMerge(t *testing.T) {
	vals := []data.Value{4, -9, 7, 0, 12, -3}
	for _, op := range []expr.AggOp{expr.AggSum, expr.AggMax, expr.AggMin, expr.AggCount, expr.AggAvg} {
		serial := expr.NewAggState(op)
		for _, v := range vals {
			serial.Add(v)
		}
		left, right := expr.NewAggState(op), expr.NewAggState(op)
		for _, v := range vals[:3] {
			left.Add(v)
		}
		for _, v := range vals[3:] {
			right.Add(v)
		}
		left.Merge(right)
		if left.Result() != serial.Result() {
			t.Fatalf("%v: merged %d != serial %d", op, left.Result(), serial.Result())
		}
		// Merging an empty state is a no-op.
		empty := expr.NewAggState(op)
		before := left.Result()
		left.Merge(empty)
		if left.Result() != before {
			t.Fatalf("%v: merging empty state changed the result", op)
		}
	}
}

func TestAggStateMergeRejectsMixedOps(t *testing.T) {
	a, b := expr.NewAggState(expr.AggSum), expr.NewAggState(expr.AggMax)
	b.Add(1)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on mixed-operator merge")
		}
	}()
	a.Merge(b)
}

func BenchmarkParallelRowScan(b *testing.B) {
	tb := data.Generate(data.SyntheticSchema("R", 50), benchRows, 42)
	row := storage.BuildRowMajorSeg(tb, false, 8192)
	q := strategyQuery()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exec(row, q, ExecOpts{Strategy: StrategyRow, Workers: runtime.NumCPU()}); err != nil {
			b.Fatal(err)
		}
	}
}
