package exec

import (
	"h2o/internal/costmodel"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// Strategy identifies one of H2O's execution strategies.
type Strategy int

const (
	// StrategyRow is the volcano-style fused single-group scan.
	StrategyRow Strategy = iota
	// StrategyColumn is column-at-a-time late materialization.
	StrategyColumn
	// StrategyHybrid is the multi-group selection-vector strategy.
	StrategyHybrid
	// StrategyGeneric is the interpreted fallback operator.
	StrategyGeneric
	// StrategyReorg fuses layout creation with query answering.
	StrategyReorg
	// StrategyDelta answers a repairable aggregate query by rescanning only
	// the segments that changed since its partials were cached, merging with
	// the retained cold-segment partials (ExecDelta). The serving layer
	// reports it on delta-repaired queries; the cost-based chooser never
	// selects it directly.
	StrategyDelta
	// StrategyEncoded answers aggregate-shaped queries directly over the
	// per-column encoded blocks of sealed segments: block headers skip or
	// fold whole blocks without decoding, and spilled segments fault in
	// only their compact encoded form. The serving layer uses it on
	// encoded-tier relations; the cost-based chooser never selects it
	// directly.
	StrategyEncoded
	// StrategyVectorized is the chunked variant of StrategyHybrid (§3.3):
	// the same operators over fixed-size row chunks whose intermediates
	// stay cache-resident. An ablation strategy, never cost-chosen.
	StrategyVectorized
	// StrategyBitmap is StrategyHybrid's aggregate path with bit-vectors
	// instead of selection vectors. An ablation strategy, never
	// cost-chosen.
	StrategyBitmap
	// StrategyJoin is the streaming hash-join operator (ExecJoin): the
	// greedily chosen build side folds into a hash table segment-at-a-time,
	// the probe side streams through the standard pipeline. It spans two
	// relations, so it lives outside the single-relation registry and the
	// cost-based chooser; the facade reports it on join executions.
	StrategyJoin
)

// String names the strategy.
func (s Strategy) String() string {
	switch s {
	case StrategyRow:
		return "row-fused"
	case StrategyColumn:
		return "column-late"
	case StrategyHybrid:
		return "hybrid-groups"
	case StrategyGeneric:
		return "generic"
	case StrategyReorg:
		return "online-reorg"
	case StrategyDelta:
		return "delta-repair"
	case StrategyEncoded:
		return "encoded-direct"
	case StrategyVectorized:
		return "vectorized"
	case StrategyBitmap:
		return "bitmap"
	case StrategyJoin:
		return "hash-join"
	default:
		return "unknown"
	}
}

// AccessPlan builds the cost-model descriptors (one costmodel.GroupAccess
// per layout the plan touches, the terms of Eq. 2) for executing q on rel
// with the given strategy. estSel is the engine's selectivity estimate for
// the query's predicates; it only matters for ranking.
//
// Costing is segment-aware: a relation whose segments share one layout is
// costed once at full row count (identical to costing each segment and
// summing, since every term is linear in rows); a mixed-layout relation is
// costed segment by segment so a plan that is cheap on the three
// reorganized segments and expensive on the rest prices correctly.
//
// The returned slice is nil when the strategy cannot run the query on the
// relation's current groups (e.g. StrategyRow without a covering group in
// every segment).
func AccessPlan(s Strategy, rel *storage.Relation, q *query.Query, estSel float64) []costmodel.GroupAccess {
	if rel.Uniform() {
		return segAccessPlan(s, rel.Segments[0], rel.Rows, q, estSel)
	}
	var accesses []costmodel.GroupAccess
	for _, seg := range rel.Segments {
		if seg.Rows == 0 {
			continue
		}
		sub := segAccessPlan(s, seg, seg.Rows, q, estSel)
		if sub == nil {
			return nil
		}
		accesses = append(accesses, sub...)
	}
	return accesses
}

// segPlanFunc costs one segment's layout under one strategy, scaled to
// rows tuples. Each costed strategy registers one in the strategies
// registry (exec.go), which is segAccessPlan's dispatch table.
type segPlanFunc func(seg *storage.Segment, rows int, q *query.Query, estSel float64) []costmodel.GroupAccess

// segAccessPlan costs one segment's layout, scaled to rows tuples, by
// dispatching to the strategy's registered segPlan. Strategies without
// one (reorg, delta, encoded, the ablation strategies) are never costed.
func segAccessPlan(s Strategy, seg *storage.Segment, rows int, q *query.Query, estSel float64) []costmodel.GroupAccess {
	e, ok := strategies[s]
	if !ok || e.segPlan == nil {
		return nil
	}
	if q.Where == nil {
		estSel = 1
	}
	return e.segPlan(seg, rows, q, estSel)
}

// rowSegPlan costs the fused row strategy: one fused pass over the single
// covering group; no intermediates.
func rowSegPlan(seg *storage.Segment, rows int, q *query.Query, estSel float64) []costmodel.GroupAccess {
	g := bestCoveringGroupSeg(seg, q)
	if g == nil {
		return nil
	}
	return []costmodel.GroupAccess{{
		Stride: g.Stride, Width: g.Width, Used: len(q.AllAttrs()), Rows: rows,
		Selectivity: 1, // predicate push-down scans every tuple
	}}
}

// columnSegPlan costs late materialization: one access per distinct
// attribute's column, plus intermediate columns for gathered outputs and
// refined predicates.
func columnSegPlan(seg *storage.Segment, rows int, q *query.Query, estSel float64) []costmodel.GroupAccess {
	var accesses []costmodel.GroupAccess
	where := q.WhereAttrs()
	sel := q.SelectAttrs()
	for i, a := range where {
		g, err := seg.GroupFor(a)
		if err != nil {
			return nil
		}
		scanSel := 1.0
		inter := 0
		if i > 0 {
			scanSel = estSel // later predicates probe through the vector
			inter = int(float64(rows) * estSel)
		} else {
			inter = int(float64(rows) * estSel / 2) // selection vector (int32)
		}
		accesses = append(accesses, costmodel.GroupAccess{
			Stride: g.Stride, Width: g.Width, Used: 1, Rows: rows,
			Selectivity: scanSel, IntermediateWords: inter,
		})
	}
	out := Classify(q)
	outSel := estSel
	if len(where) == 0 {
		outSel = 1
	}
	for _, a := range sel {
		g, err := seg.GroupFor(a)
		if err != nil {
			return nil
		}
		inter := 0
		if out.Kind != OutAggregates {
			// Projections and expressions materialize a full
			// intermediate column per attribute.
			inter = int(float64(rows) * outSel)
		}
		accesses = append(accesses, costmodel.GroupAccess{
			Stride: g.Stride, Width: g.Width, Used: 1, Rows: rows,
			Selectivity: outSel, IntermediateWords: inter,
		})
	}
	return accesses
}

// hybridSegPlan costs the multi-group selection-vector strategy.
func hybridSegPlan(seg *storage.Segment, rows int, q *query.Query, estSel float64) []costmodel.GroupAccess {
	all := q.AllAttrs()
	groups, assign, err := seg.CoveringGroups(all)
	if err != nil {
		return nil
	}
	where := q.WhereAttrs()
	out := Classify(q)
	outSel := estSel
	if len(where) == 0 {
		outSel = 1
	}
	firstPredGroup := -1
	if len(where) > 0 {
		for i, g := range groups {
			if g == assign[where[0]] {
				firstPredGroup = i
				break
			}
		}
	}
	var accesses []costmodel.GroupAccess
	for i, g := range groups {
		used := 0
		for _, a := range all {
			if assign[a] == g {
				used++
			}
		}
		scanSel := estSel
		inter := 0
		if len(where) == 0 {
			scanSel = 1
		} else if i == firstPredGroup {
			scanSel = 1 // the filtering group is fully scanned
			inter = int(float64(rows) * estSel / 2)
		}
		// Expression outputs accumulate per-group partial sums through a
		// temporary vector: two extra full-length passes per contributing
		// group. A single fused group (StrategyRow) avoids this — that is
		// the gap that makes merged groups worth creating.
		if out.Kind == OutExpression || out.Kind == OutAggExpression {
			inter += 2 * int(float64(rows)*outSel)
		}
		accesses = append(accesses, costmodel.GroupAccess{
			Stride: g.Stride, Width: g.Width, Used: used, Rows: rows,
			Selectivity: scanSel, IntermediateWords: inter,
		})
	}
	return accesses
}

// genericSegPlan costs the interpreted operator: same data traffic as
// hybrid, plus an interpretation overhead that the model charges as extra
// per-word compute (about 6x, matching the measured gap between
// interpreted and compiled operators).
func genericSegPlan(seg *storage.Segment, rows int, q *query.Query, estSel float64) []costmodel.GroupAccess {
	accesses := hybridSegPlan(seg, rows, q, estSel)
	for i := range accesses {
		accesses[i].IntermediateWords += accesses[i].Rows * accesses[i].Used / 2
	}
	return accesses
}

// bestCoveringGroupSeg returns the narrowest single group of seg covering
// every attribute of q, or nil.
func bestCoveringGroupSeg(seg *storage.Segment, q *query.Query) *storage.ColumnGroup {
	all := q.AllAttrs()
	var best *storage.ColumnGroup
	for _, g := range seg.Groups {
		if g.HasAll(all) && (best == nil || g.Width < best.Width) {
			best = g
		}
	}
	return best
}

// RowCovered reports whether every segment of rel has a single group
// covering all of q's attributes — the precondition of the fused row
// strategy (segments may satisfy it with different groups).
func RowCovered(rel *storage.Relation, q *query.Query) bool {
	for _, seg := range rel.Segments {
		if seg.Rows == 0 {
			continue
		}
		if bestCoveringGroupSeg(seg, q) == nil {
			return false
		}
	}
	return true
}
