package exec

import (
	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
)

// OutKind classifies a query's select clause into the shapes for which the
// operator generator has specialized templates (paper §3.4: "the available
// query templates in H2O support select-project-join queries and can be
// extended"). Anything else runs on the generic interpreted operator.
type OutKind int

const (
	// OutProjection: select a, b, c ... (template i).
	OutProjection OutKind = iota
	// OutAggregates: select max(a), max(b), ... one aggregate per column
	// (template ii).
	OutAggregates
	// OutExpression: select a + b + c (template iii).
	OutExpression
	// OutAggExpression: select sum(a + b + c) — the §4.1 mix.
	OutAggExpression
	// OutOther: any other select-clause shape; only the generic operator
	// covers it.
	OutOther
)

// String names the shape.
func (k OutKind) String() string {
	switch k {
	case OutProjection:
		return "projection"
	case OutAggregates:
		return "aggregates"
	case OutExpression:
		return "expression"
	case OutAggExpression:
		return "agg-expression"
	default:
		return "other"
	}
}

// Outputs is the classified select clause of a query.
type Outputs struct {
	Kind   OutKind
	Labels []string

	ProjAttrs []data.AttrID // OutProjection: projected attributes in order

	AggOps   []expr.AggOp  // OutAggregates: per-item aggregate ops
	AggAttrs []data.AttrID // OutAggregates: per-item argument columns

	ExprAttrs []data.AttrID // OutExpression/OutAggExpression: summed columns
	ExprAgg   expr.AggOp    // OutAggExpression: outer aggregate
}

// SumLeaves flattens e if it is a pure sum of column references (the paper's
// arithmetic-expression template) and reports whether it had that shape.
// Attribute order follows the expression's left-to-right order; duplicates
// are preserved (a+a is a legal expression).
func SumLeaves(e expr.Expr) ([]data.AttrID, bool) {
	switch t := e.(type) {
	case *expr.Col:
		return []data.AttrID{t.ID}, true
	case *expr.Arith:
		if t.Op != expr.Add {
			return nil, false
		}
		l, okL := SumLeaves(t.L)
		if !okL {
			return nil, false
		}
		r, okR := SumLeaves(t.R)
		if !okR {
			return nil, false
		}
		return append(l, r...), true
	default:
		return nil, false
	}
}

// Classify inspects the select clause and labels the outputs.
func Classify(q *query.Query) Outputs {
	out := Outputs{Labels: make([]string, len(q.Items))}
	for i, it := range q.Items {
		out.Labels[i] = it.String()
	}
	if len(q.Items) == 0 {
		out.Kind = OutOther
		return out
	}

	allPlainCols := true
	allAggCols := true
	for _, it := range q.Items {
		if it.Agg != nil {
			allPlainCols = false
			if _, ok := it.Agg.Arg.(*expr.Col); !ok {
				allAggCols = false
			}
		} else {
			allAggCols = false
			if _, ok := it.Expr.(*expr.Col); !ok {
				allPlainCols = false
			}
		}
	}

	switch {
	case allPlainCols:
		out.Kind = OutProjection
		out.ProjAttrs = make([]data.AttrID, len(q.Items))
		for i, it := range q.Items {
			out.ProjAttrs[i] = it.Expr.(*expr.Col).ID
		}
	case allAggCols:
		out.Kind = OutAggregates
		out.AggOps = make([]expr.AggOp, len(q.Items))
		out.AggAttrs = make([]data.AttrID, len(q.Items))
		for i, it := range q.Items {
			out.AggOps[i] = it.Agg.Op
			out.AggAttrs[i] = it.Agg.Arg.(*expr.Col).ID
		}
	case len(q.Items) == 1 && q.Items[0].Agg == nil:
		if attrs, ok := SumLeaves(q.Items[0].Expr); ok {
			out.Kind = OutExpression
			out.ExprAttrs = attrs
		} else {
			out.Kind = OutOther
		}
	case len(q.Items) == 1 && q.Items[0].Agg != nil:
		if attrs, ok := SumLeaves(q.Items[0].Agg.Arg); ok {
			out.Kind = OutAggExpression
			out.ExprAttrs = attrs
			out.ExprAgg = q.Items[0].Agg.Op
		} else {
			out.Kind = OutOther
		}
	default:
		out.Kind = OutOther
	}
	return out
}
