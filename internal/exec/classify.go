package exec

import (
	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
)

// OutKind classifies a query's select clause into the shapes for which the
// operator generator has specialized templates (paper §3.4: "the available
// query templates in H2O support select-project-join queries and can be
// extended"). Anything else runs on the generic interpreted operator.
type OutKind int

const (
	// OutProjection: select a, b, c ... (template i).
	OutProjection OutKind = iota
	// OutAggregates: select max(a), max(b), ... one aggregate per column
	// (template ii).
	OutAggregates
	// OutExpression: select a + b + c (template iii).
	OutExpression
	// OutAggExpression: select sum(a + b + c) — the §4.1 mix.
	OutAggExpression
	// OutGrouped: select k1, ..., agg(e), ... from R group by k1, ... —
	// every item is either a decomposable aggregate or a bare group-key
	// column. The result has one row per distinct key vector, ordered
	// ascending by key vector, so every strategy and the delta-repair path
	// produce bit-identical output.
	OutGrouped
	// OutOther: any other select-clause shape; only the generic operator
	// covers it.
	OutOther
)

// String names the shape.
func (k OutKind) String() string {
	switch k {
	case OutProjection:
		return "projection"
	case OutAggregates:
		return "aggregates"
	case OutExpression:
		return "expression"
	case OutAggExpression:
		return "agg-expression"
	case OutGrouped:
		return "grouped"
	default:
		return "other"
	}
}

// Outputs is the classified select clause of a query.
type Outputs struct {
	Kind   OutKind
	Labels []string

	ProjAttrs []data.AttrID // OutProjection: projected attributes in order

	AggOps   []expr.AggOp  // OutAggregates: per-item aggregate ops
	AggAttrs []data.AttrID // OutAggregates: per-item argument columns

	ExprAttrs []data.AttrID // OutExpression/OutAggExpression: summed columns
	ExprAgg   expr.AggOp    // OutAggExpression: outer aggregate

	// OutGrouped fields. GroupBy holds the group-key attribute ids in
	// GROUP BY order (deduplicated). ItemKey maps each select item to its
	// index in GroupBy, or -1 for aggregate items. GroupOps/GroupArgs hold
	// the aggregate items' ops and arguments in select-item order.
	GroupBy   []data.AttrID
	ItemKey   []int
	GroupOps  []expr.AggOp
	GroupArgs []expr.Expr
}

// SumLeaves flattens e if it is a pure sum of column references (the paper's
// arithmetic-expression template) and reports whether it had that shape.
// Attribute order follows the expression's left-to-right order; duplicates
// are preserved (a+a is a legal expression).
func SumLeaves(e expr.Expr) ([]data.AttrID, bool) {
	switch t := e.(type) {
	case *expr.Col:
		return []data.AttrID{t.ID}, true
	case *expr.Arith:
		if t.Op != expr.Add {
			return nil, false
		}
		l, okL := SumLeaves(t.L)
		if !okL {
			return nil, false
		}
		r, okR := SumLeaves(t.R)
		if !okR {
			return nil, false
		}
		return append(l, r...), true
	default:
		return nil, false
	}
}

// Classify inspects the select clause and labels the outputs.
func Classify(q *query.Query) Outputs {
	out := Outputs{Labels: make([]string, len(q.Items))}
	for i, it := range q.Items {
		out.Labels[i] = it.String()
	}
	if len(q.Items) == 0 {
		out.Kind = OutOther
		return out
	}
	if len(q.GroupBy) > 0 {
		return classifyGrouped(q, out)
	}

	allPlainCols := true
	allAggCols := true
	for _, it := range q.Items {
		if it.Agg != nil {
			allPlainCols = false
			if _, ok := it.Agg.Arg.(*expr.Col); !ok {
				allAggCols = false
			}
		} else {
			allAggCols = false
			if _, ok := it.Expr.(*expr.Col); !ok {
				allPlainCols = false
			}
		}
	}

	switch {
	case allPlainCols:
		out.Kind = OutProjection
		out.ProjAttrs = make([]data.AttrID, len(q.Items))
		for i, it := range q.Items {
			out.ProjAttrs[i] = it.Expr.(*expr.Col).ID
		}
	case allAggCols:
		out.Kind = OutAggregates
		out.AggOps = make([]expr.AggOp, len(q.Items))
		out.AggAttrs = make([]data.AttrID, len(q.Items))
		for i, it := range q.Items {
			out.AggOps[i] = it.Agg.Op
			out.AggAttrs[i] = it.Agg.Arg.(*expr.Col).ID
		}
	case len(q.Items) == 1 && q.Items[0].Agg == nil:
		if attrs, ok := SumLeaves(q.Items[0].Expr); ok {
			out.Kind = OutExpression
			out.ExprAttrs = attrs
		} else {
			out.Kind = OutOther
		}
	case len(q.Items) == 1 && q.Items[0].Agg != nil:
		if attrs, ok := SumLeaves(q.Items[0].Agg.Arg); ok {
			out.Kind = OutAggExpression
			out.ExprAttrs = attrs
			out.ExprAgg = q.Items[0].Agg.Op
		} else {
			out.Kind = OutOther
		}
	default:
		out.Kind = OutOther
	}
	return out
}

// classifyGrouped validates the grouped select shape: every item must be an
// aggregate or a bare reference to a group-by key. Any other shape is
// OutOther, which no template executes (the generic pipeline reports a
// clean error for grouped shapes and serves the rest interpretively).
func classifyGrouped(q *query.Query, out Outputs) Outputs {
	keys := q.GroupIDs()
	keyIdx := make(map[data.AttrID]int, len(keys))
	for i, a := range keys {
		if _, dup := keyIdx[a]; !dup {
			keyIdx[a] = i
		}
	}
	out.ItemKey = make([]int, len(q.Items))
	for i, it := range q.Items {
		if it.Agg != nil {
			out.ItemKey[i] = -1
			out.GroupOps = append(out.GroupOps, it.Agg.Op)
			out.GroupArgs = append(out.GroupArgs, it.Agg.Arg)
			continue
		}
		c, ok := it.Expr.(*expr.Col)
		if !ok {
			out.Kind = OutOther
			return out
		}
		ki, ok := keyIdx[c.ID]
		if !ok {
			out.Kind = OutOther
			return out
		}
		out.ItemKey[i] = ki
	}
	out.Kind = OutGrouped
	out.GroupBy = keys
	return out
}
