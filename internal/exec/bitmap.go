package exec

import (
	"math/bits"

	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// Bitmap is the bit-vector representation of qualifying tuples — the
// alternative to selection vectors the paper notes in §2.1 ("using early
// materialization, bit-vectors instead of list of IDs"). Bitmaps cost a
// fixed rows/8 bytes regardless of selectivity: denser than an id list
// above ~3% selectivity, and refinement is a branch-free AND, but consumers
// must scan for set bits. The ablation-bitmap experiment measures the
// trade-off.
type Bitmap struct {
	words []uint64
	n     int
}

// NewBitmap returns an empty bitmap over n rows.
func NewBitmap(n int) *Bitmap {
	return &Bitmap{words: make([]uint64, (n+63)/64), n: n}
}

// Len returns the number of rows the bitmap covers.
func (b *Bitmap) Len() int { return b.n }

// Set marks row i as qualifying.
func (b *Bitmap) Set(i int) { b.words[i>>6] |= 1 << (uint(i) & 63) }

// Get reports whether row i qualifies.
func (b *Bitmap) Get(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

// Count returns the number of qualifying rows.
func (b *Bitmap) Count() int {
	c := 0
	for _, w := range b.words {
		c += bits.OnesCount64(w)
	}
	return c
}

// Reset clears the bitmap.
func (b *Bitmap) Reset() {
	for i := range b.words {
		b.words[i] = 0
	}
}

// And intersects b with o in place.
func (b *Bitmap) And(o *Bitmap) {
	for i := range b.words {
		b.words[i] &= o.words[i]
	}
}

// ToSel appends the qualifying row ids to sel.
func (b *Bitmap) ToSel(sel []int32) []int32 {
	for wi, w := range b.words {
		base := int32(wi << 6)
		for w != 0 {
			sel = append(sel, base+int32(bits.TrailingZeros64(w)))
			w &= w - 1
		}
	}
	return sel
}

// FilterGroupBitmap evaluates the conjunction of preds over every row of g,
// setting the bit of each qualifying row. The write is branch-free: the
// predicate outcome is shifted into the bitmap word directly.
func FilterGroupBitmap(g *storage.ColumnGroup, preds []GroupPred, bm *Bitmap) {
	d, stride := g.Data, g.Stride
	switch len(preds) {
	case 1:
		p := preds[0]
		off, op, v := p.Off, p.Op, p.Val
		idx := off
		for r := 0; r < g.Rows; r++ {
			var bit uint64
			if expr.Compare(op, d[idx], v) {
				bit = 1
			}
			bm.words[r>>6] |= bit << (uint(r) & 63)
			idx += stride
		}
	default:
		base := 0
		for r := 0; r < g.Rows; r++ {
			var bit uint64
			if passes(d, base, preds) {
				bit = 1
			}
			bm.words[r>>6] |= bit << (uint(r) & 63)
			base += stride
		}
	}
}

// RefineBitmap clears the bits of rows that fail the conjunction of preds
// over g. Only currently-set bits are re-evaluated.
func RefineBitmap(g *storage.ColumnGroup, preds []GroupPred, bm *Bitmap) {
	d, stride := g.Data, g.Stride
	for wi, w := range bm.words {
		if w == 0 {
			continue
		}
		base := wi << 6
		probe := w
		for probe != 0 {
			bit := bits.TrailingZeros64(probe)
			probe &= probe - 1
			r := base + bit
			if !passes(d, r*stride, preds) {
				bm.words[wi] &^= 1 << uint(bit)
			}
		}
	}
}

// AggColumnBitmap folds an aggregate over the rows whose bit is set.
func AggColumnBitmap(g *storage.ColumnGroup, off int, op expr.AggOp, bm *Bitmap) data.Value {
	d, stride := g.Data, g.Stride
	st := expr.NewAggState(op)
	for wi, w := range bm.words {
		base := wi << 6
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			w &= w - 1
			st.Add(d[(base+bit)*stride+off])
		}
	}
	return st.Result()
}

// foldColumnBitmap folds the rows whose bit is set into st.
func foldColumnBitmap(st *expr.AggState, g *storage.ColumnGroup, off int, bm *Bitmap) {
	d, stride := g.Data, g.Stride
	for wi, w := range bm.words {
		base := wi << 6
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			w &= w - 1
			st.Add(d[(base+bit)*stride+off])
		}
	}
}

// bitmapSegPartial is the bitmap pipeline's per-segment operator: fused
// predicate evaluation into a segment-sized bit-vector, refined by AND,
// then aggregate or grouped folds over the set bits, emitted as that
// segment's partial.
func bitmapSegPartial(seg *storage.Segment, q *query.Query, out Outputs, preds []ColPred, stats *StrategyStats) (*partial, error) {
	states := newStates(out)
	var ga *groupedAcc
	if out.Kind == OutGrouped {
		ga = newGroupedAcc(out)
	}
	_, assign, err := seg.CoveringGroups(q.AllAttrs())
	if err != nil {
		return nil, err
	}

	var bm *Bitmap
	if len(preds) > 0 {
		bm = NewBitmap(seg.Rows)
		grouped := map[*storage.ColumnGroup][]GroupPred{}
		var order []*storage.ColumnGroup
		for _, p := range preds {
			g := assign[p.Attr]
			off, _ := g.Offset(p.Attr)
			if _, seen := grouped[g]; !seen {
				order = append(order, g)
			}
			grouped[g] = append(grouped[g], GroupPred{Off: off, Op: p.Op, Val: p.Val})
		}
		for i, g := range order {
			if i == 0 {
				FilterGroupBitmap(g, grouped[g], bm)
			} else {
				RefineBitmap(g, grouped[g], bm)
			}
		}
		if stats != nil {
			stats.IntermediateWords += len(bm.words)
		}
	}

	if out.Kind == OutGrouped {
		folder, err := newSegGroupedFolder(seg, groupedScanAttrs(out), out)
		if err != nil {
			return nil, err
		}
		if bm != nil {
			for wi, w := range bm.words {
				base := wi << 6
				for w != 0 {
					bit := bits.TrailingZeros64(w)
					w &= w - 1
					folder.fold(ga, base+bit)
				}
			}
		} else {
			for r := 0; r < seg.Rows; r++ {
				folder.fold(ga, r)
			}
		}
		return &partial{groups: ga}, nil
	}

	for i, a := range out.AggAttrs {
		g := assign[a]
		off, _ := g.Offset(a)
		if bm != nil {
			foldColumnBitmap(states[i], g, off, bm)
		} else {
			foldRange(states[i], g, off, 0, seg.Rows)
		}
	}
	return &partial{states: states}, nil
}
