package exec

import (
	"testing"

	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// TestVectorizedAgreesWithHybrid checks the chunked executor against the
// full-column strategies on every template, across vector sizes including
// ones that do not divide the row count.
func TestVectorizedAgreesWithHybrid(t *testing.T) {
	tb, col, row, grp := fixture(t)
	_ = tb
	for qi, q := range queriesUnderTest() {
		want, err := Exec(col, q, ExecOpts{Strategy: StrategyHybrid})
		if err != nil {
			t.Fatal(err)
		}
		for _, rel := range []*storage.Relation{col, row, grp} {
			for _, vs := range []int{0, 64, 1000, 1024, testRows, testRows * 2} {
				got, err := Exec(rel, q, ExecOpts{Strategy: StrategyVectorized, VectorSize: vs})
				if err != nil {
					t.Fatalf("query %d vs=%d on %v: %v", qi, vs, rel.Kind(), err)
				}
				if !got.Equal(want) {
					t.Fatalf("query %d (%s) vs=%d on %v: mismatch", qi, q, vs, rel.Kind())
				}
			}
		}
	}
}

func TestVectorizedUnsupportedShapes(t *testing.T) {
	_, col, _, _ := fixture(t)
	or := &expr.Or{L: query.PredLt(0, 0).(*expr.Cmp), R: query.PredGt(1, 0).(*expr.Cmp)}
	q := query.Aggregation("R", expr.AggSum, []data.AttrID{2}, or)
	if _, err := Exec(col, q, ExecOpts{Strategy: StrategyVectorized}); err != ErrUnsupported {
		t.Fatalf("err = %v, want ErrUnsupported", err)
	}
}

func TestVectorizedStatsCountSelVectors(t *testing.T) {
	_, col, _, _ := fixture(t)
	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1}, query.PredLt(0, 0))
	var st StrategyStats
	if _, err := Exec(col, q, ExecOpts{Strategy: StrategyVectorized, VectorSize: 256, Stats: &st}); err != nil {
		t.Fatal(err)
	}
	if st.IntermediateWords <= 0 {
		t.Fatal("filtered vectorized run must report selection-vector volume")
	}
	// The chunked intermediates must not exceed the full-length strategy's.
	var full StrategyStats
	if _, err := Exec(col, q, ExecOpts{Strategy: StrategyColumn, Stats: &full}); err != nil {
		t.Fatal(err)
	}
	if st.IntermediateWords > full.IntermediateWords+col.Rows {
		t.Fatalf("vectorized intermediates (%d) should not dwarf column-late (%d)",
			st.IntermediateWords, full.IntermediateWords)
	}
}

func TestVectorizedEmptyChunks(t *testing.T) {
	// A predicate that qualifies nothing: every chunk short-circuits.
	tb, col, _, _ := fixture(t)
	_ = tb
	q := query.Projection("R", []data.AttrID{1, 2}, query.PredLt(0, data.ValueLo-1))
	res, err := Exec(col, q, ExecOpts{Strategy: StrategyVectorized, VectorSize: 128})
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows != 0 || len(res.Data) != 0 {
		t.Fatalf("expected empty result, got %d rows", res.Rows)
	}
}

func BenchmarkVectorizedExpression(b *testing.B) {
	tb := data.Generate(data.SyntheticSchema("R", 30), 100_000, 4)
	col := storage.BuildColumnMajor(tb)
	attrs := []data.AttrID{1, 4, 9, 14, 19, 24}
	q := query.AggExpression("R", attrs, query.PredLt(0, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exec(col, q, ExecOpts{Strategy: StrategyVectorized, VectorSize: VectorSize}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkHybridExpressionForComparison(b *testing.B) {
	tb := data.Generate(data.SyntheticSchema("R", 30), 100_000, 4)
	col := storage.BuildColumnMajor(tb)
	attrs := []data.AttrID{1, 4, 9, 14, 19, 24}
	q := query.AggExpression("R", attrs, query.PredLt(0, 0))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Exec(col, q, ExecOpts{Strategy: StrategyHybrid}); err != nil {
			b.Fatal(err)
		}
	}
}
