// Package exec implements H2O's execution strategies (paper §3.3) as
// per-segment streaming operator pipelines behind one entry point:
//
//	Exec(rel, q, ExecOpts{Strategy, Workers, VectorSize, HotMask, Stats})
//
// Every strategy — the volcano-style fused row scan with predicate
// push-down, column-at-a-time late materialization, the hybrid
// group-of-columns strategy, its vectorized and bitmap variants, the
// generic tuple-at-a-time interpreter (§3.4, Fig. 14), the encoded-direct
// block kernel, and the online-reorganization executor that creates a new
// layout while answering the query (§3.2, Fig. 13) — is a pipeline of the
// same three stages:
//
//	SegSource ──► Filter ──► Project / Aggregate / Group ──► merge
//	(prune → pin/fault →     (one *partial* per segment)     (segment
//	 covering-group                                           order)
//	 resolve, per segment)
//
// The SegSource policy lives once in the pipeline driver (exec.go): empty
// segments are skipped, segments whose zone maps rule the conjunctive
// predicates out are pruned without touching a row or disk, survivors are
// pinned at the pipeline's residency tier (flat, or encoded-or-better for
// the encoded pipeline), touched and counted into StrategyStats. Each
// strategy contributes only its per-segment operator — a pure
// segment → partial function — so the driver runs any pipeline serially
// or fanned out across ExecOpts.Workers goroutines with a shared claim
// loop, and LIMIT pushes down uniformly: the driver stops consuming
// segments once a contiguous prefix satisfies q.Limit, serial and
// parallel alike. Joins and shard-local execution attach at the same
// seam: a join is another partial-producing operator stage, a shard is a
// remote SegSource feeding the same merge.
//
// All strategies materialize their output row-major in a contiguous block,
// as the paper requires ("all execution strategies materialize the output
// results in memory using contiguous memory blocks in a row-major layout").
//
// The strategies registry (exec.go) is the single source of truth for the
// strategy set: pipeline builders, cost-model segment plans (cost.go),
// the cost-based chooser's candidate list and the operator generator's
// template set all derive from it, so they agree by construction.
//
// # Segments and partial results
//
// Within a segment, aggregate items fold into per-segment accumulator
// states that merge associatively across segments — the property the
// fan-out uses to stay bit-identical to the serial scan, and that the
// partial-result layer (partials.go) makes durable: for *repairable*
// queries (every select item a decomposable aggregate or a group-by key,
// no LIMIT — see Repairable), ExecPartials keeps each candidate segment's
// states as a versioned SegPartial, and ExecDelta later rescans only the
// segments whose versions moved (through the same claim loop),
// re-combining with the retained partials. The serving layer's delta
// repair, and the O(changed segments) repair cost it buys, rest entirely
// on that contract; the partials contract at the top of partials.go
// spells out which aggregates decompose and why LIMIT disqualifies
// repair.
//
// GROUP BY rides the same machinery (grouped.go): every pipeline folds
// qualifying rows into a per-segment map of encoded group key → AggState
// vector, maps merge key-wise across segments and workers, and results
// materialize one row per group ordered ascending by key vector — an
// order-preserving key encoding makes the sort a plain string sort — so
// grouped results are bit-identical across strategies and the repair path,
// and LIMIT on a grouped query is a deterministic prefix of groups applied
// after the merge.
package exec

import (
	"fmt"

	"h2o/internal/data"
)

// Result is a query result materialized row-major.
type Result struct {
	Cols []string     // output column labels
	Rows int          // number of result rows
	Data []data.Value // len = Rows * len(Cols), row-major
}

// Width returns the number of output columns.
func (r *Result) Width() int { return len(r.Cols) }

// At returns the value at result row i, column j.
func (r *Result) At(i, j int) data.Value { return r.Data[i*len(r.Cols)+j] }

// Row returns result row i as a slice view.
func (r *Result) Row(i int) []data.Value {
	w := len(r.Cols)
	return r.Data[i*w : (i+1)*w]
}

// String summarizes the result shape.
func (r *Result) String() string {
	return fmt.Sprintf("result %d rows × %d cols", r.Rows, len(r.Cols))
}

// Equal reports whether two results hold identical data. Experiment and test
// code uses it to check that every strategy computes the same answer.
func (r *Result) Equal(o *Result) bool {
	if r.Rows != o.Rows || len(r.Cols) != len(o.Cols) || len(r.Data) != len(o.Data) {
		return false
	}
	for i, v := range r.Data {
		if o.Data[i] != v {
			return false
		}
	}
	return true
}

// VectorSize is the number of values processed per vector; vectors of this
// size stay L1-resident ("vectors fit in the L1 cache for better cache
// locality", §3.3).
const VectorSize = 1024
