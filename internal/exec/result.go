// Package exec implements H2O's execution strategies (paper §3.3): a
// volcano-style row scan with predicate push-down, a column-at-a-time
// strategy with selection vectors and materialized intermediates, a hybrid
// group-of-columns strategy that fuses work within groups and stitches across
// them, the online-reorganization executor that creates a new layout while
// answering the query (§3.2, Fig. 13), and a tuple-at-a-time generic
// interpreter used as the baseline for dynamically generated operators
// (§3.4, Fig. 14).
//
// All strategies materialize their output row-major in a contiguous block,
// as the paper requires ("all execution strategies materialize the output
// results in memory using contiguous memory blocks in a row-major layout").
//
// # Segments and partial results
//
// Every strategy iterates the relation segment by segment: empty segments
// are skipped, segments whose zone maps rule the (conjunctive) predicates
// out are pruned without touching a row or disk, surviving segments are
// pinned resident (faulting spilled ones in through the relation's loader),
// and materializing queries stop consuming segments at q.Limit. Within a
// segment, aggregate items fold into per-segment accumulator states that
// merge associatively across segments — the property the parallel scan uses
// to fan out one task per segment, and that the partial-result layer
// (partials.go) makes durable: for *repairable* queries (every select item
// a decomposable aggregate or a group-by key, no LIMIT — see Repairable),
// ExecPartials keeps each candidate segment's states as a versioned
// SegPartial, and ExecDelta later rescans only the segments whose versions
// moved, re-combining with the retained partials. The serving layer's delta
// repair, and the O(changed segments) repair cost it buys, rest entirely on
// that contract; the partials contract at the top of partials.go spells out
// which aggregates decompose and why LIMIT disqualifies repair.
//
// GROUP BY rides the same machinery (grouped.go): every strategy folds
// qualifying rows into a per-scan map of encoded group key → AggState
// vector, maps merge key-wise across segments and workers, and results
// materialize one row per group ordered ascending by key vector — an
// order-preserving key encoding makes the sort a plain string sort — so
// grouped results are bit-identical across strategies and the repair path,
// and LIMIT on a grouped query is a deterministic prefix of groups applied
// after the merge.
package exec

import (
	"fmt"

	"h2o/internal/data"
)

// Result is a query result materialized row-major.
type Result struct {
	Cols []string     // output column labels
	Rows int          // number of result rows
	Data []data.Value // len = Rows * len(Cols), row-major
}

// Width returns the number of output columns.
func (r *Result) Width() int { return len(r.Cols) }

// At returns the value at result row i, column j.
func (r *Result) At(i, j int) data.Value { return r.Data[i*len(r.Cols)+j] }

// Row returns result row i as a slice view.
func (r *Result) Row(i int) []data.Value {
	w := len(r.Cols)
	return r.Data[i*w : (i+1)*w]
}

// String summarizes the result shape.
func (r *Result) String() string {
	return fmt.Sprintf("result %d rows × %d cols", r.Rows, len(r.Cols))
}

// Equal reports whether two results hold identical data. Experiment and test
// code uses it to check that every strategy computes the same answer.
func (r *Result) Equal(o *Result) bool {
	if r.Rows != o.Rows || len(r.Cols) != len(o.Cols) || len(r.Data) != len(o.Data) {
		return false
	}
	for i, v := range r.Data {
		if o.Data[i] != v {
			return false
		}
	}
	return true
}

// VectorSize is the number of values processed per vector; vectors of this
// size stay L1-resident ("vectors fit in the L1 cache for better cache
// locality", §3.3).
const VectorSize = 1024
