package exec

import (
	"testing"

	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/storage"
)

func TestZoneScanMatchesPlainFilter(t *testing.T) {
	// Both clustered (time-series) and uniform data: results must be
	// identical to the plain filter either way.
	for _, mk := range []func() *data.Table{
		func() *data.Table { return data.GenerateTimeSeries(data.SyntheticSchema("R", 3), 10_000, 3) },
		func() *data.Table { return data.Generate(data.SyntheticSchema("R", 3), 10_000, 3) },
	} {
		tb := mk()
		g := storage.BuildGroup(tb, []data.AttrID{0, 1, 2})
		zm := storage.BuildZoneMap(g, 512)
		for _, preds := range [][]GroupPred{
			{{Off: 0, Op: expr.Lt, Val: 1000}},
			{{Off: 0, Op: expr.Ge, Val: 9000}},
			{{Off: 0, Op: expr.Eq, Val: 4242}},
			{{Off: 0, Op: expr.Lt, Val: 2000}, {Off: 1, Op: expr.Gt, Val: 0}},
			{{Off: 1, Op: expr.Ne, Val: 7}},
		} {
			want := FilterGroup(g, preds, 0, g.Rows, nil)
			got := FilterGroupWithZones(g, zm, preds, nil, nil)
			if len(got) != len(want) {
				t.Fatalf("preds %v: %d vs %d rows", preds, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("preds %v: row id mismatch at %d", preds, i)
				}
			}
		}
	}
}

func TestZoneScanSkipsClusteredBlocks(t *testing.T) {
	tb := data.GenerateTimeSeries(data.SyntheticSchema("R", 2), 100_000, 5)
	g := storage.BuildGroup(tb, []data.AttrID{0, 1})
	zm := storage.BuildZoneMap(g, 0) // default block
	// a0 < 1000 touches only the first block(s) of the ordered column.
	var st ZoneScanStats
	sel := FilterGroupWithZones(g, zm, []GroupPred{{Off: 0, Op: expr.Lt, Val: 1000}}, nil, &st)
	if len(sel) != 1000 {
		t.Fatalf("|sel| = %d", len(sel))
	}
	if st.Zones == 0 || st.Skipped == 0 {
		t.Fatalf("no skipping on clustered data: %+v", st)
	}
	if st.Skipped < st.Zones*9/10 {
		t.Fatalf("expected ~99%% of zones skipped, got %d/%d", st.Skipped, st.Zones)
	}
	// On uniform data nothing is skippable.
	tbU := data.Generate(data.SyntheticSchema("R", 2), 100_000, 5)
	gU := storage.BuildGroup(tbU, []data.AttrID{0, 1})
	zmU := storage.BuildZoneMap(gU, 0)
	var stU ZoneScanStats
	FilterGroupWithZones(gU, zmU, []GroupPred{{Off: 0, Op: expr.Lt, Val: 0}}, nil, &stU)
	if stU.Skipped != 0 {
		t.Fatalf("uniform data skipped %d zones", stU.Skipped)
	}
}

func TestZoneScanNilMapFallsBack(t *testing.T) {
	tb := data.Generate(data.SyntheticSchema("R", 1), 1000, 1)
	g := storage.BuildGroup(tb, []data.AttrID{0})
	preds := []GroupPred{{Off: 0, Op: expr.Gt, Val: 0}}
	want := FilterGroup(g, preds, 0, g.Rows, nil)
	got := FilterGroupWithZones(g, nil, preds, nil, nil)
	if len(got) != len(want) {
		t.Fatal("nil zone map fallback differs")
	}
}

func TestZoneMapMayMatch(t *testing.T) {
	tb := data.GenerateTimeSeries(data.SyntheticSchema("R", 1), 2048, 1)
	g := storage.BuildGroup(tb, []data.AttrID{0})
	zm := storage.BuildZoneMap(g, 1024)
	if zm.Zones() != 2 {
		t.Fatalf("zones = %d", zm.Zones())
	}
	// Zone 0 holds values [0,1023], zone 1 [1024,2047].
	cases := []struct {
		zi   int
		op   expr.CmpOp
		v    data.Value
		want bool
	}{
		{0, expr.Lt, 0, false},
		{0, expr.Lt, 1, true},
		{0, expr.Le, 0, true},
		{1, expr.Lt, 1024, false},
		{1, expr.Gt, 2046, true},
		{1, expr.Gt, 2047, false},
		{1, expr.Ge, 2047, true},
		{0, expr.Eq, 500, true},
		{0, expr.Eq, 1500, false},
		{0, expr.Ne, 5, true},
	}
	for _, c := range cases {
		if got := zm.MayMatch(c.zi, 0, c.op, c.v); got != c.want {
			t.Errorf("MayMatch(zone %d, %v %d) = %v, want %v", c.zi, c.op, c.v, got, c.want)
		}
	}
	// A constant block: Ne can exclude it.
	gc := storage.NewGroup([]data.AttrID{0}, 100)
	for r := 0; r < 100; r++ {
		gc.Set(r, 0, 7)
	}
	zc := storage.BuildZoneMap(gc, 100)
	if zc.MayMatch(0, 0, expr.Ne, 7) {
		t.Error("Ne over a constant block should be excludable")
	}
	lo, hi := zc.ZoneRange(0, 100)
	if lo != 0 || hi != 100 {
		t.Errorf("ZoneRange = [%d,%d)", lo, hi)
	}
}

func BenchmarkZoneScanClustered(b *testing.B) {
	tb := data.GenerateTimeSeries(data.SyntheticSchema("R", 1), benchRows, 1)
	g := storage.BuildGroup(tb, []data.AttrID{0})
	zm := storage.BuildZoneMap(g, 0)
	preds := []GroupPred{{Off: 0, Op: expr.Lt, Val: data.Value(benchRows / 100)}}
	sel := make([]int32, 0, benchRows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel = FilterGroupWithZones(g, zm, preds, sel[:0], nil)
	}
}

func BenchmarkPlainScanClustered(b *testing.B) {
	tb := data.GenerateTimeSeries(data.SyntheticSchema("R", 1), benchRows, 1)
	g := storage.BuildGroup(tb, []data.AttrID{0})
	preds := []GroupPred{{Off: 0, Op: expr.Lt, Val: data.Value(benchRows / 100)}}
	sel := make([]int32, 0, benchRows)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sel = FilterGroup(g, preds, 0, g.Rows, sel[:0])
	}
}
