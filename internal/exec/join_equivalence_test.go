package exec

import (
	"fmt"
	"math/rand"
	"testing"

	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// Join equivalence harness: the hash-join operator's answer on every
// generated (query, relation pair, residency) combination must be
// bit-identical to a nested-loop reference that never hashes, never prunes,
// never splits predicates and never chooses a build side — it materializes
// both inputs, walks the full cross product in left-major order, and folds
// surviving pairs with the same output machinery mergePartials combines.
// Any divergence in the join-specific code paths (side splitting, greedy
// ordering, rebased accessors, residual evaluation, early termination,
// limit trimming) fails here before it can poison a cached join result.

const (
	jeqLeftWidth  = 4 // asymmetric widths catch combined-id rebasing bugs
	jeqRightWidth = 3
)

// jeqRelation builds one randomized join input over a width-attribute
// schema and returns it with its designated join-key attribute. The key
// column's cardinality is drawn from three regimes — unique (every value
// distinct), dense duplicates (round-robin over a small domain), and
// skewed (half the rows pile onto one hot key) — all null-free, as every
// value in this engine is. Layout and size randomization mirrors
// eqRelation: mixed per-segment groups, boundary sizes, empty relations.
func jeqRelation(t testing.TB, rng *rand.Rand, name string, width int) (*storage.Relation, data.AttrID) {
	t.Helper()
	schema := data.SyntheticSchema(name, width)
	rowChoices := []int{0, 1, eqSegCap - 1, eqSegCap, 3 * eqSegCap, 4*eqSegCap + 77}
	rows := rowChoices[rng.Intn(len(rowChoices))]

	var tb *data.Table
	if rng.Intn(2) == 0 {
		tb = data.GenerateTimeSeries(schema, rows, rng.Int63()) // attr 0 zone-map-prunable
	} else {
		tb = data.Generate(schema, rows, rng.Int63())
	}

	// Rewrite the key column (never attr 0, which stays append-ordered for
	// pruning scenarios) into a controlled small non-negative domain so the
	// two sides of a pair genuinely overlap.
	key := data.AttrID(1 + rng.Intn(width-1))
	switch rng.Intn(3) {
	case 0: // unique: at most one match per probe row
		for r := 0; r < rows; r++ {
			tb.Cols[key][r] = data.Value(r)
		}
	case 1: // dense duplicates
		d := int64(1 + rng.Intn(64))
		for r := 0; r < rows; r++ {
			tb.Cols[key][r] = data.Value(int64(r) % d)
		}
	case 2: // skewed: one hot key carries half the rows
		d := int64(1 + rng.Intn(64))
		for r := 0; r < rows; r++ {
			if rng.Intn(2) == 0 {
				tb.Cols[key][r] = 0
			} else {
				tb.Cols[key][r] = data.Value(rng.Int63n(d))
			}
		}
	}

	var rel *storage.Relation
	if rng.Intn(2) == 0 {
		rel = storage.BuildColumnMajorSeg(tb, eqSegCap)
	} else {
		rel = storage.BuildRowMajorSeg(tb, false, eqSegCap)
	}

	// Mixed layouts, as in eqRelation: segments legitimately disagree.
	all := make([]data.AttrID, width)
	for a := range all {
		all[a] = data.AttrID(a)
	}
	for _, seg := range rel.Segments {
		if seg.Rows == 0 {
			continue
		}
		switch rng.Intn(3) {
		case 0: // keep the base layout
		case 1: // add a full-width row group
			if _, ok := seg.ExactGroup(all); ok {
				continue
			}
			g, err := storage.StitchSeg(seg, all)
			if err != nil {
				t.Fatal(err)
			}
			if err := seg.AddGroup(g); err != nil {
				t.Fatal(err)
			}
		case 2: // add a random narrow group
			attrs := query.RandomAttrs(width, 2+rng.Intn(2), rng.Intn)
			if _, ok := seg.ExactGroup(attrs); ok {
				continue
			}
			g, err := storage.StitchSeg(seg, attrs)
			if err != nil {
				t.Fatal(err)
			}
			if err := seg.AddGroup(g); err != nil {
				t.Fatal(err)
			}
		}
	}
	return rel, key
}

// jeqQuery generates one randomized join query over the combined namespace
// [0, nL+nR): projection / aggregates / arithmetic expression / aggregated
// expression / grouped aggregation with keys from either side, a random
// predicate shape (none, single, conjunction, disjunction — terms land on
// either side or mix both, exercising side splitting and the residual),
// and a random limit on materializing shapes. The join usually runs on the
// cardinality-controlled key columns; occasionally on arbitrary attributes,
// whose full-domain values make near-empty results.
func jeqQuery(rng *rand.Rand, rightTable string, nL, nR int, leftKey, rightKey data.AttrID, leftRows int) *query.Query {
	n := nL + nR
	lk, rk := leftKey, rightKey
	if rng.Intn(5) == 0 {
		lk = data.AttrID(rng.Intn(nL))
		rk = data.AttrID(rng.Intn(nR))
	}
	join := query.JoinOn(rightTable, lk, int(rk), nL)

	attrs := query.RandomAttrs(n, 1+rng.Intn(3), rng.Intn)

	var where expr.Pred
	cmp := func() expr.Pred {
		a := data.AttrID(rng.Intn(n))
		ops := []expr.CmpOp{expr.Lt, expr.Le, expr.Gt, expr.Ge}
		return &expr.Cmp{Op: ops[rng.Intn(len(ops))], L: &expr.Col{ID: a},
			R: &expr.Const{V: eqPredConst(rng, a, leftRows)}}
	}
	switch rng.Intn(4) {
	case 0: // no predicate
	case 1:
		where = cmp()
	case 2:
		where = &expr.And{Terms: []expr.Pred{cmp(), cmp()}}
	case 3:
		// Disjunction: unsplittable, so the side it touches loses zone-map
		// pruning (or it lands in the residual when it spans both sides) —
		// the answer must not change either way.
		where = &expr.Or{L: cmp(), R: cmp()}
	}

	var q *query.Query
	switch rng.Intn(5) {
	case 0:
		q = query.Projection("R", attrs, where)
	case 1:
		ops := []expr.AggOp{expr.AggSum, expr.AggMax, expr.AggMin, expr.AggCount, expr.AggAvg}
		q = query.Aggregation("R", ops[rng.Intn(len(ops))], attrs, where)
	case 2:
		q = query.ArithExpression("R", attrs, where)
	case 3:
		q = query.AggExpression("R", attrs, where)
	case 4:
		// Grouped joined aggregates: keys drawn from the combined space, so
		// groups routinely span both sides of the join.
		keys := query.RandomAttrs(n, 1+rng.Intn(2), rng.Intn)
		gb := make([]expr.Col, len(keys))
		items := make([]query.SelectItem, 0, len(keys)+len(attrs))
		for i, k := range keys {
			gb[i] = expr.Col{ID: k}
			if len(keys) == 1 || rng.Intn(4) != 0 {
				items = append(items, query.SelectItem{Expr: &expr.Col{ID: k}})
			}
		}
		ops := []expr.AggOp{expr.AggSum, expr.AggMax, expr.AggMin, expr.AggCount, expr.AggAvg}
		for _, a := range attrs {
			var arg expr.Expr = &expr.Col{ID: a}
			if rng.Intn(4) == 0 {
				arg = expr.SumCols(query.RandomAttrs(n, 2, rng.Intn))
			}
			items = append(items, query.SelectItem{Agg: &expr.Agg{Op: ops[rng.Intn(len(ops))], Arg: arg}})
		}
		q = &query.Query{Table: "R", Items: items, Where: where, GroupBy: gb}
	}
	q.Joins = []query.Join{join}
	if !q.HasAggregates() && len(q.GroupBy) == 0 && rng.Intn(3) == 0 {
		q.Limit = 1 + rng.Intn(2*eqSegCap)
	}
	if len(q.GroupBy) > 0 && rng.Intn(4) == 0 {
		q.Limit = 1 + rng.Intn(6)
	}
	return q
}

// materializeRows reads every row of rel through the generic interpreter
// (full-width projection, no predicate) into flat row-major data.
func materializeRows(t testing.TB, rel *storage.Relation) []data.Value {
	t.Helper()
	n := rel.Schema.NumAttrs()
	attrs := make([]data.AttrID, n)
	for i := range attrs {
		attrs[i] = data.AttrID(i)
	}
	res, err := Exec(rel, query.Projection("J", attrs, nil), ExecOpts{Strategy: StrategyGeneric})
	if err != nil {
		t.Fatalf("materialize %s: %v", rel.Schema.Name, err)
	}
	return res.Data
}

// nestedLoopJoin is the reference implementation: materialize both inputs,
// walk the full cross product in left-major order, keep pairs whose keys
// match and whose (unsplit) WHERE holds over the combined accessor, fold
// with the shared per-shape machinery, merge, trim. It exercises none of
// the hash-join's decisions — no pruning, no side splitting, no greedy
// ordering, no hash table — so agreement means those decisions are sound.
func nestedLoopJoin(t testing.TB, left, right *storage.Relation, q *query.Query) *Result {
	t.Helper()
	nL := left.Schema.NumAttrs()
	nR := right.Schema.NumAttrs()
	L := materializeRows(t, left)
	R := materializeRows(t, right)
	out := Classify(q)
	j := q.Joins[0]

	p := &partial{states: newStates(out)}
	if out.Kind == OutGrouped {
		p.groups = newGroupedAcc(out)
	}
	kvals := make([]data.Value, len(out.GroupBy))
	var lrow, rrow []data.Value
	get := func(a data.AttrID) data.Value {
		if int(a) < nL {
			return lrow[a]
		}
		return rrow[int(a)-nL]
	}
	for lo := 0; lo < len(L); lo += nL {
		lrow = L[lo : lo+nL]
		for ro := 0; ro < len(R); ro += nR {
			rrow = R[ro : ro+nR]
			if lrow[j.LeftKey.ID] != rrow[j.RightKey.ID-nL] {
				continue
			}
			if q.Where != nil && !q.Where.EvalBool(get) {
				continue
			}
			foldJoined(out, p, get, kvals)
		}
	}
	return trimJoinLimit(mergePartials(out, []*partial{p}), q)
}

// checkJoinEquivalence runs ExecJoin serially and fanned out against the
// nested-loop reference on one (pair, query, residency) combination. The
// residency mix is re-established before each run — the previous one
// faulted whatever it probed back in — so the join reads flat, encoded and
// spilled segments side by side on both inputs.
func checkJoinEquivalence(t *testing.T, rng *rand.Rand, left, right *storage.Relation, q *query.Query, residentFrac float64) {
	t.Helper()
	want := nestedLoopJoin(t, left, right, q)
	for _, workers := range []int{0, 1 + rng.Intn(7)} {
		unloadFraction(left, 1-residentFrac)
		demoteFraction(left, 0.5)
		if right != left {
			unloadFraction(right, 1-residentFrac)
			demoteFraction(right, 0.5)
		}
		got, err := ExecJoin(left, right, q, ExecOpts{Workers: workers})
		if err != nil {
			t.Fatalf("hash join (workers=%d) failed on %s (resident %.0f%%): %v", workers, q, residentFrac*100, err)
		}
		if len(q.GroupBy) > 0 && !groupedRowsEqual(got, want) {
			t.Fatalf("hash join (workers=%d) produced wrong groups on %s (resident %.0f%%):\n got %d rows %v\nwant %d rows %v",
				workers, q, residentFrac*100, got.Rows, got.Data, want.Rows, want.Data)
		}
		if !got.Equal(want) {
			t.Fatalf("hash join (workers=%d) diverged on %s (resident %.0f%%):\n got %d rows %v\nwant %d rows %v",
				workers, q, residentFrac*100, got.Rows, got.Data, want.Rows, want.Data)
		}
	}
}

// TestJoinEquivalence is the harness entry point: for each residency level,
// fresh randomized relation pairs (and a self-joined single relation) each
// run a batch of randomized join queries — over 200 (query, pair,
// residency) cases in total, each checked serially and in parallel.
func TestJoinEquivalence(t *testing.T) {
	const (
		pairsPerLevel   = 4
		queriesPerPair  = 18
		selfJoinQueries = 8
	)
	for _, residentFrac := range []float64{0, 0.5, 1} {
		residentFrac := residentFrac
		t.Run(fmt.Sprintf("resident=%.0f%%", residentFrac*100), func(t *testing.T) {
			rng := rand.New(rand.NewSource(20140623 + int64(residentFrac*100)))
			for pr := 0; pr < pairsPerLevel; pr++ {
				left, lk := jeqRelation(t, rng, "R", jeqLeftWidth)
				right, rk := jeqRelation(t, rng, "S", jeqRightWidth)
				installSnapshotLoader(left)
				installSnapshotLoader(right)
				for i := 0; i < queriesPerPair; i++ {
					q := jeqQuery(rng, "S", jeqLeftWidth, jeqRightWidth, lk, rk, left.Rows)
					checkJoinEquivalence(t, rng, left, right, q, residentFrac)
				}
			}
			// Self-join: the same relation is both inputs, so the combined
			// namespace holds two copies of one schema and the operator must
			// not assume the inputs are distinct objects.
			self, sk := jeqRelation(t, rng, "R", jeqLeftWidth)
			installSnapshotLoader(self)
			for i := 0; i < selfJoinQueries; i++ {
				q := jeqQuery(rng, "R", jeqLeftWidth, jeqLeftWidth, sk, sk, self.Rows)
				checkJoinEquivalence(t, rng, self, self, q, residentFrac)
			}
		})
	}
}

// TestJoinEarlyTermination proves the ordering payoff end-to-end: when zone
// maps empty the build side, the probe side is never scanned at all — its
// spilled segments stay spilled — and the result still matches the
// reference.
func TestJoinEarlyTermination(t *testing.T) {
	lschema := data.SyntheticSchema("R", jeqLeftWidth)
	rschema := data.SyntheticSchema("S", jeqRightWidth)
	left := storage.BuildColumnMajorSeg(data.GenerateTimeSeries(lschema, 4*eqSegCap, 11), eqSegCap)
	right := storage.BuildColumnMajorSeg(data.Generate(rschema, 2*eqSegCap, 12), eqSegCap)
	installSnapshotLoader(left)
	installSnapshotLoader(right)
	unloadFraction(left, 1) // every sealed probe candidate starts cold

	// Right-side predicate below the value domain: every right segment's
	// zone map rules it out, so the build side empties under pruning.
	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1}, query.PredLt(jeqLeftWidth+1, data.ValueLo))
	q.Joins = []query.Join{query.JoinOn("S", 2, 0, jeqLeftWidth)}

	var st StrategyStats
	got, err := ExecJoin(left, right, q, ExecOpts{Stats: &st})
	if err != nil {
		t.Fatal(err)
	}
	if st.SegmentsScanned != 0 {
		t.Fatalf("scanned %d segments; early termination should scan none", st.SegmentsScanned)
	}
	if st.SegmentsPruned == 0 {
		t.Fatal("no segments pruned; the build side should have been emptied by zone maps")
	}
	for si, seg := range left.Segments[:len(left.Segments)-1] {
		if seg.State() != storage.SegSpilled {
			t.Fatalf("probe segment %d was faulted in (state %v); early termination must leave the probe side cold", si, seg.State())
		}
	}
	// The reference faults both inputs back in, so it runs after the
	// cold-state assertions.
	if !got.Equal(nestedLoopJoin(t, left, right, q)) {
		t.Fatalf("early-terminated join diverged from reference: %v", got.Data)
	}
}

// TestJoinGreedyBuildSide checks the ordering rule is observable: for
// order-insensitive shapes the smaller candidate side builds (the hash
// arena stays proportional to it, whichever side it is), while projections
// always build the right side to preserve left-major output order.
func TestJoinGreedyBuildSide(t *testing.T) {
	small := storage.BuildColumnMajorSeg(data.Generate(data.SyntheticSchema("R", jeqLeftWidth), 64, 21), eqSegCap)
	big := storage.BuildColumnMajorSeg(data.Generate(data.SyntheticSchema("S", jeqRightWidth), 8*eqSegCap, 22), eqSegCap)
	bigLeft := storage.BuildColumnMajorSeg(data.Generate(data.SyntheticSchema("R", jeqLeftWidth), 8*eqSegCap, 23), eqSegCap)
	smallRight := storage.BuildColumnMajorSeg(data.Generate(data.SyntheticSchema("S", jeqRightWidth), 64, 24), eqSegCap)

	agg := func(leftW int) *query.Query {
		q := query.Aggregation("R", expr.AggSum, []data.AttrID{0, data.AttrID(leftW)}, nil)
		q.Joins = []query.Join{query.JoinOn("S", 1, 1, leftW)}
		return q
	}

	// Small left, big right: the left side must build (arena ≤ 64 tuples,
	// one stored attribute each).
	var st StrategyStats
	if _, err := ExecJoin(small, big, agg(jeqLeftWidth), ExecOpts{Stats: &st}); err != nil {
		t.Fatal(err)
	}
	if st.IntermediateWords > 64 {
		t.Fatalf("arena holds %d words; the 64-row side should have built", st.IntermediateWords)
	}

	// Big left, small right: the right side builds — same bound.
	st = StrategyStats{}
	if _, err := ExecJoin(bigLeft, smallRight, agg(jeqLeftWidth), ExecOpts{Stats: &st}); err != nil {
		t.Fatal(err)
	}
	if st.IntermediateWords > 64 {
		t.Fatalf("arena holds %d words; the 64-row side should have built", st.IntermediateWords)
	}

	// Projection over a big right side: order sensitivity forces the right
	// build even though the left is smaller, so the arena scales with it.
	proj := query.Projection("R", []data.AttrID{0, jeqLeftWidth}, nil)
	proj.Joins = []query.Join{query.JoinOn("S", 1, 1, jeqLeftWidth)}
	st = StrategyStats{}
	if _, err := ExecJoin(small, big, proj, ExecOpts{Stats: &st}); err != nil {
		t.Fatal(err)
	}
	if st.IntermediateWords < 8*eqSegCap {
		t.Fatalf("arena holds %d words; projections must build the right side to keep left-major order", st.IntermediateWords)
	}
}

// BenchmarkJoinHashProbe times the probe-dominated regime: a small build
// side against a large streaming probe side, aggregate output. It rides in
// the CI bench.json artifact next to the single-relation scan benchmarks.
func BenchmarkJoinHashProbe(b *testing.B) {
	left := storage.BuildColumnMajorSeg(data.GenerateTimeSeries(data.SyntheticSchema("R", jeqLeftWidth), 64*eqSegCap, 31), eqSegCap)
	rtb := data.Generate(data.SyntheticSchema("S", jeqRightWidth), 2*eqSegCap, 32)
	for r := 0; r < rtb.Rows; r++ {
		rtb.Cols[1][r] = data.Value(int64(r) % 997)
	}
	right := storage.BuildColumnMajorSeg(rtb, eqSegCap)
	q := query.Aggregation("R", expr.AggSum, []data.AttrID{2, data.AttrID(jeqLeftWidth + 2)}, nil)
	q.Joins = []query.Join{query.JoinOn("S", 1, 1, jeqLeftWidth)}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExecJoin(left, right, q, ExecOpts{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkJoinGroupedAgg times grouped joined aggregation — the shape the
// streaming design exists for: group keys from both sides, aggregates over
// the join, never materializing a joined row.
func BenchmarkJoinGroupedAgg(b *testing.B) {
	ltb := data.GenerateTimeSeries(data.SyntheticSchema("R", jeqLeftWidth), 32*eqSegCap, 41)
	for r := 0; r < ltb.Rows; r++ {
		ltb.Cols[1][r] = data.Value(int64(r) % 256)
		ltb.Cols[3][r] = data.Value(int64(r) % 16)
	}
	left := storage.BuildColumnMajorSeg(ltb, eqSegCap)
	rtb := data.Generate(data.SyntheticSchema("S", jeqRightWidth), eqSegCap, 42)
	for r := 0; r < rtb.Rows; r++ {
		rtb.Cols[0][r] = data.Value(int64(r) % 256)
		rtb.Cols[2][r] = data.Value(int64(r) % 8)
	}
	right := storage.BuildColumnMajorSeg(rtb, eqSegCap)
	q := &query.Query{
		Table: "R",
		Joins: []query.Join{query.JoinOn("S", 1, 0, jeqLeftWidth)},
		Items: []query.SelectItem{
			{Expr: &expr.Col{ID: 3}},
			{Expr: &expr.Col{ID: jeqLeftWidth + 2}},
			{Agg: &expr.Agg{Op: expr.AggSum, Arg: &expr.Col{ID: 2}}},
			{Agg: &expr.Agg{Op: expr.AggCount, Arg: &expr.Col{ID: 0}}},
		},
		GroupBy: []expr.Col{{ID: 3}, {ID: jeqLeftWidth + 2}},
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExecJoin(left, right, q, ExecOpts{Workers: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
