package exec

// Operator-level tests for the streaming pipeline: each strategy's
// per-segment operator runs directly against hand-computed expectations on
// hand-built segments — exact segment-boundary sizes, partial tails, empty
// segments — and the registry invariants the chooser, Explain and the
// operator generator rely on are pinned here.

import (
	"reflect"
	"strings"
	"testing"

	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

const opSegCap = 64

func TestStrategyRegistry(t *testing.T) {
	if got, want := CostedStrategies(), []Strategy{StrategyRow, StrategyHybrid, StrategyColumn}; !reflect.DeepEqual(got, want) {
		t.Fatalf("CostedStrategies() = %v, want %v", got, want)
	}
	if got, want := ExplainStrategies(), []Strategy{StrategyRow, StrategyHybrid, StrategyColumn, StrategyGeneric}; !reflect.DeepEqual(got, want) {
		t.Fatalf("ExplainStrategies() = %v, want %v", got, want)
	}
	plannable := map[Strategy]bool{
		StrategyRow:        true,
		StrategyColumn:     true,
		StrategyHybrid:     true,
		StrategyGeneric:    true,
		StrategyVectorized: true,
		StrategyBitmap:     true,
		StrategyEncoded:    false,
		StrategyReorg:      false,
		StrategyDelta:      false,
	}
	for s, want := range plannable {
		if got := Plannable(s); got != want {
			t.Fatalf("Plannable(%v) = %v, want %v", s, got, want)
		}
	}
	if StrategyVectorized.String() != "vectorized" || StrategyBitmap.String() != "bitmap" {
		t.Fatalf("new strategy names: %q, %q", StrategyVectorized, StrategyBitmap)
	}
}

func TestExecRejectsUnbuildableStrategies(t *testing.T) {
	tb := data.Generate(data.SyntheticSchema("R", 4), 10, 1)
	rel := storage.BuildColumnMajor(tb)
	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1}, nil)
	for _, s := range []Strategy{StrategyDelta, Strategy(99)} {
		_, err := Exec(rel, q, ExecOpts{Strategy: s})
		if err == nil || !strings.Contains(err.Error(), "no pipeline builder") {
			t.Fatalf("Exec with strategy %v: err = %v, want a no-pipeline-builder error", s, err)
		}
	}
}

// TestSegmentOperatorsHandBuilt runs every per-segment operator directly on
// each segment of hand-built relations — one sized exactly at the segment
// boundary, one with a partial tail — and checks the partial's aggregate
// states against a naive loop over that segment's row range.
func TestSegmentOperatorsHandBuilt(t *testing.T) {
	for _, rows := range []int{opSegCap, 2*opSegCap + 17} {
		tb := data.Generate(data.SyntheticSchema("R", 4), rows, int64(rows))
		rel := storage.BuildColumnMajorSeg(tb, opSegCap)
		q := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, query.PredGt(3, 0))
		out := Classify(q)
		preds, ok := SplitConjunction(q.Where)
		if !ok {
			t.Fatal("expected a splittable conjunction")
		}
		ops := []struct {
			name string
			run  func(seg *storage.Segment) (*partial, error)
		}{
			{"column", func(seg *storage.Segment) (*partial, error) {
				return columnSegPartial(seg, out, preds, nil)
			}},
			{"hybrid", func(seg *storage.Segment) (*partial, error) {
				return hybridSegPartial(seg, q, out, preds, nil)
			}},
			{"vectorized-7", func(seg *storage.Segment) (*partial, error) {
				return vectorSegPartial(seg, q, out, preds, 7, nil)
			}},
			{"vectorized-1024", func(seg *storage.Segment) (*partial, error) {
				return vectorSegPartial(seg, q, out, preds, 1024, nil)
			}},
			{"bitmap", func(seg *storage.Segment) (*partial, error) {
				return bitmapSegPartial(seg, q, out, preds, nil)
			}},
			{"encoded", func(seg *storage.Segment) (*partial, error) {
				return encodedSegPartial(seg, q, out, preds, nil)
			}},
		}
		base := 0
		for si, seg := range rel.Segments {
			if seg.Rows == 0 {
				continue
			}
			var want1, want2 data.Value
			for r := base; r < base+seg.Rows; r++ {
				if tb.Cols[3][r] > 0 {
					want1 += tb.Cols[1][r]
					want2 += tb.Cols[2][r]
				}
			}
			check := func(name string, p *partial, err error) {
				t.Helper()
				if err != nil {
					t.Fatalf("rows=%d seg=%d op=%s: %v", rows, si, name, err)
				}
				if len(p.states) != 2 {
					t.Fatalf("rows=%d seg=%d op=%s: %d states, want 2", rows, si, name, len(p.states))
				}
				if g1, g2 := p.states[0].Result(), p.states[1].Result(); g1 != want1 || g2 != want2 {
					t.Fatalf("rows=%d seg=%d op=%s: partial = (%d, %d), want (%d, %d)",
						rows, si, name, g1, g2, want1, want2)
				}
			}
			for _, op := range ops {
				p, err := op.run(seg)
				check(op.name, p, err)
			}
			// The encoded operator must route a demoted segment through the
			// header-fold kernel and still produce the identical partial.
			if si < len(rel.Segments)-1 && seg.State() == storage.SegResident {
				seg.DemoteToEncoded()
				var st StrategyStats
				p, err := encodedSegPartial(seg, q, out, preds, &st)
				check("encoded-demoted", p, err)
				if st.EncodedBytes == 0 && st.DecodeSkips == 0 {
					t.Fatalf("rows=%d seg=%d: encoded operator on a demoted segment consumed no encoded data", rows, si)
				}
			}
			base += seg.Rows
		}
	}
}

// TestExecSkipsEmptySegments pins the SegSource policy: segments with no
// rows are neither scanned nor counted — a zero-row relation (every segment
// empty) executes without touching anything, and at any size
// scanned + pruned accounts for exactly the non-empty segments.
func TestExecSkipsEmptySegments(t *testing.T) {
	for _, rows := range []int{0, opSegCap, opSegCap + 1} {
		tb := data.Generate(data.SyntheticSchema("R", 4), rows, 5)
		rel := storage.BuildColumnMajorSeg(tb, opSegCap)
		nonEmpty := 0
		for _, seg := range rel.Segments {
			if seg.Rows > 0 {
				nonEmpty++
			}
		}
		q := query.Aggregation("R", expr.AggSum, []data.AttrID{1}, nil)
		for _, s := range []Strategy{StrategyRow, StrategyColumn, StrategyHybrid, StrategyVectorized, StrategyBitmap, StrategyGeneric} {
			var st StrategyStats
			if _, err := Exec(rel, q, ExecOpts{Strategy: s, Stats: &st}); err != nil {
				t.Fatalf("rows=%d strategy %v: %v", rows, s, err)
			}
			if st.SegmentsScanned+st.SegmentsPruned != nonEmpty {
				t.Fatalf("rows=%d strategy %v: scanned %d + pruned %d, want %d non-empty segments",
					rows, s, st.SegmentsScanned, st.SegmentsPruned, nonEmpty)
			}
		}
	}
}

// TestWorkersFanOutMatchesSerial runs each plannable strategy serially and
// with several worker counts over a multi-segment relation; the fan-out must
// be invisible in the results.
func TestWorkersFanOutMatchesSerial(t *testing.T) {
	tb := data.Generate(data.SyntheticSchema("R", 6), 5*opSegCap+13, 17)
	rel := storage.BuildRowMajorSeg(tb, false, opSegCap)
	qs := []*query.Query{
		query.Projection("R", []data.AttrID{0, 2}, query.PredGt(1, 0)),
		query.Aggregation("R", expr.AggSum, []data.AttrID{1, 3}, query.PredLt(2, 0)),
		query.AggExpression("R", []data.AttrID{0, 4, 5}, query.PredGt(3, -1)),
		{Table: "R", Items: []query.SelectItem{
			{Expr: &expr.Col{ID: 1}},
			{Agg: &expr.Agg{Op: expr.AggSum, Arg: &expr.Col{ID: 2}}},
		}, Where: query.PredGt(3, 0), GroupBy: []expr.Col{{ID: 1}}},
		func() *query.Query {
			q := query.Projection("R", []data.AttrID{0, 1}, query.PredGt(2, 0))
			q.Limit = opSegCap + 9
			return q
		}(),
	}
	strats := []Strategy{StrategyRow, StrategyColumn, StrategyHybrid, StrategyVectorized, StrategyBitmap, StrategyGeneric}
	for qi, q := range qs {
		for _, s := range strats {
			want, err := Exec(rel, q, ExecOpts{Strategy: s})
			if err == ErrUnsupported {
				continue
			}
			if err != nil {
				t.Fatalf("query %d strategy %v serial: %v", qi, s, err)
			}
			want = trimLimit(q, want)
			for _, workers := range []int{2, 4, 9} {
				got, err := Exec(rel, q, ExecOpts{Strategy: s, Workers: workers})
				if err != nil {
					t.Fatalf("query %d strategy %v workers=%d: %v", qi, s, workers, err)
				}
				if got = trimLimit(q, got); !got.Equal(want) {
					t.Fatalf("query %d strategy %v workers=%d diverged from serial: got %d rows, want %d",
						qi, s, workers, got.Rows, want.Rows)
				}
			}
		}
	}
}
