// Segment files: the disk tier behind segment spilling. Where the H2OSNAP2
// snapshot (persist.go) serializes a whole relation, a SegmentStore writes
// each sealed segment as its own standalone file, so the eviction manager
// can spill and fault segments individually.
//
// The current format, H2OSEG02, stores the segment's *encoded* form
// (storage/encode.go) — typically several times smaller than the flat
// data — as a flat little-endian uint64 payload:
//
//	magic   "H2OSEG02"  (8 bytes; everything after is uint64 words)
//	version             segment version at write time (staleness check)
//	rows
//	groups  count, then per group:
//	          nattrs, attr ids...
//	          stride
//	          per attribute (column): nblocks, then per block:
//	            kind, rows, bits, runs, min, max, sum, base, dbase,
//	            nwords, payload words...
//	digest              position-mixed checksum over all payload words
//
// Because the payload is pure 8-aligned words starting at offset 8, a
// read-only mmap of the file can be aliased as []uint64 in place: faults
// then page at 4K granularity out of the OS page cache instead of copying
// the whole segment onto the Go heap, and block payloads the scan skips
// are never touched. The content digest is verified on the first fault of
// each (key, version); later faults of the same file alias it directly,
// keeping re-faults lazy. Platforms without mmap (and big-endian hosts)
// read the words into one heap buffer instead — same format, same
// validation, one allocation.
//
// Legacy H2OSEG01 files (flat uncompressed group data) remain readable;
// new spills always write H2OSEG02.
//
// Zone maps are not written: they stay resident in the segment skeleton
// while the data is spilled, which is what keeps pruning free of I/O.
package persist

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"

	"h2o/internal/data"
	"h2o/internal/storage"
)

var (
	segMagic   = [8]byte{'H', '2', 'O', 'S', 'E', 'G', '0', '1'}
	segMagicV2 = [8]byte{'H', '2', 'O', 'S', 'E', 'G', '0', '2'}
)

// segBlockHeaderWords is the fixed per-block header size in the V2 format.
const segBlockHeaderWords = 10

// SegmentStore reads and writes individual sealed segments under one
// directory. It is safe for concurrent use on distinct keys; callers (the
// eviction manager) serialize writes against reads of the same key
// through segment pins. Scratch buffers for the fault path are pooled
// per store, so steady-state faults allocate only the buffers the
// segment retains.
type SegmentStore struct {
	dir string

	// readers pools the 1MB buffered readers used by the legacy V1 fault
	// path, which otherwise dominated allocs/op in BenchmarkScanSpilled.
	readers sync.Pool
	// payloads pools V2 write-path payload buffers.
	payloads sync.Pool

	// verified records, per key, the file version whose digest has been
	// checked, so re-faults of an unchanged spill file skip the full-file
	// checksum walk (and, on the mmap path, stay lazy).
	mu       sync.Mutex
	verified map[string]uint64
}

// NewSegmentStore creates (if needed) the spill directory and returns a
// store over it.
func NewSegmentStore(dir string) (*SegmentStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: segment store: %w", err)
	}
	st := &SegmentStore{dir: dir, verified: make(map[string]uint64)}
	st.readers.New = func() any { return bufio.NewReaderSize(nil, 1<<20) }
	st.payloads.New = func() any { b := make([]uint64, 0, 64*1024); return &b }
	return st, nil
}

// Dir returns the store's directory.
func (st *SegmentStore) Dir() string { return st.dir }

// Path returns the file path a key maps to.
func (st *SegmentStore) Path(key string) string {
	return filepath.Join(st.dir, key+".h2oseg")
}

// WriteSegment persists seg under key in the encoded V2 format,
// atomically: the bytes are written to a temporary file, fsynced, and
// renamed into place, so a crash mid-spill can never leave a torn segment
// file that later faults a scan. The caller must hold the segment pinned
// at encoded-or-better residency (AcquireEncoded) for the duration; the
// group encodings are built here if not already cached, and cached for
// the eventual demotion.
func (st *SegmentStore) WriteSegment(key string, seg *storage.Segment) error {
	bufp := st.payloads.Get().(*[]uint64)
	payload := (*bufp)[:0]
	defer func() { *bufp = payload[:0]; st.payloads.Put(bufp) }()

	payload = append(payload, seg.Version(), uint64(seg.Rows), uint64(len(seg.Groups)))
	for gi, g := range seg.Groups {
		e := g.Encoding()
		if e == nil {
			return fmt.Errorf("persist: segment %s group %d has neither data nor encoding", key, gi)
		}
		payload = append(payload, uint64(len(g.Attrs)))
		for _, a := range g.Attrs {
			payload = append(payload, uint64(a))
		}
		payload = append(payload, uint64(g.Stride))
		for _, c := range e.Cols {
			payload = append(payload, uint64(len(c.Blocks)))
			for bi := range c.Blocks {
				b := &c.Blocks[bi]
				payload = append(payload,
					uint64(b.Kind), uint64(b.Rows), uint64(b.Bits), uint64(b.Runs),
					uint64(b.Min), uint64(b.Max), uint64(b.Sum),
					uint64(b.Base), uint64(b.DBase), uint64(len(b.Words)))
				payload = append(payload, b.Words...)
			}
		}
	}
	st.mu.Lock()
	delete(st.verified, key) // the first fault of the new file re-verifies
	st.mu.Unlock()
	return atomicWriteFile(st.Path(key), func(f *os.File) error {
		bw := bufio.NewWriterSize(f, 1<<20)
		if _, err := bw.Write(segMagicV2[:]); err != nil {
			return err
		}
		for _, w := range payload {
			if err := writeU64(bw, w); err != nil {
				return err
			}
		}
		if err := writeU64(bw, segDigestWords(payload)); err != nil {
			return err
		}
		return bw.Flush()
	})
}

// ReadSegment faults key back into seg. V2 files install the encoded form
// on every group (mmap-aliased where supported); legacy V1 files install
// flat group data. The on-disk metadata must match the in-memory skeleton
// exactly — attribute sets, strides, row count and the segment version
// recorded at spill time — and the content digest must verify on the
// first read of each file version. Any mismatch (torn file, stale spill
// left over from before a reorganization, bit rot) returns an error
// without touching the segment, so a failed fault can be retried or
// surfaced cleanly by the scan that triggered it.
func (st *SegmentStore) ReadSegment(key string, seg *storage.Segment) error {
	f, err := os.Open(st.Path(key))
	if err != nil {
		return err
	}
	var magic [8]byte
	if _, err := io.ReadFull(f, magic[:]); err != nil {
		f.Close()
		return fmt.Errorf("persist: segment %s: reading magic: %w", key, err)
	}
	switch magic {
	case segMagicV2:
		f.Close()
		return st.readSegmentV2(key, seg)
	case segMagic:
		defer f.Close()
		return st.readSegmentV1(f, key, seg)
	default:
		f.Close()
		return fmt.Errorf("persist: segment %s: not an H2O segment file (magic %q)", key, magic[:])
	}
}

// readSegmentV2 parses an encoded segment file, preferring a shared mmap.
func (st *SegmentStore) readSegmentV2(key string, seg *storage.Segment) error {
	if mmapSupported() {
		b, release, err := mmapFile(st.Path(key))
		if err != nil {
			return err
		}
		if len(b) < 16 || (len(b)-8)%8 != 0 {
			release()
			return fmt.Errorf("persist: segment %s: truncated segment file (%d bytes)", key, len(b))
		}
		words := aliasWords(b[8:])
		if err := st.installV2(key, seg, words, true, release); err != nil {
			release()
			return err
		}
		return nil
	}
	raw, err := os.ReadFile(st.Path(key))
	if err != nil {
		return err
	}
	if len(raw) < 16 || (len(raw)-8)%8 != 0 {
		return fmt.Errorf("persist: segment %s: truncated segment file (%d bytes)", key, len(raw))
	}
	words := make([]uint64, (len(raw)-8)/8)
	for i := range words {
		var w uint64
		for j := 0; j < 8; j++ {
			w |= uint64(raw[8+i*8+j]) << (8 * j)
		}
		words[i] = w
	}
	return st.installV2(key, seg, words, false, nil)
}

// installV2 validates the payload against the segment skeleton and
// installs one GroupEncoding per group. words holds everything after the
// magic, trailing digest included. On the mmap path the block payloads
// alias the mapping and release is registered on the segment; on error
// the caller releases.
func (st *SegmentStore) installV2(key string, seg *storage.Segment, words []uint64, mapped bool, release func()) error {
	payload, want := words[:len(words)-1], words[len(words)-1]
	if len(payload) < 3 {
		return fmt.Errorf("persist: segment %s: truncated segment file", key)
	}
	ver := payload[0]
	if ver != seg.Version() {
		return fmt.Errorf("persist: segment %s: spill file version %d is stale (segment at %d)", key, ver, seg.Version())
	}
	st.mu.Lock()
	checked := st.verified[key] == ver
	st.mu.Unlock()
	if !checked {
		if got := segDigestWords(payload); got != want {
			return fmt.Errorf("persist: segment %s: content digest mismatch (spill file corrupt)", key)
		}
		st.mu.Lock()
		st.verified[key] = ver
		st.mu.Unlock()
	}
	cur := wordCursor{w: payload[1:], key: key}
	rows, err := cur.next()
	if err != nil {
		return err
	}
	if rows != uint64(seg.Rows) {
		return fmt.Errorf("persist: segment %s: file has %d rows, segment has %d", key, rows, seg.Rows)
	}
	nGroups, err := cur.next()
	if err != nil {
		return err
	}
	if int(nGroups) != len(seg.Groups) {
		return fmt.Errorf("persist: segment %s: file has %d groups, segment has %d", key, nGroups, len(seg.Groups))
	}
	// Parse and validate everything first; install only on full success so
	// a failed fault leaves the segment untouched.
	encs := make([]*storage.GroupEncoding, len(seg.Groups))
	for gi, g := range seg.Groups {
		nga, err := cur.next()
		if err != nil {
			return err
		}
		if int(nga) != len(g.Attrs) {
			return fmt.Errorf("persist: segment %s group %d: file width %d, segment width %d", key, gi, nga, len(g.Attrs))
		}
		for i, a := range g.Attrs {
			v, err := cur.next()
			if err != nil {
				return err
			}
			if data.AttrID(v) != a {
				return fmt.Errorf("persist: segment %s group %d: attribute %d is %d on disk, %d in memory", key, gi, i, v, a)
			}
		}
		stride, err := cur.next()
		if err != nil {
			return err
		}
		if int(stride) != g.Stride {
			return fmt.Errorf("persist: segment %s group %d: file stride %d, segment stride %d", key, gi, stride, g.Stride)
		}
		e := &storage.GroupEncoding{Cols: make([]*storage.EncColumn, len(g.Attrs)), Mapped: mapped}
		for ci := range g.Attrs {
			nBlocks, err := cur.next()
			if err != nil {
				return err
			}
			wantBlocks := (g.Rows + storage.EncBlockRows - 1) / storage.EncBlockRows
			if int(nBlocks) != wantBlocks {
				return fmt.Errorf("persist: segment %s group %d col %d: %d blocks on disk, want %d", key, gi, ci, nBlocks, wantBlocks)
			}
			col := &storage.EncColumn{Rows: g.Rows, Blocks: make([]storage.EncBlock, nBlocks)}
			covered := 0
			for bi := 0; bi < int(nBlocks); bi++ {
				hdr, err := cur.take(segBlockHeaderWords)
				if err != nil {
					return err
				}
				blk := storage.EncBlock{
					Kind:  storage.EncKind(hdr[0]),
					Rows:  int(hdr[1]),
					Bits:  uint8(hdr[2]),
					Runs:  int(hdr[3]),
					Min:   data.Value(hdr[4]),
					Max:   data.Value(hdr[5]),
					Sum:   data.Value(hdr[6]),
					Base:  data.Value(hdr[7]),
					DBase: data.Value(hdr[8]),
				}
				nWords := hdr[9]
				if blk.Kind > storage.EncRLE || blk.Rows <= 0 || blk.Rows > storage.EncBlockRows || blk.Bits > 64 {
					return fmt.Errorf("persist: segment %s group %d col %d block %d: malformed header", key, gi, ci, bi)
				}
				if bi < int(nBlocks)-1 && blk.Rows != storage.EncBlockRows {
					return fmt.Errorf("persist: segment %s group %d col %d block %d: interior block has %d rows", key, gi, ci, bi, blk.Rows)
				}
				blk.Words, err = cur.take(int(nWords))
				if err != nil {
					return err
				}
				if err := checkBlockPayload(&blk); err != nil {
					return fmt.Errorf("persist: segment %s group %d col %d block %d: %w", key, gi, ci, bi, err)
				}
				covered += blk.Rows
				col.Blocks[bi] = blk
			}
			if covered != g.Rows {
				return fmt.Errorf("persist: segment %s group %d col %d: blocks cover %d rows, want %d", key, gi, ci, covered, g.Rows)
			}
			e.Cols[ci] = col
		}
		encs[gi] = e
	}
	if cur.i != len(cur.w) {
		return fmt.Errorf("persist: segment %s: %d trailing words after payload", key, len(cur.w)-cur.i)
	}
	for gi, g := range seg.Groups {
		g.SetEncoding(encs[gi])
	}
	if mapped {
		seg.SetMapRelease(release)
	}
	return nil
}

// checkBlockPayload validates payload sizes and RLE run totals so a
// corrupt block can never index out of bounds during a scan.
func checkBlockPayload(b *storage.EncBlock) error {
	switch b.Kind {
	case storage.EncRaw:
		if len(b.Words) != b.Rows {
			return fmt.Errorf("raw payload %d words for %d rows", len(b.Words), b.Rows)
		}
	case storage.EncFOR:
		if want := (b.Rows*int(b.Bits) + 63) / 64; len(b.Words) != want {
			return fmt.Errorf("for payload %d words, want %d", len(b.Words), want)
		}
	case storage.EncDelta:
		if want := ((b.Rows-1)*int(b.Bits) + 63) / 64; len(b.Words) != want {
			return fmt.Errorf("delta payload %d words, want %d", len(b.Words), want)
		}
	case storage.EncRLE:
		if len(b.Words) != 2*b.Runs {
			return fmt.Errorf("rle payload %d words for %d runs", len(b.Words), b.Runs)
		}
		total := uint64(0)
		for i := 1; i < len(b.Words); i += 2 {
			total += b.Words[i]
		}
		if total != uint64(b.Rows) {
			return fmt.Errorf("rle runs cover %d rows, want %d", total, b.Rows)
		}
	}
	return nil
}

// wordCursor walks a payload with bounds checking, so truncated or
// malformed files surface as clean errors rather than panics.
type wordCursor struct {
	w   []uint64
	i   int
	key string
}

func (c *wordCursor) next() (uint64, error) {
	if c.i >= len(c.w) {
		return 0, fmt.Errorf("persist: segment %s: truncated segment file", c.key)
	}
	v := c.w[c.i]
	c.i++
	return v, nil
}

func (c *wordCursor) take(n int) ([]uint64, error) {
	if n < 0 || c.i+n > len(c.w) {
		return nil, fmt.Errorf("persist: segment %s: truncated segment file", c.key)
	}
	s := c.w[c.i : c.i+n : c.i+n]
	c.i += n
	return s, nil
}

// writeSegmentV1 persists seg's flat group data in the legacy H2OSEG01
// format. Kept (unexported) so tests can prove old spill directories
// remain readable.
func writeSegmentV1(st *SegmentStore, key string, seg *storage.Segment) error {
	return atomicWriteFile(st.Path(key), func(f *os.File) error {
		bw := bufio.NewWriterSize(f, 1<<20)
		if _, err := bw.Write(segMagic[:]); err != nil {
			return err
		}
		if err := writeU64(bw, seg.Version()); err != nil {
			return err
		}
		if err := writeU64(bw, uint64(seg.Rows)); err != nil {
			return err
		}
		if err := writeU32(bw, uint32(len(seg.Groups))); err != nil {
			return err
		}
		var digest uint64
		for gi, g := range seg.Groups {
			if err := writeGroupSection(bw, g); err != nil {
				return err
			}
			digest += segDigest(g.Data, uint64(gi))
		}
		if err := writeU64(bw, digest); err != nil {
			return err
		}
		return bw.Flush()
	})
}

// readSegmentV1 faults a legacy flat segment file into seg's group Data.
// f is positioned just past the magic.
func (st *SegmentStore) readSegmentV1(f *os.File, key string, seg *storage.Segment) error {
	br := st.readers.Get().(*bufio.Reader)
	br.Reset(f)
	defer func() { br.Reset(nil); st.readers.Put(br) }()
	ver, err := readU64(br)
	if err != nil {
		return err
	}
	if ver != seg.Version() {
		return fmt.Errorf("persist: segment %s: spill file version %d is stale (segment at %d)", key, ver, seg.Version())
	}
	rows, err := readU64(br)
	if err != nil {
		return err
	}
	if rows != uint64(seg.Rows) {
		return fmt.Errorf("persist: segment %s: file has %d rows, segment has %d", key, rows, seg.Rows)
	}
	nGroups, err := readU32(br)
	if err != nil {
		return err
	}
	if int(nGroups) != len(seg.Groups) {
		return fmt.Errorf("persist: segment %s: file has %d groups, segment has %d", key, nGroups, len(seg.Groups))
	}
	// Read and verify everything into fresh buffers first; install only on
	// full success so a failed fault leaves the segment untouched.
	bufs := make([][]data.Value, len(seg.Groups))
	var digest uint64
	for gi, g := range seg.Groups {
		nga, err := readU32(br)
		if err != nil {
			return err
		}
		if int(nga) != len(g.Attrs) {
			return fmt.Errorf("persist: segment %s group %d: file width %d, segment width %d", key, gi, nga, len(g.Attrs))
		}
		for i, a := range g.Attrs {
			v, err := readU32(br)
			if err != nil {
				return err
			}
			if data.AttrID(v) != a {
				return fmt.Errorf("persist: segment %s group %d: attribute %d is %d on disk, %d in memory", key, gi, i, v, a)
			}
		}
		stride, err := readU32(br)
		if err != nil {
			return err
		}
		if int(stride) != g.Stride {
			return fmt.Errorf("persist: segment %s group %d: file stride %d, segment stride %d", key, gi, stride, g.Stride)
		}
		buf := make([]data.Value, g.Rows*g.Stride)
		if err := readValues(br, buf); err != nil {
			return fmt.Errorf("persist: segment %s group %d: %w", key, gi, err)
		}
		digest += segDigest(buf, uint64(gi))
		bufs[gi] = buf
	}
	want, err := readU64(br)
	if err != nil {
		return err
	}
	if digest != want {
		return fmt.Errorf("persist: segment %s: content digest mismatch (spill file corrupt)", key)
	}
	for gi, g := range seg.Groups {
		g.Data = bufs[gi]
	}
	return nil
}

// Remove deletes a key's spill file; a missing file is not an error.
func (st *SegmentStore) Remove(key string) error {
	st.mu.Lock()
	delete(st.verified, key)
	st.mu.Unlock()
	err := os.Remove(st.Path(key))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// segDigest folds a group's raw words (padding included) into a
// position-mixed checksum; salt keeps identical groups at different
// positions from cancelling.
func segDigest(vals []data.Value, salt uint64) uint64 {
	var sum uint64
	for i, v := range vals {
		h := uint64(v) ^ (uint64(i) * 0x9e3779b97f4a7c15) ^ (salt * 0xc2b2ae3d27d4eb4f)
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		sum += h
	}
	return sum
}

// segDigestWords is segDigest over a V2 payload (no salt: the payload is
// a single stream whose positions already disambiguate).
func segDigestWords(words []uint64) uint64 {
	var sum uint64
	for i, v := range words {
		h := v ^ (uint64(i) * 0x9e3779b97f4a7c15)
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		sum += h
	}
	return sum
}
