// Segment files: the disk tier behind segment spilling. Where the H2OSNAP2
// snapshot (persist.go) serializes a whole relation, a SegmentStore writes
// each sealed segment as its own standalone file, so the eviction manager
// can spill and fault segments individually. The format mirrors the
// snapshot's per-segment section plus a header that ties the file to the
// exact in-memory segment it was written from:
//
//	magic   "H2OSEG01"
//	version uint64   segment version at write time (staleness check)
//	rows    uint64
//	groups  uint32 count, then per group:
//	          attrs  uint32 count + uint32 ids
//	          stride uint32
//	          data   rows*stride int64 values
//	digest  uint64   position-mixed content checksum over all group data
//
// Zone maps are not written: they stay resident in the segment skeleton
// while the data is spilled, which is what keeps pruning free of I/O.
package persist

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"h2o/internal/data"
	"h2o/internal/storage"
)

var segMagic = [8]byte{'H', '2', 'O', 'S', 'E', 'G', '0', '1'}

// SegmentStore reads and writes individual sealed segments under one
// directory. It holds no state beyond the directory path and is safe for
// concurrent use on distinct keys; callers (the eviction manager)
// serialize writes against reads of the same key through segment pins.
type SegmentStore struct {
	dir string
}

// NewSegmentStore creates (if needed) the spill directory and returns a
// store over it.
func NewSegmentStore(dir string) (*SegmentStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("persist: segment store: %w", err)
	}
	return &SegmentStore{dir: dir}, nil
}

// Dir returns the store's directory.
func (st *SegmentStore) Dir() string { return st.dir }

// Path returns the file path a key maps to.
func (st *SegmentStore) Path(key string) string {
	return filepath.Join(st.dir, key+".h2oseg")
}

// WriteSegment persists seg's group data under key, atomically: the bytes
// are written to a temporary file, fsynced, and renamed into place, so a
// crash mid-spill can never leave a torn segment file that later faults a
// scan. The caller must hold the segment resident (pinned) for the
// duration of the write.
func (st *SegmentStore) WriteSegment(key string, seg *storage.Segment) error {
	return atomicWriteFile(st.Path(key), func(f *os.File) error {
		bw := bufio.NewWriterSize(f, 1<<20)
		if _, err := bw.Write(segMagic[:]); err != nil {
			return err
		}
		if err := writeU64(bw, seg.Version()); err != nil {
			return err
		}
		if err := writeU64(bw, uint64(seg.Rows)); err != nil {
			return err
		}
		if err := writeU32(bw, uint32(len(seg.Groups))); err != nil {
			return err
		}
		var digest uint64
		for gi, g := range seg.Groups {
			if err := writeGroupSection(bw, g); err != nil {
				return err
			}
			digest += segDigest(g.Data, uint64(gi))
		}
		if err := writeU64(bw, digest); err != nil {
			return err
		}
		return bw.Flush()
	})
}

// ReadSegment faults key's data back into seg's groups. The on-disk
// metadata must match the in-memory skeleton exactly — attribute sets,
// strides, row count and the segment version recorded at spill time — and
// the content digest must verify. Any mismatch (torn file, stale spill
// left over from before a reorganization, bit rot) returns an error
// without touching the segment, so a failed fault can be retried or
// surfaced cleanly by the scan that triggered it.
func (st *SegmentStore) ReadSegment(key string, seg *storage.Segment) error {
	f, err := os.Open(st.Path(key))
	if err != nil {
		return err
	}
	defer f.Close()
	br := bufio.NewReaderSize(f, 1<<20)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return fmt.Errorf("persist: segment %s: reading magic: %w", key, err)
	}
	if got != segMagic {
		return fmt.Errorf("persist: segment %s: not an H2O segment file (magic %q)", key, got[:])
	}
	ver, err := readU64(br)
	if err != nil {
		return err
	}
	if ver != seg.Version() {
		return fmt.Errorf("persist: segment %s: spill file version %d is stale (segment at %d)", key, ver, seg.Version())
	}
	rows, err := readU64(br)
	if err != nil {
		return err
	}
	if rows != uint64(seg.Rows) {
		return fmt.Errorf("persist: segment %s: file has %d rows, segment has %d", key, rows, seg.Rows)
	}
	nGroups, err := readU32(br)
	if err != nil {
		return err
	}
	if int(nGroups) != len(seg.Groups) {
		return fmt.Errorf("persist: segment %s: file has %d groups, segment has %d", key, nGroups, len(seg.Groups))
	}
	// Read and verify everything into fresh buffers first; install only on
	// full success so a failed fault leaves the segment untouched.
	bufs := make([][]data.Value, len(seg.Groups))
	var digest uint64
	for gi, g := range seg.Groups {
		nga, err := readU32(br)
		if err != nil {
			return err
		}
		if int(nga) != len(g.Attrs) {
			return fmt.Errorf("persist: segment %s group %d: file width %d, segment width %d", key, gi, nga, len(g.Attrs))
		}
		for i, a := range g.Attrs {
			v, err := readU32(br)
			if err != nil {
				return err
			}
			if data.AttrID(v) != a {
				return fmt.Errorf("persist: segment %s group %d: attribute %d is %d on disk, %d in memory", key, gi, i, v, a)
			}
		}
		stride, err := readU32(br)
		if err != nil {
			return err
		}
		if int(stride) != g.Stride {
			return fmt.Errorf("persist: segment %s group %d: file stride %d, segment stride %d", key, gi, stride, g.Stride)
		}
		buf := make([]data.Value, g.Rows*g.Stride)
		if err := readValues(br, buf); err != nil {
			return fmt.Errorf("persist: segment %s group %d: %w", key, gi, err)
		}
		digest += segDigest(buf, uint64(gi))
		bufs[gi] = buf
	}
	want, err := readU64(br)
	if err != nil {
		return err
	}
	if digest != want {
		return fmt.Errorf("persist: segment %s: content digest mismatch (spill file corrupt)", key)
	}
	for gi, g := range seg.Groups {
		g.Data = bufs[gi]
	}
	return nil
}

// Remove deletes a key's spill file; a missing file is not an error.
func (st *SegmentStore) Remove(key string) error {
	err := os.Remove(st.Path(key))
	if err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// segDigest folds a group's raw words (padding included) into a
// position-mixed checksum; salt keeps identical groups at different
// positions from cancelling.
func segDigest(vals []data.Value, salt uint64) uint64 {
	var sum uint64
	for i, v := range vals {
		h := uint64(v) ^ (uint64(i) * 0x9e3779b97f4a7c15) ^ (salt * 0xc2b2ae3d27d4eb4f)
		h ^= h >> 33
		h *= 0xff51afd7ed558ccd
		sum += h
	}
	return sum
}
