//go:build !linux

package persist

// Non-Linux platforms use the portable read-into-buffer fault path; the
// stubs below are never called once mmapSupported reports false.

func mmapSupported() bool { return false }

func mmapFile(path string) (b []byte, release func(), err error) {
	panic("persist: mmapFile called on a platform without mmap support")
}

func aliasWords(b []byte) []uint64 {
	panic("persist: aliasWords called on a platform without mmap support")
}
