//go:build linux

package persist

import (
	"fmt"
	"os"
	"syscall"
	"unsafe"
)

// mmapSupported reports whether this platform can serve segment files
// through a shared read-only memory mapping. Mapping only pays off when
// the file's little-endian words can be aliased in place, so big-endian
// hosts (none we run on, but the check is cheap) use the portable
// read-into-buffer path instead.
func mmapSupported() bool { return hostLittleEndian }

var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// mmapFile maps path read-only and returns the file bytes plus a release
// callback. The mapping is shared: clean pages live in the OS page cache,
// are reclaimable under memory pressure, and fault in at 4K granularity —
// a scan that skips most blocks never touches most of the file.
func mmapFile(path string) (b []byte, release func(), err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	fi, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := fi.Size()
	if size == 0 {
		return nil, func() {}, nil
	}
	if size != int64(int(size)) {
		return nil, nil, fmt.Errorf("persist: %s: file too large to map", path)
	}
	b, err = syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: mmap %s: %w", path, err)
	}
	return b, func() { _ = syscall.Munmap(b) }, nil
}

// aliasWords reinterprets an 8-aligned little-endian byte slice as uint64
// words without copying. The caller guarantees b comes from mmapFile at
// an 8-aligned offset and len(b) is a multiple of 8.
func aliasWords(b []byte) []uint64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*uint64)(unsafe.Pointer(&b[0])), len(b)/8)
}
