// Package persist serializes relations — schema, segments and each
// segment's full set of column groups, i.e. the (possibly mixed, per-
// segment) layout the engine has evolved — to a compact binary snapshot
// and restores them. A restored relation resumes with the adapted physical
// design instead of re-learning it, which is how a deployment survives
// restarts without losing the benefit of past adaptation.
//
// Format (all integers little-endian):
//
//	magic   "H2OSNAP2"
//	schema  name, attribute names        (uvarint-length-prefixed strings)
//	rows    uint64                       total rows
//	segcap  uint64                       segment capacity
//	nsegs   uint32, then per segment:
//	          rows   uint64
//	          groups uint32 count, then per group:
//	            attrs  uint32 count + uint32 ids
//	            stride uint32
//	            data   segRows*stride int64 values
//	digest  uint64 order-independent content checksum (storage.Checksum)
//
// Zone maps are not serialized: they are rebuilt in one pass per group at
// load time, exactly as a reorganization rebuilds them. The relation
// version counter (storage.Relation.Version) is deliberately not
// serialized either: a restored relation draws a fresh version from the
// process-wide clock, so result-cache entries (internal/server) keyed
// against whatever relation it replaces can never be served for it.
package persist

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"h2o/internal/data"
	"h2o/internal/storage"
)

var magic = [8]byte{'H', '2', 'O', 'S', 'N', 'A', 'P', '2'}

// Save writes a snapshot of rel to w. Spilled segments are faulted in one
// at a time (and stay resident afterwards): a snapshot necessarily reads
// every byte, so callers on a memory budget should re-enforce it after
// saving (h2o.DB.SaveTable does).
func Save(w io.Writer, rel *storage.Relation) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	if _, err := bw.Write(magic[:]); err != nil {
		return err
	}
	if err := writeString(bw, rel.Schema.Name); err != nil {
		return err
	}
	if err := writeUvarint(bw, uint64(rel.Schema.NumAttrs())); err != nil {
		return err
	}
	for _, a := range rel.Schema.Attrs {
		if err := writeString(bw, a); err != nil {
			return err
		}
	}
	if err := writeU64(bw, uint64(rel.Rows)); err != nil {
		return err
	}
	if err := writeU64(bw, uint64(rel.SegCap)); err != nil {
		return err
	}
	if err := writeU32(bw, uint32(len(rel.Segments))); err != nil {
		return err
	}
	for _, seg := range rel.Segments {
		if err := writeU64(bw, uint64(seg.Rows)); err != nil {
			return err
		}
		if err := writeU32(bw, uint32(len(seg.Groups))); err != nil {
			return err
		}
		if err := saveSegmentGroups(bw, seg); err != nil {
			return err
		}
	}
	digest, err := storage.Checksum(rel, allAttrs(rel.Schema.NumAttrs()))
	if err != nil {
		return fmt.Errorf("persist: digest: %w", err)
	}
	if err := writeU64(bw, digest); err != nil {
		return err
	}
	return bw.Flush()
}

// Load reads a snapshot and reconstructs the relation — segment structure,
// per-segment layouts and all — verifying the content digest.
func Load(r io.Reader) (*storage.Relation, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var got [8]byte
	if _, err := io.ReadFull(br, got[:]); err != nil {
		return nil, fmt.Errorf("persist: reading magic: %w", err)
	}
	if got != magic {
		return nil, fmt.Errorf("persist: not an H2O snapshot (magic %q)", got[:])
	}
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	nAttrs, err := readUvarint(br)
	if err != nil {
		return nil, err
	}
	if nAttrs == 0 || nAttrs > 1<<20 {
		return nil, fmt.Errorf("persist: implausible attribute count %d", nAttrs)
	}
	attrs := make([]string, nAttrs)
	for i := range attrs {
		if attrs[i], err = readString(br); err != nil {
			return nil, err
		}
	}
	schema, err := data.NewSchema(name, attrs)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	rows, err := readU64(br)
	if err != nil {
		return nil, err
	}
	segCap, err := readU64(br)
	if err != nil {
		return nil, err
	}
	if segCap == 0 || segCap > 1<<31 {
		return nil, fmt.Errorf("persist: implausible segment capacity %d", segCap)
	}
	nSegs, err := readU32(br)
	if err != nil {
		return nil, err
	}
	if nSegs == 0 || uint64(nSegs) > rows/segCap+2 {
		return nil, fmt.Errorf("persist: implausible segment count %d for %d rows", nSegs, rows)
	}
	segGroups := make([][]*storage.ColumnGroup, nSegs)
	var totalRows uint64
	for si := uint32(0); si < nSegs; si++ {
		segRows, err := readU64(br)
		if err != nil {
			return nil, err
		}
		if segRows > segCap {
			return nil, fmt.Errorf("persist: segment %d has %d rows, capacity %d", si, segRows, segCap)
		}
		totalRows += segRows
		nGroups, err := readU32(br)
		if err != nil {
			return nil, err
		}
		if nGroups == 0 || uint64(nGroups) > 4*nAttrs {
			return nil, fmt.Errorf("persist: segment %d has implausible group count %d", si, nGroups)
		}
		groups := make([]*storage.ColumnGroup, 0, nGroups)
		for gi := uint32(0); gi < nGroups; gi++ {
			nga, err := readU32(br)
			if err != nil {
				return nil, err
			}
			if nga == 0 || uint64(nga) > nAttrs {
				return nil, fmt.Errorf("persist: segment %d group %d has implausible width %d", si, gi, nga)
			}
			ids := make([]data.AttrID, nga)
			for i := range ids {
				v, err := readU32(br)
				if err != nil {
					return nil, err
				}
				ids[i] = data.AttrID(v)
			}
			stride, err := readU32(br)
			if err != nil {
				return nil, err
			}
			if int(stride) < len(ids) {
				return nil, fmt.Errorf("persist: segment %d group %d stride %d below width %d", si, gi, stride, len(ids))
			}
			g := storage.NewGroupPadded(ids, int(segRows), int(stride)-len(ids))
			if err := readValues(br, g.Data); err != nil {
				return nil, err
			}
			groups = append(groups, g)
		}
		segGroups[si] = groups
	}
	if totalRows != rows {
		return nil, fmt.Errorf("persist: segment rows sum to %d, header says %d", totalRows, rows)
	}
	rel, err := storage.AssembleRelation(schema, int(segCap), segGroups)
	if err != nil {
		return nil, fmt.Errorf("persist: %w", err)
	}
	wantDigest, err := readU64(br)
	if err != nil {
		return nil, err
	}
	gotDigest, err := storage.Checksum(rel, allAttrs(rel.Schema.NumAttrs()))
	if err != nil {
		return nil, err
	}
	if gotDigest != wantDigest {
		return nil, fmt.Errorf("persist: content digest mismatch (snapshot corrupt)")
	}
	return rel, nil
}

// saveSegmentGroups writes one segment's group section, holding the
// segment pinned so a spilled segment is faulted in (and cannot be evicted)
// for the duration of the write.
func saveSegmentGroups(bw *bufio.Writer, seg *storage.Segment) error {
	if _, err := seg.Acquire(); err != nil {
		return err
	}
	defer seg.Release()
	for _, g := range seg.Groups {
		if err := writeGroupSection(bw, g); err != nil {
			return err
		}
	}
	return nil
}

// writeGroupSection writes one group's wire section — attribute count and
// ids, stride, data. The H2OSNAP2 snapshot and the H2OSEG01 segment file
// share this encoding; keep them in lockstep by changing it only here.
func writeGroupSection(bw *bufio.Writer, g *storage.ColumnGroup) error {
	if err := writeU32(bw, uint32(len(g.Attrs))); err != nil {
		return err
	}
	for _, a := range g.Attrs {
		if err := writeU32(bw, uint32(a)); err != nil {
			return err
		}
	}
	if err := writeU32(bw, uint32(g.Stride)); err != nil {
		return err
	}
	return writeValues(bw, g.Data)
}

// SaveFile snapshots rel to path atomically: the snapshot is written to a
// temporary file, fsynced, and renamed into place, so a crash mid-save can
// never leave a torn snapshot at path.
func SaveFile(path string, rel *storage.Relation) error {
	return atomicWriteFile(path, func(f *os.File) error {
		return Save(f, rel)
	})
}

// atomicWriteFile writes a file via tmp + fsync + rename. On any error the
// temporary file is removed and path is left untouched. The containing
// directory is fsynced best-effort after the rename so the new directory
// entry itself survives a crash.
func atomicWriteFile(path string, write func(*os.File) error) error {
	tmp := path + ".tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	if d, err := os.Open(filepath.Dir(path)); err == nil {
		_ = d.Sync() // not supported on every platform; the rename is still atomic
		d.Close()
	}
	return nil
}

// LoadFile restores a relation from path. The file is closed on every
// path, success or error, so a failed load (torn or corrupt snapshot)
// never leaks the descriptor.
func LoadFile(path string) (*storage.Relation, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rel, err := Load(f)
	if err != nil {
		return nil, fmt.Errorf("persist: loading %s: %w", path, err)
	}
	return rel, nil
}

// ---- wire helpers ----

const chunkValues = 8192

func writeValues(w *bufio.Writer, vals []data.Value) error {
	var buf [chunkValues * 8]byte
	for len(vals) > 0 {
		n := len(vals)
		if n > chunkValues {
			n = chunkValues
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint64(buf[i*8:], uint64(vals[i]))
		}
		if _, err := w.Write(buf[:n*8]); err != nil {
			return err
		}
		vals = vals[n:]
	}
	return nil
}

func readValues(r *bufio.Reader, dst []data.Value) error {
	var buf [chunkValues * 8]byte
	for len(dst) > 0 {
		n := len(dst)
		if n > chunkValues {
			n = chunkValues
		}
		if _, err := io.ReadFull(r, buf[:n*8]); err != nil {
			return fmt.Errorf("persist: truncated data section: %w", err)
		}
		for i := 0; i < n; i++ {
			dst[i] = data.Value(binary.LittleEndian.Uint64(buf[i*8:]))
		}
		dst = dst[n:]
	}
	return nil
}

func writeString(w *bufio.Writer, s string) error {
	if err := writeUvarint(w, uint64(len(s))); err != nil {
		return err
	}
	_, err := w.WriteString(s)
	return err
}

func readString(r *bufio.Reader) (string, error) {
	n, err := readUvarint(r)
	if err != nil {
		return "", err
	}
	if n > 1<<16 {
		return "", fmt.Errorf("persist: implausible string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", fmt.Errorf("persist: truncated string: %w", err)
	}
	return string(buf), nil
}

func writeUvarint(w *bufio.Writer, v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := w.Write(buf[:n])
	return err
}

func readUvarint(r *bufio.Reader) (uint64, error) {
	return binary.ReadUvarint(r)
}

func writeU32(w *bufio.Writer, v uint32) error {
	var buf [4]byte
	binary.LittleEndian.PutUint32(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func readU32(r *bufio.Reader) (uint32, error) {
	var buf [4]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("persist: truncated u32: %w", err)
	}
	return binary.LittleEndian.Uint32(buf[:]), nil
}

func writeU64(w *bufio.Writer, v uint64) error {
	var buf [8]byte
	binary.LittleEndian.PutUint64(buf[:], v)
	_, err := w.Write(buf[:])
	return err
}

func readU64(r *bufio.Reader) (uint64, error) {
	var buf [8]byte
	if _, err := io.ReadFull(r, buf[:]); err != nil {
		return 0, fmt.Errorf("persist: truncated u64: %w", err)
	}
	return binary.LittleEndian.Uint64(buf[:]), nil
}

func allAttrs(n int) []data.AttrID {
	out := make([]data.AttrID, n)
	for i := range out {
		out[i] = i
	}
	return out
}
