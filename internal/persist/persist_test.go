package persist

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"h2o/internal/data"
	"h2o/internal/storage"
)

func sampleRelation(t *testing.T) (*data.Table, *storage.Relation) {
	t.Helper()
	tb := data.Generate(data.SyntheticSchema("R", 8), 500, 31)
	rel, err := storage.BuildPartitioned(tb, [][]data.AttrID{{0, 1, 2}, {3, 4}, {5, 6, 7}})
	if err != nil {
		t.Fatal(err)
	}
	// An overlapping extra group and a padded group, to exercise the full
	// layout space.
	extra, err := storage.Stitch(rel, []data.AttrID{1, 4, 6})
	if err != nil {
		t.Fatal(err)
	}
	if err := rel.AddGroup(extra); err != nil {
		t.Fatal(err)
	}
	padded := storage.BuildGroupPadded(tb, []data.AttrID{2, 5}, 3)
	if err := rel.AddGroup(padded); err != nil {
		t.Fatal(err)
	}
	return tb, rel
}

func TestRoundTrip(t *testing.T) {
	tb, rel := sampleRelation(t)
	var buf bytes.Buffer
	if err := Save(&buf, rel); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Schema.Name != "R" || got.Schema.NumAttrs() != 8 || got.Rows != 500 {
		t.Fatalf("metadata wrong: %v rows=%d", got.Schema, got.Rows)
	}
	if len(got.Segments) != len(rel.Segments) {
		t.Fatalf("segments = %d, want %d", len(got.Segments), len(rel.Segments))
	}
	if len(got.Segments[0].Groups) != len(rel.Segments[0].Groups) {
		t.Fatalf("groups = %d, want %d", len(got.Segments[0].Groups), len(rel.Segments[0].Groups))
	}
	if got.LayoutSignature() != rel.LayoutSignature() {
		t.Fatalf("layout changed: %s vs %s", got.LayoutSignature(), rel.LayoutSignature())
	}
	// Padding survives.
	pg, ok := got.ExactGroup([]data.AttrID{2, 5})
	if !ok || pg.Stride != 5 {
		t.Fatalf("padded group lost its stride: %+v", pg)
	}
	// Every value is intact.
	for r := 0; r < got.Rows; r++ {
		for a := 0; a < 8; a++ {
			g, err := got.GroupFor(a)
			if err != nil {
				t.Fatal(err)
			}
			if g.Value(r, a) != tb.Value(r, a) {
				t.Fatalf("value mismatch at (%d,%d)", r, a)
			}
		}
	}
}

func TestFileRoundTrip(t *testing.T) {
	_, rel := sampleRelation(t)
	path := filepath.Join(t.TempDir(), "rel.h2o")
	if err := SaveFile(path, rel); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.LayoutSignature() != rel.LayoutSignature() {
		t.Fatal("file round trip changed layout")
	}
	if _, err := LoadFile(filepath.Join(t.TempDir(), "missing.h2o")); err == nil {
		t.Fatal("missing file accepted")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	cases := map[string][]byte{
		"empty":       {},
		"short magic": []byte("H2O"),
		"wrong magic": []byte("NOTASNAP________________"),
	}
	for name, b := range cases {
		if _, err := Load(bytes.NewReader(b)); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestLoadDetectsCorruption(t *testing.T) {
	_, rel := sampleRelation(t)
	var buf bytes.Buffer
	if err := Save(&buf, rel); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	// Flip one data byte in the middle: the digest must catch it.
	corrupt := append([]byte(nil), raw...)
	corrupt[len(corrupt)/2] ^= 0xFF
	if _, err := Load(bytes.NewReader(corrupt)); err == nil {
		t.Fatal("bit flip went undetected")
	} else if !strings.Contains(err.Error(), "persist:") {
		t.Fatalf("unexpected error: %v", err)
	}

	// Truncation must fail cleanly.
	if _, err := Load(bytes.NewReader(raw[:len(raw)-9])); err == nil {
		t.Fatal("truncated snapshot accepted")
	}
	if _, err := Load(bytes.NewReader(raw[:40])); err == nil {
		t.Fatal("header-only snapshot accepted")
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	_, rel := sampleRelation(t)
	var a, b bytes.Buffer
	if err := Save(&a, rel); err != nil {
		t.Fatal(err)
	}
	if err := Save(&b, rel); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Fatal("snapshots of the same relation differ")
	}
}
