package persist

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"h2o/internal/data"
	"h2o/internal/storage"
)

func segStoreFixture(t *testing.T) (*SegmentStore, *storage.Relation) {
	t.Helper()
	st, err := NewSegmentStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	tb := data.Generate(data.SyntheticSchema("R", 4), 1000, 11)
	return st, storage.BuildColumnMajorSeg(tb, 100)
}

func TestSegmentStoreRoundTrip(t *testing.T) {
	st, rel := segStoreFixture(t)
	seg := rel.Segments[2]
	var sums []uint64
	for _, g := range seg.Groups {
		sums = append(sums, storage.GroupChecksum(g))
	}

	if err := st.WriteSegment("r-seg2", seg); err != nil {
		t.Fatal(err)
	}
	if !seg.Unload() {
		t.Fatal("unload failed")
	}
	// V2 faults install the encoded form; Acquire decodes back to flat.
	rel.SetLoader(func(s *storage.Segment) error { return st.ReadSegment("r-seg2", s) })
	faulted, err := seg.Acquire()
	if err != nil {
		t.Fatal(err)
	}
	if !faulted {
		t.Fatal("read did not count as a fault")
	}
	defer seg.Release()
	for gi, g := range seg.Groups {
		if storage.GroupChecksum(g) != sums[gi] {
			t.Fatalf("group %d content changed across spill round trip", gi)
		}
	}
}

// TestSegmentStoreLegacyV1Readable proves spill directories written by the
// flat H2OSEG01 format still fault in correctly.
func TestSegmentStoreLegacyV1Readable(t *testing.T) {
	st, rel := segStoreFixture(t)
	seg := rel.Segments[2]
	var sums []uint64
	for _, g := range seg.Groups {
		sums = append(sums, storage.GroupChecksum(g))
	}
	if err := writeSegmentV1(st, "legacy", seg); err != nil {
		t.Fatal(err)
	}
	if !seg.Unload() {
		t.Fatal("unload failed")
	}
	rel.SetLoader(func(s *storage.Segment) error { return st.ReadSegment("legacy", s) })
	if _, err := seg.Acquire(); err != nil {
		t.Fatal(err)
	}
	defer seg.Release()
	for gi, g := range seg.Groups {
		if storage.GroupChecksum(g) != sums[gi] {
			t.Fatalf("group %d content changed across a legacy V1 round trip", gi)
		}
	}
}

func TestSegmentStoreCorruptFile(t *testing.T) {
	st, rel := segStoreFixture(t)
	seg := rel.Segments[1]
	if err := st.WriteSegment("k", seg); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the data section.
	path := st.Path("k")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xFF
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		t.Fatal(err)
	}
	if !seg.Unload() {
		t.Fatal("unload failed")
	}
	err = st.ReadSegment("k", seg)
	if err == nil {
		t.Fatal("corrupted segment file must fail to load")
	}
	if !strings.Contains(err.Error(), "digest") && !strings.Contains(err.Error(), "persist:") {
		t.Fatalf("want a clean persist error, got %v", err)
	}
	// A failed fault leaves the skeleton untouched (data still nil).
	for _, g := range seg.Groups {
		if g.Data != nil {
			t.Fatal("failed load installed partial data")
		}
	}
}

func TestSegmentStoreTruncatedFile(t *testing.T) {
	st, rel := segStoreFixture(t)
	seg := rel.Segments[1]
	if err := st.WriteSegment("k", seg); err != nil {
		t.Fatal(err)
	}
	path := st.Path("k")
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)/3], 0o644); err != nil {
		t.Fatal(err)
	}
	if !seg.Unload() {
		t.Fatal("unload failed")
	}
	if err := st.ReadSegment("k", seg); err == nil {
		t.Fatal("truncated segment file must fail to load")
	}
}

func TestSegmentStoreStaleVersion(t *testing.T) {
	st, rel := segStoreFixture(t)
	seg := rel.Segments[1]
	if err := st.WriteSegment("k", seg); err != nil {
		t.Fatal(err)
	}
	// Mutate the segment after the spill was written: the file is stale.
	g, err := storage.StitchSeg(seg, []data.AttrID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := seg.AddGroup(g); err != nil {
		t.Fatal(err)
	}
	if err := st.ReadSegment("k", seg); err == nil || !strings.Contains(err.Error(), "stale") {
		t.Fatalf("want stale-version error, got %v", err)
	}
}

func TestSegmentStoreWriteIsAtomic(t *testing.T) {
	st, rel := segStoreFixture(t)
	seg := rel.Segments[0]
	if err := st.WriteSegment("k", seg); err != nil {
		t.Fatal(err)
	}
	// No temporary file may survive a successful write.
	matches, err := filepath.Glob(filepath.Join(st.Dir(), "*.tmp"))
	if err != nil {
		t.Fatal(err)
	}
	if len(matches) != 0 {
		t.Fatalf("temporary files left behind: %v", matches)
	}
}

func TestSegmentStoreRemove(t *testing.T) {
	st, rel := segStoreFixture(t)
	if err := st.WriteSegment("k", rel.Segments[0]); err != nil {
		t.Fatal(err)
	}
	if err := st.Remove("k"); err != nil {
		t.Fatal(err)
	}
	if err := st.Remove("k"); err != nil {
		t.Fatalf("removing a missing file must be a no-op, got %v", err)
	}
}

// TestSaveFileDurable covers the persist.SaveFile hardening: the snapshot
// lands atomically (no .tmp residue) and survives a LoadFile round trip.
func TestSaveFileDurable(t *testing.T) {
	tb := data.Generate(data.SyntheticSchema("R", 3), 500, 5)
	rel := storage.BuildColumnMajorSeg(tb, 100)
	dir := t.TempDir()
	path := filepath.Join(dir, "snap.h2o")
	if err := SaveFile(path, rel); err != nil {
		t.Fatal(err)
	}
	if matches, _ := filepath.Glob(filepath.Join(dir, "*.tmp")); len(matches) != 0 {
		t.Fatalf("temporary files left behind: %v", matches)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Rows != rel.Rows {
		t.Fatalf("rows %d != %d", got.Rows, rel.Rows)
	}
}
