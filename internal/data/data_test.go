package data

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
)

func TestNewSchemaRejectsDuplicates(t *testing.T) {
	if _, err := NewSchema("r", []string{"a", "b", "a"}); err == nil {
		t.Fatal("expected error for duplicate attribute names")
	}
}

func TestSchemaLookup(t *testing.T) {
	s := SyntheticSchema("r", 5)
	if s.NumAttrs() != 5 {
		t.Fatalf("NumAttrs = %d, want 5", s.NumAttrs())
	}
	id, err := s.AttrIndex("a3")
	if err != nil || id != 3 {
		t.Fatalf("AttrIndex(a3) = %d, %v; want 3, nil", id, err)
	}
	if _, err := s.AttrIndex("zz"); err == nil {
		t.Fatal("expected error for unknown attribute")
	}
	if s.AttrName(2) != "a2" {
		t.Fatalf("AttrName(2) = %q, want a2", s.AttrName(2))
	}
}

func TestValidAttrs(t *testing.T) {
	s := SyntheticSchema("r", 3)
	if !s.ValidAttrs([]AttrID{0, 2}) {
		t.Fatal("ValidAttrs rejected in-range ids")
	}
	if s.ValidAttrs([]AttrID{3}) || s.ValidAttrs([]AttrID{-1}) {
		t.Fatal("ValidAttrs accepted out-of-range id")
	}
}

func TestSortedUnique(t *testing.T) {
	got := SortedUnique([]AttrID{5, 1, 5, 3, 1})
	want := []AttrID{1, 3, 5}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("SortedUnique = %v, want %v", got, want)
	}
	if SortedUnique(nil) != nil {
		t.Fatal("SortedUnique(nil) should be nil")
	}
	// Input must not be mutated.
	in := []AttrID{3, 1, 2}
	SortedUnique(in)
	if !reflect.DeepEqual(in, []AttrID{3, 1, 2}) {
		t.Fatalf("SortedUnique mutated its input: %v", in)
	}
}

func TestSortedUniqueProperty(t *testing.T) {
	f := func(in []uint8) bool {
		attrs := make([]AttrID, len(in))
		for i, v := range in {
			attrs[i] = AttrID(v)
		}
		out := SortedUnique(attrs)
		if !sort.IntsAreSorted(out) {
			return false
		}
		seen := map[AttrID]bool{}
		for _, a := range out {
			if seen[a] {
				return false
			}
			seen[a] = true
		}
		for _, a := range attrs {
			if !seen[a] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSetOperations(t *testing.T) {
	a := []AttrID{1, 3, 5, 7}
	b := []AttrID{3, 4, 5}
	if got := Intersect(a, b); !reflect.DeepEqual(got, []AttrID{3, 5}) {
		t.Fatalf("Intersect = %v", got)
	}
	if got := Union(a, b); !reflect.DeepEqual(got, []AttrID{1, 3, 4, 5, 7}) {
		t.Fatalf("Union = %v", got)
	}
	if !ContainsAll(a, []AttrID{1, 7}) {
		t.Fatal("ContainsAll false negative")
	}
	if ContainsAll(a, []AttrID{1, 2}) {
		t.Fatal("ContainsAll false positive")
	}
	if !ContainsAll(a, nil) {
		t.Fatal("every set contains the empty set")
	}
}

func TestSetOperationsProperty(t *testing.T) {
	f := func(xs, ys []uint8) bool {
		a := SortedUnique(toAttrs(xs))
		b := SortedUnique(toAttrs(ys))
		u := Union(a, b)
		i := Intersect(a, b)
		if !sort.IntsAreSorted(u) || !sort.IntsAreSorted(i) {
			return false
		}
		// |A| + |B| = |A∪B| + |A∩B|
		if len(a)+len(b) != len(u)+len(i) {
			return false
		}
		return ContainsAll(u, a) && ContainsAll(u, b) &&
			ContainsAll(a, i) && ContainsAll(b, i)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateDeterministicAndInRange(t *testing.T) {
	s := SyntheticSchema("r", 4)
	t1 := Generate(s, 1000, 42)
	t2 := Generate(s, 1000, 42)
	for a := 0; a < 4; a++ {
		if !reflect.DeepEqual(t1.Cols[a], t2.Cols[a]) {
			t.Fatalf("generation not deterministic for attribute %d", a)
		}
		for r, v := range t1.Cols[a] {
			if v < ValueLo || v >= ValueHi {
				t.Fatalf("value out of range at (%d,%d): %d", r, a, v)
			}
		}
	}
	t3 := Generate(s, 1000, 43)
	if reflect.DeepEqual(t1.Cols[0], t3.Cols[0]) {
		t.Fatal("different seeds produced identical data")
	}
}

func TestGenerateSelectiveDial(t *testing.T) {
	s := SyntheticSchema("r", 3)
	rows := 10_000
	tb := GenerateSelective(s, rows, 7)
	for _, f := range []float64{0, 0.01, 0.1, 0.4, 1.0} {
		cut := SelectivityCut(rows, f)
		n := 0
		for _, v := range tb.Cols[0] {
			if v < cut {
				n++
			}
		}
		want := int(f * float64(rows))
		if n != want {
			t.Fatalf("selectivity %.2f: got %d qualifying, want %d", f, n, want)
		}
	}
	// Other columns remain uniform in range.
	for _, v := range tb.Cols[1] {
		if v < ValueLo || v >= ValueHi {
			t.Fatalf("non-dial column out of range: %d", v)
		}
	}
}

func TestSelectivityCutClamps(t *testing.T) {
	if SelectivityCut(100, -0.5) != 0 {
		t.Fatal("negative fraction should clamp to 0")
	}
	if SelectivityCut(100, 2.0) != 100 {
		t.Fatal("fraction > 1 should clamp to rows")
	}
}

func TestTableValue(t *testing.T) {
	s := SyntheticSchema("r", 2)
	tb := Generate(s, 10, 1)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 20; i++ {
		r, a := rng.Intn(10), rng.Intn(2)
		if tb.Value(r, a) != tb.Cols[a][r] {
			t.Fatal("Value accessor disagrees with Cols")
		}
	}
}

func toAttrs(in []uint8) []AttrID {
	out := make([]AttrID, len(in))
	for i, v := range in {
		out[i] = AttrID(v)
	}
	return out
}
