package data

import (
	"bytes"
	"strings"
	"testing"
)

func TestReadCSV(t *testing.T) {
	src := "ts, bytes ,errors\n1,100,0\n2,250,1\n3,-50,0\n"
	tb, err := ReadCSV(strings.NewReader(src), "flows")
	if err != nil {
		t.Fatal(err)
	}
	if tb.Schema.Name != "flows" || tb.Schema.NumAttrs() != 3 || tb.Rows != 3 {
		t.Fatalf("shape: %v rows=%d", tb.Schema.Attrs, tb.Rows)
	}
	if tb.Schema.Attrs[1] != "bytes" {
		t.Fatalf("header not trimmed: %q", tb.Schema.Attrs[1])
	}
	if tb.Value(1, 1) != 250 || tb.Value(2, 1) != -50 {
		t.Fatal("values wrong")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":          "",
		"dup header":     "a,a\n1,2\n",
		"non-integer":    "a,b\n1,x\n",
		"ragged row":     "a,b\n1\n",
		"float rejected": "a\n1.5\n",
	}
	for name, src := range cases {
		if _, err := ReadCSV(strings.NewReader(src), "t"); err == nil {
			t.Errorf("%s accepted", name)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	orig := Generate(SyntheticSchema("r", 4), 200, 9)
	var buf bytes.Buffer
	if err := WriteCSV(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadCSV(&buf, "r")
	if err != nil {
		t.Fatal(err)
	}
	if back.Rows != orig.Rows {
		t.Fatalf("rows = %d", back.Rows)
	}
	for a := 0; a < 4; a++ {
		for r := 0; r < orig.Rows; r++ {
			if back.Value(r, a) != orig.Value(r, a) {
				t.Fatalf("round trip changed (%d,%d)", r, a)
			}
		}
	}
}
