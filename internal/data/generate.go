package data

import "math/rand"

// ValueLo and ValueHi bound the synthetic attribute domain used in the
// paper's micro-benchmarks: integers uniformly distributed in [-1e9, 1e9).
const (
	ValueLo Value = -1_000_000_000
	ValueHi Value = 1_000_000_000
)

// Table is the generator's in-memory source of truth: column-major attribute
// vectors from which any physical layout can be built. It is *not* a physical
// layout itself; storage layouts copy from it.
type Table struct {
	Schema *Schema
	Rows   int
	Cols   [][]Value // Cols[a][r] = value of attribute a in row r
}

// Generate builds a synthetic table with rows tuples over schema, values
// uniform in [ValueLo, ValueHi), deterministically from seed. This mirrors
// the relation generators used in §2.2 and §4 of the paper.
func Generate(schema *Schema, rows int, seed int64) *Table {
	rng := rand.New(rand.NewSource(seed))
	n := schema.NumAttrs()
	cols := make([][]Value, n)
	span := ValueHi - ValueLo
	for a := 0; a < n; a++ {
		col := make([]Value, rows)
		for r := range col {
			col[r] = ValueLo + rng.Int63n(span)
		}
		cols[a] = col
	}
	return &Table{Schema: schema, Rows: rows, Cols: cols}
}

// GenerateSelective builds a table where attribute 0 is a monotonically
// shuffled "selectivity dial": predicates of the form a0 < SelectivityCut(f)
// qualify exactly fraction f of the tuples (up to rounding). The remaining
// attributes are uniform as in Generate. Experiment harnesses use this to fix
// selectivity precisely, as the paper does ("we generate the filter
// conditions so as the selectivity remains the same for all queries").
func GenerateSelective(schema *Schema, rows int, seed int64) *Table {
	t := Generate(schema, rows, seed)
	rng := rand.New(rand.NewSource(seed ^ 0x5eed))
	dial := t.Cols[0]
	for r := range dial {
		dial[r] = Value(r)
	}
	rng.Shuffle(rows, func(i, j int) { dial[i], dial[j] = dial[j], dial[i] })
	return t
}

// SelectivityCut returns the predicate constant v such that "a0 < v" over a
// GenerateSelective table with rows tuples qualifies fraction f of them.
func SelectivityCut(rows int, f float64) Value {
	if f < 0 {
		f = 0
	}
	if f > 1 {
		f = 1
	}
	return Value(f * float64(rows))
}

// GenerateTimeSeries builds a table whose attribute 0 is a monotonically
// increasing "timestamp" (its value equals its row position) while the
// remaining attributes are uniform as in Generate. Append-ordered data like
// this is the regime where block-skipping summaries (zone maps) pay off:
// range predicates on the ordered attribute touch only a contiguous run of
// blocks.
func GenerateTimeSeries(schema *Schema, rows int, seed int64) *Table {
	t := Generate(schema, rows, seed)
	for r := range t.Cols[0] {
		t.Cols[0][r] = Value(r)
	}
	return t
}

// Value returns the value of attribute a in row r.
func (t *Table) Value(r int, a AttrID) Value { return t.Cols[a][r] }
