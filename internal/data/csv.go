package data

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadCSV loads a table from CSV: the first record is the header (attribute
// names), every following record is one tuple of integer values. This is
// the loading path for real datasets; the engine's attributes are fixed-
// width int64, so non-integer cells are rejected.
func ReadCSV(r io.Reader, tableName string) (*Table, error) {
	cr := csv.NewReader(r)
	cr.ReuseRecord = true
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("data: reading CSV header: %w", err)
	}
	attrs := make([]string, len(header))
	for i, h := range header {
		attrs[i] = strings.TrimSpace(h)
	}
	schema, err := NewSchema(tableName, attrs)
	if err != nil {
		return nil, err
	}
	cols := make([][]Value, len(attrs))
	rows := 0
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("data: reading CSV row %d: %w", rows+2, err)
		}
		for i, cell := range rec {
			v, err := strconv.ParseInt(strings.TrimSpace(cell), 10, 64)
			if err != nil {
				return nil, fmt.Errorf("data: row %d column %q: %q is not an integer", rows+2, attrs[i], cell)
			}
			cols[i] = append(cols[i], v)
		}
		rows++
	}
	return &Table{Schema: schema, Rows: rows, Cols: cols}, nil
}

// WriteCSV writes a table as CSV (header plus one record per tuple), the
// inverse of ReadCSV.
func WriteCSV(w io.Writer, t *Table) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Schema.Attrs); err != nil {
		return err
	}
	rec := make([]string, t.Schema.NumAttrs())
	for r := 0; r < t.Rows; r++ {
		for a := range rec {
			rec[a] = strconv.FormatInt(t.Cols[a][r], 10)
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}
