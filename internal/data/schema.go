// Package data defines the basic value, schema and relation metadata types
// shared by every layer of the H2O engine, together with the deterministic
// synthetic data generators used throughout the paper's evaluation
// (integer attributes uniformly distributed in [-1e9, 1e9)).
package data

import (
	"fmt"
	"sort"
)

// Value is the single attribute value type supported by the engine.
// The paper evaluates exclusively on fixed-width integer attributes
// ("each tuple contains ... attributes with integers randomly distributed");
// fixed-width int64 keeps every layout a flat slice with explicit strides.
type Value = int64

// AttrID identifies an attribute by its position in the base relation schema.
type AttrID = int

// Schema describes the attributes of a relation.
type Schema struct {
	Name  string
	Attrs []string

	byName map[string]AttrID
}

// NewSchema builds a schema with the given relation and attribute names.
// Attribute names must be unique.
func NewSchema(name string, attrs []string) (*Schema, error) {
	s := &Schema{Name: name, Attrs: attrs, byName: make(map[string]AttrID, len(attrs))}
	for i, a := range attrs {
		if _, dup := s.byName[a]; dup {
			return nil, fmt.Errorf("data: duplicate attribute %q in schema %q", a, name)
		}
		s.byName[a] = i
	}
	return s, nil
}

// SyntheticSchema builds a schema named name with n attributes a0..a{n-1},
// the shape used by every micro-benchmark in the paper.
func SyntheticSchema(name string, n int) *Schema {
	attrs := make([]string, n)
	for i := range attrs {
		attrs[i] = fmt.Sprintf("a%d", i)
	}
	s, err := NewSchema(name, attrs)
	if err != nil {
		panic(err) // unreachable: generated names are unique
	}
	return s
}

// NumAttrs returns the number of attributes in the schema.
func (s *Schema) NumAttrs() int { return len(s.Attrs) }

// AttrIndex returns the position of the named attribute, or an error if the
// attribute does not exist.
func (s *Schema) AttrIndex(name string) (AttrID, error) {
	id, ok := s.byName[name]
	if !ok {
		return 0, fmt.Errorf("data: relation %q has no attribute %q", s.Name, name)
	}
	return id, nil
}

// AttrName returns the name of attribute id. It panics if id is out of range,
// mirroring slice indexing semantics.
func (s *Schema) AttrName(id AttrID) string { return s.Attrs[id] }

// ValidAttrs reports whether every id in attrs is a valid attribute position.
func (s *Schema) ValidAttrs(attrs []AttrID) bool {
	for _, a := range attrs {
		if a < 0 || a >= len(s.Attrs) {
			return false
		}
	}
	return true
}

// SortedUnique returns a sorted copy of attrs with duplicates removed.
// Layout code normalizes attribute sets this way so that two groups covering
// the same attributes compare equal.
func SortedUnique(attrs []AttrID) []AttrID {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]AttrID, len(attrs))
	copy(out, attrs)
	sort.Ints(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[i-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// ContainsAll reports whether sorted set super contains every element of the
// sorted set sub. Both arguments must be sorted ascending.
func ContainsAll(super, sub []AttrID) bool {
	i := 0
	for _, want := range sub {
		for i < len(super) && super[i] < want {
			i++
		}
		if i >= len(super) || super[i] != want {
			return false
		}
	}
	return true
}

// Intersect returns the intersection of two sorted attribute sets.
func Intersect(a, b []AttrID) []AttrID {
	var out []AttrID
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			i++
		case a[i] > b[j]:
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	return out
}

// Union returns the union of two sorted attribute sets, sorted.
func Union(a, b []AttrID) []AttrID {
	out := make([]AttrID, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	out = append(out, b[j:]...)
	return out
}
