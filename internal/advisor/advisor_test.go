package advisor

import (
	"reflect"
	"testing"

	"h2o/internal/costmodel"
	"h2o/internal/data"
	"h2o/internal/query"
	"h2o/internal/storage"
)

func window(infos ...query.Info) []query.Info { return infos }

func info(sel, where []data.AttrID) query.Info {
	return query.Info{Select: data.SortedUnique(sel), Where: data.SortedUnique(where)}
}

func columnRel(t *testing.T, attrs, rows int) *storage.Relation {
	t.Helper()
	tb := data.Generate(data.SyntheticSchema("R", attrs), rows, 5)
	return storage.BuildColumnMajor(tb)
}

func TestProposeGroupsForRepeatedPattern(t *testing.T) {
	rel := columnRel(t, 50, 100_000)
	m := costmodel.New(costmodel.Default())
	// Fifteen queries all touching {3,7,11,19}: the advisor must propose a
	// group for exactly that set.
	hot := []data.AttrID{3, 7, 11, 19}
	var w []query.Info
	for i := 0; i < 15; i++ {
		w = append(w, info(hot, nil))
	}
	props := Propose(rel, w, m, DefaultConfig())
	if len(props) == 0 {
		t.Fatal("expected at least one proposal")
	}
	if !reflect.DeepEqual(props[0].Attrs, hot) {
		t.Fatalf("top proposal = %v, want %v", props[0].Attrs, hot)
	}
	if props[0].Gain <= 0 || props[0].TransformBytes <= 0 {
		t.Fatalf("proposal poorly formed: %+v", props[0])
	}
}

func TestProposeNothingOnEmptyWindow(t *testing.T) {
	rel := columnRel(t, 10, 1000)
	m := costmodel.New(costmodel.Default())
	if props := Propose(rel, nil, m, DefaultConfig()); props != nil {
		t.Fatalf("empty window proposed %v", props)
	}
}

func TestProposeSkipsExistingLayout(t *testing.T) {
	tb := data.Generate(data.SyntheticSchema("R", 20), 50_000, 6)
	hot := []data.AttrID{1, 2, 3}
	rel, err := storage.BuildPartitioned(tb, [][]data.AttrID{hot, {0, 4, 5, 6, 7, 8, 9, 10, 11, 12, 13, 14, 15, 16, 17, 18, 19}})
	if err != nil {
		t.Fatal(err)
	}
	m := costmodel.New(costmodel.Default())
	var w []query.Info
	for i := 0; i < 10; i++ {
		w = append(w, info(hot, nil))
	}
	for _, p := range Propose(rel, w, m, DefaultConfig()) {
		if reflect.DeepEqual(p.Attrs, hot) {
			t.Fatal("advisor proposed a group that already exists")
		}
	}
}

func TestProposeSeparatesSelectAndWhere(t *testing.T) {
	rel := columnRel(t, 60, 200_000)
	m := costmodel.New(costmodel.Default())
	sel := []data.AttrID{10, 11, 12, 13, 14, 15}
	where := []data.AttrID{40, 41}
	var w []query.Info
	for i := 0; i < 20; i++ {
		w = append(w, info(sel, where))
	}
	props := Propose(rel, w, m, DefaultConfig())
	if len(props) == 0 {
		t.Fatal("no proposals")
	}
	// Candidate generation must have considered the select set, the where
	// set and their union; the top proposals should be drawn from these.
	valid := map[string]bool{
		"[10 11 12 13 14 15]":       true,
		"[40 41]":                   true,
		"[10 11 12 13 14 15 40 41]": true,
	}
	for _, p := range props {
		key := ""
		key = sprint(p.Attrs)
		if !valid[key] {
			t.Fatalf("unexpected proposal %v", p.Attrs)
		}
	}
}

func sprint(attrs []data.AttrID) string {
	s := "["
	for i, a := range attrs {
		if i > 0 {
			s += " "
		}
		s += itoa(a)
	}
	return s + "]"
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}

func TestProposeRespectsMaxProposals(t *testing.T) {
	rel := columnRel(t, 80, 100_000)
	m := costmodel.New(costmodel.Default())
	var w []query.Info
	// Four disjoint hot sets.
	for i := 0; i < 5; i++ {
		w = append(w, info([]data.AttrID{0, 1, 2, 3, 4}, nil))
		w = append(w, info([]data.AttrID{10, 11, 12, 13}, nil))
		w = append(w, info([]data.AttrID{20, 21, 22}, nil))
		w = append(w, info([]data.AttrID{30, 31, 32, 33, 34, 35}, nil))
	}
	cfg := DefaultConfig()
	cfg.MaxProposals = 2
	props := Propose(rel, w, m, cfg)
	if len(props) > 2 {
		t.Fatalf("got %d proposals, cap is 2", len(props))
	}
}

func TestProposalsSortedByGain(t *testing.T) {
	rel := columnRel(t, 80, 100_000)
	m := costmodel.New(costmodel.Default())
	var w []query.Info
	// Wide hot set queried often, small set queried rarely.
	for i := 0; i < 18; i++ {
		w = append(w, info([]data.AttrID{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, nil))
	}
	w = append(w, info([]data.AttrID{70, 71}, nil))
	props := Propose(rel, w, m, DefaultConfig())
	for i := 1; i < len(props); i++ {
		if props[i].Gain > props[i-1].Gain {
			t.Fatal("proposals not sorted by decreasing gain")
		}
	}
}

func TestAutoPartGroupsCoAccessedAttrs(t *testing.T) {
	m := costmodel.New(costmodel.Default())
	// Workload: queries over {0,1,2} and queries over {3,4}; attribute 5
	// never accessed.
	var w []query.Info
	for i := 0; i < 10; i++ {
		w = append(w, info([]data.AttrID{0, 1, 2}, nil))
		w = append(w, info([]data.AttrID{3, 4}, nil))
	}
	parts := AutoPart(6, 100_000, w, m)
	// Every attribute appears exactly once (a partition, not overlapping
	// groups).
	seen := map[data.AttrID]int{}
	for _, p := range parts {
		for _, a := range p {
			seen[a]++
		}
	}
	for a := 0; a < 6; a++ {
		if seen[a] != 1 {
			t.Fatalf("attribute %d appears %d times", a, seen[a])
		}
	}
	// Co-accessed attributes must share a fragment.
	frag := func(a data.AttrID) int {
		for i, p := range parts {
			for _, x := range p {
				if x == a {
					return i
				}
			}
		}
		return -1
	}
	if frag(0) != frag(1) || frag(1) != frag(2) {
		t.Fatalf("attributes 0,1,2 split across fragments: %v", parts)
	}
	if frag(3) != frag(4) {
		t.Fatalf("attributes 3,4 split: %v", parts)
	}
	if frag(0) == frag(3) {
		t.Fatalf("disjoint access sets merged: %v", parts)
	}
}

func TestAutoPartHandlesEmptyWorkload(t *testing.T) {
	m := costmodel.New(costmodel.Default())
	parts := AutoPart(4, 1000, nil, m)
	seen := 0
	for _, p := range parts {
		seen += len(p)
	}
	if seen != 4 {
		t.Fatalf("partition does not cover schema: %v", parts)
	}
}

func TestSubtract(t *testing.T) {
	got := subtract([]data.AttrID{1, 2, 3, 4}, []data.AttrID{2, 4})
	if !reflect.DeepEqual(got, []data.AttrID{1, 3}) {
		t.Fatalf("subtract = %v", got)
	}
	if subtract(nil, []data.AttrID{1}) != nil {
		t.Fatal("subtract from empty should be nil")
	}
}
