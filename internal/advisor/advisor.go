// Package advisor implements H2O's layout adaptation algorithm (paper §3.2):
// from the monitoring window's recent queries it derives candidate column
// groups — starting from the narrowest per-query attribute sets and
// progressively merging them — and evaluates configurations with
//
//	cost(W, Ci) = Σ_j qj(Ci) + T(Ci−1, Ci)                  (Eq. 1)
//
// using the cache-aware query cost model for qj and the bulk-copy model for
// the transformation term T. The package also provides an AutoPart-style
// offline vertical-partitioning baseline (Papadomanolakis & Ailamaki,
// SSDBM'04), which the paper extends and compares against in Figure 8.
package advisor

import (
	"fmt"
	"sort"

	"h2o/internal/costmodel"
	"h2o/internal/data"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// Config tunes the advisor.
type Config struct {
	// MaxIterations bounds the merge loop ("the generation and selection
	// phases are repeated multiple times until no further improvement").
	MaxIterations int
	// MaxProposals caps how many new groups one adaptation phase may
	// propose; the paper's §4.1 run proposes 4.
	MaxProposals int
	// MinGainRatio is the minimum relative workload-cost improvement a
	// proposal must deliver (after paying its transformation cost over one
	// window) to be emitted. Guards against oscillation on marginal wins.
	MinGainRatio float64
	// EstSelectivity is the planning selectivity for windowed queries with
	// predicates.
	EstSelectivity float64
}

// DefaultConfig mirrors the paper's behavior.
func DefaultConfig() Config {
	return Config{
		MaxIterations:  8,
		MaxProposals:   4,
		MinGainRatio:   0.02,
		EstSelectivity: 0.5,
	}
}

// Proposal is one candidate column group the adaptation phase recommends.
// Proposals are lazy: the Data Layout Manager materializes one only when a
// query arrives that benefits from it (paper §3.2, "H2O follows a lazy
// approach to generate new data layouts").
type Proposal struct {
	Attrs []data.AttrID // sorted attribute set of the group
	// Gain is the expected reduction in window workload cost once the group
	// exists (excluding the transformation cost).
	Gain costmodel.Seconds
	// TransformBytes is the data volume reorganizing every segment that
	// lacks the group would move — the whole-relation upper bound. The
	// engine re-prices the hot subset per segment at trigger time.
	TransformBytes int64
	// SegmentBytes is the per-segment breakdown of TransformBytes (zero for
	// segments that already carry the group), letting the engine decide
	// "adapt the 3 hot segments now, leave the other 97" without
	// re-deriving the covering sets.
	SegmentBytes []int64
}

// String describes the proposal.
func (p Proposal) String() string {
	return fmt.Sprintf("group%v gain=%.3gs move=%dB", p.Attrs, float64(p.Gain), p.TransformBytes)
}

// Propose runs one adaptation phase: it evaluates the window's queries
// against the relation's current groups, generates candidate groups from the
// queries' select- and where-clause attribute sets, merges them while Eq. 1
// improves, and returns the accepted new groups ordered by decreasing gain.
func Propose(rel *storage.Relation, window []query.Info, m *costmodel.Model, cfg Config) []Proposal {
	if len(window) == 0 {
		return nil
	}
	if cfg.MaxIterations <= 0 {
		cfg.MaxIterations = DefaultConfig().MaxIterations
	}
	if cfg.MaxProposals <= 0 {
		cfg.MaxProposals = DefaultConfig().MaxProposals
	}
	if cfg.EstSelectivity <= 0 {
		cfg.EstSelectivity = DefaultConfig().EstSelectivity
	}

	ev := newEvaluator(rel, window, m, cfg)

	// Initial candidate pool: the narrowest groups — per-query select sets
	// and where sets, kept separate so predicate groups can serve
	// selection-vector plans (paper: "H2O considers attributes accessed
	// together in the select and the where clause as different potential
	// groups").
	pool := newCandidateSet()
	for _, info := range window {
		pool.add(info.Select)
		pool.add(info.Where)
		pool.add(info.All())
	}

	config := ev.currentSets()
	baseCost := ev.workloadCost(config)

	var accepted []Proposal
	for iter := 0; iter < cfg.MaxIterations && len(accepted) < cfg.MaxProposals; iter++ {
		// Selection phase: pick the candidate whose addition minimizes
		// Eq. 1.
		var best *Proposal
		var bestCand []data.AttrID
		for _, cand := range pool.items() {
			if len(cand) == 0 || ev.redundant(config, cand) {
				continue
			}
			withCost := ev.workloadCost(append(config, cand))
			gain := baseCost - withCost
			segBytes, moveBytes := ev.transformBytes(cand)
			net := gain - m.TransformCost(moveBytes)
			if net <= 0 || float64(gain) < cfg.MinGainRatio*float64(baseCost) {
				continue
			}
			if best == nil || gain > best.Gain {
				best = &Proposal{Attrs: cand, Gain: gain, TransformBytes: moveBytes, SegmentBytes: segBytes}
				bestCand = cand
			}
		}
		if best == nil {
			break
		}
		accepted = append(accepted, *best)
		config = append(config, bestCand)
		baseCost = ev.workloadCost(config)

		// Generation phase: merge the accepted group with the remaining
		// narrow candidates to form wider groups for the next iteration
		// ("new groups are generated by merging narrow groups with groups
		// generated in previous iterations").
		for _, other := range pool.items() {
			if len(data.Intersect(bestCand, other)) > 0 {
				pool.add(data.Union(bestCand, other))
			}
		}
	}

	sort.Slice(accepted, func(i, j int) bool { return accepted[i].Gain > accepted[j].Gain })
	return accepted
}

// evaluator computes Eq. 1 terms against virtual configurations: attribute
// sets rather than materialized groups, so candidate evaluation never copies
// data.
type evaluator struct {
	rel    *storage.Relation
	window []query.Info
	m      *costmodel.Model
	cfg    Config
}

func newEvaluator(rel *storage.Relation, window []query.Info, m *costmodel.Model, cfg Config) *evaluator {
	return &evaluator{rel: rel, window: window, m: m, cfg: cfg}
}

// currentSets snapshots the layout common to every segment as attribute
// sets. Groups that exist only in some (hot) segments are deliberately not
// counted as existing, so a proposal covering them stays alive for the
// segments that still lack them.
func (ev *evaluator) currentSets() [][]data.AttrID {
	return ev.rel.CommonLayout()
}

// redundant reports whether the configuration already contains cand exactly.
func (ev *evaluator) redundant(config [][]data.AttrID, cand []data.AttrID) bool {
	for _, have := range config {
		if len(have) == len(cand) && data.ContainsAll(have, cand) {
			return true
		}
	}
	return false
}

// workloadCost sums the estimated execution cost of every window query under
// the given configuration (the Σ qj(Ci) term).
func (ev *evaluator) workloadCost(config [][]data.AttrID) costmodel.Seconds {
	var total costmodel.Seconds
	for _, info := range ev.window {
		total += ev.queryCost(info, config)
	}
	return total
}

// queryCost estimates one query's cost under a virtual configuration: greedy
// set cover of the query's attributes by configuration groups, each covered
// group costed as one Eq. 2 access.
func (ev *evaluator) queryCost(info query.Info, config [][]data.AttrID) costmodel.Seconds {
	need := info.All()
	sel := ev.cfg.EstSelectivity
	if len(info.Where) == 0 {
		sel = 1
	}
	var accesses []costmodel.GroupAccess
	remaining := append([]data.AttrID(nil), need...)
	for len(remaining) > 0 {
		bestIdx, bestCover := -1, 0
		for i, grp := range config {
			cover := len(data.Intersect(grp, remaining))
			if cover > bestCover || (cover == bestCover && cover > 0 && len(grp) < len(config[bestIdx])) {
				bestIdx, bestCover = i, cover
			}
		}
		if bestIdx < 0 {
			break // uncovered attributes: impossible in practice (base layout covers schema)
		}
		grp := config[bestIdx]
		accesses = append(accesses, costmodel.GroupAccess{
			Stride: len(grp), Width: len(grp), Used: bestCover,
			Rows: ev.rel.Rows, Selectivity: sel,
		})
		remaining = subtract(remaining, grp)
	}
	// Joining overhead: when the query has to stitch attributes from more
	// than one group, every group pays intermediate materialization for
	// tuple reconstruction ("by merging them together H2O reduces the
	// joining overhead of groups"). A single covering group pays none —
	// that is exactly the benefit merging buys.
	if len(accesses) > 1 {
		for i := range accesses {
			accesses[i].IntermediateWords = int(float64(accesses[i].Used*ev.rel.Rows) * sel)
		}
	}
	return ev.m.QueryCost(accesses)
}

// transformBytes estimates the volume a reorganization into attrs moves,
// per segment and in total. Segments already carrying the group cost zero.
func (ev *evaluator) transformBytes(attrs []data.AttrID) ([]int64, int64) {
	segBytes := make([]int64, len(ev.rel.Segments))
	var total int64
	for si, seg := range ev.rel.Segments {
		if _, ok := seg.ExactGroup(attrs); ok {
			continue
		}
		n, err := storage.SegTransformBytes(seg, attrs)
		if err != nil {
			// Uncovered attributes cannot be stitched; price it prohibitively.
			n = int64(seg.Rows) * int64(len(attrs)) * 16
		}
		segBytes[si] = n
		total += n
	}
	return segBytes, total
}

// subtract removes members of b from the sorted set a.
func subtract(a, b []data.AttrID) []data.AttrID {
	var out []data.AttrID
	j := 0
	for _, x := range a {
		for j < len(b) && b[j] < x {
			j++
		}
		if j < len(b) && b[j] == x {
			continue
		}
		out = append(out, x)
	}
	return out
}

// candidateSet deduplicates attribute sets by pattern.
type candidateSet struct {
	seen map[string]bool
	list [][]data.AttrID
}

func newCandidateSet() *candidateSet {
	return &candidateSet{seen: make(map[string]bool)}
}

func (cs *candidateSet) add(attrs []data.AttrID) {
	if len(attrs) == 0 {
		return
	}
	norm := data.SortedUnique(attrs)
	key := fmt.Sprint(norm)
	if cs.seen[key] {
		return
	}
	cs.seen[key] = true
	cs.list = append(cs.list, norm)
}

func (cs *candidateSet) items() [][]data.AttrID {
	return append([][]data.AttrID(nil), cs.list...)
}
