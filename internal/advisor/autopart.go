package advisor

import (
	"h2o/internal/costmodel"
	"h2o/internal/data"
	"h2o/internal/query"
)

// AutoPart is the offline vertical-partitioning baseline of Figure 8, in the
// style of AutoPart [41]: it sees the *whole* workload up front and computes
// one static, non-overlapping partition of the relation's attributes that
// minimizes the workload's scan cost. It never revisits the decision — the
// limitation H2O's per-query adaptation overcomes.
//
// The algorithm is the classic greedy: start from atomic fragments (the
// equivalence classes induced by the queries' attribute sets), then
// repeatedly merge the pair of fragments whose union lowers the workload
// cost the most, until no merge helps. Because Eq. 2's workload cost is
// additive over (query, fragment) terms, the gain of merging a pair is
// computed incrementally; a cached delta matrix keeps the greedy loop
// near-quadratic instead of quartic.
func AutoPart(nAttrs, rows int, workload []query.Info, m *costmodel.Model) [][]data.AttrID {
	// Atomic fragments: attributes partitioned by their exact usage
	// signature across queries — attributes always accessed together land in
	// the same fragment (AutoPart's "atomic fragment" construction).
	sigs := make([]string, nAttrs)
	for qi, info := range workload {
		inQuery := make(map[data.AttrID]bool)
		for _, a := range info.All() {
			inQuery[a] = true
		}
		for a := 0; a < nAttrs; a++ {
			if inQuery[a] {
				sigs[a] += string(rune('A' + qi%64))
			} else {
				sigs[a] += "."
			}
		}
	}
	bySig := map[string][]data.AttrID{}
	var order []string
	for a := 0; a < nAttrs; a++ {
		if _, ok := bySig[sigs[a]]; !ok {
			order = append(order, sigs[a])
		}
		bySig[sigs[a]] = append(bySig[sigs[a]], a)
	}
	parts := make([][]data.AttrID, 0, len(order))
	for _, s := range order {
		parts = append(parts, data.SortedUnique(bySig[s]))
	}

	// term prices one (fragment, query) access: the Eq. 2 contribution of
	// scanning the fragment for the query, plus the reconstruction
	// intermediates the query pays when the fragment serves only part of its
	// attributes.
	term := func(frag []data.AttrID, info query.Info) costmodel.Seconds {
		need := info.All()
		used := len(data.Intersect(frag, need))
		if used == 0 {
			return 0
		}
		sel := 0.5
		if len(info.Where) == 0 {
			sel = 1
		}
		inter := 0
		if used < len(need) {
			inter = int(float64(used*rows) * sel)
		}
		return m.QueryCost([]costmodel.GroupAccess{{
			Stride: len(frag), Width: len(frag), Used: used,
			Rows: rows, Selectivity: sel, IntermediateWords: inter,
		}})
	}

	// partCost[i] = Σ_q term(parts[i], q).
	partCost := func(frag []data.AttrID) costmodel.Seconds {
		var c costmodel.Seconds
		for _, info := range workload {
			c += term(frag, info)
		}
		return c
	}

	costs := make([]costmodel.Seconds, len(parts))
	for i, p := range parts {
		costs[i] = partCost(p)
	}

	// delta(i, j) = cost(union) - cost(i) - cost(j); negative is a win.
	delta := func(i, j int) costmodel.Seconds {
		return partCost(data.Union(parts[i], parts[j])) - costs[i] - costs[j]
	}

	// Cached delta matrix, rebuilt lazily only for rows touching a merge.
	n := len(parts)
	deltas := make([][]costmodel.Seconds, n)
	for i := range deltas {
		deltas[i] = make([]costmodel.Seconds, n)
		for j := i + 1; j < n; j++ {
			deltas[i][j] = delta(i, j)
		}
	}

	alive := make([]bool, n)
	for i := range alive {
		alive[i] = true
	}
	for {
		bestI, bestJ := -1, -1
		var bestD costmodel.Seconds
		for i := 0; i < len(parts); i++ {
			if !alive[i] {
				continue
			}
			for j := i + 1; j < len(parts); j++ {
				if !alive[j] {
					continue
				}
				if d := deltas[i][j]; d < bestD {
					bestD, bestI, bestJ = d, i, j
				}
			}
		}
		if bestI < 0 {
			break
		}
		merged := data.Union(parts[bestI], parts[bestJ])
		alive[bestJ] = false
		parts[bestI] = merged
		costs[bestI] = partCost(merged)
		// Refresh deltas involving the merged fragment.
		for k := 0; k < len(parts); k++ {
			if !alive[k] || k == bestI {
				continue
			}
			lo, hi := bestI, k
			if lo > hi {
				lo, hi = hi, lo
			}
			deltas[lo][hi] = delta(lo, hi)
		}
	}

	var out [][]data.AttrID
	for i, p := range parts {
		if alive[i] {
			out = append(out, p)
		}
	}
	return out
}
