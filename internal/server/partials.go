package server

import (
	"strconv"
	"sync"
	"sync/atomic"

	"h2o/internal/core"
	"h2o/internal/exec"
)

// partialKey addresses a partials payload by (table, normalized query)
// only — deliberately *without* the touch fingerprint. The whole point of
// the payload is to survive fingerprint changes: on an admission miss the
// repair path looks the stale payload up by query identity, diffs its
// segment-version vector against the live relation, and rescans only the
// difference. The encoding reuses the result-cache key's injective shape
// (length-prefixed table, unambiguous remainder).
func partialKey(table, normQuery string) string {
	return strconv.Itoa(len(table)) + ":" + table + ":" + normQuery
}

// pentry is one cached partials payload. The PartialResult and its
// SegPartials are immutable once published: repairs build new payloads via
// exec.Repaired instead of mutating in place, so readers never race
// writers on the states themselves. last is the LRU tick of the most
// recent access, updated atomically on the read path.
type pentry struct {
	p     *exec.PartialResult
	bytes int64
	last  atomic.Uint64
}

// partialCache is the byte-budgeted store of per-segment partial
// aggregates, keyed by partialKey. Unlike the result cache it is bounded
// by *bytes*, not entries — payloads scale with segment count, so an
// entry cap would let a few wide relations blow the budget. A single
// mutex suffices: the cache is only touched on misses of repairable
// queries, each of which just paid (at least) a segment scan.
type partialCache struct {
	mu    sync.Mutex
	items map[string]*pentry
	ix    evictIndex
	bytes int64
	cap   int64
	tick  atomic.Uint64

	evicted atomic.Uint64
}

func newPartialCache(capBytes int64) *partialCache {
	return &partialCache{items: make(map[string]*pentry), cap: capBytes}
}

// get returns the payload cached under key, or nil.
func (c *partialCache) get(key string) *exec.PartialResult {
	c.mu.Lock()
	e := c.items[key]
	c.mu.Unlock()
	if e == nil {
		return nil
	}
	e.last.Store(c.tick.Add(1))
	return e.p
}

// put installs (or replaces) the payload under key, then evicts
// least-recently-used payloads until the byte budget holds. A payload
// larger than the whole budget is not admitted at all — caching it would
// evict everything else for one entry that can never stay.
func (c *partialCache) put(key string, p *exec.PartialResult) {
	b := p.Bytes()
	if b > c.cap {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	old, replaced := c.items[key]
	if replaced {
		c.bytes -= old.bytes
	}
	e := &pentry{p: p, bytes: b}
	e.last.Store(c.tick.Add(1))
	c.items[key] = e
	c.bytes += b
	if !replaced {
		c.ix.push(key, e.last.Load())
	}
	for c.bytes > c.cap {
		victim := c.ix.pop(c.liveTick, key)
		if victim == "" {
			return
		}
		c.bytes -= c.items[victim].bytes
		delete(c.items, victim)
		c.evicted.Add(1)
	}
}

// liveTick is the cache's evictIndex liveness probe; the caller holds mu.
func (c *partialCache) liveTick(key string) (uint64, bool) {
	e, ok := c.items[key]
	if !ok {
		return 0, false
	}
	return e.last.Load(), true
}

// size returns the live entry count and byte total.
func (c *partialCache) size() (entries int, bytes int64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items), c.bytes
}

// mentry is one memoized admission fingerprint.
type mentry struct {
	version uint64
	fp      core.TouchFingerprint
	last    atomic.Uint64
}

// fpMemo memoizes admission-time fingerprints per (table, normalized
// query) at a specific relation version, cutting the O(segments ×
// predicate terms) zone-map walk to an O(1) version compare for hot query
// patterns. Soundness rests on two facts: the fingerprint is a pure
// function of (query, relation state), and relation versions are drawn
// from a process-wide monotone clock and never reused — so an entry is
// exact while the live relation still reports the version it was stored
// at, and a stale entry can never be matched again (its version cannot
// recur, even across table replacement). Invalidation is therefore free:
// any relation-version bump simply stops the entry from matching.
//
// The admission path must read the relation version *before* computing the
// fingerprint it stores: if a mutation lands between the two reads, the
// stored pair is (older version, newer fingerprint) — harmless, because
// the older version can never be observed again. The reverse order would
// store (newer version, older fingerprint) and serve a stale fingerprint.
type fpMemo struct {
	mu    sync.RWMutex
	items map[string]*mentry
	ix    evictIndex
	cap   int
	tick  atomic.Uint64
}

func newFpMemo(capacity int) *fpMemo {
	return &fpMemo{items: make(map[string]*mentry), cap: capacity}
}

// get returns the memoized fingerprint for key if it was stored at exactly
// version.
func (m *fpMemo) get(key string, version uint64) (core.TouchFingerprint, bool) {
	m.mu.RLock()
	e := m.items[key]
	var ver uint64
	var fp core.TouchFingerprint
	if e != nil {
		ver, fp = e.version, e.fp // field reads under the lock: put may update in place
	}
	m.mu.RUnlock()
	if e == nil || ver != version {
		return core.TouchFingerprint{}, false
	}
	e.last.Store(m.tick.Add(1))
	return fp, true
}

// put memoizes fp for key at version, evicting the least-recently-used
// entry past the capacity from the eviction index (O(log cap), as the
// result cache does; eviction only runs on memo misses, which also paid a
// full fingerprint walk).
func (m *fpMemo) put(key string, version uint64, fp core.TouchFingerprint) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if e, ok := m.items[key]; ok {
		e.version, e.fp = version, fp
		e.last.Store(m.tick.Add(1))
		return
	}
	e := &mentry{version: version, fp: fp}
	e.last.Store(m.tick.Add(1))
	m.items[key] = e
	m.ix.push(key, e.last.Load())
	for len(m.items) > m.cap {
		victim := m.ix.pop(m.liveTick, "")
		if victim == "" {
			return
		}
		delete(m.items, victim)
	}
}

// liveTick is the memo's evictIndex liveness probe; the caller holds mu.
func (m *fpMemo) liveTick(key string) (uint64, bool) {
	e, ok := m.items[key]
	if !ok {
		return 0, false
	}
	return e.last.Load(), true
}
