// Package server is the concurrent serving layer on top of the H2O engines:
// it turns the single-process adaptive store into something that can sit
// behind many simultaneous clients.
//
// Three pieces compose:
//
//   - A bounded worker pool. Queries are admitted into a fixed-depth queue
//     and executed by a fixed number of workers, so a burst of clients
//     degrades into queueing latency instead of unbounded goroutine and
//     memory growth. Admission and the wait for a result both honor context
//     cancellation: a client that gives up while its query is still queued
//     costs nothing — the worker skips canceled jobs.
//
//   - A sharded LRU result cache keyed by (table, normalized query text,
//     touch fingerprint). The fingerprint (core.TouchFingerprint) is
//     segment-precise: at admission the backend prunes the query's
//     predicates against each segment's zone maps — no data access, no
//     disk I/O even when segments are spilled, O(segments) atomic version
//     reads — and digests the surviving candidate set together with those
//     segments' versions. A cached entry is addressable exactly while
//     every segment that could contribute rows to the result is unchanged.
//     Invalidation is therefore proportional to what a mutation actually
//     touched: a tail append strands only entries whose queries read the
//     tail — queries pinned to cold segments by their predicates keep
//     hitting — and an incremental reorganization strands only entries
//     over the reorganized segments. There is no explicit eviction pass
//     and no coordination between writers and the cache: stale entries
//     simply stop being addressable and age out of the LRU.
//
//   - Publish-time fingerprint comparison. A worker publishes its result
//     under the fingerprint the execution observed (computed by the engine
//     while it still held the lock the scan ran under). If no relevant
//     mutation landed since admission the two fingerprints coincide and
//     the entry lands under the admission key. If a mutation touched
//     candidate segments mid-flight, the result — a consistent snapshot of
//     the newer state — is republished under the execution-time key, where
//     the very next identical query finds it (Stats.Republished). This is
//     the vector-comparison generalization of the old whole-relation
//     version re-check, which discarded the result on any version bump;
//     only results with no fingerprint at all (Stats.Uncacheable) go
//     unpublished.
//
// What still invalidates globally: mutations that advance every candidate
// segment at once — relation-wide group add/drop by offline tools — and
// table replacement. Segment and relation versions are drawn from one
// process-wide monotone clock and each relation carries a process-unique
// identity mixed into every fingerprint, so replacing a table (reload,
// re-registration) can never resurrect entries cached against its
// predecessor, even for degenerate queries whose candidate set is empty.
//
// Tiered storage composes cleanly: segment spills and page-ins (core's
// memory-budget eviction) are residency changes, not mutations — they never
// advance any version, so cached results stay addressable across a
// spill/fault cycle, and fingerprinting itself never faults anything in
// (zone maps stay resident).
//
// The package deliberately knows nothing about SQL or the catalog: it
// executes logical queries against a Backend (implemented by the h2o.DB
// facade) and is reusable over any engine that can report per-query touch
// fingerprints.
package server
