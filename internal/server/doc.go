// Package server is the concurrent serving layer on top of the H2O engines:
// it turns the single-process adaptive store into something that can sit
// behind many simultaneous clients.
//
// # The worker pool
//
// Queries are admitted into a fixed-depth queue and executed by a fixed
// number of workers, so a burst of clients degrades into queueing latency
// instead of unbounded goroutine and memory growth. Admission and the wait
// for a result both honor context cancellation: a client that gives up
// while its query is still queued costs nothing — the worker skips
// canceled jobs.
//
// # The three-tier admission path
//
// Every select is fingerprinted on admission (core.TouchFingerprint): the
// query's predicates are pruned against each segment's zone maps — no data
// access, no disk I/O even when segments are spilled — and the surviving
// *candidate set* is digested together with those segments' versions. When
// the backend exposes a per-table relation version (VersionBackend), the
// fingerprint itself is memoized per (table, normalized query) at that
// version, so hot patterns skip even the zone-map walk (Stats.MemoHits);
// versions come from a process-wide monotone clock and are never reused,
// which makes the memo self-invalidating — a stale entry's version simply
// cannot recur. The admitted query then falls through three tiers:
//
//  1. Exact hit. The sharded LRU result cache is addressed by (table,
//     normalized query, fingerprint). An entry is addressable exactly
//     while every segment that could contribute rows is unchanged, so
//     invalidation is proportional to what a mutation actually touched: a
//     tail append strands only entries whose queries read the tail, an
//     incremental reorganization only entries over the reorganized
//     segments, and tiered-storage spill/fault cycles nothing at all. The
//     hit is returned without consuming a queue slot.
//
//  2. Delta repair. On a miss, a *repairable* query — every select item a
//     decomposable aggregate (count/sum/min/max/avg), no LIMIT; see
//     exec.Repairable — consults a second, byte-budgeted cache of
//     per-segment partial aggregates, keyed by (table, normalized query)
//     only: the payload deliberately outlives the fingerprint that
//     stranded the result. A worker diffs the payload's segment-version
//     vector against the live relation under the engine's read lock
//     (DeltaBackend.ExecDelta), rescans only the changed or new candidate
//     segments, and re-combines with the retained partials — O(changed
//     segments) instead of O(candidate set). Repeat aggregates over a
//     tail-append workload therefore cost one segment scan each
//     (Stats.Repaired, Stats.RepairedSegments; ExecInfo.RepairedSegments
//     per query). A miss with no payload still routes here: the full
//     partial scan that answers it seeds the payload for every later
//     repair. The backend may decline (its adaptation machinery wants the
//     exclusive lock this round), in which case the job falls through.
//
//  3. Full execution. Everything else runs the backend's complete path —
//     monitoring, adaptation, online reorganization, cost-based strategy
//     choice — exactly as a direct engine call would.
//
// # Publish-time fingerprint comparison
//
// Tiers 2 and 3 both publish under the fingerprint the execution observed
// (computed by the engine while it still held the lock the scan ran
// under). If no relevant mutation landed since admission the fingerprints
// coincide and the entry lands under the admission key; if a mutation
// touched candidate segments mid-flight, the result — a consistent
// snapshot of the newer state — is republished under the execution-time
// key, where the very next identical query finds it (Stats.Republished).
// Only results with no fingerprint at all (Stats.Uncacheable) go
// unpublished. Repairs publish twice: the combined result into the result
// cache, and the refreshed partials payload — retained partials plus the
// freshly rescanned ones — into the partials cache, replacing the stale
// payload wholesale (payloads are immutable once published, so readers
// never race the replacement).
//
// # What still invalidates globally
//
// Mutations that advance every candidate segment at once — relation-wide
// group add/drop by offline tools — and table replacement. Segment and
// relation versions share one process-wide monotone clock and each
// relation carries a process-unique identity mixed into every fingerprint,
// so replacing a table (reload, re-registration) can never resurrect
// entries cached against its predecessor, even for degenerate queries
// whose candidate set is empty. The same argument covers the fingerprint
// memo and the partials payloads: a predecessor's versions can never be
// observed again.
//
// The package deliberately knows nothing about SQL or the catalog: it
// executes logical queries against a Backend (implemented by the h2o.DB
// facade), and the repair and memo tiers light up only when that backend
// also implements the optional DeltaBackend / VersionBackend capabilities.
package server
