// Package server is the concurrent serving layer on top of the H2O engines:
// it turns the single-process adaptive store into something that can sit
// behind many simultaneous clients.
//
// Three pieces compose:
//
//   - A bounded worker pool. Queries are admitted into a fixed-depth queue
//     and executed by a fixed number of workers, so a burst of clients
//     degrades into queueing latency instead of unbounded goroutine and
//     memory growth. Admission and the wait for a result both honor context
//     cancellation: a client that gives up while its query is still queued
//     costs nothing — the worker skips canceled jobs.
//
//   - A sharded LRU result cache keyed by (table, normalized query text,
//     relation version). The relation version — see storage.Relation.Version —
//     advances on every insert and every layout reorganization, so a
//     mutation implicitly invalidates every cached result for the table: the
//     old entries simply stop being addressable and age out of the LRU.
//     There is no explicit eviction pass and no coordination between writers
//     and the cache. Sharding keeps lock contention on the hot lookup path
//     negligible next to query execution.
//
//   - A version re-check before publishing. A worker records the relation
//     version before executing and re-reads it after: if a mutation landed
//     mid-flight, the result is returned to the caller (it was a consistent
//     snapshot when computed) but not cached, so a stale entry can never be
//     installed under a key that concurrent readers consider fresh.
//
// Tiered storage composes cleanly with the cache: segment spills and
// page-ins (core's memory-budget eviction) are residency changes, not
// mutations — they never advance the relation version, so cached results
// stay addressable across a spill/fault cycle and a page-in can never
// poison the cache or strand fresh entries. Only real mutations (inserts,
// reorganizations) invalidate.
//
// The package deliberately knows nothing about SQL or the catalog: it
// executes logical queries against a Backend (implemented by the h2o.DB
// facade) and is reusable over any engine that can report a per-table
// version.
package server
