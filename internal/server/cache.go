package server

import (
	"strconv"
	"sync"
	"sync/atomic"

	"h2o/internal/core"
	"h2o/internal/exec"
)

// cacheKey builds the composite cache key. The query text comes from
// query.Query.String(), which renders the parsed logical query in canonical
// form — two SQL strings differing only in whitespace or keyword case
// normalize to the same key. The touch fingerprint — the digest of the
// segments the query may read and their versions — is baked into the key,
// so a mutation of any candidate segment strands every older entry for the
// (table, query) pair, while mutations confined to segments the query never
// reads leave its entries addressable.
//
// The encoding is injective: the table name is length-prefixed (it is the
// only component that could contain the delimiters), the fingerprint
// renders to a fixed colon-free format, and the query text is the
// unambiguous remainder. FuzzCacheKey holds this property under arbitrary
// inputs.
func cacheKey(table, normQuery string, fp core.TouchFingerprint) string {
	return strconv.Itoa(len(table)) + ":" + table + ":" + fp.Key() + ":" + normQuery
}

// entry is one cached result. The Result pointer is shared between the
// cache and every client that hits it: results are treated as immutable
// once published (every execution strategy materializes a fresh block).
// last is the shard tick of the most recent access; hits update it with an
// atomic store so the hot read path never takes the write lock.
type entry struct {
	res  *exec.Result
	info core.ExecInfo
	last atomic.Uint64
}

// shard is one lock domain of the cache. Lookups take the read lock and
// bump the entry's access tick atomically — many clients replaying the same
// hot query proceed in parallel. Only inserts take the write lock; an
// overflowing insert picks its LRU victim from the shard's eviction index
// in O(log cap) (see evictIndex for how lock-free tick bumps reconcile).
type shard struct {
	mu    sync.RWMutex
	items map[string]*entry
	ix    evictIndex
	cap   int
	tick  atomic.Uint64
}

func (s *shard) get(key string) (*exec.Result, core.ExecInfo, bool) {
	s.mu.RLock()
	e := s.items[key]
	var res *exec.Result
	var info core.ExecInfo
	if e != nil {
		res, info = e.res, e.info // field reads under the lock: put may update in place
	}
	s.mu.RUnlock()
	if e == nil {
		return nil, core.ExecInfo{}, false
	}
	e.last.Store(s.tick.Add(1))
	return res, info, true
}

func (s *shard) put(key string, res *exec.Result, info core.ExecInfo) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.items[key]; ok {
		e.res, e.info = res, info
		e.last.Store(s.tick.Add(1))
		return
	}
	e := &entry{res: res, info: info}
	e.last.Store(s.tick.Add(1))
	s.items[key] = e
	s.ix.push(key, e.last.Load())
	for len(s.items) > s.cap {
		victim := s.ix.pop(s.liveTick, "")
		if victim == "" {
			return
		}
		delete(s.items, victim)
	}
}

// liveTick is the shard's evictIndex liveness probe; the caller holds mu.
func (s *shard) liveTick(key string) (uint64, bool) {
	e, ok := s.items[key]
	if !ok {
		return 0, false
	}
	return e.last.Load(), true
}

func (s *shard) len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.items)
}

// resultCache is the sharded LRU. Capacity is divided evenly across shards;
// each shard evicts independently, which approximates global LRU closely
// enough at serving-cache sizes while keeping hot lookups read-locked and
// inserts O(1) amortized under a per-shard lock.
type resultCache struct {
	shards []*shard
	mask   uint32
}

// newResultCache builds a cache with the given shard count (rounded up to a
// power of two) and total entry capacity.
func newResultCache(shards, capacity int) *resultCache {
	if shards < 1 {
		shards = 1
	}
	n := 1
	for n < shards {
		n <<= 1
	}
	perShard := (capacity + n - 1) / n
	if perShard < 1 {
		perShard = 1
	}
	c := &resultCache{shards: make([]*shard, n), mask: uint32(n - 1)}
	for i := range c.shards {
		c.shards[i] = &shard{items: make(map[string]*entry), cap: perShard}
	}
	return c
}

// fnv32a hashes the key for shard selection.
func fnv32a(s string) uint32 {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(s); i++ {
		h ^= uint32(s[i])
		h *= prime32
	}
	return h
}

func (c *resultCache) shardFor(key string) *shard {
	return c.shards[fnv32a(key)&c.mask]
}

func (c *resultCache) get(key string) (*exec.Result, core.ExecInfo, bool) {
	return c.shardFor(key).get(key)
}

func (c *resultCache) put(key string, res *exec.Result, info core.ExecInfo) {
	c.shardFor(key).put(key, res, info)
}

// size returns the current number of cached entries across all shards.
func (c *resultCache) size() int {
	n := 0
	for _, s := range c.shards {
		n += s.len()
	}
	return n
}
