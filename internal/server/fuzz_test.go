package server

import (
	"testing"

	"h2o/internal/core"
	"h2o/internal/data"
	"h2o/internal/sql"
)

// FuzzCacheKey holds the cache-key encoding's injectivity under arbitrary
// inputs: two (table, fingerprint, normalized-query) triples map to the
// same key if and only if they are identical. Distinct queries — or the
// same query against different segment states — must never collide, no
// matter what bytes the table name or query text contain (the table name is
// the component that could smuggle delimiters; it is length-prefixed for
// exactly this reason).
func FuzzCacheKey(f *testing.F) {
	f.Add("R", "select a0 from R", uint64(1), 1, uint64(1),
		"R", "select a0 from R", uint64(1), 1, uint64(1))
	f.Add("R", "select a0 from R", uint64(1), 1, uint64(1),
		"R", "select a1 from R", uint64(1), 1, uint64(1))
	f.Add("R", "select a0 from R", uint64(7), 2, uint64(9),
		"R", "select a0 from R", uint64(8), 2, uint64(9))
	// Grouped queries: the GROUP BY clause is part of the normalized text,
	// so grouped and ungrouped forms of one aggregate must key apart.
	f.Add("R", "select a3, sum(a1) from R group by a3", uint64(5), 2, uint64(4),
		"R", "select sum(a1) from R", uint64(5), 2, uint64(4))
	// Join shapes: the joined table and keys live in the normalized text, so
	// a join must key apart from its FROM-side component query and from the
	// same join under a different fingerprint pair (combined digests differ).
	f.Add("R", "select sum(a1) from R join S on a0 = S.a0", uint64(11), 3, uint64(6),
		"R", "select sum(a1) from R", uint64(11), 3, uint64(6))
	f.Add("R", "select sum(a1) from R join S on a0 = S.a0", uint64(11), 3, uint64(6),
		"R", "select sum(a1) from R join S on a0 = S.a1", uint64(11), 3, uint64(6))
	f.Add("R", "select a2, count(S.a1) from R join S on a0 = S.a0 group by a2", uint64(4), 5, uint64(9),
		"R", "select a2, count(S.a1) from R join S on a0 = S.a0 group by a2", uint64(5), 5, uint64(9))
	// Delimiter abuse: table/query pairs whose concatenations coincide.
	f.Add("t:1", "select x", uint64(3), 1, uint64(3),
		"t", ":1:select x", uint64(3), 1, uint64(3))
	f.Add("a\x00b", "q", uint64(1), 0, uint64(0),
		"a", "\x00b:q", uint64(1), 0, uint64(0))
	f.Fuzz(func(t *testing.T, tA, qA string, dA uint64, cA int, vA uint64,
		tB, qB string, dB uint64, cB int, vB uint64) {
		fpA := core.TouchFingerprint{Digest: dA, Segments: cA, MaxVersion: vA}
		fpB := core.TouchFingerprint{Digest: dB, Segments: cB, MaxVersion: vB}
		kA := cacheKey(tA, qA, fpA)
		kB := cacheKey(tB, qB, fpB)
		same := tA == tB && qA == qB && fpA == fpB
		if (kA == kB) != same {
			t.Fatalf("cache-key injectivity violated:\n (%q, %q, %+v) -> %q\n (%q, %q, %+v) -> %q",
				tA, qA, fpA, kA, tB, qB, fpB, kB)
		}
	})
}

// FuzzQueryNormalization holds the two cache-addressing properties of SQL
// normalization: equivalent query texts (whitespace, keyword case,
// mirrored comparisons) must collide on one key — normalization is
// idempotent, so the canonical rendering re-parses to itself — and queries
// with distinct canonical forms must never collide.
func FuzzQueryNormalization(f *testing.F) {
	f.Add("select a0 from r", "SELECT   a0   FROM r")
	f.Add("select a0, a1 from r where a0 < 5 and a1 > 3",
		"select a0,a1 from r where 5 > a0 and 3 < a1")
	f.Add("select max(a0) from r where a1 between 2 and 9",
		"select max(a0) from r where a1 >= 2 and a1 <= 9")
	f.Add("select a0 + a1 from r where (a0 < 1 or a1 > 2) limit 3",
		"select sum(a0 + a1) from r")
	f.Add("select count(a3) from r limit 4", "select count(a3) from r")
	// Grouped: an unselected key is prepended during parsing, so the
	// explicit-key spelling and the implicit one share a canonical form.
	f.Add("select a0, sum(a1) from r group by a0",
		"SELECT sum(a1) FROM r GROUP BY a0")
	// Duplicate keys collapse to one; key order is preserved otherwise.
	f.Add("select a2, a1, count(a3) from r group by a2, a1, a2",
		"select a2, a1, count(a3) from r group by a2, a1")
	// Key-only grouping vs. plain projection must key apart.
	f.Add("select a1 from r group by a1", "select a1 from r")
	// Join shapes: keyword case and spacing normalize away; a mirrored ON
	// condition normalizes to left-key-first; aliases canonicalize to table
	// names; a join must never collide with its FROM-side component.
	f.Add("select sum(a1) from r join s on a0 = s.a0",
		"SELECT sum(a1) FROM r JOIN s ON a0=s.a0")
	f.Add("select sum(a1) from r join s on s.a0 = a0",
		"select sum(a1) from r join s on a0 = s.a0")
	f.Add("select sum(x.a1) from r x join s y on x.a0 = y.a1",
		"select sum(a1) from r join s on a0 = s.a1")
	f.Add("select sum(a1) from r join s on a0 = s.a0",
		"select sum(a1) from r")
	f.Add("select count(a0) from r join r on a0 = r.a0",
		"select count(a0) from r")
	f.Add("select a2, count(s.a1) from r join s on a0 = s.a0 where a1 < 9 group by a2",
		"select a2, count(s.a1) from r join s on a0 = s.a0 group by a2")
	f.Fuzz(func(t *testing.T, srcA, srcB string) {
		schemas := sql.SchemaMap{
			"r": data.SyntheticSchema("r", 8),
			"s": data.SyntheticSchema("s", 4),
		}
		qA, errA := sql.Parse(srcA, schemas)
		qB, errB := sql.Parse(srcB, schemas)
		if errA != nil || errB != nil {
			t.Skip() // not valid SQL for this schema: nothing to normalize
		}
		fp := core.TouchFingerprint{Digest: 42, Segments: 3, MaxVersion: 17}
		sA, sB := qA.String(), qB.String()
		kA := cacheKey(qA.Table, sA, fp)
		kB := cacheKey(qB.Table, sB, fp)
		if (kA == kB) != (qA.Table == qB.Table && sA == sB) {
			t.Fatalf("normalized-key collision mismatch:\n %q -> %q\n %q -> %q", srcA, kA, srcB, kB)
		}
		// Idempotence: the canonical form must re-parse to itself, so every
		// input in an equivalence class lands on the same key, and a
		// canonical form can never drift to a second key.
		qA2, err := sql.Parse(sA, schemas)
		if err != nil {
			t.Fatalf("canonical form %q (from %q) does not re-parse: %v", sA, srcA, err)
		}
		if got := qA2.String(); got != sA {
			t.Fatalf("normalization not idempotent: %q -> %q -> %q", srcA, sA, got)
		}
	})
}
