package server

import (
	"context"
	"testing"

	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
)

// TestSegmentHeatCountsCachedReferences: the heat snapshot counts, per
// segment, the cached results that read it and the partials payloads that
// retain a contribution from it — and only for the requested table.
func TestSegmentHeatCountsCachedReferences(t *testing.T) {
	const segCap, segs = 256, 8
	b := newSegmentedBackend(t, segs*segCap, segCap, frozenOptions())
	s := New(b, Config{Workers: 2})
	defer s.Close()
	ctx := context.Background()

	if heat := s.SegmentHeat("R"); len(heat) != 0 {
		t.Fatalf("empty caches reported heat %v", heat)
	}

	// Segment 0 only: one result entry touching [0], plus the repairable
	// aggregate's partials payload retaining segment 0's partial.
	cold := coldSegQuery(segCap)
	if _, _, err := s.Query(ctx, cold); err != nil {
		t.Fatal(err)
	}
	// Every segment: result entry touching all, payload over all.
	full := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, nil)
	if _, _, err := s.Query(ctx, full); err != nil {
		t.Fatal(err)
	}

	heat := s.SegmentHeat("R")
	if len(heat) != segs {
		t.Fatalf("heat covers %d segments, want %d: %v", len(heat), segs, heat)
	}
	// Segment 0: cold result + cold payload + full result + full payload.
	// Later segments: full result + full payload only.
	if heat[0] != 4 {
		t.Fatalf("segment 0 heat = %d, want 4: %v", heat[0], heat)
	}
	for si := 1; si < segs; si++ {
		if heat[si] != 2 {
			t.Fatalf("segment %d heat = %d, want 2: %v", si, heat[si], heat)
		}
	}

	if other := s.SegmentHeat("S"); len(other) != 0 {
		t.Fatalf("unknown table reported heat %v", other)
	}
}

// TestSegmentHeatPrefixIsTableExact: a table whose name is a prefix of
// another must not absorb its heat — the length-prefixed key keeps them
// apart.
func TestSegmentHeatPrefixIsTableExact(t *testing.T) {
	const segCap, segs = 256, 4
	b := newSegmentedBackend(t, segs*segCap, segCap, frozenOptions())
	s := New(b, Config{Workers: 1})
	defer s.Close()

	if _, _, err := s.Query(context.Background(), coldSegQuery(segCap)); err != nil {
		t.Fatal(err)
	}
	_ = data.SyntheticSchema("RR", 4) // name collision candidate
	if heat := s.SegmentHeat("RR"); len(heat) != 0 {
		t.Fatalf("prefix table absorbed heat: %v", heat)
	}
}
