package server

import (
	"context"
	"sync"
	"testing"

	"h2o/internal/core"
	"h2o/internal/data"
	"h2o/internal/exec"
	"h2o/internal/expr"
	"h2o/internal/query"
)

// TestDeltaRepairTailAppend is the serving-layer contract of partial-result
// reuse: a repeated full-relation aggregate over a tail-append workload is
// answered by rescanning only the tail segment — O(1 segment) per repair,
// not O(relation) — with results identical to full recomputation.
func TestDeltaRepairTailAppend(t *testing.T) {
	const segCap, segs, appends = 256, 8, 10
	b := newSegmentedBackend(t, segs*segCap, segCap, frozenOptions())
	s := New(b, Config{Workers: 2})
	defer s.Close()
	ctx := context.Background()

	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, nil)

	// Cold miss: seeds the partials payload via a full partial scan — not
	// yet a repair.
	res, info, err := s.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	if info.CacheHit || info.RepairedSegments != 0 {
		t.Fatalf("seed query: hit=%v repaired=%d", info.CacheHit, info.RepairedSegments)
	}
	if st := s.Stats(); st.Repaired != 0 {
		t.Fatalf("seed counted as repair: %+v", st)
	}

	want := res.At(0, 0)
	for i := 0; i < appends; i++ {
		if err := b.e.Insert([][]data.Value{{data.Value(10_000_000 + i), 3, 4, 5}}); err != nil {
			t.Fatal(err)
		}
		want += 3 // sum(a1) grows by the appended a1

		res, info, err := s.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if info.CacheHit {
			t.Fatalf("append %d: stale hit after a candidate mutation", i)
		}
		if info.Strategy != exec.StrategyDelta {
			t.Fatalf("append %d: strategy %v, want %v", i, info.Strategy, exec.StrategyDelta)
		}
		// The changed-segment count, not the relation segment count: only
		// the (possibly freshly opened) tail moved.
		if info.RepairedSegments != 1 {
			t.Fatalf("append %d: RepairedSegments = %d, want 1 (touched %v)",
				i, info.RepairedSegments, info.SegmentsTouched)
		}
		if got := res.At(0, 0); got != want {
			t.Fatalf("append %d: sum(a1) = %d, want %d", i, got, want)
		}
		// A repeat without further mutation is an exact hit on the
		// republished result — and a hit rescanned nothing, so it must
		// not echo the stored entry's repair counter.
		if _, info, err := s.Query(ctx, q); err != nil || !info.CacheHit {
			t.Fatalf("append %d: repaired result did not publish (err=%v hit=%v)", i, err, info.CacheHit)
		} else if info.RepairedSegments != 0 {
			t.Fatalf("append %d: exact hit reports RepairedSegments=%d, want 0", i, info.RepairedSegments)
		}
	}

	st := s.Stats()
	if st.Repaired != appends {
		t.Fatalf("Repaired = %d, want %d (stats %+v)", st.Repaired, appends, st)
	}
	if st.RepairedSegments != appends {
		t.Fatalf("RepairedSegments = %d, want %d (one tail rescan per append)", st.RepairedSegments, appends)
	}
}

// TestDeltaRepairGrouped extends the O(changed segments) repair contract to
// GROUP BY: after each tail append the grouped aggregate is answered by
// merging the cached per-segment group maps with a rescan of only the tail
// segment, and every repaired result equals a cache-free full scan.
func TestDeltaRepairGrouped(t *testing.T) {
	const segCap, segs, appends = 256, 8, 8
	b := newSegmentedBackend(t, segs*segCap, segCap, frozenOptions())
	s := New(b, Config{Workers: 2})
	defer s.Close()
	ctx := context.Background()

	q := query.GroupedAggregation("R", expr.AggSum, []data.AttrID{1, 2}, []data.AttrID{3}, nil)

	// Cold miss seeds the grouped partials payload.
	if _, info, err := s.Query(ctx, q); err != nil || info.CacheHit || info.RepairedSegments != 0 {
		t.Fatalf("seed: err=%v info=%+v", err, info)
	}
	for i := 0; i < appends; i++ {
		// Recycle a small key range so appends both extend groups opened by
		// earlier appends and (on first sight of a key) create fresh ones.
		if err := b.e.Insert([][]data.Value{{data.Value(60_000_000 + i), 7, 11, data.Value(i % 3)}}); err != nil {
			t.Fatal(err)
		}
		res, info, err := s.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if info.CacheHit || info.Strategy != exec.StrategyDelta {
			t.Fatalf("append %d: hit=%v strategy=%v, want delta repair", i, info.CacheHit, info.Strategy)
		}
		if info.RepairedSegments != 1 {
			t.Fatalf("append %d: RepairedSegments = %d, want 1 (touched %v)",
				i, info.RepairedSegments, info.SegmentsTouched)
		}
		want, _, err := b.e.Execute(q) // cache-free full scan of the mutated state
		if err != nil {
			t.Fatal(err)
		}
		if !res.Equal(want) {
			t.Fatalf("append %d: repaired groups diverged:\n got %d rows %v\nwant %d rows %v",
				i, res.Rows, res.Data, want.Rows, want.Data)
		}
	}
	st := s.Stats()
	if st.Repaired != appends || st.RepairedSegments != appends {
		t.Fatalf("Repaired = %d, RepairedSegments = %d, want %d each (stats %+v)",
			st.Repaired, st.RepairedSegments, appends, st)
	}
}

// TestDeltaRepairSelectiveQueries: a cold-segment aggregate never needs
// repair across tail appends (its fingerprint is append-invariant — exact
// hits), while a mid-range aggregate repairs only when its own segments
// change.
func TestDeltaRepairSelective(t *testing.T) {
	const segCap, segs = 256, 8
	b := newSegmentedBackend(t, segs*segCap, segCap, frozenOptions())
	s := New(b, Config{Workers: 2})
	defer s.Close()
	ctx := context.Background()

	cold := coldSegQuery(segCap)
	if _, _, err := s.Query(ctx, cold); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := b.e.Insert([][]data.Value{{data.Value(20_000_000 + i), 1, 2, 3}}); err != nil {
			t.Fatal(err)
		}
		if _, info, err := s.Query(ctx, cold); err != nil || !info.CacheHit {
			t.Fatalf("append %d: cold query should exact-hit, err=%v hit=%v", i, err, info.CacheHit)
		}
	}
	if st := s.Stats(); st.Repaired != 0 {
		t.Fatalf("cold query repaired instead of exact-hitting: %+v", st)
	}
}

// TestPartialBudgetRejectsOversizedPayload: a partials budget smaller than
// one payload disables reuse gracefully — every miss re-seeds via a full
// partial scan, nothing repairs, results stay correct.
func TestPartialBudgetRejectsOversizedPayload(t *testing.T) {
	const segCap, segs = 128, 4
	b := newSegmentedBackend(t, segs*segCap, segCap, frozenOptions())
	s := New(b, Config{Workers: 1, PartialCacheBytes: 1})
	defer s.Close()
	ctx := context.Background()

	q := query.Aggregation("R", expr.AggCount, []data.AttrID{0}, nil)
	for i := 0; i < 3; i++ {
		res, _, err := s.Query(ctx, q)
		if err != nil {
			t.Fatal(err)
		}
		if want := data.Value(segs*segCap + i); res.At(0, 0) != want {
			t.Fatalf("round %d: count = %d, want %d", i, res.At(0, 0), want)
		}
		if err := b.e.Insert([][]data.Value{{data.Value(30_000_000 + i), 1, 2, 3}}); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Repaired != 0 {
		t.Fatalf("oversized payload was cached and repaired from: %+v", st)
	}
}

// TestFingerprintMemo: repeat admissions at an unchanged relation version
// reuse the memoized fingerprint; any mutation stops the memo from
// matching (the version can never recur).
func TestFingerprintMemo(t *testing.T) {
	b := newSegmentedBackend(t, 1024, 256, frozenOptions())
	s := New(b, Config{Workers: 1})
	defer s.Close()
	ctx := context.Background()

	q := coldSegQuery(256)
	if _, _, err := s.Query(ctx, q); err != nil { // computes + memoizes
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ { // memo hits at the same version
		if _, _, err := s.Query(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.MemoHits != 3 {
		t.Fatalf("MemoHits = %d, want 3 (stats %+v)", st.MemoHits, st)
	}
	if err := b.e.Insert([][]data.Value{{40_000_000, 1, 2, 3}}); err != nil {
		t.Fatal(err)
	}
	// New version: the next admission recomputes (no memo hit), then
	// repeats hit the memo again.
	if _, _, err := s.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.MemoHits != 3 {
		t.Fatalf("stale memo served across a version bump: %+v", st)
	}
	if _, _, err := s.Query(ctx, q); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.MemoHits != 4 {
		t.Fatalf("MemoHits = %d, want 4 after recompute (stats %+v)", st.MemoHits, st)
	}
}

// TestDeltaRepairStress mixes repairable aggregate traffic with concurrent
// appends and tiered-storage evictions under -race: the repair path — prior
// payload reads, delta diffs under the engine lock, payload republish —
// must stay coherent while segments mutate, spill and fault underneath it.
func TestDeltaRepairStress(t *testing.T) {
	const segCap, segs = 128, 8
	opts := core.DefaultOptions() // adaptive: repairs interleave with reorg fallbacks
	opts.MemoryBudgetBytes = 64 * 1024
	opts.SpillDir = t.TempDir()
	b := newSegmentedBackend(t, segs*segCap, segCap, opts)
	defer b.e.Close()
	s := New(b, Config{Workers: 4, QueueDepth: 16})
	defer s.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				var q *query.Query
				switch (c + i) % 4 {
				case 0:
					q = query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, nil)
				case 1:
					q = query.Aggregation("R", expr.AggCount, []data.AttrID{(c + i) % 4}, nil)
				case 2:
					q = query.GroupedAggregation("R", expr.AggSum, []data.AttrID{1}, []data.AttrID{3}, nil)
				default:
					q = coldSegQuery(segCap)
				}
				if _, _, err := s.Query(context.Background(), q); err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 40; i++ {
			if err := b.e.Insert([][]data.Value{{data.Value(50_000_000 + i), 1, 2, 3}}); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			b.e.EnforceBudget()
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	st := s.Stats()
	if st.Submitted != 360 || st.Executed+st.CacheHits < 360 {
		t.Fatalf("stats = %+v", st)
	}

	// Quiesced correctness: the repaired count must equal reality.
	res, _, err := s.Query(context.Background(), query.Aggregation("R", expr.AggCount, []data.AttrID{0}, nil))
	if err != nil {
		t.Fatal(err)
	}
	if want := data.Value(segs*segCap + 40); res.At(0, 0) != want {
		t.Fatalf("post-stress count = %d, want %d", res.At(0, 0), want)
	}
}
