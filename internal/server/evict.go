package server

// heapEntry is one (key, access tick) pair in an evictIndex.
type heapEntry struct {
	key  string
	tick uint64
}

// evictIndex is the eviction index shared by the three serving caches
// (result entries, partials payloads, fingerprint memos): a lazy binary
// min-heap over access ticks that finds an LRU victim in O(log n) instead
// of the O(n) full-map scan it replaced. It is guarded by the owning
// cache's write lock and holds exactly one pair per cached key: push runs
// only when a key is inserted into the backing map, and pop removes the
// pair it returns — a key leaves the map only through pop, so pairs and
// map entries stay one-to-one.
//
// The heap is deliberately allowed to go stale: hit paths bump an entry's
// tick atomically without taking the write lock (and in-place updates
// bump it under the lock without touching the heap), so a pair's stored
// tick can lag the live one. pop reconciles lazily — a stale root is
// re-keyed to its live tick and sifted back down. Under concurrent hit
// traffic this yields approximate LRU with bounded work per eviction;
// at rest it is exact.
type evictIndex struct {
	h []heapEntry
}

func (ix *evictIndex) push(key string, tick uint64) {
	ix.h = append(ix.h, heapEntry{key: key, tick: tick})
	ix.up(len(ix.h) - 1)
}

func (ix *evictIndex) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if ix.h[p].tick <= ix.h[i].tick {
			return
		}
		ix.h[p], ix.h[i] = ix.h[i], ix.h[p]
		i = p
	}
}

func (ix *evictIndex) down(i int) {
	n := len(ix.h)
	for {
		m := i
		if l := 2*i + 1; l < n && ix.h[l].tick < ix.h[m].tick {
			m = l
		}
		if r := 2*i + 2; r < n && ix.h[r].tick < ix.h[m].tick {
			m = r
		}
		if m == i {
			return
		}
		ix.h[i], ix.h[m] = ix.h[m], ix.h[i]
		i = m
	}
}

func (ix *evictIndex) popRoot() heapEntry {
	root := ix.h[0]
	last := len(ix.h) - 1
	ix.h[0] = ix.h[last]
	ix.h[last] = heapEntry{} // release the key string
	ix.h = ix.h[:last]
	if last > 0 {
		ix.down(0)
	}
	return root
}

// pop removes and returns the key with the smallest live access tick, or
// "" when nothing evictable remains. live reports a key's current tick
// (ok=false marks a key no longer in the cache; its pair is discarded —
// defensive, since pairs and map entries normally stay one-to-one). skip
// is never returned: a byte-budgeted put must not evict the entry it just
// installed; its pairs are set aside and restored before returning. Stale
// root ticks are fixed in place; after one full round of fixes the
// current root is accepted, bounding the work per eviction.
func (ix *evictIndex) pop(live func(string) (uint64, bool), skip string) string {
	var held []heapEntry
	fixes := 0
	out := ""
	for len(ix.h) > 0 {
		root := ix.h[0]
		t, ok := live(root.key)
		if !ok {
			ix.popRoot()
			continue
		}
		if root.key == skip {
			held = append(held, ix.popRoot())
			continue
		}
		if t != root.tick && fixes < len(ix.h) {
			ix.h[0].tick = t
			ix.down(0)
			fixes++
			continue
		}
		out = ix.popRoot().key
		break
	}
	for _, e := range held {
		ix.push(e.key, e.tick)
	}
	return out
}
