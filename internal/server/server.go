package server

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"h2o/internal/core"
	"h2o/internal/exec"
	"h2o/internal/query"
)

// ErrClosed is returned for queries submitted to (or in flight on) a server
// that has been shut down.
var ErrClosed = errors.New("server: closed")

// Backend executes logical queries and reports per-table versions. The
// h2o.DB facade implements it; tests implement it with stubs.
type Backend interface {
	// Exec runs one logical query to completion.
	Exec(q *query.Query) (*exec.Result, core.ExecInfo, error)
	// Version returns the named table's current relation version. It must
	// be cheap (an atomic load) and safe to call concurrently with Exec.
	Version(table string) (uint64, error)
}

// Config sizes the serving layer. Zero values select defaults.
type Config struct {
	// Workers is the number of goroutines executing queries. Default:
	// GOMAXPROCS. Intra-query parallelism (core.Options.Parallelism)
	// multiplies on top of this, so on dedicated serving hosts keep
	// Workers x Parallelism near the core count.
	Workers int
	// QueueDepth bounds the admission queue. A full queue makes Query block
	// until a slot frees or the caller's context is canceled. Default:
	// 4 x Workers.
	QueueDepth int
	// CacheShards is the number of independent lock domains in the result
	// cache, rounded up to a power of two. Default: 16.
	CacheShards int
	// CacheEntries is the total result-cache capacity in entries. Default:
	// 4096. Negative disables caching entirely.
	CacheEntries int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	return c
}

// Stats are serving-layer lifetime counters, all monotone.
type Stats struct {
	// Submitted counts queries that entered Query.
	Submitted uint64
	// Executed counts queries a worker ran against the backend.
	Executed uint64
	// CacheHits counts queries answered from the result cache.
	CacheHits uint64
	// CacheMisses counts queries that had to execute (cache enabled).
	CacheMisses uint64
	// Canceled counts queries abandoned by their context — while queued,
	// while waiting for a worker, or before admission.
	Canceled uint64
	// Uncacheable counts results not published because the relation version
	// moved during execution.
	Uncacheable uint64
}

// job is one admitted query.
type job struct {
	ctx     context.Context
	q       *query.Query
	key     string // cache key, empty when caching is off
	version uint64 // relation version read at admission
	done    chan outcome
}

type outcome struct {
	res  *exec.Result
	info core.ExecInfo
	err  error
}

// Server is the concurrent serving layer: a bounded worker pool with an
// admission queue in front of a Backend, and a versioned result cache.
// All methods are safe for concurrent use.
type Server struct {
	backend Backend
	cfg     Config
	cache   *resultCache // nil when caching is disabled

	queue chan *job
	done  chan struct{} // closed by Close
	wg    sync.WaitGroup
	once  sync.Once

	submitted   atomic.Uint64
	executed    atomic.Uint64
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	canceled    atomic.Uint64
	uncacheable atomic.Uint64
}

// New starts a server over backend and returns it running; callers own the
// shutdown via Close.
func New(backend Backend, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		backend: backend,
		cfg:     cfg,
		queue:   make(chan *job, cfg.QueueDepth),
		done:    make(chan struct{}),
	}
	if cfg.CacheEntries > 0 {
		s.cache = newResultCache(cfg.CacheShards, cfg.CacheEntries)
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Close stops the workers. Queries already queued or in flight receive
// ErrClosed; Close blocks until every worker has exited. Closing twice is
// safe.
func (s *Server) Close() {
	s.once.Do(func() { close(s.done) })
	s.wg.Wait()
}

// Stats snapshots the serving counters.
func (s *Server) Stats() Stats {
	return Stats{
		Submitted:   s.submitted.Load(),
		Executed:    s.executed.Load(),
		CacheHits:   s.cacheHits.Load(),
		CacheMisses: s.cacheMisses.Load(),
		Canceled:    s.canceled.Load(),
		Uncacheable: s.uncacheable.Load(),
	}
}

// CacheSize returns the number of live result-cache entries (0 when caching
// is disabled). Stale-version entries count until the LRU recycles them.
func (s *Server) CacheSize() int {
	if s.cache == nil {
		return 0
	}
	return s.cache.size()
}

// Query serves one logical query: answered from the result cache when a
// fresh-version entry exists, otherwise admitted to the worker pool and
// executed. It blocks until the result is ready, ctx is canceled, or the
// server closes. A cache hit sets ExecInfo.CacheHit, reports the hit's own
// (sub-millisecond) latency in ExecInfo.Duration, and costs no queue slot.
//
// Results may be shared: a cached *exec.Result is handed to every client
// that hits it. Treat returned results as read-only — mutating Data or Rows
// in place would corrupt what other clients see.
func (s *Server) Query(ctx context.Context, q *query.Query) (*exec.Result, core.ExecInfo, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	s.submitted.Add(1)
	if err := ctx.Err(); err != nil {
		s.canceled.Add(1)
		return nil, core.ExecInfo{}, err
	}
	// A closed server refuses all queries, cache hits included: Close is a
	// fence — nothing answers after it.
	select {
	case <-s.done:
		return nil, core.ExecInfo{}, ErrClosed
	default:
	}

	version, err := s.backend.Version(q.Table)
	if err != nil {
		return nil, core.ExecInfo{}, err
	}

	var key string
	if s.cache != nil {
		key = cacheKey(q.Table, q.String(), version)
		if res, info, ok := s.cache.get(key); ok {
			s.cacheHits.Add(1)
			info.CacheHit = true
			// Report the hit's latency, not the original execution's scan
			// time, so per-query latency accounting reflects what the
			// caller actually waited.
			info.Duration = time.Since(start)
			info.CompileTime = 0
			return res, info, nil
		}
		s.cacheMisses.Add(1)
	}

	j := &job{ctx: ctx, q: q, key: key, version: version, done: make(chan outcome, 1)}

	// Admission: block for a queue slot, but never past cancellation or
	// shutdown.
	select {
	case s.queue <- j:
	case <-ctx.Done():
		s.canceled.Add(1)
		return nil, core.ExecInfo{}, ctx.Err()
	case <-s.done:
		return nil, core.ExecInfo{}, ErrClosed
	}

	// Wait for a worker. The done channel is buffered, so a worker finishing
	// after the client gave up does not block.
	select {
	case out := <-j.done:
		return out.res, out.info, out.err
	case <-ctx.Done():
		s.canceled.Add(1)
		return nil, core.ExecInfo{}, ctx.Err()
	case <-s.done:
		return nil, core.ExecInfo{}, ErrClosed
	}
}

// worker drains the admission queue until shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.queue:
			s.serve(j)
		case <-s.done:
			return
		}
	}
}

// serve executes one admitted job and publishes the result.
func (s *Server) serve(j *job) {
	// The client may have left while the job sat in the queue; skip the scan.
	if err := j.ctx.Err(); err != nil {
		j.done <- outcome{err: err}
		return
	}
	res, info, err := s.backend.Exec(j.q)
	s.executed.Add(1)
	if err == nil && s.cache != nil && j.key != "" {
		// Publish only if no mutation landed while we executed: the result
		// is still correct for the caller (it was a consistent snapshot),
		// but caching it under the admission-time version would let later
		// readers of that version see data the version no longer describes.
		if v2, verr := s.backend.Version(j.q.Table); verr == nil && v2 == j.version {
			s.cache.put(j.key, res, info)
		} else {
			s.uncacheable.Add(1)
		}
	}
	j.done <- outcome{res: res, info: info, err: err}
}
