package server

import (
	"context"
	"errors"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"h2o/internal/core"
	"h2o/internal/exec"
	"h2o/internal/query"
)

// ErrClosed is returned for queries submitted to (or in flight on) a server
// that has been shut down.
var ErrClosed = errors.New("server: closed")

// Backend executes logical queries and reports per-query touch
// fingerprints. The h2o.DB facade implements it; tests implement it with
// stubs.
type Backend interface {
	// Exec runs one logical query to completion. The returned
	// ExecInfo.Fingerprint must describe the relation state the result was
	// computed against (the engine fills it in under the lock the
	// execution held); a zero fingerprint marks the result uncacheable.
	Exec(q *query.Query) (*exec.Result, core.ExecInfo, error)
	// Fingerprint computes q's candidate-touch fingerprint against the
	// table's current state: the set of segments q may read — zone-map
	// pruning only, no data access — and their versions. It must be cheap
	// (O(segments), no I/O) and safe to call concurrently with Exec.
	Fingerprint(q *query.Query) (core.TouchFingerprint, error)
}

// DeltaBackend is the optional capability behind delta repair. A Backend
// that also implements it lets the server answer repairable aggregate
// queries by rescanning only the segments that changed since their
// partials were cached; a Backend without it (the test stubs, any engine
// that cannot scan segment subsets) simply never repairs — every miss
// takes the full Exec path.
type DeltaBackend interface {
	// ExecDelta rescans the candidate segments of a repairable query whose
	// versions differ from have (nil = all of them), under the same lock as
	// the returned fingerprint. ok=false tells the server to fall back to
	// Exec — the query is not repairable, or the backend's adaptive
	// machinery needs the full path this round.
	ExecDelta(q *query.Query, have map[int]uint64) (*core.DeltaScan, bool, error)
}

// VersionBackend is the optional capability behind admission-time
// fingerprint memoization: a cheap (atomic-read) per-table relation
// version that bumps on every mutation. With it, hot query patterns skip
// the O(segments × predicate terms) zone-map walk on admission — the memo
// is exact while the version is unchanged, and versions are never reused,
// so a bump invalidates for free. The h2o.DB facade implements it.
type VersionBackend interface {
	Version(table string) (uint64, error)
}

// Config sizes the serving layer. Zero values select defaults.
type Config struct {
	// Workers is the number of goroutines executing queries. Default:
	// GOMAXPROCS. Intra-query parallelism (core.Options.Parallelism)
	// multiplies on top of this, so on dedicated serving hosts keep
	// Workers x Parallelism near the core count.
	Workers int
	// QueueDepth bounds the admission queue. A full queue makes Query block
	// until a slot frees or the caller's context is canceled. Default:
	// 4 x Workers.
	QueueDepth int
	// CacheShards is the number of independent lock domains in the result
	// cache, rounded up to a power of two. Default: 16.
	CacheShards int
	// CacheEntries is the total result-cache capacity in entries. Default:
	// 4096. Negative disables caching entirely.
	CacheEntries int
	// PartialCacheBytes budgets the per-segment partial-aggregate payloads
	// kept alongside cached results for delta repair. Default: 4 MiB.
	// Negative disables partial caching (and with it delta repair); it is
	// also off whenever the backend does not implement DeltaBackend or the
	// result cache is disabled.
	PartialCacheBytes int64
	// MemoEntries bounds the admission fingerprint memo (per (table,
	// normalized query) at a relation version). Default: 4096. Negative
	// disables memoization; it is also off whenever the backend does not
	// implement VersionBackend or the result cache is disabled.
	MemoEntries int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	if c.PartialCacheBytes == 0 {
		c.PartialCacheBytes = 4 << 20
	}
	if c.MemoEntries == 0 {
		c.MemoEntries = 4096
	}
	return c
}

// Stats are serving-layer lifetime counters, all monotone. Every query
// that enters Query lands in exactly one of the four outcome buckets, so
// at any quiescent point
//
//	Submitted == CacheHits + CacheMisses + Canceled + Errors
//
// (under concurrent load a snapshot may catch queries mid-flight —
// submitted but not yet bucketed — so Submitted can transiently exceed the
// sum, never the reverse).
type Stats struct {
	// Submitted counts queries that entered Query.
	Submitted uint64
	// Executed counts queries a worker ran against the backend.
	Executed uint64
	// CacheHits counts queries answered from the result cache.
	CacheHits uint64
	// CacheMisses counts queries that completed through the execution path
	// — full or delta — instead of the result cache (caching disabled
	// included). Counted at completion, not admission, so a query that is
	// canceled or fails after missing the cache lands in Canceled or
	// Errors, never in two buckets.
	CacheMisses uint64
	// Canceled counts queries abandoned by their context — while queued,
	// while waiting for a worker, or before admission.
	Canceled uint64
	// Errors counts queries that failed: fingerprint or execution errors,
	// and submissions refused by a closed server.
	Errors uint64
	// Uncacheable counts results not published at all: the backend
	// reported no valid execution fingerprint to key them under.
	Uncacheable uint64
	// Republished counts results published under their execution-time
	// fingerprint because a mutation of candidate segments landed between
	// admission and execution. The result is still cached — it is
	// consistent with the state the execution observed — just not under
	// the key admission looked up. Mutations confined to segments the
	// query never reads change neither fingerprint and do not count.
	Republished uint64
	// Repaired counts queries answered by delta repair: at least one
	// cached per-segment partial was reused, so the scan covered only the
	// changed candidate segments instead of the whole candidate set.
	// Repaired queries also count as Executed and CacheMisses.
	Repaired uint64
	// RepairedSegments totals the candidate segments delta repairs
	// rescanned — the changed-segment counts, summed over Repaired
	// queries. Repaired > 0 with a low RepairedSegments/Repaired ratio is
	// the payoff signature: repeat aggregates over a tail-append workload
	// cost O(1 segment) each.
	RepairedSegments uint64
	// MemoHits counts admissions whose fingerprint came from the
	// per-(table, query) memo at an unchanged relation version, skipping
	// the O(segments × predicate terms) zone-map walk.
	MemoHits uint64
}

// job is one admitted query.
type job struct {
	ctx  context.Context
	q    *query.Query
	key  string // admission-time cache key, empty when caching is off
	norm string // normalized query text, rendered once at admission
	done chan outcome

	// pkey routes the job through the delta-repair tier: the
	// partials-cache key (empty when this query cannot repair). The
	// worker reads the payload at execution time, not admission time, so
	// identical queries queued together benefit from the first one's
	// publish instead of each redoing the full partial scan.
	pkey string
}

type outcome struct {
	res  *exec.Result
	info core.ExecInfo
	err  error
}

// Server is the concurrent serving layer: a bounded worker pool with an
// admission queue in front of a Backend, and a versioned result cache.
// All methods are safe for concurrent use.
type Server struct {
	backend Backend
	cfg     Config
	cache   *resultCache // nil when caching is disabled

	// delta and partials enable the repair tier; both nil unless the
	// backend implements DeltaBackend, caching is on and the partial
	// budget is positive. ver and memo likewise gate fingerprint
	// memoization on VersionBackend.
	delta    DeltaBackend
	partials *partialCache
	ver      VersionBackend
	memo     *fpMemo

	queue chan *job
	done  chan struct{} // closed by Close
	wg    sync.WaitGroup
	once  sync.Once

	submitted    atomic.Uint64
	executed     atomic.Uint64
	cacheHits    atomic.Uint64
	cacheMisses  atomic.Uint64
	canceled     atomic.Uint64
	errored      atomic.Uint64
	uncacheable  atomic.Uint64
	republished  atomic.Uint64
	repaired     atomic.Uint64
	repairedSegs atomic.Uint64
	memoHits     atomic.Uint64
}

// New starts a server over backend and returns it running; callers own the
// shutdown via Close.
func New(backend Backend, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		backend: backend,
		cfg:     cfg,
		queue:   make(chan *job, cfg.QueueDepth),
		done:    make(chan struct{}),
	}
	if cfg.CacheEntries > 0 {
		s.cache = newResultCache(cfg.CacheShards, cfg.CacheEntries)
		if d, ok := backend.(DeltaBackend); ok && cfg.PartialCacheBytes > 0 {
			s.delta = d
			s.partials = newPartialCache(cfg.PartialCacheBytes)
		}
		if v, ok := backend.(VersionBackend); ok && cfg.MemoEntries > 0 {
			s.ver = v
			s.memo = newFpMemo(cfg.MemoEntries)
		}
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Close stops the workers. Queries already queued or in flight receive
// ErrClosed; Close blocks until every worker has exited. Closing twice is
// safe.
func (s *Server) Close() {
	s.once.Do(func() { close(s.done) })
	s.wg.Wait()
}

// Stats snapshots the serving counters.
func (s *Server) Stats() Stats {
	return Stats{
		Submitted:        s.submitted.Load(),
		Executed:         s.executed.Load(),
		CacheHits:        s.cacheHits.Load(),
		CacheMisses:      s.cacheMisses.Load(),
		Canceled:         s.canceled.Load(),
		Errors:           s.errored.Load(),
		Uncacheable:      s.uncacheable.Load(),
		Republished:      s.republished.Load(),
		Repaired:         s.repaired.Load(),
		RepairedSegments: s.repairedSegs.Load(),
		MemoHits:         s.memoHits.Load(),
	}
}

// CacheSize returns the number of live result-cache entries (0 when caching
// is disabled). Stale-version entries count until the LRU recycles them.
func (s *Server) CacheSize() int {
	if s.cache == nil {
		return 0
	}
	return s.cache.size()
}

// SegmentHeat reports, per segment index, how many live cached artifacts
// for table reference that segment: result-cache entries count the
// segments their execution actually read, partials payloads count every
// segment they retain a partial for. The tiered-storage layer consumes it
// (wired through the facade as a core.SegmentHeatFunc) to steer eviction
// away from segments that many cached entries depend on — spilling those
// would turn their future repairs and revalidations into disk faults. The
// snapshot takes each cache shard's read lock briefly and calls no backend
// code, so it is safe to invoke from inside an eviction pass.
func (s *Server) SegmentHeat(table string) map[int]int {
	heat := make(map[int]int)
	prefix := strconv.Itoa(len(table)) + ":" + table + ":"
	if s.cache != nil {
		for _, sh := range s.cache.shards {
			sh.mu.RLock()
			for k, e := range sh.items {
				if !strings.HasPrefix(k, prefix) {
					continue
				}
				for _, si := range e.info.SegmentsTouched {
					heat[si]++
				}
			}
			sh.mu.RUnlock()
		}
	}
	if s.partials != nil {
		s.partials.mu.Lock()
		for k, e := range s.partials.items {
			if !strings.HasPrefix(k, prefix) {
				continue
			}
			for si := range e.p.Versions() {
				heat[si]++
			}
		}
		s.partials.mu.Unlock()
	}
	return heat
}

// Query serves one logical query: answered from the result cache when an
// entry exists for the query's current touch fingerprint — every segment
// the query may read is unchanged — otherwise admitted to the worker pool
// and executed. It blocks until the result is ready, ctx is canceled, or
// the server closes. A cache hit sets ExecInfo.CacheHit, reports the hit's own
// (sub-millisecond) latency in ExecInfo.Duration, and costs no queue slot.
//
// Results may be shared: a cached *exec.Result is handed to every client
// that hits it. Treat returned results as read-only — mutating Data or Rows
// in place would corrupt what other clients see.
func (s *Server) Query(ctx context.Context, q *query.Query) (*exec.Result, core.ExecInfo, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	s.submitted.Add(1)
	if err := ctx.Err(); err != nil {
		s.canceled.Add(1)
		return nil, core.ExecInfo{}, err
	}
	// A closed server refuses all queries, cache hits included: Close is a
	// fence — nothing answers after it.
	select {
	case <-s.done:
		s.errored.Add(1)
		return nil, core.ExecInfo{}, ErrClosed
	default:
	}

	var key, norm, pkey string
	if s.cache != nil {
		// Admission tier 1 — exact hit. Fingerprint the candidate touch set
		// — the segments q may read per zone-map pruning, with their
		// versions — and look the cache up under it. A cached entry is
		// addressable exactly while every segment that could contribute to
		// the result is unchanged; mutations confined to other segments (a
		// tail append behind a selective predicate, a reorg of segments
		// this query never reads) leave the entry live.
		norm = q.String()
		// The (table, normalized query) composite addresses both the
		// fingerprint memo and the partials cache; build it once.
		tqKey := partialKey(q.Table, norm)
		fp, err := s.fingerprint(q, tqKey)
		if err != nil {
			s.errored.Add(1)
			return nil, core.ExecInfo{}, err
		}
		key = cacheKey(q.Table, norm, fp)
		if res, info, ok := s.cache.get(key); ok {
			s.cacheHits.Add(1)
			info.CacheHit = true
			// Report the hit's latency, not the original execution's scan
			// time, so per-query latency accounting reflects what the
			// caller actually waited; likewise a hit rescanned nothing,
			// even when the stored entry was published by a repair.
			info.Duration = time.Since(start)
			info.CompileTime = 0
			info.RepairedSegments = 0
			return res, info, nil
		}
		// Admission tier 2 — delta repair. The exact entry is gone (a
		// candidate segment mutated, or the LRU recycled it), but for
		// repairable aggregate queries the partials payload cached under
		// the fingerprint-less (table, query) key may still hold exact
		// per-segment contributions; the worker will rescan only the
		// segments whose versions moved (or seed the payload with a full
		// partial scan when there is none). Tier 3 — the full Exec path —
		// is what everything else takes.
		if s.partials != nil && exec.Repairable(q) {
			pkey = tqKey
		}
	}

	j := &job{ctx: ctx, q: q, key: key, norm: norm, done: make(chan outcome, 1), pkey: pkey}

	// Admission: block for a queue slot, but never past cancellation or
	// shutdown.
	select {
	case s.queue <- j:
	case <-ctx.Done():
		s.canceled.Add(1)
		return nil, core.ExecInfo{}, ctx.Err()
	case <-s.done:
		s.errored.Add(1)
		return nil, core.ExecInfo{}, ErrClosed
	}

	// Wait for a worker. The done channel is buffered, so a worker finishing
	// after the client gave up does not block.
	select {
	case out := <-j.done:
		// Completion-time bucketing: success means the query went through
		// the execution path (a cache miss, or caching is off); a worker
		// observing the client's cancellation counts as canceled exactly
		// like the select arm below.
		switch {
		case out.err == nil:
			s.cacheMisses.Add(1)
		case errors.Is(out.err, context.Canceled), errors.Is(out.err, context.DeadlineExceeded):
			s.canceled.Add(1)
		default:
			s.errored.Add(1)
		}
		return out.res, out.info, out.err
	case <-ctx.Done():
		s.canceled.Add(1)
		return nil, core.ExecInfo{}, ctx.Err()
	case <-s.done:
		s.errored.Add(1)
		return nil, core.ExecInfo{}, ErrClosed
	}
}

// worker drains the admission queue until shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.queue:
			s.serve(j)
		case <-s.done:
			return
		}
	}
}

// fingerprint computes q's admission fingerprint, memoized under the
// caller's (table, normalized query) composite key at the backend's
// relation version when the backend exposes one. The version is read
// *before* the walk it guards: see fpMemo for why that order is what makes
// a racing mutation harmless. A join query's memo version is the sum of
// every input table's version — versions are monotone, so any mutation of
// any input strictly changes the sum and the memoized pair fingerprint is
// never served stale.
func (s *Server) fingerprint(q *query.Query, tqKey string) (core.TouchFingerprint, error) {
	if s.memo == nil {
		return s.backend.Fingerprint(q)
	}
	var ver uint64
	for _, table := range q.Tables() {
		v, err := s.ver.Version(table)
		if err != nil {
			return core.TouchFingerprint{}, err
		}
		ver += v
	}
	if fp, ok := s.memo.get(tqKey, ver); ok {
		s.memoHits.Add(1)
		return fp, nil
	}
	fp, err := s.backend.Fingerprint(q)
	if err != nil {
		return core.TouchFingerprint{}, err
	}
	s.memo.put(tqKey, ver, fp)
	return fp, nil
}

// serve executes one admitted job and publishes the result.
func (s *Server) serve(j *job) {
	// The client may have left while the job sat in the queue; skip the scan.
	if err := j.ctx.Err(); err != nil {
		j.done <- outcome{err: err}
		return
	}
	if j.pkey != "" {
		if done := s.serveDelta(j); done {
			return
		}
		// The backend declined the delta path this round (adaptation due,
		// shape it cannot scan incrementally): fall through to full Exec.
	}
	res, info, err := s.backend.Exec(j.q)
	s.executed.Add(1)
	if err == nil && s.cache != nil && j.key != "" {
		s.publish(j, res, info)
	}
	j.done <- outcome{res: res, info: info, err: err}
}

// publish caches one execution's result under the fingerprint the
// execution observed (computed by the engine under the lock the scan
// held), not blindly under the admission-time key: if a mutation of
// candidate segments landed between admission and execution, the admission
// key now names a state that no longer exists, while the execution key
// names exactly the state the result was read from — later identical
// queries admit against that state and hit. This is the vector-comparison
// generalization of the old whole-relation version re-check: a bump
// confined to segments the query never reads changes neither fingerprint,
// so the keys coincide and the result publishes normally instead of being
// discarded. Shared by the full and delta paths so the republish and
// uncacheable accounting can never drift between them.
func (s *Server) publish(j *job, res *exec.Result, info core.ExecInfo) {
	if fp := info.Fingerprint; fp.Valid() {
		pubKey := cacheKey(j.q.Table, j.norm, fp)
		s.cache.put(pubKey, res, info)
		if pubKey != j.key {
			s.republished.Add(1)
		}
	} else {
		// No fingerprint, no safe key: the backend could not tie the
		// result to a relation state.
		s.uncacheable.Add(1)
	}
}

// serveDelta answers one repairable job through the backend's delta scan:
// rescan only the candidate segments whose versions differ from the cached
// partials (all of them when there is no payload — the cold seed), combine
// with the retained partials, and publish both the result (under the
// fingerprint the scan observed, with the same republish accounting as the
// full path) and the refreshed payload. The payload is read here, at
// execution time: identical queries that queued up behind a cold seed find
// the first worker's publish and shrink to the changed set. Returns false
// when the backend declined, telling the caller to run the full Exec path
// instead.
func (s *Server) serveDelta(j *job) bool {
	start := time.Now()
	prior := s.partials.get(j.pkey)
	var have map[int]uint64
	if prior != nil {
		have = prior.Versions()
	}
	ds, ok, err := s.delta.ExecDelta(j.q, have)
	if err != nil {
		s.executed.Add(1)
		j.done <- outcome{err: err}
		return true
	}
	if !ok {
		return false
	}
	s.executed.Add(1)
	merged := exec.Repaired(prior, ds.Fresh, ds.Reused)
	res := merged.Result()
	info := core.ExecInfo{
		Strategy:        exec.StrategyDelta,
		Layout:          ds.Layout,
		Fingerprint:     ds.Fingerprint,
		SegmentsScanned: ds.Stats.SegmentsScanned,
		SegmentsPruned:  ds.Stats.SegmentsPruned,
		SegmentsFaulted: ds.Stats.SegmentsFaulted,
		SegmentsTouched: ds.Stats.Touched,
		DecodeSkips:     ds.Stats.DecodeSkips,
		EncodedBytes:    ds.Stats.EncodedBytes,
		Duration:        time.Since(start),
	}
	// A repair proper reused at least one cached partial; a cold seed (or a
	// payload whose every candidate changed) is a full partial scan and
	// counts as neither repaired nor rescued work.
	if len(ds.Reused) > 0 {
		info.RepairedSegments = len(ds.Fresh.Segs)
		s.repaired.Add(1)
		s.repairedSegs.Add(uint64(len(ds.Fresh.Segs)))
	}
	s.publish(j, res, info)
	if ds.Fingerprint.Valid() {
		s.partials.put(j.pkey, merged)
	}
	j.done <- outcome{res: res, info: info}
	return true
}
