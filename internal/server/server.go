package server

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"h2o/internal/core"
	"h2o/internal/exec"
	"h2o/internal/query"
)

// ErrClosed is returned for queries submitted to (or in flight on) a server
// that has been shut down.
var ErrClosed = errors.New("server: closed")

// Backend executes logical queries and reports per-query touch
// fingerprints. The h2o.DB facade implements it; tests implement it with
// stubs.
type Backend interface {
	// Exec runs one logical query to completion. The returned
	// ExecInfo.Fingerprint must describe the relation state the result was
	// computed against (the engine fills it in under the lock the
	// execution held); a zero fingerprint marks the result uncacheable.
	Exec(q *query.Query) (*exec.Result, core.ExecInfo, error)
	// Fingerprint computes q's candidate-touch fingerprint against the
	// table's current state: the set of segments q may read — zone-map
	// pruning only, no data access — and their versions. It must be cheap
	// (O(segments), no I/O) and safe to call concurrently with Exec.
	Fingerprint(q *query.Query) (core.TouchFingerprint, error)
}

// Config sizes the serving layer. Zero values select defaults.
type Config struct {
	// Workers is the number of goroutines executing queries. Default:
	// GOMAXPROCS. Intra-query parallelism (core.Options.Parallelism)
	// multiplies on top of this, so on dedicated serving hosts keep
	// Workers x Parallelism near the core count.
	Workers int
	// QueueDepth bounds the admission queue. A full queue makes Query block
	// until a slot frees or the caller's context is canceled. Default:
	// 4 x Workers.
	QueueDepth int
	// CacheShards is the number of independent lock domains in the result
	// cache, rounded up to a power of two. Default: 16.
	CacheShards int
	// CacheEntries is the total result-cache capacity in entries. Default:
	// 4096. Negative disables caching entirely.
	CacheEntries int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.CacheShards <= 0 {
		c.CacheShards = 16
	}
	if c.CacheEntries == 0 {
		c.CacheEntries = 4096
	}
	return c
}

// Stats are serving-layer lifetime counters, all monotone.
type Stats struct {
	// Submitted counts queries that entered Query.
	Submitted uint64
	// Executed counts queries a worker ran against the backend.
	Executed uint64
	// CacheHits counts queries answered from the result cache.
	CacheHits uint64
	// CacheMisses counts queries that had to execute (cache enabled).
	CacheMisses uint64
	// Canceled counts queries abandoned by their context — while queued,
	// while waiting for a worker, or before admission.
	Canceled uint64
	// Uncacheable counts results not published at all: the backend
	// reported no valid execution fingerprint to key them under.
	Uncacheable uint64
	// Republished counts results published under their execution-time
	// fingerprint because a mutation of candidate segments landed between
	// admission and execution. The result is still cached — it is
	// consistent with the state the execution observed — just not under
	// the key admission looked up. Mutations confined to segments the
	// query never reads change neither fingerprint and do not count.
	Republished uint64
}

// job is one admitted query.
type job struct {
	ctx  context.Context
	q    *query.Query
	key  string // admission-time cache key, empty when caching is off
	done chan outcome
}

type outcome struct {
	res  *exec.Result
	info core.ExecInfo
	err  error
}

// Server is the concurrent serving layer: a bounded worker pool with an
// admission queue in front of a Backend, and a versioned result cache.
// All methods are safe for concurrent use.
type Server struct {
	backend Backend
	cfg     Config
	cache   *resultCache // nil when caching is disabled

	queue chan *job
	done  chan struct{} // closed by Close
	wg    sync.WaitGroup
	once  sync.Once

	submitted   atomic.Uint64
	executed    atomic.Uint64
	cacheHits   atomic.Uint64
	cacheMisses atomic.Uint64
	canceled    atomic.Uint64
	uncacheable atomic.Uint64
	republished atomic.Uint64
}

// New starts a server over backend and returns it running; callers own the
// shutdown via Close.
func New(backend Backend, cfg Config) *Server {
	cfg = cfg.withDefaults()
	s := &Server{
		backend: backend,
		cfg:     cfg,
		queue:   make(chan *job, cfg.QueueDepth),
		done:    make(chan struct{}),
	}
	if cfg.CacheEntries > 0 {
		s.cache = newResultCache(cfg.CacheShards, cfg.CacheEntries)
	}
	s.wg.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s
}

// Close stops the workers. Queries already queued or in flight receive
// ErrClosed; Close blocks until every worker has exited. Closing twice is
// safe.
func (s *Server) Close() {
	s.once.Do(func() { close(s.done) })
	s.wg.Wait()
}

// Stats snapshots the serving counters.
func (s *Server) Stats() Stats {
	return Stats{
		Submitted:   s.submitted.Load(),
		Executed:    s.executed.Load(),
		CacheHits:   s.cacheHits.Load(),
		CacheMisses: s.cacheMisses.Load(),
		Canceled:    s.canceled.Load(),
		Uncacheable: s.uncacheable.Load(),
		Republished: s.republished.Load(),
	}
}

// CacheSize returns the number of live result-cache entries (0 when caching
// is disabled). Stale-version entries count until the LRU recycles them.
func (s *Server) CacheSize() int {
	if s.cache == nil {
		return 0
	}
	return s.cache.size()
}

// Query serves one logical query: answered from the result cache when an
// entry exists for the query's current touch fingerprint — every segment
// the query may read is unchanged — otherwise admitted to the worker pool
// and executed. It blocks until the result is ready, ctx is canceled, or
// the server closes. A cache hit sets ExecInfo.CacheHit, reports the hit's own
// (sub-millisecond) latency in ExecInfo.Duration, and costs no queue slot.
//
// Results may be shared: a cached *exec.Result is handed to every client
// that hits it. Treat returned results as read-only — mutating Data or Rows
// in place would corrupt what other clients see.
func (s *Server) Query(ctx context.Context, q *query.Query) (*exec.Result, core.ExecInfo, error) {
	start := time.Now()
	if ctx == nil {
		ctx = context.Background()
	}
	s.submitted.Add(1)
	if err := ctx.Err(); err != nil {
		s.canceled.Add(1)
		return nil, core.ExecInfo{}, err
	}
	// A closed server refuses all queries, cache hits included: Close is a
	// fence — nothing answers after it.
	select {
	case <-s.done:
		return nil, core.ExecInfo{}, ErrClosed
	default:
	}

	var key string
	if s.cache != nil {
		// Admission: fingerprint the candidate touch set — the segments q
		// may read per zone-map pruning, with their versions — and look the
		// cache up under it. A cached entry is addressable exactly while
		// every segment that could contribute to the result is unchanged;
		// mutations confined to other segments (a tail append behind a
		// selective predicate, a reorg of segments this query never reads)
		// leave the entry live.
		fp, err := s.backend.Fingerprint(q)
		if err != nil {
			return nil, core.ExecInfo{}, err
		}
		key = cacheKey(q.Table, q.String(), fp)
		if res, info, ok := s.cache.get(key); ok {
			s.cacheHits.Add(1)
			info.CacheHit = true
			// Report the hit's latency, not the original execution's scan
			// time, so per-query latency accounting reflects what the
			// caller actually waited.
			info.Duration = time.Since(start)
			info.CompileTime = 0
			return res, info, nil
		}
		s.cacheMisses.Add(1)
	}

	j := &job{ctx: ctx, q: q, key: key, done: make(chan outcome, 1)}

	// Admission: block for a queue slot, but never past cancellation or
	// shutdown.
	select {
	case s.queue <- j:
	case <-ctx.Done():
		s.canceled.Add(1)
		return nil, core.ExecInfo{}, ctx.Err()
	case <-s.done:
		return nil, core.ExecInfo{}, ErrClosed
	}

	// Wait for a worker. The done channel is buffered, so a worker finishing
	// after the client gave up does not block.
	select {
	case out := <-j.done:
		return out.res, out.info, out.err
	case <-ctx.Done():
		s.canceled.Add(1)
		return nil, core.ExecInfo{}, ctx.Err()
	case <-s.done:
		return nil, core.ExecInfo{}, ErrClosed
	}
}

// worker drains the admission queue until shutdown.
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case j := <-s.queue:
			s.serve(j)
		case <-s.done:
			return
		}
	}
}

// serve executes one admitted job and publishes the result.
func (s *Server) serve(j *job) {
	// The client may have left while the job sat in the queue; skip the scan.
	if err := j.ctx.Err(); err != nil {
		j.done <- outcome{err: err}
		return
	}
	res, info, err := s.backend.Exec(j.q)
	s.executed.Add(1)
	if err == nil && s.cache != nil && j.key != "" {
		// Publish under the fingerprint the execution observed (computed by
		// the engine under the lock the scan held), not blindly under the
		// admission-time key: if a mutation of candidate segments landed
		// between admission and execution, the admission key now names a
		// state that no longer exists, while the execution key names
		// exactly the state the result was read from — later identical
		// queries admit against that state and hit. This is the
		// vector-comparison generalization of the old whole-relation
		// version re-check: a bump confined to segments the query never
		// reads changes neither fingerprint, so the keys coincide and the
		// result publishes normally instead of being discarded.
		if fp := info.Fingerprint; fp.Valid() {
			pubKey := cacheKey(j.q.Table, j.q.String(), fp)
			s.cache.put(pubKey, res, info)
			if pubKey != j.key {
				s.republished.Add(1)
			}
		} else {
			// No fingerprint, no safe key: the backend could not tie the
			// result to a relation state.
			s.uncacheable.Add(1)
		}
	}
	j.done <- outcome{res: res, info: info, err: err}
}
