package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"h2o/internal/core"
	"h2o/internal/data"
	"h2o/internal/exec"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// engineBackend adapts a single core.Engine to the Backend interface, the
// way the facade does for a whole catalog.
type engineBackend struct {
	table string
	e     *core.Engine
}

func (b *engineBackend) Exec(q *query.Query) (*exec.Result, core.ExecInfo, error) {
	if q.Table != b.table {
		return nil, core.ExecInfo{}, fmt.Errorf("unknown table %q", q.Table)
	}
	return b.e.Execute(q)
}

func (b *engineBackend) Fingerprint(q *query.Query) (core.TouchFingerprint, error) {
	if q.Table != b.table {
		return core.TouchFingerprint{}, fmt.Errorf("unknown table %q", q.Table)
	}
	return b.e.QueryFingerprint(q), nil
}

// ExecDelta and Version make engineBackend a DeltaBackend and a
// VersionBackend, as the facade is: repairable aggregate queries take the
// delta tier and admissions memoize their fingerprints, so the serving
// tests exercise the production admission path end to end.
func (b *engineBackend) ExecDelta(q *query.Query, have map[int]uint64) (*core.DeltaScan, bool, error) {
	if q.Table != b.table {
		return nil, false, fmt.Errorf("unknown table %q", q.Table)
	}
	return b.e.QueryDelta(q, have)
}

func (b *engineBackend) Version(table string) (uint64, error) {
	if table != b.table {
		return 0, fmt.Errorf("unknown table %q", table)
	}
	return b.e.Version(), nil
}

func newTestBackend(t testing.TB, rows int) *engineBackend {
	t.Helper()
	tb := data.Generate(data.SyntheticSchema("R", 8), rows, 5)
	return &engineBackend{table: "R", e: core.New(storage.BuildColumnMajor(tb), core.DefaultOptions())}
}

func testQuery(attr int) *query.Query {
	return query.Aggregation("R", expr.AggMax, []data.AttrID{attr}, query.PredLt((attr+1)%8, 0))
}

func TestCacheHitAndStats(t *testing.T) {
	b := newTestBackend(t, 2_000)
	s := New(b, Config{Workers: 2})
	defer s.Close()

	q := testQuery(0)
	r1, i1, err := s.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if i1.CacheHit {
		t.Fatal("first execution reported a cache hit")
	}
	r2, i2, err := s.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !i2.CacheHit {
		t.Fatal("second execution missed the cache")
	}
	if !r1.Equal(r2) {
		t.Fatal("cached result differs from executed result")
	}
	st := s.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 || st.Executed != 1 || st.Submitted != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestVersionBumpInvalidates(t *testing.T) {
	b := newTestBackend(t, 1_000)
	s := New(b, Config{Workers: 2})
	defer s.Close()

	q := query.Aggregation("R", expr.AggCount, []data.AttrID{0}, nil)
	r1, _, err := s.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.At(0, 0) != 1_000 {
		t.Fatalf("count = %d", r1.At(0, 0))
	}

	// Insert: the relation version bumps, so the cached count is stranded
	// under the old key and the next query recomputes.
	if err := b.e.Insert([][]data.Value{{1, 2, 3, 4, 5, 6, 7, 8}}); err != nil {
		t.Fatal(err)
	}
	r2, i2, err := s.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if i2.CacheHit {
		t.Fatal("stale cache entry served after insert")
	}
	if r2.At(0, 0) != 1_001 {
		t.Fatalf("post-insert count = %d, want 1001", r2.At(0, 0))
	}

	// A layout reorganization also bumps the version: same invalidation
	// discipline for adaptation as for data change.
	g, err := storage.Stitch(b.e.Relation(), []data.AttrID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.e.Relation().AddGroup(g); err != nil {
		t.Fatal(err)
	}
	_, i3, err := s.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if i3.CacheHit {
		t.Fatal("stale cache entry served after reorganization")
	}
	// And with no further mutation, the recomputed entry now hits.
	_, i4, err := s.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !i4.CacheHit {
		t.Fatal("fresh entry not served after recompute")
	}
}

func TestContextCancellation(t *testing.T) {
	// A backend slow enough that jobs pile up behind one worker.
	blocked := make(chan struct{})
	release := make(chan struct{})
	b := &stubBackend{
		exec: func(q *query.Query) (*exec.Result, core.ExecInfo, error) {
			close(blocked)
			<-release
			return &exec.Result{Cols: []string{"x"}, Rows: 1, Data: []data.Value{1}}, core.ExecInfo{}, nil
		},
	}
	s := New(b, Config{Workers: 1, QueueDepth: 1, CacheEntries: -1})
	defer func() { close(release); s.Close() }()

	// First query occupies the only worker.
	go s.Query(context.Background(), query.Projection("R", []data.AttrID{0}, nil))
	<-blocked

	// Second query sits in the queue; cancel it while queued.
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := s.Query(ctx, query.Projection("R", []data.AttrID{1}, nil))
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond) // let it enqueue
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled query did not return")
	}

	// An already-canceled context never admits.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, _, err := s.Query(ctx2, query.Projection("R", []data.AttrID{2}, nil)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled query: err = %v", err)
	}
	if st := s.Stats(); st.Canceled < 2 {
		t.Fatalf("Canceled = %d, want >= 2", st.Canceled)
	}
}

// stubBackend lets tests script execution behavior. Its admission
// fingerprint is derived from the digest counter, so bumping digest models
// a mutation of segments the query touches.
type stubBackend struct {
	exec   func(q *query.Query) (*exec.Result, core.ExecInfo, error)
	digest atomic.Uint64
}

func (b *stubBackend) fp() core.TouchFingerprint {
	return core.TouchFingerprint{Digest: b.digest.Load() + 1, Segments: 1, MaxVersion: 1}
}

func (b *stubBackend) Exec(q *query.Query) (*exec.Result, core.ExecInfo, error) { return b.exec(q) }
func (b *stubBackend) Fingerprint(*query.Query) (core.TouchFingerprint, error) {
	return b.fp(), nil
}

// TestMidFlightMutationRepublishes is the regression test for the old
// whole-relation re-check, which discarded the result on *any* version
// bump. With fingerprint keying, a mutation of candidate segments between
// admission and execution republishes the result under the execution-time
// fingerprint — the state it is actually consistent with — so the very next
// identical query hits instead of re-executing.
func TestMidFlightMutationRepublishes(t *testing.T) {
	b := &stubBackend{}
	b.exec = func(q *query.Query) (*exec.Result, core.ExecInfo, error) {
		// A mutation of a candidate segment lands mid-execution: the
		// execution observes the post-mutation fingerprint.
		b.digest.Add(1)
		return &exec.Result{Cols: []string{"x"}, Rows: 1, Data: []data.Value{42}},
			core.ExecInfo{Fingerprint: b.fp()}, nil
	}
	s := New(b, Config{Workers: 1})
	defer s.Close()

	q := query.Projection("R", []data.AttrID{0}, nil)
	if _, _, err := s.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if n := s.CacheSize(); n != 1 {
		t.Fatalf("mid-flight-mutation result not republished (%d entries)", n)
	}
	if st := s.Stats(); st.Republished != 1 || st.Uncacheable != 0 {
		t.Fatalf("stats = %+v, want Republished=1 Uncacheable=0", st)
	}

	// The republished entry is keyed under the state the execution saw —
	// which is the current state — so the repeat is a hit.
	b.exec = func(q *query.Query) (*exec.Result, core.ExecInfo, error) {
		t.Error("repeat query re-executed instead of hitting the republished entry")
		return nil, core.ExecInfo{}, nil
	}
	_, info, err := s.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !info.CacheHit {
		t.Fatal("repeat query missed the republished entry")
	}
}

// TestNoFingerprintNotCached: a backend that cannot tie a result to a
// relation state (zero fingerprint) gets the result through to the caller
// but never into the cache.
func TestNoFingerprintNotCached(t *testing.T) {
	b := &stubBackend{}
	b.exec = func(q *query.Query) (*exec.Result, core.ExecInfo, error) {
		return &exec.Result{Cols: []string{"x"}, Rows: 1, Data: []data.Value{42}}, core.ExecInfo{}, nil
	}
	s := New(b, Config{Workers: 1})
	defer s.Close()

	q := query.Projection("R", []data.AttrID{0}, nil)
	if _, _, err := s.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if n := s.CacheSize(); n != 0 {
		t.Fatalf("fingerprint-less result was cached (%d entries)", n)
	}
	if st := s.Stats(); st.Uncacheable != 1 || st.Republished != 0 {
		t.Fatalf("stats = %+v, want Uncacheable=1 Republished=0", st)
	}
}

func TestClose(t *testing.T) {
	b := newTestBackend(t, 100)
	s := New(b, Config{Workers: 2})
	// Populate the cache so the post-Close query would hit if it were
	// consulted: Close is a fence, cache hits included.
	if _, _, err := s.Query(context.Background(), testQuery(0)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if _, _, err := s.Query(context.Background(), testQuery(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("query on closed server: err = %v, want ErrClosed", err)
	}
}

func TestCacheDisabled(t *testing.T) {
	b := newTestBackend(t, 500)
	s := New(b, Config{Workers: 2, CacheEntries: -1})
	defer s.Close()
	q := testQuery(3)
	for i := 0; i < 3; i++ {
		if _, info, err := s.Query(context.Background(), q); err != nil {
			t.Fatal(err)
		} else if info.CacheHit {
			t.Fatal("cache hit with caching disabled")
		}
	}
	if st := s.Stats(); st.Executed != 3 || st.CacheHits != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestConcurrentClients is the serving-layer stress test: many clients,
// mixed hit/miss traffic, a concurrent writer bumping versions. Run under
// -race in CI.
func TestConcurrentClients(t *testing.T) {
	b := newTestBackend(t, 2_000)
	s := New(b, Config{Workers: 4, QueueDepth: 8})
	defer s.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, 9)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, _, err := s.Query(context.Background(), testQuery((c+i)%8)); err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := b.e.Insert([][]data.Value{{1, 2, 3, 4, 5, 6, 7, 8}}); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	st := s.Stats()
	if st.Submitted != 400 {
		t.Fatalf("Submitted = %d, want 400", st.Submitted)
	}
	if st.Executed+st.CacheHits < 400 {
		t.Fatalf("Executed+CacheHits = %d, want >= 400", st.Executed+st.CacheHits)
	}
}

// newSegmentedBackend builds an engine over append-ordered data (attribute
// 0 == row position) with small segments, so zone maps give queries over an
// a0 range a candidate set of exactly the segments holding that range.
func newSegmentedBackend(t testing.TB, rows, segCap int, opts core.Options) *engineBackend {
	t.Helper()
	tb := data.GenerateTimeSeries(data.SyntheticSchema("R", 4), rows, 99)
	return &engineBackend{table: "R", e: core.New(storage.BuildColumnMajorSeg(tb, segCap), opts)}
}

// frozenOptions disables adaptation so no background reorganization can
// bump segment versions underneath the precision assertions.
func frozenOptions() core.Options {
	opts := core.DefaultOptions()
	opts.Mode = core.ModeFrozen
	return opts
}

// coldSegQuery touches only segment 0: a0 < segCap prunes every later
// segment (their a0 minimum is >= segCap).
func coldSegQuery(segCap int) *query.Query {
	return query.Aggregation("R", expr.AggSum, []data.AttrID{1}, query.PredLt(0, data.Value(segCap)))
}

// TestTailAppendInvalidatesPrecisely: after a tail append, cached entries
// for queries whose candidate segments exclude the tail keep hitting, while
// full scans miss — invalidation is per touched-segment set, not per
// relation.
func TestTailAppendInvalidatesPrecisely(t *testing.T) {
	const segCap, segs = 256, 8
	b := newSegmentedBackend(t, segs*segCap, segCap, frozenOptions())
	s := New(b, Config{Workers: 2})
	defer s.Close()
	ctx := context.Background()

	cold := coldSegQuery(segCap)
	full := query.Aggregation("R", expr.AggCount, []data.AttrID{1}, nil)

	coldRes, info, err := s.Query(ctx, cold)
	if err != nil || info.CacheHit {
		t.Fatalf("first cold query: err=%v hit=%v", err, info.CacheHit)
	}
	if got := len(info.SegmentsTouched); got != 1 || info.SegmentsTouched[0] != 0 {
		t.Fatalf("cold query touched %v, want [0]", info.SegmentsTouched)
	}
	if _, _, err := s.Query(ctx, full); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 10; i++ {
		// Append behind the cold query's predicate: only the tail mutates.
		if err := b.e.Insert([][]data.Value{{data.Value(10_000_000 + i), 1, 2, 3}}); err != nil {
			t.Fatal(err)
		}
		got, infoC, err := s.Query(ctx, cold)
		if err != nil {
			t.Fatal(err)
		}
		if !infoC.CacheHit {
			t.Fatalf("append %d: cold-segment query was invalidated by a tail append", i)
		}
		if !got.Equal(coldRes) {
			t.Fatalf("append %d: cold-segment result changed", i)
		}
		resF, infoF, err := s.Query(ctx, full)
		if err != nil {
			t.Fatal(err)
		}
		if infoF.CacheHit {
			t.Fatalf("append %d: full scan served a stale cached count", i)
		}
		if want := data.Value(segs*segCap + i + 1); resF.At(0, 0) != want {
			t.Fatalf("append %d: count = %d, want %d", i, resF.At(0, 0), want)
		}
	}

	st := s.Stats()
	// Cold query: 1 miss then 10 hits. Full scan: 11 misses.
	if st.CacheHits != 10 {
		t.Fatalf("CacheHits = %d, want 10 (stats %+v)", st.CacheHits, st)
	}
	if st.CacheMisses != 12 {
		t.Fatalf("CacheMisses = %d, want 12 (stats %+v)", st.CacheMisses, st)
	}
}

// TestReorgInvalidatesPrecisely: reorganizing one segment invalidates only
// queries whose candidate set includes it.
func TestReorgInvalidatesPrecisely(t *testing.T) {
	const segCap, segs = 256, 8
	b := newSegmentedBackend(t, segs*segCap, segCap, frozenOptions())
	s := New(b, Config{Workers: 2})
	defer s.Close()
	ctx := context.Background()

	cold := coldSegQuery(segCap)
	// hot touches only segment 6: segCap*6 <= a0 < segCap*7.
	hot := query.Aggregation("R", expr.AggSum, []data.AttrID{1},
		query.ConjLtGt(0, data.Value(7*segCap), 0, data.Value(6*segCap-1)))

	if _, info, err := s.Query(ctx, cold); err != nil || info.CacheHit {
		t.Fatalf("cold: err=%v hit=%v", err, info.CacheHit)
	}
	_, info, err := s.Query(ctx, hot)
	if err != nil {
		t.Fatal(err)
	}
	if got := info.SegmentsTouched; len(got) != 1 || got[0] != 6 {
		t.Fatalf("hot query touched %v, want [6]", got)
	}

	// Reorganize segment 6 only (a segment-local group add, as incremental
	// adaptation does). No queries are in flight: direct mutation is safe.
	seg := b.e.Relation().Segments[6]
	g, err := storage.StitchSeg(seg, []data.AttrID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := seg.AddGroup(g); err != nil {
		t.Fatal(err)
	}

	if _, info, err := s.Query(ctx, cold); err != nil || !info.CacheHit {
		t.Fatalf("cold query was invalidated by a reorg of a segment it never reads (err=%v hit=%v)", err, info.CacheHit)
	}
	if _, info, err := s.Query(ctx, hot); err != nil || info.CacheHit {
		t.Fatalf("hot query served stale result across its segment's reorg (err=%v hit=%v)", err, info.CacheHit)
	}
	// Recomputed entry hits again.
	if _, info, err := s.Query(ctx, hot); err != nil || !info.CacheHit {
		t.Fatalf("recomputed hot entry did not hit (err=%v hit=%v)", err, info.CacheHit)
	}
}

// TestSpillCycleInvalidatesNothing: evicting and faulting segments under a
// memory budget changes no fingerprint — cached entries keep hitting.
func TestSpillCycleInvalidatesNothing(t *testing.T) {
	const segCap, segs = 256, 8
	opts := frozenOptions()
	opts.MemoryBudgetBytes = 1
	opts.SpillDir = t.TempDir()
	b := newSegmentedBackend(t, segs*segCap, segCap, opts)
	defer b.e.Close()
	s := New(b, Config{Workers: 2})
	defer s.Close()
	ctx := context.Background()

	cold := coldSegQuery(segCap)
	full := query.Aggregation("R", expr.AggMax, []data.AttrID{1}, nil)
	for _, q := range []*query.Query{cold, full} {
		if _, _, err := s.Query(ctx, q); err != nil {
			t.Fatal(err)
		}
	}
	b.e.EnforceBudget()
	if ts := b.e.TierStats(); ts.SpilledSegments == 0 {
		t.Fatalf("budget spilled nothing: %+v", ts)
	}
	for _, q := range []*query.Query{cold, full} {
		if _, info, err := s.Query(ctx, q); err != nil || !info.CacheHit {
			t.Fatalf("spill cycle invalidated a cached result (err=%v hit=%v)", err, info.CacheHit)
		}
	}
}

// TestServeStressSegmentPrecise mixes appends, adaptive reorganizations,
// budget evictions and cached reads under -race: the fingerprint path
// (admission pruning + publish) must stay coherent with concurrent
// mutations and residency changes.
func TestServeStressSegmentPrecise(t *testing.T) {
	const segCap, segs = 128, 8
	opts := core.DefaultOptions() // adaptive: reorgs fire as patterns repeat
	opts.MemoryBudgetBytes = 64 * 1024
	opts.SpillDir = t.TempDir()
	opts.Parallelism = 2
	b := newSegmentedBackend(t, segs*segCap, segCap, opts)
	defer b.e.Close()
	s := New(b, Config{Workers: 4, QueueDepth: 16})
	defer s.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for c := 0; c < 6; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 60; i++ {
				var q *query.Query
				switch (c + i) % 3 {
				case 0:
					q = coldSegQuery(segCap)
				case 1:
					q = query.Aggregation("R", expr.AggMax, []data.AttrID{(c + i) % 4}, nil)
				default:
					q = query.Projection("R", []data.AttrID{1, 2},
						query.PredLt(0, data.Value((i%segs)*segCap)))
				}
				if _, _, err := s.Query(context.Background(), q); err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			if err := b.e.Insert([][]data.Value{{data.Value(1_000_000 + i), 1, 2, 3}}); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 30; i++ {
			b.e.EnforceBudget()
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if st := s.Stats(); st.Submitted != 360 || st.Executed+st.CacheHits < 360 {
		t.Fatalf("stats = %+v", st)
	}
}
