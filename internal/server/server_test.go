package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"h2o/internal/core"
	"h2o/internal/data"
	"h2o/internal/exec"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// engineBackend adapts a single core.Engine to the Backend interface, the
// way the facade does for a whole catalog.
type engineBackend struct {
	table string
	e     *core.Engine
}

func (b *engineBackend) Exec(q *query.Query) (*exec.Result, core.ExecInfo, error) {
	if q.Table != b.table {
		return nil, core.ExecInfo{}, fmt.Errorf("unknown table %q", q.Table)
	}
	return b.e.Execute(q)
}

func (b *engineBackend) Version(table string) (uint64, error) {
	if table != b.table {
		return 0, fmt.Errorf("unknown table %q", table)
	}
	return b.e.Version(), nil
}

func newTestBackend(t testing.TB, rows int) *engineBackend {
	t.Helper()
	tb := data.Generate(data.SyntheticSchema("R", 8), rows, 5)
	return &engineBackend{table: "R", e: core.New(storage.BuildColumnMajor(tb), core.DefaultOptions())}
}

func testQuery(attr int) *query.Query {
	return query.Aggregation("R", expr.AggMax, []data.AttrID{attr}, query.PredLt((attr+1)%8, 0))
}

func TestCacheHitAndStats(t *testing.T) {
	b := newTestBackend(t, 2_000)
	s := New(b, Config{Workers: 2})
	defer s.Close()

	q := testQuery(0)
	r1, i1, err := s.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if i1.CacheHit {
		t.Fatal("first execution reported a cache hit")
	}
	r2, i2, err := s.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !i2.CacheHit {
		t.Fatal("second execution missed the cache")
	}
	if !r1.Equal(r2) {
		t.Fatal("cached result differs from executed result")
	}
	st := s.Stats()
	if st.CacheHits != 1 || st.CacheMisses != 1 || st.Executed != 1 || st.Submitted != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestVersionBumpInvalidates(t *testing.T) {
	b := newTestBackend(t, 1_000)
	s := New(b, Config{Workers: 2})
	defer s.Close()

	q := query.Aggregation("R", expr.AggCount, []data.AttrID{0}, nil)
	r1, _, err := s.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if r1.At(0, 0) != 1_000 {
		t.Fatalf("count = %d", r1.At(0, 0))
	}

	// Insert: the relation version bumps, so the cached count is stranded
	// under the old key and the next query recomputes.
	if err := b.e.Insert([][]data.Value{{1, 2, 3, 4, 5, 6, 7, 8}}); err != nil {
		t.Fatal(err)
	}
	r2, i2, err := s.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if i2.CacheHit {
		t.Fatal("stale cache entry served after insert")
	}
	if r2.At(0, 0) != 1_001 {
		t.Fatalf("post-insert count = %d, want 1001", r2.At(0, 0))
	}

	// A layout reorganization also bumps the version: same invalidation
	// discipline for adaptation as for data change.
	g, err := storage.Stitch(b.e.Relation(), []data.AttrID{0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.e.Relation().AddGroup(g); err != nil {
		t.Fatal(err)
	}
	_, i3, err := s.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if i3.CacheHit {
		t.Fatal("stale cache entry served after reorganization")
	}
	// And with no further mutation, the recomputed entry now hits.
	_, i4, err := s.Query(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	if !i4.CacheHit {
		t.Fatal("fresh entry not served after recompute")
	}
}

func TestContextCancellation(t *testing.T) {
	// A backend slow enough that jobs pile up behind one worker.
	blocked := make(chan struct{})
	release := make(chan struct{})
	b := &stubBackend{
		exec: func(q *query.Query) (*exec.Result, core.ExecInfo, error) {
			close(blocked)
			<-release
			return &exec.Result{Cols: []string{"x"}, Rows: 1, Data: []data.Value{1}}, core.ExecInfo{}, nil
		},
	}
	s := New(b, Config{Workers: 1, QueueDepth: 1, CacheEntries: -1})
	defer func() { close(release); s.Close() }()

	// First query occupies the only worker.
	go s.Query(context.Background(), query.Projection("R", []data.AttrID{0}, nil))
	<-blocked

	// Second query sits in the queue; cancel it while queued.
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, _, err := s.Query(ctx, query.Projection("R", []data.AttrID{1}, nil))
		errCh <- err
	}()
	time.Sleep(10 * time.Millisecond) // let it enqueue
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("canceled query did not return")
	}

	// An already-canceled context never admits.
	ctx2, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, _, err := s.Query(ctx2, query.Projection("R", []data.AttrID{2}, nil)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled query: err = %v", err)
	}
	if st := s.Stats(); st.Canceled < 2 {
		t.Fatalf("Canceled = %d, want >= 2", st.Canceled)
	}
}

// stubBackend lets tests script execution behavior.
type stubBackend struct {
	exec    func(q *query.Query) (*exec.Result, core.ExecInfo, error)
	version atomic.Uint64
}

func (b *stubBackend) Exec(q *query.Query) (*exec.Result, core.ExecInfo, error) { return b.exec(q) }
func (b *stubBackend) Version(string) (uint64, error)                           { return b.version.Load(), nil }

func TestVersionMovedDuringExecutionNotCached(t *testing.T) {
	b := &stubBackend{}
	b.exec = func(q *query.Query) (*exec.Result, core.ExecInfo, error) {
		// A mutation lands mid-execution.
		b.version.Add(1)
		return &exec.Result{Cols: []string{"x"}, Rows: 1, Data: []data.Value{42}}, core.ExecInfo{}, nil
	}
	s := New(b, Config{Workers: 1})
	defer s.Close()

	q := query.Projection("R", []data.AttrID{0}, nil)
	if _, _, err := s.Query(context.Background(), q); err != nil {
		t.Fatal(err)
	}
	if n := s.CacheSize(); n != 0 {
		t.Fatalf("mid-flight-mutation result was cached (%d entries)", n)
	}
	if st := s.Stats(); st.Uncacheable != 1 {
		t.Fatalf("Uncacheable = %d, want 1", st.Uncacheable)
	}
}

func TestClose(t *testing.T) {
	b := newTestBackend(t, 100)
	s := New(b, Config{Workers: 2})
	// Populate the cache so the post-Close query would hit if it were
	// consulted: Close is a fence, cache hits included.
	if _, _, err := s.Query(context.Background(), testQuery(0)); err != nil {
		t.Fatal(err)
	}
	s.Close()
	s.Close() // idempotent
	if _, _, err := s.Query(context.Background(), testQuery(0)); !errors.Is(err, ErrClosed) {
		t.Fatalf("query on closed server: err = %v, want ErrClosed", err)
	}
}

func TestCacheDisabled(t *testing.T) {
	b := newTestBackend(t, 500)
	s := New(b, Config{Workers: 2, CacheEntries: -1})
	defer s.Close()
	q := testQuery(3)
	for i := 0; i < 3; i++ {
		if _, info, err := s.Query(context.Background(), q); err != nil {
			t.Fatal(err)
		} else if info.CacheHit {
			t.Fatal("cache hit with caching disabled")
		}
	}
	if st := s.Stats(); st.Executed != 3 || st.CacheHits != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestConcurrentClients is the serving-layer stress test: many clients,
// mixed hit/miss traffic, a concurrent writer bumping versions. Run under
// -race in CI.
func TestConcurrentClients(t *testing.T) {
	b := newTestBackend(t, 2_000)
	s := New(b, Config{Workers: 4, QueueDepth: 8})
	defer s.Close()

	var wg sync.WaitGroup
	errCh := make(chan error, 9)
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				if _, _, err := s.Query(context.Background(), testQuery((c+i)%8)); err != nil {
					errCh <- err
					return
				}
			}
		}(c)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			if err := b.e.Insert([][]data.Value{{1, 2, 3, 4, 5, 6, 7, 8}}); err != nil {
				errCh <- err
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	st := s.Stats()
	if st.Submitted != 400 {
		t.Fatalf("Submitted = %d, want 400", st.Submitted)
	}
	if st.Executed+st.CacheHits < 400 {
		t.Fatalf("Executed+CacheHits = %d, want >= 400", st.Executed+st.CacheHits)
	}
}
