package server

import (
	"context"
	"fmt"
	"math/rand"
	"strconv"
	"testing"

	"h2o/internal/core"
	"h2o/internal/data"
	"h2o/internal/exec"
	"h2o/internal/expr"
	"h2o/internal/query"
)

// mapLive adapts a plain map to an evictIndex liveness probe.
func mapLive(m map[string]uint64) func(string) (uint64, bool) {
	return func(k string) (uint64, bool) {
		t, ok := m[k]
		return t, ok
	}
}

// TestEvictIndexLRUOrder: with ticks at rest, pop returns keys in strict
// ascending tick order.
func TestEvictIndexLRUOrder(t *testing.T) {
	live := map[string]uint64{}
	var ix evictIndex
	perm := rand.New(rand.NewSource(1)).Perm(100)
	for i, p := range perm {
		k := "k" + strconv.Itoa(i)
		live[k] = uint64(p + 1)
		ix.push(k, uint64(p+1))
	}
	for want := 1; want <= 100; want++ {
		k := ix.pop(mapLive(live), "")
		if k == "" {
			t.Fatalf("pop %d: empty", want)
		}
		if got := live[k]; got != uint64(want) {
			t.Fatalf("pop %d returned key with tick %d", want, got)
		}
		delete(live, k)
	}
	if k := ix.pop(mapLive(live), ""); k != "" {
		t.Fatalf("pop on drained index = %q, want empty", k)
	}
}

// TestEvictIndexStaleTicks: hits bump ticks without touching the heap; pop
// must still return the key whose *live* tick is smallest.
func TestEvictIndexStaleTicks(t *testing.T) {
	live := map[string]uint64{"a": 1, "b": 2, "c": 3}
	var ix evictIndex
	for k, tick := range live {
		ix.push(k, tick)
	}
	// "a" was hit twice since insertion; "b" once. "c" is now coldest.
	live["a"] = 10
	live["b"] = 5
	if k := ix.pop(mapLive(live), ""); k != "c" {
		t.Fatalf("pop = %q, want c (live coldest)", k)
	}
	delete(live, "c")
	if k := ix.pop(mapLive(live), ""); k != "b" {
		t.Fatalf("pop = %q, want b", k)
	}
}

// TestEvictIndexSkipAndDead: the skip key is never returned (and survives
// the pop for later rounds); dead keys are discarded silently.
func TestEvictIndexSkipAndDead(t *testing.T) {
	live := map[string]uint64{"keep": 1, "dead": 2, "victim": 3}
	var ix evictIndex
	for k, tick := range live {
		ix.push(k, tick)
	}
	delete(live, "dead")
	if k := ix.pop(mapLive(live), "keep"); k != "victim" {
		t.Fatalf("pop = %q, want victim (keep skipped, dead discarded)", k)
	}
	delete(live, "victim")
	// Nothing but the skip key remains.
	if k := ix.pop(mapLive(live), "keep"); k != "" {
		t.Fatalf("pop = %q, want empty (only skip left)", k)
	}
	// The held-aside skip pair must have been restored, not lost.
	if k := ix.pop(mapLive(live), ""); k != "keep" {
		t.Fatalf("pop = %q, want keep (skip pair restored)", k)
	}
}

// TestShardEvictionIsLRU: the result cache evicts its least-recently-used
// entry, counting lock-free get bumps as recency.
func TestShardEvictionIsLRU(t *testing.T) {
	s := &shard{items: make(map[string]*entry), cap: 3}
	res := &exec.Result{}
	s.put("a", res, core.ExecInfo{})
	s.put("b", res, core.ExecInfo{})
	s.put("c", res, core.ExecInfo{})
	// Touch "a": "b" becomes the LRU entry.
	if _, _, ok := s.get("a"); !ok {
		t.Fatal("get a missed")
	}
	s.put("d", res, core.ExecInfo{})
	if _, ok := s.items["b"]; ok {
		t.Fatalf("b survived; items=%d", len(s.items))
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := s.items[k]; !ok {
			t.Fatalf("%s was evicted, want b only", k)
		}
	}
}

// errExecBackend injects an execution-time failure for queries carrying
// the marker limit, leaving admission (fingerprint, version) intact — the
// error then surfaces through the worker's outcome channel, the path that
// must land it in the Errors bucket.
type errExecBackend struct {
	*engineBackend
}

func (b errExecBackend) Exec(q *query.Query) (*exec.Result, core.ExecInfo, error) {
	if q.Limit == 7 {
		return nil, core.ExecInfo{}, fmt.Errorf("injected execution failure")
	}
	return b.engineBackend.Exec(q)
}

// TestStatsInvariant pins the outcome bucketing law: at quiescence every
// submitted query is in exactly one of CacheHits, CacheMisses, Canceled or
// Errors.
func TestStatsInvariant(t *testing.T) {
	b := newSegmentedBackend(t, 1024, 256, frozenOptions())
	s := New(errExecBackend{b}, Config{Workers: 2})
	defer s.Close()
	ctx := context.Background()
	agg := query.Aggregation("R", expr.AggSum, []data.AttrID{1}, nil)

	// Hit + miss traffic.
	for i := 0; i < 5; i++ {
		if _, _, err := s.Query(ctx, agg); err != nil {
			t.Fatal(err)
		}
	}
	// Canceled before admission.
	cctx, cancel := context.WithCancel(ctx)
	cancel()
	if _, _, err := s.Query(cctx, agg); err == nil {
		t.Fatal("want cancellation error")
	}
	// Admission-time error: the fingerprint lookup fails on an unknown
	// table before the query is ever queued.
	if _, _, err := s.Query(ctx, query.Aggregation("S", expr.AggSum, []data.AttrID{1}, nil)); err == nil {
		t.Fatal("want unknown-table error")
	}
	// Worker-time error: admission succeeds, execution fails — the error
	// comes back through the outcome channel.
	bad := query.Aggregation("R", expr.AggSum, []data.AttrID{1}, nil)
	bad.Limit = 7
	if _, _, err := s.Query(ctx, bad); err == nil {
		t.Fatal("want injected execution error")
	}
	// Insert between repeats so the second agg query misses again.
	if err := b.e.Insert([][]data.Value{{1, 2, 3, 4}}); err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Query(ctx, agg); err != nil {
		t.Fatal(err)
	}

	st := s.Stats()
	if st.Submitted != st.CacheHits+st.CacheMisses+st.Canceled+st.Errors {
		t.Fatalf("invariant broken: submitted=%d hits=%d misses=%d canceled=%d errors=%d",
			st.Submitted, st.CacheHits, st.CacheMisses, st.Canceled, st.Errors)
	}
	if st.Canceled == 0 || st.Errors == 0 || st.CacheHits == 0 || st.CacheMisses == 0 {
		t.Fatalf("every bucket should be populated: %+v", st)
	}
}

// TestStatsInvariantClosed: submissions refused by a closed server land in
// Errors, keeping the invariant.
func TestStatsInvariantClosed(t *testing.T) {
	b := newSegmentedBackend(t, 512, 256, frozenOptions())
	s := New(b, Config{Workers: 1})
	s.Close()
	if _, _, err := s.Query(context.Background(), query.Aggregation("R", expr.AggSum, []data.AttrID{1}, nil)); err != ErrClosed {
		t.Fatalf("err = %v, want ErrClosed", err)
	}
	st := s.Stats()
	if st.Submitted != st.CacheHits+st.CacheMisses+st.Canceled+st.Errors {
		t.Fatalf("invariant broken after close: %+v", st)
	}
	if st.Errors != 1 {
		t.Fatalf("Errors = %d, want 1", st.Errors)
	}
}

// BenchmarkCacheEviction drives the result cache entirely through its
// eviction path: a single-shard cache far smaller than the key space, so
// every put past warmup evicts. This is the workload where the heap-backed
// eviction index replaced an O(n) full-map scan per insert.
func BenchmarkCacheEviction(b *testing.B) {
	const cap = 1024
	keys := make([]string, 4*cap)
	for i := range keys {
		keys[i] = fmt.Sprintf("1:R:%032d:q", i)
	}
	c := newResultCache(1, cap)
	res := &exec.Result{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.put(keys[i%len(keys)], res, core.ExecInfo{})
	}
}

// BenchmarkCacheEvictionWithHits mixes hit traffic (lock-free tick bumps
// that go stale in the heap) into the eviction-heavy workload, exercising
// the lazy reconciliation path.
func BenchmarkCacheEvictionWithHits(b *testing.B) {
	const cap = 1024
	keys := make([]string, 4*cap)
	for i := range keys {
		keys[i] = fmt.Sprintf("1:R:%032d:q", i)
	}
	c := newResultCache(1, cap)
	res := &exec.Result{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		k := keys[i%len(keys)]
		c.put(k, res, core.ExecInfo{})
		c.get(k)
		c.get(keys[(i*7)%len(keys)])
	}
}
