package server

import (
	"fmt"
	"sync"
	"testing"

	"h2o/internal/core"
	"h2o/internal/data"
	"h2o/internal/exec"
)

func res(v data.Value) *exec.Result {
	return &exec.Result{Cols: []string{"x"}, Rows: 1, Data: []data.Value{v}}
}

func TestCacheLRUEviction(t *testing.T) {
	// One shard, capacity 2: the oldest entry falls out.
	c := newResultCache(1, 2)
	c.put("a", res(1), core.ExecInfo{})
	c.put("b", res(2), core.ExecInfo{})
	if _, _, ok := c.get("a"); !ok { // touch "a": now "b" is oldest
		t.Fatal("a missing")
	}
	c.put("c", res(3), core.ExecInfo{})
	if _, _, ok := c.get("b"); ok {
		t.Fatal("LRU did not evict the least recently used entry")
	}
	if _, _, ok := c.get("a"); !ok {
		t.Fatal("recently used entry evicted")
	}
	if _, _, ok := c.get("c"); !ok {
		t.Fatal("new entry missing")
	}
	if c.size() != 2 {
		t.Fatalf("size = %d, want 2", c.size())
	}
}

func TestCacheUpdateExistingKey(t *testing.T) {
	c := newResultCache(1, 2)
	c.put("a", res(1), core.ExecInfo{})
	c.put("a", res(9), core.ExecInfo{})
	got, _, ok := c.get("a")
	if !ok || got.At(0, 0) != 9 {
		t.Fatalf("update lost: ok=%v", ok)
	}
	if c.size() != 1 {
		t.Fatalf("size = %d, want 1", c.size())
	}
}

func TestCacheShardRounding(t *testing.T) {
	c := newResultCache(5, 100) // rounds up to 8 shards
	if len(c.shards) != 8 {
		t.Fatalf("shards = %d, want 8", len(c.shards))
	}
	// Tiny capacities still give each shard at least one slot.
	c2 := newResultCache(16, 4)
	for i := 0; i < 100; i++ {
		c2.put(fmt.Sprintf("k%d", i), res(data.Value(i)), core.ExecInfo{})
	}
	if c2.size() > 16 {
		t.Fatalf("size = %d exceeds per-shard caps", c2.size())
	}
}

func TestCacheKeySeparatesTableFingerprintQuery(t *testing.T) {
	fp1 := core.TouchFingerprint{Digest: 1, Segments: 1, MaxVersion: 1}
	fp2 := core.TouchFingerprint{Digest: 2, Segments: 1, MaxVersion: 2}
	keys := map[string]bool{
		cacheKey("t1", "select x", fp1): true,
		cacheKey("t1", "select x", fp2): true,
		cacheKey("t2", "select x", fp1): true,
		cacheKey("t1", "select y", fp1): true,
		// Delimiter abuse: a table name containing the separator must not
		// collide with a (table, query) split at a different point.
		cacheKey("t1:1", "select x", fp1):  true,
		cacheKey("t1", ":1:select x", fp1): true,
	}
	if len(keys) != 6 {
		t.Fatalf("cache keys collide: %v", keys)
	}
}

func TestCacheConcurrentAccess(t *testing.T) {
	c := newResultCache(8, 256)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				k := fmt.Sprintf("k%d", (w*31+i)%64)
				if i%2 == 0 {
					c.put(k, res(data.Value(i)), core.ExecInfo{})
				} else {
					c.get(k)
				}
			}
		}(w)
	}
	wg.Wait()
}
