package harness

import (
	"context"
	"fmt"
	"time"

	"h2o/internal/core"
	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/server"
	"h2o/internal/shard"
)

// RunShard measures sharded scatter-gather serving (not a paper
// experiment): the same relation is dealt round-robin across 1/2/4/8
// in-process shards and the same workload runs against each router. Two
// costs are swept per shard count: the scatter-gather latency of a
// full-relation aggregate (the partials merge law gathers per-shard
// SegPartials into one answer), and the serving-layer repair latency
// under tail appends — where the payoff of per-shard fingerprint
// components shows up as exactly one shard rescanning one segment per
// append, regardless of shard count.
//
//	h2obench -exp shard
func RunShard(cfg Config) (*Table, error) {
	const (
		nAttrs = 8
		segCap = 1024
		rounds = 16 // append+query rounds averaged per cell
	)
	rows := cfg.Rows150
	if rows < 8*segCap {
		rows = 8 * segCap
	}

	t := &Table{
		Title: "shard: scatter-gather and repair latency vs shard count (same rows, round-robin deal)",
		Columns: []string{"shards", "exec_ms", "qps", "repair_ms",
			"repaired_segs/query"},
	}

	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, nil)
	counts := []int{1, 2, 4, 8}
	if cfg.Quick {
		counts = []int{1, 4}
	}
	for _, n := range counts {
		tb := data.GenerateTimeSeries(data.SyntheticSchema("R", nAttrs), rows, cfg.Seed)
		opts := core.DefaultOptions()
		opts.Mode = core.ModeFrozen // only the appends mutate
		opts.SegmentCapacity = segCap
		opts.Shards = n
		r := shard.New(tb, opts)

		// Scatter-gather latency: direct router executes, bypassing the
		// serving cache so every query pays the merge-law gather.
		execD := measure(cfg.Repeats, func() {
			for i := 0; i < rounds; i++ {
				if _, _, err := r.Execute(q); err != nil {
					panic(err)
				}
			}
		})
		execMs := float64(execD.Microseconds()) / 1000 / float64(rounds)
		qps := "-"
		if execD > 0 {
			qps = fmt.Sprintf("%.0f", float64(rounds)/execD.Seconds())
		}

		// Repair latency through the serving layer: seed the partials
		// payload, then alternate tail appends with repaired queries.
		srv := server.New(shard.Backend{R: r}, server.Config{Workers: 2})
		ctx := context.Background()
		if _, _, err := srv.Query(ctx, q); err != nil {
			srv.Close()
			r.Close()
			return nil, err
		}
		tuple := make([]data.Value, nAttrs)
		var total time.Duration
		for i := 0; i < rounds; i++ {
			tuple[0] = data.Value(10_000_000 + i)
			if err := r.Insert([][]data.Value{tuple}); err != nil {
				srv.Close()
				r.Close()
				return nil, err
			}
			start := time.Now()
			if _, _, err := srv.Query(ctx, q); err != nil {
				srv.Close()
				r.Close()
				return nil, err
			}
			total += time.Since(start)
		}
		st := srv.Stats()
		srv.Close()
		r.Close()

		t.AddRow(itoa(n),
			fmt.Sprintf("%.3f", execMs), qps,
			fmt.Sprintf("%.3f", float64(total.Microseconds())/1000/float64(rounds)),
			fmt.Sprintf("%.1f", float64(st.RepairedSegments)/float64(rounds)))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("%d rows, segment capacity %d, %d queries per cell; shards=1 is the unsharded baseline", rows, segCap, rounds),
		"repaired_segs/query stays ~1 at every shard count: a tail append moves one shard's fingerprint component, so repair rescans exactly one segment",
		"exec_ms is the scatter-gather path: per-shard SegPartials merged under the partials merge law, fingerprints combined order-sensitively")
	return t, nil
}
