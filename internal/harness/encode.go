package harness

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"h2o/internal/core"
	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/persist"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// RunEncode measures the compressed encoded tier (not a paper experiment):
// per-column encoded blocks (FOR / delta / RLE, picked per column at seal
// time) against the flat mini-tuple layout, on append-ordered and uniform
// data. Three contracts are on display: (a) on-disk reduction — spill
// files hold encoded blocks, so timeseries data lands at >= 2x below its
// flat volume; (b) full aggregates over encoded segments at least match
// flat scans, because block headers fold whole blocks without decoding
// (blocks_skipped); (c) selective scans stay competitive, refining only
// the blocks their predicate cannot classify from the header.
//
//	h2obench -exp encode
func RunEncode(cfg Config) (*Table, error) {
	const nAttrs = 8
	rows := cfg.Rows150
	segCap := rows / 16
	if segCap < 64 {
		segCap = 64
	}

	t := &Table{
		Title: "encode: per-column encoded segments — on-disk compression and direct-over-encoded scans vs flat",
		Columns: []string{"data", "flat_kb", "disk_kb", "disk_ratio",
			"flat_full_ms", "enc_full_ms", "blocks_skipped", "flat_sel_ms", "enc_sel_ms"},
	}

	dir, err := os.MkdirTemp("", "h2obench-encode-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(dir)

	// The full aggregate folds every block from its header; the selective
	// one reads the newest ~2% of append-ordered data (on uniform data the
	// predicate is unselective — the interesting case is ordered).
	cut := data.Value(float64(rows) * 0.98)
	fullQ := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, nil)
	selQ := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, query.PredGt(0, cut-1))

	for _, ds := range []struct {
		name string
		tb   *data.Table
	}{
		{"timeseries", data.GenerateTimeSeries(data.SyntheticSchema("R", nAttrs), rows, cfg.Seed)},
		{"uniform", data.Generate(data.SyntheticSchema("R", nAttrs), rows, cfg.Seed)},
	} {
		flatOpts := core.DefaultOptions()
		flatOpts.Mode = core.ModeFrozen
		flatEng := core.New(storage.BuildColumnMajorSeg(ds.tb, segCap), flatOpts)

		encOpts := flatOpts
		encOpts.EncodedTier = true
		encRel := storage.BuildColumnMajorSeg(ds.tb, segCap)
		encEng := core.New(encRel, encOpts)

		// On-disk volume: every sealed segment written through the spill
		// format (encoded blocks), summed against its flat byte count.
		sub := filepath.Join(dir, ds.name)
		if err := os.MkdirAll(sub, 0o755); err != nil {
			return nil, err
		}
		st, err := persist.NewSegmentStore(sub)
		if err != nil {
			return nil, err
		}
		var flatB, diskB int64
		tail := encRel.Tail()
		for si, seg := range encRel.Segments {
			if seg.Rows == 0 || seg == tail {
				continue
			}
			flatB += seg.Bytes()
			key := fmt.Sprintf("enc-%06d", si)
			if err := st.WriteSegment(key, seg); err != nil {
				return nil, err
			}
			if fi, err := os.Stat(st.Path(key)); err == nil {
				diskB += fi.Size()
			}
		}

		run := func(e *core.Engine, q *query.Query) time.Duration {
			return measure(cfg.Repeats, func() {
				if _, _, err := e.Execute(q); err != nil {
					panic(err)
				}
			})
		}
		// Warm both engines once so neither pays first-touch costs in the
		// timed runs.
		for _, q := range []*query.Query{fullQ, selQ} {
			if _, _, err := flatEng.Execute(q); err != nil {
				return nil, err
			}
		}
		_, encInfo, err := encEng.Execute(fullQ)
		if err != nil {
			return nil, err
		}

		flatFull := run(flatEng, fullQ)
		encFull := run(encEng, fullQ)
		flatSel := run(flatEng, selQ)
		encSel := run(encEng, selQ)

		diskRatio := "inf"
		if diskB > 0 {
			diskRatio = fmt.Sprintf("%.2fx", float64(flatB)/float64(diskB))
		}
		t.AddRow(ds.name, itoa(int(flatB/1024)), itoa(int(diskB/1024)), diskRatio,
			ms(flatFull), ms(encFull), itoa(encInfo.DecodeSkips), ms(flatSel), ms(encSel))
	}

	t.Notes = append(t.Notes,
		fmt.Sprintf("segment capacity %d rows; disk_kb is the spill-format (encoded-block) volume of every sealed segment", segCap),
		"disk_ratio on timeseries data must be >= 2x: sequential columns delta-encode to a few bits per value",
		"blocks_skipped: blocks the full aggregate folded from headers alone — the payloads were never decoded",
		"enc_sel_ms vs flat_sel_ms: selective scans over encoded resident segments must at least keep up")
	return t, nil
}
