package harness

import (
	"context"
	"fmt"
	"time"

	"h2o/internal/core"
	"h2o/internal/data"
	"h2o/internal/exec"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/server"
	"h2o/internal/storage"
)

// repairBackend adapts one engine to the full serving-layer capability set
// (Backend + DeltaBackend + VersionBackend), as the h2o.DB facade does for
// a catalog.
type repairBackend struct{ e *core.Engine }

func (b *repairBackend) Exec(q *query.Query) (*exec.Result, core.ExecInfo, error) {
	return b.e.Execute(q)
}
func (b *repairBackend) Fingerprint(q *query.Query) (core.TouchFingerprint, error) {
	return b.e.QueryFingerprint(q), nil
}
func (b *repairBackend) ExecDelta(q *query.Query, have map[int]uint64) (*core.DeltaScan, bool, error) {
	return b.e.QueryDelta(q, have)
}
func (b *repairBackend) Version(string) (uint64, error) { return b.e.Version(), nil }

// RunRepair measures the partial-result-reuse contract (not a paper
// experiment): a repeated full-relation aggregate over a tail-append
// workload is delta-repaired — only the changed tail segment is rescanned
// and re-combined with the cached per-segment partials — so its per-query
// cost stays flat as the relation grows, while recomputing from scratch
// (partial cache disabled) grows linearly with the segment count. Each
// table row doubles the relation; the flat-vs-linear gap is the
// experiment's result.
//
//	h2obench -exp repair
func RunRepair(cfg Config) (*Table, error) {
	const (
		nAttrs  = 8
		rounds  = 12 // append+query rounds averaged per cell
		segCap  = 1024
		nPoints = 4
	)
	base := cfg.Rows150 / 4
	if base < 4*segCap {
		base = 4 * segCap
	}

	t := &Table{
		Title: "repair: repeated aggregate under tail appends — delta repair (flat) vs full recomputation (grows with relation)",
		Columns: []string{"rows", "segments", "full_ms", "repair_ms",
			"repaired_segs/query", "speedup"},
	}

	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, nil)
	rowsAt := base
	for p := 0; p < nPoints; p++ {
		tb := data.GenerateTimeSeries(data.SyntheticSchema("R", nAttrs), rowsAt, cfg.Seed)

		repairMs, repairedSegs, err := timeRepairPoint(tb, segCap, q, rounds, 0)
		if err != nil {
			return nil, err
		}
		fullMs, _, err := timeRepairPoint(tb, segCap, q, rounds, -1)
		if err != nil {
			return nil, err
		}
		segs := (rowsAt + segCap - 1) / segCap
		speedup := "-"
		if repairMs > 0 {
			speedup = fmt.Sprintf("%.1fx", fullMs/repairMs)
		}
		t.AddRow(itoa(rowsAt), itoa(segs),
			fmt.Sprintf("%.3f", fullMs), fmt.Sprintf("%.3f", repairMs),
			fmt.Sprintf("%.1f", repairedSegs), speedup)
		rowsAt *= 2
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("segment capacity %d rows; each cell averages %d append+query rounds", segCap, rounds),
		"repair_ms must stay ~flat as rows grow: each repair rescans only the appended tail segment (repaired_segs/query ~1)",
		"full_ms grows with the segment count: with the partial cache disabled every miss rescans the whole relation")
	return t, nil
}

// timeRepairPoint measures one sweep cell: average per-query latency of the
// repeated aggregate across append+query rounds, against a server whose
// partial cache is budgeted by partialBytes (0 = server default, enabling
// delta repair; negative = disabled, every miss recomputes). It also
// returns the average segments rescanned per served query.
func timeRepairPoint(tb *data.Table, segCap int, q *query.Query, rounds int, partialBytes int64) (msPerQuery, repairedSegs float64, err error) {
	opts := core.DefaultOptions()
	opts.Mode = core.ModeFrozen // only the appends mutate
	eng := core.New(storage.BuildColumnMajorSeg(tb, segCap), opts)
	srv := server.New(&repairBackend{eng}, server.Config{Workers: 2, PartialCacheBytes: partialBytes})
	defer srv.Close()
	ctx := context.Background()

	if _, _, err := srv.Query(ctx, q); err != nil { // seed partials / warm cache
		return 0, 0, err
	}
	tuple := make([]data.Value, len(tb.Schema.Attrs))
	var total time.Duration
	for i := 0; i < rounds; i++ {
		tuple[0] = data.Value(10_000_000 + i)
		if err := eng.Insert([][]data.Value{tuple}); err != nil {
			return 0, 0, err
		}
		start := time.Now()
		if _, _, err := srv.Query(ctx, q); err != nil {
			return 0, 0, err
		}
		total += time.Since(start)
	}
	st := srv.Stats()
	return float64(total.Microseconds()) / 1000 / float64(rounds),
		float64(st.RepairedSegments) / float64(rounds), nil
}
