package harness

import (
	"fmt"
	"time"

	"h2o/internal/advisor"
	"h2o/internal/affinity"
	"h2o/internal/core"
	"h2o/internal/costmodel"
	"h2o/internal/data"
	"h2o/internal/query"
	"h2o/internal/storage"
	"h2o/internal/workload"
)

// fig7Sequence builds the §4.1 workload and relation.
func fig7Sequence(cfg Config) (*data.Table, []*query.Query) {
	const nAttrs = 150
	tb := data.Generate(data.SyntheticSchema("R", nAttrs), cfg.Rows150, cfg.Seed)
	n := 100
	if cfg.Quick {
		n = 40
	}
	qs := workload.AdaptiveSequence("R", nAttrs, tb.Rows, n, 10, 30, cfg.Seed)
	return tb, qs
}

// RunFig7 regenerates Figure 7: per-query response time of the 100-query
// evolving workload on the static row store, the static column store, H2O
// and the optimal oracle.
func RunFig7(cfg Config) (*Table, error) {
	tb, qs := fig7Sequence(cfg)

	rowEng := core.NewRowStore(tb, false) // §4.1 engines share the code base: no page padding
	colEng := core.NewColumnStore(tb)
	h2oOpts := core.DefaultOptions()
	h2oOpts.Window.InitialSize = 20 // paper: "set initially at a window size of 20 queries"
	h2o := core.NewH2O(tb, h2oOpts)
	oracle := core.NewOracle(tb)

	t := &Table{
		Title:   "fig7: query response time over the evolving workload",
		Columns: []string{"query", "row_ms", "column_ms", "h2o_ms", "optimal_ms", "h2o_event"},
	}
	var reorgs []int
	for i, q := range qs {
		_, rowInfo, err := rowEng.Execute(q)
		if err != nil {
			return nil, err
		}
		_, colInfo, err := colEng.Execute(q)
		if err != nil {
			return nil, err
		}
		resH, hInfo, err := h2o.Execute(q)
		if err != nil {
			return nil, err
		}
		resO, optD, err := oracle.Execute(q)
		if err != nil {
			return nil, err
		}
		if !resH.Equal(resO) {
			return nil, fmt.Errorf("fig7: H2O and oracle disagree on query %d", i)
		}
		event := ""
		if hInfo.Reorganized {
			event = fmt.Sprintf("reorg->group(%d attrs)", len(hInfo.NewGroup))
			reorgs = append(reorgs, i+1)
		}
		t.AddRow(itoa(i+1), ms(rowInfo.Duration), ms(colInfo.Duration), ms(hInfo.Duration), ms(optD), event)
	}
	st := h2o.Stats()
	t.Notes = append(t.Notes,
		fmt.Sprintf("H2O ran %d adaptation phases, %d online reorganizations (at queries %v), created %d groups",
			st.Adaptations, st.Reorgs, reorgs, st.GroupsCreated))
	return t, nil
}

// RunTable1 regenerates Table 1: cumulative execution time of the Figure 7
// sequence. The paper reports 538.2s (row) / 283.7s (column) / 204.7s (H2O):
// H2O beats the column store by ~38% and the row store by ~1.6x.
func RunTable1(cfg Config) (*Table, error) {
	tb, qs := fig7Sequence(cfg)

	names := []string{"Row-store", "Column-store", "H2O"}
	// Noise control on shared machines: the engines interleave query by
	// query (a noise burst hits all three, not one), the whole sequence
	// repeats cfg.Repeats times with fresh engines (adaptation restarts),
	// and each engine's total is the minimum across repetitions.
	totals := make([]time.Duration, len(names))
	for i := range totals {
		totals[i] = 1<<62 - 1
	}
	for rep := 0; rep < cfg.Repeats; rep++ {
		h2oOpts := core.DefaultOptions()
		h2oOpts.Window.InitialSize = 20
		runs := []func(*query.Query) (time.Duration, error){
			engineRunner(core.NewRowStore(tb, false)),
			engineRunner(core.NewColumnStore(tb)),
			engineRunner(core.NewH2O(tb, h2oOpts)),
		}
		sums := make([]time.Duration, len(runs))
		for _, q := range qs {
			for i, run := range runs {
				d, err := run(q)
				if err != nil {
					return nil, err
				}
				sums[i] += d
			}
		}
		for i, s := range sums {
			if s < totals[i] {
				totals[i] = s
			}
		}
	}
	t := &Table{
		Title:   "table1: cumulative execution time of the Fig. 7 workload",
		Columns: []string{"engine", "total_ms", "vs_h2o"},
	}
	h2oTotal := totals[2]
	for i, name := range names {
		t.AddRow(name, ms(totals[i]), ratio(totals[i], h2oTotal))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("paper: row 538.2s / column 283.7s / H2O 204.7s (row/H2O=2.6x, column/H2O=1.39x); measured row/H2O=%s column/H2O=%s",
			ratio(totals[0], h2oTotal), ratio(totals[1], h2oTotal)))
	return t, nil
}

func engineRunner(e *core.Engine) func(*query.Query) (time.Duration, error) {
	return func(q *query.Query) (time.Duration, error) {
		_, info, err := e.Execute(q)
		return info.Duration, err
	}
}

// RunFig8 regenerates Figure 8: H2O vs an AutoPart-style offline advisor on
// the simulated SkyServer workload, splitting total time into query
// execution and layout creation.
func RunFig8(cfg Config) (*Table, error) {
	schema := workload.SkyServerSchema()
	tb := data.Generate(schema, cfg.RowsSky, cfg.Seed)
	trace := workload.SkyServerTrace(tb.Rows, cfg.Seed)
	if cfg.Quick {
		trace = trace[:60]
	}

	// --- AutoPart: whole trace known up front, one static partitioning. ---
	infos := make([]query.Info, len(trace))
	for i, q := range trace {
		infos[i] = query.InfoOf(q)
	}
	m := costmodel.New(costmodel.Default())
	creationStart := time.Now()
	parts := advisor.AutoPart(schema.NumAttrs(), tb.Rows, infos, m)
	rel, err := storage.BuildPartitioned(tb, parts)
	if err != nil {
		return nil, err
	}
	apCreation := time.Since(creationStart)

	apOpts := core.DefaultOptions()
	apOpts.Mode = core.ModeFrozen // static layout, cost-based strategy choice
	apEng := core.New(rel, apOpts)
	var apExec time.Duration
	for _, q := range trace {
		_, info, err := apEng.Execute(q)
		if err != nil {
			return nil, err
		}
		apExec += info.Duration
	}

	// --- H2O: no workload knowledge, adapts per query. Reorganization time
	// is inside the query durations; we also report it separately. ---
	h2o := core.NewH2O(tb, core.DefaultOptions())
	var h2oExec, h2oCreation time.Duration
	for _, q := range trace {
		_, info, err := h2o.Execute(q)
		if err != nil {
			return nil, err
		}
		if info.Reorganized {
			// Attribute the query's time above the post-reorg steady state
			// to layout creation; a precise split needs the offline baseline
			// of Fig. 13, so the whole reorganizing query is counted.
			h2oCreation += info.Duration
		} else {
			h2oExec += info.Duration
		}
	}

	t := &Table{
		Title:   "fig8: H2O vs AutoPart on the simulated SkyServer (PhotoObjAll) workload",
		Columns: []string{"system", "query_execution_ms", "layout_creation_ms", "total_ms"},
	}
	t.AddRow("AutoPart", ms(apExec), ms(apCreation), ms(apExec+apCreation))
	t.AddRow("H2O", ms(h2oExec), ms(h2oCreation), ms(h2oExec+h2oCreation))
	st := h2o.Stats()
	t.Notes = append(t.Notes,
		fmt.Sprintf("AutoPart produced %d static partitions; H2O adapted %d times, created %d groups", len(parts), st.Adaptations, st.GroupsCreated),
		"paper: H2O outperforms the offline tool by adapting to individual queries")
	return t, nil
}

// RunFig9 regenerates Figure 9: a 60-query workload whose access pattern
// shifts after query 15, executed with a static and a dynamic adaptation
// window of initial size 30.
func RunFig9(cfg Config) (*Table, error) {
	const nAttrs = 150
	tb := data.Generate(data.SyntheticSchema("R", nAttrs), cfg.Rows150, cfg.Seed)
	n, phase1 := 60, 15
	if cfg.Quick {
		n = 40
	}
	qs := workload.ShiftSequence("R", nAttrs, n, phase1, cfg.Seed)

	mk := func(dynamic bool) *core.Engine {
		opts := core.DefaultOptions()
		opts.Window = affinity.Config{
			InitialSize: 30, MinSize: 4, MaxSize: 90,
			NoveltyOverlap: 0.5, Dynamic: dynamic,
		}
		// Fig. 9's relation starts row-major.
		return core.New(storage.BuildRowMajor(tb, false), opts)
	}
	static, dynamic := mk(false), mk(true)

	t := &Table{
		Title:   "fig9: static vs dynamic adaptation window (workload shifts after query 15)",
		Columns: []string{"query", "static_ms", "dynamic_ms", "static_event", "dynamic_event"},
	}
	firstStatic, firstDynamic := 0, 0
	for i, q := range qs {
		_, sInfo, err := static.Execute(q)
		if err != nil {
			return nil, err
		}
		_, dInfo, err := dynamic.Execute(q)
		if err != nil {
			return nil, err
		}
		se, de := "", ""
		if sInfo.Reorganized {
			se = "reorg"
			if firstStatic == 0 && i >= phase1 {
				firstStatic = i + 1
			}
		}
		if dInfo.Reorganized {
			de = "reorg"
			if firstDynamic == 0 && i >= phase1 {
				firstDynamic = i + 1
			}
		}
		t.AddRow(itoa(i+1), ms(sInfo.Duration), ms(dInfo.Duration), se, de)
	}
	t.Notes = append(t.Notes, fmt.Sprintf(
		"first post-shift reorganization: dynamic at query %d, static at query %d (paper: ~25 vs ~30+)",
		firstDynamic, firstStatic))
	return t, nil
}
