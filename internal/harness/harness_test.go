package harness

import (
	"strings"
	"testing"
	"time"
)

// quick is the tiny configuration the harness tests run under; the point is
// exercising every experiment's full code path, not timing fidelity.
var quick = Config{Quick: true}

// TestEveryExperimentRuns executes all experiments at smoke scale: each must
// produce a non-empty, rectangular table.
func TestEveryExperimentRuns(t *testing.T) {
	for _, r := range Experiments() {
		r := r
		t.Run(r.Name, func(t *testing.T) {
			tab, err := r.Run(quick)
			if err != nil {
				t.Fatal(err)
			}
			if tab.Title == "" || len(tab.Columns) == 0 || len(tab.Rows) == 0 {
				t.Fatalf("experiment %s produced an empty table", r.Name)
			}
			for i, row := range tab.Rows {
				if len(row) != len(tab.Columns) {
					t.Fatalf("row %d has %d cells, header has %d", i, len(row), len(tab.Columns))
				}
			}
		})
	}
}

func TestRunDispatch(t *testing.T) {
	if _, err := Run("fig13", quick); err != nil {
		t.Fatal(err)
	}
	if _, err := Run("nope", quick); err == nil {
		t.Fatal("unknown experiment accepted")
	} else if !strings.Contains(err.Error(), "fig7") {
		t.Fatalf("error should list known experiments: %v", err)
	}
}

func TestExperimentCatalogue(t *testing.T) {
	names := map[string]bool{}
	for _, r := range Experiments() {
		if r.Name == "" || r.Description == "" || r.Run == nil {
			t.Fatalf("malformed runner %+v", r)
		}
		if names[r.Name] {
			t.Fatalf("duplicate experiment id %s", r.Name)
		}
		names[r.Name] = true
	}
	// Every table and figure of the paper's evaluation must be covered.
	for _, want := range []string{
		"fig1", "fig2a", "fig2b", "fig2c", "fig7", "table1", "fig8", "fig9",
		"fig10a", "fig10b", "fig10c", "fig10d", "fig10e", "fig10f",
		"fig11", "fig12", "fig13", "fig14",
	} {
		if !names[want] {
			t.Fatalf("experiment %s missing from the catalogue", want)
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tab := &Table{
		Title:   "demo",
		Columns: []string{"x", "long_column"},
		Notes:   []string{"a note"},
	}
	tab.AddRow("1", "2")
	tab.AddRow("333", "4")

	var text strings.Builder
	tab.Fprint(&text)
	out := text.String()
	for _, want := range []string{"== demo ==", "long_column", "333", "note: a note"} {
		if !strings.Contains(out, want) {
			t.Fatalf("Fprint output missing %q:\n%s", want, out)
		}
	}

	var csv strings.Builder
	tab.CSV(&csv)
	lines := strings.Split(strings.TrimSpace(csv.String()), "\n")
	if len(lines) != 3 || lines[0] != "x,long_column" || lines[2] != "333,4" {
		t.Fatalf("CSV output wrong:\n%s", csv.String())
	}
}

func TestConfigDefaults(t *testing.T) {
	c := Config{}.withDefaults()
	if c.Rows150 != 100_000 || c.Rows250 != 50_000 || c.Repeats != 3 || c.Seed == 0 {
		t.Fatalf("defaults wrong: %+v", c)
	}
	q := Config{Quick: true, Rows150: 1_000_000}.withDefaults()
	if q.Rows150 > 8_000 {
		t.Fatalf("quick mode must clamp scale, got %d", q.Rows150)
	}
}

func TestMeasureTakesMinimum(t *testing.T) {
	calls := 0
	d := measure(3, func() {
		calls++
		if calls == 1 {
			time.Sleep(2 * time.Millisecond)
		}
	})
	if calls != 3 {
		t.Fatalf("measure ran f %d times", calls)
	}
	if d >= 2*time.Millisecond {
		t.Fatalf("measure should report the minimum, got %v", d)
	}
}

func TestFormattingHelpers(t *testing.T) {
	if ms(1500*time.Microsecond) != "1.500" {
		t.Fatalf("ms = %s", ms(1500*time.Microsecond))
	}
	if ratio(2*time.Second, time.Second) != "2.00x" {
		t.Fatal("ratio wrong")
	}
	if ratio(time.Second, 0) != "inf" {
		t.Fatal("ratio by zero")
	}
	if itoa(0) != "0" || itoa(405) != "405" {
		t.Fatal("itoa wrong")
	}
	if fmtPct(50, 250) != "20%" {
		t.Fatal("fmtPct wrong")
	}
	if atoiSafe("25x") != 25 {
		t.Fatal("atoiSafe wrong")
	}
}

func TestSplitAttrsAndCover(t *testing.T) {
	attrs := rangeAttrs(0, 24)
	parts := splitAttrs(attrs, 4)
	if len(parts) != 4 {
		t.Fatalf("splitAttrs produced %d parts", len(parts))
	}
	total := 0
	for _, p := range parts {
		total += len(p)
	}
	if total != 25 {
		t.Fatalf("split lost attributes: %d", total)
	}
	covered := coverWith(parts, 30)
	seen := map[int]bool{}
	for _, p := range covered {
		for _, a := range p {
			seen[a] = true
		}
	}
	for a := 0; a < 30; a++ {
		if !seen[a] {
			t.Fatalf("attribute %d uncovered", a)
		}
	}
}
