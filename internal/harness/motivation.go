package harness

import (
	"time"

	"h2o/internal/core"
	"h2o/internal/data"
	"h2o/internal/workload"
)

// sweepCounts returns the projectivity x-axis for a 250-attribute relation:
// the paper sweeps 2% to 100% of attributes.
func sweepCounts(nAttrs int, quick bool) []int {
	fractions := []float64{0.02, 0.10, 0.20, 0.30, 0.40, 0.50, 0.60, 0.70, 0.80, 0.90, 1.00}
	if quick {
		fractions = []float64{0.02, 0.20, 0.60, 1.00}
	}
	out := make([]int, len(fractions))
	for i, f := range fractions {
		k := int(f * float64(nAttrs))
		if k < 2 {
			k = 2
		}
		out[i] = k
	}
	return out
}

// RunFig1 regenerates Figure 1: the motivating row-store vs column-store
// crossover on select-project-aggregate queries at ~40% selectivity over the
// 250-attribute relation. DBMS-R's NSM page overhead is modeled with padded
// tuples (the paper measures a 13% larger footprint for the row store).
func RunFig1(cfg Config) (*Table, error) {
	return rowVsColumnSweep(cfg, 0.4, "fig1: DBMS-C vs DBMS-R, select-project-aggregate, selectivity 40%")
}

// RunFig2 regenerates Figure 2(a-c): the projectivity sweep at the given
// selectivity (negative = no where clause).
func RunFig2(cfg Config, sel float64) (*Table, error) {
	title := "fig2a: projectivity sweep, selectivity 100% (no where clause)"
	switch {
	case sel >= 0.05:
		title = "fig2b: projectivity sweep, selectivity 40%"
	case sel >= 0:
		title = "fig2c: projectivity sweep, selectivity 1%"
	}
	return rowVsColumnSweep(cfg, sel, title)
}

func rowVsColumnSweep(cfg Config, sel float64, title string) (*Table, error) {
	const nAttrs = 250
	schema := data.SyntheticSchema("R", nAttrs)
	var tb *data.Table
	if sel >= 0 {
		tb = data.GenerateSelective(schema, cfg.Rows250, cfg.Seed)
	} else {
		tb = data.Generate(schema, cfg.Rows250, cfg.Seed)
	}

	rowEng := core.NewRowStore(tb, true) // padded: commercial NSM overhead
	colEng := core.NewColumnStore(tb)

	points := workload.ProjectivitySweep("R", nAttrs, tb.Rows, sweepCounts(nAttrs, cfg.Quick), workload.ClassAggregation, sel, cfg.Seed)

	t := &Table{
		Title:   title,
		Columns: []string{"attrs_accessed", "pct", "dbms_c_ms(column)", "dbms_r_ms(row)", "winner"},
	}
	var crossover string
	for _, p := range points {
		var colD, rowD time.Duration
		colD = measure(cfg.Repeats, func() {
			if _, _, err := colEng.Execute(p.Query); err != nil {
				panic(err)
			}
		})
		rowD = measure(cfg.Repeats, func() {
			if _, _, err := rowEng.Execute(p.Query); err != nil {
				panic(err)
			}
		})
		winner := "column"
		if rowD < colD {
			winner = "row"
			if crossover == "" {
				crossover = p.Label
			}
		}
		pct := fmtPct(atoiSafe(p.Label), nAttrs)
		t.AddRow(p.Label, pct, ms(colD), ms(rowD), winner)
	}
	if sel >= 0 && crossover != "" {
		t.Notes = append(t.Notes, "crossover: the row store overtakes the column store at "+crossover+" attributes accessed")
	} else if sel < 0 {
		t.Notes = append(t.Notes, "no where clause: the column store should win across the sweep (paper Fig. 2a)")
	}
	return t, nil
}

func fmtPct(k, n int) string {
	return itoa(k*100/n) + "%"
}

func atoiSafe(s string) int {
	n := 0
	for _, c := range s {
		if c < '0' || c > '9' {
			return n
		}
		n = n*10 + int(c-'0')
	}
	return n
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b []byte
	for n > 0 {
		b = append([]byte{byte('0' + n%10)}, b...)
		n /= 10
	}
	return string(b)
}
