package harness

import (
	"context"
	"fmt"
	"time"

	"h2o/internal/core"
	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/server"
	"h2o/internal/storage"
)

// RunGroupBy measures GROUP BY under the serving tiers (not a paper
// experiment): a repeated grouped aggregate over a tail-append workload is
// delta-repaired — the cached per-segment group maps are merged with a
// rescan of only the appended tail — so its per-query cost stays ~flat as
// the relation grows, while full re-aggregation (partial cache disabled)
// rebuilds every segment's groups and grows linearly with the segment
// count. Each table row doubles the relation.
//
//	h2obench -exp groupby
func RunGroupBy(cfg Config) (*Table, error) {
	const (
		nAttrs  = 8
		rounds  = 12 // append+query rounds averaged per cell
		segCap  = 1024
		nPoints = 4
		nKeys   = 64 // distinct group keys in the key attribute
	)
	base := cfg.Rows150 / 4
	if base < 4*segCap {
		base = 4 * segCap
	}

	t := &Table{
		Title: "groupby: repeated grouped aggregate under tail appends — grouped delta repair (flat) vs full re-aggregation (grows with relation)",
		Columns: []string{"rows", "segments", "groups", "full_ms", "repair_ms",
			"repaired_segs/query", "speedup"},
	}

	// select a3, sum(a1), count(a2) from R group by a3 — the key attribute
	// is remapped below to a small domain so groups accumulate real state.
	q := query.GroupedAggregation("R", expr.AggSum, []data.AttrID{1, 2}, []data.AttrID{3}, nil)
	rowsAt := base
	for p := 0; p < nPoints; p++ {
		tb := data.GenerateTimeSeries(data.SyntheticSchema("R", nAttrs), rowsAt, cfg.Seed)
		// Fold the key attribute into [0, nKeys): the synthetic domain is
		// near-unique, which would make every row its own group.
		for r := 0; r < tb.Rows; r++ {
			v := tb.Cols[3][r] % nKeys
			if v < 0 {
				v += nKeys
			}
			tb.Cols[3][r] = v
		}

		repairMs, repairedSegs, groups, err := timeGroupByPoint(tb, segCap, q, rounds, nKeys, 0)
		if err != nil {
			return nil, err
		}
		fullMs, _, _, err := timeGroupByPoint(tb, segCap, q, rounds, nKeys, -1)
		if err != nil {
			return nil, err
		}
		segs := (rowsAt + segCap - 1) / segCap
		speedup := "-"
		if repairMs > 0 {
			speedup = fmt.Sprintf("%.1fx", fullMs/repairMs)
		}
		t.AddRow(itoa(rowsAt), itoa(segs), itoa(groups),
			fmt.Sprintf("%.3f", fullMs), fmt.Sprintf("%.3f", repairMs),
			fmt.Sprintf("%.1f", repairedSegs), speedup)
		rowsAt *= 2
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("segment capacity %d rows, %d distinct group keys; each cell averages %d append+query rounds", segCap, nKeys, rounds),
		"repair_ms must stay ~flat as rows grow: each repair rescans only the appended tail segment and merges its group map with the cached ones (repaired_segs/query ~1)",
		"full_ms grows with the segment count: with the partial cache disabled every miss re-aggregates every group in every segment")
	return t, nil
}

// timeGroupByPoint measures one sweep cell: average per-query latency of the
// repeated grouped aggregate across append+query rounds, against a server
// whose partial cache is budgeted by partialBytes (0 = server default,
// enabling grouped delta repair; negative = disabled, every miss
// re-aggregates from scratch). It also returns the average segments
// rescanned per served query and the group count of the final result.
func timeGroupByPoint(tb *data.Table, segCap int, q *query.Query, rounds, nKeys int, partialBytes int64) (msPerQuery, repairedSegs float64, groups int, err error) {
	opts := core.DefaultOptions()
	opts.Mode = core.ModeFrozen // only the appends mutate
	eng := core.New(storage.BuildColumnMajorSeg(tb, segCap), opts)
	srv := server.New(&repairBackend{eng}, server.Config{Workers: 2, PartialCacheBytes: partialBytes})
	defer srv.Close()
	ctx := context.Background()

	if _, _, err := srv.Query(ctx, q); err != nil { // seed grouped partials
		return 0, 0, 0, err
	}
	tuple := make([]data.Value, len(tb.Schema.Attrs))
	var total time.Duration
	for i := 0; i < rounds; i++ {
		tuple[0] = data.Value(10_000_000 + i)
		tuple[3] = data.Value(i % nKeys) // rotate through existing groups
		if err := eng.Insert([][]data.Value{tuple}); err != nil {
			return 0, 0, 0, err
		}
		start := time.Now()
		res, _, err := srv.Query(ctx, q)
		if err != nil {
			return 0, 0, 0, err
		}
		total += time.Since(start)
		groups = res.Rows
	}
	st := srv.Stats()
	return float64(total.Microseconds()) / 1000 / float64(rounds),
		float64(st.RepairedSegments) / float64(rounds), groups, nil
}
