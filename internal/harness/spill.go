package harness

import (
	"fmt"
	"os"
	"time"

	"h2o/internal/core"
	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// RunSpill measures the tiered-storage contract (not a paper experiment):
// as the memory budget shrinks below the relation size, (a) a selective
// scan over append-ordered data stays flat, because zone maps — which
// never spill — keep pruned cold segments on disk (zero page-ins), while
// (b) a full scan degrades gracefully, paying one fault per spilled
// segment it actually needs. Residency is re-established before every
// timed run, so each cell is the cold-cache cost at that budget.
//
//	h2obench -exp spill
func RunSpill(cfg Config) (*Table, error) {
	const nAttrs = 8
	rows := cfg.Rows150
	segCap := rows / 16
	if segCap < 64 {
		segCap = 64
	}
	tb := data.GenerateTimeSeries(data.SyntheticSchema("R", nAttrs), rows, cfg.Seed)

	t := &Table{
		Title: "spill: scan latency vs resident fraction under a memory budget; pruned cold segments incur zero disk reads",
		Columns: []string{"budget", "resident", "selective_ms", "sel_faults",
			"full_ms", "full_faults", "full_faulted_kb", "disk_ratio"},
	}

	spillDir, err := os.MkdirTemp("", "h2obench-spill-")
	if err != nil {
		return nil, err
	}
	defer os.RemoveAll(spillDir)

	// The selective query reads the newest ~2% (tail region); the full
	// query has no predicate and must touch every segment.
	cut := data.Value(float64(rows) * 0.98)
	selectiveQ := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, query.PredGt(0, cut-1))
	fullQ := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, nil)

	for _, frac := range []float64{1, 0.5, 0.25, 0.125} {
		rel := storage.BuildColumnMajorSeg(tb, segCap)
		opts := core.DefaultOptions()
		opts.Mode = core.ModeFrozen
		if frac < 1 {
			opts.MemoryBudgetBytes = int64(float64(rel.Bytes()) * frac)
			opts.SpillDir = spillDir
		}
		eng := core.New(rel, opts)
		eng.EnforceBudget()
		residentSegs := len(rel.Segments) // no budget: everything resident
		if frac < 1 {
			residentSegs = eng.TierStats().ResidentSegments
		}
		resFrac := fmt.Sprintf("%d/%d", residentSegs, len(rel.Segments))

		selD, selFaults, err := timeSpillQuery(eng, selectiveQ)
		if err != nil {
			return nil, err
		}
		eng.EnforceBudget() // re-spill what the scan faulted in
		pre := eng.TierStats()
		fullD, fullFaults, err := timeSpillQuery(eng, fullQ)
		if err != nil {
			return nil, err
		}
		post := eng.TierStats()
		// Spill files hold encoded blocks: disk_ratio is the flat bytes the
		// current spill set replaces over its on-disk size, and
		// full_faulted_kb the file bytes the full scan's page-ins covered.
		diskRatio := "-"
		if pre.SpillFileBytes > 0 {
			diskRatio = fmt.Sprintf("%.2fx", float64(pre.SpilledBytes)/float64(pre.SpillFileBytes))
		}
		faultedKB := int((post.FaultedBytes - pre.FaultedBytes) / 1024)

		t.AddRow(fmt.Sprintf("%.0f%%", frac*100), resFrac,
			ms(selD), itoa(selFaults), ms(fullD), itoa(fullFaults),
			itoa(faultedKB), diskRatio)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("segment capacity %d rows; budgets are fractions of the relation's total bytes", segCap),
		"sel_faults must stay ~0 as the budget shrinks: zone maps prune spilled cold segments without I/O",
		"full_faults grows as residency shrinks: an unselective scan pages every spilled segment back in",
		"disk_ratio > 1x: spill files store encoded blocks, not flat mini-tuples; full_faulted_kb is the compressed I/O volume of the full scan")
	return t, nil
}

// timeSpillQuery runs one query cold (current residency state) and returns
// its latency and the number of segments it paged in.
func timeSpillQuery(eng *core.Engine, q *query.Query) (time.Duration, int, error) {
	start := time.Now()
	_, info, err := eng.Execute(q)
	if err != nil {
		return 0, 0, err
	}
	return time.Since(start), info.SegmentsFaulted, nil
}
