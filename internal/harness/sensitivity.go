package harness

import (
	"fmt"
	"time"

	"h2o/internal/data"
	"h2o/internal/exec"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
	"h2o/internal/workload"
)

// aggOp is the aggregate used by the sensitivity experiments' template (ii)
// queries ("select max(a), max(b), ...").
func aggOp() expr.AggOp { return expr.AggMax }

// fig10Counts is the #attributes x-axis of Figure 10(a-c); the paper sweeps
// 5, 15, ..., 145 over the 150-attribute relation.
func fig10Counts(quick bool) []int {
	if quick {
		return []int{5, 65, 145}
	}
	return []int{5, 25, 45, 65, 85, 105, 125, 145}
}

// fig10Sels is the selectivity x-axis of Figures 10(d-f) and 11/12.
func fig10Sels(quick bool) []float64 {
	if quick {
		return []float64{0.01, 0.5, 1.0}
	}
	return []float64{0.001, 0.01, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0}
}

func classOf(id string) workload.QueryClass {
	switch id {
	case "fig10a", "fig10d":
		return workload.ClassProjection
	case "fig10b", "fig10e":
		return workload.ClassAggregation
	default:
		return workload.ClassExpression
	}
}

// runThreeLayouts times one query on the three layouts the way §4.2.1 does:
// the fused row scan over the full row-major relation, the
// late-materialization column strategy over the column-major relation, and
// the fused scan over a tailored column group containing exactly the
// accessed attributes (group creation not timed, per the paper).
func runThreeLayouts(cfg Config, tb *data.Table, row, col *storage.Relation, q *query.Query) (rowD, grpD, colD time.Duration, err error) {
	grp := storage.BuildGroup(tb, q.AllAttrs())
	check := func(res *exec.Result, e error) error {
		if e != nil {
			return e
		}
		return nil
	}
	rowD = measure(cfg.Repeats, func() {
		if err = check(exec.Exec(row, q, exec.ExecOpts{Strategy: exec.StrategyRow})); err != nil {
			panic(err)
		}
	})
	grpD = measure(cfg.Repeats, func() {
		if err = check(exec.ExecRow(grp, q)); err != nil {
			panic(err)
		}
	})
	colD = measure(cfg.Repeats, func() {
		if err = check(exec.Exec(col, q, exec.ExecOpts{Strategy: exec.StrategyColumn})); err != nil {
			panic(err)
		}
	})
	return rowD, grpD, colD, nil
}

// RunFig10Attrs regenerates Figures 10(a-c): execution time per layout as
// the number of accessed attributes grows, no where clause.
func RunFig10Attrs(cfg Config, id string) (*Table, error) {
	const nAttrs = 150
	tb := data.Generate(data.SyntheticSchema("R", nAttrs), cfg.Rows150, cfg.Seed)
	row := storage.BuildRowMajor(tb, false)
	col := storage.BuildColumnMajor(tb)

	class := classOf(id)
	points := workload.ProjectivitySweep("R", nAttrs, tb.Rows, fig10Counts(cfg.Quick), class, -1, cfg.Seed)
	t := &Table{
		Title:   fmt.Sprintf("%s: %s vs #attributes accessed (150-attr relation, no where clause)", id, class),
		Columns: []string{"attrs", "row_ms", "group_ms", "column_ms"},
	}
	for _, p := range points {
		rowD, grpD, colD, err := runThreeLayouts(cfg, tb, row, col, p.Query)
		if err != nil {
			return nil, err
		}
		t.AddRow(p.Label, ms(rowD), ms(grpD), ms(colD))
	}
	switch class {
	case workload.ClassProjection:
		t.Notes = append(t.Notes, "paper: groups win everywhere; column-major degrades up to 15x past ~20% projectivity (tuple reconstruction)")
	case workload.ClassAggregation:
		t.Notes = append(t.Notes, "paper: column-major wins (up to 15x over rows at 5 aggs); group narrows the gap as aggregations grow")
	default:
		t.Notes = append(t.Notes, "paper: groups beat column-major by 42%-3x (no intermediate results)")
	}
	return t, nil
}

// RunFig10Sel regenerates Figures 10(d-f): execution time per layout as the
// filter selectivity varies, with 20 attributes accessed.
func RunFig10Sel(cfg Config, id string) (*Table, error) {
	const nAttrs = 150
	tb := data.GenerateSelective(data.SyntheticSchema("R", nAttrs), cfg.Rows150, cfg.Seed)
	row := storage.BuildRowMajor(tb, false)
	col := storage.BuildColumnMajor(tb)

	class := classOf(id)
	points := workload.SelectivitySweep("R", nAttrs, tb.Rows, 20, class, fig10Sels(cfg.Quick), cfg.Seed)
	t := &Table{
		Title:   fmt.Sprintf("%s: %s (20 attrs) vs selectivity", id, class),
		Columns: []string{"selectivity", "row_ms", "group_ms", "column_ms"},
	}
	for _, p := range points {
		rowD, grpD, colD, err := runThreeLayouts(cfg, tb, row, col, p.Query)
		if err != nil {
			return nil, err
		}
		t.AddRow(p.Label, ms(rowD), ms(grpD), ms(colD))
	}
	t.Notes = append(t.Notes, "paper: groups dominate projections/expressions across the selectivity range; for aggregations column ≈ group >> row")
	return t, nil
}

// RunFig11 regenerates Figure 11: the penalty of answering a query from a
// 30-attribute column group when only 5-25 of its attributes are needed,
// relative to a perfectly tailored group, across selectivities.
func RunFig11(cfg Config) (*Table, error) {
	const nAttrs = 150
	tb := data.GenerateSelective(data.SyntheticSchema("R", nAttrs), cfg.Rows150, cfg.Seed)

	// The 30-attribute group: the dial attribute plus 29 others.
	groupAttrs := append([]data.AttrID{0}, rangeAttrs(20, 49)...)
	big := storage.BuildGroup(tb, groupAttrs)

	useds := []int{5, 10, 15, 20, 25}
	sels := []float64{0.01, 0.10, 0.50, 1.00}
	if cfg.Quick {
		useds = []int{5, 25}
		sels = []float64{0.01, 1.00}
	}

	t := &Table{
		Title:   "fig11: penalty of accessing a subset of a 30-attribute column group",
		Columns: []string{"selectivity", "attrs_used", "group30_ms", "tailored_ms", "penalty_pct"},
	}
	worst := 0.0
	for _, sel := range sels {
		for _, k := range useds {
			attrs := append([]data.AttrID{0}, groupAttrs[1:k]...)
			q := query.Aggregation("R", aggOp(), attrs, workload.DialPredicate(tb.Rows, sel))
			perfect := storage.BuildGroup(tb, attrs)
			bigD := measure(cfg.Repeats, func() { mustRow(big, q) })
			perfD := measure(cfg.Repeats, func() { mustRow(perfect, q) })
			pen := 100 * (float64(bigD) - float64(perfD)) / float64(perfD)
			if pen > worst {
				worst = pen
			}
			t.AddRow(percentF(sel), itoa(k), ms(bigD), ms(perfD), fmt.Sprintf("%.0f%%", pen))
		}
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("worst observed penalty %.0f%% (paper: up to ~142%% at 5/30 attrs; ~3%% at 25/30)", worst))
	return t, nil
}

// RunFig12 regenerates Figure 12: response time of a 25-attribute
// aggregation-with-filter query when its attributes are spread over 2-5
// column groups, normalized by the single-perfect-group time.
func RunFig12(cfg Config) (*Table, error) {
	const nAttrs = 150
	tb := data.GenerateSelective(data.SyntheticSchema("R", nAttrs), cfg.Rows150, cfg.Seed)

	attrs := append([]data.AttrID{0}, rangeAttrs(50, 74)...)
	attrs = attrs[:25]
	perfect := storage.BuildGroup(tb, attrs)

	sels := []float64{0.01, 0.10, 0.50, 1.00}
	splits := []int{2, 3, 4, 5}
	if cfg.Quick {
		sels = []float64{0.01, 1.00}
		splits = []int{2, 5}
	}

	t := &Table{
		Title:   "fig12: accessing a 25-attribute query from multiple column groups (normalized)",
		Columns: []string{"selectivity", "groups", "multi_ms", "single_ms", "normalized"},
	}
	for _, sel := range sels {
		q := query.Aggregation("R", aggOp(), attrs, workload.DialPredicate(tb.Rows, sel))
		base := measure(cfg.Repeats, func() { mustRow(perfect, q) })
		for _, k := range splits {
			parts := splitAttrs(attrs, k)
			rel, err := storage.BuildPartitioned(tb, coverWith(parts, nAttrs))
			if err != nil {
				return nil, err
			}
			d := measure(cfg.Repeats, func() { mustHybrid(rel, q) })
			t.AddRow(percentF(sel), itoa(k), ms(d), ms(base), fmt.Sprintf("%.2f", float64(d)/float64(base)))
		}
	}
	t.Notes = append(t.Notes, "paper: accessing 2-5 groups stays near 1.0x; highly selective queries can even beat the single group")
	return t, nil
}

// splitAttrs splits attrs into k contiguous parts (the paper's 10+15 style
// splits).
func splitAttrs(attrs []data.AttrID, k int) [][]data.AttrID {
	out := make([][]data.AttrID, 0, k)
	per := (len(attrs) + k - 1) / k
	for i := 0; i < len(attrs); i += per {
		end := i + per
		if end > len(attrs) {
			end = len(attrs)
		}
		out = append(out, append([]data.AttrID(nil), attrs[i:end]...))
	}
	return out
}

// coverWith completes a partial partition so the relation's schema stays
// covered (extra attributes go into one remainder group).
func coverWith(parts [][]data.AttrID, nAttrs int) [][]data.AttrID {
	seen := make([]bool, nAttrs)
	for _, p := range parts {
		for _, a := range p {
			seen[a] = true
		}
	}
	var rest []data.AttrID
	for a := 0; a < nAttrs; a++ {
		if !seen[a] {
			rest = append(rest, a)
		}
	}
	if len(rest) > 0 {
		parts = append(parts, rest)
	}
	return parts
}

func rangeAttrs(lo, hi int) []data.AttrID {
	out := make([]data.AttrID, 0, hi-lo+1)
	for a := lo; a <= hi; a++ {
		out = append(out, a)
	}
	return out
}

func mustRow(g *storage.ColumnGroup, q *query.Query) {
	if _, err := exec.ExecRow(g, q); err != nil {
		panic(err)
	}
}

func mustHybrid(rel *storage.Relation, q *query.Query) {
	if _, err := exec.Exec(rel, q, exec.ExecOpts{Strategy: exec.StrategyHybrid}); err != nil {
		panic(err)
	}
}

func percentF(f float64) string {
	if f < 0.1 {
		return fmt.Sprintf("%.1f%%", f*100)
	}
	return fmt.Sprintf("%.0f%%", f*100)
}
