package harness

import (
	"fmt"

	"h2o/internal/data"
	"h2o/internal/exec"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// RunSegments measures the segmented-storage contract (not a paper
// experiment): as the relation grows, (a) appends to the tail segment and
// (b) online reorganization of one hot segment stay flat — O(segment size)
// — while a full-relation reorganization grows linearly; and (c) a
// selective scan over append-ordered data skips the cold segments entirely
// via per-segment zone maps.
//
//	h2obench -exp segments
func RunSegments(cfg Config) (*Table, error) {
	const nAttrs = 8
	segCap := 4096
	base := cfg.Rows150
	if base < 4*segCap {
		segCap = base / 4 // keep at least 4 segments at tiny scales
		if segCap < 64 {
			segCap = 64
		}
	}
	sizes := []int{base / 4, base / 2, base}

	t := &Table{
		Title: "segments: append + hot-segment reorg stay O(segment) as the relation grows; selective scans skip cold segments",
		Columns: []string{"rows", "segments", "append_1k_ms", "reorg_hot_seg_ms",
			"reorg_full_ms", "full/hot", "scan_skipped"},
	}

	attrs := []data.AttrID{1, 2}
	batch := make([][]data.Value, 1000)
	for i := range batch {
		tuple := make([]data.Value, nAttrs)
		for a := range tuple {
			tuple[a] = data.Value(i + a)
		}
		batch[i] = tuple
	}

	for _, rows := range sizes {
		tb := data.GenerateTimeSeries(data.SyntheticSchema("R", nAttrs), rows, cfg.Seed)
		rel := storage.BuildColumnMajorSeg(tb, segCap)
		nSegs := len(rel.Segments)

		// (a) Appends touch only the tail.
		appendRel := storage.BuildColumnMajorSeg(tb, segCap)
		appendD := measure(cfg.Repeats, func() {
			if err := appendRel.AppendBatch(batch); err != nil {
				panic(err)
			}
		})

		// (b) Reorganizing one hot segment vs stitching the whole relation.
		hot := rel.Segments[nSegs-1]
		hotD := measure(cfg.Repeats, func() {
			if _, err := storage.StitchSeg(hot, attrs); err != nil {
				panic(err)
			}
		})
		fullD := measure(cfg.Repeats, func() {
			if _, err := storage.Stitch(rel, attrs); err != nil {
				panic(err)
			}
		})

		// (c) A ~2%-selective range scan on the append-ordered attribute.
		cut := data.Value(float64(rows) * 0.98)
		q := query.Aggregation("R", expr.AggSum, attrs, query.PredGt(0, cut-1))
		var st exec.StrategyStats
		if _, err := exec.Exec(rel, q, exec.ExecOpts{Strategy: exec.StrategyHybrid, Stats: &st}); err != nil {
			return nil, err
		}

		t.AddRow(itoa(rows), itoa(nSegs), ms(appendD), ms(hotD), ms(fullD),
			ratio(fullD, hotD), fmt.Sprintf("%d/%d", st.SegmentsPruned, st.SegmentsPruned+st.SegmentsScanned))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("segment capacity %d rows; hot-segment reorg and appends must stay flat across the rows sweep", segCap),
		"full/hot is the cost ratio of whole-relation vs single-segment reorganization — the savings of incremental adaptation")
	return t, nil
}
