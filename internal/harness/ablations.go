package harness

import (
	"fmt"

	"h2o/internal/data"
	"h2o/internal/exec"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
	"h2o/internal/workload"
)

// RunAblationVector sweeps the vector size of the chunked (vectorized)
// executor on an expression query: tiny vectors pay per-chunk overhead,
// full-column "vectors" lose L1 residency — the sweet spot sits at the
// L1-sized default the paper adopts (§3.3, "vectors fit in the L1 cache").
func RunAblationVector(cfg Config) (*Table, error) {
	const nAttrs = 60
	tb := data.GenerateSelective(data.SyntheticSchema("R", nAttrs), cfg.Rows150, cfg.Seed)
	col := storage.BuildColumnMajor(tb)

	attrs := append([]data.AttrID{0}, rangeAttrs(10, 19)...)
	q := query.AggExpression("R", attrs, workload.DialPredicate(tb.Rows, 0.5))

	sizes := []int{64, 256, 1024, 4096, 16384, tb.Rows}
	if cfg.Quick {
		sizes = []int{64, 1024, tb.Rows}
	}
	t := &Table{
		Title:   "ablation-vector: chunk size of the vectorized executor (expression, sel 50%)",
		Columns: []string{"vector_size", "time_ms", "vs_default"},
	}
	base := measure(cfg.Repeats, func() {
		if _, err := exec.Exec(col, q, exec.ExecOpts{Strategy: exec.StrategyVectorized, VectorSize: exec.VectorSize}); err != nil {
			panic(err)
		}
	})
	for _, vs := range sizes {
		d := measure(cfg.Repeats, func() {
			if _, err := exec.Exec(col, q, exec.ExecOpts{Strategy: exec.StrategyVectorized, VectorSize: vs}); err != nil {
				panic(err)
			}
		})
		label := itoa(vs)
		if vs == tb.Rows {
			label = "full-column"
		}
		t.AddRow(label, ms(d), ratio(d, base))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("default (%d values, L1-resident) baseline: %s ms", exec.VectorSize, ms(base)))
	return t, nil
}

// RunAblationZonemap measures block-skipping zone maps (the lightweight end
// of the paper's "adaptive indexing together with adaptive data layouts"
// future-work direction) on append-ordered data: range predicates on the
// ordered attribute touch a contiguous run of blocks and the rest of the
// scan is skipped. On uniformly shuffled data nothing is skippable — the
// last row shows the no-win regime honestly.
func RunAblationZonemap(cfg Config) (*Table, error) {
	const nAttrs = 8
	rows := cfg.Rows150
	ordered := data.GenerateTimeSeries(data.SyntheticSchema("R", nAttrs), rows, cfg.Seed)
	gOrd := storage.BuildGroup(ordered, rangeAttrs(0, nAttrs-1))
	zmOrd := storage.BuildZoneMap(gOrd, 0)

	uniform := data.Generate(data.SyntheticSchema("R", nAttrs), rows, cfg.Seed)
	gUni := storage.BuildGroup(uniform, rangeAttrs(0, nAttrs-1))
	zmUni := storage.BuildZoneMap(gUni, 0)

	sels := []float64{0.001, 0.01, 0.1, 0.5}
	if cfg.Quick {
		sels = []float64{0.01, 0.5}
	}
	t := &Table{
		Title:   "ablation-zonemap: block-skipping scans on append-ordered vs shuffled data",
		Columns: []string{"data", "selectivity", "plain_ms", "zonemap_ms", "zones_skipped"},
	}
	run := func(label string, g *storage.ColumnGroup, zm *storage.ZoneMap, cut data.Value, sel float64) {
		preds := []exec.GroupPred{{Off: 0, Op: expr.Lt, Val: cut}}
		buf := make([]int32, 0, rows)
		plain := measure(cfg.Repeats, func() {
			buf = exec.FilterGroup(g, preds, 0, g.Rows, buf[:0])
		})
		var st exec.ZoneScanStats
		zoned := measure(cfg.Repeats, func() {
			st = exec.ZoneScanStats{}
			buf = exec.FilterGroupWithZones(g, zm, preds, buf[:0], &st)
		})
		t.AddRow(label, percentF(sel), ms(plain), ms(zoned),
			fmt.Sprintf("%d/%d", st.Skipped, st.Zones))
	}
	for _, sel := range sels {
		run("time-ordered", gOrd, zmOrd, data.Value(float64(rows)*sel), sel)
	}
	for _, sel := range sels {
		run("shuffled", gUni, zmUni, data.ValueLo+data.Value(2e9*sel), sel)
	}
	t.Notes = append(t.Notes, "zone maps are rebuilt for free during reorganization; they only pay off on position-clustered attributes")
	return t, nil
}

// RunAblationBitmap compares the two qualifying-tuple representations —
// selection vectors (lists of ids, Fig. 6) and bit-vectors (§2.1's
// alternative) — on a filtered aggregation across the selectivity range.
// Id lists win when few tuples qualify; bitmaps amortize better as
// selectivity grows.
func RunAblationBitmap(cfg Config) (*Table, error) {
	const nAttrs = 60
	tb := data.GenerateSelective(data.SyntheticSchema("R", nAttrs), cfg.Rows150, cfg.Seed)
	col := storage.BuildColumnMajor(tb)

	attrs := append([]data.AttrID{0}, rangeAttrs(20, 29)...)
	sels := []float64{0.001, 0.01, 0.1, 0.5, 0.9}
	if cfg.Quick {
		sels = []float64{0.01, 0.9}
	}
	t := &Table{
		Title:   "ablation-bitmap: selection vectors vs bit-vectors (filtered aggregation)",
		Columns: []string{"selectivity", "sel_vector_ms", "bitmap_ms", "bitmap_vs_selvec"},
	}
	for _, sel := range sels {
		q := query.Aggregation("R", aggOp(), attrs, workload.DialPredicate(tb.Rows, sel))
		sv := measure(cfg.Repeats, func() {
			if _, err := exec.Exec(col, q, exec.ExecOpts{Strategy: exec.StrategyHybrid}); err != nil {
				panic(err)
			}
		})
		bm := measure(cfg.Repeats, func() {
			if _, err := exec.Exec(col, q, exec.ExecOpts{Strategy: exec.StrategyBitmap}); err != nil {
				panic(err)
			}
		})
		t.AddRow(percentF(sel), ms(sv), ms(bm), ratio(bm, sv))
	}
	t.Notes = append(t.Notes, "a bit-vector costs rows/8 bytes at any selectivity; an id list costs 4 bytes per qualifying tuple")
	return t, nil
}
