// Package harness regenerates every table and figure of the paper's
// evaluation (§4). Each experiment id maps to a runner that builds the
// relation and query sequence, executes it on the relevant engines or
// kernels, and returns the same rows/series the paper reports.
//
// Absolute times differ from the paper (different hardware, different row
// counts, Go instead of icc-compiled C++); the harness is about the *shape*
// of each result — who wins, by what factor, where the crossovers fall.
// cmd/h2obench is the command-line front end (and also hosts the
// serving-layer concurrency sweep, which is not a paper experiment).
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// Config scales and seeds the experiments. Zero values select defaults
// sized for a laptop run (the paper uses 50-100M-row relations on a 128 GB
// server; the shapes reproduce at these scales because the measured effects
// are per-tuple, layout-driven effects).
type Config struct {
	Rows150 int // rows of the 150-attribute relation (§4.1, §4.2); default 100k
	Rows250 int // rows of the 250-attribute relation (Figs. 1-2); default 50k
	Rows100 int // rows of the 100-attribute relation (Fig. 13); default 100k
	RowsSky int // rows of the simulated PhotoObjAll table (Fig. 8); default 20k
	Repeats int // timing repetitions for kernel-level experiments; default 3
	Seed    int64
	Quick   bool // trims sweeps for tests/CI
}

func (c Config) withDefaults() Config {
	if c.Rows150 <= 0 {
		c.Rows150 = 100_000
	}
	if c.Rows250 <= 0 {
		c.Rows250 = 50_000
	}
	if c.Rows100 <= 0 {
		c.Rows100 = 100_000
	}
	if c.RowsSky <= 0 {
		c.RowsSky = 20_000
	}
	if c.Repeats <= 0 {
		c.Repeats = 3
	}
	if c.Seed == 0 {
		c.Seed = 2014
	}
	if c.Quick {
		c.Rows150 = min(c.Rows150, 8_000)
		c.Rows250 = min(c.Rows250, 5_000)
		c.Rows100 = min(c.Rows100, 8_000)
		c.RowsSky = min(c.RowsSky, 4_000)
		c.Repeats = 1
	}
	return c
}

// Table is an experiment's output: a titled grid of cells, printable as an
// aligned text table or CSV.
type Table struct {
	Title   string
	Columns []string
	Rows    [][]string
	// Notes carries the experiment's headline observation (e.g. measured
	// speedups), recorded into EXPERIMENTS.md.
	Notes []string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Fprint writes the table as aligned text.
func (t *Table) Fprint(w io.Writer) {
	fmt.Fprintf(w, "== %s ==\n", t.Title)
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, c)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	for _, row := range t.Rows {
		line(row)
	}
	for _, n := range t.Notes {
		fmt.Fprintf(w, "  note: %s\n", n)
	}
}

// CSV writes the table as comma-separated values.
func (t *Table) CSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Columns, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// Runner regenerates one experiment.
type Runner struct {
	Name        string
	Description string
	Run         func(Config) (*Table, error)
}

// Experiments lists every runner in presentation order. Every runner applies
// Config defaults itself, so direct invocation and Run() behave identically.
func Experiments() []Runner {
	rs := experiments()
	for i := range rs {
		inner := rs[i].Run
		rs[i].Run = func(c Config) (*Table, error) { return inner(c.withDefaults()) }
	}
	return rs
}

func experiments() []Runner {
	return []Runner{
		{"fig1", "Row vs column crossover: select-project-aggregate, ~40% selectivity", RunFig1},
		{"fig2a", "Projectivity sweep, selectivity 100% (no where clause)", func(c Config) (*Table, error) { return RunFig2(c, -1) }},
		{"fig2b", "Projectivity sweep, selectivity 40%", func(c Config) (*Table, error) { return RunFig2(c, 0.4) }},
		{"fig2c", "Projectivity sweep, selectivity 1%", func(c Config) (*Table, error) { return RunFig2(c, 0.01) }},
		{"fig7", "Adaptive 100-query sequence: H2O vs row vs column vs optimal", RunFig7},
		{"table1", "Cumulative execution time of the Fig. 7 sequence", RunTable1},
		{"fig8", "H2O vs AutoPart on the simulated SkyServer workload", RunFig8},
		{"fig9", "Static vs dynamic adaptation window on a shifting workload", RunFig9},
		{"fig10a", "Projections vs #attributes (no where clause)", func(c Config) (*Table, error) { return RunFig10Attrs(c, "fig10a") }},
		{"fig10b", "Aggregations vs #attributes (no where clause)", func(c Config) (*Table, error) { return RunFig10Attrs(c, "fig10b") }},
		{"fig10c", "Arithmetic expressions vs #attributes (no where clause)", func(c Config) (*Table, error) { return RunFig10Attrs(c, "fig10c") }},
		{"fig10d", "Projections (20 attrs) vs selectivity", func(c Config) (*Table, error) { return RunFig10Sel(c, "fig10d") }},
		{"fig10e", "Aggregations (20 attrs) vs selectivity", func(c Config) (*Table, error) { return RunFig10Sel(c, "fig10e") }},
		{"fig10f", "Arithmetic expressions (20 attrs) vs selectivity", func(c Config) (*Table, error) { return RunFig10Sel(c, "fig10f") }},
		{"fig11", "Penalty of accessing a subset of a column group", RunFig11},
		{"fig12", "Accessing a query's attributes from 2-5 column groups", RunFig12},
		{"fig13", "Online vs offline data reorganization", RunFig13},
		{"fig14", "Generic interpreted operator vs generated code", RunFig14},
		{"ablation-window", "Ablation: monitoring window size", RunAblationWindow},
		{"ablation-groups", "Ablation: MaxGroups layout-budget cap", RunAblationGroups},
		{"ablation-oscillate", "Ablation: lazy creation damping on oscillating workloads", RunAblationOscillate},
		{"ablation-vector", "Ablation: vectorized-executor chunk size", RunAblationVector},
		{"ablation-bitmap", "Ablation: selection vectors vs bit-vectors", RunAblationBitmap},
		{"ablation-zonemap", "Ablation: block-skipping zone maps on ordered vs shuffled data", RunAblationZonemap},
		{"segments", "Segmented storage: O(segment) appends and hot-segment reorgs, segment-skipping scans", RunSegments},
		{"spill", "Tiered storage: scan latency vs resident fraction under a memory budget; pruned cold segments stay on disk", RunSpill},
		{"encode", "Compressed encoded segments: on-disk reduction and direct-over-encoded scan kernels vs flat", RunEncode},
		{"repair", "Partial-result reuse: repeated aggregates under tail appends — flat delta-repair cost vs full recomputation", RunRepair},
		{"groupby", "GROUP BY under tail appends: grouped delta repair (flat) vs full re-aggregation (grows with relation)", RunGroupBy},
		{"shard", "Sharded scatter-gather: exec and repair latency vs shard count under the partials merge law", RunShard},
		{"join", "Streaming hash join: latency vs build-side selectivity under zone-map pruning and early termination", RunJoin},
	}
}

// Run dispatches an experiment by id.
func Run(name string, cfg Config) (*Table, error) {
	for _, r := range Experiments() {
		if r.Name == name {
			return r.Run(cfg)
		}
	}
	var known []string
	for _, r := range Experiments() {
		known = append(known, r.Name)
	}
	sort.Strings(known)
	return nil, fmt.Errorf("harness: unknown experiment %q (known: %s)", name, strings.Join(known, ", "))
}

// measure runs f repeats times and returns the minimum duration — the
// standard way to strip scheduling noise from kernel timings.
func measure(repeats int, f func()) time.Duration {
	best := time.Duration(1<<62 - 1)
	for i := 0; i < repeats; i++ {
		start := time.Now()
		f()
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best
}

// ms formats a duration in milliseconds with 3 decimals.
func ms(d time.Duration) string {
	return fmt.Sprintf("%.3f", float64(d.Microseconds())/1000.0)
}

// ratio formats a/b.
func ratio(a, b time.Duration) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.2fx", float64(a)/float64(b))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
