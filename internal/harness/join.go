package harness

import (
	"fmt"
	"time"

	"h2o/internal/data"
	"h2o/internal/exec"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// RunJoin measures the streaming hash join (not a paper experiment): a
// probe-heavy equi-join whose build side is clipped by a zone-map-prunable
// range predicate. As build-side selectivity falls, pruned build segments
// are never read and latency drops; at 0% the build side empties under the
// zone maps alone and the join terminates before the probe side is touched
// at all — segs_scanned goes to zero.
//
//	h2obench -exp join
func RunJoin(cfg Config) (*Table, error) {
	const (
		nL      = 4
		nR      = 3
		segCap  = 1024
		nPoints = 3
		rounds  = 5
	)
	base := cfg.Rows150
	if base < 8*segCap {
		base = 8 * segCap
	}

	t := &Table{
		Title: "join: hash-join latency vs build-side selectivity — zone maps clip the build side before a segment is read; an emptied build side skips the probe entirely",
		Columns: []string{"probe_rows", "build_rows", "build_sel",
			"segs_scanned", "segs_pruned", "ms/query", "vs_full"},
	}

	leftRows := base
	for p := 0; p < nPoints; p++ {
		rightRows := leftRows / 8
		// Both key columns hold the row index (time-series attr 0), so the
		// join matches the build side's surviving prefix exactly and the
		// build-side predicate "S.a0 < cut" is zone-map-clippable.
		left := storage.BuildColumnMajorSeg(
			data.GenerateTimeSeries(data.SyntheticSchema("R", nL), leftRows, cfg.Seed), segCap)
		right := storage.BuildColumnMajorSeg(
			data.GenerateTimeSeries(data.SyntheticSchema("S", nR), rightRows, cfg.Seed+1), segCap)

		var fullMs float64
		for _, sel := range []float64{1.0, 0.25, 0} {
			cut := data.Value(float64(rightRows) * sel)
			q := &query.Query{
				Table: "R",
				Joins: []query.Join{query.JoinOn("S", 0, 0, nL)},
				Items: []query.SelectItem{
					{Agg: &expr.Agg{Op: expr.AggSum, Arg: &expr.Col{ID: 1}}},
					{Agg: &expr.Agg{Op: expr.AggCount, Arg: &expr.Col{ID: nL + 1}}},
				},
				Where: query.PredLt(nL, cut),
			}
			var st exec.StrategyStats
			if _, err := exec.ExecJoin(left, right, q, exec.ExecOpts{}); err != nil { // warm
				return nil, err
			}
			start := time.Now()
			for i := 0; i < rounds; i++ {
				if _, err := exec.ExecJoin(left, right, q, exec.ExecOpts{}); err != nil {
					return nil, err
				}
			}
			elapsed := time.Since(start)
			if _, err := exec.ExecJoin(left, right, q, exec.ExecOpts{Stats: &st}); err != nil {
				return nil, err
			}
			ms := float64(elapsed.Microseconds()) / 1000 / float64(rounds)
			if sel == 1.0 {
				fullMs = ms
			}
			speedup := "-"
			if sel != 1.0 && ms > 0 {
				speedup = fmt.Sprintf("%.1fx", fullMs/ms)
			}
			t.AddRow(itoa(leftRows), itoa(rightRows), fmt.Sprintf("%.0f%%", sel*100),
				itoa(st.SegmentsScanned), itoa(st.SegmentsPruned),
				fmt.Sprintf("%.3f", ms), speedup)
		}
		leftRows *= 2
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("segment capacity %d rows; the smaller (build) side is 1/8 of the probe side; each cell averages %d runs", segCap, rounds),
		"segs_scanned counts both sides; at build_sel 0% it is zero — zone maps empty the build side and early termination never touches the probe relation",
		"segs_pruned at 0% equals the build side's segment count: every segment excluded by its zone map, none read")
	return t, nil
}
