package harness

import (
	"fmt"
	"time"

	"h2o/internal/core"
	"h2o/internal/data"
	"h2o/internal/exec"
	"h2o/internal/expr"
	"h2o/internal/opgen"
	"h2o/internal/query"
	"h2o/internal/storage"
	"h2o/internal/workload"
)

// RunFig13 regenerates Figure 13: online vs offline data reorganization.
// Four cases: starting from a row-major (Q1, Q2) or column-major (Q3, Q4)
// relation of 100 attributes, create a column group of 10 (Q1/Q3) or 20
// (Q2/Q4) attributes while answering an aggregation query over those
// attributes. Offline = stitch the group, then run the query as two separate
// steps; online = the fused reorganizing operator.
func RunFig13(cfg Config) (*Table, error) {
	const nAttrs = 100
	tb := data.Generate(data.SyntheticSchema("R", nAttrs), cfg.Rows100, cfg.Seed)
	rowRel := storage.BuildRowMajor(tb, false)
	colRel := storage.BuildColumnMajor(tb)

	cases := []struct {
		name  string
		rel   *storage.Relation
		width int
	}{
		{"Q1 (row-major -> 10-attr group)", rowRel, 10},
		{"Q2 (row-major -> 20-attr group)", rowRel, 20},
		{"Q3 (column-major -> 10-attr group)", colRel, 10},
		{"Q4 (column-major -> 20-attr group)", colRel, 20},
	}

	t := &Table{
		Title:   "fig13: online vs offline reorganization (create group + answer query)",
		Columns: []string{"case", "offline_ms", "online_ms", "improvement"},
	}
	for i, c := range cases {
		attrs := rangeAttrs(i*20, i*20+c.width-1) // distinct target sets per case
		q := query.Aggregation("R", expr.AggMax, attrs, nil)

		offline := measure(cfg.Repeats, func() {
			g, err := storage.Stitch(c.rel, attrs)
			if err != nil {
				panic(err)
			}
			if _, err := exec.ExecRow(g, q); err != nil {
				panic(err)
			}
		})
		online := measure(cfg.Repeats, func() {
			var groups []*storage.ColumnGroup
			if _, err := exec.Exec(c.rel, q, exec.ExecOpts{Strategy: exec.StrategyReorg, ReorgAttrs: attrs, NewGroups: &groups}); err != nil {
				panic(err)
			}
		})
		imp := 100 * (float64(offline) - float64(online)) / float64(offline)
		t.AddRow(c.name, ms(offline), ms(online), fmt.Sprintf("%.0f%%", imp))
	}
	t.Notes = append(t.Notes, "paper: online wins 38-61% from row-major and 22-37% from column-major")
	return t, nil
}

// RunFig14 regenerates Figure 14: the generic interpreted operator vs the
// dynamically generated (specialized, fused) operator, for an aggregation
// query (Q1) and an arithmetic-expression query (Q2) accessing 20 of 150
// attributes, on a row-major layout and on a tailored column group.
func RunFig14(cfg Config) (*Table, error) {
	const nAttrs = 150
	tb := data.GenerateSelective(data.SyntheticSchema("R", nAttrs), cfg.Rows150, cfg.Seed)
	rowRel := storage.BuildRowMajor(tb, false)

	attrs := append([]data.AttrID{0}, rangeAttrs(10, 28)...)
	where := workload.DialPredicate(tb.Rows, 0.5)
	q1 := query.Aggregation("R", expr.AggMax, attrs, where)
	q2 := query.ArithExpression("R", attrs, where)

	grp := storage.BuildGroup(tb, attrs)
	colGroups := make([]*storage.ColumnGroup, tb.Schema.NumAttrs())
	for a := range colGroups {
		colGroups[a] = storage.BuildGroup(tb, []data.AttrID{a})
	}
	grpRel, err := storage.NewRelation(tb.Schema, tb.Rows, append([]*storage.ColumnGroup{grp}, colGroups...))
	if err != nil {
		return nil, err
	}

	// The generated operator's one-off compilation cost, from the synthetic
	// model calibrated to the paper's 63-84 ms measurements.
	gen := opgen.New(opgen.Config{SimulateCompileLatency: true, CompileBase: 43 * time.Millisecond, CompilePerAttr: time.Millisecond})
	compiled, _, err := gen.Operator(exec.StrategyRow, grpRel, q1)
	if err != nil {
		return nil, err
	}

	t := &Table{
		Title:   "fig14: generic interpreted operator vs generated (specialized fused) code",
		Columns: []string{"case", "generic_ms", "generated_ms", "speedup"},
	}
	// A standalone full-length row-major group: the kernel-level comparison
	// wants one contiguous scan, independent of the relation's segmentation.
	rowGroup := storage.BuildGroup(tb, rangeAttrs(0, nAttrs-1))
	cases := []struct {
		name string
		rel  *storage.Relation
		g    *storage.ColumnGroup
		q    *query.Query
	}{
		{"Q1-Row", rowRel, rowGroup, q1},
		{"Q2-Row", rowRel, rowGroup, q2},
		{"Q1-GroupOfColumns", grpRel, grp, q1},
		{"Q2-GroupOfColumns", grpRel, grp, q2},
	}
	for _, c := range cases {
		genericD := measure(cfg.Repeats, func() {
			if _, err := exec.Exec(onlyGroupRel(tb, c.g), c.q, exec.ExecOpts{Strategy: exec.StrategyGeneric}); err != nil {
				panic(err)
			}
		})
		generatedD := measure(cfg.Repeats, func() { mustRow(c.g, c.q) })
		t.AddRow(c.name, ms(genericD), ms(generatedD), ratio(genericD, generatedD))
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("simulated code-generation overhead (paid once per plan shape, amortized by the operator cache): %v", compiled.CompileTime),
		"paper: generated code wins 16%-1.7x by removing interpretation overhead")
	return t, nil
}

// onlyGroupRel wraps a single group as a relation restricted to that group
// (no schema-coverage requirement), so the generic operator reads the same
// physical layout as the generated one.
func onlyGroupRel(tb *data.Table, g *storage.ColumnGroup) *storage.Relation {
	return storage.WrapGroups(tb.Schema, tb.Rows, []*storage.ColumnGroup{g})
}

// RunAblationWindow sweeps the initial monitoring window size on the §4.1
// workload: small windows adapt eagerly (more reorganizations, earlier
// benefit), large windows adapt conservatively.
func RunAblationWindow(cfg Config) (*Table, error) {
	tb, qs := fig7Sequence(cfg)
	sizes := []int{5, 10, 20, 40}
	if cfg.Quick {
		sizes = []int{5, 20}
	}
	t := &Table{
		Title:   "ablation-window: effect of the initial monitoring window size (Fig. 7 workload)",
		Columns: []string{"window", "total_ms", "adaptations", "reorgs", "groups_created"},
	}
	for _, w := range sizes {
		opts := core.DefaultOptions()
		opts.Window.InitialSize = w
		e := core.NewH2O(tb, opts)
		var total time.Duration
		for _, q := range qs {
			_, info, err := e.Execute(q)
			if err != nil {
				return nil, err
			}
			total += info.Duration
		}
		st := e.Stats()
		t.AddRow(itoa(w), ms(total), itoa(st.Adaptations), itoa(st.Reorgs), itoa(st.GroupsCreated))
	}
	return t, nil
}

// RunAblationGroups sweeps the MaxGroups layout budget: a tight cap forces
// eviction and re-creation; a loose cap trades memory for stability.
func RunAblationGroups(cfg Config) (*Table, error) {
	tb, qs := fig7Sequence(cfg)
	caps := []int{tb.Schema.NumAttrs() + 1, tb.Schema.NumAttrs() + 4, tb.Schema.NumAttrs() * 2}
	t := &Table{
		Title:   "ablation-groups: effect of the MaxGroups layout budget (Fig. 7 workload)",
		Columns: []string{"max_groups", "total_ms", "groups_created", "groups_dropped"},
	}
	for _, capN := range caps {
		opts := core.DefaultOptions()
		opts.Window.InitialSize = 20
		opts.MaxGroups = capN
		e := core.NewH2O(tb, opts)
		var total time.Duration
		for _, q := range qs {
			_, info, err := e.Execute(q)
			if err != nil {
				return nil, err
			}
			total += info.Duration
		}
		st := e.Stats()
		t.AddRow(itoa(capN), ms(total), itoa(st.GroupsCreated), itoa(st.GroupsDropped))
	}
	return t, nil
}

// RunAblationOscillate runs A/B oscillating workloads with different
// periods: lazy layout creation must damp reorganization churn for fast
// oscillations (§3.2, "H2O minimizes the effect of false-positives due to
// oscillating workloads by applying the lazy data layouts generation
// approach").
func RunAblationOscillate(cfg Config) (*Table, error) {
	const nAttrs = 150
	tb := data.Generate(data.SyntheticSchema("R", nAttrs), cfg.Rows150, cfg.Seed)
	n := 80
	if cfg.Quick {
		n = 40
	}
	periods := []int{2, 5, 20}
	t := &Table{
		Title:   "ablation-oscillate: reorganization churn under oscillating workloads",
		Columns: []string{"period", "total_ms", "reorgs", "groups_created"},
	}
	for _, p := range periods {
		qs := workload.OscillatingSequence("R", nAttrs, n, p, cfg.Seed)
		opts := core.DefaultOptions()
		opts.Window.InitialSize = 10
		e := core.NewH2O(tb, opts)
		var total time.Duration
		for _, q := range qs {
			_, info, err := e.Execute(q)
			if err != nil {
				return nil, err
			}
			total += info.Duration
		}
		st := e.Stats()
		t.AddRow(itoa(p), ms(total), itoa(st.Reorgs), itoa(st.GroupsCreated))
	}
	t.Notes = append(t.Notes, "lazy creation bounds churn: at most one group per pattern is ever created, regardless of oscillation rate")
	return t, nil
}
