// Package expr defines the expression language of H2O's query classes —
// column references, integer constants, arithmetic, comparisons and
// conjunctions/disjunctions — together with a tuple-at-a-time interpreted
// evaluator. The interpreter is deliberately generic (per-tuple dynamic
// dispatch through an accessor function): it is the "generic operator" whose
// interpretation overhead the paper's dynamically generated operators remove
// (§3.4, Fig. 14).
//
// Expression trees are immutable once built and evaluation (Eval, EvalBool)
// touches no shared state, so the same tree may be evaluated from many
// goroutines at once — the partitioned scans in internal/exec rely on this.
package expr

import (
	"fmt"
	"strings"

	"h2o/internal/data"
)

// Accessor fetches the value of a base-schema attribute for the current
// tuple. The generic operator pays one indirect call per attribute access per
// tuple — exactly the interpretation overhead compiled kernels avoid.
type Accessor func(a data.AttrID) data.Value

// Expr is an arithmetic expression over int64 attribute values.
type Expr interface {
	// Eval computes the expression for the tuple exposed by get.
	Eval(get Accessor) data.Value
	// Attrs appends the base attributes referenced by the expression.
	Attrs(dst []data.AttrID) []data.AttrID
	// String renders the expression in SQL-ish syntax.
	String() string
}

// Col references a base attribute by position.
type Col struct {
	ID   data.AttrID
	Name string // optional, for display
}

// Eval implements Expr.
func (c *Col) Eval(get Accessor) data.Value { return get(c.ID) }

// Attrs implements Expr.
func (c *Col) Attrs(dst []data.AttrID) []data.AttrID { return append(dst, c.ID) }

// String implements Expr.
func (c *Col) String() string {
	if c.Name != "" {
		return c.Name
	}
	return fmt.Sprintf("a%d", c.ID)
}

// Const is an integer literal.
type Const struct{ V data.Value }

// Eval implements Expr.
func (k *Const) Eval(Accessor) data.Value { return k.V }

// Attrs implements Expr.
func (k *Const) Attrs(dst []data.AttrID) []data.AttrID { return dst }

// String implements Expr.
func (k *Const) String() string { return fmt.Sprint(k.V) }

// ArithOp enumerates binary arithmetic operators.
type ArithOp int

// Arithmetic operators.
const (
	Add ArithOp = iota
	Sub
	Mul
	Div
)

// String returns the SQL spelling of the operator.
func (op ArithOp) String() string {
	switch op {
	case Add:
		return "+"
	case Sub:
		return "-"
	case Mul:
		return "*"
	case Div:
		return "/"
	default:
		return fmt.Sprintf("ArithOp(%d)", int(op))
	}
}

// Arith is a binary arithmetic expression.
type Arith struct {
	Op   ArithOp
	L, R Expr
}

// Eval implements Expr. Division by zero yields zero (the engine has no NULL
// or error channel for scalar math; analytics workloads in the paper never
// divide).
func (b *Arith) Eval(get Accessor) data.Value {
	l, r := b.L.Eval(get), b.R.Eval(get)
	switch b.Op {
	case Add:
		return l + r
	case Sub:
		return l - r
	case Mul:
		return l * r
	case Div:
		if r == 0 {
			return 0
		}
		return l / r
	default:
		panic("expr: unknown arithmetic operator")
	}
}

// Attrs implements Expr.
func (b *Arith) Attrs(dst []data.AttrID) []data.AttrID {
	return b.R.Attrs(b.L.Attrs(dst))
}

// String implements Expr.
func (b *Arith) String() string {
	return fmt.Sprintf("(%s %s %s)", b.L, b.Op, b.R)
}

// SumCols builds the paper's canonical arithmetic expression a+b+c+... over
// the given attributes (query template iii, §4.2.1).
func SumCols(attrs []data.AttrID) Expr {
	if len(attrs) == 0 {
		return &Const{V: 0}
	}
	var e Expr = &Col{ID: attrs[0]}
	for _, a := range attrs[1:] {
		e = &Arith{Op: Add, L: e, R: &Col{ID: a}}
	}
	return e
}

// CmpOp enumerates comparison operators.
type CmpOp int

// Comparison operators.
const (
	Lt CmpOp = iota
	Le
	Gt
	Ge
	Eq
	Ne
)

// String returns the SQL spelling of the operator.
func (op CmpOp) String() string {
	switch op {
	case Lt:
		return "<"
	case Le:
		return "<="
	case Gt:
		return ">"
	case Ge:
		return ">="
	case Eq:
		return "="
	case Ne:
		return "<>"
	default:
		return fmt.Sprintf("CmpOp(%d)", int(op))
	}
}

// Compare applies op to a pair of values.
func Compare(op CmpOp, l, r data.Value) bool {
	switch op {
	case Lt:
		return l < r
	case Le:
		return l <= r
	case Gt:
		return l > r
	case Ge:
		return l >= r
	case Eq:
		return l == r
	case Ne:
		return l != r
	default:
		panic("expr: unknown comparison operator")
	}
}

// Pred is a boolean predicate over a tuple.
type Pred interface {
	EvalBool(get Accessor) bool
	Attrs(dst []data.AttrID) []data.AttrID
	String() string
}

// Cmp compares two arithmetic expressions.
type Cmp struct {
	Op   CmpOp
	L, R Expr
}

// EvalBool implements Pred.
func (c *Cmp) EvalBool(get Accessor) bool {
	return Compare(c.Op, c.L.Eval(get), c.R.Eval(get))
}

// Attrs implements Pred.
func (c *Cmp) Attrs(dst []data.AttrID) []data.AttrID {
	return c.R.Attrs(c.L.Attrs(dst))
}

// String implements Pred.
func (c *Cmp) String() string { return fmt.Sprintf("%s %s %s", c.L, c.Op, c.R) }

// And is an n-ary conjunction. The paper's where clauses are conjunctions of
// single-column comparisons; And is kept n-ary so kernels can evaluate all
// terms in one pass ("evaluate both predicates in one step", Fig. 5).
type And struct{ Terms []Pred }

// EvalBool implements Pred.
func (a *And) EvalBool(get Accessor) bool {
	for _, t := range a.Terms {
		if !t.EvalBool(get) {
			return false
		}
	}
	return true
}

// Attrs implements Pred.
func (a *And) Attrs(dst []data.AttrID) []data.AttrID {
	for _, t := range a.Terms {
		dst = t.Attrs(dst)
	}
	return dst
}

// String implements Pred.
func (a *And) String() string {
	parts := make([]string, len(a.Terms))
	for i, t := range a.Terms {
		parts[i] = t.String()
	}
	return strings.Join(parts, " and ")
}

// Or is a binary disjunction.
type Or struct{ L, R Pred }

// EvalBool implements Pred.
func (o *Or) EvalBool(get Accessor) bool {
	return o.L.EvalBool(get) || o.R.EvalBool(get)
}

// Attrs implements Pred.
func (o *Or) Attrs(dst []data.AttrID) []data.AttrID {
	return o.R.Attrs(o.L.Attrs(dst))
}

// String implements Pred.
func (o *Or) String() string { return fmt.Sprintf("(%s or %s)", o.L, o.R) }

// AggOp enumerates aggregate functions.
type AggOp int

// Aggregate functions.
const (
	AggSum AggOp = iota
	AggMax
	AggMin
	AggCount
	AggAvg
)

// String returns the SQL spelling of the aggregate.
func (op AggOp) String() string {
	switch op {
	case AggSum:
		return "sum"
	case AggMax:
		return "max"
	case AggMin:
		return "min"
	case AggCount:
		return "count"
	case AggAvg:
		return "avg"
	default:
		return fmt.Sprintf("AggOp(%d)", int(op))
	}
}

// Agg is an aggregate over an arithmetic expression.
type Agg struct {
	Op  AggOp
	Arg Expr
}

// Attrs returns the base attributes referenced by the aggregate argument.
func (a *Agg) Attrs(dst []data.AttrID) []data.AttrID { return a.Arg.Attrs(dst) }

// String implements fmt.Stringer.
func (a *Agg) String() string { return fmt.Sprintf("%s(%s)", a.Op, a.Arg) }

// AggState accumulates one aggregate.
type AggState struct {
	Op    AggOp
	Acc   data.Value
	Count int64
	init  bool
}

// NewAggState returns a fresh accumulator for op.
func NewAggState(op AggOp) *AggState { return &AggState{Op: op} }

// Add folds one value into the accumulator.
func (s *AggState) Add(v data.Value) {
	s.Count++
	switch s.Op {
	case AggSum, AggAvg:
		s.Acc += v
	case AggMax:
		if !s.init || v > s.Acc {
			s.Acc = v
		}
	case AggMin:
		if !s.init || v < s.Acc {
			s.Acc = v
		}
	case AggCount:
		// count only tracks Count
	}
	s.init = true
}

// AddSummary folds a pre-aggregated run of count values with the given
// exact min/max/sum into the accumulator, equivalent to count Add calls.
// The encoded scan kernels use it to consume a whole block from its
// header statistics without decoding the payload. sum must be the
// wrapping int64 sum of the run.
func (s *AggState) AddSummary(mn, mx, sum data.Value, count int64) {
	if count <= 0 {
		return
	}
	s.Count += count
	switch s.Op {
	case AggSum, AggAvg:
		s.Acc += sum
	case AggMax:
		if !s.init || mx > s.Acc {
			s.Acc = mx
		}
	case AggMin:
		if !s.init || mn < s.Acc {
			s.Acc = mn
		}
	case AggCount:
		// count only tracks Count
	}
	s.init = true
}

// Merge folds another accumulator of the same operator into s; parallel
// scans merge per-partition states this way.
func (s *AggState) Merge(o *AggState) {
	if o.Op != s.Op {
		panic("expr: merging aggregate states of different operators")
	}
	if !o.init {
		return
	}
	s.Count += o.Count
	switch s.Op {
	case AggSum, AggAvg:
		s.Acc += o.Acc
	case AggMax:
		if !s.init || o.Acc > s.Acc {
			s.Acc = o.Acc
		}
	case AggMin:
		if !s.init || o.Acc < s.Acc {
			s.Acc = o.Acc
		}
	case AggCount:
		// Count only tracks Count.
	}
	s.init = true
}

// Result returns the final aggregate value. Avg over zero rows is zero.
func (s *AggState) Result() data.Value {
	switch s.Op {
	case AggCount:
		return s.Count
	case AggAvg:
		if s.Count == 0 {
			return 0
		}
		return s.Acc / s.Count
	default:
		return s.Acc
	}
}
