package expr

import (
	"reflect"
	"testing"
	"testing/quick"

	"h2o/internal/data"
)

// tuple builds an Accessor over a fixed value slice indexed by attribute id.
func tuple(vals ...data.Value) Accessor {
	return func(a data.AttrID) data.Value { return vals[a] }
}

func TestArithEval(t *testing.T) {
	get := tuple(6, 3, 2)
	cases := []struct {
		e    Expr
		want data.Value
	}{
		{&Arith{Op: Add, L: &Col{ID: 0}, R: &Col{ID: 1}}, 9},
		{&Arith{Op: Sub, L: &Col{ID: 0}, R: &Col{ID: 1}}, 3},
		{&Arith{Op: Mul, L: &Col{ID: 1}, R: &Col{ID: 2}}, 6},
		{&Arith{Op: Div, L: &Col{ID: 0}, R: &Col{ID: 2}}, 3},
		{&Arith{Op: Div, L: &Col{ID: 0}, R: &Const{V: 0}}, 0}, // div-by-zero yields 0
		{&Const{V: -5}, -5},
	}
	for _, c := range cases {
		if got := c.e.Eval(get); got != c.want {
			t.Errorf("%s = %d, want %d", c.e, got, c.want)
		}
	}
}

func TestSumCols(t *testing.T) {
	e := SumCols([]data.AttrID{0, 1, 2})
	if got := e.Eval(tuple(1, 2, 3)); got != 6 {
		t.Fatalf("SumCols eval = %d, want 6", got)
	}
	if s := e.String(); s != "((a0 + a1) + a2)" {
		t.Fatalf("String = %q", s)
	}
	if got := SumCols(nil).Eval(tuple()); got != 0 {
		t.Fatalf("empty SumCols = %d", got)
	}
	attrs := e.Attrs(nil)
	if !reflect.DeepEqual(data.SortedUnique(attrs), []data.AttrID{0, 1, 2}) {
		t.Fatalf("Attrs = %v", attrs)
	}
}

func TestCompareAllOps(t *testing.T) {
	cases := []struct {
		op   CmpOp
		l, r data.Value
		want bool
	}{
		{Lt, 1, 2, true}, {Lt, 2, 2, false},
		{Le, 2, 2, true}, {Le, 3, 2, false},
		{Gt, 3, 2, true}, {Gt, 2, 2, false},
		{Ge, 2, 2, true}, {Ge, 1, 2, false},
		{Eq, 5, 5, true}, {Eq, 5, 6, false},
		{Ne, 5, 6, true}, {Ne, 5, 5, false},
	}
	for _, c := range cases {
		if got := Compare(c.op, c.l, c.r); got != c.want {
			t.Errorf("Compare(%v, %d, %d) = %v", c.op, c.l, c.r, got)
		}
	}
}

func TestPredEval(t *testing.T) {
	// d < 5 and e > 2 over tuple (d=a0, e=a1)
	p := &And{Terms: []Pred{
		&Cmp{Op: Lt, L: &Col{ID: 0}, R: &Const{V: 5}},
		&Cmp{Op: Gt, L: &Col{ID: 1}, R: &Const{V: 2}},
	}}
	if !p.EvalBool(tuple(4, 3)) {
		t.Fatal("conjunction should hold")
	}
	if p.EvalBool(tuple(5, 3)) || p.EvalBool(tuple(4, 2)) {
		t.Fatal("conjunction should fail")
	}
	o := &Or{L: &Cmp{Op: Eq, L: &Col{ID: 0}, R: &Const{V: 9}}, R: &Cmp{Op: Eq, L: &Col{ID: 1}, R: &Const{V: 3}}}
	if !o.EvalBool(tuple(0, 3)) || o.EvalBool(tuple(0, 0)) {
		t.Fatal("disjunction wrong")
	}
	attrs := data.SortedUnique(p.Attrs(nil))
	if !reflect.DeepEqual(attrs, []data.AttrID{0, 1}) {
		t.Fatalf("And.Attrs = %v", attrs)
	}
}

func TestStringRendering(t *testing.T) {
	p := &And{Terms: []Pred{
		&Cmp{Op: Lt, L: &Col{ID: 3, Name: "d"}, R: &Const{V: 10}},
		&Cmp{Op: Gt, L: &Col{ID: 4, Name: "e"}, R: &Const{V: 20}},
	}}
	if got := p.String(); got != "d < 10 and e > 20" {
		t.Fatalf("And.String = %q", got)
	}
	o := &Or{L: p.Terms[0], R: p.Terms[1]}
	if got := o.String(); got != "(d < 10 or e > 20)" {
		t.Fatalf("Or.String = %q", got)
	}
	for _, op := range []ArithOp{Add, Sub, Mul, Div} {
		if op.String() == "" {
			t.Fatal("empty arith op name")
		}
	}
	for _, op := range []CmpOp{Lt, Le, Gt, Ge, Eq, Ne} {
		if op.String() == "" {
			t.Fatal("empty cmp op name")
		}
	}
	for _, op := range []AggOp{AggSum, AggMax, AggMin, AggCount, AggAvg} {
		if op.String() == "" {
			t.Fatal("empty agg op name")
		}
	}
}

func TestAggStates(t *testing.T) {
	vals := []data.Value{5, -2, 9, 0, 9}
	want := map[AggOp]data.Value{
		AggSum:   21,
		AggMax:   9,
		AggMin:   -2,
		AggCount: 5,
		AggAvg:   4, // 21/5 integer division
	}
	for op, expect := range want {
		s := NewAggState(op)
		for _, v := range vals {
			s.Add(v)
		}
		if got := s.Result(); got != expect {
			t.Errorf("%v = %d, want %d", op, got, expect)
		}
	}
}

func TestAggEmpty(t *testing.T) {
	for _, op := range []AggOp{AggSum, AggMax, AggMin, AggCount, AggAvg} {
		s := NewAggState(op)
		if got := s.Result(); got != 0 {
			t.Errorf("empty %v = %d, want 0", op, got)
		}
	}
}

func TestAggNegativeOnly(t *testing.T) {
	// Max over all-negative values must not return the zero value.
	s := NewAggState(AggMax)
	s.Add(-7)
	s.Add(-3)
	if got := s.Result(); got != -3 {
		t.Fatalf("max of negatives = %d, want -3", got)
	}
	s = NewAggState(AggMin)
	s.Add(7)
	s.Add(3)
	if got := s.Result(); got != 3 {
		t.Fatalf("min of positives = %d, want 3", got)
	}
}

// Property: interpreted SumCols equals a direct Go sum for random tuples.
func TestSumColsProperty(t *testing.T) {
	f := func(vals []int64) bool {
		if len(vals) == 0 {
			return true
		}
		attrs := make([]data.AttrID, len(vals))
		for i := range attrs {
			attrs[i] = i
		}
		e := SumCols(attrs)
		var want data.Value
		for _, v := range vals {
			want += v
		}
		return e.Eval(func(a data.AttrID) data.Value { return vals[a] }) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: And is order-insensitive for side-effect-free comparisons.
func TestAndCommutativeProperty(t *testing.T) {
	f := func(a, b, x, y int64) bool {
		p1 := &And{Terms: []Pred{
			&Cmp{Op: Lt, L: &Col{ID: 0}, R: &Const{V: a}},
			&Cmp{Op: Gt, L: &Col{ID: 1}, R: &Const{V: b}},
		}}
		p2 := &And{Terms: []Pred{p1.Terms[1], p1.Terms[0]}}
		get := tuple(x, y)
		return p1.EvalBool(get) == p2.EvalBool(get)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
