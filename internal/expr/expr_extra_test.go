package expr

import (
	"strings"
	"testing"

	"h2o/internal/data"
)

func TestColStringFallsBackToID(t *testing.T) {
	c := &Col{ID: 7}
	if c.String() != "a7" {
		t.Fatalf("String = %q", c.String())
	}
	named := &Col{ID: 7, Name: "price"}
	if named.String() != "price" {
		t.Fatalf("String = %q", named.String())
	}
}

func TestArithString(t *testing.T) {
	e := &Arith{Op: Mul, L: &Col{ID: 0}, R: &Arith{Op: Sub, L: &Col{ID: 1}, R: &Const{V: 2}}}
	if got := e.String(); got != "(a0 * (a1 - 2))" {
		t.Fatalf("String = %q", got)
	}
}

func TestOrAttrs(t *testing.T) {
	o := &Or{
		L: &Cmp{Op: Lt, L: &Col{ID: 3}, R: &Const{V: 1}},
		R: &Cmp{Op: Gt, L: &Col{ID: 5}, R: &Const{V: 2}},
	}
	attrs := data.SortedUnique(o.Attrs(nil))
	if len(attrs) != 2 || attrs[0] != 3 || attrs[1] != 5 {
		t.Fatalf("Attrs = %v", attrs)
	}
	if !strings.Contains(o.String(), "or") {
		t.Fatalf("String = %q", o.String())
	}
}

func TestAggString(t *testing.T) {
	a := &Agg{Op: AggAvg, Arg: &Col{ID: 2}}
	if a.String() != "avg(a2)" {
		t.Fatalf("String = %q", a.String())
	}
	if attrs := a.Attrs(nil); len(attrs) != 1 || attrs[0] != 2 {
		t.Fatalf("Attrs = %v", attrs)
	}
}

func TestUnknownOpsPanic(t *testing.T) {
	mustPanic(t, func() {
		(&Arith{Op: ArithOp(99), L: &Const{V: 1}, R: &Const{V: 2}}).Eval(nil)
	})
	mustPanic(t, func() { Compare(CmpOp(99), 1, 2) })
}

func TestOpStringFallbacks(t *testing.T) {
	if ArithOp(99).String() == "" || CmpOp(99).String() == "" || AggOp(99).String() == "" {
		t.Fatal("unknown ops must still render")
	}
}

func TestMergeEmptyIntoEmpty(t *testing.T) {
	a, b := NewAggState(AggMax), NewAggState(AggMax)
	a.Merge(b)
	if a.Result() != 0 || a.Count != 0 {
		t.Fatal("empty-into-empty merge must stay empty")
	}
	// Merging into an empty state adopts the other's value.
	b.Add(-5)
	a.Merge(b)
	if a.Result() != -5 {
		t.Fatalf("merge into empty = %d", a.Result())
	}
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
