package core

import (
	"testing"

	"h2o/internal/data"
	"h2o/internal/exec"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// encodedEngine is spillEngine with the compressed encoded tier enabled:
// sealed segments carry per-column encoded blocks, eviction demotes before
// it spills, and aggregate-shaped queries take the encoded-direct path.
func encodedEngine(t testing.TB, rows, segCap int, budget int64) (*Engine, *data.Table) {
	t.Helper()
	tb := data.GenerateTimeSeries(data.SyntheticSchema("R", 6), rows, 31)
	opts := DefaultOptions()
	opts.Mode = ModeFrozen
	opts.MemoryBudgetBytes = budget
	opts.SpillDir = t.TempDir()
	opts.EncodedTier = true
	return New(storage.BuildColumnMajorSeg(tb, segCap), opts), tb
}

// TestEncodedTierStrategyAndCounters: with the encoded tier on, aggregate
// queries execute encoded-direct — reporting StrategyEncoded with live
// decode-skip counters — and still agree with the flat reference engine;
// shapes the encoded kernel cannot serve fall through to the cost-based
// strategies untouched.
func TestEncodedTierStrategyAndCounters(t *testing.T) {
	const rows, segCap = 4_000, 250
	e, tb := encodedEngine(t, rows, segCap, 0)
	defer e.Close()

	agg := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, nil)
	res, info, err := e.Execute(agg)
	if err != nil {
		t.Fatal(err)
	}
	if info.Strategy != exec.StrategyEncoded {
		t.Fatalf("aggregate ran %v, want %v", info.Strategy, exec.StrategyEncoded)
	}
	if !res.Equal(reference(tb, agg)) {
		t.Fatal("encoded-direct aggregate diverged from flat reference")
	}
	// An unselective aggregate folds every sealed block from its header:
	// the payloads are never decoded.
	if info.DecodeSkips == 0 {
		t.Fatalf("unselective aggregate decoded every block: %+v", info)
	}

	// A selective aggregate consumes at least the predicate column's
	// payload in the matching blocks.
	sel := query.Aggregation("R", expr.AggMax, []data.AttrID{3}, query.PredLt(0, 900))
	res, info, err = e.Execute(sel)
	if err != nil {
		t.Fatal(err)
	}
	if info.Strategy != exec.StrategyEncoded {
		t.Fatalf("selective aggregate ran %v, want %v", info.Strategy, exec.StrategyEncoded)
	}
	if !res.Equal(reference(tb, sel)) {
		t.Fatal("selective encoded-direct aggregate diverged from flat reference")
	}

	// Projections are outside the encoded kernel's shapes: the engine must
	// fall through, not fail.
	proj := query.Projection("R", []data.AttrID{0, 2}, query.PredGt(0, 3_800))
	res, info, err = e.Execute(proj)
	if err != nil {
		t.Fatal(err)
	}
	if info.Strategy == exec.StrategyEncoded {
		t.Fatalf("projection reported the encoded strategy: %+v", info)
	}
	if !res.Equal(reference(tb, proj)) {
		t.Fatal("projection under the encoded tier diverged from flat reference")
	}
}

// TestEncodedTierDemotesBeforeSpill: a budget that the encoded forms fit
// under — but the flat data does not — is satisfied entirely by demotions.
// No spill file is written, nothing faults, and queries stay exact.
func TestEncodedTierDemotesBeforeSpill(t *testing.T) {
	const rows, segCap = 4_000, 250 // 16 segments
	full, tb := encodedEngine(t, rows, segCap, 0)
	relBytes := full.Relation().Bytes()
	full.Close()

	// Timeseries data encodes far below half its flat size; a half-size
	// budget is comfortably reachable by demotion alone.
	e, _ := encodedEngine(t, rows, segCap, relBytes/2)
	defer e.Close()
	e.EnforceBudget()
	ts := e.TierStats()
	if ts.Demotions == 0 {
		t.Fatalf("over-budget encoded tier never demoted: %+v", ts)
	}
	if ts.SpillWrites != 0 || ts.SpilledSegments != 0 {
		t.Fatalf("budget reachable by demotion still spilled: %+v", ts)
	}
	if ts.EncodedSegments == 0 {
		t.Fatalf("demotions left no encoded-resident segments: %+v", ts)
	}
	if ts.ResidentBytes > relBytes/2 {
		t.Fatalf("resident bytes %d exceed budget %d after enforcement", ts.ResidentBytes, relBytes/2)
	}
	for qi, q := range spillQueries() {
		res, _, err := e.Execute(q)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		if !res.Equal(reference(tb, q)) {
			t.Fatalf("query %d diverged after demotion", qi)
		}
	}
}

// TestEncodedTierSpillRoundTrip drives the full three-rung ladder with a
// 1-byte budget: demote, spill encoded, fault back through the mmap, and
// keep every query exact across repeated cycles. The spill files must also
// show the tentpole's compression: encoded on-disk bytes at most half the
// flat volume they replace (timeseries data).
func TestEncodedTierSpillRoundTrip(t *testing.T) {
	const rows, segCap = 4_000, 250
	e, tb := encodedEngine(t, rows, segCap, 1)
	defer e.Close()
	e.EnforceBudget()
	for round := 0; round < 3; round++ {
		for qi, q := range spillQueries() {
			res, _, err := e.Execute(q)
			if err != nil {
				t.Fatalf("round %d query %d: %v", round, qi, err)
			}
			if !res.Equal(reference(tb, q)) {
				t.Fatalf("round %d query %d: encoded spill cycle diverged", round, qi)
			}
		}
		e.EnforceBudget()
	}
	ts := e.TierStats()
	if ts.SpillWrites == 0 || ts.Faults == 0 {
		t.Fatalf("tiny budget never cycled through disk: %+v", ts)
	}
	if ts.FaultedBytes == 0 {
		t.Fatalf("faults reported no I/O volume: %+v", ts)
	}
	if ts.SpilledBytes > 0 && ts.SpillFileBytes*2 > ts.SpilledBytes {
		t.Fatalf("spill files not compressed: %d on disk for %d flat bytes", ts.SpillFileBytes, ts.SpilledBytes)
	}
}

// BenchmarkScanEncoded is a selective aggregate over a sealed encoded
// segment (the oldest ~800 rows — segment 0 carries encodings; the
// symmetric newest-rows shape in BenchmarkScanResident lands in the flat
// tail). Compare with BenchmarkScanSpilled / BenchmarkScanResident in
// spill_test.go: the encoded-direct path must at least keep up.
func BenchmarkScanEncoded(b *testing.B) {
	const rows, segCap = 64_000, 4_000
	e, _ := encodedEngine(b, rows, segCap, 0)
	defer e.Close()
	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, query.PredLt(0, 800))
	if _, info, err := e.Execute(q); err != nil {
		b.Fatal(err)
	} else if info.Strategy != exec.StrategyEncoded {
		b.Fatalf("warmup ran %v, want %v", info.Strategy, exec.StrategyEncoded)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScanEncodedTail is the exact BenchmarkScanResident shape run on
// the encoded-tier engine: after pruning only the flat mutable tail
// survives, so the engine must decline the encoded path and match the flat
// engine's fused operators rather than pay the encoded driver's overhead.
func BenchmarkScanEncodedTail(b *testing.B) {
	const rows, segCap = 64_000, 4_000
	e, _ := encodedEngine(b, rows, segCap, 0)
	defer e.Close()
	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, query.PredGt(0, data.Value(rows)-800))
	if _, info, err := e.Execute(q); err != nil {
		b.Fatal(err)
	} else if info.Strategy == exec.StrategyEncoded {
		b.Fatalf("tail-only scan claimed the encoded path: %+v", info)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScanEncodedUniform is the hostile case for the encoded kernel:
// uniform (unordered) data where the predicate matches ~half the rows, so
// no block skips or folds from its header and every block pays the
// selection-vector build and gather. The branchless selection writes and
// batched block folds keep it at or under the flat engine's fused cost.
func BenchmarkScanEncodedUniform(b *testing.B) {
	const rows, segCap = 100_000, 6_250
	tb := data.Generate(data.SyntheticSchema("R", 8), rows, 2014)
	opts := DefaultOptions()
	opts.Mode = ModeFrozen
	opts.EncodedTier = true
	opts.SpillDir = b.TempDir()
	e := New(storage.BuildColumnMajorSeg(tb, segCap), opts)
	defer e.Close()
	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2},
		query.PredGt(0, data.Value(float64(rows)*0.98)-1))
	if _, _, err := e.Execute(q); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Execute(q); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFaultEncoded measures a full aggregate that pages every sealed
// segment in through the encoded spill format (mmap-served where
// available): each iteration re-evicts, then scans cold. The acceptance
// bar is BenchmarkFaultEncoded <= the flat-era faulted full scan — the
// fault now moves encoded bytes, not flat ones.
func BenchmarkFaultEncoded(b *testing.B) {
	const rows, segCap = 64_000, 4_000
	e, _ := encodedEngine(b, rows, segCap, 1)
	defer e.Close()
	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 2}, nil)
	e.EnforceBudget()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := e.Execute(q); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		e.EnforceBudget() // re-evict outside the timed region
		b.StartTimer()
	}
}

// TestHeatAwareEviction: segments that cached serving-layer artifacts
// reference are evicted last. With uniform read counts, the heat hook's
// ordering alone decides the victims.
func TestHeatAwareEviction(t *testing.T) {
	const rows, segCap = 4_000, 250 // 16 segments, tail = segment 15
	e, _ := spillEngine(t, rows, segCap, 0)
	relBytes := e.Relation().Bytes()
	e.Close()

	segBytes := relBytes / 16
	// Room for the tail plus ~3 sealed segments.
	e, _ = spillEngine(t, rows, segCap, 3*segBytes+segBytes/2)
	defer e.Close()
	hot := map[int]int{4: 3, 9: 2}
	e.SetSegmentHeat(func() map[int]int { return hot })
	e.EnforceBudget()

	segs := e.Relation().Segments
	for _, si := range []int{4, 9} {
		if !segs[si].Resident() {
			t.Fatalf("hot segment %d was evicted before cold ones", si)
		}
	}
	ts := e.TierStats()
	if ts.Evictions == 0 {
		t.Fatalf("over-budget engine never evicted: %+v", ts)
	}
	if ts.ResidentBytes > 3*segBytes+segBytes/2 {
		t.Fatalf("budget not enforced: %+v", ts)
	}
}
