package core

import (
	"time"

	"h2o/internal/data"
	"h2o/internal/exec"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// NewRowStore builds the paper's static row-store comparison engine over t:
// an NSM layout (with slotted-page overhead when padded) executed with the
// volcano row strategy only.
func NewRowStore(t *data.Table, padded bool) *Engine {
	opts := DefaultOptions()
	opts.Mode = ModeStaticRow
	return New(storage.BuildRowMajor(t, padded), opts)
}

// NewColumnStore builds the paper's static column-store comparison engine
// over t: a DSM layout executed with the late-materialization column
// strategy only.
func NewColumnStore(t *data.Table) *Engine {
	opts := DefaultOptions()
	opts.Mode = ModeStaticColumn
	return New(storage.BuildColumnMajor(t), opts)
}

// NewH2O builds the full adaptive engine with the paper's defaults, starting
// from a column-major layout ("this is the more desirable starting point as
// it is easier to morph to other layouts", §4.1).
func NewH2O(t *data.Table, opts Options) *Engine {
	return New(storage.BuildColumnMajor(t), opts)
}

// Oracle is the "Optimal" series of Figure 7: for every query it
// materializes a perfectly tailored column group (outside the measured
// path), then executes the fused row strategy over it. It represents the
// theoretical case of perfect workload knowledge and ample preparation time.
type Oracle struct {
	table *data.Table
	rel   *storage.Relation
	cache map[string]*storage.ColumnGroup
}

// NewOracle builds the oracle over t.
func NewOracle(t *data.Table) *Oracle {
	return &Oracle{
		table: t,
		rel:   storage.BuildColumnMajor(t),
		cache: make(map[string]*storage.ColumnGroup),
	}
}

// Execute answers q from a tailored layout. Only the execution over the
// perfect group is timed; layout creation is free, per the paper ("without
// including the cost of creating the data layout").
func (o *Oracle) Execute(q *query.Query) (*exec.Result, time.Duration, error) {
	attrs := q.AllAttrs()
	key := query.InfoOf(q).Pattern()
	g, ok := o.cache[key]
	if !ok {
		g = storage.BuildGroup(o.table, attrs)
		o.cache[key] = g
	}
	start := time.Now()
	res, err := exec.ExecRow(g, q)
	if err == exec.ErrUnsupported {
		res, err = exec.Exec(o.rel, q, exec.ExecOpts{Strategy: exec.StrategyGeneric})
	}
	return res, time.Since(start), err
}
