package core

import (
	"fmt"
	"sync"
	"testing"

	"h2o/internal/data"
	"h2o/internal/expr"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// TestConcurrentQueriesWithInserts is the -race stress test: many client
// goroutines issue adaptive queries — exercising monitoring, adaptation and
// online reorganization — while a writer appends batches. Nothing here
// asserts timing; the test exists so the race detector sweeps every lock
// path (shared read execution, exclusive adapt/reorg, insert).
func TestConcurrentQueriesWithInserts(t *testing.T) {
	const (
		attrs    = 16
		rows     = 4_000
		readers  = 8
		queries  = 60
		inserts  = 40
		batch    = 25
		rowWidth = attrs
	)
	tb := data.Generate(data.SyntheticSchema("R", attrs), rows, 7)
	e := New(storage.BuildColumnMajor(tb), DefaultOptions())

	var wg sync.WaitGroup
	errCh := make(chan error, readers+1)

	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < queries; i++ {
				var q *query.Query
				switch (r + i) % 3 {
				case 0:
					q = query.Aggregation("R", expr.AggMax,
						[]data.AttrID{(r + i) % attrs, (r + i + 1) % attrs},
						query.PredLt((r+i+2)%attrs, 0))
				case 1:
					q = query.Projection("R",
						[]data.AttrID{(r + i) % attrs},
						query.PredLt((r+i+1)%attrs, -900_000_000))
				default:
					q = query.AggExpression("R",
						[]data.AttrID{(r + i) % attrs, (r + i + 3) % attrs}, nil)
				}
				res, _, err := e.Execute(q)
				if err != nil {
					errCh <- fmt.Errorf("reader %d query %d: %w", r, i, err)
					return
				}
				if res == nil {
					errCh <- fmt.Errorf("reader %d query %d: nil result", r, i)
					return
				}
			}
		}(r)
	}

	wg.Add(1)
	go func() {
		defer wg.Done()
		tuple := make([]data.Value, rowWidth)
		for i := 0; i < inserts; i++ {
			tuples := make([][]data.Value, batch)
			for j := range tuples {
				for k := range tuple {
					tuple[k] = data.Value(i*batch + j + k)
				}
				tuples[j] = append([]data.Value(nil), tuple...)
			}
			if err := e.Insert(tuples); err != nil {
				errCh <- fmt.Errorf("insert %d: %w", i, err)
				return
			}
		}
	}()

	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}

	// The relation ends with every insert applied and a version that
	// advanced at least once per mutation.
	if got, want := e.Relation().Rows, rows+inserts*batch; got != want {
		t.Fatalf("rows = %d, want %d", got, want)
	}
	if v := e.Version(); v < inserts {
		t.Fatalf("version = %d, want >= %d (one bump per insert batch)", v, inserts)
	}
	st := e.Stats()
	if st.Queries != readers*queries {
		t.Fatalf("stats.Queries = %d, want %d", st.Queries, readers*queries)
	}
}

// TestAdaptationPhaseRunsOnce: when many concurrent queries cross the same
// window boundary, exactly one of them runs the adaptation phase — the
// others re-check under the exclusive lock and find the counter already
// reset. Without the re-check every boundary-crosser adapts back to back,
// inflating stats and the dynamic window.
func TestAdaptationPhaseRunsOnce(t *testing.T) {
	tb := data.Generate(data.SyntheticSchema("R", 8), 2_000, 3)
	opts := DefaultOptions()
	opts.Window.InitialSize = 20
	opts.Window.MinSize = 20 // the 8 extra observes below cannot re-arm the boundary
	e := New(storage.BuildColumnMajor(tb), opts)

	q := query.Aggregation("R", expr.AggMax, []data.AttrID{1}, query.PredLt(0, 0))
	// Prime to one query before the boundary.
	for i := 0; i < 19; i++ {
		if _, _, err := e.Execute(q); err != nil {
			t.Fatal(err)
		}
	}
	before := e.Stats().Adaptations

	var wg sync.WaitGroup
	start := make(chan struct{})
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			if _, _, err := e.Execute(q); err != nil {
				t.Error(err)
			}
		}()
	}
	close(start)
	wg.Wait()

	if got := e.Stats().Adaptations - before; got != 1 {
		t.Fatalf("adaptations at one boundary = %d, want 1", got)
	}
}

// TestConcurrentReadOnlyConsistency checks that concurrent read-only
// queries on a frozen layout all see the same answer as a serial run.
func TestConcurrentReadOnlyConsistency(t *testing.T) {
	tb := data.Generate(data.SyntheticSchema("R", 8), 10_000, 11)
	opts := DefaultOptions()
	opts.Mode = ModeFrozen
	e := New(storage.BuildColumnMajor(tb), opts)

	q := query.Aggregation("R", expr.AggSum, []data.AttrID{1, 3}, query.PredGt(0, 0))
	want, _, err := e.Execute(q)
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 16)
	for r := 0; r < 16; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				got, _, err := e.Execute(q)
				if err != nil {
					errCh <- err
					return
				}
				if !got.Equal(want) {
					errCh <- fmt.Errorf("concurrent result diverged: %v vs %v", got.Data, want.Data)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
