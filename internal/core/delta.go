package core

import (
	"h2o/internal/exec"
	"h2o/internal/query"
	"h2o/internal/storage"
)

// DeltaScan is the product of one Engine.QueryDelta call: the freshly
// rescanned segment partials, the indices of the candidate segments whose
// cached partials the caller may keep (their versions matched), the touch
// fingerprint of the state the scan observed, and the scan counters. The
// fingerprint is computed under the same read lock the scan held, so a
// result assembled as Repaired(prior, Fresh, Reused).Result() is exactly
// consistent with it — the serving layer publishes under it.
type DeltaScan struct {
	// Fresh holds one partial per rescanned candidate segment.
	Fresh *exec.PartialResult
	// Reused lists the candidate segment indices whose versions matched the
	// caller's have vector: their cached partials are still exact.
	Reused []int
	// Fingerprint identifies the candidate set and versions the scan
	// observed, under the lock it held.
	Fingerprint TouchFingerprint
	// Layout is the relation's layout kind at scan time (reporting only).
	Layout storage.LayoutKind
	// Stats carries the scan counters; only rescanned segments count as
	// scanned/touched.
	Stats exec.StrategyStats
}

// QueryDelta answers a repairable query (every select item a decomposable
// aggregate, no LIMIT — exec.Repairable) by rescanning only the candidate
// segments whose versions differ from the caller's have vector, under the
// shared read lock. have maps segment index to the version the caller's
// cached partials were computed at (nil rescans every candidate — the cold
// seed of a partials cache). The diff runs under the same lock as the scan
// and the returned fingerprint, so a mutation can never slip between them:
// the assembled result is always consistent with DeltaScan.Fingerprint,
// even when that differs from whatever fingerprint the caller admitted
// against.
//
// ok=false tells the caller to take the full Execute path instead. That
// happens when the query is not repairable, and — in adaptive mode — when
// the monitoring window is due for an adaptation phase or a pending layout
// proposal covers the query: both need the exclusive lock that Execute
// takes, so deferring to it keeps the adaptive machinery running even under
// a repair-heavy workload. Delta scans do observe the monitoring window
// (the workload signal stays honest) but never run adaptation themselves;
// like result-cache hits, they also skip selectivity recording, which only
// materializing queries feed anyway.
func (e *Engine) QueryDelta(q *query.Query, have map[int]uint64) (ds *DeltaScan, ok bool, err error) {
	ds, ok, err = e.queryDelta(q, have)
	// The rescan may have paged spilled segments in; re-enforce the memory
	// budget only after the scan's lock is released, exactly as Execute's
	// epilogue does.
	if ok && e.tier != nil {
		e.mu.RLock()
		e.tier.enforce()
		e.mu.RUnlock()
	}
	return ds, ok, err
}

// queryDelta is QueryDelta without the budget-enforcement epilogue.
func (e *Engine) queryDelta(q *query.Query, have map[int]uint64) (*DeltaScan, bool, error) {
	if !exec.Repairable(q) {
		return nil, false, nil
	}
	if e.opts.Mode == ModeAdaptive {
		info := query.InfoOf(q)
		e.stateMu.Lock()
		// Defer to Execute when the adaptive machinery wants the exclusive
		// lock: an adaptation phase is due (from previously observed
		// queries), or a pending proposal covers this query and has not been
		// declined for its pattern yet. Otherwise observe the query here so
		// the window keeps seeing the workload; if this observation makes
		// adaptation due, the *next* query falls back and runs the phase.
		fallback := e.win.SinceAdaptation() >= e.win.Size()
		if !fallback {
			if _, turned := e.declined[info.Pattern()]; !turned {
				fallback = e.pendingCoversLocked(q.AllAttrs())
			}
		}
		if !fallback {
			e.win.Observe(info)
			e.stats.Queries++
		}
		e.stateMu.Unlock()
		if fallback {
			return nil, false, nil
		}
	} else {
		e.stateMu.Lock()
		e.stats.Queries++
		e.stateMu.Unlock()
	}

	e.mu.RLock()
	defer e.mu.RUnlock()
	ds := &DeltaScan{}
	// Rescans fan out like any other scan: the usual one-changed-tail
	// repair stays serial, a cold seed of a large relation uses the
	// configured intra-query parallelism.
	fresh, reused, err := exec.ExecDelta(e.rel, q, have, e.opts.Parallelism, &ds.Stats)
	if err != nil {
		if err == exec.ErrUnsupported {
			return nil, false, nil
		}
		return nil, false, err
	}
	ds.Fresh = fresh
	ds.Reused = reused
	// Under the very lock the scan held: the fingerprint names exactly the
	// state the partials were read from.
	ds.Fingerprint = TouchFingerprintOf(e.rel, q)
	ds.Layout = e.rel.Kind()
	// Keep group recency honest — a repair reads covering groups just like
	// a full scan would, and MaxGroups eviction must not starve them.
	e.touchGroups(q)
	return ds, true, nil
}
